// Wire-protocol throughput benchmarks. These live in the external test
// package (spatialtf_test, unlike bench_test.go) because internal/server
// imports spatialtf — an in-package benchmark importing the server would
// be an import cycle.
package spatialtf_test

import (
	"context"
	"net"
	"testing"
	"time"

	"spatialtf"
	"spatialtf/internal/server"
	"spatialtf/internal/wire"
)

// BenchmarkWireJoinStream measures end-to-end streaming throughput of a
// spatial_join over the wire protocol on a loopback socket: rows/op is
// the join cardinality, and the reported rows/s is the wire pipeline
// rate (parse, execute, encode, frame, decode).
func BenchmarkWireJoinStream(b *testing.B) {
	db := spatialtf.Open()
	if _, err := db.LoadDataset("counties", spatialtf.Counties(512, 1201)); err != nil {
		b.Fatal(err)
	}
	if _, err := db.CreateIndex("counties_idx", "counties", spatialtf.RTree,
		spatialtf.IndexOptions{Parallel: 2}); err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := server.New(db, server.Config{DefaultBatch: 512, MaxBatch: 4096})
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	cli, err := wire.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()

	const joinSQL = "SELECT rid1, rid2 FROM TABLE(spatial_join('counties','geom','counties','geom','anyinteract', 0))"
	// One warm-up drain establishes the cardinality.
	rowsPerJoin := drainJoin(b, cli, joinSQL)
	if rowsPerJoin == 0 {
		b.Fatal("empty join")
	}
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += drainJoin(b, cli, joinSQL)
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "rows/s")
}

func drainJoin(b *testing.B, cli *wire.Client, sql string) int {
	b.Helper()
	res, err := cli.Query(sql)
	if err != nil {
		b.Fatal(err)
	}
	n := 0
	for {
		rows, done, err := res.Cursor.Fetch(0)
		if err != nil {
			b.Fatal(err)
		}
		n += len(rows)
		if done {
			return n
		}
	}
}
