package spatialtf_test

import (
	"fmt"
	"log"

	"spatialtf"
)

// Example shows the end-to-end flow: tables, an index, an operator
// query, and the spatial_join table function.
func Example() {
	db := spatialtf.Open()
	cities, err := db.CreateSpatialTable("cities")
	if err != nil {
		log.Fatal(err)
	}
	cities.Add("springfield", spatialtf.MustRect(10, 10, 14, 14))
	cities.Add("ogdenville", spatialtf.MustRect(40, 40, 44, 45))
	if _, err := db.CreateIndex("cities_idx", "cities", spatialtf.RTree, spatialtf.IndexOptions{}); err != nil {
		log.Fatal(err)
	}

	hits, err := db.Relate("cities", "cities_idx", spatialtf.MustRect(0, 0, 20, 20), "anyinteract")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window query: %d city\n", len(hits))

	cur, err := db.SpatialJoin("cities", "cities_idx", "cities", "cities_idx",
		spatialtf.JoinOptions{Mask: "anyinteract"})
	if err != nil {
		log.Fatal(err)
	}
	pairs, err := cur.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-join: %d pairs\n", len(pairs))
	// Output:
	// window query: 1 city
	// self-join: 2 pairs
}

// ExampleDB_Nearest ranks rows by exact distance through the R-tree's
// incremental nearest-neighbour traversal.
func ExampleDB_Nearest() {
	db := spatialtf.Open()
	t, _ := db.CreateSpatialTable("pts")
	t.Add("a", spatialtf.NewPoint(1, 1))
	t.Add("b", spatialtf.NewPoint(5, 5))
	t.Add("c", spatialtf.NewPoint(100, 100))
	if _, err := db.CreateIndex("pts_idx", "pts", spatialtf.RTree, spatialtf.IndexOptions{}); err != nil {
		log.Fatal(err)
	}
	nbs, err := db.Nearest("pts", "pts_idx", spatialtf.NewPoint(0, 0), 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, nb := range nbs {
		row, _ := t.Fetch(nb.ID)
		fmt.Printf("%s at %.2f\n", row[1].S, nb.Dist)
	}
	// Output:
	// a at 1.41
	// b at 7.07
}

// ExampleDB_SpatialJoin_parallel runs the §4.1 parallel join: the
// subtree-pair decomposition spreads the work over table-function
// instances, and results stream back through one cursor.
func ExampleDB_SpatialJoin_parallel() {
	db := spatialtf.Open()
	if _, err := db.LoadDataset("stars", spatialtf.Stars(1000, 7)); err != nil {
		log.Fatal(err)
	}
	if _, err := db.CreateIndex("si", "stars", spatialtf.RTree, spatialtf.IndexOptions{}); err != nil {
		log.Fatal(err)
	}
	serial, _ := db.SpatialJoin("stars", "si", "stars", "si", spatialtf.JoinOptions{})
	sp, err := serial.Collect()
	if err != nil {
		log.Fatal(err)
	}
	parallel, _ := db.SpatialJoin("stars", "si", "stars", "si", spatialtf.JoinOptions{Parallel: 4})
	pp, err := parallel.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial and parallel agree: %v\n", len(sp) == len(pp))
	// Output:
	// serial and parallel agree: true
}

// ExampleParseWKT round-trips a polygon with a hole through WKT.
func ExampleParseWKT() {
	g, err := spatialtf.ParseWKT("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("area: %g\n", g.Area())
	// Output:
	// area: 96
}
