// Package spatialtf is a from-scratch Go reproduction of the system in
// "Spatial Processing using Oracle Table Functions" (Kothuri, Ravada,
// Xu; ICDE 2003): an Oracle-Spatial-style spatial database engine whose
// expensive operations — R-tree spatial joins and spatial index creation
// — are implemented with parallel and pipelined table functions.
//
// The public API mirrors the SQL surface of the paper:
//
//	db := spatialtf.Open()
//	cities, _ := db.CreateSpatialTable("cities")
//	cities.Add("springfield", spatialtf.MustRect(10, 10, 12, 12))
//	idx, _ := db.CreateIndex("cities_idx", "cities", spatialtf.RTree, spatialtf.IndexOptions{})
//	// SELECT rowid FROM cities WHERE sdo_relate(geom, :q, 'anyinteract')
//	hits, _ := db.Relate("cities", "cities_idx", q, "anyinteract")
//	// SELECT rid1, rid2 FROM TABLE(spatial_join('cities','geom','rivers','geom','anyinteract'))
//	cur, _ := db.SpatialJoin("cities", "cities_idx", "rivers", "rivers_idx", spatialtf.JoinOptions{})
//
// Everything underneath — the geometry engine, slotted-page storage,
// B-tree, R-tree, linear quadtree, extensible-indexing framework, and
// the table-function runtime — is implemented in this module's internal
// packages with only the Go standard library.
package spatialtf

import (
	"errors"
	"fmt"
	"sync"

	"spatialtf/internal/extidx"
	"spatialtf/internal/geom"
	"spatialtf/internal/pager"
	"spatialtf/internal/sjoin"
	"spatialtf/internal/storage"
)

// Re-exported geometry types and helpers, so callers need only this
// package for everyday use.
type (
	// Geometry is the sdo_geometry equivalent: point, line string,
	// polygon with holes, or a multi of those.
	Geometry = geom.Geometry
	// Point is a 2-D coordinate.
	Point = geom.Point
	// MBR is a minimum bounding rectangle.
	MBR = geom.MBR
	// RowID addresses a stored row.
	RowID = storage.RowID
	// Row is a typed table row.
	Row = storage.Row
	// Value is one column value.
	Value = storage.Value
	// Column declares a table column.
	Column = storage.Column
)

// Re-exported constructors and codecs.
var (
	// NewPoint builds a point geometry.
	NewPoint = geom.NewPoint
	// NewLineString builds a polyline geometry.
	NewLineString = geom.NewLineString
	// NewPolygon builds a polygon (outer ring + holes).
	NewPolygon = geom.NewPolygon
	// NewRect builds an axis-aligned rectangle polygon.
	NewRect = geom.NewRect
	// ParseWKT parses Well-Known Text.
	ParseWKT = geom.ParseWKT
	// MarshalWKT renders Well-Known Text.
	MarshalWKT = geom.MarshalWKT
	// Int, Float, Str, Bytes, Geom build column values.
	Int   = storage.Int
	Float = storage.Float
	Str   = storage.Str
	Bytes = storage.Bytes
	Geom  = storage.Geom
)

// Column type codes for CreateTable.
const (
	TInt64    = storage.TInt64
	TFloat64  = storage.TFloat64
	TString   = storage.TString
	TBytes    = storage.TBytes
	TGeometry = storage.TGeometry
)

// IndexKind selects an indextype.
type IndexKind = extidx.IndexKind

// The two spatial indextypes.
const (
	RTree    = extidx.KindRTree
	Quadtree = extidx.KindQuadtree
)

// MustRect is NewRect that panics on invalid input; intended for
// literals in examples and tests.
func MustRect(minX, minY, maxX, maxY float64) Geometry {
	g, err := geom.NewRect(minX, minY, maxX, maxY)
	if err != nil {
		panic(err)
	}
	return g
}

// DB is an embedded spatial database: named tables plus the extensible-
// indexing registry holding their spatial indexes.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	reg    *extidx.Registry

	// geomCache is the database-wide decoded-geometry cache the spatial
	// joins fetch through (heap rowids are never reused, so entries
	// cannot go stale). Shared across joins, parallel instances, and
	// index kinds.
	geomCache *sjoin.GeomCache

	// Telemetry state (all nil until EnableTelemetry/SetTracer): the
	// registry, the shared join instruments every join feeds, and the
	// per-query tracer SpatialJoin begins traces on.
	telReg *TelemetryRegistry
	instr  *sjoin.Instruments
	tracer *Tracer

	// Durable state (all zero for an embedded in-memory database; set by
	// OpenDir): the paged store, the filesystem and path of the catalog,
	// the table → page-space assignment, and the next free space id.
	store       *pager.Store
	dirFS       pager.FS
	catalogPath string
	spaceOf     map[string]uint32
	nextSpace   uint32
}

// Open returns an empty database with the RTREE and QUADTREE indextypes
// registered.
func Open() *DB {
	reg := extidx.NewRegistry()
	extidx.RegisterDefaultKinds(reg)
	return &DB{
		tables:    make(map[string]*Table),
		reg:       reg,
		geomCache: sjoin.NewGeomCache(0),
	}
}

// Table is a handle on a database table.
type Table struct {
	db    *DB
	inner *storage.Table

	// addMu guards the monotonic id sequence Add draws from. The
	// sequence never reuses an id, even after deletes, and is seeded
	// past the largest stored id the first time Add runs (so Add keeps
	// working on tables filled by Insert, LoadDataset or Restore).
	addMu     sync.Mutex
	addNext   int64
	addSeeded bool
}

// Errors returned by the facade.
var (
	ErrNoTable = errors.New("spatialtf: no such table")
)

// CreateTable creates a table with an arbitrary schema. On a durable
// database (OpenDir) the table is assigned its own page space and the
// catalog is rewritten atomically, so the table survives restarts.
func (db *DB) CreateTable(name string, cols []Column) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("spatialtf: table %q already exists", name)
	}
	var inner *storage.Table
	var err error
	if db.store != nil {
		space := db.nextSpace
		inner, err = storage.OpenTable(name, cols, db.store.Space(space))
		if err == nil {
			db.spaceOf[name] = space
			db.nextSpace++
		}
	} else {
		inner, err = storage.NewTable(name, cols)
	}
	if err != nil {
		return nil, err
	}
	t := &Table{db: db, inner: inner}
	db.tables[name] = t
	if db.store != nil {
		if err := db.writeCatalogLocked(); err != nil {
			delete(db.tables, name)
			delete(db.spaceOf, name)
			return nil, fmt.Errorf("spatialtf: persist catalog: %w", err)
		}
	}
	return t, nil
}

// CreateSpatialTable creates a table with the conventional spatial
// schema (id INT, name VARCHAR, geom GEOMETRY) used by the examples and
// benchmarks.
func (db *DB) CreateSpatialTable(name string) (*Table, error) {
	return db.CreateTable(name, []Column{
		{Name: "id", Type: TInt64},
		{Name: "name", Type: TString},
		{Name: "geom", Type: TGeometry},
	})
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.inner.Name() }

// Len returns the live row count.
func (t *Table) Len() int { return t.inner.Len() }

// Insert stores a row matching the table schema.
func (t *Table) Insert(vals ...Value) (RowID, error) {
	return t.inner.Insert(Row(vals))
}

// Add inserts into a CreateSpatialTable-style table: the id column is
// drawn from a monotonic per-table sequence (never reused, even after
// deletes), the name and geometry are as given.
func (t *Table) Add(name string, g Geometry) (RowID, error) {
	id, err := t.nextAddID()
	if err != nil {
		return storage.InvalidRowID, err
	}
	return t.inner.Insert(Row{Int(id), Str(name), Geom(g)})
}

// nextAddID reserves the next id for Add, seeding the sequence from the
// stored rows on first use.
func (t *Table) nextAddID() (int64, error) {
	t.addMu.Lock()
	defer t.addMu.Unlock()
	if !t.addSeeded {
		if len(t.inner.Schema()) == 0 || t.inner.Schema()[0].Type != TInt64 {
			return 0, fmt.Errorf("spatialtf: Add needs an INT id as the first column of %q", t.inner.Name())
		}
		max := int64(-1)
		if err := t.inner.Scan(func(_ RowID, row Row) bool {
			if row[0].I > max {
				max = row[0].I
			}
			return true
		}); err != nil {
			return 0, err
		}
		t.addNext = max + 1
		t.addSeeded = true
	}
	id := t.addNext
	t.addNext++
	return id, nil
}

// Fetch returns the row at id.
func (t *Table) Fetch(id RowID) (Row, error) { return t.inner.Fetch(id) }

// Geometry returns the geometry stored in the given column of row id.
func (t *Table) Geometry(id RowID, column string) (Geometry, error) {
	col, err := t.inner.ColumnIndex(column)
	if err != nil {
		return Geometry{}, err
	}
	v, err := t.inner.FetchColumn(id, col)
	if err != nil {
		return Geometry{}, err
	}
	if v.Type != TGeometry {
		return Geometry{}, fmt.Errorf("spatialtf: column %q is not a geometry", column)
	}
	return v.G, nil
}

// Delete removes the row at id (spatial indexes are maintained
// automatically).
func (t *Table) Delete(id RowID) error { return t.inner.Delete(id) }

// Update replaces the row at id, returning its new rowid. Spatial
// indexes are maintained automatically (they observe a delete followed
// by an insert).
func (t *Table) Update(id RowID, vals ...Value) (RowID, error) {
	return t.inner.Update(id, Row(vals))
}

// Scan iterates all rows in storage order.
func (t *Table) Scan(fn func(id RowID, row Row) bool) error { return t.inner.Scan(fn) }

// Inner exposes the storage-level table for advanced integrations.
func (t *Table) Inner() *storage.Table { return t.inner }
