package spatialtf

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"time"

	"spatialtf/internal/pager"
	"spatialtf/internal/storage"
)

// Durable database directories. OpenDir binds a DB to an on-disk data
// directory backed by the paged storage engine: every table lives in
// its own page space of a shared page file, mutations are write-ahead
// logged, and reopening the directory recovers committed state from
// WAL + checkpoint — no snapshot rewrite involved. Rowids are stable
// across restarts (unlike Save/Restore, which reinserts rows).
//
// The directory layout is:
//
//	pages.db     fixed-size-page file (superblock + checksummed pages)
//	wal.log      write-ahead log, rotated at checkpoint
//	catalog.bin  table and index catalog (atomic rewrite on DDL)
//
// Spatial indexes are not paged: the catalog persists their metadata
// (kind and parameters) and OpenDir rebuilds them from table rows,
// exactly as CREATE INDEX would — the paper's parallel index creation
// makes the rebuild cheap.

// SyncMode selects when the WAL is fsynced (re-exported from the pager).
type SyncMode = pager.SyncMode

// WAL sync policies for DirOptions.Sync.
const (
	// SyncAlways fsyncs the WAL on every commit: no committed write is
	// ever lost.
	SyncAlways = pager.SyncAlways
	// SyncBatch group-commits: the WAL is fsynced at a short interval,
	// bounding loss to that window.
	SyncBatch = pager.SyncBatch
	// SyncOff leaves fsync to the OS; crash durability is best-effort.
	SyncOff = pager.SyncOff
)

// DirOptions tunes OpenDir.
type DirOptions struct {
	// PoolPages is the buffer-pool capacity in pages (0 = default 1024).
	PoolPages int
	// Sync is the WAL fsync policy (default SyncAlways).
	Sync SyncMode
	// SyncInterval is the SyncBatch group-commit window (0 = default).
	SyncInterval time.Duration
	// CheckpointBytes triggers a checkpoint once the WAL grows past it
	// (0 = default 16 MiB).
	CheckpointBytes int64
	// Parallel is the worker count for rebuilding spatial indexes on
	// open (0 or 1 = sequential).
	Parallel int
	// Telemetry, when non-nil, receives the storage-engine metrics
	// (pool hits/misses/evictions, WAL bytes, checkpoints, fsync
	// latency) and the database metric set (EnableTelemetry).
	Telemetry *TelemetryRegistry

	// fs overrides the filesystem (crash-injection tests).
	fs pager.FS
}

// catalog format (little endian):
//
//	magic "STFCAT01"
//	uvarint table count
//	per table: string name; uvarint page-space id; uvarint ncols;
//	  per column (string name, byte type)
//	uvarint index count
//	per index: strings name/table/column/kind; uvarints fanout,
//	  tilingLevel, interiorEffort; 4 × float64 bounds
//	uint32 CRC-32C over everything above
const (
	catalogMagic = "STFCAT01"
	catalogFile  = "catalog.bin"
	// maxCatalogEntries bounds table and index counts read from disk
	// before they size allocations.
	maxCatalogEntries = 1 << 16
)

var catalogCRC = crc32.MakeTable(crc32.Castagnoli)

// OpenDir opens (creating if needed) a durable database in dir. Crash
// recovery — WAL redo and checkpoint convergence — happens inside the
// pager before tables are bound; index rebuild happens here.
func OpenDir(dir string, opt DirOptions) (*DB, error) {
	fs := opt.fs
	if fs == nil {
		fs = pager.OSFS
	}
	store, err := pager.Open(dir, pager.Options{
		PoolPages:       opt.PoolPages,
		Sync:            opt.Sync,
		SyncInterval:    opt.SyncInterval,
		CheckpointBytes: opt.CheckpointBytes,
		FS:              fs,
		Telemetry:       opt.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	db := Open()
	db.store = store
	db.dirFS = fs
	db.catalogPath = filepath.Join(dir, catalogFile)
	db.spaceOf = make(map[string]uint32)
	db.nextSpace = 1
	if opt.Telemetry != nil {
		db.EnableTelemetry(opt.Telemetry)
	}
	if err := db.loadCatalog(opt.Parallel); err != nil {
		store.Close()
		return nil, err
	}
	return db, nil
}

// Durable reports whether the database is backed by a data directory.
func (db *DB) Durable() bool { return db.store != nil }

// Checkpoint flushes committed pages to the page file and rotates the
// WAL. A no-op on non-durable databases.
func (db *DB) Checkpoint() error {
	if db.store == nil {
		return nil
	}
	return db.store.Checkpoint()
}

// Close checkpoints and releases the data directory. A no-op on
// non-durable databases; safe to call twice.
func (db *DB) Close() error {
	if db.store == nil {
		return nil
	}
	return db.store.Close()
}

// TableNames lists the database's tables in no particular order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	return names
}

// loadCatalog binds the catalogued tables to their page spaces and
// rebuilds the catalogued indexes. A missing catalog is an empty
// database (first open).
func (db *DB) loadCatalog(parallel int) error {
	ok, err := db.dirFS.Exists(db.catalogPath)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	f, err := db.dirFS.Open(db.catalogPath)
	if err != nil {
		return err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return err
	}
	raw := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(raw, 0); err != nil {
			f.Close()
			return fmt.Errorf("spatialtf: read catalog: %w", err)
		}
	}
	f.Close()

	if len(raw) < len(catalogMagic)+4 || string(raw[:len(catalogMagic)]) != catalogMagic {
		return fmt.Errorf("spatialtf: %s is not a catalog", db.catalogPath)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, catalogCRC) != binary.LittleEndian.Uint32(tail) {
		return fmt.Errorf("spatialtf: catalog checksum mismatch")
	}
	br := bufio.NewReader(bytes.NewReader(body[len(catalogMagic):]))

	tableCount, err := binary.ReadUvarint(br)
	if err != nil || tableCount > maxCatalogEntries {
		return fmt.Errorf("spatialtf: catalog table count: %v", err)
	}
	for i := uint64(0); i < tableCount; i++ {
		name, err := readString(br)
		if err != nil {
			return fmt.Errorf("spatialtf: catalog table %d: %w", i, err)
		}
		space, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		ncols, err := binary.ReadUvarint(br)
		if err != nil || ncols == 0 || ncols > maxSnapshotCols {
			return fmt.Errorf("spatialtf: catalog table %q columns: %v", name, err)
		}
		schema := make([]Column, ncols)
		for c := range schema {
			cn, err := readString(br)
			if err != nil {
				return err
			}
			tb, err := br.ReadByte()
			if err != nil {
				return err
			}
			schema[c] = Column{Name: cn, Type: storage.ColType(tb)}
		}
		inner, err := storage.OpenTable(name, schema, db.store.Space(uint32(space)))
		if err != nil {
			return fmt.Errorf("spatialtf: open table %q: %w", name, err)
		}
		db.tables[name] = &Table{db: db, inner: inner}
		db.spaceOf[name] = uint32(space)
		if uint32(space) >= db.nextSpace {
			db.nextSpace = uint32(space) + 1
		}
	}

	idxCount, err := binary.ReadUvarint(br)
	if err != nil || idxCount > maxCatalogEntries {
		return fmt.Errorf("spatialtf: catalog index count: %v", err)
	}
	for i := uint64(0); i < idxCount; i++ {
		var fields [4]string
		for j := range fields {
			s, err := readString(br)
			if err != nil {
				return fmt.Errorf("spatialtf: catalog index %d: %w", i, err)
			}
			fields[j] = s
		}
		var nums [3]uint64
		for j := range nums {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return err
			}
			nums[j] = v
		}
		var bounds MBR
		for _, dst := range []*float64{&bounds.MinX, &bounds.MinY, &bounds.MaxX, &bounds.MaxY} {
			var fbuf [8]byte
			if _, err := io.ReadFull(br, fbuf[:]); err != nil {
				return err
			}
			*dst = floatFromUint64(binary.LittleEndian.Uint64(fbuf[:]))
		}
		opt := IndexOptions{
			Fanout:         int(nums[0]),
			TilingLevel:    int(nums[1]),
			InteriorEffort: int(nums[2]),
			Parallel:       parallel,
		}
		if IndexKind(fields[3]) == Quadtree {
			opt.Bounds = bounds
		}
		if _, err := db.createIndexOn(fields[0], fields[1], fields[2], IndexKind(fields[3]), opt, false); err != nil {
			return fmt.Errorf("spatialtf: rebuild index %q: %w", fields[0], err)
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return fmt.Errorf("spatialtf: trailing bytes after catalog")
	}
	return nil
}

// writeCatalogLocked rewrites catalog.bin atomically (temp file, fsync,
// rename, directory fsync). Caller holds db.mu.
func (db *DB) writeCatalogLocked() error {
	buf := []byte(catalogMagic)
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = catPutString(buf, name)
		buf = binary.AppendUvarint(buf, uint64(db.spaceOf[name]))
		schema := db.tables[name].inner.Schema()
		buf = binary.AppendUvarint(buf, uint64(len(schema)))
		for _, c := range schema {
			buf = catPutString(buf, c.Name)
			buf = append(buf, byte(c.Type))
		}
	}
	metas, err := db.reg.MetadataRows()
	if err != nil {
		return err
	}
	buf = binary.AppendUvarint(buf, uint64(len(metas)))
	for _, m := range metas {
		buf = catPutString(buf, m.IndexName)
		buf = catPutString(buf, m.TableName)
		buf = catPutString(buf, m.ColumnName)
		buf = catPutString(buf, string(m.Kind))
		buf = binary.AppendUvarint(buf, uint64(m.Fanout))
		buf = binary.AppendUvarint(buf, uint64(m.TilingLevel))
		buf = binary.AppendUvarint(buf, uint64(m.InteriorEffort))
		for _, f := range []float64{m.Bounds.MinX, m.Bounds.MinY, m.Bounds.MaxX, m.Bounds.MaxY} {
			buf = binary.LittleEndian.AppendUint64(buf, uint64FromFloat(f))
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, catalogCRC))
	return pager.AtomicWriteFile(db.dirFS, db.catalogPath, buf)
}

func catPutString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}
