// Parallel index creation: the Table 3 scenario — build Quadtree and
// R-tree indexes over complex block-group polygons at increasing
// degrees of parallelism and report the phase timings, demonstrating
// that tessellation dominates quadtree creation and parallel table
// functions recover most of it.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"spatialtf"
	"spatialtf/internal/datagen"
	"spatialtf/internal/idxbuild"
	"spatialtf/internal/quadtree"
)

func main() {
	var (
		n     = flag.Int("n", 4000, "number of block-group polygons")
		level = flag.Int("level", 8, "quadtree tiling level")
		seed  = flag.Int64("seed", 3, "generator seed")
		sim   = flag.Bool("simulate", runtime.NumCPU() < 4, "use the multi-processor simulator (auto on small hosts)")
	)
	flag.Parse()

	ds := datagen.BlockGroups(*n, *seed)
	tab, _, err := datagen.LoadTable("blockgroups", ds)
	if err != nil {
		log.Fatal(err)
	}
	grid, err := quadtree.NewGrid(ds.Bounds, *level)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d complex polygons, %d total vertices\n", tab.Len(), ds.TotalVertices())
	fmt.Printf("timing mode: ")
	if *sim {
		fmt.Println("multi-processor simulator (per-partition makespan)")
	} else {
		fmt.Printf("wall clock on %d CPUs\n", runtime.NumCPU())
	}

	fmt.Printf("\n%-10s %-22s %-22s\n", "workers", "quadtree (tessellate)", "rtree (mbr load)")
	var q1, r1 float64
	for _, w := range []int{1, 2, 4} {
		var qs, rs idxbuild.Stats
		if *sim {
			_, q, err := idxbuild.CreateQuadtreeSim(tab, "geom", grid, w)
			if err != nil {
				log.Fatal(err)
			}
			_, r, err := idxbuild.CreateRtreeSim(tab, "geom", 0, w)
			if err != nil {
				log.Fatal(err)
			}
			qs, rs = q.Stats, r.Stats
		} else {
			if _, qs, err = idxbuild.CreateQuadtree(tab, "geom", grid, w); err != nil {
				log.Fatal(err)
			}
			if _, rs, err = idxbuild.CreateRtree(tab, "geom", 0, w); err != nil {
				log.Fatal(err)
			}
		}
		q := qs.Total.Seconds()
		r := rs.Total.Seconds()
		if w == 1 {
			q1, r1 = q, r
		}
		fmt.Printf("%-10d %-22s %-22s", w,
			fmt.Sprintf("%.3fs (%.3fs)", q, qs.LoadPhase.Seconds()),
			fmt.Sprintf("%.3fs (%.3fs)", r, rs.LoadPhase.Seconds()))
		if w > 1 {
			fmt.Printf("  speedup: quadtree %.2fx, rtree %.2fx", q1/q, r1/r)
		}
		fmt.Println()
	}

	// The framework path: the same builds through CREATE INDEX with the
	// PARALLEL clause, registered in the metadata catalogue.
	db := spatialtf.Open()
	if _, err := db.LoadDataset("bg", spatialtf.BlockGroups(*n/4, *seed)); err != nil {
		log.Fatal(err)
	}
	if _, err := db.CreateIndex("bg_qt", "bg", spatialtf.Quadtree,
		spatialtf.IndexOptions{TilingLevel: *level, Bounds: spatialtf.World, Parallel: 4}); err != nil {
		log.Fatal(err)
	}
	if _, err := db.CreateIndex("bg_rt", "bg", spatialtf.RTree,
		spatialtf.IndexOptions{Parallel: 4}); err != nil {
		log.Fatal(err)
	}
	metas, err := db.IndexMetadata()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nindexes created through the extensible-indexing framework:")
	for _, m := range metas {
		fmt.Printf("  %s kind=%s level=%d rows=%d\n", m.IndexName, m.Kind, m.TilingLevel, m.RowsIndexed)
	}
}
