// Star catalogue scaling: the Table 2 scenario — self-join of a
// clustered star catalogue at growing subset sizes, comparing the
// nested-loop baseline, the serial pipelined table-function join, and
// the parallel subtree-decomposed join.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"spatialtf"
)

func main() {
	var (
		maxSize = flag.Int("max", 20000, "largest subset size")
		workers = flag.Int("workers", 2, "parallel join instances")
		seed    = flag.Int64("seed", 2, "generator seed")
	)
	flag.Parse()

	full := spatialtf.Stars(*maxSize, *seed)
	sizes := []int{}
	for n := 25; n < *maxSize; n *= 10 {
		sizes = append(sizes, n)
	}
	sizes = append(sizes, *maxSize)

	fmt.Println("star catalogue self-join scaling (ANYINTERACT)")
	fmt.Printf("%-10s %-10s %-14s %-14s %-14s\n", "stars", "pairs", "nested loop", "index join", fmt.Sprintf("parallel(%d)", *workers))
	for _, n := range sizes {
		db := spatialtf.Open()
		subset := spatialtf.Dataset{Name: "stars", Geoms: full.Geoms[:n], Bounds: full.Bounds}
		if _, err := db.LoadDataset("stars", subset); err != nil {
			log.Fatal(err)
		}
		if _, err := db.CreateIndex("stars_idx", "stars", spatialtf.RTree, spatialtf.IndexOptions{}); err != nil {
			log.Fatal(err)
		}

		t0 := time.Now()
		nl, err := db.NestedLoopJoin("stars", "stars_idx", "stars", "stars_idx", spatialtf.JoinOptions{})
		if err != nil {
			log.Fatal(err)
		}
		nlTime := time.Since(t0)

		t0 = time.Now()
		cur, err := db.SpatialJoin("stars", "stars_idx", "stars", "stars_idx", spatialtf.JoinOptions{})
		if err != nil {
			log.Fatal(err)
		}
		ij, err := cur.Collect()
		if err != nil {
			log.Fatal(err)
		}
		ijTime := time.Since(t0)

		t0 = time.Now()
		pcur, err := db.SpatialJoin("stars", "stars_idx", "stars", "stars_idx",
			spatialtf.JoinOptions{Parallel: *workers})
		if err != nil {
			log.Fatal(err)
		}
		pj, err := pcur.Collect()
		if err != nil {
			log.Fatal(err)
		}
		pjTime := time.Since(t0)

		if len(nl) != len(ij) || len(ij) != len(pj) {
			log.Fatalf("n=%d: strategies disagree (%d, %d, %d pairs)", n, len(nl), len(ij), len(pj))
		}
		fmt.Printf("%-10d %-10d %-14s %-14s %-14s\n", n, len(ij),
			nlTime.Round(time.Microsecond), ijTime.Round(time.Microsecond), pjTime.Round(time.Microsecond))
	}
	fmt.Println("\n(on single-core hosts the parallel column cannot beat wall-clock;")
	fmt.Println(" cmd/spatialbench -table 2 uses the multi-processor simulator instead)")
}
