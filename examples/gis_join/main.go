// GIS join: the paper's motivating workload — "identify the number of
// pairs of geometries from the cities and rivers tables that intersect
// each other" (§4) — on a counties map with synthetic meandering rivers,
// comparing the nested-loop baseline with the table-function join at
// several distances, as in Table 1.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"spatialtf"
)

// makeRivers generates n random-walk polylines across the world.
func makeRivers(n int, seed int64) []spatialtf.Geometry {
	rng := rand.New(rand.NewSource(seed))
	var rivers []spatialtf.Geometry
	for len(rivers) < n {
		// Start on the west edge, walk east with meanders.
		y := 50 + rng.Float64()*900
		pts := []spatialtf.Point{{X: 0, Y: y}}
		x := 0.0
		dir := 0.0
		for x < 1000 {
			x += 15 + rng.Float64()*25
			dir += (rng.Float64() - 0.5) * 0.8
			y += 30 * math.Sin(dir)
			if y < 1 {
				y = 1
			}
			if y > 999 {
				y = 999
			}
			if x > 1000 {
				x = 1000
			}
			pts = append(pts, spatialtf.Point{X: x, Y: y})
		}
		g, err := spatialtf.NewLineString(pts)
		if err != nil {
			continue
		}
		rivers = append(rivers, g)
	}
	return rivers
}

func main() {
	db := spatialtf.Open()

	// 400 contiguous counties.
	if _, err := db.LoadDataset("counties", spatialtf.Counties(400, 42)); err != nil {
		log.Fatal(err)
	}
	// 40 rivers crossing the map.
	rivers, err := db.CreateSpatialTable("rivers")
	if err != nil {
		log.Fatal(err)
	}
	for i, g := range makeRivers(40, 7) {
		if _, err := rivers.Add(fmt.Sprintf("river-%d", i), g); err != nil {
			log.Fatal(err)
		}
	}

	for _, spec := range []struct{ name, table string }{
		{"counties_idx", "counties"},
		{"rivers_idx", "rivers"},
	} {
		if _, err := db.CreateIndex(spec.name, spec.table, spatialtf.RTree, spatialtf.IndexOptions{}); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("counties x rivers join (which rivers cross which counties):")
	fmt.Printf("%-10s %-8s %-14s %-14s\n", "distance", "pairs", "nested loop", "index join")
	for _, d := range []float64{0, 10, 25} {
		opt := spatialtf.JoinOptions{Mask: "anyinteract", Distance: d}

		t0 := time.Now()
		nl, err := db.NestedLoopJoin("counties", "counties_idx", "rivers", "rivers_idx", opt)
		if err != nil {
			log.Fatal(err)
		}
		nlTime := time.Since(t0)

		t0 = time.Now()
		cur, err := db.SpatialJoin("counties", "counties_idx", "rivers", "rivers_idx", opt)
		if err != nil {
			log.Fatal(err)
		}
		ij, err := cur.Collect()
		if err != nil {
			log.Fatal(err)
		}
		ijTime := time.Since(t0)

		if len(nl) != len(ij) {
			log.Fatalf("strategies disagree: %d vs %d pairs", len(nl), len(ij))
		}
		fmt.Printf("%-10g %-8d %-14s %-14s\n", d, len(ij),
			nlTime.Round(time.Microsecond), ijTime.Round(time.Microsecond))
	}

	// Per-river county counts from one join pass.
	cur, err := db.SpatialJoin("rivers", "rivers_idx", "counties", "counties_idx",
		spatialtf.JoinOptions{Mask: "anyinteract"})
	if err != nil {
		log.Fatal(err)
	}
	counts := map[string]int{}
	for {
		p, ok, err := cur.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		row, err := rivers.Fetch(p.A)
		if err != nil {
			log.Fatal(err)
		}
		counts[row[1].S]++
	}
	cur.Close()
	longest, n := "", 0
	for r, c := range counts {
		if c > n {
			longest, n = r, c
		}
	}
	fmt.Printf("\n%d rivers touch at least one county; %s crosses the most (%d counties)\n",
		len(counts), longest, n)
}
