// Quickstart: create a spatial table, index it, run window queries and
// a spatial join — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"spatialtf"
)

func main() {
	db := spatialtf.Open()

	// A table of city footprints (id INT, name VARCHAR, geom GEOMETRY).
	cities, err := db.CreateSpatialTable("cities")
	if err != nil {
		log.Fatal(err)
	}
	for name, g := range map[string]spatialtf.Geometry{
		"springfield": spatialtf.MustRect(10, 10, 14, 14),
		"shelbyville": spatialtf.MustRect(20, 12, 23, 16),
		"ogdenville":  spatialtf.MustRect(40, 40, 44, 45),
	} {
		if _, err := cities.Add(name, g); err != nil {
			log.Fatal(err)
		}
	}

	// A table of rivers (line strings), parsed from WKT.
	rivers, err := db.CreateSpatialTable("rivers")
	if err != nil {
		log.Fatal(err)
	}
	for name, wkt := range map[string]string{
		"long_river":  "LINESTRING (5 12, 16 13, 30 14, 50 15)",
		"short_creek": "LINESTRING (41 20, 42 30, 43 41)",
	} {
		g, err := spatialtf.ParseWKT(wkt)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := rivers.Add(name, g); err != nil {
			log.Fatal(err)
		}
	}

	// Spatial R-tree indexes on both geometry columns. DML after index
	// creation is maintained automatically.
	if _, err := db.CreateIndex("cities_idx", "cities", spatialtf.RTree, spatialtf.IndexOptions{}); err != nil {
		log.Fatal(err)
	}
	if _, err := db.CreateIndex("rivers_idx", "rivers", spatialtf.RTree, spatialtf.IndexOptions{}); err != nil {
		log.Fatal(err)
	}

	// Window query: which cities interact with this rectangle?
	window := spatialtf.MustRect(8, 8, 25, 18)
	hits, err := db.Relate("cities", "cities_idx", window, "anyinteract")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cities intersecting %v:\n", window)
	for _, id := range hits {
		row, err := cities.Fetch(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", row[1].S)
	}

	// Within-distance query.
	near, err := db.WithinDistance("cities", "cities_idx", spatialtf.NewPoint(30, 14), 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cities within 8 units of POINT(30 14): %d\n", len(near))

	// The paper's headline operation — the spatial join as a pipelined
	// table function:
	//
	//	select count(*) from city_table a, river_table b
	//	where (a.rowid, b.rowid) in
	//	  (select rid1, rid2 from TABLE(spatial_join(
	//	     'city_table','city_geom','river_table','river_geom','intersect')));
	cur, err := db.SpatialJoin("cities", "cities_idx", "rivers", "rivers_idx",
		spatialtf.JoinOptions{Mask: "anyinteract"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("city-river intersections:")
	for {
		p, ok, err := cur.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		c, _ := cities.Fetch(p.A)
		r, _ := rivers.Fetch(p.B)
		fmt.Printf("  %s crosses %s\n", r[1].S, c[1].S)
	}
	cur.Close()

	// Index catalogue (the metadata table of the extensible-indexing
	// framework).
	metas, err := db.IndexMetadata()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("spatial index metadata:")
	for _, m := range metas {
		fmt.Printf("  %s on %s.%s kind=%s fanout=%d rows=%d\n",
			m.IndexName, m.TableName, m.ColumnName, m.Kind, m.Fanout, m.RowsIndexed)
	}
}
