package server

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"spatialtf"
	"spatialtf/internal/sqlmini"
	"spatialtf/internal/storage"
	"spatialtf/internal/wire"
)

// newTestDB loads a counties table with an R-tree index, the operand
// every test query runs against.
func newTestDB(t testing.TB, rows int) *spatialtf.DB {
	t.Helper()
	db := spatialtf.Open()
	if _, err := db.LoadDataset("counties", spatialtf.Counties(rows, 701)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("counties_idx", "counties", spatialtf.RTree,
		spatialtf.IndexOptions{Parallel: 2}); err != nil {
		t.Fatal(err)
	}
	return db
}

// startTestServer serves cfg over a loopback listener and returns the
// server plus its address. The server shuts down with the test.
func startTestServer(t testing.TB, db *spatialtf.DB, cfg Config) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, cfg)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-errc; err != nil && err != ErrServerClosed {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

const joinSQL = "SELECT rid1, rid2 FROM TABLE(spatial_join('counties','geom','counties','geom','anyinteract', 0))"

// TestServerEndToEnd is the acceptance scenario: 8 concurrent clients
// over loopback, each alternating streamed spatial_join fetches with
// sdo_relate point queries, under -race.
func TestServerEndToEnd(t *testing.T) {
	db := newTestDB(t, 96)
	// The expected join cardinality, computed locally.
	cur, err := db.SpatialJoin("counties", "counties_idx", "counties", "counties_idx", spatialtf.JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := cur.Collect()
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := len(pairs)

	srv, addr := startTestServer(t, db, Config{DefaultBatch: 16, MaxBatch: 64})
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli, err := wire.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			for round := 0; round < 3; round++ {
				// Streamed join, fetched in small batches.
				res, err := cli.Query(joinSQL)
				if err != nil {
					errs <- fmt.Errorf("client %d: %w", i, err)
					return
				}
				if res.Cursor == nil {
					errs <- fmt.Errorf("client %d: join did not stream", i)
					return
				}
				n := 0
				for {
					rows, done, err := res.Cursor.Fetch(16)
					if err != nil {
						errs <- fmt.Errorf("client %d fetch: %w", i, err)
						return
					}
					n += len(rows)
					if done {
						break
					}
				}
				if n != wantPairs {
					errs <- fmt.Errorf("client %d: join streamed %d pairs, want %d", i, n, wantPairs)
					return
				}
				// Window query while other clients stream joins.
				res, err = cli.Query("SELECT name FROM counties WHERE sdo_relate(geom, 'POLYGON ((0 0, 1000 0, 1000 1000, 0 1000, 0 0))', 'mask=anyinteract') = 'TRUE'")
				if err != nil {
					errs <- fmt.Errorf("client %d relate: %w", i, err)
					return
				}
				if res.Cursor == nil {
					errs <- fmt.Errorf("client %d: relate did not stream", i)
					return
				}
				names := 0
				for {
					row, ok, err := res.Cursor.Next()
					if err != nil {
						errs <- fmt.Errorf("client %d relate next: %w", i, err)
						return
					}
					if !ok {
						break
					}
					if row[0].S == "" {
						errs <- fmt.Errorf("client %d: empty name", i)
						return
					}
					names++
				}
				if names == 0 {
					errs <- fmt.Errorf("client %d: world window matched nothing", i)
					return
				}
				// COUNT comes back as an immediate result, not a cursor.
				res, err = cli.Query("SELECT count(*) FROM counties")
				if err != nil {
					errs <- fmt.Errorf("client %d count: %w", i, err)
					return
				}
				if res.Cursor != nil || !res.HasCount || res.Count != 96 {
					errs <- fmt.Errorf("client %d: count = %+v", i, res)
					return
				}
			}
			// Stats over the same connection.
			if _, err := cli.Stats(); err != nil {
				errs <- fmt.Errorf("client %d stats: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s := srv.Stats().Snapshot()
	if s.ConnsAccepted != clients || s.CursorsOpen != 0 {
		t.Errorf("stats after drain: %+v", s)
	}
	if want := int64(clients * 3 * wantPairs); s.RowsStreamed < want {
		t.Errorf("rows streamed %d, want >= %d join rows", s.RowsStreamed, want)
	}
}

// TestServerBoundedStreaming proves the server never materialises a
// result: a join far larger than one batch streams one bounded batch at
// a time, and rows are only produced as the client pulls them.
func TestServerBoundedStreaming(t *testing.T) {
	db := newTestDB(t, 256)
	srv, addr := startTestServer(t, db, Config{DefaultBatch: 32, MaxBatch: 32})
	cli, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := cli.Query(joinSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cursor == nil {
		t.Fatal("join did not stream")
	}
	// First pull: asking for far more than MaxBatch still yields at most
	// MaxBatch rows, and the server has produced only that many.
	rows, done, err := res.Cursor.Fetch(100000)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("256-county self-join fit in one 32-row batch")
	}
	if len(rows) != 32 {
		t.Fatalf("first batch %d rows, want the 32-row cap", len(rows))
	}
	if s := srv.Stats().Snapshot(); s.RowsStreamed != 32 {
		t.Fatalf("server produced %d rows before the second pull; streaming is not lazy", s.RowsStreamed)
	}
	// Drain the rest and check the total against a local join.
	total := len(rows)
	for !done {
		rows, done, err = res.Cursor.Fetch(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) > 32 {
			t.Fatalf("batch of %d rows exceeds cap", len(rows))
		}
		total += len(rows)
	}
	cur, err := db.SpatialJoin("counties", "counties_idx", "counties", "counties_idx", spatialtf.JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := cur.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if total != len(pairs) {
		t.Fatalf("streamed %d pairs, local join has %d", total, len(pairs))
	}
	if s := srv.Stats().Snapshot(); s.CursorsOpen != 0 {
		t.Fatalf("cursor not released after drain: %+v", s)
	}
}

func TestServerConnectionLimit(t *testing.T) {
	db := newTestDB(t, 8)
	_, addr := startTestServer(t, db, Config{MaxConns: 1})
	first, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	// Prove the first connection works before occupying the slot check.
	if _, err := first.Query("SELECT count(*) FROM counties"); err != nil {
		t.Fatal(err)
	}
	second, err := wire.Dial(addr)
	if err != nil {
		t.Fatalf("dial should succeed (rejection is in-protocol): %v", err)
	}
	defer second.Close()
	_, err = second.Query("SELECT count(*) FROM counties")
	if err == nil || !strings.Contains(err.Error(), "connection limit") {
		t.Fatalf("second connection error = %v, want connection limit", err)
	}
	// Closing the first connection frees the slot.
	first.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		third, err := wire.Dial(addr)
		if err == nil {
			_, err = third.Query("SELECT count(*) FROM counties")
			third.Close()
			if err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerCursorLimit(t *testing.T) {
	db := newTestDB(t, 32)
	_, addr := startTestServer(t, db, Config{MaxCursorsPerConn: 2})
	cli, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var open []*wire.Cursor
	for i := 0; i < 2; i++ {
		res, err := cli.Query(joinSQL)
		if err != nil {
			t.Fatal(err)
		}
		open = append(open, res.Cursor)
	}
	_, err = cli.Query(joinSQL)
	if err == nil || !strings.Contains(err.Error(), "cursor limit") {
		t.Fatalf("third cursor error = %v, want cursor limit", err)
	}
	// Closing one frees a slot.
	if err := open[0].Close(); err != nil {
		t.Fatal(err)
	}
	res, err := cli.Query(joinSQL)
	if err != nil {
		t.Fatalf("after close: %v", err)
	}
	res.Cursor.Close()
	open[1].Close()
}

func TestServerRowLimit(t *testing.T) {
	db := newTestDB(t, 128)
	_, addr := startTestServer(t, db, Config{MaxRowsPerQuery: 50, DefaultBatch: 20})
	cli, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := cli.Query(joinSQL)
	if err != nil {
		t.Fatal(err)
	}
	var fetchErr error
	for i := 0; i < 100; i++ {
		_, done, err := res.Cursor.Fetch(0)
		if err != nil {
			fetchErr = err
			break
		}
		if done {
			break
		}
	}
	if fetchErr == nil || !strings.Contains(fetchErr.Error(), "row limit") {
		t.Fatalf("fetch error = %v, want row limit", fetchErr)
	}
	// The aborted cursor is gone server-side; a fresh query still works.
	res, err = cli.Query("SELECT count(*) FROM counties")
	if err != nil || res.Count != 128 {
		t.Fatalf("connection unusable after row limit: %+v, %v", res, err)
	}
}

func TestServerQueryTimeout(t *testing.T) {
	db := newTestDB(t, 64)
	_, addr := startTestServer(t, db, Config{QueryTimeout: 30 * time.Millisecond})
	cli, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := cli.Query(joinSQL)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.Cursor.Fetch(1); err != nil {
		t.Fatalf("fetch before deadline: %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	_, _, err = res.Cursor.Fetch(1)
	if err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("fetch after deadline = %v, want timeout", err)
	}
}

func TestServerErrorsKeepConnectionUsable(t *testing.T) {
	db := newTestDB(t, 8)
	_, addr := startTestServer(t, db, Config{})
	cli, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Query("SELEK nonsense"); err == nil {
		t.Errorf("parse error not reported")
	}
	if _, err := cli.Query("SELECT name FROM missing"); err == nil {
		t.Errorf("missing table not reported")
	}
	res, err := cli.Query("SELECT count(*) FROM counties")
	if err != nil || res.Count != 8 {
		t.Fatalf("connection unusable after errors: %+v, %v", res, err)
	}
}

// TestServerDDLOverWire drives the full statement surface remotely:
// create, insert, index, query, delete.
func TestServerDDLOverWire(t *testing.T) {
	db := spatialtf.Open()
	_, addr := startTestServer(t, db, Config{})
	cli, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	stmts := []string{
		"CREATE TABLE cities (id INT, name VARCHAR, geom GEOMETRY)",
		"INSERT INTO cities VALUES (1, 'springfield', 'POLYGON ((10 10, 14 10, 14 14, 10 14, 10 10))')",
		"INSERT INTO cities VALUES (2, 'shelbyville', 'POLYGON ((30 30, 34 30, 34 34, 30 34, 30 30))')",
		"CREATE INDEX cities_idx ON cities(geom) INDEXTYPE IS RTREE",
	}
	for _, s := range stmts {
		if _, err := cli.Query(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	res, err := cli.Query("SELECT name FROM cities WHERE sdo_relate(geom, 'POINT (12 12)', 'mask=contains') = 'TRUE'")
	if err != nil {
		t.Fatal(err)
	}
	rows, done, err := res.Cursor.Fetch(0)
	if err != nil || !done || len(rows) != 1 || rows[0][0].S != "springfield" {
		t.Fatalf("relate rows = %v done=%v err=%v", rows, done, err)
	}
}

// TestServerGracefulShutdown: a connection with an open cursor keeps
// draining it through Shutdown, while new queries are refused.
func TestServerGracefulShutdown(t *testing.T) {
	db := newTestDB(t, 96)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{DefaultBatch: 8})
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	cli, err := wire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := cli.Query(joinSQL)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.Cursor.Fetch(0); err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Give Shutdown time to close the listener and flag shutdown.
	deadline := time.Now().Add(2 * time.Second)
	for !srv.inShutdown.Load() {
		if time.Now().After(deadline) {
			t.Fatal("shutdown flag never set")
		}
		time.Sleep(time.Millisecond)
	}
	// New queries on the draining connection are refused...
	if _, err := cli.Query("SELECT count(*) FROM counties"); err == nil ||
		!strings.Contains(err.Error(), "shutting down") {
		t.Fatalf("query during shutdown = %v, want shutting down", err)
	}
	// ...but the open cursor still drains to completion.
	n := 0
	for {
		rows, done, err := res.Cursor.Fetch(0)
		if err != nil {
			t.Fatalf("drain during shutdown: %v", err)
		}
		n += len(rows)
		if done {
			break
		}
	}
	if n == 0 {
		t.Fatal("no rows drained during shutdown")
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
	if err := <-serveErr; err != ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	// New connections are refused outright.
	if _, err := wire.Dial(ln.Addr().String()); err == nil {
		t.Errorf("dial after shutdown succeeded")
	}
}

// TestServerConcurrentQueriesAndDML streams joins from several clients
// while the database takes inserts underneath, under -race: fetches see
// a consistent pinned snapshot per cursor and nothing crashes.
func TestServerConcurrentQueriesAndDML(t *testing.T) {
	db := newTestDB(t, 64)
	tab, err := db.Table("counties")
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startTestServer(t, db, Config{DefaultBatch: 16})
	stop := make(chan struct{})
	var writerWg sync.WaitGroup
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			g := spatialtf.MustRect(float64(i%900), float64(i%900), float64(i%900+5), float64(i%900+5))
			if _, err := tab.Add(fmt.Sprintf("live-%d", i), g); err != nil {
				t.Error(err)
				return
			}
			i++
			time.Sleep(time.Millisecond)
		}
	}()
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := wire.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			for round := 0; round < 5; round++ {
				res, err := cli.Query(joinSQL)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				for {
					_, done, err := res.Cursor.Fetch(0)
					if err != nil {
						t.Errorf("fetch: %v", err)
						return
					}
					if done {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	writerWg.Wait()
}

// TestServerShutdownMultiClientDrain shuts down under three clients
// with open cursors, one of which drops its connection mid-stream: the
// survivors drain to completion, the dead connection's cursor is
// reaped, and the server ends with zero connections and zero cursors.
func TestServerShutdownMultiClientDrain(t *testing.T) {
	db := newTestDB(t, 96)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{DefaultBatch: 8})
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	const clients = 3
	clis := make([]*wire.Client, clients)
	curs := make([]*wire.Cursor, clients)
	for i := range clis {
		cli, err := wire.Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		res, err := cli.Query(joinSQL)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := res.Cursor.Fetch(0); err != nil {
			t.Fatal(err)
		}
		clis[i], curs[i] = cli, res.Cursor
	}

	// Client 2 vanishes mid-stream without closing its cursor: the
	// server must reap the cursor with the connection, not leak it into
	// the drain accounting.
	clis[2].Close()

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !srv.inShutdown.Load() {
		if time.Now().After(deadline) {
			t.Fatal("shutdown flag never set")
		}
		time.Sleep(time.Millisecond)
	}

	// The surviving clients drain their cursors to completion while the
	// server waits.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := 0
			for {
				rows, done, err := curs[i].Fetch(0)
				if err != nil {
					t.Errorf("client %d drain: %v", i, err)
					return
				}
				n += len(rows)
				if done {
					break
				}
			}
			if n == 0 {
				t.Errorf("client %d drained no rows", i)
			}
			clis[i].Close()
		}(i)
	}
	wg.Wait()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown with draining clients returned %v", err)
	}
	if err := <-serveErr; err != ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	s := srv.Stats().Snapshot()
	if s.ConnsActive != 0 {
		t.Errorf("%d connections still accounted active after shutdown", s.ConnsActive)
	}
	if s.CursorsOpen != 0 {
		t.Errorf("%d cursors still accounted open after shutdown (mid-stream disconnect leaked)", s.CursorsOpen)
	}
}

// errAfterCursor yields n rows, then fails.
type errAfterCursor struct {
	n, emitted int
}

func (c *errAfterCursor) Next() (storage.RowID, storage.Row, bool, error) {
	if c.emitted >= c.n {
		return storage.InvalidRowID, nil, false, fmt.Errorf("backend exploded after %d rows", c.n)
	}
	c.emitted++
	return storage.InvalidRowID, storage.Row{storage.Int(int64(c.emitted))}, true, nil
}

func (c *errAfterCursor) Close() error { return nil }

type errAfterBackend struct{ n int }

func (b errAfterBackend) NewSession() Session { return errAfterSession{n: b.n} }

type errAfterSession struct{ n int }

func (s errAfterSession) Close() error { return nil }

func (s errAfterSession) ExecuteStream(sql string) (*sqlmini.Stream, error) {
	return &sqlmini.Stream{
		Schema: []storage.Column{{Name: "id", Type: storage.TInt64}},
		Cursor: &errAfterCursor{n: s.n},
	}, nil
}

// TestServerDeliversRowsBeforeCursorError pins the deferred-error
// contract: when a cursor fails mid-batch, the rows already assembled
// are delivered first and the error answers the next fetch — a late
// stream error (a cluster partial result, say) must not swallow
// results the engine already produced.
func TestServerDeliversRowsBeforeCursorError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWith(errAfterBackend{n: 7}, Config{})
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-errc
	}()

	cli, err := wire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := cli.Query("SELECT id FROM whatever")
	if err != nil {
		t.Fatal(err)
	}
	// A batch far larger than the row count forces the error to arrive
	// mid-assembly.
	rows, done, err := res.Cursor.Fetch(100)
	if err != nil || done {
		t.Fatalf("first fetch: rows=%d done=%v err=%v, want the 7 pre-error rows", len(rows), done, err)
	}
	if len(rows) != 7 {
		t.Fatalf("first fetch delivered %d rows, want 7", len(rows))
	}
	if _, _, err := res.Cursor.Fetch(100); err == nil || !strings.Contains(err.Error(), "backend exploded") {
		t.Fatalf("second fetch: err=%v, want the deferred cursor error", err)
	}
	// The errored cursor is reaped server-side.
	if n := srv.Stats().CursorsOpen.Value(); n != 0 {
		t.Fatalf("%d cursors still open after deferred error", n)
	}
}
