package server

import (
	"spatialtf/internal/telemetry"
	"spatialtf/internal/wire"
)

// Stats is the server's activity accounting, held as preregistered
// telemetry handles so the fetch hot loop updates lock-free atomics
// and never touches a map. The registry is the single source of truth:
// the /metrics scrape, the wire Stats frame, and the shells all read
// the same counters. One Stats lives per Server.
type Stats struct {
	ConnsAccepted *telemetry.Counter
	ConnsRejected *telemetry.Counter
	ConnsActive   *telemetry.Gauge
	CursorsOpened *telemetry.Counter
	CursorsOpen   *telemetry.Gauge
	Queries       *telemetry.Counter
	Errors        *telemetry.Counter
	RowsStreamed  *telemetry.Counter
	Fetches       *telemetry.Counter
	FetchNanos    *telemetry.Counter
	// FetchSeconds distributes per-fetch batch production latency; its
	// buckets back the histogram summaries in spatialsql \stats.
	FetchSeconds *telemetry.Histogram
	// BatchRows distributes rows per fetch batch (how full the paper's
	// bounded fetch pipeline runs).
	BatchRows *telemetry.Histogram
}

// newStats registers the server metric set on reg. The server always
// runs with a live registry (New falls back to a private one when the
// config carries none), so handles are never nil here.
func newStats(reg *telemetry.Registry) *Stats {
	return &Stats{
		ConnsAccepted: reg.NewCounter("server_conns_accepted_total", "client connections accepted"),
		ConnsRejected: reg.NewCounter("server_conns_rejected_total", "client connections rejected at the connection limit"),
		ConnsActive:   reg.NewGauge("server_conns_active", "client connections currently open"),
		CursorsOpened: reg.NewCounter("server_cursors_opened_total", "server-side cursors opened"),
		CursorsOpen:   reg.NewGauge("server_cursors_open", "server-side cursors currently open"),
		Queries:       reg.NewCounter("server_queries_total", "statements received"),
		Errors:        reg.NewCounter("server_errors_total", "error frames sent"),
		RowsStreamed:  reg.NewCounter("server_rows_streamed_total", "result rows streamed to clients"),
		Fetches:       reg.NewCounter("server_fetches_total", "fetch batches produced"),
		FetchNanos:    reg.NewCounter("server_fetch_nanos_total", "total time producing fetch batches, nanoseconds"),
		FetchSeconds:  reg.NewHistogram("server_fetch_seconds", "per-fetch batch production latency", nil),
		BatchRows:     reg.NewHistogram("server_batch_rows", "rows per fetch batch", telemetry.SizeBuckets),
	}
}

// Snapshot returns a consistent-enough point-in-time copy for
// reporting.
func (s *Stats) Snapshot() wire.Stats {
	return wire.Stats{
		ConnsAccepted: s.ConnsAccepted.Value(),
		ConnsRejected: s.ConnsRejected.Value(),
		ConnsActive:   s.ConnsActive.Value(),
		CursorsOpened: s.CursorsOpened.Value(),
		CursorsOpen:   s.CursorsOpen.Value(),
		Queries:       s.Queries.Value(),
		Errors:        s.Errors.Value(),
		RowsStreamed:  s.RowsStreamed.Value(),
		Fetches:       s.Fetches.Value(),
		FetchNanos:    s.FetchNanos.Value(),
	}
}
