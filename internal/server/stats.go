package server

import (
	"sync/atomic"

	"spatialtf/internal/wire"
)

// Stats counts server activity with lock-free atomics; the wire Stats
// frame ships a Snapshot of it. One Stats lives per Server.
type Stats struct {
	ConnsAccepted atomic.Int64
	ConnsRejected atomic.Int64
	ConnsActive   atomic.Int64
	CursorsOpened atomic.Int64
	CursorsOpen   atomic.Int64
	Queries       atomic.Int64
	Errors        atomic.Int64
	RowsStreamed  atomic.Int64
	Fetches       atomic.Int64
	FetchNanos    atomic.Int64
}

// Snapshot returns a consistent-enough point-in-time copy for
// reporting.
func (s *Stats) Snapshot() wire.Stats {
	return wire.Stats{
		ConnsAccepted: s.ConnsAccepted.Load(),
		ConnsRejected: s.ConnsRejected.Load(),
		ConnsActive:   s.ConnsActive.Load(),
		CursorsOpened: s.CursorsOpened.Load(),
		CursorsOpen:   s.CursorsOpen.Load(),
		Queries:       s.Queries.Load(),
		Errors:        s.Errors.Load(),
		RowsStreamed:  s.RowsStreamed.Load(),
		Fetches:       s.Fetches.Load(),
		FetchNanos:    s.FetchNanos.Load(),
	}
}
