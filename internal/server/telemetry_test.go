package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"spatialtf/internal/telemetry"
	"spatialtf/internal/wire"
)

// TestServerMetricsFrame: one registry shared by the server and the
// database, scraped over the wire — the Metrics frame must carry the
// server counters, the join instruments, and the cache views a /metrics
// scrape would show.
func TestServerMetricsFrame(t *testing.T) {
	db := newTestDB(t, 64)
	reg := telemetry.New()
	db.EnableTelemetry(reg)
	_, addr := startTestServer(t, db, Config{Telemetry: reg})

	cli, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Run a join to completion so the join instruments move.
	res, err := cli.Query(joinSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cursor == nil {
		t.Fatal("join did not stream")
	}
	for {
		_, done, err := res.Cursor.Fetch(64)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}

	pts, err := cli.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]telemetry.Point, len(pts))
	for _, p := range pts {
		byName[p.Name] = p
	}
	for _, name := range []string{
		"server_queries_total", "server_fetches_total", "server_conns_active",
		"join_results_total", "join_node_pairs_total",
		"geom_cache_hits_total", "geom_cache_misses_total",
	} {
		if _, ok := byName[name]; !ok {
			t.Errorf("metrics frame missing %q", name)
		}
	}
	if q := byName["server_queries_total"].Value; q < 1 {
		t.Errorf("server_queries_total = %g, want >= 1", q)
	}
	if r := byName["join_results_total"].Value; r < 1 {
		t.Errorf("join_results_total = %g, want >= 1", r)
	}
	h, ok := byName["server_fetch_seconds"]
	if !ok || h.Kind != telemetry.KindHistogram {
		t.Fatalf("server_fetch_seconds = %+v, want a histogram", h)
	}
	if h.Count < 1 || len(h.Counts) != len(h.Bounds)+1 {
		t.Errorf("server_fetch_seconds histogram malformed: %+v", h)
	}
	if st, ok := byName["join_secondary_filter_seconds"]; !ok || st.Kind != telemetry.KindHistogram {
		t.Errorf("join stage histogram missing from the wire snapshot")
	}
}

// TestClientMetricsAgainstOldServer: a server that predates the Metrics
// frame answers it like any unknown frame — with an error frame — and
// the client must surface that as a RemoteError, not a desync or hang.
func TestClientMetricsAgainstOldServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var srvWG sync.WaitGroup
	srvWG.Add(1)
	go func() {
		defer srvWG.Done()
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		bw := bufio.NewWriter(nc)
		br := bufio.NewReader(nc)
		if wire.WriteMagic(bw) != nil || bw.Flush() != nil || wire.ExpectMagic(br) != nil {
			return
		}
		// The old server's dispatch loop: every frame type it does not
		// know gets an error reply.
		for {
			ft, _, err := wire.ReadFrame(br)
			if err != nil {
				return
			}
			msg := fmt.Sprintf("unknown frame type 0x%02x", byte(ft))
			if wire.WriteFrame(bw, wire.FrameError, wire.AppendError(nil, msg)) != nil || bw.Flush() != nil {
				return
			}
		}
	}()
	defer srvWG.Wait()

	cli, err := wire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.Metrics()
	re, ok := err.(*wire.RemoteError)
	if !ok {
		t.Fatalf("Metrics against old server: err = %v, want RemoteError", err)
	}
	if !strings.Contains(re.Msg, "unknown frame") {
		t.Errorf("unexpected remote error %q", re.Msg)
	}
}

// TestServerSlowLog: a cursor that outlives Config.SlowQuery emits one
// trace line carrying the statement label and the fetch stage.
func TestServerSlowLog(t *testing.T) {
	db := newTestDB(t, 48)
	var mu sync.Mutex
	var lines []string
	_, addr := startTestServer(t, db, Config{
		SlowQuery: time.Nanosecond, // everything is slow
		SlowLogf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	cli, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := cli.Query(joinSQL)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, done, err := res.Cursor.Fetch(32)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("slow log emitted %d lines, want 1: %q", len(lines), lines)
	}
	if !strings.Contains(lines[0], "spatial_join") || !strings.Contains(lines[0], "fetch=") {
		t.Errorf("slow log line %q missing label or fetch stage", lines[0])
	}
}

// TestServerPrivateRegistryDefault: with no Config.Telemetry the server
// still runs a live private registry, so Stats and scrapes work.
func TestServerPrivateRegistryDefault(t *testing.T) {
	db := newTestDB(t, 16)
	srv, addr := startTestServer(t, db, Config{})
	if srv.Telemetry() == nil || !srv.Telemetry().Enabled() {
		t.Fatal("server without Config.Telemetry must own a live registry")
	}
	cli, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Query("SELECT count(*) FROM counties"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := srv.Telemetry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "server_queries_total 1") {
		t.Errorf("private registry scrape missing query counter:\n%s", sb.String())
	}
}
