// Package server implements the networked query server: a TCP front
// end that parses each statement with sqlmini, executes it against a
// shared spatialtf database, and streams SELECT row sources to remote
// clients through the same start–fetch–close cursor pipeline local
// consumers use. Results flow in bounded fetch batches pulled by the
// client, so the server never materialises a full result set; a join
// bigger than memory streams just as it does in-process (PAPER §4).
//
// The server enforces a connection limit, per-connection cursor limit,
// and per-query row and time limits, and drains in-flight cursors on
// graceful shutdown.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"spatialtf"
	"spatialtf/internal/sqlmini"
	"spatialtf/internal/storage"
	"spatialtf/internal/telemetry"
	"spatialtf/internal/wire"
)

// Config tunes a Server. Zero values select the defaults.
type Config struct {
	// MaxConns bounds concurrent client connections (default 64).
	MaxConns int
	// MaxCursorsPerConn bounds open cursors per connection (default 8).
	MaxCursorsPerConn int
	// DefaultBatch is the fetch batch size when a client asks for 0
	// rows (default 256).
	DefaultBatch int
	// MaxBatch caps the batch size a client may request (default 4096).
	MaxBatch int
	// MaxRowsPerQuery aborts a cursor after streaming this many rows
	// (0 = unlimited).
	MaxRowsPerQuery int64
	// QueryTimeout aborts a cursor this long after its query started
	// (0 = no limit). An aborted cursor reports an error on the next
	// fetch.
	QueryTimeout time.Duration
	// Telemetry is the metrics registry the server registers its
	// counters and histograms on — share one registry between the
	// server and DB.EnableTelemetry so a single /metrics scrape covers
	// both. Nil gets the server a private registry (the server is a
	// network daemon, so its stats are always live; only embedded DB
	// use defaults to telemetry.Nop).
	Telemetry *telemetry.Registry
	// SlowQuery emits a span trace on the server log for any query
	// whose cursor lives at least this long (0 disables the slow log).
	SlowQuery time.Duration
	// SlowLogf overrides the slow-log sink (default log.Printf).
	SlowLogf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxConns <= 0 {
		c.MaxConns = 64
	}
	if c.MaxCursorsPerConn <= 0 {
		c.MaxCursorsPerConn = 8
	}
	if c.DefaultBatch <= 0 {
		c.DefaultBatch = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	return c
}

// Backend supplies the server's statement execution: one Session per
// connection. The stock backend wraps a *spatialtf.DB (see New); the
// cluster router wraps a coordinator instead, so the same front end —
// limits, cursor accounting, drain — serves both a single node and a
// whole shard cluster.
type Backend interface {
	// NewSession returns the execution session of one connection.
	NewSession() Session
}

// Session executes statements for one connection. Sessions are used by
// a single goroutine (the protocol is strict request/response).
type Session interface {
	// ExecuteStream parses and runs one statement, streaming SELECT row
	// sources (see sqlmini.ExecuteStream).
	ExecuteStream(sql string) (*sqlmini.Stream, error)
	// Close releases session resources when the connection ends.
	Close() error
}

// ScopedSession is implemented by sessions that can evaluate a query
// under a cluster scope (the shard side of scatter-gather routing). A
// FrameScopedQuery against a session without this interface reports an
// error.
type ScopedSession interface {
	ExecuteStreamScoped(sql string, sc wire.Scope) (*sqlmini.Stream, error)
}

// GeomCacheStatser is implemented by backends that expose a decoded-
// geometry cache; its numbers fill the cache fields of the Stats frame.
type GeomCacheStatser interface {
	GeomCacheStats() spatialtf.CacheStats
}

// MetricsSnapshotter is implemented by backends with metrics beyond the
// server registry (the cluster router aggregates per-shard series);
// its points are appended to the Metrics frame reply.
type MetricsSnapshotter interface {
	MetricsSnapshot() []telemetry.Point
}

// Server serves the wire protocol over a Backend.
type Server struct {
	backend Backend
	cfg     Config
	reg     *telemetry.Registry
	stats   *Stats
	tracer  *telemetry.Tracer

	mu         sync.Mutex
	ln         net.Listener
	conns      map[*conn]struct{}
	rejects    map[net.Conn]struct{}
	inShutdown atomic.Bool

	// wg counts every goroutine Serve spawns — connection handlers and
	// reject handshakes — so Shutdown can join them all instead of
	// returning while handlers still run their cleanup.
	wg sync.WaitGroup
}

// dbBackend is the stock backend: sqlmini engines over one shared
// database.
type dbBackend struct{ db *spatialtf.DB }

func (b dbBackend) NewSession() Session { return dbSession{eng: sqlmini.NewEngineOn(b.db)} }

func (b dbBackend) GeomCacheStats() spatialtf.CacheStats { return b.db.GeomCacheStats() }

// dbSession adapts a sqlmini engine to the Session interface, including
// the shard-side scoped execution path.
type dbSession struct{ eng *sqlmini.Engine }

func (s dbSession) ExecuteStream(sql string) (*sqlmini.Stream, error) {
	return s.eng.ExecuteStream(sql)
}

func (s dbSession) ExecuteStreamScoped(sql string, sc wire.Scope) (*sqlmini.Stream, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	scope := spatialtf.NewClusterScope(
		spatialtf.MBR{MinX: sc.MinX, MinY: sc.MinY, MaxX: sc.MaxX, MaxY: sc.MaxY},
		sc.Cols, sc.Rows, sc.NShards, sc.Shard)
	return s.eng.ExecuteStreamScoped(sql, scope)
}

func (s dbSession) Close() error { return nil }

// New returns a server over db.
func New(db *spatialtf.DB, cfg Config) *Server {
	return NewWith(dbBackend{db: db}, cfg)
}

// NewWith returns a server over an arbitrary backend.
func NewWith(backend Backend, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	// The tracer threshold: 0 in the config means "no slow log", which
	// the tracer spells as a negative threshold (0 there logs every
	// query — useful for \trace on, wrong as a server default).
	thr := cfg.SlowQuery
	if thr <= 0 {
		thr = -1
	}
	return &Server{
		backend: backend,
		cfg:     cfg,
		reg:     reg,
		stats:   newStats(reg),
		tracer:  telemetry.NewTracer(reg, thr, cfg.SlowLogf),
		conns:   make(map[*conn]struct{}),
		rejects: make(map[net.Conn]struct{}),
	}
}

// Stats returns the server's live counters.
func (s *Server) Stats() *Stats { return s.stats }

// Telemetry returns the registry the server's metrics live on (never
// nil) — mount its Handler on /metrics to expose them.
func (s *Server) Telemetry() *telemetry.Registry { return s.reg }

// Tracer returns the server's query tracer (never nil).
func (s *Server) Tracer() *telemetry.Tracer { return s.tracer }

// Addr returns the listening address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("server: closed")

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown (or a fatal listener
// error). Each connection runs on its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.inShutdown.Load() {
				return ErrServerClosed
			}
			return err
		}
		if s.inShutdown.Load() {
			nc.Close()
			continue
		}
		s.stats.ConnsAccepted.Add(1)
		if int(s.stats.ConnsActive.Value()) >= s.cfg.MaxConns {
			s.stats.ConnsRejected.Add(1)
			s.mu.Lock()
			s.rejects[nc] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				rejectConn(nc)
				s.mu.Lock()
				delete(s.rejects, nc)
				s.mu.Unlock()
			}()
			continue
		}
		c := &conn{srv: s, nc: nc}
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.stats.ConnsActive.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			c.serve()
		}()
	}
}

// rejectConn completes the handshake so the client can read a proper
// error frame, then closes.
func rejectConn(nc net.Conn) {
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	bw := bufio.NewWriter(nc)
	if err := wire.WriteMagic(bw); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	if err := wire.ExpectMagic(nc); err != nil {
		return
	}
	if err := wire.WriteFrame(bw, wire.FrameError, wire.AppendError(nil, "connection limit reached")); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
}

// Shutdown gracefully stops the server: the listener closes, new
// queries are rejected, and connections drain — a connection with open
// cursors keeps serving fetches until its cursors are exhausted or
// closed; idle connections close immediately. When ctx expires,
// remaining connections are closed forcibly.
func (s *Server) Shutdown(ctx context.Context) error {
	s.inShutdown.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	// Kick in-flight reject handshakes: their next read/write fails
	// immediately instead of running out the courtesy deadline.
	for nc := range s.rejects {
		nc.SetDeadline(time.Now())
	}
	s.mu.Unlock()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		n := len(s.conns)
		for c := range s.conns {
			if c.cursorCount.Load() == 0 {
				// Kick idle readers; their next Read fails and the
				// handler exits cleanly.
				c.nc.SetReadDeadline(time.Now())
			}
		}
		s.mu.Unlock()
		if n == 0 {
			s.wg.Wait()
			return nil
		}
		select {
		case <-ctx.Done():
			s.mu.Lock()
			for c := range s.conns {
				c.nc.Close()
			}
			for nc := range s.rejects {
				nc.Close()
			}
			s.mu.Unlock()
			s.wg.Wait()
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// serverCursor is the per-cursor state: the engine's pull cursor plus
// the enforcement bookkeeping.
type serverCursor struct {
	id       uint64
	schema   []storage.Column
	cur      storage.Cursor
	streamed int64
	deadline time.Time // zero = no limit
	// pendingErr defers a cursor error that arrived mid-batch: the rows
	// already assembled are delivered first, and the error answers the
	// NEXT fetch, so an error late in a stream cannot swallow results
	// the engine already produced (a cluster partial-result error is the
	// canonical case).
	pendingErr error
	// trace spans the cursor's lifetime — query to final fetch — and
	// feeds the slow log when it outlives the threshold.
	trace *telemetry.Trace
}

// conn handles one client connection. The protocol is strict
// request/response, so a single goroutine owns the connection and no
// locking is needed beyond the shared Server state.
type conn struct {
	srv         *Server
	nc          net.Conn
	sess        Session
	cursors     map[uint64]*serverCursor
	nextCursor  uint64
	cursorCount atomic.Int64
}

func (c *conn) serve() {
	defer func() {
		for _, sc := range c.cursors {
			sc.cur.Close()
			c.srv.stats.CursorsOpen.Add(-1)
		}
		c.cursorCount.Store(0)
		c.sess.Close()
		c.nc.Close()
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		c.srv.mu.Unlock()
		c.srv.stats.ConnsActive.Add(-1)
	}()
	c.sess = c.srv.backend.NewSession()
	c.cursors = make(map[uint64]*serverCursor)
	bw := bufio.NewWriter(c.nc)
	br := bufio.NewReader(c.nc)
	if err := wire.WriteMagic(bw); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	if err := wire.ExpectMagic(br); err != nil {
		return
	}
	for {
		t, payload, err := wire.ReadFrame(br)
		if err != nil {
			// EOF, client close, or a shutdown kick.
			return
		}
		var reply func() error
		switch t {
		case wire.FrameQuery:
			reply = c.handleQuery(bw, payload)
		case wire.FrameScopedQuery:
			reply = c.handleScopedQuery(bw, payload)
		case wire.FrameFetch:
			reply = c.handleFetch(bw, payload)
		case wire.FrameCloseCursor:
			reply = c.handleClose(bw, payload)
		case wire.FrameStats:
			reply = func() error {
				snap := c.srv.stats.Snapshot()
				if gc, ok := c.srv.backend.(GeomCacheStatser); ok {
					cs := gc.GeomCacheStats()
					snap.GeomCacheHits, snap.GeomCacheMisses = cs.Hits, cs.Misses
					snap.GeomCacheBytes, snap.GeomCacheEntries = cs.Bytes, cs.Entries
				}
				return wire.WriteFrame(bw, wire.FrameStatsReply,
					wire.AppendStats(nil, snap))
			}
		case wire.FrameMetricsReq:
			reply = func() error {
				points := c.srv.reg.Snapshot()
				if ms, ok := c.srv.backend.(MetricsSnapshotter); ok {
					points = append(points, ms.MetricsSnapshot()...)
				}
				return wire.WriteFrame(bw, wire.FrameMetricsReply,
					wire.AppendMetrics(nil, points))
			}
		default:
			reply = c.sendError(bw, fmt.Sprintf("unknown frame type 0x%02x", byte(t)))
		}
		if err := reply(); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		if c.srv.inShutdown.Load() && c.cursorCount.Load() == 0 {
			// Drained: this connection has nothing left to serve.
			return
		}
	}
}

func (c *conn) handleQuery(bw *bufio.Writer, payload []byte) func() error {
	sql, err := wire.ParseQuery(payload)
	if err != nil {
		return c.sendError(bw, err.Error())
	}
	return c.runQuery(bw, sql, func() (*sqlmini.Stream, error) {
		return c.sess.ExecuteStream(sql)
	})
}

func (c *conn) handleScopedQuery(bw *bufio.Writer, payload []byte) func() error {
	sc, sql, err := wire.ParseScopedQuery(payload)
	if err != nil {
		return c.sendError(bw, err.Error())
	}
	ss, ok := c.sess.(ScopedSession)
	if !ok {
		return c.sendError(bw, "this server does not support scoped queries")
	}
	return c.runQuery(bw, sql, func() (*sqlmini.Stream, error) {
		return ss.ExecuteStreamScoped(sql, sc)
	})
}

// runQuery executes one statement through exec and replies with either
// an immediate result or a new cursor.
func (c *conn) runQuery(bw *bufio.Writer, sql string, exec func() (*sqlmini.Stream, error)) func() error {
	if c.srv.inShutdown.Load() {
		return c.sendError(bw, "server is shutting down")
	}
	c.srv.stats.Queries.Add(1)
	stream, err := exec()
	if err != nil {
		return c.sendError(bw, err.Error())
	}
	if stream.Result != nil {
		r := stream.Result
		return func() error {
			return wire.WriteFrame(bw, wire.FrameResult, wire.AppendResult(nil, wire.Result{
				Message:  r.Message,
				HasCount: len(r.Columns) == 1 && r.Columns[0] == "COUNT(*)",
				Count:    int64(r.Count),
				Columns:  r.Columns,
				Rows:     r.Rows,
			}))
		}
	}
	if len(c.cursors) >= c.srv.cfg.MaxCursorsPerConn {
		stream.Cursor.Close()
		return c.sendError(bw, fmt.Sprintf("cursor limit reached (%d per connection)", c.srv.cfg.MaxCursorsPerConn))
	}
	c.nextCursor++
	sc := &serverCursor{id: c.nextCursor, schema: stream.Schema, cur: stream.Cursor,
		trace: c.srv.tracer.Begin(truncateSQL(sql))}
	if c.srv.cfg.QueryTimeout > 0 {
		sc.deadline = time.Now().Add(c.srv.cfg.QueryTimeout)
	}
	c.cursors[sc.id] = sc
	c.cursorCount.Add(1)
	c.srv.stats.CursorsOpened.Add(1)
	c.srv.stats.CursorsOpen.Add(1)
	return func() error {
		return wire.WriteFrame(bw, wire.FrameDescribe, wire.AppendDescribe(nil, sc.id, sc.schema))
	}
}

// batchBuf is the reusable per-fetch scratch: the staged row slice and
// the encoded batch payload. Pooling both means a steady fetch stream
// allocates neither the row buffer nor the (large) frame image.
type batchBuf struct {
	rows []storage.Row
	img  []byte
}

var batchPool = sync.Pool{New: func() any { return new(batchBuf) }}

// release clears row references (so pooled buffers don't pin decoded
// geometries) and returns the buffer to the pool.
func (bb *batchBuf) release() {
	for i := range bb.rows {
		bb.rows[i] = nil
	}
	bb.rows = bb.rows[:0]
	bb.img = bb.img[:0]
	batchPool.Put(bb)
}

func (c *conn) handleFetch(bw *bufio.Writer, payload []byte) func() error {
	id, maxRows, err := wire.ParseFetch(payload)
	if err != nil {
		return c.sendError(bw, err.Error())
	}
	sc, ok := c.cursors[id]
	if !ok {
		return c.sendError(bw, fmt.Sprintf("no such cursor %d", id))
	}
	if !sc.deadline.IsZero() && time.Now().After(sc.deadline) {
		c.dropCursor(sc)
		return c.sendError(bw, fmt.Sprintf("query timeout after %s", c.srv.cfg.QueryTimeout))
	}
	batch := int(maxRows)
	if batch <= 0 {
		batch = c.srv.cfg.DefaultBatch
	}
	if batch > c.srv.cfg.MaxBatch {
		batch = c.srv.cfg.MaxBatch
	}
	if sc.pendingErr != nil {
		err := sc.pendingErr
		c.dropCursor(sc)
		return c.sendError(bw, err.Error())
	}
	start := time.Now()
	bb := batchPool.Get().(*batchBuf)
	done := false
	for len(bb.rows) < batch {
		_, row, ok, err := sc.cur.Next()
		if err != nil {
			if len(bb.rows) == 0 {
				bb.release()
				c.dropCursor(sc)
				return c.sendError(bw, err.Error())
			}
			sc.pendingErr = err
			break
		}
		if !ok {
			done = true
			break
		}
		bb.rows = append(bb.rows, row)
	}
	sc.streamed += int64(len(bb.rows))
	if limit := c.srv.cfg.MaxRowsPerQuery; limit > 0 && sc.streamed > limit {
		bb.release()
		c.dropCursor(sc)
		return c.sendError(bw, fmt.Sprintf("query row limit exceeded (%d rows)", limit))
	}
	elapsed := time.Since(start)
	c.srv.stats.Fetches.Add(1)
	c.srv.stats.FetchNanos.Add(elapsed.Nanoseconds())
	c.srv.stats.FetchSeconds.Observe(elapsed.Seconds())
	c.srv.stats.BatchRows.Observe(float64(len(bb.rows)))
	c.srv.stats.RowsStreamed.Add(int64(len(bb.rows)))
	sc.trace.Add(telemetry.StageFetch, elapsed, 1)
	img, err := wire.AppendBatch(bb.img[:0], sc.id, done, sc.schema, bb.rows)
	if err != nil {
		bb.release()
		c.dropCursor(sc)
		return c.sendError(bw, err.Error())
	}
	bb.img = img
	if done {
		c.dropCursor(sc)
	}
	return func() error {
		err := wire.WriteFrame(bw, wire.FrameBatch, bb.img)
		bb.release()
		return err
	}
}

func (c *conn) handleClose(bw *bufio.Writer, payload []byte) func() error {
	id, err := wire.ParseCloseCursor(payload)
	if err != nil {
		return c.sendError(bw, err.Error())
	}
	if sc, ok := c.cursors[id]; ok {
		c.dropCursor(sc)
	}
	// Idempotent: closing an unknown (already-drained) cursor is fine.
	return func() error {
		return wire.WriteFrame(bw, wire.FrameResult,
			wire.AppendResult(nil, wire.Result{Message: "cursor closed"}))
	}
}

// dropCursor closes and forgets a cursor.
func (c *conn) dropCursor(sc *serverCursor) {
	sc.cur.Close()
	sc.trace.Finish()
	delete(c.cursors, sc.id)
	c.cursorCount.Add(-1)
	c.srv.stats.CursorsOpen.Add(-1)
}

// truncateSQL bounds the trace label so a pathological statement does
// not bloat the slow log.
func truncateSQL(sql string) string {
	const max = 120
	if len(sql) <= max {
		return sql
	}
	return sql[:max] + "..."
}

// sendError builds a reply that reports msg.
func (c *conn) sendError(bw *bufio.Writer, msg string) func() error {
	c.srv.stats.Errors.Add(1)
	return func() error {
		return wire.WriteFrame(bw, wire.FrameError, wire.AppendError(nil, msg))
	}
}
