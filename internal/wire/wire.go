// Package wire implements the client/server wire protocol of the
// networked query server: a length-prefixed, little-endian binary
// framing (versioned by an 8-byte magic, like the snapshot format) that
// extends the paper's start–fetch–close cursor pipeline across a
// socket. A remote client opens a cursor with a Query frame, pulls
// bounded FetchBatch frames exactly as a local consumer drives a
// pipelined table function's fetch calls, and releases it with
// CloseCursor — the server never materialises a full result set.
//
// Row payloads reuse the storage row codec (storage.EncodeRow), so
// geometry columns travel in the same WKB-style binary image
// (geom.MarshalBinary) that heap pages and snapshots store.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"spatialtf/internal/storage"
)

// Magic opens every connection in both directions; the trailing digit
// versions the protocol.
const Magic = "STFWIRE1"

// MaxFrame bounds a frame payload; peers reject anything larger.
const MaxFrame = 16 << 20

// FrameType tags a frame. Client-to-server types have the high bit
// clear, server-to-client types have it set.
type FrameType byte

// Frame types.
const (
	// FrameQuery carries one SQL statement: string sql.
	FrameQuery FrameType = 0x01
	// FrameFetch pulls a batch: uvarint cursor id, uvarint max rows
	// (0 = server default).
	FrameFetch FrameType = 0x02
	// FrameCloseCursor releases a cursor early: uvarint cursor id.
	FrameCloseCursor FrameType = 0x03
	// FrameStats requests server statistics; empty payload.
	FrameStats FrameType = 0x04

	// FrameResult is an immediate statement outcome (DDL/DML/COUNT).
	FrameResult FrameType = 0x81
	// FrameDescribe announces a new cursor: uvarint cursor id, uvarint
	// ncols, per column string name + byte type.
	FrameDescribe FrameType = 0x82
	// FrameBatch is one fetch batch: uvarint cursor id, byte done,
	// uvarint nrows, per row uvarint length + storage row image.
	FrameBatch FrameType = 0x83
	// FrameStatsReply carries a Stats snapshot.
	FrameStatsReply FrameType = 0x84
	// FrameError reports a failure: string message. The connection
	// stays usable unless the peer closes it.
	FrameError FrameType = 0x8F
)

// WriteFrame writes one frame (uint32 little-endian payload length,
// type byte, payload). The caller flushes.
func WriteFrame(w *bufio.Writer, t FrameType, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame.
func ReadFrame(r *bufio.Reader) (FrameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	// Grow the buffer from bytes actually received rather than trusting
	// the header: a forged length on a short stream must not cost a
	// MaxFrame-sized allocation before the read fails.
	var buf bytes.Buffer
	buf.Grow(int(min(n, 64<<10)))
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return FrameType(hdr[4]), buf.Bytes(), nil
}

// WriteMagic sends the protocol magic.
func WriteMagic(w io.Writer) error {
	_, err := io.WriteString(w, Magic)
	return err
}

// ExpectMagic reads and verifies the protocol magic.
func ExpectMagic(r io.Reader) error {
	buf := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("wire: handshake: %w", err)
	}
	if string(buf) != Magic {
		return fmt.Errorf("wire: bad magic %q (want %q)", buf, Magic)
	}
	return nil
}

// --- payload building and parsing ---

// payload is an append-only payload builder.
type payload struct{ b []byte }

func (p *payload) u64(v uint64)  { p.b = binary.AppendUvarint(p.b, v) }
func (p *payload) byteV(v byte)  { p.b = append(p.b, v) }
func (p *payload) str(s string)  { p.u64(uint64(len(s))); p.b = append(p.b, s...) }
func (p *payload) blob(b []byte) { p.u64(uint64(len(b))); p.b = append(p.b, b...) }

// pReader consumes a payload.
type pReader struct{ b []byte }

func (p *pReader) u64() (uint64, error) {
	v, n := binary.Uvarint(p.b)
	if n <= 0 {
		return 0, fmt.Errorf("wire: truncated uvarint")
	}
	p.b = p.b[n:]
	return v, nil
}

func (p *pReader) byteV() (byte, error) {
	if len(p.b) < 1 {
		return 0, fmt.Errorf("wire: truncated byte")
	}
	v := p.b[0]
	p.b = p.b[1:]
	return v, nil
}

func (p *pReader) blob() ([]byte, error) {
	l, err := p.u64()
	if err != nil {
		return nil, err
	}
	if uint64(len(p.b)) < l {
		return nil, fmt.Errorf("wire: truncated payload: need %d, have %d", l, len(p.b))
	}
	out := p.b[:l]
	p.b = p.b[l:]
	return out, nil
}

func (p *pReader) str() (string, error) {
	b, err := p.blob()
	return string(b), err
}

func (p *pReader) done() error {
	if len(p.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes in frame", len(p.b))
	}
	return nil
}

// --- Query ---

// AppendQuery encodes a Query payload.
func AppendQuery(dst []byte, sql string) []byte {
	p := payload{b: dst}
	p.str(sql)
	return p.b
}

// ParseQuery decodes a Query payload.
func ParseQuery(b []byte) (string, error) {
	p := pReader{b: b}
	sql, err := p.str()
	if err != nil {
		return "", err
	}
	return sql, p.done()
}

// --- Fetch / CloseCursor ---

// AppendFetch encodes a Fetch payload.
func AppendFetch(dst []byte, cursorID, maxRows uint64) []byte {
	p := payload{b: dst}
	p.u64(cursorID)
	p.u64(maxRows)
	return p.b
}

// ParseFetch decodes a Fetch payload.
func ParseFetch(b []byte) (cursorID, maxRows uint64, err error) {
	p := pReader{b: b}
	if cursorID, err = p.u64(); err != nil {
		return 0, 0, err
	}
	if maxRows, err = p.u64(); err != nil {
		return 0, 0, err
	}
	return cursorID, maxRows, p.done()
}

// AppendCloseCursor encodes a CloseCursor payload.
func AppendCloseCursor(dst []byte, cursorID uint64) []byte {
	p := payload{b: dst}
	p.u64(cursorID)
	return p.b
}

// ParseCloseCursor decodes a CloseCursor payload.
func ParseCloseCursor(b []byte) (uint64, error) {
	p := pReader{b: b}
	id, err := p.u64()
	if err != nil {
		return 0, err
	}
	return id, p.done()
}

// --- Describe ---

// AppendDescribe encodes a Describe payload.
func AppendDescribe(dst []byte, cursorID uint64, schema []storage.Column) []byte {
	p := payload{b: dst}
	p.u64(cursorID)
	p.u64(uint64(len(schema)))
	for _, c := range schema {
		p.str(c.Name)
		p.byteV(byte(c.Type))
	}
	return p.b
}

// ParseDescribe decodes a Describe payload.
func ParseDescribe(b []byte) (cursorID uint64, schema []storage.Column, err error) {
	p := pReader{b: b}
	if cursorID, err = p.u64(); err != nil {
		return 0, nil, err
	}
	n, err := p.u64()
	if err != nil {
		return 0, nil, err
	}
	if n > 4096 {
		return 0, nil, fmt.Errorf("wire: describe with %d columns", n)
	}
	schema = make([]storage.Column, n)
	for i := range schema {
		if schema[i].Name, err = p.str(); err != nil {
			return 0, nil, err
		}
		t, err := p.byteV()
		if err != nil {
			return 0, nil, err
		}
		schema[i].Type = storage.ColType(t)
	}
	return cursorID, schema, p.done()
}

// --- Batch ---

// AppendBatch encodes a Batch payload: the rows travel in the storage
// row codec under the cursor's schema.
func AppendBatch(dst []byte, cursorID uint64, done bool, schema []storage.Column, rows []storage.Row) ([]byte, error) {
	p := payload{b: dst}
	p.u64(cursorID)
	d := byte(0)
	if done {
		d = 1
	}
	p.byteV(d)
	p.u64(uint64(len(rows)))
	for _, row := range rows {
		img, err := storage.EncodeRow(schema, row)
		if err != nil {
			return nil, fmt.Errorf("wire: encode batch row: %w", err)
		}
		p.blob(img)
	}
	return p.b, nil
}

// ParseBatch decodes a Batch payload against the cursor's schema.
func ParseBatch(b []byte, schema []storage.Column) (cursorID uint64, done bool, rows []storage.Row, err error) {
	p := pReader{b: b}
	if cursorID, err = p.u64(); err != nil {
		return 0, false, nil, err
	}
	d, err := p.byteV()
	if err != nil {
		return 0, false, nil, err
	}
	n, err := p.u64()
	if err != nil {
		return 0, false, nil, err
	}
	rows = make([]storage.Row, 0, min(n, uint64(1<<16)))
	for i := uint64(0); i < n; i++ {
		img, err := p.blob()
		if err != nil {
			return 0, false, nil, err
		}
		row, err := storage.DecodeRow(schema, img)
		if err != nil {
			return 0, false, nil, fmt.Errorf("wire: decode batch row: %w", err)
		}
		rows = append(rows, row)
	}
	return cursorID, d != 0, rows, p.done()
}

// --- Result ---

// Result is an immediate statement outcome: message for DDL/DML, or a
// small string table (COUNT results travel this way; large row sources
// use cursors instead).
type Result struct {
	Message  string
	HasCount bool
	Count    int64
	Columns  []string
	Rows     [][]string
}

// AppendResult encodes a Result payload.
func AppendResult(dst []byte, r Result) []byte {
	p := payload{b: dst}
	p.str(r.Message)
	hc := byte(0)
	if r.HasCount {
		hc = 1
	}
	p.byteV(hc)
	p.u64(uint64(r.Count))
	p.u64(uint64(len(r.Columns)))
	for _, c := range r.Columns {
		p.str(c)
	}
	p.u64(uint64(len(r.Rows)))
	for _, row := range r.Rows {
		for _, v := range row {
			p.str(v)
		}
	}
	return p.b
}

// ParseResult decodes a Result payload.
func ParseResult(b []byte) (Result, error) {
	var r Result
	p := pReader{b: b}
	var err error
	if r.Message, err = p.str(); err != nil {
		return r, err
	}
	hc, err := p.byteV()
	if err != nil {
		return r, err
	}
	r.HasCount = hc != 0
	c, err := p.u64()
	if err != nil {
		return r, err
	}
	r.Count = int64(c)
	ncols, err := p.u64()
	if err != nil {
		return r, err
	}
	if ncols > 4096 {
		return r, fmt.Errorf("wire: result with %d columns", ncols)
	}
	r.Columns = make([]string, ncols)
	for i := range r.Columns {
		if r.Columns[i], err = p.str(); err != nil {
			return r, err
		}
	}
	nrows, err := p.u64()
	if err != nil {
		return r, err
	}
	// Each row carries ncols length-prefixed strings, at least one byte
	// apiece — except zero-column rows, which carry nothing at all, so a
	// forged count would spin the loop without ever consuming input.
	if nrows > uint64(len(p.b)) && nrows > 1024 {
		return r, fmt.Errorf("wire: result with %d rows in %d bytes", nrows, len(p.b))
	}
	for i := uint64(0); i < nrows; i++ {
		row := make([]string, ncols)
		for k := range row {
			if row[k], err = p.str(); err != nil {
				return r, err
			}
		}
		r.Rows = append(r.Rows, row)
	}
	return r, p.done()
}

// --- Error ---

// AppendError encodes an Error payload.
func AppendError(dst []byte, msg string) []byte {
	p := payload{b: dst}
	p.str(msg)
	return p.b
}

// ParseError decodes an Error payload.
func ParseError(b []byte) (string, error) {
	p := pReader{b: b}
	msg, err := p.str()
	if err != nil {
		return "", err
	}
	return msg, p.done()
}

// --- Stats ---

// Stats is the server statistics snapshot shipped by FrameStatsReply.
type Stats struct {
	// Connections.
	ConnsAccepted int64
	ConnsRejected int64
	ConnsActive   int64
	// Cursors.
	CursorsOpened int64
	CursorsOpen   int64
	// Work.
	Queries      int64
	Errors       int64
	RowsStreamed int64
	Fetches      int64
	// FetchNanos is total time spent producing fetch batches; divide by
	// Fetches for the mean fetch latency.
	FetchNanos int64
	// Decoded-geometry cache of the served database: lookup outcomes
	// over the server lifetime and current residency.
	GeomCacheHits    int64
	GeomCacheMisses  int64
	GeomCacheBytes   int64
	GeomCacheEntries int64
}

// AppendStats encodes a Stats payload.
func AppendStats(dst []byte, s Stats) []byte {
	p := payload{b: dst}
	for _, v := range []int64{
		s.ConnsAccepted, s.ConnsRejected, s.ConnsActive,
		s.CursorsOpened, s.CursorsOpen,
		s.Queries, s.Errors, s.RowsStreamed, s.Fetches, s.FetchNanos,
		s.GeomCacheHits, s.GeomCacheMisses, s.GeomCacheBytes, s.GeomCacheEntries,
	} {
		p.u64(uint64(v))
	}
	return p.b
}

// ParseStats decodes a Stats payload.
func ParseStats(b []byte) (Stats, error) {
	var s Stats
	p := pReader{b: b}
	for _, dst := range []*int64{
		&s.ConnsAccepted, &s.ConnsRejected, &s.ConnsActive,
		&s.CursorsOpened, &s.CursorsOpen,
		&s.Queries, &s.Errors, &s.RowsStreamed, &s.Fetches, &s.FetchNanos,
		&s.GeomCacheHits, &s.GeomCacheMisses, &s.GeomCacheBytes, &s.GeomCacheEntries,
	} {
		v, err := p.u64()
		if err != nil {
			return s, err
		}
		*dst = int64(v)
	}
	return s, p.done()
}
