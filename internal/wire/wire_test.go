package wire

import (
	"bufio"
	"bytes"
	"reflect"
	"strings"
	"testing"

	"spatialtf/internal/geom"
	"spatialtf/internal/storage"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	payloads := [][]byte{nil, {}, {0x01}, bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		if err := WriteFrame(bw, FrameType(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(&buf)
	for i, p := range payloads {
		ft, got, err := ReadFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		if ft != FrameType(i+1) {
			t.Fatalf("frame %d: type %d, want %d", i, ft, i+1)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload %d bytes, want %d", i, len(got), len(p))
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := WriteFrame(bw, FrameQuery, make([]byte, MaxFrame+1)); err == nil {
		t.Errorf("oversize write accepted")
	}
	// A forged oversize header is rejected on read before allocating.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(FrameQuery)}
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(hdr))); err == nil {
		t.Errorf("oversize read accepted")
	}
}

func TestMagicHandshake(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMagic(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ExpectMagic(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ExpectMagic(strings.NewReader("NOTMAGIC")); err == nil {
		t.Errorf("bad magic accepted")
	}
	if err := ExpectMagic(strings.NewReader("STF")); err == nil {
		t.Errorf("truncated magic accepted")
	}
}

func TestQueryFetchCloseCodec(t *testing.T) {
	sql := "SELECT * FROM t WHERE sdo_relate(geom, 'POINT (1 2)', 'mask=inside') = 'TRUE'"
	got, err := ParseQuery(AppendQuery(nil, sql))
	if err != nil || got != sql {
		t.Fatalf("query round trip: %q, %v", got, err)
	}
	id, maxRows, err := ParseFetch(AppendFetch(nil, 42, 1000))
	if err != nil || id != 42 || maxRows != 1000 {
		t.Fatalf("fetch round trip: %d/%d, %v", id, maxRows, err)
	}
	cid, err := ParseCloseCursor(AppendCloseCursor(nil, 7))
	if err != nil || cid != 7 {
		t.Fatalf("close round trip: %d, %v", cid, err)
	}
	// Trailing garbage is rejected.
	if _, _, err := ParseFetch(append(AppendFetch(nil, 1, 2), 0x00)); err == nil {
		t.Errorf("trailing bytes accepted")
	}
	if _, err := ParseQuery(nil); err == nil {
		t.Errorf("empty query payload accepted")
	}
}

func TestDescribeCodec(t *testing.T) {
	schema := []storage.Column{
		{Name: "id", Type: storage.TInt64},
		{Name: "name", Type: storage.TString},
		{Name: "geom", Type: storage.TGeometry},
	}
	id, got, err := ParseDescribe(AppendDescribe(nil, 3, schema))
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 || !reflect.DeepEqual(got, schema) {
		t.Fatalf("describe round trip: id=%d schema=%+v", id, got)
	}
}

func TestBatchCodec(t *testing.T) {
	g, err := geom.ParseWKT("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	if err != nil {
		t.Fatal(err)
	}
	schema := []storage.Column{
		{Name: "id", Type: storage.TInt64},
		{Name: "name", Type: storage.TString},
		{Name: "geom", Type: storage.TGeometry},
	}
	rows := []storage.Row{
		{storage.Int(1), storage.Str("alpha"), storage.Geom(g)},
		{storage.Int(2), storage.Str("beta"), storage.Geom(g)},
	}
	img, err := AppendBatch(nil, 9, true, schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	id, done, got, err := ParseBatch(img, schema)
	if err != nil {
		t.Fatal(err)
	}
	if id != 9 || !done || len(got) != 2 {
		t.Fatalf("batch header: id=%d done=%v rows=%d", id, done, len(got))
	}
	if got[0][0].I != 1 || got[0][1].S != "alpha" || got[1][0].I != 2 {
		t.Fatalf("batch scalars corrupted: %v", got)
	}
	if !got[0][2].G.Equal(g) {
		t.Fatalf("geometry did not survive the wire: %v", got[0][2].G)
	}
	// Empty batch.
	img, err = AppendBatch(nil, 1, false, schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, done, got, err := ParseBatch(img, schema); err != nil || done || len(got) != 0 {
		t.Fatalf("empty batch: done=%v rows=%d err=%v", done, len(got), err)
	}
	// Truncated payload.
	img, _ = AppendBatch(nil, 9, true, schema, rows)
	if _, _, _, err := ParseBatch(img[:len(img)/2], schema); err == nil {
		t.Errorf("truncated batch accepted")
	}
}

func TestResultCodec(t *testing.T) {
	in := Result{
		Message:  "",
		HasCount: true,
		Count:    1234,
		Columns:  []string{"COUNT(*)"},
		Rows:     [][]string{{"1234"}},
	}
	got, err := ParseResult(AppendResult(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("result round trip: %+v want %+v", got, in)
	}
	msg := Result{Message: "table created"}
	got, err = ParseResult(AppendResult(nil, msg))
	if err != nil || got.Message != "table created" || got.HasCount {
		t.Fatalf("message result round trip: %+v, %v", got, err)
	}
}

func TestErrorCodec(t *testing.T) {
	msg, err := ParseError(AppendError(nil, "no such cursor 7"))
	if err != nil || msg != "no such cursor 7" {
		t.Fatalf("error round trip: %q, %v", msg, err)
	}
}

func TestStatsCodec(t *testing.T) {
	in := Stats{
		ConnsAccepted: 10, ConnsRejected: 2, ConnsActive: 3,
		CursorsOpened: 40, CursorsOpen: 4,
		Queries: 100, Errors: 5, RowsStreamed: 99999, Fetches: 400, FetchNanos: 123456789,
	}
	got, err := ParseStats(AppendStats(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if got != in {
		t.Fatalf("stats round trip: %+v want %+v", got, in)
	}
	if _, err := ParseStats([]byte{0x01}); err == nil {
		t.Errorf("truncated stats accepted")
	}
}
