package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"spatialtf/internal/telemetry"
)

// Metrics frame types, added in protocol revision 1.1. The magic is
// unchanged: a server that predates them answers FrameMetricsReq with
// FrameError ("unknown frame type"), which the client surfaces as a
// RemoteError — old servers and new clients interoperate, as do new
// servers and old clients (who simply never send the frame).
const (
	// FrameMetricsReq requests a full metrics snapshot; empty payload.
	FrameMetricsReq FrameType = 0x05
	// FrameMetricsReply carries the snapshot as a sequence of
	// self-delimiting metric entries.
	FrameMetricsReply FrameType = 0x85
)

// Parse caps: a snapshot bigger than this is a corrupt or hostile
// frame, not a plausible registry.
const (
	maxMetricEntries = 4096
	maxBuckets       = 256
)

func (p *payload) f64(v float64) {
	p.b = binary.LittleEndian.AppendUint64(p.b, math.Float64bits(v))
}

func (p *pReader) f64() (float64, error) {
	if len(p.b) < 8 {
		return 0, fmt.Errorf("wire: truncated float64")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(p.b))
	p.b = p.b[8:]
	return v, nil
}

// AppendMetrics encodes a metrics snapshot. Each entry travels as a
// length-prefixed blob — name, help, kind byte, then a kind-specific
// body — so a decoder that meets an unknown kind (or extra trailing
// fields from a newer peer) skips to the next entry instead of
// desynchronising.
func AppendMetrics(dst []byte, pts []telemetry.Point) []byte {
	p := payload{b: dst}
	p.u64(uint64(len(pts)))
	var entry payload
	for _, pt := range pts {
		entry.b = entry.b[:0]
		entry.str(pt.Name)
		entry.str(pt.Help)
		entry.byteV(byte(pt.Kind))
		switch pt.Kind {
		case telemetry.KindHistogram:
			entry.u64(uint64(len(pt.Bounds)))
			for _, b := range pt.Bounds {
				entry.f64(b)
			}
			for _, c := range pt.Counts {
				entry.u64(uint64(c))
			}
			entry.f64(pt.Sum)
			entry.u64(uint64(pt.Count))
		default:
			entry.f64(pt.Value)
		}
		p.blob(entry.b)
	}
	return p.b
}

// ParseMetrics decodes a metrics snapshot. Entries of unknown kind are
// skipped (forward compatibility); trailing bytes inside an entry are
// ignored for the same reason.
func ParseMetrics(b []byte) ([]telemetry.Point, error) {
	p := pReader{b: b}
	n, err := p.u64()
	if err != nil {
		return nil, err
	}
	if n > maxMetricEntries {
		return nil, fmt.Errorf("wire: metrics snapshot with %d entries", n)
	}
	pts := make([]telemetry.Point, 0, n)
	for i := uint64(0); i < n; i++ {
		blob, err := p.blob()
		if err != nil {
			return nil, err
		}
		pt, ok, err := parseMetricEntry(blob)
		if err != nil {
			return nil, fmt.Errorf("wire: metrics entry %d: %w", i, err)
		}
		if ok {
			pts = append(pts, pt)
		}
	}
	return pts, p.done()
}

// parseMetricEntry decodes one entry blob; ok=false means an unknown
// kind the caller should skip.
func parseMetricEntry(b []byte) (pt telemetry.Point, ok bool, err error) {
	e := pReader{b: b}
	if pt.Name, err = e.str(); err != nil {
		return pt, false, err
	}
	if pt.Help, err = e.str(); err != nil {
		return pt, false, err
	}
	k, err := e.byteV()
	if err != nil {
		return pt, false, err
	}
	pt.Kind = telemetry.Kind(k)
	switch pt.Kind {
	case telemetry.KindCounter, telemetry.KindGauge:
		if pt.Value, err = e.f64(); err != nil {
			return pt, false, err
		}
	case telemetry.KindHistogram:
		nb, err := e.u64()
		if err != nil {
			return pt, false, err
		}
		if nb > maxBuckets {
			return pt, false, fmt.Errorf("histogram with %d buckets", nb)
		}
		pt.Bounds = make([]float64, nb)
		for i := range pt.Bounds {
			if pt.Bounds[i], err = e.f64(); err != nil {
				return pt, false, err
			}
		}
		pt.Counts = make([]int64, nb+1)
		for i := range pt.Counts {
			c, err := e.u64()
			if err != nil {
				return pt, false, err
			}
			pt.Counts[i] = int64(c)
		}
		if pt.Sum, err = e.f64(); err != nil {
			return pt, false, err
		}
		c, err := e.u64()
		if err != nil {
			return pt, false, err
		}
		pt.Count = int64(c)
	default:
		// A kind from a newer peer: the blob boundary lets us skip it.
		return pt, false, nil
	}
	return pt, true, nil
}
