package wire

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"spatialtf/internal/storage"
	"spatialtf/internal/telemetry"
)

// Options tunes a client connection. Zero values mean "no limit",
// preserving the historical blocking behavior.
type Options struct {
	// DialTimeout bounds the TCP connect (and the handshake, which runs
	// under the same deadline).
	DialTimeout time.Duration
	// ReadTimeout bounds each reply read: a request whose response does
	// not arrive within it fails with a net timeout error instead of
	// hanging on a dead or wedged server.
	ReadTimeout time.Duration
	// WriteTimeout bounds each request write.
	WriteTimeout time.Duration
}

// Client is a connection to a spatialtf query server. One client holds
// one connection; requests are serialised (the protocol is strict
// request/response), but several cursors may be open at once and their
// fetches interleaved. A Client is safe for concurrent use by multiple
// goroutines.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	opt  Options
}

// Dial connects to a server at addr ("host:port") and performs the
// protocol handshake with no I/O deadlines.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, Options{})
}

// DialWith connects to a server at addr under the given I/O timeouts.
func DialWith(addr string, opt Options) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, opt.DialTimeout)
	if err != nil {
		return nil, err
	}
	c, err := NewClientWith(conn, opt)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established connection, performing the handshake:
// each side sends the protocol magic and verifies the peer's.
func NewClient(conn net.Conn) (*Client, error) {
	return NewClientWith(conn, Options{})
}

// NewClientWith wraps an established connection under the given I/O
// timeouts. The handshake runs under DialTimeout (falling back to
// ReadTimeout) so a peer that accepts but never answers cannot hang the
// constructor.
func NewClientWith(conn net.Conn, opt Options) (*Client, error) {
	c := &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn), opt: opt}
	hs := opt.DialTimeout
	if hs <= 0 {
		hs = opt.ReadTimeout
	}
	if hs > 0 {
		if err := conn.SetDeadline(time.Now().Add(hs)); err != nil {
			return nil, err
		}
		defer conn.SetDeadline(time.Time{})
	}
	if err := WriteMagic(c.bw); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	if err := ExpectMagic(c.br); err != nil {
		return nil, err
	}
	return c, nil
}

// Close closes the connection. Open cursors become unusable.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// RemoteError is a failure reported by the server (as opposed to a
// transport failure).
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "server: " + e.Msg }

// roundTrip sends one frame and reads the reply, handling Error frames.
// The client's mutex is deliberately held across the socket write and
// the reply read: the protocol is strict request/response on a single
// connection, so the lock IS the request pipeline — waiters queue for
// the wire, they cannot deadlock against it, and the server bounds how
// long a reply can take.
//
//spatiallint:ignore lockdiscipline the mutex serialises request/response frames on one connection; holding it across the round trip is the protocol
func (c *Client) roundTrip(t FrameType, payload []byte) (FrameType, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opt.WriteTimeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.opt.WriteTimeout)); err != nil {
			return 0, nil, err
		}
	}
	if err := WriteFrame(c.bw, t, payload); err != nil {
		return 0, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, nil, err
	}
	if c.opt.ReadTimeout > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(c.opt.ReadTimeout)); err != nil {
			return 0, nil, err
		}
	}
	rt, rp, err := ReadFrame(c.br)
	if err != nil {
		return 0, nil, err
	}
	if rt == FrameError {
		msg, perr := ParseError(rp)
		if perr != nil {
			return 0, nil, perr
		}
		return 0, nil, &RemoteError{Msg: msg}
	}
	return rt, rp, nil
}

// QueryResult is the outcome of Client.Query: either an immediate
// result (DDL/DML/COUNT — Cursor is nil) or an open cursor streaming a
// SELECT row source.
type QueryResult struct {
	Message  string
	HasCount bool
	Count    int64
	Columns  []string
	Rows     [][]string
	// Cursor is non-nil for streaming results; the caller must drain or
	// Close it.
	Cursor *Cursor
}

// Format renders an immediate result (or a cursor announcement) as an
// aligned text table, mirroring the local REPL rendering.
func (r *QueryResult) Format() string {
	if r.Cursor != nil {
		return fmt.Sprintf("(cursor %d open)\n", r.Cursor.ID())
	}
	if r.Message != "" {
		return r.Message + "\n"
	}
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, v := range row {
			if i < len(widths) && len(v) > widths[i] && len(v) <= 48 {
				widths[i] = len(v)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, v := range cells {
			if len(v) > 48 {
				v = v[:45] + "..."
			}
			fmt.Fprintf(&b, "%-*s  ", widths[i], v)
		}
		b.WriteString("\n")
	}
	writeRow(r.Columns)
	for _, row := range r.Rows {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(r.Rows))
	return b.String()
}

// Query executes one SQL statement on the server. Streaming SELECTs
// return a QueryResult holding an open Cursor; everything else returns
// an immediate QueryResult.
func (c *Client) Query(sql string) (*QueryResult, error) {
	return c.query(FrameQuery, AppendQuery(nil, sql))
}

// QueryScoped executes one SQL statement restricted to a cluster scope:
// the server evaluates it as usual but keeps only rows/pairs whose
// reference point falls in a grid tile owned by sc.Shard. Servers that
// predate the frame answer with an "unknown frame type" RemoteError.
func (c *Client) QueryScoped(sql string, sc Scope) (*QueryResult, error) {
	return c.query(FrameScopedQuery, AppendScopedQuery(nil, sc, sql))
}

func (c *Client) query(ft FrameType, payload []byte) (*QueryResult, error) {
	t, p, err := c.roundTrip(ft, payload)
	if err != nil {
		return nil, err
	}
	switch t {
	case FrameResult:
		r, err := ParseResult(p)
		if err != nil {
			return nil, err
		}
		return &QueryResult{
			Message:  r.Message,
			HasCount: r.HasCount,
			Count:    r.Count,
			Columns:  r.Columns,
			Rows:     r.Rows,
		}, nil
	case FrameDescribe:
		id, schema, err := ParseDescribe(p)
		if err != nil {
			return nil, err
		}
		return &QueryResult{Cursor: &Cursor{c: c, id: id, schema: schema}}, nil
	default:
		return nil, fmt.Errorf("wire: unexpected reply frame 0x%02x to Query", byte(t))
	}
}

// Stats fetches the server's statistics snapshot.
func (c *Client) Stats() (Stats, error) {
	t, p, err := c.roundTrip(FrameStats, nil)
	if err != nil {
		return Stats{}, err
	}
	if t != FrameStatsReply {
		return Stats{}, fmt.Errorf("wire: unexpected reply frame 0x%02x to Stats", byte(t))
	}
	return ParseStats(p)
}

// Metrics fetches the server's full metrics snapshot (every registered
// series, histograms included). A server that predates the Metrics
// frame answers with an "unknown frame type" RemoteError.
func (c *Client) Metrics() ([]telemetry.Point, error) {
	t, p, err := c.roundTrip(FrameMetricsReq, nil)
	if err != nil {
		return nil, err
	}
	if t != FrameMetricsReply {
		return nil, fmt.Errorf("wire: unexpected reply frame 0x%02x to Metrics", byte(t))
	}
	return ParseMetrics(p)
}

// Cursor is a remote result-set cursor: the client half of the
// start–fetch–close pipeline. Rows arrive in bounded batches pulled by
// Fetch; the server produces each batch on demand and never buffers the
// full result.
type Cursor struct {
	c      *Client
	id     uint64
	schema []storage.Column
	done   bool

	// Row-at-a-time buffer for Next.
	buf []storage.Row
	pos int
}

// ID returns the server-assigned cursor id.
func (cur *Cursor) ID() uint64 { return cur.id }

// Columns returns the result schema.
func (cur *Cursor) Columns() []storage.Column { return cur.schema }

// Fetch pulls the next batch of up to max rows (0 = server default).
// done reports end of stream, after which the server has already
// released the cursor and further calls return no rows.
func (cur *Cursor) Fetch(max int) (rows []storage.Row, done bool, err error) {
	if cur.done {
		return nil, true, nil
	}
	if max < 0 {
		max = 0
	}
	t, p, err := cur.c.roundTrip(FrameFetch, AppendFetch(nil, cur.id, uint64(max)))
	if err != nil {
		if _, remote := err.(*RemoteError); remote {
			// The server discarded the cursor along with the error.
			cur.done = true
		}
		return nil, false, err
	}
	if t != FrameBatch {
		return nil, false, fmt.Errorf("wire: unexpected reply frame 0x%02x to Fetch", byte(t))
	}
	id, d, rows, err := ParseBatch(p, cur.schema)
	if err != nil {
		return nil, false, err
	}
	if id != cur.id {
		return nil, false, fmt.Errorf("wire: batch for cursor %d on cursor %d", id, cur.id)
	}
	cur.done = d
	return rows, d, nil
}

// Next returns rows one at a time, fetching batches (server default
// size) behind the scenes. ok is false at end of stream.
func (cur *Cursor) Next() (storage.Row, bool, error) {
	for cur.pos >= len(cur.buf) {
		if cur.done {
			return nil, false, nil
		}
		rows, _, err := cur.Fetch(0)
		if err != nil {
			return nil, false, err
		}
		cur.buf, cur.pos = rows, 0
		if len(rows) == 0 && cur.done {
			return nil, false, nil
		}
	}
	row := cur.buf[cur.pos]
	cur.pos++
	return row, true, nil
}

// Close releases the cursor on the server. Idempotent; a drained
// cursor needs no round trip (the server released it with the final
// batch).
func (cur *Cursor) Close() error {
	if cur.done {
		return nil
	}
	cur.done = true
	_, _, err := cur.c.roundTrip(FrameCloseCursor, AppendCloseCursor(nil, cur.id))
	return err
}
