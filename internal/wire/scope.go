package wire

import "fmt"

// FrameScopedQuery carries one SQL statement plus a cluster scope: the
// grid geometry the coordinator shards by and which shard this server
// is. The server executes the statement as usual but keeps only
// rows/pairs whose reference point (A/B/C/D corner rule) lands in a
// tile this shard owns, so a scatter across all shards returns every
// result exactly once. Payload: Scope image, then string sql. Replies
// are the ordinary FrameResult / FrameDescribe.
const FrameScopedQuery FrameType = 0x06

// Scope describes the cluster's spatial ownership function: a fixed
// grid over Bounds with Cols×Rows tiles, tile (col,row) owned by shard
// (row*Cols+col) % NShards. Shard is the receiver's index in [0,NShards).
type Scope struct {
	MinX, MinY, MaxX, MaxY float64
	Cols, Rows             int
	NShards, Shard         int
}

// Validate rejects scopes no server should execute under.
func (sc Scope) Validate() error {
	if !(sc.MinX < sc.MaxX) || !(sc.MinY < sc.MaxY) {
		return fmt.Errorf("wire: scope with empty bounds [%g,%g]x[%g,%g]", sc.MinX, sc.MaxX, sc.MinY, sc.MaxY)
	}
	if sc.Cols < 1 || sc.Rows < 1 {
		return fmt.Errorf("wire: scope with %dx%d grid", sc.Cols, sc.Rows)
	}
	if sc.Cols > 1<<16 || sc.Rows > 1<<16 {
		return fmt.Errorf("wire: scope grid %dx%d too large", sc.Cols, sc.Rows)
	}
	if sc.NShards < 1 || sc.Shard < 0 || sc.Shard >= sc.NShards {
		return fmt.Errorf("wire: scope shard %d of %d", sc.Shard, sc.NShards)
	}
	return nil
}

// AppendScopedQuery encodes a ScopedQuery payload.
func AppendScopedQuery(dst []byte, sc Scope, sql string) []byte {
	p := payload{b: dst}
	p.f64(sc.MinX)
	p.f64(sc.MinY)
	p.f64(sc.MaxX)
	p.f64(sc.MaxY)
	p.u64(uint64(sc.Cols))
	p.u64(uint64(sc.Rows))
	p.u64(uint64(sc.NShards))
	p.u64(uint64(sc.Shard))
	p.str(sql)
	return p.b
}

// ParseScopedQuery decodes a ScopedQuery payload and validates the
// scope.
func ParseScopedQuery(b []byte) (Scope, string, error) {
	p := pReader{b: b}
	var sc Scope
	var err error
	for _, dst := range []*float64{&sc.MinX, &sc.MinY, &sc.MaxX, &sc.MaxY} {
		if *dst, err = p.f64(); err != nil {
			return sc, "", err
		}
	}
	for _, dst := range []*int{&sc.Cols, &sc.Rows, &sc.NShards, &sc.Shard} {
		v, err := p.u64()
		if err != nil {
			return sc, "", err
		}
		if v > 1<<31 {
			return sc, "", fmt.Errorf("wire: scope field %d out of range", v)
		}
		*dst = int(v)
	}
	sql, err := p.str()
	if err != nil {
		return sc, "", err
	}
	if err := p.done(); err != nil {
		return sc, "", err
	}
	if err := sc.Validate(); err != nil {
		return sc, "", err
	}
	return sc, sql, nil
}
