package wire

import (
	"bufio"
	"bytes"
	"testing"

	"spatialtf/internal/geom"
	"spatialtf/internal/storage"
	"spatialtf/internal/telemetry"
)

// fuzzSchema covers every column type, so ParseBatch drives the storage
// row codec and the geometry binary decoder from the same input.
var fuzzSchema = []storage.Column{
	{Name: "id", Type: storage.TInt64},
	{Name: "w", Type: storage.TFloat64},
	{Name: "name", Type: storage.TString},
	{Name: "blob", Type: storage.TBytes},
	{Name: "geom", Type: storage.TGeometry},
}

// FuzzWireDecode throws bytes at every decode path a peer can reach: the
// frame reader, then each payload parser on the raw payload. All of them
// must return an error rather than panic, hang, or over-allocate on
// hostile input.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendQuery(nil, "SELECT count(*) FROM cities"))
	f.Add(AppendFetch(nil, 7, 128))
	f.Add(AppendCloseCursor(nil, 7))
	f.Add(AppendDescribe(nil, 7, fuzzSchema))
	f.Add(AppendError(nil, "boom"))
	f.Add(AppendStats(nil, Stats{Queries: 3, RowsStreamed: 99}))
	f.Add(AppendMetrics(nil, []telemetry.Point{
		{Name: "a_total", Kind: telemetry.KindCounter, Value: 3},
		{Name: "lat", Kind: telemetry.KindHistogram, Bounds: []float64{0.1, 1},
			Counts: []int64{1, 2, 3}, Sum: 4.5, Count: 6},
	}))
	f.Add(AppendResult(nil, Result{Message: "ok", HasCount: true, Count: 2,
		Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}))
	if b, err := AppendBatch(nil, 7, true, fuzzSchema, []storage.Row{{
		storage.Int(1), storage.Float(0.5), storage.Str("x"), storage.Bytes([]byte{1}),
		storage.Geom(geom.Geometry{Kind: geom.KindPoint, Pts: []geom.Point{{X: 1, Y: 2}}}),
	}}); err == nil {
		f.Add(b)
	}
	var frame bytes.Buffer
	bw := bufio.NewWriter(&frame)
	if err := WriteFrame(bw, FrameQuery, AppendQuery(nil, "SELECT * FROM rivers")); err == nil && bw.Flush() == nil {
		f.Add(frame.Bytes())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for {
			if _, _, err := ReadFrame(br); err != nil {
				break
			}
		}
		ParseQuery(data)
		ParseFetch(data)
		ParseCloseCursor(data)
		ParseDescribe(data)
		ParseBatch(data, fuzzSchema)
		ParseResult(data)
		ParseError(data)
		ParseStats(data)
		ParseMetrics(data)
	})
}
