package wire

import (
	"reflect"
	"testing"

	"spatialtf/internal/telemetry"
)

func TestMetricsRoundTrip(t *testing.T) {
	in := []telemetry.Point{
		{Name: "reqs_total", Help: "requests", Kind: telemetry.KindCounter, Value: 42},
		{Name: "depth", Kind: telemetry.KindGauge, Value: -2.5},
		{Name: "lat_seconds", Help: "latency", Kind: telemetry.KindHistogram,
			Bounds: []float64{0.01, 0.1, 1},
			Counts: []int64{5, 3, 1, 2}, Sum: 7.25, Count: 11},
	}
	out, err := ParseMetrics(AppendMetrics(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestMetricsEmpty(t *testing.T) {
	out, err := ParseMetrics(AppendMetrics(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("empty snapshot decoded to %d points", len(out))
	}
}

// TestMetricsUnknownKindSkipped is the forward-compatibility contract:
// an old client must skip entries a newer server encodes with a kind it
// does not know, and keep the entries it does.
func TestMetricsUnknownKindSkipped(t *testing.T) {
	var p payload
	p.u64(3)
	var e payload
	// Known counter.
	e.str("known_total")
	e.str("")
	e.byteV(byte(telemetry.KindCounter))
	e.f64(1)
	p.blob(e.b)
	// Unknown kind 200 with an arbitrary body.
	e.b = e.b[:0]
	e.str("future_metric")
	e.str("from a newer peer")
	e.byteV(200)
	e.str("opaque body bytes")
	p.blob(e.b)
	// Known gauge after the unknown entry — decoding must resynchronise.
	e.b = e.b[:0]
	e.str("after")
	e.str("")
	e.byteV(byte(telemetry.KindGauge))
	e.f64(9)
	p.blob(e.b)

	out, err := ParseMetrics(p.b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Name != "known_total" || out[1].Name != "after" {
		t.Errorf("decoded %+v, want the two known entries", out)
	}
	if out[1].Value != 9 {
		t.Errorf("entry after the skip decoded to %+v", out[1])
	}
}

// TestMetricsTrailingEntryBytes: extra fields appended inside an entry
// blob by a newer encoder are ignored, not an error.
func TestMetricsTrailingEntryBytes(t *testing.T) {
	var p payload
	p.u64(1)
	var e payload
	e.str("c_total")
	e.str("")
	e.byteV(byte(telemetry.KindCounter))
	e.f64(5)
	e.str("a future extra field")
	p.blob(e.b)
	out, err := ParseMetrics(p.b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Value != 5 {
		t.Errorf("decoded %+v", out)
	}
}

func TestMetricsParseLimits(t *testing.T) {
	// Entry-count cap.
	var p payload
	p.u64(maxMetricEntries + 1)
	if _, err := ParseMetrics(p.b); err == nil {
		t.Error("oversized entry count must be rejected")
	}
	// Bucket-count cap.
	p.b = p.b[:0]
	p.u64(1)
	var e payload
	e.str("h")
	e.str("")
	e.byteV(byte(telemetry.KindHistogram))
	e.u64(maxBuckets + 1)
	p.blob(e.b)
	if _, err := ParseMetrics(p.b); err == nil {
		t.Error("oversized bucket count must be rejected")
	}
	// Truncated entry.
	p.b = p.b[:0]
	p.u64(1)
	e.b = e.b[:0]
	e.str("c")
	e.str("")
	e.byteV(byte(telemetry.KindCounter))
	// value missing
	p.blob(e.b)
	if _, err := ParseMetrics(p.b); err == nil {
		t.Error("truncated entry must be rejected")
	}
}
