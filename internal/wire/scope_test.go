package wire

import (
	"net"
	"testing"
	"time"
)

func TestScopedQueryCodec(t *testing.T) {
	sc := Scope{MinX: 0, MinY: -10, MaxX: 1000, MaxY: 990, Cols: 8, Rows: 4, NShards: 3, Shard: 2}
	b := AppendScopedQuery(nil, sc, "SELECT * FROM counties")
	got, sql, err := ParseScopedQuery(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != sc {
		t.Fatalf("scope: got %+v want %+v", got, sc)
	}
	if sql != "SELECT * FROM counties" {
		t.Fatalf("sql: got %q", sql)
	}
}

func TestScopedQueryRejectsBadScopes(t *testing.T) {
	cases := []Scope{
		{MinX: 10, MinY: 0, MaxX: 10, MaxY: 1, Cols: 1, Rows: 1, NShards: 1},         // empty X
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1, Cols: 0, Rows: 1, NShards: 1},           // zero cols
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1, Cols: 1, Rows: 1, NShards: 2, Shard: 2}, // shard out of range
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1, Cols: 1 << 20, Rows: 1, NShards: 1},     // grid too large
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1, Cols: 1, Rows: 1, NShards: 0},           // no shards
	}
	for i, sc := range cases {
		b := AppendScopedQuery(nil, sc, "SELECT 1")
		if _, _, err := ParseScopedQuery(b); err == nil {
			t.Errorf("case %d: scope %+v parsed without error", i, sc)
		}
	}
}

func TestScopedQueryTruncated(t *testing.T) {
	sc := Scope{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1, Cols: 1, Rows: 1, NShards: 1}
	b := AppendScopedQuery(nil, sc, "SELECT 1")
	for n := 0; n < len(b); n++ {
		if _, _, err := ParseScopedQuery(b[:n]); err == nil {
			t.Fatalf("truncation at %d bytes parsed without error", n)
		}
	}
}

// TestClientReadTimeout proves a client with a read deadline fails with
// a net timeout instead of hanging when the server accepts, handshakes,
// and then goes silent.
func TestClientReadTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srvDone := make(chan struct{})
	go func() {
		defer close(srvDone)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Complete the handshake, then never answer the query.
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, len(Magic))
		conn.Read(buf)
		conn.Write([]byte(Magic))
		hold := make([]byte, 1024)
		for {
			// Absorb frames, replying with nothing, until the client
			// gives up and closes the connection.
			if _, err := conn.Read(hold); err != nil {
				return
			}
		}
	}()
	c, err := DialWith(ln.Addr().String(), Options{
		DialTimeout: 2 * time.Second,
		ReadTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Query("SELECT 1")
	if err == nil {
		t.Fatal("query against silent server succeeded")
	}
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Fatalf("want net timeout error, got %T: %v", err, err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, deadline was 100ms", elapsed)
	}
	c.Close()
	<-srvDone
}

// TestClientDialTimeoutHandshake proves the handshake itself is bounded:
// a server that accepts but never sends its magic cannot hang DialWith.
func TestClientDialTimeoutHandshake(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 64)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		conn.Read(buf) // swallow the client magic, send nothing back
		conn.Read(buf) // block until the client gives up and closes
	}()
	start := time.Now()
	_, err = DialWith(ln.Addr().String(), Options{DialTimeout: 100 * time.Millisecond})
	if err == nil {
		t.Fatal("dial against mute server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("handshake timeout took %v, deadline was 100ms", elapsed)
	}
	<-done
}

// TestClientNoTimeoutStillWorks guards back-compat: zero Options must
// behave exactly like the historical deadline-free client.
func TestClientNoTimeoutStillWorks(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, len(Magic))
		if _, err := conn.Read(buf); err != nil {
			return
		}
		conn.Write([]byte(Magic))
	}()
	c, err := NewClientWith(mustDial(t, ln.Addr().String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	<-done
}

func mustDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}
