package datagen

import (
	"testing"

	"spatialtf/internal/geom"
)

func TestCountiesBasicProperties(t *testing.T) {
	ds := Counties(100, 1)
	if len(ds.Geoms) != 100 {
		t.Fatalf("generated %d counties", len(ds.Geoms))
	}
	for i, g := range ds.Geoms {
		if err := g.Validate(); err != nil {
			t.Fatalf("county %d invalid: %v", i, err)
		}
		if g.Kind != geom.KindPolygon {
			t.Fatalf("county %d kind %v", i, g.Kind)
		}
		if !ds.Bounds.Contains(geom.MBROf(g)) {
			t.Errorf("county %d escapes bounds: %v", i, geom.MBROf(g))
		}
		if g.NumVertices() < 20 {
			t.Errorf("county %d too simple: %d vertices", i, g.NumVertices())
		}
	}
}

func TestCountiesNeighboursTouch(t *testing.T) {
	ds := Counties(25, 2) // 5x5 grid
	// Horizontally adjacent cells share an edge and must interact but
	// not overlap interiors.
	a, b := ds.Geoms[0], ds.Geoms[1]
	if !geom.Intersects(a, b) {
		t.Fatalf("adjacent counties do not touch")
	}
	if geom.Relate(a, b, geom.MaskOverlap) {
		t.Errorf("adjacent counties overlap interiors")
	}
	// Distant cells are disjoint.
	far := ds.Geoms[24]
	if geom.Intersects(a, far) {
		t.Errorf("opposite-corner counties intersect")
	}
}

func TestCountiesSelfJoinSelectivity(t *testing.T) {
	// Each interior county touches 8 neighbours plus itself, so the
	// self-join cardinality is ≈9n — the property Table 1 relies on.
	ds := Counties(49, 3)
	count := 0
	for _, a := range ds.Geoms {
		for _, b := range ds.Geoms {
			if geom.MBROf(a).Intersects(geom.MBROf(b)) && geom.Intersects(a, b) {
				count++
			}
		}
	}
	n := len(ds.Geoms)
	if count < 5*n || count > 12*n {
		t.Errorf("self-join count %d outside the ~9n band for n=%d", count, n)
	}
}

func TestCountiesDeterministic(t *testing.T) {
	a := Counties(36, 7)
	b := Counties(36, 7)
	for i := range a.Geoms {
		if !a.Geoms[i].Equal(b.Geoms[i]) {
			t.Fatalf("county %d differs across identical seeds", i)
		}
	}
	c := Counties(36, 8)
	same := true
	for i := range a.Geoms {
		if !a.Geoms[i].Equal(c.Geoms[i]) {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds produced identical data")
	}
}

func TestStarsBasicProperties(t *testing.T) {
	ds := Stars(2000, 11)
	if len(ds.Geoms) != 2000 {
		t.Fatalf("generated %d stars", len(ds.Geoms))
	}
	for i, g := range ds.Geoms {
		if err := g.Validate(); err != nil {
			t.Fatalf("star %d invalid: %v", i, err)
		}
		if !ds.Bounds.Contains(geom.MBROf(g)) {
			t.Errorf("star %d escapes bounds", i)
		}
		m := geom.MBROf(g)
		if m.Width() > 5 || m.Height() > 5 {
			t.Errorf("star %d too large: %v", i, m)
		}
	}
}

func TestStarsAreClustered(t *testing.T) {
	ds := Stars(2000, 13)
	// Clustering: the average nearest-centroid distance must be far
	// below the uniform expectation. Cheap proxy: count stars per coarse
	// cell and check the max cell holds far more than uniform share.
	const cells = 20
	hist := map[[2]int]int{}
	for _, g := range ds.Geoms {
		c := g.Centroid()
		hist[[2]int{int(c.X / (1000.0 / cells)), int(c.Y / (1000.0 / cells))}]++
	}
	max := 0
	for _, v := range hist {
		if v > max {
			max = v
		}
	}
	uniform := len(ds.Geoms) / (cells * cells)
	if max < uniform*4 {
		t.Errorf("max cell %d vs uniform %d: data not clustered", max, uniform)
	}
}

func TestStarsSelfJoinGrowsSuperlinearly(t *testing.T) {
	// Density rises with n, so pairs/n must increase — Table 2's scaling.
	ratio := func(n int) float64 {
		ds := Stars(n, 17)
		pairs := 0
		for i, a := range ds.Geoms {
			ma := geom.MBROf(a)
			for j, b := range ds.Geoms {
				if i == j {
					pairs++
					continue
				}
				if ma.Intersects(geom.MBROf(b)) && geom.Intersects(a, b) {
					pairs++
				}
			}
		}
		return float64(pairs) / float64(n)
	}
	r1 := ratio(250)
	r2 := ratio(1500)
	if r2 <= r1 {
		t.Errorf("selectivity did not grow: %g at 250, %g at 1500", r1, r2)
	}
}

func TestBlockGroupsBasicProperties(t *testing.T) {
	ds := BlockGroups(300, 19)
	if len(ds.Geoms) != 300 {
		t.Fatalf("generated %d block groups", len(ds.Geoms))
	}
	totalV := 0
	for i, g := range ds.Geoms {
		if err := g.Validate(); err != nil {
			t.Fatalf("block group %d invalid: %v", i, err)
		}
		if !ds.Bounds.Contains(geom.MBROf(g)) {
			t.Errorf("block group %d escapes bounds", i)
		}
		totalV += g.NumVertices()
	}
	if avg := totalV / len(ds.Geoms); avg < 40 {
		t.Errorf("average vertex count %d; want complex polygons", avg)
	}
	if ds.TotalVertices() != totalV {
		t.Errorf("TotalVertices = %d, want %d", ds.TotalVertices(), totalV)
	}
}

func TestLoadTable(t *testing.T) {
	ds := Counties(50, 23)
	tab, ids, err := LoadTable("counties", ds)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 50 || len(ids) != 50 {
		t.Fatalf("loaded %d rows, %d ids", tab.Len(), len(ids))
	}
	// Round-trip a row.
	row, err := tab.Fetch(ids[7])
	if err != nil {
		t.Fatal(err)
	}
	if row[0].I != 7 {
		t.Errorf("id column = %d", row[0].I)
	}
	if !row[2].G.Equal(ds.Geoms[7]) {
		t.Errorf("geometry column mismatch at row 7")
	}
}

func TestGeneratorsHandleTinySizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		for name, gen := range map[string]func(int, int64) Dataset{
			"counties": Counties, "stars": Stars, "blockgroups": BlockGroups,
		} {
			ds := gen(n, 29)
			want := n
			if want < 1 {
				want = 1
			}
			if len(ds.Geoms) != want {
				t.Errorf("%s(%d) = %d geoms", name, n, len(ds.Geoms))
			}
			for i, g := range ds.Geoms {
				if err := g.Validate(); err != nil {
					t.Errorf("%s(%d) geom %d invalid: %v", name, n, i, err)
				}
			}
		}
	}
}
