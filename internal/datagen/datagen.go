// Package datagen synthesizes the three datasets of the paper's
// evaluation, which are proprietary (US county boundaries from a GIS
// vendor, a customer star catalogue, US census block groups). Each
// generator is deterministic in its seed and matches the property the
// corresponding experiment measures:
//
//   - Counties: contiguous complex polygons that touch their neighbours,
//     so a self-join selects ~9 neighbours per polygon — the same order
//     as the paper's 3230-county self-join (27K result pairs at d=0).
//   - Stars: many small clustered polygons; self-join selectivity grows
//     with density, reproducing Table 2's scaling behaviour.
//   - BlockGroups: "arbitrarily-shaped complex polygon geometries" with
//     large vertex counts, making tessellation (quadtree creation) far
//     more expensive than MBR computation (R-tree creation) — the Table
//     3 contrast.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"spatialtf/internal/geom"
	"spatialtf/internal/storage"
)

// World is the coordinate domain all generators place data in; quadtree
// grids over these datasets use it as bounds.
var World = geom.MBR{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}

// Dataset is a generated geometry collection.
type Dataset struct {
	Name   string
	Geoms  []geom.Geometry
	Bounds geom.MBR
}

// TotalVertices returns the summed vertex count — the complexity measure
// driving tessellation cost.
func (d Dataset) TotalVertices() int {
	n := 0
	for _, g := range d.Geoms {
		n += g.NumVertices()
	}
	return n
}

// Schema returns the standard table schema the loaders use:
// (id INT, name VARCHAR, geom GEOMETRY).
func Schema() []storage.Column {
	return []storage.Column{
		{Name: "id", Type: storage.TInt64},
		{Name: "name", Type: storage.TString},
		{Name: "geom", Type: storage.TGeometry},
	}
}

// LoadTable materialises ds into a fresh heap table and returns the
// table plus the rowid of each geometry (parallel to ds.Geoms).
func LoadTable(tableName string, ds Dataset) (*storage.Table, []storage.RowID, error) {
	tab, err := storage.NewTable(tableName, Schema())
	if err != nil {
		return nil, nil, err
	}
	ids := make([]storage.RowID, len(ds.Geoms))
	for i, g := range ds.Geoms {
		id, err := tab.Insert(storage.Row{
			storage.Int(int64(i)),
			storage.Str(fmt.Sprintf("%s-%d", ds.Name, i)),
			storage.Geom(g),
		})
		if err != nil {
			return nil, nil, fmt.Errorf("datagen: load %s row %d: %w", tableName, i, err)
		}
		ids[i] = id
	}
	return tab, ids, nil
}

// --- Counties ---

// Counties generates n contiguous county-like polygons tiling (most of)
// the world: a jittered grid whose cells share their jittered corner
// vertices and subdivided edges, so neighbouring counties genuinely
// touch (TOUCH/ANYINTERACT select them) without overlapping.
//
// Each county ring has 4 corners plus `sub` jittered vertices per edge
// (sub = 8 → 36-vertex polygons, matching the "complex polygon" scale of
// real county data).
func Counties(n int, seed int64) Dataset {
	if n < 1 {
		n = 1
	}
	side := int(math.Ceil(math.Sqrt(float64(n))))
	const sub = 8 // interior vertices per edge
	cellW := World.Width() / float64(side)
	cellH := World.Height() / float64(side)

	// Shared jittered corners. Boundary corners stay on the boundary so
	// every county remains inside World.
	corners := make([]geom.Point, (side+1)*(side+1))
	cidx := func(i, j int) int { return j*(side+1) + i }
	rng := rand.New(rand.NewSource(seed))
	maxJit := 0.25 * math.Min(cellW, cellH)
	for j := 0; j <= side; j++ {
		for i := 0; i <= side; i++ {
			x := float64(i) * cellW
			y := float64(j) * cellH
			if i > 0 && i < side {
				x += (rng.Float64()*2 - 1) * maxJit
			}
			if j > 0 && j < side {
				y += (rng.Float64()*2 - 1) * maxJit
			}
			corners[cidx(i, j)] = geom.Point{X: x, Y: y}
		}
	}

	// edgePoints returns the interior vertices of the shared edge from
	// corner a to corner b. The jitter RNG is seeded from the canonical
	// (low, high) corner index pair so both adjacent counties generate
	// identical boundary vertices; the points are returned in a→b order.
	edgePoints := func(ai, bi int) []geom.Point {
		lo, hi := ai, bi
		reversedDir := false
		if lo > hi {
			lo, hi = hi, lo
			reversedDir = true
		}
		erng := rand.New(rand.NewSource(seed ^ (int64(lo)<<20 + int64(hi))))
		a, b := corners[lo], corners[hi]
		dx, dy := b.X-a.X, b.Y-a.Y
		length := math.Hypot(dx, dy)
		if length == 0 {
			return nil
		}
		// Perpendicular unit vector for lateral jitter.
		px, py := -dy/length, dx/length
		pts := make([]geom.Point, sub)
		for k := 0; k < sub; k++ {
			t := float64(k+1) / float64(sub+1)
			lat := (erng.Float64()*2 - 1) * maxJit * 0.5
			x := a.X + dx*t + px*lat
			y := a.Y + dy*t + py*lat
			// Clamp into the world; both neighbours compute the same
			// clamped point, so contiguity is preserved.
			x = math.Max(World.MinX, math.Min(World.MaxX, x))
			y = math.Max(World.MinY, math.Min(World.MaxY, y))
			pts[k] = geom.Point{X: x, Y: y}
		}
		if reversedDir {
			for l, r := 0, len(pts)-1; l < r; l, r = l+1, r-1 {
				pts[l], pts[r] = pts[r], pts[l]
			}
		}
		return pts
	}

	geoms := make([]geom.Geometry, 0, n)
	for j := 0; j < side && len(geoms) < n; j++ {
		for i := 0; i < side && len(geoms) < n; i++ {
			c00 := cidx(i, j)
			c10 := cidx(i+1, j)
			c11 := cidx(i+1, j+1)
			c01 := cidx(i, j+1)
			ring := make([]geom.Point, 0, 4+4*sub)
			walk := func(a, b int) {
				ring = append(ring, corners[a])
				ring = append(ring, edgePoints(a, b)...)
			}
			walk(c00, c10)
			walk(c10, c11)
			walk(c11, c01)
			walk(c01, c00)
			pg, err := geom.NewPolygon(ring)
			if err != nil {
				// Extreme jitter could in principle self-degenerate a
				// ring; fall back to the un-jittered cell.
				pg, err = geom.NewRect(float64(i)*cellW, float64(j)*cellH,
					float64(i+1)*cellW, float64(j+1)*cellH)
				if err != nil {
					continue
				}
			}
			geoms = append(geoms, pg)
		}
	}
	return Dataset{Name: "counties", Geoms: geoms, Bounds: World}
}

// --- Star clusters ---

// Stars generates n small polygons clustered like a star catalogue
// cross-section: cluster centres are uniform over the world, members are
// Gaussian around their centre, and each star is a small convex polygon.
// Larger subsets are denser, so self-join selectivity grows
// superlinearly with n, as in Table 2.
func Stars(n int, seed int64) Dataset {
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	numClusters := n / 250
	if numClusters < 1 {
		numClusters = 1
	}
	centers := make([]geom.Point, numClusters)
	for i := range centers {
		centers[i] = geom.Point{
			X: 50 + rng.Float64()*(World.Width()-100),
			Y: 50 + rng.Float64()*(World.Height()-100),
		}
	}
	const sigma = 8.0
	geoms := make([]geom.Geometry, 0, n)
	for len(geoms) < n {
		c := centers[rng.Intn(numClusters)]
		cx := c.X + rng.NormFloat64()*sigma
		cy := c.Y + rng.NormFloat64()*sigma
		r := 0.3 + rng.Float64()*0.9
		g, err := starPolygon(rng, cx, cy, r, 6)
		if err != nil {
			continue
		}
		geoms = append(geoms, g)
	}
	return Dataset{Name: "stars", Geoms: geoms, Bounds: World}
}

// --- Block groups ---

// BlockGroups generates n large, arbitrarily-shaped polygons with heavy
// vertex counts (40–400 vertices), sized log-normally. Tessellating
// these is expensive — the property Table 3 exercises.
func BlockGroups(n int, seed int64) Dataset {
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	geoms := make([]geom.Geometry, 0, n)
	for len(geoms) < n {
		cx := 20 + rng.Float64()*(World.Width()-40)
		cy := 20 + rng.Float64()*(World.Height()-40)
		// Log-normal radius: mostly small, occasionally large.
		r := math.Exp(rng.NormFloat64()*0.6) * 2.5
		if r > 18 {
			r = 18
		}
		verts := 40 + rng.Intn(360)
		g, err := starPolygon(rng, cx, cy, r, verts)
		if err != nil {
			continue
		}
		geoms = append(geoms, g)
	}
	return Dataset{Name: "blockgroups", Geoms: geoms, Bounds: World}
}

// starPolygon builds a simple radial polygon with `verts` vertices
// around (cx, cy): radius modulated by low-frequency sinusoids plus
// noise, clamped inside World.
func starPolygon(rng *rand.Rand, cx, cy, r float64, verts int) (geom.Geometry, error) {
	if verts < 3 {
		verts = 3
	}
	f1 := 2 + rng.Intn(4)
	f2 := 5 + rng.Intn(6)
	p1 := rng.Float64() * 2 * math.Pi
	p2 := rng.Float64() * 2 * math.Pi
	ring := make([]geom.Point, verts)
	for k := 0; k < verts; k++ {
		th := 2 * math.Pi * float64(k) / float64(verts)
		rad := r * (1 +
			0.25*math.Sin(float64(f1)*th+p1) +
			0.12*math.Sin(float64(f2)*th+p2) +
			0.05*(rng.Float64()*2-1))
		if rad < r*0.2 {
			rad = r * 0.2
		}
		x := cx + rad*math.Cos(th)
		y := cy + rad*math.Sin(th)
		x = math.Max(World.MinX, math.Min(World.MaxX, x))
		y = math.Max(World.MinY, math.Min(World.MaxY, y))
		ring[k] = geom.Point{X: x, Y: y}
	}
	// Boundary clamping can duplicate consecutive vertices; drop them so
	// the ring has no zero-length edges.
	dedup := ring[:0]
	for _, p := range ring {
		if len(dedup) == 0 || dedup[len(dedup)-1] != p {
			dedup = append(dedup, p)
		}
	}
	if len(dedup) > 1 && dedup[0] == dedup[len(dedup)-1] {
		dedup = dedup[:len(dedup)-1]
	}
	return geom.NewPolygon(dedup)
}
