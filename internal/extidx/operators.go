package extidx

import (
	"fmt"

	"spatialtf/internal/geom"
	"spatialtf/internal/rtree"
	"spatialtf/internal/storage"
)

// This file implements the query operators registered with the
// framework: the equivalents of sdo_relate and sdo_within_distance in a
// WHERE clause. An operator evaluation consults the domain index for
// candidate rowids (primary filter) and then applies the exact geometry
// predicate to each fetched candidate (secondary filter). By
// construction an operator returns rows of the single indexed table —
// the framework restriction that pushes joins out to table functions.

// Relate returns the rowids of rows in tab whose geometry column
// satisfies mask against the query geometry q, using idx as the primary
// filter. It is the executor for
//
//	SELECT ... FROM tab WHERE sdo_relate(tab.col, :q, 'mask=<mask>')
func Relate(idx SpatialIndex, tab *storage.Table, column string, q geom.Geometry, mask geom.Mask) ([]storage.RowID, error) {
	col, err := tab.ColumnIndex(column)
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("extidx: relate query geometry: %w", err)
	}
	var out []storage.RowID
	for _, id := range idx.WindowCandidates(geom.MBROf(q)) {
		v, err := tab.FetchColumn(id, col)
		if err != nil {
			return nil, fmt.Errorf("extidx: secondary filter fetch %v: %w", id, err)
		}
		if geom.Relate(v.G, q, mask) {
			out = append(out, id)
		}
	}
	return out, nil
}

// Neighbor is one ranked result of Nearest.
type Neighbor struct {
	ID   storage.RowID
	Dist float64
}

// Nearest returns the k rows of tab whose geometries are closest to q,
// in non-decreasing exact distance — the executor for sdo_nn. It runs
// the standard filter-refine ranking loop: the index surfaces
// candidates in MBR-distance order (a lower bound), exact distances are
// computed on fetch, and a candidate is final once its exact distance
// is no greater than the next index lower bound.
//
// Only R-tree-backed indexes support ranking; other kinds return an
// error.
func Nearest(idx SpatialIndex, tab *storage.Table, column string, q geom.Geometry, k int) ([]Neighbor, error) {
	type ranker interface{ Tree() *rtree.Tree }
	r, ok := idx.(ranker)
	if !ok {
		return nil, fmt.Errorf("extidx: index kind %v does not support nearest-neighbour ranking", idx.Meta().Kind)
	}
	col, err := tab.ColumnIndex(column)
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("extidx: nearest query geometry: %w", err)
	}
	if k <= 0 {
		return nil, nil
	}
	qm := geom.MBROf(q)

	// Refinement queue: exact-distance results not yet proven final.
	var pending []Neighbor
	var out []Neighbor
	var iterErr error
	r.Tree().NearestFunc(qm, func(it rtree.Item, lower float64) bool {
		// Emit every pending result whose exact distance is ≤ the next
		// candidate's lower bound: nothing later can beat them.
		for len(pending) > 0 && pending[0].Dist <= lower {
			out = append(out, pending[0])
			pending = pending[1:]
			if len(out) == k {
				return false
			}
		}
		v, err := tab.FetchColumn(it.ID, col)
		if err != nil {
			iterErr = fmt.Errorf("extidx: nearest fetch %v: %w", it.ID, err)
			return false
		}
		d := geom.Distance(v.G, q)
		// Insert into pending, keeping it sorted by exact distance.
		pos := len(pending)
		for pos > 0 && pending[pos-1].Dist > d {
			pos--
		}
		pending = append(pending, Neighbor{})
		copy(pending[pos+1:], pending[pos:])
		pending[pos] = Neighbor{ID: it.ID, Dist: d}
		return true
	})
	if iterErr != nil {
		return nil, iterErr
	}
	for len(out) < k && len(pending) > 0 {
		out = append(out, pending[0])
		pending = pending[1:]
	}
	return out, nil
}

// WithinDistance returns the rowids of rows whose geometry lies within
// distance d of q — the executor for sdo_within_distance.
func WithinDistance(idx SpatialIndex, tab *storage.Table, column string, q geom.Geometry, d float64) ([]storage.RowID, error) {
	col, err := tab.ColumnIndex(column)
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("extidx: within-distance query geometry: %w", err)
	}
	if d < 0 {
		return nil, fmt.Errorf("extidx: negative distance %g", d)
	}
	var out []storage.RowID
	for _, id := range idx.DistCandidates(geom.MBROf(q), d) {
		v, err := tab.FetchColumn(id, col)
		if err != nil {
			return nil, fmt.Errorf("extidx: secondary filter fetch %v: %w", id, err)
		}
		if geom.WithinDistance(v.G, q, d) {
			out = append(out, id)
		}
	}
	return out, nil
}
