// Package extidx reproduces the Oracle extensible-indexing framework the
// paper builds on: domain indexes (here the spatial R-tree and Quadtree
// indextypes) are created on a column of a table through a registry,
// maintained automatically by table DML, described by a metadata row in
// a metadata table, and queried through operators that — crucially —
// "only return rows from a single table". That restriction is why
// spatial joins could not be implemented inside the framework and had to
// move to table functions (§1 of the paper).
package extidx

import (
	"errors"
	"fmt"
	"sync"

	"spatialtf/internal/geom"
	"spatialtf/internal/storage"
)

// IndexKind selects the spatial indextype.
type IndexKind string

// The two indextypes of Oracle Spatial.
const (
	KindRTree    IndexKind = "RTREE"
	KindQuadtree IndexKind = "QUADTREE"
)

// Params carries indextype-specific creation parameters, mirroring the
// PARAMETERS clause of CREATE INDEX ... INDEXTYPE IS mdsys.spatial_index.
type Params struct {
	// Fanout is the R-tree node capacity (0 selects the default).
	Fanout int
	// TilingLevel is the Quadtree fixed tiling level (sdo_level).
	TilingLevel int
	// Bounds is the indexed coordinate domain; required for Quadtrees,
	// optional for R-trees (used only for metadata).
	Bounds geom.MBR
	// BuildWorkers is the degree of parallelism for index creation —
	// the paper's "parallel clause". 0 or 1 builds sequentially.
	BuildWorkers int
	// InteriorEffort, when positive, computes interior approximations
	// for R-tree entries (geom.InteriorRect search granularity); joins
	// on such indexes can enable the interior fast accept.
	InteriorEffort int
}

// Metadata is the per-index row kept in the metadata table: name of the
// index, indexed table/column, indextype, and its parameters — the
// direct analogue of the paper's "metadata for the entire index is
// stored as a row in a separate metadata table. This metadata includes
// the name of the index table storing the index, dimensionality, root
// pointer fanout parameters for an R-tree and the tiling level parameter
// for a Quadtree index."
type Metadata struct {
	IndexName   string
	TableName   string
	ColumnName  string
	Kind        IndexKind
	Dimensions  int
	Fanout      int
	TilingLevel int
	Bounds      geom.MBR
	// InteriorEffort records whether (and at what granularity) interior
	// approximations were computed for R-tree entries.
	InteriorEffort int
	// RowsIndexed at creation time (maintenance updates the live index,
	// not this snapshot).
	RowsIndexed int
}

// SpatialIndex is the operator surface a domain index exposes. Primary-
// filter methods return candidate rowids of the indexed table only;
// exact (secondary-filter) evaluation happens in the query executor.
type SpatialIndex interface {
	// Meta returns the index metadata.
	Meta() Metadata
	// WindowCandidates returns rowids whose index approximation
	// interacts with the window MBR.
	WindowCandidates(w geom.MBR) []storage.RowID
	// DistCandidates returns rowids whose index approximation lies
	// within distance d of the window MBR.
	DistCandidates(w geom.MBR, d float64) []storage.RowID
	// InsertRow and DeleteRow are the DML-maintenance entry points.
	InsertRow(id storage.RowID, g geom.Geometry) error
	DeleteRow(id storage.RowID, g geom.Geometry) error
}

// Builder creates a SpatialIndex over the geometry column of a table.
// The rtree/quadtree adapter packages register one Builder each.
type Builder func(tab *storage.Table, geomCol int, p Params) (SpatialIndex, error)

// Registry tracks indextypes and created indexes, and owns the metadata
// table.
type Registry struct {
	mu       sync.RWMutex
	builders map[IndexKind]Builder
	indexes  map[string]SpatialIndex
	metas    map[string]Metadata
	metaTab  *storage.Table
}

// Registry errors.
var (
	ErrUnknownKind   = errors.New("extidx: unknown indextype")
	ErrDuplicateName = errors.New("extidx: index name already in use")
	ErrNoIndex       = errors.New("extidx: no such index")
)

// metaSchema is the schema of the metadata table.
func metaSchema() []storage.Column {
	return []storage.Column{
		{Name: "index_name", Type: storage.TString},
		{Name: "table_name", Type: storage.TString},
		{Name: "column_name", Type: storage.TString},
		{Name: "indextype", Type: storage.TString},
		{Name: "dimensions", Type: storage.TInt64},
		{Name: "fanout", Type: storage.TInt64},
		{Name: "tiling_level", Type: storage.TInt64},
		{Name: "interior_effort", Type: storage.TInt64},
		{Name: "min_x", Type: storage.TFloat64},
		{Name: "min_y", Type: storage.TFloat64},
		{Name: "max_x", Type: storage.TFloat64},
		{Name: "max_y", Type: storage.TFloat64},
		{Name: "rows_indexed", Type: storage.TInt64},
	}
}

// NewRegistry returns a registry with no indextypes registered.
func NewRegistry() *Registry {
	meta, err := storage.NewTable("spatial_index_metadata", metaSchema())
	if err != nil {
		// The schema is a compile-time constant; failure is a bug.
		panic(fmt.Sprintf("extidx: metadata table: %v", err))
	}
	return &Registry{
		builders: make(map[IndexKind]Builder),
		indexes:  make(map[string]SpatialIndex),
		metas:    make(map[string]Metadata),
		metaTab:  meta,
	}
}

// RegisterKind installs the builder for an indextype. Later
// registrations of the same kind replace earlier ones.
func (r *Registry) RegisterKind(kind IndexKind, b Builder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.builders[kind] = b
}

// indexHook adapts a SpatialIndex to the table's DML hook interface so
// inserts/updates on an indexed table "automatically trigger an update
// of the corresponding spatial indexes".
type indexHook struct {
	idx     SpatialIndex
	geomCol int
}

func (h *indexHook) RowInserted(id storage.RowID, row storage.Row) error {
	return h.idx.InsertRow(id, row[h.geomCol].G)
}

func (h *indexHook) RowDeleted(id storage.RowID, row storage.Row) error {
	return h.idx.DeleteRow(id, row[h.geomCol].G)
}

// CreateIndex builds an index of the given kind on tab.column, registers
// it under name, wires DML maintenance, and records the metadata row.
func (r *Registry) CreateIndex(name string, kind IndexKind, tab *storage.Table, column string, p Params) (SpatialIndex, error) {
	r.mu.Lock()
	builder, ok := r.builders[kind]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, kind)
	}
	if _, dup := r.indexes[name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	r.mu.Unlock()

	col, err := tab.ColumnIndex(column)
	if err != nil {
		return nil, err
	}
	if tab.Schema()[col].Type != storage.TGeometry {
		return nil, fmt.Errorf("extidx: column %q of %q is %v, not GEOMETRY", column, tab.Name(), tab.Schema()[col].Type)
	}
	idx, err := builder(tab, col, p)
	if err != nil {
		return nil, fmt.Errorf("extidx: create %q: %w", name, err)
	}
	meta := idx.Meta()
	meta.IndexName = name
	meta.TableName = tab.Name()
	meta.ColumnName = column

	r.mu.Lock()
	if _, dup := r.indexes[name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	r.indexes[name] = idx
	r.metas[name] = meta
	r.mu.Unlock()

	tab.AddHook(&indexHook{idx: idx, geomCol: col})
	if _, err := r.metaTab.Insert(metaRow(meta)); err != nil {
		return nil, fmt.Errorf("extidx: record metadata for %q: %w", name, err)
	}
	return idx, nil
}

// Lookup returns the index registered under name.
func (r *Registry) Lookup(name string) (SpatialIndex, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	idx, ok := r.indexes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoIndex, name)
	}
	return idx, nil
}

// Describe returns the full (registry-enriched) metadata of an index,
// including its name and the table/column it was created on.
func (r *Registry) Describe(name string) (Metadata, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.metas[name]
	if !ok {
		return Metadata{}, fmt.Errorf("%w: %q", ErrNoIndex, name)
	}
	return m, nil
}

// MetadataRows returns the metadata table contents — the user-visible
// catalogue view.
func (r *Registry) MetadataRows() ([]Metadata, error) {
	var out []Metadata
	err := r.metaTab.Scan(func(id storage.RowID, row storage.Row) bool {
		out = append(out, metaFromRow(row))
		return true
	})
	return out, err
}

func metaRow(m Metadata) storage.Row {
	return storage.Row{
		storage.Str(m.IndexName),
		storage.Str(m.TableName),
		storage.Str(m.ColumnName),
		storage.Str(string(m.Kind)),
		storage.Int(int64(m.Dimensions)),
		storage.Int(int64(m.Fanout)),
		storage.Int(int64(m.TilingLevel)),
		storage.Int(int64(m.InteriorEffort)),
		storage.Float(m.Bounds.MinX),
		storage.Float(m.Bounds.MinY),
		storage.Float(m.Bounds.MaxX),
		storage.Float(m.Bounds.MaxY),
		storage.Int(int64(m.RowsIndexed)),
	}
}

func metaFromRow(row storage.Row) Metadata {
	return Metadata{
		IndexName:      row[0].S,
		TableName:      row[1].S,
		ColumnName:     row[2].S,
		Kind:           IndexKind(row[3].S),
		Dimensions:     int(row[4].I),
		Fanout:         int(row[5].I),
		TilingLevel:    int(row[6].I),
		InteriorEffort: int(row[7].I),
		Bounds:         geom.MBR{MinX: row[8].F, MinY: row[9].F, MaxX: row[10].F, MaxY: row[11].F},
		RowsIndexed:    int(row[12].I),
	}
}
