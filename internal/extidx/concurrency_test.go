package extidx

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"spatialtf/internal/geom"
	"spatialtf/internal/storage"
)

// TestConcurrentQueriesAndDML exercises the framework's concurrency
// promise ("extensible indexing also ensures statement or session-level
// concurrency"): readers run window and distance queries while writers
// insert and delete rows with automatic index maintenance. Run with
// -race; the assertions only check internal consistency, since results
// legitimately vary while writers are active.
func TestConcurrentQueriesAndDML(t *testing.T) {
	r := newRegistry()
	tab, _ := loadCounties(t, 64)
	rt, err := r.CreateIndex("rt", KindRTree, tab, "geom", Params{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	stop := make(chan struct{})

	// Writers: insert small rects, then delete them.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				x := rng.Float64() * 900
				y := rng.Float64() * 900
				g, err := geom.NewRect(x, y, x+5, y+5)
				if err != nil {
					errs <- err
					return
				}
				id, err := tab.Insert(storage.Row{
					storage.Int(int64(1000 + i)),
					storage.Str(fmt.Sprintf("w%d-%d", seed, i)),
					storage.Geom(g),
				})
				if err != nil {
					errs <- err
					return
				}
				if i%2 == 0 {
					if err := tab.Delete(id); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(w + 1))
	}

	// Readers: window queries whose results must be self-consistent
	// (every returned row fetchable and actually intersecting).
	for rdr := 0; rdr < 4; rdr++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			col, _ := tab.ColumnIndex("geom")
			for i := 0; i < 300; i++ {
				select {
				case <-stop:
					return
				default:
				}
				x := rng.Float64() * 800
				y := rng.Float64() * 800
				q, err := geom.NewRect(x, y, x+100, y+100)
				if err != nil {
					errs <- err
					return
				}
				ids, err := Relate(rt, tab, "geom", q, geom.MaskAnyInteract)
				if err != nil {
					// Rows may vanish between the index probe and the
					// fetch while writers run; deleted-row errors are
					// the one acceptable race at this isolation level.
					continue
				}
				for _, id := range ids {
					v, err := tab.FetchColumn(id, col)
					if err != nil {
						continue // deleted in between
					}
					if !geom.Intersects(v.G, q) {
						errs <- fmt.Errorf("reader got non-intersecting row %v", id)
						return
					}
				}
			}
		}(int64(100 + rdr))
	}

	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
