package extidx

import (
	"fmt"
	"sync"

	"spatialtf/internal/geom"
	"spatialtf/internal/idxbuild"
	"spatialtf/internal/quadtree"
	"spatialtf/internal/rtree"
	"spatialtf/internal/storage"
)

// This file adapts the two spatial index implementations to the
// extensible-indexing SpatialIndex interface, making them the RTREE and
// QUADTREE indextypes of the registry. Index creation delegates to
// idxbuild, so the "parallel clause" (Params.BuildWorkers) drives the
// table-function-based parallel build of §5.

// RegisterDefaultKinds installs the RTREE and QUADTREE indextypes.
func RegisterDefaultKinds(r *Registry) {
	r.RegisterKind(KindRTree, BuildRTree)
	r.RegisterKind(KindQuadtree, BuildQuadtree)
}

// rtreeIndex adapts rtree.Tree.
type rtreeIndex struct {
	meta Metadata
	tree *rtree.Tree
	// interiorEffort > 0 means the index stores interior approximations
	// and DML maintenance must compute them for new rows too.
	interiorEffort int
}

// BuildRTree is the RTREE indextype builder.
func BuildRTree(tab *storage.Table, geomCol int, p Params) (SpatialIndex, error) {
	column := tab.Schema()[geomCol].Name
	tree, stats, err := idxbuild.CreateRtreeOpts(tab, column, idxbuild.RtreeOptions{
		Fanout:         p.Fanout,
		Workers:        p.BuildWorkers,
		InteriorEffort: p.InteriorEffort,
	})
	if err != nil {
		return nil, err
	}
	return &rtreeIndex{
		meta: Metadata{
			Kind:           KindRTree,
			Dimensions:     2,
			Fanout:         tree.MaxEntries(),
			Bounds:         tree.Bounds(),
			InteriorEffort: p.InteriorEffort,
			RowsIndexed:    stats.Rows,
		},
		tree:           tree,
		interiorEffort: p.InteriorEffort,
	}, nil
}

func (x *rtreeIndex) Meta() Metadata { return x.meta }

// Tree exposes the underlying R-tree for the join machinery (subtree
// enumeration, synchronized traversal).
func (x *rtreeIndex) Tree() *rtree.Tree { return x.tree }

func (x *rtreeIndex) WindowCandidates(w geom.MBR) []storage.RowID {
	var out []storage.RowID
	x.tree.Search(w, func(it rtree.Item) bool {
		out = append(out, it.ID)
		return true
	})
	return out
}

func (x *rtreeIndex) DistCandidates(w geom.MBR, d float64) []storage.RowID {
	var out []storage.RowID
	x.tree.SearchWithinDist(w, d, func(it rtree.Item) bool {
		out = append(out, it.ID)
		return true
	})
	return out
}

func (x *rtreeIndex) InsertRow(id storage.RowID, g geom.Geometry) error {
	it := rtree.Item{MBR: geom.MBROf(g), ID: id}
	if x.interiorEffort > 0 {
		if r := geom.InteriorRect(g, x.interiorEffort); r.Valid() && r.Area() > 0 {
			it.Interior = r
		}
	}
	return x.tree.Insert(it)
}

func (x *rtreeIndex) DeleteRow(id storage.RowID, g geom.Geometry) error {
	return x.tree.Delete(rtree.Item{MBR: geom.MBROf(g), ID: id})
}

// quadtreeIndex adapts quadtree.Index. A mutex serialises maintenance
// DML against queries (the underlying B-tree already allows concurrent
// readers; the mutex only orders whole-geometry updates, giving the
// statement-level atomicity extensible indexing promises).
type quadtreeIndex struct {
	meta Metadata
	mu   sync.Mutex
	idx  *quadtree.Index
}

// BuildQuadtree is the QUADTREE indextype builder. Params.Bounds and
// Params.TilingLevel are required.
func BuildQuadtree(tab *storage.Table, geomCol int, p Params) (SpatialIndex, error) {
	grid, err := quadtree.NewGrid(p.Bounds, p.TilingLevel)
	if err != nil {
		return nil, fmt.Errorf("extidx: quadtree params: %w", err)
	}
	column := tab.Schema()[geomCol].Name
	idx, stats, err := idxbuild.CreateQuadtree(tab, column, grid, p.BuildWorkers)
	if err != nil {
		return nil, err
	}
	return &quadtreeIndex{
		meta: Metadata{
			Kind:        KindQuadtree,
			Dimensions:  2,
			TilingLevel: grid.Level,
			Bounds:      grid.Bounds,
			RowsIndexed: stats.Rows,
		},
		idx: idx,
	}, nil
}

func (x *quadtreeIndex) Meta() Metadata { return x.meta }

// Index exposes the underlying quadtree for the tile-join machinery.
func (x *quadtreeIndex) Index() *quadtree.Index { return x.idx }

func (x *quadtreeIndex) WindowCandidates(w geom.MBR) []storage.RowID {
	return x.idx.WindowCandidates(w)
}

func (x *quadtreeIndex) DistCandidates(w geom.MBR, d float64) []storage.RowID {
	// The fixed-level quadtree answers distance probes by expanding the
	// window; tile containment then over-approximates as usual.
	return x.idx.WindowCandidates(w.Expand(d))
}

func (x *quadtreeIndex) InsertRow(id storage.RowID, g geom.Geometry) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.idx.InsertGeometry(id, g)
}

func (x *quadtreeIndex) DeleteRow(id storage.RowID, g geom.Geometry) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.idx.DeleteGeometry(id, g)
}
