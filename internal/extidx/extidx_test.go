package extidx

import (
	"errors"
	"testing"

	"spatialtf/internal/datagen"
	"spatialtf/internal/geom"
	"spatialtf/internal/storage"
)

func newRegistry() *Registry {
	r := NewRegistry()
	RegisterDefaultKinds(r)
	return r
}

func loadCounties(t testing.TB, n int) (*storage.Table, datagen.Dataset) {
	t.Helper()
	ds := datagen.Counties(n, 71)
	tab, _, err := datagen.LoadTable("counties", ds)
	if err != nil {
		t.Fatal(err)
	}
	return tab, ds
}

func TestCreateIndexAndMetadata(t *testing.T) {
	r := newRegistry()
	tab, ds := loadCounties(t, 49)
	rt, err := r.CreateIndex("counties_rt", KindRTree, tab, "geom", Params{Fanout: 16})
	if err != nil {
		t.Fatal(err)
	}
	qt, err := r.CreateIndex("counties_qt", KindQuadtree, tab, "geom",
		Params{TilingLevel: 6, Bounds: ds.Bounds, BuildWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Meta().Kind != KindRTree || rt.Meta().Fanout != 16 {
		t.Errorf("rtree meta = %+v", rt.Meta())
	}
	if qt.Meta().Kind != KindQuadtree || qt.Meta().TilingLevel != 6 {
		t.Errorf("quadtree meta = %+v", qt.Meta())
	}
	rows, err := r.MetadataRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("metadata table has %d rows", len(rows))
	}
	byName := map[string]Metadata{}
	for _, m := range rows {
		byName[m.IndexName] = m
	}
	m := byName["counties_rt"]
	if m.TableName != "counties" || m.ColumnName != "geom" || m.Kind != KindRTree ||
		m.Dimensions != 2 || m.RowsIndexed != 49 {
		t.Errorf("rtree metadata row = %+v", m)
	}
	m = byName["counties_qt"]
	if m.TilingLevel != 6 || m.Bounds != ds.Bounds {
		t.Errorf("quadtree metadata row = %+v", m)
	}
	// Lookup works.
	if got, err := r.Lookup("counties_rt"); err != nil || got != rt {
		t.Errorf("Lookup: %v, %v", got, err)
	}
	if _, err := r.Lookup("nope"); !errors.Is(err, ErrNoIndex) {
		t.Errorf("missing lookup: %v", err)
	}
}

func TestCreateIndexErrors(t *testing.T) {
	r := newRegistry()
	tab, ds := loadCounties(t, 9)
	if _, err := r.CreateIndex("x", IndexKind("BOGUS"), tab, "geom", Params{}); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("unknown kind: %v", err)
	}
	if _, err := r.CreateIndex("x", KindRTree, tab, "name", Params{}); err == nil {
		t.Errorf("non-geometry column: want error")
	}
	if _, err := r.CreateIndex("x", KindRTree, tab, "missing", Params{}); err == nil {
		t.Errorf("missing column: want error")
	}
	if _, err := r.CreateIndex("dup", KindRTree, tab, "geom", Params{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateIndex("dup", KindRTree, tab, "geom", Params{}); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate name: %v", err)
	}
	// Quadtree without bounds/level fails.
	if _, err := r.CreateIndex("q", KindQuadtree, tab, "geom", Params{}); err == nil {
		t.Errorf("quadtree without params: want error")
	}
	_ = ds
}

func TestOperatorsMatchBruteForce(t *testing.T) {
	r := newRegistry()
	tab, ds := loadCounties(t, 64)
	rt, err := r.CreateIndex("rt", KindRTree, tab, "geom", Params{})
	if err != nil {
		t.Fatal(err)
	}
	qt, err := r.CreateIndex("qt", KindQuadtree, tab, "geom",
		Params{TilingLevel: 6, Bounds: ds.Bounds})
	if err != nil {
		t.Fatal(err)
	}
	q, err := geom.NewRect(200, 200, 420, 380)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force expected sets.
	wantRelate := map[storage.RowID]bool{}
	wantDist := map[storage.RowID]bool{}
	const dist = 25.0
	colIdx, _ := tab.ColumnIndex("geom")
	tab.Scan(func(id storage.RowID, row storage.Row) bool {
		if geom.Intersects(row[colIdx].G, q) {
			wantRelate[id] = true
		}
		if geom.WithinDistance(row[colIdx].G, q, dist) {
			wantDist[id] = true
		}
		return true
	})
	for name, idx := range map[string]SpatialIndex{"rtree": rt, "quadtree": qt} {
		got, err := Relate(idx, tab, "geom", q, geom.MaskAnyInteract)
		if err != nil {
			t.Fatalf("%s Relate: %v", name, err)
		}
		if len(got) != len(wantRelate) {
			t.Fatalf("%s Relate: %d rows, want %d", name, len(got), len(wantRelate))
		}
		for _, id := range got {
			if !wantRelate[id] {
				t.Fatalf("%s Relate returned wrong row %v", name, id)
			}
		}
		gotD, err := WithinDistance(idx, tab, "geom", q, dist)
		if err != nil {
			t.Fatalf("%s WithinDistance: %v", name, err)
		}
		if len(gotD) != len(wantDist) {
			t.Fatalf("%s WithinDistance: %d rows, want %d", name, len(gotD), len(wantDist))
		}
	}
	// Operator input validation.
	if _, err := WithinDistance(rt, tab, "geom", q, -1); err == nil {
		t.Errorf("negative distance: want error")
	}
	if _, err := Relate(rt, tab, "missing", q, geom.MaskAnyInteract); err == nil {
		t.Errorf("bad column: want error")
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	r := newRegistry()
	tab, ds := loadCounties(t, 100)
	rt, err := r.CreateIndex("rt", KindRTree, tab, "geom", Params{})
	if err != nil {
		t.Fatal(err)
	}
	q := geom.NewPoint(333, 444)
	col, _ := tab.ColumnIndex("geom")
	// Brute-force exact distances.
	type cand struct {
		id storage.RowID
		d  float64
	}
	var all []cand
	tab.Scan(func(id storage.RowID, row storage.Row) bool {
		all = append(all, cand{id, geom.Distance(row[col].G, q)})
		return true
	})
	for _, k := range []int{1, 3, 10, 200} {
		got, err := Nearest(rt, tab, "geom", q, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want := k
		if want > len(all) {
			want = len(all)
		}
		if len(got) != want {
			t.Fatalf("k=%d: got %d neighbours", k, len(got))
		}
		// Distances must be the k smallest, in order.
		ds := make([]float64, len(all))
		for i, c := range all {
			ds[i] = c.d
		}
		sortFloats(ds)
		for i, nb := range got {
			if i > 0 && got[i-1].Dist > nb.Dist {
				t.Fatalf("k=%d: results out of order", k)
			}
			if diff := nb.Dist - ds[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("k=%d: result %d at distance %g, want %g", k, i, nb.Dist, ds[i])
			}
		}
	}
	// k <= 0 yields nothing; quadtree indexes refuse.
	if got, err := Nearest(rt, tab, "geom", q, 0); err != nil || got != nil {
		t.Errorf("k=0: %v, %v", got, err)
	}
	qt, err := r.CreateIndex("qt", KindQuadtree, tab, "geom", Params{TilingLevel: 6, Bounds: ds2Bounds(ds)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Nearest(qt, tab, "geom", q, 3); err == nil {
		t.Errorf("quadtree Nearest: want error")
	}
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

func ds2Bounds(ds datagen.Dataset) geom.MBR { return ds.Bounds }

func TestDMLMaintainsIndexes(t *testing.T) {
	r := newRegistry()
	tab, ds := loadCounties(t, 25)
	rt, err := r.CreateIndex("rt", KindRTree, tab, "geom", Params{})
	if err != nil {
		t.Fatal(err)
	}
	qt, err := r.CreateIndex("qt", KindQuadtree, tab, "geom",
		Params{TilingLevel: 6, Bounds: ds.Bounds})
	if err != nil {
		t.Fatal(err)
	}
	// Insert a new row after index creation: both indexes must see it.
	newGeom, err := geom.NewRect(500.5, 500.5, 501.5, 501.5)
	if err != nil {
		t.Fatal(err)
	}
	id, err := tab.Insert(storage.Row{storage.Int(999), storage.Str("late"), storage.Geom(newGeom)})
	if err != nil {
		t.Fatal(err)
	}
	probe := geom.MBROf(newGeom)
	found := func(idx SpatialIndex) bool {
		for _, got := range idx.WindowCandidates(probe) {
			if got == id {
				return true
			}
		}
		return false
	}
	if !found(rt) {
		t.Errorf("rtree missed DML insert")
	}
	if !found(qt) {
		t.Errorf("quadtree missed DML insert")
	}
	// Delete the row: both must forget it.
	if err := tab.Delete(id); err != nil {
		t.Fatal(err)
	}
	if found(rt) {
		t.Errorf("rtree kept deleted row")
	}
	if found(qt) {
		t.Errorf("quadtree kept deleted row")
	}
}

func TestRtreeIndexExposesTree(t *testing.T) {
	r := newRegistry()
	tab, _ := loadCounties(t, 16)
	idx, err := r.CreateIndex("rt", KindRTree, tab, "geom", Params{})
	if err != nil {
		t.Fatal(err)
	}
	rx, ok := idx.(interface{ Tree() interface{ Len() int } })
	_ = rx
	_ = ok
	// Concrete accessor used by the join layer.
	concrete, ok := idx.(*rtreeIndex)
	if !ok {
		t.Fatalf("RTREE index has unexpected type %T", idx)
	}
	if concrete.Tree().Len() != tab.Len() {
		t.Errorf("tree has %d items, table %d rows", concrete.Tree().Len(), tab.Len())
	}
}
