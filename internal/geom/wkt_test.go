package geom

import (
	"math/rand"
	"strings"
	"testing"
)

func TestWKTRoundTripFixed(t *testing.T) {
	cases := []string{
		"POINT (1 2)",
		"LINESTRING (0 0, 1 1, 2 0)",
		"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
		"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 6, 6 6, 6 4, 4 4, 4 6))",
		"MULTIPOINT ((0 0), (1 1))",
		"MULTILINESTRING ((0 0, 1 1), (2 2, 3 3, 4 2))",
		"MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 6 5, 6 6, 5 6, 5 5)))",
	}
	for _, s := range cases {
		g, err := ParseWKT(s)
		if err != nil {
			t.Errorf("ParseWKT(%q): %v", s, err)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("parsed %q invalid: %v", s, err)
		}
		out := MarshalWKT(g)
		g2, err := ParseWKT(out)
		if err != nil {
			t.Errorf("re-parse %q: %v", out, err)
			continue
		}
		if !g.Equal(g2) {
			t.Errorf("round trip changed geometry: %q -> %q", s, out)
		}
	}
}

func TestParseWKTWhitespaceAndCase(t *testing.T) {
	g, err := ParseWKT("  point(3   4)  ")
	if err != nil {
		t.Fatalf("ParseWKT: %v", err)
	}
	if g.Kind != KindPoint || g.Pts[0] != (Point{3, 4}) {
		t.Errorf("parsed %+v", g)
	}
}

func TestParseWKTScientificNotation(t *testing.T) {
	g, err := ParseWKT("POINT (1e3 -2.5E-2)")
	if err != nil {
		t.Fatalf("ParseWKT: %v", err)
	}
	if g.Pts[0] != (Point{1000, -0.025}) {
		t.Errorf("parsed %+v", g.Pts[0])
	}
}

func TestParseWKTErrors(t *testing.T) {
	bad := []string{
		"",
		"CIRCLE (0 0, 5)",
		"POINT (1)",
		"POINT (1 2",
		"POINT (1 2) extra",
		"POLYGON ((0 0, 1 1))",           // too few distinct points
		"POLYGON ((0 0, 1 1, 2 2, 0 0))", // degenerate
		"LINESTRING (0 0)",
		"POINT (a b)",
	}
	for _, s := range bad {
		if _, err := ParseWKT(s); err == nil {
			t.Errorf("ParseWKT(%q): want error", s)
		}
	}
}

func TestParseWKTMultipointCompactForm(t *testing.T) {
	// Some emitters use MULTIPOINT (0 0, 1 1) without inner parens; our
	// parser accepts the parenthesised coordinate list per member, and a
	// single list yields multiple points.
	g, err := ParseWKT("MULTIPOINT ((0 0, 1 1))")
	if err != nil {
		t.Fatalf("ParseWKT: %v", err)
	}
	if g.Kind != KindMultiPoint || len(g.Elems) != 2 {
		t.Errorf("parsed %+v", g)
	}
}

func TestWKTPolygonClosesRings(t *testing.T) {
	g := mustRect(t, 0, 0, 1, 1)
	s := MarshalWKT(g)
	// The emitted ring must be explicitly closed for interoperability.
	if !strings.HasPrefix(s, "POLYGON ((") {
		t.Fatalf("unexpected prefix: %q", s)
	}
	open := strings.TrimSuffix(strings.TrimPrefix(s, "POLYGON (("), "))")
	coords := strings.Split(open, ", ")
	if coords[0] != coords[len(coords)-1] {
		t.Errorf("ring not closed in %q", s)
	}
}

func TestWKTRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 100; i++ {
		g := randomRect(t, rng)
		g2, err := ParseWKT(MarshalWKT(g))
		if err != nil {
			t.Fatalf("round trip parse: %v", err)
		}
		if !g.Equal(g2) {
			t.Fatalf("round trip changed %v", g)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	outer := []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	hole := []Point{{2, 2}, {4, 2}, {4, 4}, {2, 4}}
	geoms := []Geometry{
		NewPoint(1.5, -2.25),
		mustLine(t, Point{0, 0}, Point{1, 1}, Point{2, 0}),
		mustPolygon(t, outer, hole),
	}
	mp, err := NewMulti(KindMultiPolygon, []Geometry{mustRect(t, 0, 0, 1, 1), mustRect(t, 5, 5, 6, 6)})
	if err != nil {
		t.Fatal(err)
	}
	geoms = append(geoms, mp)
	for _, g := range geoms {
		b := MarshalBinary(g)
		g2, err := UnmarshalBinary(b)
		if err != nil {
			t.Errorf("UnmarshalBinary(%v): %v", g.Kind, err)
			continue
		}
		if !g.Equal(g2) {
			t.Errorf("binary round trip changed %v", g)
		}
		// BinarySize lets encoders length-prefix without marshalling to
		// a throwaway buffer; it must agree with the encoder exactly.
		if got := BinarySize(g); got != len(b) {
			t.Errorf("BinarySize(%v) = %d, encoded length %d", g.Kind, got, len(b))
		}
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := UnmarshalBinary(nil); err == nil {
		t.Errorf("empty input: want error")
	}
	if _, err := UnmarshalBinary([]byte{255, 1}); err == nil {
		t.Errorf("bad kind: want error")
	}
	good := MarshalBinary(NewPoint(1, 2))
	if _, err := UnmarshalBinary(good[:len(good)-4]); err == nil {
		t.Errorf("truncated input: want error")
	}
	if _, err := UnmarshalBinary(append(good, 0)); err == nil {
		t.Errorf("trailing bytes: want error")
	}
}

func TestBinaryRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 200; i++ {
		g := randomRect(t, rng)
		g2, err := UnmarshalBinary(MarshalBinary(g))
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if !g.Equal(g2) {
			t.Fatalf("binary round trip changed %v", g)
		}
	}
}
