package geom

import (
	"math/rand"
	"testing"
)

func TestParseMask(t *testing.T) {
	cases := map[string]Mask{
		"intersect":   MaskAnyInteract,
		"ANYINTERACT": MaskAnyInteract,
		" touch ":     MaskTouch,
		"equal":       MaskEqual,
		"inside":      MaskInside,
		"within":      MaskInside,
		"contains":    MaskContains,
		"coveredby":   MaskCoveredBy,
		"covers":      MaskCovers,
		"overlap":     MaskOverlap,
	}
	for s, want := range cases {
		got, err := ParseMask(s)
		if err != nil {
			t.Errorf("ParseMask(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseMask(%q) = %v, want %v", s, got, want)
		}
	}
	if _, err := ParseMask("bogus"); err == nil {
		t.Errorf("ParseMask(bogus): want error")
	}
}

func TestMaskString(t *testing.T) {
	for _, m := range []Mask{MaskAnyInteract, MaskEqual, MaskInside, MaskContains, MaskCoveredBy, MaskCovers, MaskTouch, MaskOverlap} {
		s := m.String()
		back, err := ParseMask(s)
		if err != nil || back != m {
			t.Errorf("round-trip %v -> %q -> %v (%v)", m, s, back, err)
		}
	}
}

// relateMatrix runs Relate for all masks between a and b and compares
// against the expected set.
func relateMatrix(t *testing.T, name string, a, b Geometry, want map[Mask]bool) {
	t.Helper()
	all := []Mask{MaskAnyInteract, MaskEqual, MaskInside, MaskContains, MaskCoveredBy, MaskCovers, MaskTouch, MaskOverlap}
	for _, m := range all {
		if got := Relate(a, b, m); got != want[m] {
			t.Errorf("%s: Relate(a, b, %v) = %v, want %v", name, m, got, want[m])
		}
	}
}

func TestRelateDisjoint(t *testing.T) {
	a := mustRect(t, 0, 0, 1, 1)
	b := mustRect(t, 5, 5, 6, 6)
	relateMatrix(t, "disjoint", a, b, map[Mask]bool{})
}

func TestRelateEqual(t *testing.T) {
	a := mustRect(t, 0, 0, 2, 2)
	b := mustPolygon(t, []Point{{2, 2}, {0, 2}, {0, 0}, {2, 0}})
	relateMatrix(t, "equal", a, b, map[Mask]bool{
		MaskAnyInteract: true,
		MaskEqual:       true,
	})
}

func TestRelateInsideContains(t *testing.T) {
	small := mustRect(t, 2, 2, 3, 3)
	big := mustRect(t, 0, 0, 10, 10)
	relateMatrix(t, "small-in-big", small, big, map[Mask]bool{
		MaskAnyInteract: true,
		MaskInside:      true,
	})
	relateMatrix(t, "big-around-small", big, small, map[Mask]bool{
		MaskAnyInteract: true,
		MaskContains:    true,
	})
}

func TestRelateCoveredByCovers(t *testing.T) {
	// Inner shares the left edge with outer: boundary contact, so
	// COVEREDBY rather than INSIDE.
	inner := mustRect(t, 0, 2, 3, 4)
	outer := mustRect(t, 0, 0, 10, 10)
	relateMatrix(t, "coveredby", inner, outer, map[Mask]bool{
		MaskAnyInteract: true,
		MaskCoveredBy:   true,
	})
	relateMatrix(t, "covers", outer, inner, map[Mask]bool{
		MaskAnyInteract: true,
		MaskCovers:      true,
	})
}

func TestRelateTouch(t *testing.T) {
	a := mustRect(t, 0, 0, 2, 2)
	edge := mustRect(t, 2, 0, 4, 2)
	relateMatrix(t, "edge-touch", a, edge, map[Mask]bool{
		MaskAnyInteract: true,
		MaskTouch:       true,
	})
	corner := mustRect(t, 2, 2, 4, 4)
	relateMatrix(t, "corner-touch", a, corner, map[Mask]bool{
		MaskAnyInteract: true,
		MaskTouch:       true,
	})
	// Line touching polygon boundary from outside.
	l := mustLine(t, Point{2, 1}, Point{4, 1})
	if !Relate(a, l, MaskTouch) {
		t.Errorf("line touching boundary should TOUCH")
	}
}

func TestRelateOverlap(t *testing.T) {
	a := mustRect(t, 0, 0, 4, 4)
	b := mustRect(t, 2, 2, 6, 6)
	relateMatrix(t, "overlap", a, b, map[Mask]bool{
		MaskAnyInteract: true,
		MaskOverlap:     true,
	})
}

func TestRelatePointPolygon(t *testing.T) {
	poly := mustRect(t, 0, 0, 4, 4)
	in := NewPoint(2, 2)
	if !Relate(in, poly, MaskInside) {
		t.Errorf("interior point should be INSIDE")
	}
	if !Relate(poly, in, MaskContains) {
		t.Errorf("polygon should CONTAIN interior point")
	}
	on := NewPoint(0, 2)
	if !Relate(on, poly, MaskCoveredBy) {
		t.Errorf("boundary point should be COVEREDBY")
	}
	if !Relate(on, poly, MaskTouch) {
		t.Errorf("boundary point should TOUCH (interiors disjoint)")
	}
	out := NewPoint(9, 9)
	if Relate(out, poly, MaskAnyInteract) {
		t.Errorf("exterior point should not interact")
	}
}

// randomRect returns a random axis-aligned rectangle in [0,100)^2.
func randomRect(t testing.TB, rng *rand.Rand) Geometry {
	x := rng.Float64() * 90
	y := rng.Float64() * 90
	w := rng.Float64()*9 + 0.5
	h := rng.Float64()*9 + 0.5
	return mustRect(t, x, y, x+w, y+h)
}

// TestRelatePartition checks the exclusivity/partition structure of the
// masks on random rectangle pairs: when two geometries interact, exactly
// one of EQUAL / INSIDE / CONTAINS / COVEREDBY / COVERS / TOUCH / OVERLAP
// holds for rectangle pairs.
func TestRelatePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	exclusive := []Mask{MaskEqual, MaskInside, MaskContains, MaskCoveredBy, MaskCovers, MaskTouch, MaskOverlap}
	for i := 0; i < 300; i++ {
		a := randomRect(t, rng)
		b := randomRect(t, rng)
		if !Relate(a, b, MaskAnyInteract) {
			for _, m := range exclusive {
				if Relate(a, b, m) {
					t.Fatalf("disjoint pair satisfies %v: %v vs %v", m, a, b)
				}
			}
			continue
		}
		n := 0
		var held []Mask
		for _, m := range exclusive {
			if Relate(a, b, m) {
				n++
				held = append(held, m)
			}
		}
		if n != 1 {
			t.Fatalf("interacting pair satisfies %d masks %v: %v vs %v", n, held, a, b)
		}
	}
}

// TestRelateSymmetry checks the symmetric masks on random pairs and the
// duality of the asymmetric ones.
func TestRelateSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		a := randomRect(t, rng)
		b := randomRect(t, rng)
		for _, m := range []Mask{MaskAnyInteract, MaskEqual, MaskTouch, MaskOverlap} {
			if !m.Symmetric() {
				t.Fatalf("%v should report Symmetric", m)
			}
			if Relate(a, b, m) != Relate(b, a, m) {
				t.Fatalf("%v asymmetric on %v vs %v", m, a, b)
			}
		}
		if Relate(a, b, MaskInside) != Relate(b, a, MaskContains) {
			t.Fatalf("INSIDE/CONTAINS duality broken on %v vs %v", a, b)
		}
		if Relate(a, b, MaskCoveredBy) != Relate(b, a, MaskCovers) {
			t.Fatalf("COVEREDBY/COVERS duality broken on %v vs %v", a, b)
		}
	}
}
