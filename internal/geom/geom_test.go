package geom

import (
	"errors"
	"math"
	"testing"
)

func mustPolygon(t testing.TB, rings ...[]Point) Geometry {
	t.Helper()
	g, err := NewPolygon(rings...)
	if err != nil {
		t.Fatalf("NewPolygon: %v", err)
	}
	return g
}

func mustRect(t testing.TB, minX, minY, maxX, maxY float64) Geometry {
	t.Helper()
	g, err := NewRect(minX, minY, maxX, maxY)
	if err != nil {
		t.Fatalf("NewRect: %v", err)
	}
	return g
}

func mustLine(t testing.TB, pts ...Point) Geometry {
	t.Helper()
	g, err := NewLineString(pts)
	if err != nil {
		t.Fatalf("NewLineString: %v", err)
	}
	return g
}

func TestNewPoint(t *testing.T) {
	p := NewPoint(3, 4)
	if p.Kind != KindPoint || p.Pts[0] != (Point{3, 4}) {
		t.Fatalf("unexpected point %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestNewLineStringErrors(t *testing.T) {
	if _, err := NewLineString([]Point{{0, 0}}); !errors.Is(err, ErrTooFewPoints) {
		t.Errorf("1-point line: got %v, want ErrTooFewPoints", err)
	}
	if _, err := NewLineString([]Point{{0, 0}, {math.NaN(), 1}}); !errors.Is(err, ErrNotFinite) {
		t.Errorf("NaN line: got %v, want ErrNotFinite", err)
	}
}

func TestNewPolygonNormalisesOrientation(t *testing.T) {
	// Supply the outer ring clockwise; constructor must flip it to CCW.
	cw := []Point{{0, 0}, {0, 1}, {1, 1}, {1, 0}}
	g := mustPolygon(t, cw)
	if a := signedArea(g.Rings[0]); a <= 0 {
		t.Errorf("outer ring area = %g, want positive (CCW)", a)
	}
	// Supply a hole counter-clockwise; constructor must flip it to CW.
	outer := []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	holeCCW := []Point{{2, 2}, {4, 2}, {4, 4}, {2, 4}}
	g = mustPolygon(t, outer, holeCCW)
	if a := signedArea(g.Rings[1]); a >= 0 {
		t.Errorf("hole ring area = %g, want negative (CW)", a)
	}
}

func TestNewPolygonClosedRingAccepted(t *testing.T) {
	closed := []Point{{0, 0}, {1, 0}, {1, 1}, {0, 0}}
	g := mustPolygon(t, closed)
	if len(g.Rings[0]) != 3 {
		t.Errorf("ring length = %d, want 3 (closing vertex dropped)", len(g.Rings[0]))
	}
}

func TestNewPolygonErrors(t *testing.T) {
	if _, err := NewPolygon(); !errors.Is(err, ErrEmpty) {
		t.Errorf("no rings: got %v, want ErrEmpty", err)
	}
	if _, err := NewPolygon([]Point{{0, 0}, {1, 1}}); !errors.Is(err, ErrTooFewPoints) {
		t.Errorf("2-point ring: got %v, want ErrTooFewPoints", err)
	}
	if _, err := NewPolygon([]Point{{0, 0}, {1, 1}, {2, 2}}); !errors.Is(err, ErrDegenerate) {
		t.Errorf("collinear ring: got %v, want ErrDegenerate", err)
	}
}

func TestNewRect(t *testing.T) {
	g := mustRect(t, 1, 2, 3, 5)
	if got, want := g.Area(), 6.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Area = %g, want %g", got, want)
	}
	if _, err := NewRect(3, 2, 1, 5); err == nil {
		t.Errorf("inverted rect: want error")
	}
}

func TestNewMulti(t *testing.T) {
	mp, err := NewMulti(KindMultiPoint, []Geometry{NewPoint(0, 0), NewPoint(1, 1)})
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	if mp.NumVertices() != 2 {
		t.Errorf("NumVertices = %d, want 2", mp.NumVertices())
	}
	if _, err := NewMulti(KindMultiPolygon, []Geometry{NewPoint(0, 0)}); !errors.Is(err, ErrBadElement) {
		t.Errorf("mismatched element: got %v, want ErrBadElement", err)
	}
	if _, err := NewMulti(KindPoint, nil); !errors.Is(err, ErrBadKind) {
		t.Errorf("bad kind: got %v, want ErrBadKind", err)
	}
	if _, err := NewMulti(KindMultiPoint, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty multi: got %v, want ErrEmpty", err)
	}
}

func TestAreaWithHole(t *testing.T) {
	outer := []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	hole := []Point{{2, 2}, {4, 2}, {4, 4}, {2, 4}}
	g := mustPolygon(t, outer, hole)
	if got, want := g.Area(), 100.0-4.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Area = %g, want %g", got, want)
	}
}

func TestLength(t *testing.T) {
	l := mustLine(t, Point{0, 0}, Point{3, 4})
	if got := l.Length(); math.Abs(got-5) > 1e-12 {
		t.Errorf("line Length = %g, want 5", got)
	}
	sq := mustRect(t, 0, 0, 2, 2)
	if got := sq.Length(); math.Abs(got-8) > 1e-12 {
		t.Errorf("square perimeter = %g, want 8", got)
	}
	if got := NewPoint(1, 1).Length(); got != 0 {
		t.Errorf("point Length = %g, want 0", got)
	}
}

func TestCentroid(t *testing.T) {
	sq := mustRect(t, 0, 0, 2, 2)
	c := sq.Centroid()
	if math.Abs(c.X-1) > 1e-12 || math.Abs(c.Y-1) > 1e-12 {
		t.Errorf("Centroid = %+v, want (1,1)", c)
	}
}

func TestTranslate(t *testing.T) {
	g := mustRect(t, 0, 0, 1, 1).Translate(5, 7)
	m := MBROf(g)
	want := MBR{5, 7, 6, 8}
	if m != want {
		t.Errorf("translated MBR = %v, want %v", m, want)
	}
	// Original unchanged by construction (Translate copies).
	l := mustLine(t, Point{0, 0}, Point{1, 1})
	l2 := l.Translate(1, 0)
	if l.Pts[0] != (Point{0, 0}) || l2.Pts[0] != (Point{1, 0}) {
		t.Errorf("Translate mutated source or produced wrong copy")
	}
}

func TestEqual(t *testing.T) {
	a := mustPolygon(t, []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}})
	// Same square with rotated starting vertex and opposite direction.
	b := mustPolygon(t, []Point{{2, 2}, {2, 0}, {0, 0}, {0, 2}})
	if !a.Equal(b) {
		t.Errorf("rotated/reversed square not Equal")
	}
	c := mustPolygon(t, []Point{{0, 0}, {3, 0}, {3, 3}, {0, 3}})
	if a.Equal(c) {
		t.Errorf("different squares reported Equal")
	}
	l1 := mustLine(t, Point{0, 0}, Point{1, 1}, Point{2, 0})
	l2 := mustLine(t, Point{2, 0}, Point{1, 1}, Point{0, 0})
	if !l1.Equal(l2) {
		t.Errorf("reversed line not Equal")
	}
}

func TestNumVertices(t *testing.T) {
	outer := []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	hole := []Point{{2, 2}, {4, 2}, {4, 4}, {2, 4}}
	g := mustPolygon(t, outer, hole)
	if got := g.NumVertices(); got != 8 {
		t.Errorf("NumVertices = %d, want 8", got)
	}
}

func TestValidateRejectsBadKind(t *testing.T) {
	var g Geometry
	if err := g.Validate(); !errors.Is(err, ErrBadKind) {
		t.Errorf("zero Geometry Validate: got %v, want ErrBadKind", err)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNone:            "NONE",
		KindPoint:           "POINT",
		KindLineString:      "LINESTRING",
		KindPolygon:         "POLYGON",
		KindMultiPoint:      "MULTIPOINT",
		KindMultiLineString: "MULTILINESTRING",
		KindMultiPolygon:    "MULTIPOLYGON",
		Kind(200):           "KIND(200)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
