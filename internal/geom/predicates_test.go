package geom

import (
	"testing"
)

func TestSegIntersects(t *testing.T) {
	cases := []struct {
		name       string
		a, b, c, d Point
		want       bool
	}{
		{"proper cross", Point{0, 0}, Point{2, 2}, Point{0, 2}, Point{2, 0}, true},
		{"disjoint parallel", Point{0, 0}, Point{1, 0}, Point{0, 1}, Point{1, 1}, false},
		{"endpoint touch", Point{0, 0}, Point{1, 1}, Point{1, 1}, Point{2, 0}, true},
		{"T touch", Point{0, 0}, Point{2, 0}, Point{1, 0}, Point{1, 1}, true},
		{"collinear overlap", Point{0, 0}, Point{2, 0}, Point{1, 0}, Point{3, 0}, true},
		{"collinear disjoint", Point{0, 0}, Point{1, 0}, Point{2, 0}, Point{3, 0}, false},
		{"near miss", Point{0, 0}, Point{1, 0}, Point{0, 0.001}, Point{1, 0.001}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := segIntersects(c.a, c.b, c.c, c.d); got != c.want {
				t.Errorf("segIntersects = %v, want %v", got, c.want)
			}
			// Symmetry in both segment order and endpoint order.
			if got := segIntersects(c.c, c.d, c.a, c.b); got != c.want {
				t.Errorf("segIntersects not symmetric")
			}
			if got := segIntersects(c.b, c.a, c.d, c.c); got != c.want {
				t.Errorf("segIntersects not endpoint-order invariant")
			}
		})
	}
}

func TestSegProperCross(t *testing.T) {
	if !segProperCross(Point{0, 0}, Point{2, 2}, Point{0, 2}, Point{2, 0}) {
		t.Errorf("X crossing not proper")
	}
	if segProperCross(Point{0, 0}, Point{1, 1}, Point{1, 1}, Point{2, 0}) {
		t.Errorf("endpoint touch reported proper")
	}
	if segProperCross(Point{0, 0}, Point{2, 0}, Point{1, 0}, Point{3, 0}) {
		t.Errorf("collinear overlap reported proper")
	}
}

func TestPointInRing(t *testing.T) {
	sq := []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}}
	cases := []struct {
		p    Point
		want int
	}{
		{Point{2, 2}, 1},
		{Point{0, 2}, 0},  // on left edge
		{Point{4, 4}, 0},  // on corner
		{Point{5, 2}, -1}, // right of ring
		{Point{-1, 2}, -1},
		{Point{2, 0}, 0}, // on bottom edge
		{Point{2, 5}, -1},
	}
	for _, c := range cases {
		if got := pointInRing(c.p, sq); got != c.want {
			t.Errorf("pointInRing(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestPointInRingConcave(t *testing.T) {
	// A "U" shape: the notch between the arms is outside.
	u := []Point{{0, 0}, {6, 0}, {6, 4}, {4, 4}, {4, 2}, {2, 2}, {2, 4}, {0, 4}}
	if got := pointInRing(Point{3, 3}, u); got != -1 {
		t.Errorf("notch point classified %d, want -1", got)
	}
	if got := pointInRing(Point{1, 3}, u); got != 1 {
		t.Errorf("left arm point classified %d, want 1", got)
	}
	if got := pointInRing(Point{3, 1}, u); got != 1 {
		t.Errorf("base point classified %d, want 1", got)
	}
}

func TestPointInPolygonWithHole(t *testing.T) {
	outer := []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	hole := []Point{{4, 4}, {6, 4}, {6, 6}, {4, 6}}
	g := mustPolygon(t, outer, hole)
	cases := []struct {
		p    Point
		want int
	}{
		{Point{5, 5}, -1}, // inside the hole = exterior
		{Point{4, 5}, 0},  // on hole boundary
		{Point{2, 2}, 1},  // in the solid part
		{Point{0, 0}, 0},  // outer corner
		{Point{11, 5}, -1},
	}
	for _, c := range cases {
		if got := pointInPolygon(c.p, g); got != c.want {
			t.Errorf("pointInPolygon(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestIntersectsPolygonPairs(t *testing.T) {
	a := mustRect(t, 0, 0, 4, 4)
	cases := []struct {
		name string
		b    Geometry
		want bool
	}{
		{"overlapping", mustRect(t, 2, 2, 6, 6), true},
		{"contained", mustRect(t, 1, 1, 2, 2), true},
		{"containing", mustRect(t, -2, -2, 8, 8), true},
		{"edge touch", mustRect(t, 4, 0, 8, 4), true},
		{"corner touch", mustRect(t, 4, 4, 8, 8), true},
		{"disjoint", mustRect(t, 5, 5, 8, 8), false},
		{"same", mustRect(t, 0, 0, 4, 4), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Intersects(a, c.b); got != c.want {
				t.Errorf("Intersects = %v, want %v", got, c.want)
			}
			if got := Intersects(c.b, a); got != c.want {
				t.Errorf("Intersects not symmetric")
			}
		})
	}
}

func TestIntersectsRespectsHoles(t *testing.T) {
	outer := []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	hole := []Point{{3, 3}, {7, 3}, {7, 7}, {3, 7}}
	donut := mustPolygon(t, outer, hole)
	inHole := mustRect(t, 4, 4, 6, 6)
	if Intersects(donut, inHole) {
		t.Errorf("rect inside hole should not intersect donut")
	}
	spanning := mustRect(t, 4, 4, 12, 6) // exits the hole through the ring
	if !Intersects(donut, spanning) {
		t.Errorf("rect spanning hole boundary should intersect donut")
	}
	pIn := NewPoint(5, 5)
	if Intersects(donut, pIn) {
		t.Errorf("point in hole should not intersect donut")
	}
	pOnHole := NewPoint(3, 5)
	if !Intersects(donut, pOnHole) {
		t.Errorf("point on hole boundary should intersect donut")
	}
}

func TestIntersectsLineCases(t *testing.T) {
	poly := mustRect(t, 0, 0, 4, 4)
	crossing := mustLine(t, Point{-1, 2}, Point{5, 2})
	if !Intersects(poly, crossing) {
		t.Errorf("crossing line should intersect")
	}
	outside := mustLine(t, Point{5, 5}, Point{6, 6})
	if Intersects(poly, outside) {
		t.Errorf("outside line should not intersect")
	}
	inside := mustLine(t, Point{1, 1}, Point{2, 2})
	if !Intersects(poly, inside) {
		t.Errorf("interior line should intersect")
	}
	touching := mustLine(t, Point{-1, 0}, Point{0, 0})
	if !Intersects(poly, touching) {
		t.Errorf("endpoint-touching line should intersect")
	}
	l1 := mustLine(t, Point{0, 0}, Point{4, 4})
	l2 := mustLine(t, Point{0, 4}, Point{4, 0})
	if !Intersects(l1, l2) {
		t.Errorf("crossing lines should intersect")
	}
	l3 := mustLine(t, Point{0, 5}, Point{4, 5})
	if Intersects(l1, l3) {
		t.Errorf("disjoint lines should not intersect")
	}
}

func TestIntersectsPointCases(t *testing.T) {
	p := NewPoint(1, 1)
	if !Intersects(p, NewPoint(1, 1)) {
		t.Errorf("identical points should intersect")
	}
	if Intersects(p, NewPoint(1, 1.5)) {
		t.Errorf("distinct points should not intersect")
	}
	l := mustLine(t, Point{0, 0}, Point{2, 2})
	if !Intersects(p, l) {
		t.Errorf("point on line should intersect")
	}
	if Intersects(NewPoint(2, 0), l) {
		t.Errorf("point off line should not intersect")
	}
}

func TestIntersectsMulti(t *testing.T) {
	mp, err := NewMulti(KindMultiPolygon, []Geometry{
		mustRect(t, 0, 0, 1, 1),
		mustRect(t, 10, 10, 11, 11),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !Intersects(mp, mustRect(t, 10.5, 10.5, 12, 12)) {
		t.Errorf("second member should intersect")
	}
	if Intersects(mp, mustRect(t, 5, 5, 6, 6)) {
		t.Errorf("gap between members should not intersect")
	}
}

func TestIntersectsThinSliver(t *testing.T) {
	// MBRs overlap but the geometries do not: the classic case the
	// secondary filter must reject after the primary filter accepts.
	tri1 := mustPolygon(t, []Point{{0, 0}, {10, 0}, {0, 10}})
	tri2 := mustPolygon(t, []Point{{10, 10}, {9.5, 10}, {10, 9.5}})
	if !MBROf(tri1).Intersects(MBROf(tri2)) {
		t.Fatalf("test setup: MBRs should overlap")
	}
	if Intersects(tri1, tri2) {
		t.Errorf("exact test should reject the sliver pair")
	}
}

func TestCoveredBy(t *testing.T) {
	big := mustRect(t, 0, 0, 10, 10)
	small := mustRect(t, 2, 2, 4, 4)
	if !coveredBy(small, big) {
		t.Errorf("small in big should be covered")
	}
	if coveredBy(big, small) {
		t.Errorf("big in small should not be covered")
	}
	edge := mustRect(t, 0, 0, 4, 4) // shares two edges with big
	if !coveredBy(edge, big) {
		t.Errorf("edge-sharing rect should be covered")
	}
	if !coveredBy(big, big) {
		t.Errorf("geometry should cover itself")
	}
	overlapping := mustRect(t, 8, 8, 12, 12)
	if coveredBy(overlapping, big) {
		t.Errorf("partially overlapping rect should not be covered")
	}
}

func TestCoveredByWithHole(t *testing.T) {
	outer := []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	hole := []Point{{4, 4}, {6, 4}, {6, 6}, {4, 6}}
	donut := mustPolygon(t, outer, hole)
	solid := mustRect(t, 1, 1, 3, 3)
	if !coveredBy(solid, donut) {
		t.Errorf("rect in solid part should be covered")
	}
	spansHole := mustRect(t, 3, 3, 7, 7)
	if coveredBy(spansHole, donut) {
		t.Errorf("rect spanning the hole should not be covered")
	}
	lineInside := mustLine(t, Point{1, 1}, Point{3, 1})
	if !coveredBy(lineInside, donut) {
		t.Errorf("line in solid part should be covered")
	}
	lineAcrossHole := mustLine(t, Point{2, 5}, Point{8, 5})
	if coveredBy(lineAcrossHole, donut) {
		t.Errorf("line crossing the hole should not be covered")
	}
}

func TestCoveredByConcave(t *testing.T) {
	// U shape again: a rect bridging the notch has all vertices inside
	// but its middle is outside; the edge-midpoint test must catch it.
	u := mustPolygon(t, []Point{{0, 0}, {6, 0}, {6, 6}, {4, 6}, {4, 2}, {2, 2}, {2, 6}, {0, 6}})
	bridge := mustPolygon(t, []Point{{1, 4}, {5, 4}, {5, 5}, {1, 5}})
	if coveredBy(bridge, u) {
		t.Errorf("bridge across the notch should not be covered")
	}
	arm := mustRect(t, 0.5, 3, 1.5, 5)
	if !coveredBy(arm, u) {
		t.Errorf("rect inside the left arm should be covered")
	}
}

func TestLineCoveredByLine(t *testing.T) {
	long := mustLine(t, Point{0, 0}, Point{10, 0})
	sub := mustLine(t, Point{2, 0}, Point{5, 0})
	if !coveredBy(sub, long) {
		t.Errorf("sub-segment should be covered by containing segment")
	}
	if coveredBy(long, sub) {
		t.Errorf("long segment should not be covered by sub-segment")
	}
	off := mustLine(t, Point{2, 0}, Point{5, 1})
	if coveredBy(off, long) {
		t.Errorf("diverging segment should not be covered")
	}
}
