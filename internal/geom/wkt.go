package geom

import (
	"fmt"
	"strconv"
	"strings"
)

// MarshalWKT renders g in Well-Known Text, the interchange format used
// by the dataset tools and example programs.
func MarshalWKT(g Geometry) string {
	var b strings.Builder
	writeWKT(&b, g)
	return b.String()
}

func writeWKT(b *strings.Builder, g Geometry) {
	switch g.Kind {
	case KindPoint:
		fmt.Fprintf(b, "POINT (%s %s)", f(g.Pts[0].X), f(g.Pts[0].Y))
	case KindLineString:
		b.WriteString("LINESTRING ")
		writeCoords(b, g.Pts, false)
	case KindPolygon:
		b.WriteString("POLYGON ")
		writeRings(b, g.Rings)
	case KindMultiPoint:
		b.WriteString("MULTIPOINT (")
		for i, e := range g.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			writeCoords(b, e.Pts, false)
		}
		b.WriteString(")")
	case KindMultiLineString:
		b.WriteString("MULTILINESTRING (")
		for i, e := range g.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			writeCoords(b, e.Pts, false)
		}
		b.WriteString(")")
	case KindMultiPolygon:
		b.WriteString("MULTIPOLYGON (")
		for i, e := range g.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			writeRings(b, e.Rings)
		}
		b.WriteString(")")
	default:
		b.WriteString("GEOMETRY EMPTY")
	}
}

func writeRings(b *strings.Builder, rings [][]Point) {
	b.WriteString("(")
	for i, r := range rings {
		if i > 0 {
			b.WriteString(", ")
		}
		writeCoords(b, r, true)
	}
	b.WriteString(")")
}

func writeCoords(b *strings.Builder, pts []Point, closeRing bool) {
	b.WriteString("(")
	for i, p := range pts {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f(p.X))
		b.WriteString(" ")
		b.WriteString(f(p.Y))
	}
	if closeRing && len(pts) > 0 {
		fmt.Fprintf(b, ", %s %s", f(pts[0].X), f(pts[0].Y))
	}
	b.WriteString(")")
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseWKT parses a Well-Known Text geometry. It accepts the subset
// emitted by MarshalWKT: POINT, LINESTRING, POLYGON and their MULTI
// forms, with optional whitespace.
func ParseWKT(s string) (Geometry, error) {
	p := &wktParser{in: s}
	g, err := p.geometry()
	if err != nil {
		return Geometry{}, fmt.Errorf("geom: parse WKT at offset %d: %w", p.pos, err)
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return Geometry{}, fmt.Errorf("geom: parse WKT: trailing input at offset %d", p.pos)
	}
	return g, nil
}

type wktParser struct {
	in  string
	pos int
}

func (p *wktParser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n' || p.in[p.pos] == '\r') {
		p.pos++
	}
}

func (p *wktParser) word() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') {
			p.pos++
		} else {
			break
		}
	}
	return strings.ToUpper(p.in[start:p.pos])
}

func (p *wktParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != c {
		return fmt.Errorf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func (p *wktParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *wktParser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			p.pos++
		} else {
			break
		}
	}
	if start == p.pos {
		return 0, fmt.Errorf("expected number")
	}
	return strconv.ParseFloat(p.in[start:p.pos], 64)
}

func (p *wktParser) coord() (Point, error) {
	x, err := p.number()
	if err != nil {
		return Point{}, err
	}
	y, err := p.number()
	if err != nil {
		return Point{}, err
	}
	return Point{x, y}, nil
}

// coordList parses "(x y, x y, ...)".
func (p *wktParser) coordList() ([]Point, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var pts []Point
	for {
		pt, err := p.coord()
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return pts, nil
}

// ringList parses "((..), (..), ...)".
func (p *wktParser) ringList() ([][]Point, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var rings [][]Point
	for {
		r, err := p.coordList()
		if err != nil {
			return nil, err
		}
		rings = append(rings, r)
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return rings, nil
}

func (p *wktParser) geometry() (Geometry, error) {
	switch kw := p.word(); kw {
	case "POINT":
		pts, err := p.coordList()
		if err != nil {
			return Geometry{}, err
		}
		if len(pts) != 1 {
			return Geometry{}, fmt.Errorf("POINT with %d coordinates", len(pts))
		}
		return NewPoint(pts[0].X, pts[0].Y), nil
	case "LINESTRING":
		pts, err := p.coordList()
		if err != nil {
			return Geometry{}, err
		}
		return NewLineString(pts)
	case "POLYGON":
		rings, err := p.ringList()
		if err != nil {
			return Geometry{}, err
		}
		return NewPolygon(rings...)
	case "MULTIPOINT":
		if err := p.expect('('); err != nil {
			return Geometry{}, err
		}
		var elems []Geometry
		for {
			pts, err := p.coordList()
			if err != nil {
				return Geometry{}, err
			}
			for _, pt := range pts {
				elems = append(elems, NewPoint(pt.X, pt.Y))
			}
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return Geometry{}, err
		}
		return NewMulti(KindMultiPoint, elems)
	case "MULTILINESTRING":
		if err := p.expect('('); err != nil {
			return Geometry{}, err
		}
		var elems []Geometry
		for {
			pts, err := p.coordList()
			if err != nil {
				return Geometry{}, err
			}
			ls, err := NewLineString(pts)
			if err != nil {
				return Geometry{}, err
			}
			elems = append(elems, ls)
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return Geometry{}, err
		}
		return NewMulti(KindMultiLineString, elems)
	case "MULTIPOLYGON":
		if err := p.expect('('); err != nil {
			return Geometry{}, err
		}
		var elems []Geometry
		for {
			rings, err := p.ringList()
			if err != nil {
				return Geometry{}, err
			}
			pg, err := NewPolygon(rings...)
			if err != nil {
				return Geometry{}, err
			}
			elems = append(elems, pg)
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return Geometry{}, err
		}
		return NewMulti(KindMultiPolygon, elems)
	default:
		return Geometry{}, fmt.Errorf("unknown geometry type %q", kw)
	}
}
