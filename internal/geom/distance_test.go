package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestPointSegDist(t *testing.T) {
	a, b := Point{0, 0}, Point{4, 0}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{2, 3}, 3},  // projects onto the middle
		{Point{-3, 4}, 5}, // clamps to endpoint a
		{Point{7, 4}, 5},  // clamps to endpoint b
		{Point{2, 0}, 0},  // on the segment
		{Point{4, 0}, 0},  // at endpoint
		{Point{2, -2}, 2}, // below
	}
	for _, c := range cases {
		if got := pointSegDist(c.p, a, b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("pointSegDist(%v) = %g, want %g", c.p, got, c.want)
		}
	}
	// Degenerate zero-length segment.
	if got := pointSegDist(Point{3, 4}, Point{0, 0}, Point{0, 0}); math.Abs(got-5) > 1e-12 {
		t.Errorf("degenerate segment dist = %g, want 5", got)
	}
}

func TestSegSegDist(t *testing.T) {
	if got := segSegDist(Point{0, 0}, Point{1, 0}, Point{0, 2}, Point{1, 2}); math.Abs(got-2) > 1e-12 {
		t.Errorf("parallel dist = %g, want 2", got)
	}
	if got := segSegDist(Point{0, 0}, Point{2, 2}, Point{0, 2}, Point{2, 0}); got != 0 {
		t.Errorf("crossing dist = %g, want 0", got)
	}
	// Perpendicular, closest at an endpoint-interior pair.
	if got := segSegDist(Point{0, 0}, Point{4, 0}, Point{2, 1}, Point{2, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("perpendicular dist = %g, want 1", got)
	}
}

func TestDistancePolygons(t *testing.T) {
	a := mustRect(t, 0, 0, 1, 1)
	b := mustRect(t, 3, 0, 4, 1)
	if got := Distance(a, b); math.Abs(got-2) > 1e-12 {
		t.Errorf("Distance = %g, want 2", got)
	}
	c := mustRect(t, 0.5, 0.5, 2, 2)
	if got := Distance(a, c); got != 0 {
		t.Errorf("overlapping Distance = %g, want 0", got)
	}
	// Diagonal gap.
	d := mustRect(t, 4, 4, 5, 5)
	if got := Distance(a, d); math.Abs(got-3*math.Sqrt2) > 1e-12 {
		t.Errorf("diagonal Distance = %g, want %g", got, 3*math.Sqrt2)
	}
	// Contained: distance zero.
	e := mustRect(t, 0.2, 0.2, 0.4, 0.4)
	if got := Distance(a, e); got != 0 {
		t.Errorf("contained Distance = %g, want 0", got)
	}
}

func TestDistancePointAndLine(t *testing.T) {
	p := NewPoint(0, 5)
	poly := mustRect(t, 0, 0, 4, 4)
	if got := Distance(p, poly); math.Abs(got-1) > 1e-12 {
		t.Errorf("point-polygon Distance = %g, want 1", got)
	}
	inside := NewPoint(2, 2)
	if got := Distance(inside, poly); got != 0 {
		t.Errorf("interior point Distance = %g, want 0", got)
	}
	l := mustLine(t, Point{6, 0}, Point{6, 4})
	if got := Distance(l, poly); math.Abs(got-2) > 1e-12 {
		t.Errorf("line-polygon Distance = %g, want 2", got)
	}
	l2 := mustLine(t, Point{0, 6}, Point{4, 6})
	if got := Distance(l, l2); math.Abs(got-math.Hypot(2, 2)) > 1e-12 {
		t.Errorf("line-line Distance = %g, want %g", got, math.Hypot(2, 2))
	}
	if got := Distance(NewPoint(0, 0), NewPoint(3, 4)); math.Abs(got-5) > 1e-12 {
		t.Errorf("point-point Distance = %g, want 5", got)
	}
}

func TestWithinDistance(t *testing.T) {
	a := mustRect(t, 0, 0, 1, 1)
	b := mustRect(t, 3, 0, 4, 1)
	if WithinDistance(a, b, 1.9) {
		t.Errorf("WithinDistance(1.9) should be false at gap 2")
	}
	if !WithinDistance(a, b, 2.0) {
		t.Errorf("WithinDistance(2.0) should be true at gap 2")
	}
	if !WithinDistance(a, b, 100) {
		t.Errorf("WithinDistance(100) should be true")
	}
	if WithinDistance(a, b, -1) {
		t.Errorf("negative distance should be false")
	}
	// d = 0 degenerates to intersection.
	c := mustRect(t, 1, 0, 2, 1) // shares an edge with a
	if !WithinDistance(a, c, 0) {
		t.Errorf("edge-sharing rects should be within distance 0")
	}
}

// TestDistanceZeroIffIntersects is the central coupling invariant
// between the distance evaluator and the intersection predicate.
func TestDistanceZeroIffIntersects(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		a := randomRect(t, rng)
		b := randomRect(t, rng)
		d := Distance(a, b)
		inter := Intersects(a, b)
		if (d == 0) != inter {
			t.Fatalf("Distance = %g but Intersects = %v for %v vs %v", d, inter, a, b)
		}
		// The MBR distance must lower-bound the exact distance.
		if md := MBROf(a).Dist(MBROf(b)); md > d+1e-9 {
			t.Fatalf("MBR dist %g exceeds exact dist %g", md, d)
		}
	}
}

// TestWithinDistanceMonotone checks monotonicity in d on random pairs.
func TestWithinDistanceMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 200; i++ {
		a := randomRect(t, rng)
		b := randomRect(t, rng)
		d := Distance(a, b)
		if d == 0 {
			continue
		}
		if WithinDistance(a, b, d*0.99) {
			t.Fatalf("within 0.99d should be false (d=%g)", d)
		}
		if !WithinDistance(a, b, d*1.01) {
			t.Fatalf("within 1.01d should be true (d=%g)", d)
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 200; i++ {
		a := randomRect(t, rng)
		b := randomRect(t, rng)
		d1 := Distance(a, b)
		d2 := Distance(b, a)
		if math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("Distance asymmetric: %g vs %g", d1, d2)
		}
	}
}
