// Package geom implements the 2-D geometry model used throughout the
// library. It is the stand-in for Oracle Spatial's sdo_geometry object
// type: simple primitive elements (points, line strings, polygons with
// holes) and complex elements composed of primitives (multi-points,
// multi-line-strings, multi-polygons).
//
// The package provides exact predicate evaluation (the "secondary filter"
// of the paper's two-stage join), minimum bounding rectangles (the
// "primary filter"), distance computation for within-distance joins, and
// WKT-style text I/O for the example programs and dataset tools.
package geom

import (
	"errors"
	"fmt"
	"math"
)

// Kind identifies the shape class of a Geometry, mirroring the gtype
// attribute of sdo_geometry.
type Kind uint8

// Supported geometry kinds.
const (
	// KindNone is the zero Kind; it marks an invalid or empty geometry.
	KindNone Kind = iota
	// KindPoint is a single coordinate pair.
	KindPoint
	// KindLineString is a polyline with at least two vertices.
	KindLineString
	// KindPolygon is a simple polygon with an outer ring and zero or
	// more hole rings. Rings are stored closed (first vertex repeated
	// as the last vertex is NOT required; rings are implicitly closed).
	KindPolygon
	// KindMultiPoint is a collection of points.
	KindMultiPoint
	// KindMultiLineString is a collection of line strings.
	KindMultiLineString
	// KindMultiPolygon is a collection of polygons.
	KindMultiPolygon
)

// String returns the OGC-style name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "NONE"
	case KindPoint:
		return "POINT"
	case KindLineString:
		return "LINESTRING"
	case KindPolygon:
		return "POLYGON"
	case KindMultiPoint:
		return "MULTIPOINT"
	case KindMultiLineString:
		return "MULTILINESTRING"
	case KindMultiPolygon:
		return "MULTIPOLYGON"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// Point is a 2-D coordinate.
type Point struct {
	X, Y float64
}

// Sub returns the vector p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Add returns the vector p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dot returns the dot product p · q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the 2-D cross product (z-component) p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Geometry is the sdo_geometry equivalent. Exactly one of the payload
// fields is populated depending on Kind:
//
//   - KindPoint:            Pts holds one vertex.
//   - KindLineString:       Pts holds the polyline vertices (≥ 2).
//   - KindPolygon:          Rings[0] is the outer ring (≥ 3 vertices,
//     counter-clockwise); Rings[1:] are holes (clockwise by convention,
//     orientation is normalised by the constructors).
//   - KindMulti*:           Elems holds the primitive members.
//
// A Geometry value is immutable by convention: callers must not mutate
// the slices after construction, which lets indexes share geometry
// storage without copying.
type Geometry struct {
	Kind  Kind
	Pts   []Point
	Rings [][]Point
	Elems []Geometry
}

// Validation errors returned by the constructors and Validate.
var (
	ErrEmpty         = errors.New("geom: empty geometry")
	ErrTooFewPoints  = errors.New("geom: too few points")
	ErrDegenerate    = errors.New("geom: degenerate ring (zero area)")
	ErrBadKind       = errors.New("geom: invalid kind")
	ErrBadElement    = errors.New("geom: invalid collection element")
	ErrNotFinite     = errors.New("geom: coordinate is NaN or Inf")
	ErrRingNotClosed = errors.New("geom: ring not closed")
)

// NewPoint returns a point geometry.
func NewPoint(x, y float64) Geometry {
	return Geometry{Kind: KindPoint, Pts: []Point{{x, y}}}
}

// NewLineString returns a line-string geometry over the given vertices.
// It returns an error if fewer than two vertices are supplied or any
// coordinate is not finite.
func NewLineString(pts []Point) (Geometry, error) {
	if len(pts) < 2 {
		return Geometry{}, fmt.Errorf("linestring with %d points: %w", len(pts), ErrTooFewPoints)
	}
	if err := checkFinite(pts); err != nil {
		return Geometry{}, err
	}
	return Geometry{Kind: KindLineString, Pts: pts}, nil
}

// NewPolygon returns a polygon geometry. rings[0] is the outer ring and
// rings[1:] are holes. Rings may be supplied open or closed (an explicit
// trailing vertex equal to the first is dropped); each ring must have at
// least three distinct vertices and non-zero area. The outer ring is
// normalised to counter-clockwise orientation and holes to clockwise.
func NewPolygon(rings ...[]Point) (Geometry, error) {
	if len(rings) == 0 {
		return Geometry{}, ErrEmpty
	}
	norm := make([][]Point, len(rings))
	for i, r := range rings {
		r = dropClosingVertex(r)
		if len(r) < 3 {
			return Geometry{}, fmt.Errorf("ring %d with %d points: %w", i, len(r), ErrTooFewPoints)
		}
		if err := checkFinite(r); err != nil {
			return Geometry{}, err
		}
		a := signedArea(r)
		if a == 0 {
			return Geometry{}, fmt.Errorf("ring %d: %w", i, ErrDegenerate)
		}
		// Outer ring CCW (positive signed area), holes CW (negative).
		wantCCW := i == 0
		if (a > 0) != wantCCW {
			r = reversed(r)
		}
		norm[i] = r
	}
	return Geometry{Kind: KindPolygon, Rings: norm}, nil
}

// NewRect returns an axis-aligned rectangular polygon. It is the common
// shape for query windows and synthetic workloads.
func NewRect(minX, minY, maxX, maxY float64) (Geometry, error) {
	if !(minX < maxX && minY < maxY) {
		return Geometry{}, fmt.Errorf("rect [%g,%g]x[%g,%g]: %w", minX, maxX, minY, maxY, ErrDegenerate)
	}
	return NewPolygon([]Point{{minX, minY}, {maxX, minY}, {maxX, maxY}, {minX, maxY}})
}

// NewMulti returns a homogeneous multi-geometry of the given kind
// (KindMultiPoint, KindMultiLineString or KindMultiPolygon) over elems,
// each of which must be of the matching primitive kind.
func NewMulti(kind Kind, elems []Geometry) (Geometry, error) {
	var want Kind
	switch kind {
	case KindMultiPoint:
		want = KindPoint
	case KindMultiLineString:
		want = KindLineString
	case KindMultiPolygon:
		want = KindPolygon
	default:
		return Geometry{}, fmt.Errorf("kind %v: %w", kind, ErrBadKind)
	}
	if len(elems) == 0 {
		return Geometry{}, ErrEmpty
	}
	for i, e := range elems {
		if e.Kind != want {
			return Geometry{}, fmt.Errorf("element %d is %v, want %v: %w", i, e.Kind, want, ErrBadElement)
		}
	}
	return Geometry{Kind: kind, Elems: elems}, nil
}

// Validate checks the structural invariants of g and returns the first
// violation found, or nil if g is well formed.
func (g Geometry) Validate() error {
	switch g.Kind {
	case KindPoint:
		if len(g.Pts) != 1 {
			return fmt.Errorf("point with %d coordinates: %w", len(g.Pts), ErrTooFewPoints)
		}
		return checkFinite(g.Pts)
	case KindLineString:
		if len(g.Pts) < 2 {
			return fmt.Errorf("linestring with %d points: %w", len(g.Pts), ErrTooFewPoints)
		}
		return checkFinite(g.Pts)
	case KindPolygon:
		if len(g.Rings) == 0 {
			return ErrEmpty
		}
		for i, r := range g.Rings {
			if len(r) < 3 {
				return fmt.Errorf("ring %d: %w", i, ErrTooFewPoints)
			}
			if err := checkFinite(r); err != nil {
				return err
			}
			if signedArea(r) == 0 {
				return fmt.Errorf("ring %d: %w", i, ErrDegenerate)
			}
		}
		return nil
	case KindMultiPoint, KindMultiLineString, KindMultiPolygon:
		if len(g.Elems) == 0 {
			return ErrEmpty
		}
		for i, e := range g.Elems {
			if err := e.Validate(); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
		return nil
	default:
		return ErrBadKind
	}
}

// IsMulti reports whether g is a collection kind.
func (g Geometry) IsMulti() bool {
	switch g.Kind {
	case KindMultiPoint, KindMultiLineString, KindMultiPolygon:
		return true
	}
	return false
}

// primitives appends the primitive members of g to dst and returns it.
// For primitive kinds the result is g itself.
func (g Geometry) primitives(dst []Geometry) []Geometry {
	if g.IsMulti() {
		return append(dst, g.Elems...)
	}
	return append(dst, g)
}

// NumVertices returns the total vertex count across all parts of g. It
// is the complexity measure the paper uses when discussing "large and
// complex" geometries (tessellation cost scales with it).
func (g Geometry) NumVertices() int {
	switch g.Kind {
	case KindPoint, KindLineString:
		return len(g.Pts)
	case KindPolygon:
		n := 0
		for _, r := range g.Rings {
			n += len(r)
		}
		return n
	default:
		n := 0
		for _, e := range g.Elems {
			n += e.NumVertices()
		}
		return n
	}
}

// Area returns the area of g: ring areas minus hole areas for polygons,
// summed over multi-polygon members; zero for points and lines.
func (g Geometry) Area() float64 {
	switch g.Kind {
	case KindPolygon:
		a := math.Abs(signedArea(g.Rings[0]))
		for _, h := range g.Rings[1:] {
			a -= math.Abs(signedArea(h))
		}
		return a
	case KindMultiPolygon:
		a := 0.0
		for _, e := range g.Elems {
			a += e.Area()
		}
		return a
	default:
		return 0
	}
}

// Length returns the total boundary length of g: perimeter for polygons,
// polyline length for line strings, zero for points.
func (g Geometry) Length() float64 {
	switch g.Kind {
	case KindLineString:
		return pathLength(g.Pts, false)
	case KindPolygon:
		l := 0.0
		for _, r := range g.Rings {
			l += pathLength(r, true)
		}
		return l
	case KindMultiLineString, KindMultiPolygon:
		l := 0.0
		for _, e := range g.Elems {
			l += e.Length()
		}
		return l
	default:
		return 0
	}
}

// Centroid returns the vertex-average centroid of g. It is used by the
// R-tree STR bulk loader for tile ordering, where the exact mass centroid
// is unnecessary.
func (g Geometry) Centroid() Point {
	var sx, sy float64
	n := 0
	add := func(pts []Point) {
		for _, p := range pts {
			sx += p.X
			sy += p.Y
		}
		n += len(pts)
	}
	switch g.Kind {
	case KindPoint, KindLineString:
		add(g.Pts)
	case KindPolygon:
		add(g.Rings[0])
	default:
		for _, e := range g.Elems {
			c := e.Centroid()
			sx += c.X
			sy += c.Y
			n++
		}
	}
	if n == 0 {
		return Point{}
	}
	return Point{sx / float64(n), sy / float64(n)}
}

// Translate returns a copy of g shifted by (dx, dy).
func (g Geometry) Translate(dx, dy float64) Geometry {
	shift := func(pts []Point) []Point {
		out := make([]Point, len(pts))
		for i, p := range pts {
			out[i] = Point{p.X + dx, p.Y + dy}
		}
		return out
	}
	out := Geometry{Kind: g.Kind}
	switch g.Kind {
	case KindPoint, KindLineString:
		out.Pts = shift(g.Pts)
	case KindPolygon:
		out.Rings = make([][]Point, len(g.Rings))
		for i, r := range g.Rings {
			out.Rings[i] = shift(r)
		}
	default:
		out.Elems = make([]Geometry, len(g.Elems))
		for i, e := range g.Elems {
			out.Elems[i] = e.Translate(dx, dy)
		}
	}
	return out
}

// Equal reports whether g and h describe the same point set, up to ring
// rotation and multi-element order. It implements the EQUAL relate mask.
func (g Geometry) Equal(h Geometry) bool {
	if g.Kind != h.Kind {
		return false
	}
	switch g.Kind {
	case KindPoint:
		return g.Pts[0] == h.Pts[0]
	case KindLineString:
		return pathsEqual(g.Pts, h.Pts)
	case KindPolygon:
		if len(g.Rings) != len(h.Rings) {
			return false
		}
		if !ringsEqual(g.Rings[0], h.Rings[0]) {
			return false
		}
		// Holes may appear in any order.
		used := make([]bool, len(h.Rings))
		for _, r := range g.Rings[1:] {
			found := false
			for j := 1; j < len(h.Rings); j++ {
				if !used[j] && ringsEqual(r, h.Rings[j]) {
					used[j] = true
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	default:
		if len(g.Elems) != len(h.Elems) {
			return false
		}
		used := make([]bool, len(h.Elems))
		for _, e := range g.Elems {
			found := false
			for j, f := range h.Elems {
				if !used[j] && e.Equal(f) {
					used[j] = true
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
}

// String returns the WKT form of g.
func (g Geometry) String() string { return MarshalWKT(g) }

// --- small internal helpers ---

func checkFinite(pts []Point) error {
	for _, p := range pts {
		if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
			return ErrNotFinite
		}
	}
	return nil
}

// dropClosingVertex removes an explicit trailing vertex equal to the
// first one, so rings are stored implicitly closed.
func dropClosingVertex(r []Point) []Point {
	if len(r) >= 2 && r[0] == r[len(r)-1] {
		return r[:len(r)-1]
	}
	return r
}

// signedArea returns twice-signed-area/2 of an implicitly closed ring:
// positive for counter-clockwise orientation.
func signedArea(r []Point) float64 {
	a := 0.0
	for i := range r {
		j := (i + 1) % len(r)
		a += r[i].Cross(r[j])
	}
	return a / 2
}

func reversed(r []Point) []Point {
	out := make([]Point, len(r))
	for i, p := range r {
		out[len(r)-1-i] = p
	}
	return out
}

func pathLength(pts []Point, closed bool) float64 {
	l := 0.0
	for i := 1; i < len(pts); i++ {
		l += pts[i-1].Dist(pts[i])
	}
	if closed && len(pts) > 2 {
		l += pts[len(pts)-1].Dist(pts[0])
	}
	return l
}

// pathsEqual reports whether two open polylines are identical forwards
// or backwards.
func pathsEqual(a, b []Point) bool {
	if len(a) != len(b) {
		return false
	}
	fwd, bwd := true, true
	n := len(a)
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			fwd = false
		}
		if a[i] != b[n-1-i] {
			bwd = false
		}
		if !fwd && !bwd {
			return false
		}
	}
	return fwd || bwd
}

// ringsEqual reports whether two implicitly closed rings describe the
// same cycle, up to rotation and direction.
func ringsEqual(a, b []Point) bool {
	if len(a) != len(b) {
		return false
	}
	n := len(a)
	for off := 0; off < n; off++ {
		if a[0] != b[off] {
			continue
		}
		fwd, bwd := true, true
		for i := 0; i < n; i++ {
			if a[i] != b[(off+i)%n] {
				fwd = false
			}
			if a[i] != b[((off-i)%n+n)%n] {
				bwd = false
			}
			if !fwd && !bwd {
				break
			}
		}
		if fwd || bwd {
			return true
		}
	}
	return false
}
