package geom

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary geometry codec. Geometry columns are stored in heap-table rows
// in this format (the analogue of sdo_geometry's on-disk object image).
//
// Layout (little endian):
//
//	byte    kind
//	uvarint part count   (1 for point/line, #rings for polygon, #elems for multi)
//	parts...
//
// For point/linestring the single part is a coordinate list:
//
//	uvarint n, then n × (float64 x, float64 y)
//
// For polygons each part is a ring coordinate list. For multi kinds each
// part is a recursively encoded primitive.

// AppendBinary appends the binary image of g to dst and returns it.
func AppendBinary(dst []byte, g Geometry) []byte {
	dst = append(dst, byte(g.Kind))
	switch g.Kind {
	case KindPoint, KindLineString:
		dst = binary.AppendUvarint(dst, 1)
		dst = appendCoords(dst, g.Pts)
	case KindPolygon:
		dst = binary.AppendUvarint(dst, uint64(len(g.Rings)))
		for _, r := range g.Rings {
			dst = appendCoords(dst, r)
		}
	default:
		dst = binary.AppendUvarint(dst, uint64(len(g.Elems)))
		for _, e := range g.Elems {
			dst = AppendBinary(dst, e)
		}
	}
	return dst
}

// MarshalBinary returns the binary image of g.
func MarshalBinary(g Geometry) []byte {
	return AppendBinary(make([]byte, 0, BinarySize(g)), g)
}

// BinarySize returns len(AppendBinary(nil, g)) without encoding, so
// callers that need a length prefix can append in place instead of
// marshalling to a throwaway buffer.
func BinarySize(g Geometry) int {
	n := 1 // kind byte
	switch g.Kind {
	case KindPoint, KindLineString:
		n += uvarintLen(1) + coordsSize(g.Pts)
	case KindPolygon:
		n += uvarintLen(uint64(len(g.Rings)))
		for _, r := range g.Rings {
			n += coordsSize(r)
		}
	default:
		n += uvarintLen(uint64(len(g.Elems)))
		for _, e := range g.Elems {
			n += BinarySize(e)
		}
	}
	return n
}

func coordsSize(pts []Point) int {
	return uvarintLen(uint64(len(pts))) + 16*len(pts)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func appendCoords(dst []byte, pts []Point) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(pts)))
	var buf [16]byte
	for _, p := range pts {
		binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(p.X))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(p.Y))
		dst = append(dst, buf[:]...)
	}
	return dst
}

// UnmarshalBinary decodes a geometry previously produced by
// MarshalBinary/AppendBinary.
func UnmarshalBinary(b []byte) (Geometry, error) {
	g, rest, err := decodeBinary(b)
	if err != nil {
		return Geometry{}, err
	}
	if len(rest) != 0 {
		return Geometry{}, fmt.Errorf("geom: %d trailing bytes after geometry", len(rest))
	}
	return g, nil
}

// maxGeomDepth bounds the nesting of multi-geometry elements. Legal
// images are at most two levels deep (a multi kind over primitives);
// the slack keeps the decoder's recursion bounded on adversarial input
// without rejecting anything the encoder can produce.
const maxGeomDepth = 16

func decodeBinary(b []byte) (Geometry, []byte, error) {
	return decodeBinaryDepth(b, 0)
}

func decodeBinaryDepth(b []byte, depth int) (Geometry, []byte, error) {
	if depth > maxGeomDepth {
		return Geometry{}, nil, fmt.Errorf("geom: geometry nested deeper than %d", maxGeomDepth)
	}
	if len(b) < 1 {
		return Geometry{}, nil, fmt.Errorf("geom: truncated geometry header")
	}
	kind := Kind(b[0])
	b = b[1:]
	nParts, n := binary.Uvarint(b)
	if n <= 0 {
		return Geometry{}, nil, fmt.Errorf("geom: truncated part count")
	}
	b = b[n:]
	switch kind {
	case KindPoint, KindLineString:
		if nParts != 1 {
			return Geometry{}, nil, fmt.Errorf("geom: %v with %d parts", kind, nParts)
		}
		pts, rest, err := decodeCoords(b)
		if err != nil {
			return Geometry{}, nil, err
		}
		return Geometry{Kind: kind, Pts: pts}, rest, nil
	case KindPolygon:
		// Each ring costs at least one count byte, so nParts beyond
		// len(b) cannot decode; checking first keeps the pre-allocation
		// bounded by the input size rather than by a forged count.
		if nParts > uint64(len(b)) {
			return Geometry{}, nil, fmt.Errorf("geom: %d rings in %d bytes", nParts, len(b))
		}
		rings := make([][]Point, 0, nParts)
		for i := uint64(0); i < nParts; i++ {
			pts, rest, err := decodeCoords(b)
			if err != nil {
				return Geometry{}, nil, err
			}
			rings = append(rings, pts)
			b = rest
		}
		return Geometry{Kind: kind, Rings: rings}, b, nil
	case KindMultiPoint, KindMultiLineString, KindMultiPolygon:
		// Each element costs at least a kind byte and a count byte.
		if nParts > uint64(len(b))/2 {
			return Geometry{}, nil, fmt.Errorf("geom: %d elements in %d bytes", nParts, len(b))
		}
		elems := make([]Geometry, 0, nParts)
		for i := uint64(0); i < nParts; i++ {
			e, rest, err := decodeBinaryDepth(b, depth+1)
			if err != nil {
				return Geometry{}, nil, err
			}
			elems = append(elems, e)
			b = rest
		}
		return Geometry{Kind: kind, Elems: elems}, b, nil
	default:
		return Geometry{}, nil, fmt.Errorf("geom: bad kind byte %d", kind)
	}
}

func decodeCoords(b []byte) ([]Point, []byte, error) {
	nPts, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, fmt.Errorf("geom: truncated coordinate count")
	}
	b = b[n:]
	// Compare in uint64 space: a forged 64-bit count times 16 would
	// overflow int and slip past a `len(b) < need` check.
	if nPts > uint64(len(b))/16 {
		return nil, nil, fmt.Errorf("geom: truncated coordinates: need %d points, have %d bytes", nPts, len(b))
	}
	need := int(nPts) * 16
	pts := make([]Point, nPts)
	for i := range pts {
		pts[i].X = math.Float64frombits(binary.LittleEndian.Uint64(b[i*16:]))
		pts[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(b[i*16+8:]))
	}
	return pts, b[need:], nil
}
