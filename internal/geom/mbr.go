package geom

import (
	"fmt"
	"math"
)

// MBR is an axis-aligned minimum bounding rectangle. It is the index
// approximation stored in R-tree entries and compared by the primary
// filter of the two-stage join.
type MBR struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyMBR returns the identity element for Union: a rectangle that
// contains nothing and unions to its operand.
func EmptyMBR() MBR {
	return MBR{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// IsEmpty reports whether m is the empty rectangle.
func (m MBR) IsEmpty() bool { return m.MinX > m.MaxX || m.MinY > m.MaxY }

// Valid reports whether m is a non-empty rectangle with finite bounds.
func (m MBR) Valid() bool {
	return !m.IsEmpty() &&
		!math.IsInf(m.MinX, 0) && !math.IsInf(m.MinY, 0) &&
		!math.IsInf(m.MaxX, 0) && !math.IsInf(m.MaxY, 0) &&
		!math.IsNaN(m.MinX) && !math.IsNaN(m.MinY) &&
		!math.IsNaN(m.MaxX) && !math.IsNaN(m.MaxY)
}

// Width returns the X extent of m.
func (m MBR) Width() float64 { return m.MaxX - m.MinX }

// Height returns the Y extent of m.
func (m MBR) Height() float64 { return m.MaxY - m.MinY }

// Area returns the area of m (zero for empty rectangles).
func (m MBR) Area() float64 {
	if m.IsEmpty() {
		return 0
	}
	return m.Width() * m.Height()
}

// Margin returns the half-perimeter of m, used by node split heuristics.
func (m MBR) Margin() float64 {
	if m.IsEmpty() {
		return 0
	}
	return m.Width() + m.Height()
}

// Center returns the center point of m.
func (m MBR) Center() Point { return Point{(m.MinX + m.MaxX) / 2, (m.MinY + m.MaxY) / 2} }

// Union returns the smallest rectangle containing both m and o.
func (m MBR) Union(o MBR) MBR {
	if m.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return m
	}
	return MBR{
		MinX: math.Min(m.MinX, o.MinX),
		MinY: math.Min(m.MinY, o.MinY),
		MaxX: math.Max(m.MaxX, o.MaxX),
		MaxY: math.Max(m.MaxY, o.MaxY),
	}
}

// Intersect returns the overlap of m and o, which may be empty.
func (m MBR) Intersect(o MBR) MBR {
	return MBR{
		MinX: math.Max(m.MinX, o.MinX),
		MinY: math.Max(m.MinY, o.MinY),
		MaxX: math.Min(m.MaxX, o.MaxX),
		MaxY: math.Min(m.MaxY, o.MaxY),
	}
}

// Intersects reports whether m and o share at least one point
// (boundary contact counts).
func (m MBR) Intersects(o MBR) bool {
	if m.IsEmpty() || o.IsEmpty() {
		return false
	}
	return m.MinX <= o.MaxX && o.MinX <= m.MaxX &&
		m.MinY <= o.MaxY && o.MinY <= m.MaxY
}

// Contains reports whether m contains all of o (boundary contact allowed).
func (m MBR) Contains(o MBR) bool {
	if m.IsEmpty() || o.IsEmpty() {
		return false
	}
	return m.MinX <= o.MinX && o.MaxX <= m.MaxX &&
		m.MinY <= o.MinY && o.MaxY <= m.MaxY
}

// ContainsPoint reports whether p lies in m (boundary inclusive).
func (m MBR) ContainsPoint(p Point) bool {
	return m.MinX <= p.X && p.X <= m.MaxX && m.MinY <= p.Y && p.Y <= m.MaxY
}

// Enlargement returns the area growth of m needed to absorb o. It drives
// the R-tree ChooseSubtree descent.
func (m MBR) Enlargement(o MBR) float64 {
	return m.Union(o).Area() - m.Area()
}

// Expand returns m grown by d on every side. Within-distance joins use
// it to turn a distance predicate into an MBR-intersection primary
// filter: dist(A, B) ≤ d ⇒ expand(mbr(A), d) intersects mbr(B).
func (m MBR) Expand(d float64) MBR {
	if m.IsEmpty() {
		return m
	}
	return MBR{m.MinX - d, m.MinY - d, m.MaxX + d, m.MaxY + d}
}

// Dist returns the minimum distance between the rectangles m and o
// (zero if they intersect). It lower-bounds the exact geometry distance,
// which makes it a sound primary filter for within-distance predicates.
func (m MBR) Dist(o MBR) float64 {
	if m.IsEmpty() || o.IsEmpty() {
		return math.Inf(1)
	}
	dx := math.Max(0, math.Max(o.MinX-m.MaxX, m.MinX-o.MaxX))
	dy := math.Max(0, math.Max(o.MinY-m.MaxY, m.MinY-o.MaxY))
	return math.Hypot(dx, dy)
}

// String formats m for logs and test failures.
func (m MBR) String() string {
	return fmt.Sprintf("MBR(%g,%g; %g,%g)", m.MinX, m.MinY, m.MaxX, m.MaxY)
}

// MBROf returns the minimum bounding rectangle of g, or the empty
// rectangle for an invalid geometry.
func MBROf(g Geometry) MBR {
	m := EmptyMBR()
	grow := func(pts []Point) {
		for _, p := range pts {
			if p.X < m.MinX {
				m.MinX = p.X
			}
			if p.X > m.MaxX {
				m.MaxX = p.X
			}
			if p.Y < m.MinY {
				m.MinY = p.Y
			}
			if p.Y > m.MaxY {
				m.MaxY = p.Y
			}
		}
	}
	switch g.Kind {
	case KindPoint, KindLineString:
		grow(g.Pts)
	case KindPolygon:
		// Holes lie inside the outer ring, so the outer ring determines
		// the MBR.
		if len(g.Rings) > 0 {
			grow(g.Rings[0])
		}
	default:
		for _, e := range g.Elems {
			m = m.Union(MBROf(e))
		}
	}
	return m
}
