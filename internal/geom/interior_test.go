package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestInteriorRectRectangle(t *testing.T) {
	g := mustRect(t, 10, 10, 30, 20)
	r := InteriorRect(g, 0)
	if r.IsEmpty() {
		t.Fatalf("no interior rect for a rectangle")
	}
	// Must be inside and should recover most of the area.
	if !rectCoveredByPolygon(r, g) {
		t.Fatalf("interior rect %v escapes the polygon", r)
	}
	if r.Area() < 0.5*g.Area() {
		t.Errorf("interior rect area %g too small for a rectangle of area %g", r.Area(), g.Area())
	}
}

func TestInteriorRectConvex(t *testing.T) {
	// A fat hexagon.
	g, err := NewPolygon([]Point{{10, 0}, {20, 5}, {20, 15}, {10, 20}, {0, 15}, {0, 5}})
	if err != nil {
		t.Fatal(err)
	}
	r := InteriorRect(g, 4)
	if r.IsEmpty() {
		t.Fatalf("no interior rect for a fat hexagon")
	}
	if !rectCoveredByPolygon(r, g) {
		t.Fatalf("interior rect escapes")
	}
	if r.Area() < 0.2*g.Area() {
		t.Errorf("interior area %g very small vs polygon %g", r.Area(), g.Area())
	}
}

func TestInteriorRectWithHole(t *testing.T) {
	outer := []Point{{0, 0}, {20, 0}, {20, 20}, {0, 20}}
	hole := []Point{{8, 8}, {12, 8}, {12, 12}, {8, 12}}
	g := mustPolygon(t, outer, hole)
	r := InteriorRect(g, 6)
	if r.IsEmpty() {
		t.Fatalf("no interior rect for a donut")
	}
	if !rectCoveredByPolygon(r, g) {
		t.Fatalf("interior rect %v overlaps the hole or escapes", r)
	}
	// It must not intersect the hole's open interior.
	holeRect := MBR{8, 8, 12, 12}
	inter := r.Intersect(holeRect)
	if !inter.IsEmpty() && inter.Width() > eps && inter.Height() > eps {
		t.Errorf("interior rect %v pokes into the hole", r)
	}
}

func TestInteriorRectNonAreal(t *testing.T) {
	if r := InteriorRect(NewPoint(1, 2), 0); !r.IsEmpty() {
		t.Errorf("point interior = %v", r)
	}
	l := mustLine(t, Point{0, 0}, Point{5, 5})
	if r := InteriorRect(l, 0); !r.IsEmpty() {
		t.Errorf("line interior = %v", r)
	}
}

func TestInteriorRectMultiPolygon(t *testing.T) {
	small := mustRect(t, 0, 0, 2, 2)
	big := mustRect(t, 10, 10, 30, 30)
	mp, err := NewMulti(KindMultiPolygon, []Geometry{small, big})
	if err != nil {
		t.Fatal(err)
	}
	r := InteriorRect(mp, 3)
	if r.IsEmpty() {
		t.Fatalf("no interior rect for multipolygon")
	}
	// The winner must be inside the big member.
	if !(MBR{10, 10, 30, 30}).Contains(r) {
		t.Errorf("interior rect %v not in the larger member", r)
	}
}

// Property: the interior rectangle is always covered by the polygon and
// contained in its MBR; any point in it is non-exterior.
func TestInteriorRectSoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 40; trial++ {
		// Random convex-ish blob: radial polygon.
		cx := rng.Float64()*800 + 100
		cy := rng.Float64()*800 + 100
		n := 8 + rng.Intn(20)
		pts := make([]Point, n)
		base := 20 + rng.Float64()*40
		for i := range pts {
			th := 2 * math.Pi * float64(i) / float64(n)
			rad := base * (0.7 + 0.3*rng.Float64())
			pts[i] = Point{cx + rad*math.Cos(th), cy + rad*math.Sin(th)}
		}
		g, err := NewPolygon(pts)
		if err != nil {
			continue
		}
		r := InteriorRect(g, 3)
		if r.IsEmpty() {
			continue // thin shapes may legitimately yield nothing
		}
		if !MBROf(g).Contains(r) {
			t.Fatalf("trial %d: interior %v outside MBR %v", trial, r, MBROf(g))
		}
		if !rectCoveredByPolygon(r, g) {
			t.Fatalf("trial %d: interior rect not covered", trial)
		}
		// Sample points.
		for k := 0; k < 10; k++ {
			p := Point{
				X: r.MinX + rng.Float64()*r.Width(),
				Y: r.MinY + rng.Float64()*r.Height(),
			}
			if pointInPolygon(p, g) < 0 {
				t.Fatalf("trial %d: interior point %v outside polygon", trial, p)
			}
		}
	}
}
