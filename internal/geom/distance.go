package geom

import "math"

// Distance returns the minimum Euclidean distance between g and h
// (zero if they intersect). It is the exact evaluator behind
// within-distance joins (the paper's Table 1 distance sweep).
func Distance(g, h Geometry) float64 {
	if Intersects(g, h) {
		return 0
	}
	best := math.Inf(1)
	for _, a := range g.primitives(nil) {
		for _, b := range h.primitives(nil) {
			if d := primDistance(a, b); d < best {
				best = d
			}
		}
	}
	return best
}

// WithinDistance reports whether the minimum distance between g and h is
// at most d. A distance of 0 is equivalent to ANYINTERACT, matching the
// paper's note that intersection is "distance of 0".
func WithinDistance(g, h Geometry, d float64) bool {
	if d < 0 {
		return false
	}
	// Cheap sound rejection before the exact test.
	if MBROf(g).Dist(MBROf(h)) > d {
		return false
	}
	return Distance(g, h) <= d
}

// primDistance computes the distance between two non-intersecting
// primitives. (Intersection is ruled out by the caller; for safety the
// polygon cases still detect containment and return zero.)
func primDistance(a, b Geometry) float64 {
	if a.Kind > b.Kind {
		a, b = b, a
	}
	switch {
	case a.Kind == KindPoint && b.Kind == KindPoint:
		return a.Pts[0].Dist(b.Pts[0])
	case a.Kind == KindPoint && b.Kind == KindLineString:
		return pointPathDist(a.Pts[0], b.Pts)
	case a.Kind == KindPoint && b.Kind == KindPolygon:
		if pointInPolygon(a.Pts[0], b) >= 0 {
			return 0
		}
		return pointRingsDist(a.Pts[0], b.Rings)
	case a.Kind == KindLineString && b.Kind == KindLineString:
		return pathPathDist(a.Pts, b.Pts)
	case a.Kind == KindLineString && b.Kind == KindPolygon:
		if linePolyIntersects(a, b) {
			return 0
		}
		best := math.Inf(1)
		for _, r := range b.Rings {
			if d := pathRingDist(a.Pts, r); d < best {
				best = d
			}
		}
		return best
	default: // polygon-polygon
		if polyPolyIntersects(a, b) {
			return 0
		}
		best := math.Inf(1)
		for _, r := range a.Rings {
			for _, s := range b.Rings {
				if d := ringRingDist(r, s); d < best {
					best = d
				}
			}
		}
		return best
	}
}

func pointPathDist(p Point, pts []Point) float64 {
	best := math.Inf(1)
	pathEdges(pts, func(a, b Point) bool {
		if d := pointSegDist(p, a, b); d < best {
			best = d
		}
		return true
	})
	return best
}

func pointRingsDist(p Point, rings [][]Point) float64 {
	best := math.Inf(1)
	for _, r := range rings {
		ringEdges(r, func(a, b Point) bool {
			if d := pointSegDist(p, a, b); d < best {
				best = d
			}
			return true
		})
	}
	return best
}

func pathPathDist(p, q []Point) float64 {
	best := math.Inf(1)
	pathEdges(p, func(a, b Point) bool {
		pathEdges(q, func(c, d Point) bool {
			if dd := segSegDist(a, b, c, d); dd < best {
				best = dd
			}
			return true
		})
		return best > 0
	})
	return best
}

func pathRingDist(pts []Point, r []Point) float64 {
	best := math.Inf(1)
	pathEdges(pts, func(a, b Point) bool {
		ringEdges(r, func(c, d Point) bool {
			if dd := segSegDist(a, b, c, d); dd < best {
				best = dd
			}
			return true
		})
		return best > 0
	})
	return best
}

func ringRingDist(r, s []Point) float64 {
	best := math.Inf(1)
	ringEdges(r, func(a, b Point) bool {
		ringEdges(s, func(c, d Point) bool {
			if dd := segSegDist(a, b, c, d); dd < best {
				best = dd
			}
			return true
		})
		return best > 0
	})
	return best
}
