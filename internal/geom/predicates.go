package geom

// This file implements the exact intersection test between arbitrary
// geometry pairs — the heart of the "secondary filter" that the paper's
// two-stage join applies to each candidate pair after the index-level
// MBR (primary) filter.

// Intersects reports whether g and h share at least one point
// (Oracle's ANYINTERACT relationship). Both geometries must be valid.
func Intersects(g, h Geometry) bool {
	if !MBROf(g).Intersects(MBROf(h)) {
		return false
	}
	gs := g.primitives(nil)
	hs := h.primitives(nil)
	for _, a := range gs {
		for _, b := range hs {
			if primIntersects(a, b) {
				return true
			}
		}
	}
	return false
}

// primIntersects dispatches the primitive × primitive intersection test.
func primIntersects(a, b Geometry) bool {
	// Normalise so a.Kind <= b.Kind in the dispatch order
	// point < line < polygon.
	if a.Kind > b.Kind {
		a, b = b, a
	}
	switch {
	case a.Kind == KindPoint && b.Kind == KindPoint:
		return a.Pts[0].Dist(b.Pts[0]) <= eps
	case a.Kind == KindPoint && b.Kind == KindLineString:
		return pointOnPath(a.Pts[0], b.Pts)
	case a.Kind == KindPoint && b.Kind == KindPolygon:
		return pointInPolygon(a.Pts[0], b) >= 0
	case a.Kind == KindLineString && b.Kind == KindLineString:
		return pathsIntersect(a.Pts, b.Pts)
	case a.Kind == KindLineString && b.Kind == KindPolygon:
		return linePolyIntersects(a, b)
	case a.Kind == KindPolygon && b.Kind == KindPolygon:
		return polyPolyIntersects(a, b)
	default:
		return false
	}
}

// pointOnPath reports whether p lies on the polyline pts.
func pointOnPath(p Point, pts []Point) bool {
	found := false
	pathEdges(pts, func(a, b Point) bool {
		if orient(a, b, p) == 0 && onSegment(a, b, p) {
			found = true
			return false
		}
		return true
	})
	return found
}

// pathsIntersect reports whether two open polylines share a point.
func pathsIntersect(p, q []Point) bool {
	found := false
	pathEdges(p, func(a, b Point) bool {
		pathEdges(q, func(c, d Point) bool {
			if segIntersects(a, b, c, d) {
				found = true
				return false
			}
			return true
		})
		return !found
	})
	return found
}

// pathRingIntersect reports whether the open polyline pts intersects the
// implicitly closed ring r.
func pathRingIntersect(pts []Point, r []Point) bool {
	found := false
	pathEdges(pts, func(a, b Point) bool {
		ringEdges(r, func(c, d Point) bool {
			if segIntersects(a, b, c, d) {
				found = true
				return false
			}
			return true
		})
		return !found
	})
	return found
}

// ringsIntersect reports whether two implicitly closed rings share a
// boundary point.
func ringsIntersect(r, s []Point) bool {
	found := false
	ringEdges(r, func(a, b Point) bool {
		ringEdges(s, func(c, d Point) bool {
			if segIntersects(a, b, c, d) {
				found = true
				return false
			}
			return true
		})
		return !found
	})
	return found
}

// linePolyIntersects reports whether line string l shares a point with
// polygon p (boundary or interior).
func linePolyIntersects(l, p Geometry) bool {
	// Any vertex of the line inside/on the polygon?
	for _, v := range l.Pts {
		if pointInPolygon(v, p) >= 0 {
			return true
		}
	}
	// Any edge crossing any ring? (Covers the case where the line passes
	// through the polygon without a vertex inside, and the case where it
	// only clips a hole boundary.)
	for _, r := range p.Rings {
		if pathRingIntersect(l.Pts, r) {
			return true
		}
	}
	return false
}

// polyPolyIntersects reports whether two polygons share a point.
func polyPolyIntersects(p, q Geometry) bool {
	// Boundary-boundary contact.
	for _, r := range p.Rings {
		for _, s := range q.Rings {
			if ringsIntersect(r, s) {
				return true
			}
		}
	}
	// No boundary contact: either disjoint or one strictly inside the
	// other. A single vertex test per direction decides it (holes are
	// handled by pointInPolygon).
	if pointInPolygon(p.Rings[0][0], q) > 0 {
		return true
	}
	if pointInPolygon(q.Rings[0][0], p) > 0 {
		return true
	}
	return false
}

// boundariesIntersect reports whether the boundaries of g and h share a
// point. For points the boundary is the point itself; for lines the
// polyline; for polygons all rings.
func boundariesIntersect(g, h Geometry) bool {
	gs := g.primitives(nil)
	hs := h.primitives(nil)
	for _, a := range gs {
		for _, b := range hs {
			if primBoundariesIntersect(a, b) {
				return true
			}
		}
	}
	return false
}

func primBoundariesIntersect(a, b Geometry) bool {
	if a.Kind > b.Kind {
		a, b = b, a
	}
	switch {
	case a.Kind == KindPoint && b.Kind == KindPoint:
		return a.Pts[0].Dist(b.Pts[0]) <= eps
	case a.Kind == KindPoint && b.Kind == KindLineString:
		return pointOnPath(a.Pts[0], b.Pts)
	case a.Kind == KindPoint && b.Kind == KindPolygon:
		return pointInPolygon(a.Pts[0], b) == 0
	case a.Kind == KindLineString && b.Kind == KindLineString:
		return pathsIntersect(a.Pts, b.Pts)
	case a.Kind == KindLineString && b.Kind == KindPolygon:
		for _, r := range b.Rings {
			if pathRingIntersect(a.Pts, r) {
				return true
			}
		}
		return false
	default: // polygon-polygon
		for _, r := range a.Rings {
			for _, s := range b.Rings {
				if ringsIntersect(r, s) {
					return true
				}
			}
		}
		return false
	}
}

// interiorsIntersect reports whether the interiors of g and h share a
// point. For a point the interior is the point; for a line the polyline
// minus its two endpoints; for a polygon the open region.
func interiorsIntersect(g, h Geometry) bool {
	gs := g.primitives(nil)
	hs := h.primitives(nil)
	for _, a := range gs {
		for _, b := range hs {
			if primInteriorsIntersect(a, b) {
				return true
			}
		}
	}
	return false
}

func primInteriorsIntersect(a, b Geometry) bool {
	// Interior intersection is symmetric, so normalising operand order
	// is safe.
	if a.Kind > b.Kind {
		a, b = b, a
	}
	switch {
	case a.Kind == KindPoint && b.Kind == KindPoint:
		return a.Pts[0].Dist(b.Pts[0]) <= eps
	case a.Kind == KindPoint && b.Kind == KindLineString:
		return pointOnPathInterior(a.Pts[0], b.Pts)
	case a.Kind == KindPoint && b.Kind == KindPolygon:
		return pointInPolygon(a.Pts[0], b) > 0
	case a.Kind == KindLineString && b.Kind == KindLineString:
		return lineInteriorsIntersect(a.Pts, b.Pts)
	case a.Kind == KindLineString && b.Kind == KindPolygon:
		return lineInteriorInPolygonInterior(a, b)
	default:
		return polyInteriorsIntersect(a, b)
	}
}

// pointOnPathInterior reports whether p lies on pts excluding the two
// polyline endpoints.
func pointOnPathInterior(p Point, pts []Point) bool {
	if !pointOnPath(p, pts) {
		return false
	}
	return p.Dist(pts[0]) > eps && p.Dist(pts[len(pts)-1]) > eps
}

// lineInteriorsIntersect reports whether two polylines intersect at a
// point interior to both (any shared point that is not exclusively an
// endpoint-endpoint touch).
func lineInteriorsIntersect(p, q []Point) bool {
	if !pathsIntersect(p, q) {
		return false
	}
	// A proper segment crossing is always interior-interior.
	cross := false
	pathEdges(p, func(a, b Point) bool {
		pathEdges(q, func(c, d Point) bool {
			if segProperCross(a, b, c, d) {
				cross = true
				return false
			}
			return true
		})
		return !cross
	})
	if cross {
		return true
	}
	// Otherwise all contacts are touches/overlaps; check whether some
	// contact point is interior to both polylines. Sample candidate
	// points: all vertices of each line lying on the other.
	for _, v := range p {
		if pointOnPathInterior(v, q) && pointOnPathInterior(v, p) {
			return true
		}
	}
	for _, v := range q {
		if pointOnPathInterior(v, p) && pointOnPathInterior(v, q) {
			return true
		}
	}
	return false
}

// lineInteriorInPolygonInterior reports whether the interior of line l
// reaches the interior of polygon p.
func lineInteriorInPolygonInterior(l, p Geometry) bool {
	// Any vertex strictly inside?
	for _, v := range l.Pts {
		if pointInPolygon(v, p) > 0 {
			return true
		}
	}
	// Any edge properly crossing a ring means the line passes from
	// outside to inside (or between interior regions).
	crossed := false
	pathEdges(l.Pts, func(a, b Point) bool {
		for _, r := range p.Rings {
			ringEdges(r, func(c, d Point) bool {
				if segProperCross(a, b, c, d) {
					crossed = true
					return false
				}
				return true
			})
			if crossed {
				return false
			}
		}
		// Edge midpoints catch the case of a segment whose endpoints
		// both lie on the boundary but whose middle runs inside.
		mid := Point{(a.X + b.X) / 2, (a.Y + b.Y) / 2}
		if pointInPolygon(mid, p) > 0 {
			crossed = true
			return false
		}
		return true
	})
	return crossed
}

// polyInteriorsIntersect reports whether the open interiors of two
// polygons overlap.
func polyInteriorsIntersect(p, q Geometry) bool {
	// A proper edge crossing forces interior overlap.
	for _, r := range p.Rings {
		for _, s := range q.Rings {
			proper := false
			ringEdges(r, func(a, b Point) bool {
				ringEdges(s, func(c, d Point) bool {
					if segProperCross(a, b, c, d) {
						proper = true
						return false
					}
					return true
				})
				return !proper
			})
			if proper {
				return true
			}
		}
	}
	// No proper crossings: interiors overlap iff some vertex of one is
	// strictly inside the other, or (pure boundary-sharing cases) some
	// boundary edge midpoint of one is strictly inside the other.
	for _, r := range p.Rings {
		for _, v := range r {
			if pointInPolygon(v, q) > 0 && pointInPolygon(v, p) >= 0 {
				return true
			}
		}
	}
	for _, s := range q.Rings {
		for _, v := range s {
			if pointInPolygon(v, p) > 0 && pointInPolygon(v, q) >= 0 {
				return true
			}
		}
	}
	// Edge midpoints: handles equal polygons and containment with all
	// vertices on the boundary.
	mids := func(g Geometry) []Point {
		var out []Point
		for _, r := range g.Rings {
			ringEdges(r, func(a, b Point) bool {
				out = append(out, Point{(a.X + b.X) / 2, (a.Y + b.Y) / 2})
				return true
			})
		}
		return out
	}
	for _, m := range mids(p) {
		if pointInPolygon(m, q) > 0 {
			return true
		}
	}
	for _, m := range mids(q) {
		if pointInPolygon(m, p) > 0 {
			return true
		}
	}
	// Final fallback: centroid of the MBR intersection.
	c := MBROf(p).Intersect(MBROf(q)).Center()
	return pointInPolygon(c, p) > 0 && pointInPolygon(c, q) > 0
}

// coveredBy reports whether every point of g lies in (interior or
// boundary of) h. It backs the COVEREDBY/COVERS/INSIDE/CONTAINS masks.
func coveredBy(g, h Geometry) bool {
	if !MBROf(h).Contains(MBROf(g)) {
		return false
	}
	hs := h.primitives(nil)
	for _, a := range g.primitives(nil) {
		if !primCoveredByAny(a, hs) {
			return false
		}
	}
	return true
}

// primCoveredByAny reports whether primitive a is covered by the union
// of the primitives hs. For simplicity (and matching how the synthetic
// datasets are built) a must be covered by a single member; geometries
// spanning multiple members of a multi-polygon are reported not covered,
// which keeps the predicate conservative (sound for CONTAINS pruning in
// joins, never claiming coverage that does not hold).
func primCoveredByAny(a Geometry, hs []Geometry) bool {
	for _, b := range hs {
		if primCoveredBy(a, b) {
			return true
		}
	}
	return false
}

func primCoveredBy(a, b Geometry) bool {
	switch {
	case a.Kind == KindPoint:
		switch b.Kind {
		case KindPoint:
			return a.Pts[0].Dist(b.Pts[0]) <= eps
		case KindLineString:
			return pointOnPath(a.Pts[0], b.Pts)
		default:
			return pointInPolygon(a.Pts[0], b) >= 0
		}
	case a.Kind == KindLineString:
		switch b.Kind {
		case KindPolygon:
			return lineCoveredByPolygon(a, b)
		case KindLineString:
			return lineCoveredByLine(a.Pts, b.Pts)
		default:
			return false
		}
	case a.Kind == KindPolygon:
		if b.Kind != KindPolygon {
			return false
		}
		return polyCoveredByPoly(a, b)
	}
	return false
}

// lineCoveredByPolygon reports whether every point of line l lies in
// polygon p (closed region).
func lineCoveredByPolygon(l, p Geometry) bool {
	for _, v := range l.Pts {
		if pointInPolygon(v, p) < 0 {
			return false
		}
	}
	// No edge may properly cross a ring (that would exit the region),
	// and edge midpoints must stay in the closed region (catches edges
	// hopping across a concavity or a hole).
	ok := true
	pathEdges(l.Pts, func(a, b Point) bool {
		for _, r := range p.Rings {
			crossed := false
			ringEdges(r, func(c, d Point) bool {
				if segProperCross(a, b, c, d) {
					crossed = true
					return false
				}
				return true
			})
			if crossed {
				ok = false
				return false
			}
		}
		mid := Point{(a.X + b.X) / 2, (a.Y + b.Y) / 2}
		if pointInPolygon(mid, p) < 0 {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// lineCoveredByLine reports whether polyline a is a sub-path of
// polyline b: every vertex of a on b and every edge midpoint of a on b.
func lineCoveredByLine(a, b []Point) bool {
	for _, v := range a {
		if !pointOnPath(v, b) {
			return false
		}
	}
	ok := true
	pathEdges(a, func(p, q Point) bool {
		mid := Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2}
		if !pointOnPath(mid, b) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// polyCoveredByPoly reports whether polygon a lies entirely within the
// closed region of polygon b.
func polyCoveredByPoly(a, b Geometry) bool {
	// Every vertex of a inside/on b.
	for _, r := range a.Rings {
		for _, v := range r {
			if pointInPolygon(v, b) < 0 {
				return false
			}
		}
	}
	// No proper boundary crossing.
	for _, r := range a.Rings {
		for _, s := range b.Rings {
			proper := false
			ringEdges(r, func(p, q Point) bool {
				ringEdges(s, func(c, d Point) bool {
					if segProperCross(p, q, c, d) {
						proper = true
						return false
					}
					return true
				})
				return !proper
			})
			if proper {
				return false
			}
		}
	}
	// Edge midpoints of a must remain in b (catches concavities).
	for _, r := range a.Rings {
		out := false
		ringEdges(r, func(p, q Point) bool {
			mid := Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2}
			if pointInPolygon(mid, b) < 0 {
				out = true
				return false
			}
			return true
		})
		if out {
			return false
		}
	}
	// No hole of b may poke into the interior of a: if a hole boundary
	// of b lies strictly inside a, part of a would be excluded from b.
	for _, h := range b.Rings[1:] {
		if pointInPolygon(h[0], a) > 0 {
			// The hole starts inside a. It excludes area from b, so a is
			// not fully covered (unless a has a matching hole, which the
			// midpoint test above would usually have caught; be
			// conservative here).
			hp := Geometry{Kind: KindPolygon, Rings: [][]Point{h}}
			if !coveredByAnyHole(hp, a) {
				return false
			}
		}
	}
	return true
}

// coveredByAnyHole reports whether polygon hole hp is covered by one of
// a's own holes, meaning the excluded region was already excluded.
func coveredByAnyHole(hp, a Geometry) bool {
	for _, h := range a.Rings[1:] {
		ah := Geometry{Kind: KindPolygon, Rings: [][]Point{h}}
		if polyCoveredByPoly(hp, ah) {
			return true
		}
	}
	return false
}
