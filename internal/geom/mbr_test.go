package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmptyMBR(t *testing.T) {
	e := EmptyMBR()
	if !e.IsEmpty() {
		t.Fatalf("EmptyMBR not empty")
	}
	if e.Area() != 0 || e.Margin() != 0 {
		t.Errorf("empty MBR area/margin nonzero")
	}
	m := MBR{0, 0, 1, 1}
	if e.Union(m) != m || m.Union(e) != m {
		t.Errorf("empty MBR is not the Union identity")
	}
	if e.Intersects(m) || m.Intersects(e) {
		t.Errorf("empty MBR intersects something")
	}
	if e.Contains(m) || m.Contains(e) {
		t.Errorf("Contains with empty operand should be false")
	}
}

func TestMBRBasics(t *testing.T) {
	m := MBR{0, 0, 4, 2}
	if m.Width() != 4 || m.Height() != 2 || m.Area() != 8 || m.Margin() != 6 {
		t.Errorf("basic accessors wrong: %+v", m)
	}
	if c := m.Center(); c != (Point{2, 1}) {
		t.Errorf("Center = %v, want (2,1)", c)
	}
	if !m.Valid() {
		t.Errorf("valid MBR reported invalid")
	}
	if (MBR{MinX: math.NaN(), MaxX: 1, MaxY: 1}).Valid() {
		t.Errorf("NaN MBR reported valid")
	}
}

func TestMBRIntersects(t *testing.T) {
	a := MBR{0, 0, 2, 2}
	cases := []struct {
		b    MBR
		want bool
	}{
		{MBR{1, 1, 3, 3}, true},
		{MBR{2, 2, 3, 3}, true}, // corner touch counts
		{MBR{3, 3, 4, 4}, false},
		{MBR{0.5, 0.5, 1.5, 1.5}, true}, // contained
		{MBR{-1, 0, 0, 2}, true},        // edge touch
		{MBR{-2, -2, -1, -1}, false},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v, %v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects not symmetric for %v", c.b)
		}
	}
}

func TestMBRContains(t *testing.T) {
	a := MBR{0, 0, 10, 10}
	if !a.Contains(MBR{1, 1, 2, 2}) || !a.Contains(a) {
		t.Errorf("Contains false negatives")
	}
	if a.Contains(MBR{5, 5, 11, 6}) {
		t.Errorf("Contains false positive")
	}
	if !a.ContainsPoint(Point{0, 0}) || a.ContainsPoint(Point{-1, 5}) {
		t.Errorf("ContainsPoint wrong")
	}
}

func TestMBRExpandAndDist(t *testing.T) {
	a := MBR{0, 0, 1, 1}
	b := MBR{4, 0, 5, 1}
	if got := a.Dist(b); math.Abs(got-3) > 1e-12 {
		t.Errorf("Dist = %g, want 3", got)
	}
	if got := a.Dist(MBR{0.5, 0.5, 2, 2}); got != 0 {
		t.Errorf("overlapping Dist = %g, want 0", got)
	}
	// Diagonal separation.
	c := MBR{4, 4, 5, 5}
	if got := a.Dist(c); math.Abs(got-3*math.Sqrt2) > 1e-12 {
		t.Errorf("diagonal Dist = %g, want %g", got, 3*math.Sqrt2)
	}
	if !a.Expand(3).Intersects(b) {
		t.Errorf("Expand(3) should reach b")
	}
	if a.Expand(2.9).Intersects(b) {
		t.Errorf("Expand(2.9) should not reach b")
	}
}

func TestMBREnlargement(t *testing.T) {
	a := MBR{0, 0, 2, 2}
	if got := a.Enlargement(MBR{1, 1, 2, 2}); got != 0 {
		t.Errorf("contained Enlargement = %g, want 0", got)
	}
	if got := a.Enlargement(MBR{0, 0, 4, 2}); math.Abs(got-4) > 1e-12 {
		t.Errorf("Enlargement = %g, want 4", got)
	}
}

func TestMBROf(t *testing.T) {
	outer := []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	hole := []Point{{2, 2}, {4, 2}, {4, 4}, {2, 4}}
	g := mustPolygon(t, outer, hole)
	if m := MBROf(g); m != (MBR{0, 0, 10, 10}) {
		t.Errorf("polygon MBR = %v", m)
	}
	mp, _ := NewMulti(KindMultiPoint, []Geometry{NewPoint(-1, 5), NewPoint(3, -2)})
	if m := MBROf(mp); m != (MBR{-1, -2, 3, 5}) {
		t.Errorf("multipoint MBR = %v", m)
	}
	if m := MBROf(NewPoint(7, 8)); m != (MBR{7, 8, 7, 8}) {
		t.Errorf("point MBR = %v", m)
	}
}

// --- property tests ---

// boundedMBR maps four arbitrary floats to a well-formed MBR in a
// moderate coordinate range.
func boundedMBR(a, b, c, d float64) MBR {
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1000)
	}
	x1, x2 := clamp(a), clamp(b)
	y1, y2 := clamp(c), clamp(d)
	return MBR{math.Min(x1, x2), math.Min(y1, y2), math.Max(x1, x2) + 1, math.Max(y1, y2) + 1}
}

func TestMBRUnionContainsOperands(t *testing.T) {
	f := func(a, b, c, d, e, g, h, i float64) bool {
		m := boundedMBR(a, b, c, d)
		o := boundedMBR(e, g, h, i)
		u := m.Union(o)
		return u.Contains(m) && u.Contains(o)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMBRIntersectionSound(t *testing.T) {
	f := func(a, b, c, d, e, g, h, i float64) bool {
		m := boundedMBR(a, b, c, d)
		o := boundedMBR(e, g, h, i)
		x := m.Intersect(o)
		if m.Intersects(o) != !x.IsEmpty() {
			// Degenerate zero-area overlaps are still "intersecting".
			if x.MinX > x.MaxX || x.MinY > x.MaxY {
				return !m.Intersects(o)
			}
		}
		if x.IsEmpty() {
			return true
		}
		return m.Contains(x) && o.Contains(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMBRDistZeroIffIntersects(t *testing.T) {
	f := func(a, b, c, d, e, g, h, i float64) bool {
		m := boundedMBR(a, b, c, d)
		o := boundedMBR(e, g, h, i)
		return (m.Dist(o) == 0) == m.Intersects(o)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMBROfContainsAllVertices(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 6 {
			return true
		}
		pts := make([]Point, 0, len(raw)/2)
		for i := 0; i+1 < len(raw) && len(pts) < 32; i += 2 {
			x, y := raw[i], raw[i+1]
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
				return true
			}
			pts = append(pts, Point{math.Mod(x, 1e6), math.Mod(y, 1e6)})
		}
		if len(pts) < 2 {
			return true
		}
		g, err := NewLineString(pts)
		if err != nil {
			return true
		}
		m := MBROf(g)
		for _, p := range pts {
			if !m.ContainsPoint(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
