package geom

import "math"

// This file holds the low-level computational-geometry kernels:
// orientation tests, segment intersection, and point/segment distances.
// Everything above (predicates, relate masks, distances) is built from
// these few primitives, so their edge-case behaviour is tested heavily.

// eps is the tolerance used for orientation and on-segment tests. The
// synthetic datasets use coordinates in roughly [0, 1000], for which
// 1e-12 comfortably exceeds accumulated float error without swallowing
// genuine near-touches.
const eps = 1e-12

// orient returns the sign of the cross product (b-a) × (c-a):
// +1 if a→b→c turns counter-clockwise, -1 if clockwise, 0 if collinear
// (within eps, scaled by the segment magnitudes).
func orient(a, b, c Point) int {
	v := (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
	// Scale tolerance by the magnitude of the operands so the test is
	// meaningful for both tiny and huge coordinates.
	scale := math.Abs(b.X-a.X) + math.Abs(b.Y-a.Y) + math.Abs(c.X-a.X) + math.Abs(c.Y-a.Y)
	tol := eps * (1 + scale)
	switch {
	case v > tol:
		return 1
	case v < -tol:
		return -1
	default:
		return 0
	}
}

// onSegment reports whether point p lies on segment ab, assuming the
// three points are already known to be collinear.
func onSegment(a, b, p Point) bool {
	return math.Min(a.X, b.X)-eps <= p.X && p.X <= math.Max(a.X, b.X)+eps &&
		math.Min(a.Y, b.Y)-eps <= p.Y && p.Y <= math.Max(a.Y, b.Y)+eps
}

// segIntersects reports whether segments ab and cd share at least one
// point, including endpoint touches and collinear overlap.
func segIntersects(a, b, c, d Point) bool {
	o1 := orient(a, b, c)
	o2 := orient(a, b, d)
	o3 := orient(c, d, a)
	o4 := orient(c, d, b)
	if o1 != o2 && o3 != o4 {
		return true
	}
	// Collinear cases.
	if o1 == 0 && onSegment(a, b, c) {
		return true
	}
	if o2 == 0 && onSegment(a, b, d) {
		return true
	}
	if o3 == 0 && onSegment(c, d, a) {
		return true
	}
	if o4 == 0 && onSegment(c, d, b) {
		return true
	}
	return false
}

// segProperCross reports whether ab and cd cross at a single interior
// point of both segments (a "proper" crossing: no endpoint touches, no
// collinear overlap). Interior crossings distinguish OVERLAP from TOUCH.
func segProperCross(a, b, c, d Point) bool {
	o1 := orient(a, b, c)
	o2 := orient(a, b, d)
	o3 := orient(c, d, a)
	o4 := orient(c, d, b)
	return o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 && o1 != o2 && o3 != o4
}

// pointSegDist returns the distance from p to segment ab.
func pointSegDist(p, a, b Point) float64 {
	ab := b.Sub(a)
	len2 := ab.Dot(ab)
	if len2 == 0 {
		return p.Dist(a)
	}
	t := p.Sub(a).Dot(ab) / len2
	switch {
	case t <= 0:
		return p.Dist(a)
	case t >= 1:
		return p.Dist(b)
	default:
		proj := a.Add(ab.Scale(t))
		return p.Dist(proj)
	}
}

// segSegDist returns the minimum distance between segments ab and cd
// (zero if they intersect).
func segSegDist(a, b, c, d Point) float64 {
	if segIntersects(a, b, c, d) {
		return 0
	}
	return math.Min(
		math.Min(pointSegDist(a, c, d), pointSegDist(b, c, d)),
		math.Min(pointSegDist(c, a, b), pointSegDist(d, a, b)),
	)
}

// ringEdges calls fn for each edge of the implicitly closed ring r.
// fn returning false stops the iteration early.
func ringEdges(r []Point, fn func(a, b Point) bool) {
	n := len(r)
	for i := 0; i < n; i++ {
		if !fn(r[i], r[(i+1)%n]) {
			return
		}
	}
}

// pathEdges calls fn for each edge of the open polyline pts.
func pathEdges(pts []Point, fn func(a, b Point) bool) {
	for i := 1; i < len(pts); i++ {
		if !fn(pts[i-1], pts[i]) {
			return
		}
	}
}

// pointInRing classifies p against the implicitly closed ring r:
// +1 strictly inside, 0 on the boundary, -1 strictly outside.
// It uses the standard crossing-number ray cast with boundary detection.
func pointInRing(p Point, r []Point) int {
	n := len(r)
	inside := false
	for i := 0; i < n; i++ {
		a, b := r[i], r[(i+1)%n]
		// Boundary check first.
		if orient(a, b, p) == 0 && onSegment(a, b, p) {
			return 0
		}
		// Crossing-number step: does the edge straddle the horizontal
		// line through p, and is the crossing to the right of p?
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xCross := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if xCross > p.X {
				inside = !inside
			}
		}
	}
	if inside {
		return 1
	}
	return -1
}

// pointInPolygon classifies p against polygon g (which must be
// KindPolygon): +1 strictly interior, 0 on the boundary (outer ring or
// hole ring), -1 exterior (outside the outer ring or strictly inside a
// hole).
func pointInPolygon(p Point, g Geometry) int {
	c := pointInRing(p, g.Rings[0])
	if c <= 0 {
		return c
	}
	for _, h := range g.Rings[1:] {
		switch pointInRing(p, h) {
		case 0:
			return 0
		case 1:
			return -1
		}
	}
	return 1
}
