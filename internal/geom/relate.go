package geom

import (
	"fmt"
	"strings"
)

// Mask names a topological relationship between two geometries,
// mirroring the sdo_relate operator masks of Oracle Spatial.
type Mask uint8

// Supported relate masks.
const (
	// MaskAnyInteract holds when the geometries share at least one point.
	MaskAnyInteract Mask = iota
	// MaskEqual holds when the geometries describe the same point set.
	MaskEqual
	// MaskInside holds when the first geometry lies strictly within the
	// interior of the second (no boundary contact).
	MaskInside
	// MaskContains is MaskInside with the operands swapped.
	MaskContains
	// MaskCoveredBy holds when every point of the first geometry lies in
	// the closed second geometry with some boundary contact, and the
	// geometries are not equal.
	MaskCoveredBy
	// MaskCovers is MaskCoveredBy with the operands swapped.
	MaskCovers
	// MaskTouch holds when only the boundaries interact.
	MaskTouch
	// MaskOverlap holds when the interiors interact but neither geometry
	// covers the other.
	MaskOverlap
)

// ParseMask converts the textual operator name used in the paper's SQL
// examples ("intersect", "anyinteract", "inside", ...) to a Mask.
func ParseMask(s string) (Mask, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "anyinteract", "intersect", "intersects":
		return MaskAnyInteract, nil
	case "equal", "equals":
		return MaskEqual, nil
	case "inside", "within":
		return MaskInside, nil
	case "contains":
		return MaskContains, nil
	case "coveredby":
		return MaskCoveredBy, nil
	case "covers":
		return MaskCovers, nil
	case "touch", "touches":
		return MaskTouch, nil
	case "overlap", "overlapbdyintersect", "overlaps":
		return MaskOverlap, nil
	default:
		return 0, fmt.Errorf("geom: unknown relate mask %q", s)
	}
}

// String returns the canonical operator name for m.
func (m Mask) String() string {
	switch m {
	case MaskAnyInteract:
		return "ANYINTERACT"
	case MaskEqual:
		return "EQUAL"
	case MaskInside:
		return "INSIDE"
	case MaskContains:
		return "CONTAINS"
	case MaskCoveredBy:
		return "COVEREDBY"
	case MaskCovers:
		return "COVERS"
	case MaskTouch:
		return "TOUCH"
	case MaskOverlap:
		return "OVERLAP"
	default:
		return fmt.Sprintf("MASK(%d)", uint8(m))
	}
}

// Symmetric reports whether Relate(a, b, m) == Relate(b, a, m) holds for
// all geometries; used by the property tests.
func (m Mask) Symmetric() bool {
	switch m {
	case MaskAnyInteract, MaskEqual, MaskTouch, MaskOverlap:
		return true
	}
	return false
}

// Relate evaluates the topological relationship m between g and h.
// It is the exact (secondary-filter) equivalent of Oracle's
// sdo_relate(g, h, 'mask=M').
func Relate(g, h Geometry, m Mask) bool {
	switch m {
	case MaskAnyInteract:
		return Intersects(g, h)
	case MaskEqual:
		return g.Equal(h)
	case MaskInside:
		return coveredBy(g, h) && !boundariesIntersect(g, h)
	case MaskContains:
		return coveredBy(h, g) && !boundariesIntersect(h, g)
	case MaskCoveredBy:
		return coveredBy(g, h) && boundariesIntersect(g, h) && !g.Equal(h)
	case MaskCovers:
		return coveredBy(h, g) && boundariesIntersect(h, g) && !g.Equal(h)
	case MaskTouch:
		return Intersects(g, h) && !interiorsIntersect(g, h)
	case MaskOverlap:
		return interiorsIntersect(g, h) && !coveredBy(g, h) && !coveredBy(h, g)
	default:
		return false
	}
}
