package geom

// Interior approximations — the optimization of Kothuri & Ravada's
// companion paper ("Efficient Processing of Large Spatial Queries Using
// Interior Approximations", SSTD 2001, cited as [21]): alongside the
// exterior MBR approximation, store a rectangle guaranteed to lie
// inside the geometry. A query or join candidate whose window lies
// within the interior rectangle (or whose interior rectangles overlap)
// can be accepted without fetching and testing the exact geometry,
// removing secondary-filter work for large result sets.

// InteriorRect returns an axis-aligned rectangle contained in the
// closed region of g, or the empty MBR when no useful rectangle is
// found (points, lines, degenerate or very thin polygons). effort
// controls the search granularity; 0 selects a default. The result is
// conservative: every point of the returned rectangle lies in g.
func InteriorRect(g Geometry, effort int) MBR {
	if effort <= 0 {
		effort = 4
	}
	switch g.Kind {
	case KindPolygon:
		return polygonInteriorRect(g, effort)
	case KindMultiPolygon:
		// The largest member interior serves the whole collection.
		best := EmptyMBR()
		for _, e := range g.Elems {
			r := polygonInteriorRect(e, effort)
			if r.Area() > best.Area() {
				best = r
			}
		}
		return best
	default:
		return EmptyMBR()
	}
}

// polygonInteriorRect searches for a large rectangle inside the
// polygon: candidate centre points on an effort × effort grid (plus the
// vertex centroid), and for each interior centre a binary search on the
// scale of an MBR-proportioned rectangle, verified by exact coverage.
func polygonInteriorRect(g Geometry, effort int) MBR {
	m := MBROf(g)
	if !m.Valid() || m.Width() == 0 || m.Height() == 0 {
		return EmptyMBR()
	}
	halfW := m.Width() / 2
	halfH := m.Height() / 2

	best := EmptyMBR()
	tryCenter := func(c Point) {
		if pointInPolygon(c, g) <= 0 {
			return
		}
		// Binary search the largest s in (0, 1] such that the rectangle
		// c ± s*(halfW, halfH) is covered by the polygon.
		lo, hi := 0.0, 1.0
		const iters = 12
		for i := 0; i < iters; i++ {
			s := (lo + hi) / 2
			r := MBR{c.X - s*halfW, c.Y - s*halfH, c.X + s*halfW, c.Y + s*halfH}
			if rectCoveredByPolygon(r, g) {
				lo = s
			} else {
				hi = s
			}
		}
		if lo == 0 {
			return
		}
		r := MBR{c.X - lo*halfW, c.Y - lo*halfH, c.X + lo*halfW, c.Y + lo*halfH}
		if r.Area() > best.Area() {
			best = r
		}
	}

	tryCenter(g.Centroid())
	for i := 1; i <= effort; i++ {
		for j := 1; j <= effort; j++ {
			tryCenter(Point{
				X: m.MinX + m.Width()*float64(i)/float64(effort+1),
				Y: m.MinY + m.Height()*float64(j)/float64(effort+1),
			})
		}
	}
	return best
}

// rectCoveredByPolygon reports whether the rectangle r lies entirely in
// the closed region of polygon g.
func rectCoveredByPolygon(r MBR, g Geometry) bool {
	if r.IsEmpty() || r.Width() <= 0 || r.Height() <= 0 {
		return false
	}
	rect, err := NewRect(r.MinX, r.MinY, r.MaxX, r.MaxY)
	if err != nil {
		return false
	}
	return polyCoveredByPoly(rect, g)
}
