// Package sjoin implements the paper's primary contribution (§4):
// spatial joins over two R-tree-indexed tables evaluated through
// parallel and pipelined table functions.
//
// Three evaluation strategies are provided:
//
//   - NestedLoop — the pre-9i baseline: iterate the first table and run
//     an index-assisted spatial query on the second table per row.
//   - IndexJoin — the spatial_join table function: a synchronized
//     traversal of both R-trees pipelined through start-fetch-close,
//     with the two-stage candidate-array evaluation of §4.2.
//   - ParallelIndexJoin — §4.1: descend both trees to a level, enumerate
//     subtree roots, and run the join of the subtree-pair cross product
//     on parallel table-function instances.
//
// A quadtree tile join is provided as an extension (QuadtreeJoin).
package sjoin

import (
	"fmt"
	"slices"

	"spatialtf/internal/geom"
	"spatialtf/internal/rtree"
	"spatialtf/internal/storage"
	"spatialtf/internal/telemetry"
)

// Pair is one join result: the rowids of the interacting rows in the
// first and second table — the (rid1, rid2) rows returned by the
// spatial_join table function.
type Pair struct {
	A, B storage.RowID
}

// Less orders pairs by (A, B); tests sort results for comparison.
func (p Pair) Less(q Pair) bool {
	if c := p.A.Compare(q.A); c != 0 {
		return c < 0
	}
	return p.B.Less(q.B)
}

// comparePairs is the (A, B) ordering as a slices.SortFunc comparator.
// The concrete comparator avoids the per-call interface indirection of
// sort.Slice on the candidate-sort hot path.
func comparePairs(p, q Pair) int {
	if c := p.A.Compare(q.A); c != 0 {
		return c
	}
	return p.B.Compare(q.B)
}

// Source names one join operand: the base table, its geometry column,
// and the R-tree index on that column.
type Source struct {
	Table  *storage.Table
	Column string
	Tree   *rtree.Tree
}

// geomColumn resolves and type-checks the geometry column.
func (s Source) geomColumn() (int, error) {
	col, err := s.Table.ColumnIndex(s.Column)
	if err != nil {
		return 0, err
	}
	if s.Table.Schema()[col].Type != storage.TGeometry {
		return 0, fmt.Errorf("sjoin: column %q of %q is %v, not GEOMETRY",
			s.Column, s.Table.Name(), s.Table.Schema()[col].Type)
	}
	return col, nil
}

// DefaultCandidateCap bounds the in-memory candidate array of the
// two-stage join — the paper's "size of this array is determined by
// existing memory resources". When the array fills, the primary filter
// suspends, the secondary filter drains the array, and the traversal
// resumes: that is what makes the table function pipelined rather than
// materializing.
const DefaultCandidateCap = 4096

// Config tunes a join.
type Config struct {
	// Mask is the interaction predicate (default ANYINTERACT). With a
	// Distance > 0 the predicate is within-distance instead.
	Mask geom.Mask
	// Distance, when positive, selects a within-distance join: pairs
	// whose exact geometries lie within this distance. Zero means the
	// Mask relationship ("intersection (distance of 0)" per the paper).
	Distance float64
	// CandidateCap bounds the candidate array (0 = DefaultCandidateCap).
	CandidateCap int
	// SortCandidates controls whether the candidate array is sorted by
	// first rowid before the secondary filter. The paper adopts sorting
	// ("within 20% of the best approximate solutions"); disabling it is
	// the ablation baseline ("a random order of fetching").
	SortCandidates bool
	// FetchBatch is the table-function fetch size (0 = framework
	// default).
	FetchBatch int
	// UseInteriorApprox enables the interior-approximation fast accept
	// (Kothuri & Ravada, SSTD 2001): leaf-entry pairs whose interior
	// rectangles overlap — or where one interior contains the other's
	// MBR — are emitted as results without fetching exact geometries.
	// Only applies to ANYINTERACT joins (Distance == 0) on indexes
	// built with interior approximations; a no-op otherwise.
	UseInteriorApprox bool
	// NestedPrimaryFilter forces the primary filter back to the nested
	// entry-pair scan. Default (false) uses the forward plane sweep over
	// xlo-sorted entry lists whenever a node pair is large enough; this
	// knob is the ablation baseline.
	NestedPrimaryFilter bool
	// SweepThreshold is the minimum combined entry count of a node pair
	// for the plane sweep to engage (0 = DefaultSweepThreshold). Below
	// it, sorting costs more than the quadratic scan saves.
	SweepThreshold int
	// GridTiles, when positive, overrides the grid-partitioned path's
	// automatic tile-count choice (GridShape) — an ablation knob for
	// studying tile granularity. Rounded up to a square grid.
	GridTiles int
	// GeomCacheBytes bounds the decoded-geometry cache of the secondary
	// filter in bytes (0 = DefaultGeomCacheBytes; negative disables the
	// cache). Ignored when GeomCache is set.
	GeomCacheBytes int
	// GeomCache, when non-nil, is a shared cache instance used instead
	// of a join-private one — the facade shares one cache per database
	// so parallel instances and successive joins reuse decodes.
	GeomCache *GeomCache
	// Instr, when non-nil, receives the join's work counters and
	// batch-granular stage latencies. Shared across parallel instances;
	// nil (the default) keeps the join free of telemetry writes.
	Instr *Instruments
	// Trace, when non-nil, is the per-query span trace the join's
	// stages are recorded on (it also enables per-fetch geometry-fetch
	// timing, which is too hot for always-on collection).
	Trace *telemetry.Trace
}

// DefaultSweepThreshold is the combined entry count below which the
// plane sweep falls back to the nested scan: two sorts plus merge
// bookkeeping only pay off once the pair has a few dozen entries.
const DefaultSweepThreshold = 16

// withDefaults normalises a config.
func (c Config) withDefaults() Config {
	if c.CandidateCap <= 0 {
		c.CandidateCap = DefaultCandidateCap
	}
	if c.SweepThreshold <= 0 {
		c.SweepThreshold = DefaultSweepThreshold
	}
	return c
}

// DefaultConfig returns the configuration the paper's experiments use:
// ANYINTERACT (or a distance), sorted candidate fetch.
func DefaultConfig() Config {
	return Config{Mask: geom.MaskAnyInteract, SortCandidates: true}
}

// primaryAccepts reports whether a pair of index MBRs survives the
// primary filter.
func (c Config) primaryAccepts(a, b geom.MBR) bool {
	if c.Distance > 0 {
		return a.Dist(b) <= c.Distance
	}
	return a.Intersects(b)
}

// secondaryAccepts evaluates the exact predicate on fetched geometries.
func (c Config) secondaryAccepts(a, b geom.Geometry) bool {
	if c.Distance > 0 {
		return geom.WithinDistance(a, b, c.Distance)
	}
	return geom.Relate(a, b, c.Mask)
}

// pairRow encodes a result pair as a table-function output row
// (rid1, rid2).
func pairRow(p Pair) storage.Row {
	return storage.Row{
		storage.Bytes(p.A.AppendTo(nil)),
		storage.Bytes(p.B.AppendTo(nil)),
	}
}

// rowIDImageLen is the size of one storage.RowID binary image
// (RowID.AppendTo writes 4 bytes of page + 2 of slot).
const rowIDImageLen = 6

// pairArena batches the backing storage for one Fetch batch of output
// rows: a single Value slab and a single rowid-byte slab serve every
// pair in the batch, replacing pairRow's three heap allocations per row
// with two per batch. Slabs are sized exactly for max rows, and every
// row is handed out as a full-capacity slice so an appending caller
// cannot clobber its neighbour.
type pairArena struct {
	vals []storage.Value
	ids  []byte
}

func (a *pairArena) init(max int) {
	a.vals = make([]storage.Value, 0, 2*max)
	a.ids = make([]byte, 0, 2*rowIDImageLen*max)
}

// row encodes p like pairRow, carving the result out of the batch slabs.
func (a *pairArena) row(p Pair) storage.Row {
	i := len(a.ids)
	a.ids = p.A.AppendTo(a.ids)
	j := len(a.ids)
	a.ids = p.B.AppendTo(a.ids)
	k := len(a.ids)
	v := len(a.vals)
	a.vals = append(a.vals, storage.Bytes(a.ids[i:j:j]), storage.Bytes(a.ids[j:k:k]))
	return storage.Row(a.vals[v : v+2 : v+2])
}

// PairFromRow decodes a spatial_join output row.
func PairFromRow(row storage.Row) (Pair, error) {
	if len(row) != 2 {
		return Pair{}, fmt.Errorf("sjoin: pair row has %d columns", len(row))
	}
	a, err := storage.RowIDFromBytes(row[0].B)
	if err != nil {
		return Pair{}, err
	}
	b, err := storage.RowIDFromBytes(row[1].B)
	if err != nil {
		return Pair{}, err
	}
	return Pair{A: a, B: b}, nil
}

// CollectPairs drains a join cursor into a pair slice.
func CollectPairs(c storage.Cursor) ([]Pair, error) {
	defer c.Close()
	var out []Pair
	for {
		_, row, ok, err := c.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		p, err := PairFromRow(row)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
}

// PairsCursor wraps a materialised pair slice as a join-output cursor
// (rows encoded like the table function's), for paths that compute
// eagerly — the facade's nested-loop algorithm choice.
func PairsCursor(pairs []Pair) storage.Cursor {
	rows := make([]storage.Row, len(pairs))
	for i, p := range pairs {
		rows[i] = pairRow(p)
	}
	return storage.NewSliceCursor(nil, rows)
}

// SortPairs orders pairs by (A, B) for deterministic comparison.
func SortPairs(pairs []Pair) {
	slices.SortFunc(pairs, comparePairs)
}
