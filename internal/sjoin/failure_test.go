package sjoin

import (
	"strings"
	"testing"

	"spatialtf/internal/datagen"
	"spatialtf/internal/storage"
)

// Failure-injection tests: the join's secondary filter fetches base
// rows by rowid; rows deleted between index creation and the fetch (a
// stale index — impossible through the maintained extidx path, possible
// when driving sjoin directly) must surface as errors, not panics or
// silent omissions.

func TestIndexJoinSurfacesFetchErrors(t *testing.T) {
	src := buildSource(t, "fragile", datagen.Stars(200, 301))
	// Delete a row from the table without maintaining the index.
	var victim storage.RowID
	src.Table.Scan(func(id storage.RowID, _ storage.Row) bool {
		victim = id
		return false
	})
	if err := src.Table.Delete(victim); err != nil {
		t.Fatal(err)
	}
	cur, err := IndexJoin(src, src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = CollectPairs(cur)
	if err == nil {
		t.Fatalf("stale-index join did not surface the fetch error")
	}
	if !strings.Contains(err.Error(), "fetch") {
		t.Errorf("unexpected error text: %v", err)
	}
}

func TestNestedLoopSurfacesFetchErrors(t *testing.T) {
	src := buildSource(t, "fragile_nl", datagen.Stars(200, 307))
	// Pick a victim that provably participates in a cross pair, so a
	// surviving outer row will probe its index entry.
	pairs, err := NestedLoop(src, src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	victim := storage.InvalidRowID
	for _, p := range pairs {
		if p.A != p.B {
			victim = p.B
			break
		}
	}
	if !victim.IsValid() {
		t.Skip("dataset produced no cross pairs")
	}
	if err := src.Table.Delete(victim); err != nil {
		t.Fatal(err)
	}
	// The deleted row is still in the index; probing it must error.
	if _, err := NestedLoop(src, src, DefaultConfig()); err == nil {
		t.Fatalf("stale-index nested loop did not surface the fetch error")
	}
}

func TestParallelJoinSurfacesFetchErrors(t *testing.T) {
	src := buildSource(t, "fragile_par", datagen.Stars(500, 311))
	var victim storage.RowID
	src.Table.Scan(func(id storage.RowID, _ storage.Row) bool {
		victim = id
		return false
	})
	if err := src.Table.Delete(victim); err != nil {
		t.Fatal(err)
	}
	cur, err := ParallelIndexJoin(src, src, DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CollectPairs(cur); err == nil {
		t.Fatalf("stale-index parallel join did not surface the fetch error")
	}
}

func TestJoinRejectsBadColumn(t *testing.T) {
	src := buildSource(t, "cols", datagen.Stars(10, 313))
	bad := src
	bad.Column = "name" // exists but is not a geometry column
	if _, err := IndexJoin(bad, src, DefaultConfig()); err == nil {
		t.Errorf("non-geometry column accepted")
	}
	bad.Column = "missing"
	if _, err := IndexJoin(bad, src, DefaultConfig()); err == nil {
		t.Errorf("missing column accepted")
	}
	if _, err := ParallelIndexJoin(bad, src, DefaultConfig(), 2); err == nil {
		t.Errorf("parallel join accepted bad column")
	}
	if _, err := NestedLoop(bad, src, DefaultConfig()); err == nil {
		t.Errorf("nested loop accepted bad column")
	}
	if _, _, err := NestedLoopStats(src, bad, DefaultConfig()); err == nil {
		t.Errorf("nested loop accepted bad inner column")
	}
}

func TestJoinFunctionLifecycleReuse(t *testing.T) {
	// Start resets the traversal from the configured roots, so a join
	// function can be re-run; both runs must agree.
	src := buildSource(t, "reuse", datagen.Stars(300, 317))
	fn, err := NewJoinFunction(src, src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n1, _, err := RunJoinFunction(fn, 0)
	if err != nil {
		t.Fatal(err)
	}
	n2, _, err := RunJoinFunction(fn, 128)
	if err != nil {
		t.Fatal(err)
	}
	if n1 == 0 || n1 != n2 {
		t.Fatalf("re-run mismatch: %d vs %d", n1, n2)
	}
}

func TestSimulateParallelJoinMatchesSerial(t *testing.T) {
	src := buildSource(t, "simjoin", datagen.Stars(1200, 331))
	cfg := DefaultConfig()
	cur, err := IndexJoin(src, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CollectPairs(cur)
	if err != nil {
		t.Fatal(err)
	}
	SortPairs(want)
	for _, w := range []int{1, 2, 4} {
		res, err := SimulateParallelIndexJoin(src, src, cfg, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got := append([]Pair(nil), res.Pairs...)
		SortPairs(got)
		if !pairsEqual(got, want) {
			t.Fatalf("workers=%d: simulated join differs (%d vs %d pairs)", w, len(got), len(want))
		}
		if len(res.InstanceTimes) != w {
			t.Fatalf("workers=%d: %d instance times", w, len(res.InstanceTimes))
		}
		var max int64
		for _, d := range res.InstanceTimes {
			if int64(d) > max {
				max = int64(d)
			}
		}
		if int64(res.Elapsed) != max {
			t.Errorf("workers=%d: Elapsed %v != max instance %v", w, res.Elapsed, max)
		}
	}
}
