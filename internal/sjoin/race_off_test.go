//go:build !race

package sjoin

// raceEnabled reports whether the race detector is compiled in; the
// heavyweight differential matrices shrink under -race (instrumented
// runs are ~10x slower) while still exercising the concurrent paths.
const raceEnabled = false
