package sjoin

import (
	"fmt"

	"spatialtf/internal/rtree"
	"spatialtf/internal/storage"
	"spatialtf/internal/tablefunc"
)

// This file implements §4.1: "to better avail of the table-function-
// level parallelism, we modify our approach to perform a spatial-join of
// subtrees of the R-tree indexes. ... we descend each index by a certain
// level and identify the roots of the subtrees at that level and join
// the subtrees." The subtree-pair stream plays the role of the
//
//	CURSOR(select * from table(subtree_root(idxA, level)),
//	                table(subtree_root(idxB, level)))
//
// operand: it is partitioned across the parallel instances of the
// spatial_join function, each of which joins its assigned pairs.

// SubtreePairs enumerates the cross product of the subtree roots of
// both trees after descending each by the given level, keeping only
// pairs whose subtree MBRs can satisfy the predicate (a disjoint pair
// can produce no results and is pruned before scheduling). Descending
// by 1 on Figure 1's trees yields (R11,S11), (R11,S12), (R12,S11),
// (R12,S12).
func SubtreePairs(a, b *rtree.Tree, descend int, cfg Config) []PairOfRoots {
	cfg = cfg.withDefaults()
	ra := a.SubtreeRoots(descend)
	rb := b.SubtreeRoots(descend)
	var out []PairOfRoots
	for _, na := range ra {
		ma := na.MBR()
		for _, nb := range rb {
			if cfg.primaryAccepts(ma, nb.MBR()) {
				out = append(out, PairOfRoots{A: na, B: nb})
			}
		}
	}
	return out
}

// PairOfRoots is one subtree-join task.
type PairOfRoots struct {
	A, B rtree.NodeRef
}

// SubtreePairsForWorkers picks the smallest descend level whose pruned
// cross product yields at least `want` tasks (the paper: "we descend
// both trees as far below as to get appropriate number of subtree-
// joins"), defaulting to a few tasks per worker for balance.
func SubtreePairsForWorkers(a, b *rtree.Tree, workers int, cfg Config) []PairOfRoots {
	if workers < 1 {
		workers = 1
	}
	want := workers * 4 // a few tasks per instance smooths skew
	maxDescend := a.Height() - 1
	if h := b.Height() - 1; h < maxDescend {
		maxDescend = h
	}
	var pairs []PairOfRoots
	for d := 0; ; d++ {
		pairs = SubtreePairs(a, b, d, cfg)
		if len(pairs) >= want || d >= maxDescend {
			return pairs
		}
	}
}

// ParallelIndexJoin evaluates the spatial join with `workers` parallel
// instances of the spatial_join table function, each joining a
// partition of the subtree-pair stream. The returned cursor merges the
// instances' pipelined outputs (order unspecified).
func ParallelIndexJoin(a, b Source, cfg Config, workers int) (storage.Cursor, error) {
	cfg = cfg.withDefaults()
	// Resolve the decoded-geometry cache once so all instances share it
	// (the sharded LRU is safe for concurrent instances); otherwise each
	// instance would warm a private cache.
	cfg.GeomCache = cfg.resolveCache()
	if workers < 1 {
		workers = 1
	}
	if _, err := a.geomColumn(); err != nil {
		return nil, err
	}
	if _, err := b.geomColumn(); err != nil {
		return nil, err
	}
	pairs := SubtreePairsForWorkers(a.Tree, b.Tree, workers, cfg)

	// Deal the tasks round-robin into `workers` partitions, mirroring
	// the runtime partitioning of the input cursor across instances.
	parts := make([][]nodePair, workers)
	for i, p := range pairs {
		parts[i%workers] = append(parts[i%workers], nodePair{p.A, p.B})
	}
	var cursors []storage.Cursor
	var tasks [][]nodePair
	for _, part := range parts {
		if len(part) == 0 {
			continue
		}
		tasks = append(tasks, part)
		// The instance's input cursor is its task list; content is
		// delivered via the factory closure, the cursor is positional.
		cursors = append(cursors, storage.NewSliceCursor(nil, make([]storage.Row, len(part))))
	}
	if len(cursors) == 0 {
		return storage.NewSliceCursor(nil, nil), nil
	}
	factory := func(instance int, input storage.Cursor) (tablefunc.TableFunction, error) {
		if instance < 0 || instance >= len(tasks) {
			return nil, fmt.Errorf("sjoin: no tasks for instance %d", instance)
		}
		jf, err := newJoinFn(a, b, cfg, tasks[instance])
		if err != nil {
			return nil, err
		}
		// All instances share cfg.Trace (stage aggregates are atomic),
		// so one per-query trace sums the parallel instances' work.
		return tablefunc.Traced(jf, cfg.Trace), nil
	}
	return tablefunc.Parallel(cursors, factory, cfg.FetchBatch), nil
}
