package sjoin

import (
	"fmt"
	"slices"

	"spatialtf/internal/rtree"
	"spatialtf/internal/storage"
	"spatialtf/internal/tablefunc"
)

// This file implements §4.1: "to better avail of the table-function-
// level parallelism, we modify our approach to perform a spatial-join of
// subtrees of the R-tree indexes. ... we descend each index by a certain
// level and identify the roots of the subtrees at that level and join
// the subtrees." The subtree-pair stream plays the role of the
//
//	CURSOR(select * from table(subtree_root(idxA, level)),
//	                table(subtree_root(idxB, level)))
//
// operand: it is partitioned across the parallel instances of the
// spatial_join function, each of which joins its assigned pairs.

// SubtreePairs enumerates the cross product of the subtree roots of
// both trees after descending each by the given level, keeping only
// pairs whose subtree MBRs can satisfy the predicate (a disjoint pair
// can produce no results and is pruned before scheduling). Descending
// by 1 on Figure 1's trees yields (R11,S11), (R11,S12), (R12,S11),
// (R12,S12).
func SubtreePairs(a, b *rtree.Tree, descend int, cfg Config) []PairOfRoots {
	cfg = cfg.withDefaults()
	return crossRootPairs(a.SubtreeRoots(descend), b.SubtreeRoots(descend), cfg)
}

// PairOfRoots is one subtree-join task.
type PairOfRoots struct {
	A, B rtree.NodeRef
}

// SubtreePairsForWorkers picks the smallest descend level whose pruned
// cross product yields at least `want` tasks (the paper: "we descend
// both trees as far below as to get appropriate number of subtree-
// joins"), defaulting to a few tasks per worker for balance. The
// descent is incremental: each level's root lists are expanded from the
// previous level's, so the trees are walked once to the final level
// instead of re-descending from the root per candidate level.
func SubtreePairsForWorkers(a, b *rtree.Tree, workers int, cfg Config) []PairOfRoots {
	workers = normWorkers(workers)
	cfg = cfg.withDefaults()
	want := workers * 4 // a few tasks per instance smooths skew
	maxDescend := a.Height() - 1
	if h := b.Height() - 1; h < maxDescend {
		maxDescend = h
	}
	ra := a.SubtreeRoots(0)
	rb := b.SubtreeRoots(0)
	for d := 0; ; d++ {
		pairs := crossRootPairs(ra, rb, cfg)
		if len(pairs) >= want || d >= maxDescend {
			return pairs
		}
		ra = childRoots(ra)
		rb = childRoots(rb)
	}
}

// crossRootPairs is the pruned cross product of two root lists — the
// inner step of SubtreePairs, shared by the incremental descent.
func crossRootPairs(ra, rb []rtree.NodeRef, cfg Config) []PairOfRoots {
	var out []PairOfRoots
	for _, na := range ra {
		ma := na.MBR()
		for _, nb := range rb {
			if cfg.primaryAccepts(ma, nb.MBR()) {
				out = append(out, PairOfRoots{A: na, B: nb})
			}
		}
	}
	return out
}

// childRoots expands a root list by one level, preserving left-to-right
// order (so the incremental descent enumerates the same roots, in the
// same order, as SubtreeRoots at that level). Leaves stay as they are —
// the descent cap keeps them out in practice, this is a guard.
func childRoots(roots []rtree.NodeRef) []rtree.NodeRef {
	out := make([]rtree.NodeRef, 0, len(roots)*2)
	for _, r := range roots {
		if r.IsLeaf() {
			out = append(out, r)
			continue
		}
		for i := 0; i < r.NumEntries(); i++ {
			out = append(out, r.Child(i))
		}
	}
	return out
}

// dealPairs deals subtree-pair tasks into `workers` static partitions,
// longest first: tasks are ordered by estimated cost (the entry-count
// product of the two roots) descending and each goes to the least
// loaded partition — the classic LPT schedule, which keeps a skewed
// task from landing on an already-full partition the way round-robin
// dealing can. Deterministic: the sort is stable over the enumeration
// order and ties pick the lowest partition index.
func dealPairs(pairs []PairOfRoots, workers int) [][]nodePair {
	parts := make([][]nodePair, workers)
	if len(pairs) == 0 {
		return parts
	}
	costs := make([]float64, len(pairs))
	order := make([]int, len(pairs))
	for i, p := range pairs {
		costs[i] = float64(p.A.NumEntries()) * float64(p.B.NumEntries())
		order[i] = i
	}
	slices.SortStableFunc(order, func(x, y int) int {
		switch {
		case costs[x] > costs[y]:
			return -1
		case costs[x] < costs[y]:
			return 1
		default:
			return 0
		}
	})
	loads := make([]float64, workers)
	for _, idx := range order {
		w := 0
		for i := 1; i < workers; i++ {
			if loads[i] < loads[w] {
				w = i
			}
		}
		p := pairs[idx]
		parts[w] = append(parts[w], nodePair{p.A, p.B})
		// The +1 spreads zero-cost tasks (empty roots) instead of piling
		// them all on one partition.
		loads[w] += costs[idx] + 1
	}
	return parts
}

// ParallelIndexJoin evaluates the spatial join with `workers` parallel
// instances of the spatial_join table function, each joining a
// partition of the subtree-pair stream. The returned cursor merges the
// instances' pipelined outputs (order unspecified).
func ParallelIndexJoin(a, b Source, cfg Config, workers int) (storage.Cursor, error) {
	cfg = cfg.withDefaults()
	// Resolve the decoded-geometry cache once so all instances share it
	// (the sharded LRU is safe for concurrent instances); otherwise each
	// instance would warm a private cache.
	cfg.GeomCache = cfg.resolveCache()
	workers = normWorkers(workers)
	if _, err := a.geomColumn(); err != nil {
		return nil, err
	}
	if _, err := b.geomColumn(); err != nil {
		return nil, err
	}
	pairs := SubtreePairsForWorkers(a.Tree, b.Tree, workers, cfg)
	parts := dealPairs(pairs, workers)
	var cursors []storage.Cursor
	var tasks [][]nodePair
	for _, part := range parts {
		if len(part) == 0 {
			continue
		}
		tasks = append(tasks, part)
		// The instance's input cursor is its task list; content is
		// delivered via the factory closure, the cursor is positional.
		cursors = append(cursors, storage.NewSliceCursor(nil, make([]storage.Row, len(part))))
	}
	if len(cursors) == 0 {
		return storage.NewSliceCursor(nil, nil), nil
	}
	factory := func(instance int, input storage.Cursor) (tablefunc.TableFunction, error) {
		if instance < 0 || instance >= len(tasks) {
			return nil, fmt.Errorf("sjoin: no tasks for instance %d", instance)
		}
		jf, err := newJoinFn(a, b, cfg, tasks[instance])
		if err != nil {
			return nil, err
		}
		// All instances share cfg.Trace (stage aggregates are atomic),
		// so one per-query trace sums the parallel instances' work.
		return tablefunc.Traced(jf, cfg.Trace), nil
	}
	return tablefunc.Parallel(cursors, factory, cfg.FetchBatch), nil
}
