package sjoin

import (
	"testing"

	"spatialtf/internal/datagen"
	"spatialtf/internal/idxbuild"
	"spatialtf/internal/quadtree"
)

func buildQSource(t testing.TB, name string, ds datagen.Dataset, level int) (QSource, Source) {
	t.Helper()
	tab, _, err := datagen.LoadTable(name, ds)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := quadtree.NewGrid(ds.Bounds, level)
	if err != nil {
		t.Fatal(err)
	}
	qidx, _, err := idxbuild.CreateQuadtree(tab, "geom", grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	tree, _, err := idxbuild.CreateRtree(tab, "geom", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	return QSource{Table: tab, Column: "geom", Index: qidx},
		Source{Table: tab, Column: "geom", Tree: tree}
}

func TestQuadtreeJoinEqualsRtreeJoin(t *testing.T) {
	qa, sa := buildQSource(t, "stars", datagen.Stars(500, 37), 7)
	cfg := DefaultConfig()
	cur, err := IndexJoin(sa, sa, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CollectPairs(cur)
	if err != nil {
		t.Fatal(err)
	}
	SortPairs(want)
	got, err := QuadtreeJoin(qa, qa, cfg)
	if err != nil {
		t.Fatal(err)
	}
	SortPairs(got)
	if !pairsEqual(got, want) {
		t.Fatalf("quadtree join %d pairs, rtree join %d", len(got), len(want))
	}
	if len(got) == 0 {
		t.Fatalf("degenerate test: empty join result")
	}
}

func TestQuadtreeJoinCountiesEqualsBruteForce(t *testing.T) {
	qa, sa := buildQSource(t, "counties", datagen.Counties(64, 41), 6)
	cfg := DefaultConfig()
	want := bruteForce(t, sa, sa, cfg)
	got, err := QuadtreeJoin(qa, qa, cfg)
	if err != nil {
		t.Fatal(err)
	}
	SortPairs(got)
	if !pairsEqual(got, want) {
		t.Fatalf("quadtree join %d pairs, brute force %d", len(got), len(want))
	}
}

func TestQuadtreeJoinRejectsDistance(t *testing.T) {
	qa, _ := buildQSource(t, "stars", datagen.Stars(50, 43), 6)
	cfg := DefaultConfig()
	cfg.Distance = 5
	if _, err := QuadtreeJoin(qa, qa, cfg); err == nil {
		t.Fatalf("distance quadtree join: want error")
	}
}
