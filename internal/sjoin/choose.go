package sjoin

import (
	"fmt"
	"runtime"
)

// This file is the adaptive plan choice for the spatial join: pick the
// grid-partitioned, subtree-pair, or nested-loop path from the
// operands' cardinalities, MBR density, and the worker count. The
// choice is a heuristic over index metadata only — it never touches
// base-table geometries — so planning stays O(fanout).

// Algo names a join evaluation path.
type Algo uint8

// Join algorithms selectable through Config/JoinOptions.
const (
	// AlgoAuto lets ChoosePlan pick from the cost model.
	AlgoAuto Algo = iota
	// AlgoNested is the pre-9i baseline: iterate the first table, probe
	// the second table's index per row.
	AlgoNested
	// AlgoSubtree is the paper's §4.1 path: synchronized R-tree
	// traversal, parallelised over the subtree-pair cross product.
	AlgoSubtree
	// AlgoGrid is the grid-partitioned path: uniform tiles, per-tile
	// plane sweep, dynamic dealing of tiles to instances.
	AlgoGrid
)

// String returns the algorithm's hint spelling.
func (a Algo) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoNested:
		return "nested"
	case AlgoSubtree:
		return "subtree"
	case AlgoGrid:
		return "grid"
	default:
		return fmt.Sprintf("algo(%d)", uint8(a))
	}
}

// ParseAlgo resolves a hint string ("" and "auto" mean the cost model;
// "nested", "subtree", "grid" force a path).
func ParseAlgo(s string) (Algo, error) {
	switch s {
	case "", "auto":
		return AlgoAuto, nil
	case "nested":
		return AlgoNested, nil
	case "subtree", "rtree":
		return AlgoSubtree, nil
	case "grid":
		return AlgoGrid, nil
	default:
		return AlgoAuto, fmt.Errorf("sjoin: unknown join algorithm %q (want auto, nested, subtree, or grid)", s)
	}
}

// Cost-model thresholds (documented in DESIGN.md §14).
const (
	// chooseNestedMaxOuter: with an operand this small, per-row index
	// probes beat building any parallel partitioning.
	chooseNestedMaxOuter = 64
	// chooseNestedMaxCross bounds the other side too — a tiny outer
	// over a huge inner still pays one index descent per outer row.
	chooseNestedMaxCross = 1 << 16
	// chooseMaxReplication: above this estimated average number of tile
	// copies per rectangle, grid partitioning overhead (replication +
	// classification) outweighs its balance advantage and the
	// subtree-pair path wins.
	chooseMaxReplication = 4.0
	// chooseReplicationSample bounds how many leaf entries the extent
	// estimate reads.
	chooseReplicationSample = 256
)

// normWorkers resolves a requested degree of parallelism: non-positive
// means "use every core" (runtime.GOMAXPROCS(0)).
func normWorkers(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// PlanChoice is the outcome of the cost model.
type PlanChoice struct {
	// Algo is the selected path (never AlgoAuto).
	Algo Algo
	// Workers is the resolved degree of parallelism.
	Workers int
	// Replication is the estimated average number of tile copies per
	// rectangle for the grid that would be built (0 when not computed).
	Replication float64
	// Reason is a one-line explanation for EXPLAIN output.
	Reason string
}

// ChoosePlan picks the join path for the given operands. workers <= 0
// resolves to GOMAXPROCS.
func ChoosePlan(a, b Source, cfg Config, workers int) PlanChoice {
	workers = normWorkers(workers)
	nA, nB := a.Tree.Len(), b.Tree.Len()
	minN := nA
	if nB < minN {
		minN = nB
	}
	switch {
	case nA == 0 || nB == 0:
		return PlanChoice{Algo: AlgoSubtree, Workers: 1,
			Reason: "empty operand: any path is trivial"}
	case minN <= chooseNestedMaxOuter && nA*nB <= chooseNestedMaxCross:
		return PlanChoice{Algo: AlgoNested, Workers: 1,
			Reason: fmt.Sprintf("tiny input (%d x %d rows): per-row index probes beat partitioning", nA, nB)}
	case workers <= 1:
		return PlanChoice{Algo: AlgoSubtree, Workers: 1,
			Reason: "single worker: serial synchronized R-tree traversal"}
	}
	repl := estimateReplication(a, b, cfg, workers)
	if repl > chooseMaxReplication {
		return PlanChoice{Algo: AlgoSubtree, Workers: workers, Replication: repl,
			Reason: fmt.Sprintf("dense extents: estimated grid replication %.1fx > %.1fx, subtree pairs replicate nothing", repl, chooseMaxReplication)}
	}
	return PlanChoice{Algo: AlgoGrid, Workers: workers, Replication: repl,
		Reason: fmt.Sprintf("%d workers, estimated grid replication %.1fx <= %.1fx: tiles balance better than subtree pairs", workers, repl, chooseMaxReplication)}
}

// estimateReplication predicts the average number of tile copies per
// rectangle for the grid GridShape would build: sampled mean entry
// extents (plus the distance expansion on the first side) against the
// cell dimensions, (1 + w/cellW) * (1 + h/cellH).
func estimateReplication(a, b Source, cfg Config, workers int) float64 {
	nA, nB := a.Tree.Len(), b.Tree.Len()
	cols, rows := GridShape(nA, nB, workers)
	bounds := a.Tree.Bounds().Expand(cfg.Distance).Union(b.Tree.Bounds())
	cellW := bounds.Width() / float64(cols)
	cellH := bounds.Height() / float64(rows)
	if cellW <= 0 || cellH <= 0 {
		return 1
	}
	wA, hA, kA := sampleMeanExtent(a)
	wB, hB, kB := sampleMeanExtent(b)
	if kA+kB == 0 {
		return 1
	}
	// Weight each side by its cardinality; the distance expansion
	// widens the first side by d on every edge.
	d := cfg.Distance
	fa, fb := float64(nA), float64(nB)
	w := ((wA+2*d)*fa + wB*fb) / (fa + fb)
	h := ((hA+2*d)*fa + hB*fb) / (fa + fb)
	return (1 + w/cellW) * (1 + h/cellH)
}

// sampleMeanExtent estimates the mean entry width/height of a source by
// reading a few leaves (the leftmost and rightmost root-to-leaf paths —
// biased but O(height + fanout), which is what planning can afford).
func sampleMeanExtent(s Source) (w, h float64, n int) {
	if s.Tree.Len() == 0 {
		return 0, 0, 0
	}
	var sumW, sumH float64
	for _, side := range []int{0, 1} {
		cur := s.Tree.Root()
		for !cur.IsLeaf() {
			i := 0
			if side == 1 {
				i = cur.NumEntries() - 1
			}
			cur = cur.Child(i)
		}
		for i := 0; i < cur.NumEntries() && n < chooseReplicationSample; i++ {
			m := cur.EntryMBR(i)
			sumW += m.Width()
			sumH += m.Height()
			n++
		}
		if s.Tree.Height() <= 1 {
			break // single node: both paths are the same leaf
		}
	}
	if n == 0 {
		return 0, 0, 0
	}
	return sumW / float64(n), sumH / float64(n), n
}
