package sjoin

import (
	"sync"
	"sync/atomic"

	"spatialtf/internal/geom"
	"spatialtf/internal/storage"
)

// DefaultGeomCacheBytes is the default byte budget of the decoded-
// geometry cache — a few megabytes, the same order as the candidate
// array ("determined by existing memory resources" per the paper).
const DefaultGeomCacheBytes = 8 << 20

// geomCacheShards spreads the cache over independently locked shards so
// parallel join instances do not serialise on one mutex.
const geomCacheShards = 16

// GeomCache is a bounded, sharded LRU of decoded geometries keyed by
// (table, column, rowid). The join's secondary filter fetches exact
// geometries through it, so the sorted candidate drain stops re-decoding
// the same base-table cell: a cell whose geometry was decoded for one
// candidate batch (or by the other join operand of a self-join) is
// served from memory. The column is part of the key because a table may
// carry several GEOMETRY columns, each independently indexable. Rowids
// are never reused by the heap (deletes tombstone), so a cached entry
// can never go stale.
//
// All methods are safe for concurrent use; a cache may be shared across
// joins, join instances, and index kinds (the R-tree and quadtree joins
// both fetch through it).
type GeomCache struct {
	shards [geomCacheShards]geomShard
	hits   atomic.Int64
	misses atomic.Int64
}

// geomKey identifies one cached geometry: a geometry-typed cell.
type geomKey struct {
	tab *storage.Table
	col int
	id  storage.RowID
}

// geomEntry is one cached geometry on an intrusive LRU list.
type geomEntry struct {
	key        geomKey
	g          geom.Geometry
	size       int
	prev, next *geomEntry
}

// geomShard is one lock domain: an LRU list (head = most recent) plus
// its lookup map and byte accounting.
type geomShard struct {
	mu       sync.Mutex
	maxBytes int
	curBytes int
	entries  map[geomKey]*geomEntry
	head     *geomEntry
	tail     *geomEntry
}

// NewGeomCache returns a cache bounded to maxBytes of decoded geometry
// (0 selects DefaultGeomCacheBytes). The budget is split evenly across
// the shards.
func NewGeomCache(maxBytes int) *GeomCache {
	if maxBytes <= 0 {
		maxBytes = DefaultGeomCacheBytes
	}
	c := &GeomCache{}
	per := maxBytes / geomCacheShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].maxBytes = per
		c.shards[i].entries = make(map[geomKey]*geomEntry)
	}
	return c
}

// shardFor picks the shard of a key. Rowids are (page, slot); pages are
// sequential, so a multiplicative hash spreads neighbouring pages.
func (c *GeomCache) shardFor(k geomKey) *geomShard {
	h := ((uint64(k.id.Page)+uint64(k.col)<<24)*0x9E3779B97F4A7C15 + uint64(k.id.Slot)) >> 32
	return &c.shards[h%geomCacheShards]
}

// Get returns the cached geometry of column col of (tab, id), if present.
func (c *GeomCache) Get(tab *storage.Table, col int, id storage.RowID) (geom.Geometry, bool) {
	k := geomKey{tab: tab, col: col, id: id}
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return geom.Geometry{}, false
	}
	s.moveToFront(e)
	g := e.g
	s.mu.Unlock()
	c.hits.Add(1)
	return g, true
}

// Put stores the decoded geometry of column col of (tab, id), evicting
// least-recently used entries if the shard overflows its byte budget.
// Geometries larger than the whole shard budget are not cached. A re-put
// of a resident key replaces the stored geometry rather than assuming the
// caller passed identical data.
func (c *GeomCache) Put(tab *storage.Table, col int, id storage.RowID, g geom.Geometry) {
	k := geomKey{tab: tab, col: col, id: id}
	size := geomSizeBytes(g)
	s := c.shardFor(k)
	if size > s.maxBytes {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok {
		s.curBytes += size - e.size
		e.g, e.size = g, size
		s.moveToFront(e)
	} else {
		e := &geomEntry{key: k, g: g, size: size}
		s.entries[k] = e
		s.pushFront(e)
		s.curBytes += size
	}
	for s.curBytes > s.maxBytes && s.tail != nil {
		s.evict(s.tail)
	}
}

// CacheStats is a point-in-time summary of cache effectiveness.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Bytes   int64
	Entries int64
}

// Hits returns the lifetime hit count — a cheap read for scrape-time
// counter views (Stats locks every shard).
func (c *GeomCache) Hits() int64 { return c.hits.Load() }

// Misses returns the lifetime miss count.
func (c *GeomCache) Misses() int64 { return c.misses.Load() }

// Stats returns the cache counters. Hits/Misses count Get outcomes over
// the cache lifetime; Bytes/Entries are the current residency.
func (c *GeomCache) Stats() CacheStats {
	st := CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Bytes += int64(s.curBytes)
		st.Entries += int64(len(s.entries))
		s.mu.Unlock()
	}
	return st
}

// --- shard list plumbing (callers hold s.mu) ---

func (s *geomShard) pushFront(e *geomEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *geomShard) unlink(e *geomEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *geomShard) moveToFront(e *geomEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *geomShard) evict(e *geomEntry) {
	s.unlink(e)
	delete(s.entries, e.key)
	s.curBytes -= e.size
}

// geomSizeBytes estimates the in-memory footprint of a decoded geometry:
// struct headers plus 16 bytes per vertex, recursing into collection
// elements. An estimate is enough — the budget bounds memory order, not
// exact bytes.
func geomSizeBytes(g geom.Geometry) int {
	const header = 96 // Geometry struct + map entry + LRU entry overhead
	n := header + 16*len(g.Pts)
	for _, r := range g.Rings {
		n += 24 + 16*len(r)
	}
	for _, e := range g.Elems {
		n += geomSizeBytes(e)
	}
	return n
}

// resolveCache returns the cache a join should fetch through: the
// explicitly shared instance if set, a private one sized by
// GeomCacheBytes otherwise, or nil when caching is disabled.
func (c Config) resolveCache() *GeomCache {
	if c.GeomCache != nil {
		return c.GeomCache
	}
	if c.GeomCacheBytes < 0 {
		return nil
	}
	return NewGeomCache(c.GeomCacheBytes)
}

// cachedFetch fetches the geometry column col of (tab, id) through
// cache (which may be nil). hit reports whether the base-table fetch
// was avoided.
func cachedFetch(cache *GeomCache, tab *storage.Table, col int, id storage.RowID) (g geom.Geometry, hit bool, err error) {
	if cache != nil {
		if g, ok := cache.Get(tab, col, id); ok {
			return g, true, nil
		}
	}
	v, err := tab.FetchColumn(id, col)
	if err != nil {
		return geom.Geometry{}, false, err
	}
	if cache != nil {
		cache.Put(tab, col, id, v.G)
	}
	return v.G, false, nil
}
