package sjoin

import (
	"math"
	"slices"
	"sync/atomic"
	"time"

	"spatialtf/internal/geom"
	"spatialtf/internal/rtree"
	"spatialtf/internal/storage"
	"spatialtf/internal/tablefunc"
	"spatialtf/internal/telemetry"
)

// This file implements the grid-partitioned parallel join: a uniform
// W×H grid over the joint extent of both inputs, a per-tile plane sweep
// as the primary filter, and dynamic dealing of tiles to the parallel
// table-function instances (work stealing over a shared tile cursor
// instead of the static subtree-pair partitioning of §4.1).
//
// Replicated rectangles would produce duplicate result pairs, so each
// copy of an entry is tagged with its two-layer class for that tile
// (Tsitsigkos et al., "Two-layer Space-oriented Partitioning for
// Non-point Data"): whether the entry's low-x and low-y coordinates
// fall inside the tile. A pair is reported by the one tile that
// contains the bottom-left corner of the pair's MBR intersection, which
// is exactly the tile where the classes of the two entries OR to
// "both starts present" — one bit test per candidate pair, no
// reference-point arithmetic and no global dedup pass.

// Entry classes. classXStart marks a copy whose (distance-expanded) low
// x lies in the tile's column; classYStart the same for low y and the
// tile's row. The four A/B/C/D classes of the paper are the four bit
// combinations: A = both (the MBR starts in this tile), B = y only
// (entered from the west), C = x only (entered from the south),
// D = neither (entered diagonally).
const (
	classXStart uint8 = 1
	classYStart uint8 = 2
	// classBoth is the acceptance mask: a candidate pair is emitted in
	// the tile where the ORed classes cover both starts.
	classBoth uint8 = classXStart | classYStart
)

// tileEntry is one copy of an input rectangle assigned to a tile. The
// coordinates are the original (unexpanded) MBR — a distance join
// expands the first side inline during the sweep, exactly as sweepPair
// does, so assignment and sweep agree bit-for-bit.
type tileEntry struct {
	xlo, ylo, xhi, yhi float64
	id                 storage.RowID
	class              uint8
}

// Grid is the uniform partitioning of the joint extent.
type Grid struct {
	Bounds     geom.MBR
	Cols, Rows int

	cellW, cellH float64
}

// NewGrid partitions bounds into cols×rows equal tiles.
func NewGrid(bounds geom.MBR, cols, rows int) Grid {
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return Grid{
		Bounds: bounds,
		Cols:   cols,
		Rows:   rows,
		cellW:  (bounds.MaxX - bounds.MinX) / float64(cols),
		cellH:  (bounds.MaxY - bounds.MinY) / float64(rows),
	}
}

// ColOf returns the column containing x, clamped to the grid. Tiles are
// half-open ([lo, hi)) so every coordinate maps to exactly one tile;
// clamping keeps the class algebra consistent for coordinates at or
// beyond the boundary (everything left of the grid "starts" in
// column 0, everything right of it in the last column). The clamping
// also makes ColOf/RowOf a total ownership function over the plane,
// which is what the cluster layer shards reference points by.
func (g Grid) ColOf(x float64) int {
	if g.cellW <= 0 {
		return 0
	}
	c := int((x - g.Bounds.MinX) / g.cellW)
	if c < 0 {
		return 0
	}
	if c >= g.Cols {
		return g.Cols - 1
	}
	return c
}

// RowOf returns the row containing y, clamped to the grid.
func (g Grid) RowOf(y float64) int {
	if g.cellH <= 0 {
		return 0
	}
	r := int((y - g.Bounds.MinY) / g.cellH)
	if r < 0 {
		return 0
	}
	if r >= g.Rows {
		return g.Rows - 1
	}
	return r
}

// Tiles returns the tile count.
func (g Grid) Tiles() int { return g.Cols * g.Rows }

// Grid sizing: enough tiles that dynamic dealing can balance skew
// (several tiles per worker) without shrinking tiles so far that
// replication dominates.
const (
	// gridTargetPerTile is the combined input cardinality one tile aims
	// to hold.
	gridTargetPerTile = 128
	// gridTilesPerWorker is the minimum tile-to-worker ratio; dynamic
	// dealing needs a margin of tiles per instance to smooth skew.
	gridTilesPerWorker = 8
	// gridMaxTiles caps the grid so tiny inputs with many workers don't
	// allocate a huge, mostly-empty grid.
	gridMaxTiles = 1 << 14
)

// GridShape picks the grid dimensions from the input cardinalities and
// the worker count: the larger of (input size / target tile load) and
// (a few tiles per worker), capped, as a square grid.
func GridShape(nA, nB, workers int) (cols, rows int) {
	workers = normWorkers(workers)
	t := (nA + nB) / gridTargetPerTile
	if m := workers * gridTilesPerWorker; t < m {
		t = m
	}
	if t > gridMaxTiles {
		t = gridMaxTiles
	}
	if t < 1 {
		t = 1
	}
	side := int(math.Ceil(math.Sqrt(float64(t))))
	return side, side
}

// gridTile holds the two per-tile entry lists, in xlo order (the inputs
// are sorted once globally before assignment, so appends preserve sweep
// order and no per-tile sort is needed).
type gridTile struct {
	ra, rb []tileEntry
}

// cost estimates a tile's sweep work for the longest-first queue order.
func (t *gridTile) cost() float64 {
	return float64(len(t.ra)) * float64(len(t.rb))
}

// gridState is the shared state of one grid join: the tile queue in
// longest-first order and the atomic claim cursor the parallel
// instances steal tiles from. Per-tile sweep times land in tileNanos —
// each tile is claimed by exactly one instance, so the writes are to
// distinct indexes and race-free.
type gridState struct {
	grid      Grid
	d         float64 // join distance (first side expanded by it)
	tiles     []gridTile
	next      atomic.Int64
	tileNanos []int64
}

// claim steals the next unclaimed tile index, or -1 when the queue is
// exhausted. This is the dynamic dealing: instances that finish early
// keep claiming, so a skewed tile delays only the instance holding it.
func (gs *gridState) claim() int {
	k := gs.next.Add(1) - 1
	if k >= int64(len(gs.tiles)) {
		return -1
	}
	return int(k)
}

// assignGrid appends one side's items to the dense tile array, tagging
// each copy with its class. expand widens the rectangles for tile
// assignment and class computation (the distance-join expansion of the
// first side); the stored coordinates stay unexpanded.
func assignGrid(dense []gridTile, g Grid, items []rtree.Item, expand float64, sideA bool) {
	for _, it := range items {
		c0 := g.ColOf(it.MBR.MinX - expand)
		c1 := g.ColOf(it.MBR.MaxX + expand)
		r0 := g.RowOf(it.MBR.MinY - expand)
		r1 := g.RowOf(it.MBR.MaxY + expand)
		e := tileEntry{
			xlo: it.MBR.MinX, ylo: it.MBR.MinY,
			xhi: it.MBR.MaxX, yhi: it.MBR.MaxY,
			id: it.ID,
		}
		for r := r0; r <= r1; r++ {
			base := r * g.Cols
			for c := c0; c <= c1; c++ {
				e.class = 0
				if c == c0 {
					e.class |= classXStart
				}
				if r == r0 {
					e.class |= classYStart
				}
				t := &dense[base+c]
				if sideA {
					t.ra = append(t.ra, e)
				} else {
					t.rb = append(t.rb, e)
				}
			}
		}
	}
}

// byMinX orders items for the global pre-assignment sort; per-tile
// lists inherit the order, which is what the tile sweep requires.
func byMinX(p, q rtree.Item) int {
	switch {
	case p.MBR.MinX < q.MBR.MinX:
		return -1
	case p.MBR.MinX > q.MBR.MinX:
		return 1
	default:
		return 0
	}
}

// buildGridState materialises both inputs, sizes the grid, assigns and
// classifies every rectangle, and queues the non-empty tiles longest
// first. Returns nil when either side is empty (the join is empty).
func buildGridState(a, b Source, cfg Config, workers int) *gridState {
	itemsA := a.Tree.Items()
	itemsB := itemsA
	if a.Tree != b.Tree {
		itemsB = b.Tree.Items()
	}
	if len(itemsA) == 0 || len(itemsB) == 0 {
		return nil
	}
	d := cfg.Distance
	bounds := a.Tree.Bounds().Expand(d).Union(b.Tree.Bounds())
	cols, rows := GridShape(len(itemsA), len(itemsB), workers)
	if cfg.GridTiles > 0 {
		t := cfg.GridTiles
		if t > gridMaxTiles {
			t = gridMaxTiles
		}
		side := int(math.Ceil(math.Sqrt(float64(t))))
		cols, rows = side, side
	}
	g := NewGrid(bounds, cols, rows)
	slices.SortFunc(itemsA, byMinX)
	if a.Tree != b.Tree {
		slices.SortFunc(itemsB, byMinX)
	}
	dense := make([]gridTile, g.Tiles())
	assignGrid(dense, g, itemsA, d, true)
	assignGrid(dense, g, itemsB, 0, false)
	gs := &gridState{grid: g, d: d}
	for i := range dense {
		if len(dense[i].ra) == 0 || len(dense[i].rb) == 0 {
			continue // a one-sided tile can produce no pairs
		}
		gs.tiles = append(gs.tiles, dense[i])
	}
	// Longest first: under dynamic dealing the expensive tiles are
	// claimed while everyone is still busy, so a straggler can't start
	// last and extend the makespan on its own.
	slices.SortStableFunc(gs.tiles, func(p, q gridTile) int {
		cp, cq := p.cost(), q.cost()
		switch {
		case cp > cq:
			return -1
		case cp < cq:
			return 1
		default:
			return 0
		}
	})
	gs.tileNanos = make([]int64, len(gs.tiles))
	return gs
}

// sweepTile runs the forward plane sweep of one tile, calling emit once
// for every candidate pair the tile owns: x intervals (first side
// expanded by the join distance) overlap, y intervals overlap, the
// two classes OR to classBoth, and — for distance joins — the exact
// rectangle distance is within d. Identical structure to sweepPair;
// both lists are already in xlo order.
func (gs *gridState) sweepTile(t *gridTile, emit func(a, b *tileEntry)) {
	d := gs.d
	ea, eb := t.ra, t.rb
	i, k := 0, 0
	for i < len(ea) && k < len(eb) {
		if ea[i].xlo-d <= eb[k].xlo {
			e := &ea[i]
			xmax := e.xhi + d
			ylo, yhi := e.ylo-d, e.yhi+d
			for kk := k; kk < len(eb) && eb[kk].xlo <= xmax; kk++ {
				o := &eb[kk]
				if o.ylo > yhi || o.yhi < ylo {
					continue
				}
				if e.class|o.class != classBoth {
					continue
				}
				if d > 0 && !tileDistOK(e, o, d) {
					continue
				}
				emit(e, o)
			}
			i++
		} else {
			e := &eb[k]
			for ii := i; ii < len(ea) && ea[ii].xlo-d <= e.xhi; ii++ {
				o := &ea[ii]
				if o.ylo-d > e.yhi || o.yhi+d < e.ylo {
					continue
				}
				if e.class|o.class != classBoth {
					continue
				}
				if d > 0 && !tileDistOK(o, e, d) {
					continue
				}
				emit(o, e)
			}
			k++
		}
	}
}

// tileDistOK is sweepDistOK on tile entries: exact rectangle distance
// between the unexpanded MBRs (a is the first side) within d.
func tileDistOK(a, b *tileEntry, d float64) bool {
	dx := math.Max(0, math.Max(b.xlo-a.xhi, a.xlo-b.xhi))
	dy := math.Max(0, math.Max(b.ylo-a.yhi, a.ylo-b.yhi))
	if dx == 0 {
		return dy <= d
	}
	if dy == 0 {
		return dx <= d
	}
	return math.Hypot(dx, dy) <= d
}

// GridJoinFunction is one parallel instance of the grid join: it steals
// tiles from the shared state, sweeps each into the candidate array,
// and reuses the JoinFunction secondary filter (sorted fetch, geometry
// cache, exact predicate) unchanged.
type GridJoinFunction struct {
	j  *JoinFunction
	gs *gridState
}

// newGridJoinFn builds one instance over the shared grid state.
func newGridJoinFn(a, b Source, cfg Config, gs *gridState) (*GridJoinFunction, error) {
	j, err := newJoinFn(a, b, cfg, nil)
	if err != nil {
		return nil, err
	}
	return &GridJoinFunction{j: j, gs: gs}, nil
}

// Start implements TableFunction (the grid state is prebuilt and
// shared, so instances start empty-handed).
func (g *GridJoinFunction) Start() error { return nil }

// Fetch implements TableFunction: drain verified results, then claim
// and sweep tiles until the candidate array has a batch worth of work,
// then drain it through the secondary filter.
func (g *GridJoinFunction) Fetch(max int) ([]storage.Row, error) {
	j := g.j
	//spatiallint:ignore hotalloc per-batch output buffer, amortised over max rows
	out := make([]storage.Row, 0, max)
	var ar pairArena
	//spatiallint:ignore hotalloc per-batch row slabs, two allocations amortised over max rows
	ar.init(max)
	for len(out) < max {
		if len(j.ready) > 0 {
			p := j.ready[0]
			j.ready = j.ready[1:]
			out = append(out, ar.row(p))
			continue
		}
		for len(j.cands) < j.cfg.CandidateCap {
			ti := g.gs.claim()
			if ti < 0 {
				break
			}
			//spatiallint:ignore hotalloc span closure only allocates when a telemetry sink is attached, once per tile sweep not per row
			end := j.span(telemetry.StageTileSweep)
			t0 := time.Now()
			g.gs.sweepTile(&g.gs.tiles[ti], func(a, b *tileEntry) {
				j.cands = append(j.cands, Pair{A: a.id, B: b.id})
				j.stats.Candidates++
			})
			g.gs.tileNanos[ti] = int64(time.Since(t0))
			end()
			j.stats.TilesSwept++
		}
		if len(j.cands) == 0 {
			break // queue exhausted and nothing pending: done
		}
		if err := j.secondaryFilter(); err != nil {
			return nil, err
		}
	}
	j.flushStats()
	return out, nil
}

// Close implements TableFunction.
func (g *GridJoinFunction) Close() error { return g.j.Close() }

// Stats returns the instance's accumulated work counters.
func (g *GridJoinFunction) Stats() JoinStats { return g.j.Stats() }

// GridParallelJoin evaluates the spatial join on the grid-partitioned
// parallel path: build and classify the grid once, then run `workers`
// table-function instances that steal tiles dynamically. The returned
// cursor merges the instances' pipelined outputs (order unspecified);
// the result-pair set is identical to the other join paths.
func GridParallelJoin(a, b Source, cfg Config, workers int) (storage.Cursor, error) {
	cfg = cfg.withDefaults()
	// One shared decoded-geometry cache across instances, as in
	// ParallelIndexJoin.
	cfg.GeomCache = cfg.resolveCache()
	workers = normWorkers(workers)
	if _, err := a.geomColumn(); err != nil {
		return nil, err
	}
	if _, err := b.geomColumn(); err != nil {
		return nil, err
	}
	endPart := stageSpan(cfg.Instr, cfg.Trace, telemetry.StageGridPartition)
	gs := buildGridState(a, b, cfg, workers)
	endPart()
	if gs == nil || len(gs.tiles) == 0 {
		return storage.NewSliceCursor(nil, nil), nil
	}
	if workers > len(gs.tiles) {
		workers = len(gs.tiles)
	}
	cursors := make([]storage.Cursor, workers)
	for i := range cursors {
		// The instances' input "partition" is the shared tile queue;
		// the per-instance cursors are positional placeholders.
		cursors[i] = storage.NewSliceCursor(nil, nil)
	}
	factory := func(instance int, input storage.Cursor) (tablefunc.TableFunction, error) {
		fn, err := newGridJoinFn(a, b, cfg, gs)
		if err != nil {
			return nil, err
		}
		return tablefunc.Traced(fn, cfg.Trace), nil
	}
	return tablefunc.Parallel(cursors, factory, cfg.FetchBatch), nil
}

// GridSimResult reports a simulated grid-parallel run (see simulate.go
// for why simulation: hosts with fewer cores than the requested degree
// cannot show the speedup in wall clock).
type GridSimResult struct {
	// Pairs is the join result (identical to the goroutine execution up
	// to order).
	Pairs []Pair
	// Elapsed is the simulated makespan: tiles are timed serially and
	// list-scheduled greedily onto `workers` virtual processors in
	// queue (longest-first) order — the schedule dynamic dealing
	// produces when every claim goes to the first free instance.
	Elapsed time.Duration
	// InstanceTimes are the virtual processors' busy times; their max
	// is Elapsed, their sum approximates the 1-processor time.
	InstanceTimes []time.Duration
	// TileTimes are the per-tile costs (sweep plus that tile's share of
	// the secondary filter), in queue order. Max/mean is the skew the
	// benchmarks report.
	TileTimes []time.Duration
	// Grid is the partitioning used.
	Grid Grid
	// Stats aggregates the work counters.
	Stats JoinStats
}

// TileSkew returns the max and mean per-tile time; their ratio is the
// skew factor the benchmarks report (1.0 = perfectly even tiles).
func (r GridSimResult) TileSkew() (max, mean time.Duration) {
	if len(r.TileTimes) == 0 {
		return 0, 0
	}
	var sum time.Duration
	for _, d := range r.TileTimes {
		sum += d
		if d > max {
			max = d
		}
	}
	return max, sum / time.Duration(len(r.TileTimes))
}

// SimulateGridJoin runs the grid join under the deterministic
// multi-processor simulator: each tile's full cost (sweep + secondary
// drain) is measured serially, then the longest-first tile queue is
// greedily list-scheduled onto `workers` virtual processors — the
// assignment dynamic dealing converges to. Results are identical to
// GridParallelJoin.
func SimulateGridJoin(a, b Source, cfg Config, workers int) (GridSimResult, error) {
	cfg = cfg.withDefaults()
	cfg.GeomCache = cfg.resolveCache()
	workers = normWorkers(workers)
	if _, err := a.geomColumn(); err != nil {
		return GridSimResult{}, err
	}
	if _, err := b.geomColumn(); err != nil {
		return GridSimResult{}, err
	}
	gs := buildGridState(a, b, cfg, workers)
	if gs == nil {
		return GridSimResult{}, nil
	}
	fn, err := newGridJoinFn(a, b, cfg, gs)
	if err != nil {
		return GridSimResult{}, err
	}
	j := fn.j
	res := GridSimResult{Grid: gs.grid}
	for ti := range gs.tiles {
		t0 := time.Now()
		gs.sweepTile(&gs.tiles[ti], func(a, b *tileEntry) {
			j.cands = append(j.cands, Pair{A: a.id, B: b.id})
			j.stats.Candidates++
		})
		j.stats.TilesSwept++
		if err := j.secondaryFilter(); err != nil {
			j.Close()
			return GridSimResult{}, err
		}
		res.TileTimes = append(res.TileTimes, time.Since(t0))
		res.Pairs = append(res.Pairs, j.ready...)
		j.ready = j.ready[:0]
	}
	res.Stats = j.Stats()
	j.Close()
	// Greedy list schedule in queue order: each tile goes to the least
	// loaded virtual processor, exactly what claiming off the shared
	// cursor achieves when instances claim as they free up.
	loads := make([]time.Duration, workers)
	for _, d := range res.TileTimes {
		w := 0
		for i := 1; i < workers; i++ {
			if loads[i] < loads[w] {
				w = i
			}
		}
		loads[w] += d
	}
	res.InstanceTimes = loads
	for _, l := range loads {
		if l > res.Elapsed {
			res.Elapsed = l
		}
	}
	return res, nil
}
