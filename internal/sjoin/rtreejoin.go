package sjoin

import (
	"fmt"
	"math"
	"slices"
	"time"

	"spatialtf/internal/geom"
	"spatialtf/internal/rtree"
	"spatialtf/internal/storage"
	"spatialtf/internal/tablefunc"
	"spatialtf/internal/telemetry"
)

// JoinFunction is the spatial_join pipelined table function of §4.2. Its state
// across fetch calls is:
//
//   - a stack of R-tree node pairs still to be traversed (seeded in the
//     start method with the subtree-root pairs passed in), and
//   - the bounded candidate array filled by the index (primary) filter
//     and drained by the geometry (secondary) filter.
//
// Each fetch call resumes the traversal from the stack, refilling the
// candidate array as it empties, evaluating candidates exactly, and
// returning up to the requested number of result rowid pairs. When the
// stack and array are empty the fetch returns an empty collection and
// the subsequent close releases resources.
type JoinFunction struct {
	cfg Config

	// Operand tables for the secondary filter.
	tabA, tabB *storage.Table
	colA, colB int

	// Decoded-geometry cache consulted by the secondary filter (nil when
	// disabled). Shared across instances when Config.GeomCache is set.
	cache *GeomCache

	// Roots to traverse: the single (rootA, rootB) pair for the serial
	// join, or this instance's share of the subtree-pair cross product
	// for the parallel join.
	roots []nodePair

	// Traversal stack.
	stack []nodePair

	// Candidate array (primary-filter output awaiting exact check).
	cands []Pair

	// Verified results not yet returned by fetch.
	ready []Pair

	// Plane-sweep scratch: the two entry lists of the current node pair,
	// sorted by low x. Reused across node pairs to avoid allocation.
	sweepA, sweepB []sweepEntry

	// Statistics, reported through JoinStats.
	stats JoinStats

	// Shared telemetry (nil when disabled): instr receives counter
	// deltas and stage latencies, trace is the per-query span sink,
	// flushed remembers what stats already reached instr.
	instr   *Instruments
	trace   *telemetry.Trace
	flushed JoinStats

	// Sampled geometry-fetch spans, pending until flushGeomSpans: gfSeq
	// picks the 1-in-16 sample, gfPending counts every fetch exactly,
	// gfNanos holds the scaled sampled duration. Plain ints — only this
	// instance touches them.
	gfSeq     int64
	gfPending int64
	gfNanos   int64
}

// nodePair is one unit of synchronized traversal.
type nodePair struct {
	a, b rtree.NodeRef
}

// sweepEntry is one node slot in plane-sweep order: its rectangle plus
// the slot index it came from (to recover rowids/children after the
// sort permutes the list).
type sweepEntry struct {
	xlo, xhi, ylo, yhi float64
	idx                int32
}

// JoinStats counts the work a join did; benches report them.
type JoinStats struct {
	// NodePairsVisited counts stack pops (index-level work).
	NodePairsVisited int
	// NodeAccesses counts index node reads — the logical "buffer gets"
	// a disk-resident execution would issue against the index segments.
	// The synchronized tree join reads the two nodes of each visited
	// pair; the nested loop re-descends the inner index per outer row.
	NodeAccesses int
	// Candidates counts primary-filter survivors.
	Candidates int
	// Results counts exact-predicate survivors.
	Results int
	// GeomFetches counts base-table geometry fetches in the secondary
	// filter (cache hits on the sorted outer side avoid fetches).
	GeomFetches int
	// FastAccepts counts pairs proven intersecting from interior
	// approximations alone, skipping the secondary filter entirely.
	FastAccepts int
	// CacheHits / CacheMisses count decoded-geometry cache lookups by
	// the secondary filter (both zero when the cache is disabled).
	CacheHits   int
	CacheMisses int
	// TilesSwept counts grid tiles swept by the grid-partitioned path
	// (zero on the R-tree paths).
	TilesSwept int
}

// add accumulates another instance's counters (simulators and parallel
// aggregation).
func (s *JoinStats) add(o JoinStats) {
	s.NodePairsVisited += o.NodePairsVisited
	s.NodeAccesses += o.NodeAccesses
	s.Candidates += o.Candidates
	s.Results += o.Results
	s.GeomFetches += o.GeomFetches
	s.FastAccepts += o.FastAccepts
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.TilesSwept += o.TilesSwept
}

// newJoinFn builds the function for the given root pairs.
func newJoinFn(a, b Source, cfg Config, roots []nodePair) (*JoinFunction, error) {
	colA, err := a.geomColumn()
	if err != nil {
		return nil, err
	}
	colB, err := b.geomColumn()
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &JoinFunction{
		cfg:   cfg,
		tabA:  a.Table,
		tabB:  b.Table,
		colA:  colA,
		colB:  colB,
		cache: cfg.resolveCache(),
		roots: roots,
		instr: cfg.Instr,
		trace: cfg.Trace,
	}, nil
}

// Start implements TableFunction: "the metadata of the two R-tree
// indexes ... is loaded and the subtree roots ... are pushed onto a
// stack".
func (j *JoinFunction) Start() error {
	j.stack = append(j.stack[:0], j.roots...)
	return nil
}

// Fetch implements TableFunction: resume the join from the stack and
// return up to max result pairs.
func (j *JoinFunction) Fetch(max int) ([]storage.Row, error) {
	//spatiallint:ignore hotalloc per-batch output buffer, amortised over max rows
	out := make([]storage.Row, 0, max)
	var ar pairArena
	//spatiallint:ignore hotalloc per-batch row slabs, two allocations amortised over max rows
	ar.init(max)
	for len(out) < max {
		// Drain verified results first.
		if len(j.ready) > 0 {
			p := j.ready[0]
			j.ready = j.ready[1:]
			out = append(out, ar.row(p))
			continue
		}
		// Refill the candidate array by resuming the index traversal.
		if len(j.stack) > 0 {
			//spatiallint:ignore hotalloc span closure only allocates when a telemetry sink is attached, once per refill not per row
			end := j.span(telemetry.StagePrimary)
			j.fillCandidates()
			end()
		}
		if len(j.cands) == 0 {
			break // stack empty and no candidates: join complete
		}
		if err := j.secondaryFilter(); err != nil {
			return nil, err
		}
	}
	j.flushStats()
	return out, nil
}

// flushGeomSpans moves the pending sampled geometry-fetch spans to the
// shared trace (one pair of atomic adds per drain, not per fetch).
func (j *JoinFunction) flushGeomSpans() {
	if j.gfPending == 0 {
		return
	}
	j.trace.Add(telemetry.StageGeomFetch, time.Duration(j.gfNanos), j.gfPending)
	j.gfPending, j.gfNanos = 0, 0
}

// Close implements TableFunction.
func (j *JoinFunction) Close() error {
	j.flushGeomSpans()
	j.flushStats()
	j.stack = nil
	j.cands = nil
	j.ready = nil
	j.sweepA = nil
	j.sweepB = nil
	return nil
}

// Stats returns the accumulated work counters.
func (j *JoinFunction) Stats() JoinStats { return j.stats }

// fillCandidates runs the synchronized R-tree traversal until the
// candidate array reaches capacity or the stack empties — the primary
// (index MBR) filter. Equal-height node pairs are intersected either by
// a forward plane sweep over xlo-sorted entry lists (default, O(n log n
// + output) instead of the O(n·m) nested scan) or by the nested scan
// when the pair is small or Config.NestedPrimaryFilter is set.
func (j *JoinFunction) fillCandidates() {
	for len(j.stack) > 0 && len(j.cands) < j.cfg.CandidateCap {
		top := j.stack[len(j.stack)-1]
		j.stack = j.stack[:len(j.stack)-1]
		j.stats.NodePairsVisited++
		j.stats.NodeAccesses += 2
		a, b := top.a, top.b
		fastAccept := j.cfg.UseInteriorApprox && j.cfg.Distance == 0 && j.cfg.Mask == geom.MaskAnyInteract
		switch {
		case a.IsLeaf() && b.IsLeaf():
			if j.useSweep(a, b) {
				j.sweepPair(a, b, func(ai, bi int) { j.emitLeafPair(a, b, ai, bi, fastAccept) })
			} else {
				for i := 0; i < a.NumEntries(); i++ {
					ma := a.EntryMBR(i)
					for k := 0; k < b.NumEntries(); k++ {
						if j.cfg.primaryAccepts(ma, b.EntryMBR(k)) {
							j.emitLeafPair(a, b, i, k, fastAccept)
						}
					}
				}
			}
		case !a.IsLeaf() && !b.IsLeaf():
			// Descend both sides, pairing children whose MBRs interact.
			if j.useSweep(a, b) {
				j.sweepPair(a, b, func(ai, bi int) {
					j.stack = append(j.stack, nodePair{a.Child(ai), b.Child(bi)})
				})
			} else {
				for i := 0; i < a.NumEntries(); i++ {
					ma := a.EntryMBR(i)
					for k := 0; k < b.NumEntries(); k++ {
						if j.cfg.primaryAccepts(ma, b.EntryMBR(k)) {
							j.stack = append(j.stack, nodePair{a.Child(i), b.Child(k)})
						}
					}
				}
			}
		case a.IsLeaf():
			// Unequal heights: descend only the taller (b) side.
			for k := 0; k < b.NumEntries(); k++ {
				if j.cfg.primaryAccepts(a.MBR(), b.EntryMBR(k)) {
					j.stack = append(j.stack, nodePair{a, b.Child(k)})
				}
			}
		default:
			for i := 0; i < a.NumEntries(); i++ {
				if j.cfg.primaryAccepts(a.EntryMBR(i), b.MBR()) {
					j.stack = append(j.stack, nodePair{a.Child(i), b})
				}
			}
		}
	}
}

// emitLeafPair routes one primary-filter survivor from a leaf×leaf node
// pair: fast-accepted into the ready queue when the interior
// approximations prove intersection, otherwise into the candidate array
// for the secondary filter.
func (j *JoinFunction) emitLeafPair(a, b rtree.NodeRef, ai, bi int, fastAccept bool) {
	if fastAccept {
		ia := a.EntryInterior(ai)
		ib := b.EntryInterior(bi)
		// Interior rectangles are subsets of the exact geometries, so
		// any of these conditions proves intersection without a
		// geometry fetch.
		if (ia.Area() > 0 && ib.Area() > 0 && ia.Intersects(ib)) ||
			(ia.Area() > 0 && ia.Contains(b.EntryMBR(bi))) ||
			(ib.Area() > 0 && ib.Contains(a.EntryMBR(ai))) {
			j.ready = append(j.ready, Pair{A: a.EntryID(ai), B: b.EntryID(bi)})
			j.stats.Results++
			j.stats.FastAccepts++
			return
		}
	}
	j.cands = append(j.cands, Pair{A: a.EntryID(ai), B: b.EntryID(bi)})
	j.stats.Candidates++
}

// useSweep decides the intersection algorithm for an equal-height node
// pair: plane sweep unless disabled or the pair is too small to
// amortise the two sorts.
func (j *JoinFunction) useSweep(a, b rtree.NodeRef) bool {
	if j.cfg.NestedPrimaryFilter {
		return false
	}
	return a.NumEntries()+b.NumEntries() >= j.cfg.SweepThreshold
}

// sweepPair runs a forward plane sweep over the entries of nodes a and
// b, calling emit(ai, bi) once for every entry pair accepted by the
// primary filter — the same pair set, in a different order, as the
// nested scan. Both entry lists are copied into the reusable scratch
// slices and sorted on low x; the sweep then advances through the two
// lists in xlo order, and for each entry scans forward in the other
// list while x intervals (expanded by the join distance) overlap,
// checking y overlap per pair. For distance joins the x/y interval
// tests are necessary but not sufficient (corner-to-corner distance
// exceeds either axis gap), so survivors take the exact MBR-distance
// check before emission.
func (j *JoinFunction) sweepPair(a, b rtree.NodeRef, emit func(ai, bi int)) {
	j.sweepA = fillSweep(j.sweepA, a)
	j.sweepB = fillSweep(j.sweepB, b)
	d := j.cfg.Distance
	ea, eb := j.sweepA, j.sweepB
	i, k := 0, 0
	for i < len(ea) && k < len(eb) {
		if ea[i].xlo <= eb[k].xlo {
			e := ea[i]
			xmax := e.xhi + d
			ylo, yhi := e.ylo-d, e.yhi+d
			for kk := k; kk < len(eb) && eb[kk].xlo <= xmax; kk++ {
				o := eb[kk]
				if o.ylo > yhi || o.yhi < ylo {
					continue
				}
				if d > 0 && !sweepDistOK(e, o, d) {
					continue
				}
				emit(int(e.idx), int(o.idx))
			}
			i++
		} else {
			e := eb[k]
			xmax := e.xhi + d
			ylo, yhi := e.ylo-d, e.yhi+d
			for ii := i; ii < len(ea) && ea[ii].xlo <= xmax; ii++ {
				o := ea[ii]
				if o.ylo > yhi || o.yhi < ylo {
					continue
				}
				if d > 0 && !sweepDistOK(o, e, d) {
					continue
				}
				emit(int(o.idx), int(e.idx))
			}
			k++
		}
	}
}

// fillSweep copies a node's structure-of-arrays rectangles into the
// scratch list and sorts it by low x for the sweep.
func fillSweep(dst []sweepEntry, r rtree.NodeRef) []sweepEntry {
	xlo, ylo, xhi, yhi := r.EntryRects()
	dst = dst[:0]
	for i := range xlo {
		dst = append(dst, sweepEntry{xlo: xlo[i], xhi: xhi[i], ylo: ylo[i], yhi: yhi[i], idx: int32(i)})
	}
	slices.SortFunc(dst, func(a, b sweepEntry) int {
		switch {
		case a.xlo < b.xlo:
			return -1
		case a.xlo > b.xlo:
			return 1
		default:
			return 0
		}
	})
	return dst
}

// sweepDistOK is the exact distance-join acceptance on sweep entries:
// the rectangle distance (diagonal across both axis gaps, matching
// geom.MBR.Dist) is within d.
func sweepDistOK(a, b sweepEntry, d float64) bool {
	dx := math.Max(0, math.Max(b.xlo-a.xhi, a.xlo-b.xhi))
	dy := math.Max(0, math.Max(b.ylo-a.yhi, a.ylo-b.yhi))
	if dx == 0 {
		return dy <= d
	}
	if dy == 0 {
		return dx <= d
	}
	return math.Hypot(dx, dy) <= d
}

// secondaryFilter drains the candidate array: fetch exact geometries and
// keep pairs satisfying the exact predicate. Per §4.2 the candidates are
// sorted on the first rowid before fetching (Shekhar et al. show optimal
// fetch order is NP-complete and rowid-sort is within ~20% of the best
// approximations); sorting also lets consecutive candidates sharing the
// first rowid reuse one fetched geometry. Fetches on both sides go
// through the decoded-geometry cache, so repeated rowids — across
// candidate batches, join sides of a self-join, or parallel instances
// sharing a cache — skip the base-table decode entirely.
func (j *JoinFunction) secondaryFilter() error {
	if j.cfg.SortCandidates {
		//spatiallint:ignore hotalloc span closure only allocates when a telemetry sink is attached, once per sort not per row
		end := j.span(telemetry.StageSort)
		slices.SortFunc(j.cands, comparePairs)
		end()
	}
	//spatiallint:ignore hotalloc span closure only allocates when a telemetry sink is attached, once per drain not per row
	endDrain := j.span(telemetry.StageSecondary)
	defer func() {
		j.flushGeomSpans()
		endDrain()
	}()
	var (
		curID   storage.RowID
		curGeom geom.Geometry
		haveCur bool
	)
	for _, p := range j.cands {
		if !haveCur || curID != p.A {
			g, err := j.fetchGeom(j.tabA, j.colA, p.A)
			if err != nil {
				return err
			}
			curID, curGeom, haveCur = p.A, g, true
		}
		gb, err := j.fetchGeom(j.tabB, j.colB, p.B)
		if err != nil {
			return err
		}
		//spatiallint:ignore hotalloc Relate visited-ring scratch only runs on the exact-mask predicate, bounded by parts per geometry
		if j.cfg.secondaryAccepts(curGeom, gb) {
			j.ready = append(j.ready, p)
			j.stats.Results++
		}
	}
	j.cands = j.cands[:0]
	return nil
}

// geomSampleMask times one geometry fetch in 16 and scales the sampled
// duration up: per-fetch clock reads are the one per-candidate cost, so
// even a traced query only pays them on the sample.
const geomSampleMask = 15

// fetchGeom resolves one geometry for the secondary filter through the
// cache, maintaining the fetch and cache counters. When a per-query
// trace is attached, fetches are counted exactly but timed by sampling:
// the pending totals sit in plain per-instance fields and reach the
// shared trace through flushGeomSpans once per drain.
func (j *JoinFunction) fetchGeom(tab *storage.Table, col int, id storage.RowID) (geom.Geometry, error) {
	var t0 time.Time
	sampled := false
	if j.trace != nil {
		sampled = j.gfSeq&geomSampleMask == 0
		j.gfSeq++
		j.gfPending++
		if sampled {
			t0 = time.Now()
		}
	}
	//spatiallint:ignore hotalloc a cache miss must decode and retain the geometry; hits are allocation-free
	g, hit, err := cachedFetch(j.cache, tab, col, id)
	if sampled {
		j.gfNanos += int64(time.Since(t0)) * (geomSampleMask + 1)
	}
	if err != nil {
		return geom.Geometry{}, fmt.Errorf("sjoin: fetch %v from %q: %w", id, tab.Name(), err)
	}
	if hit {
		j.stats.CacheHits++
		return g, nil
	}
	j.stats.GeomFetches++
	if j.cache != nil {
		j.stats.CacheMisses++
	}
	return g, nil
}

// IndexJoin evaluates the spatial join of a and b through a single
// pipelined spatial_join table function — the §4 formulation
//
//	select rid1, rid2 from TABLE(spatial_join(tabA, colA, tabB, colB, mask))
//
// The returned cursor streams (rid1, rid2) rows; decode with
// PairFromRow or drain with CollectPairs.
func IndexJoin(a, b Source, cfg Config) (storage.Cursor, error) {
	fn, err := NewJoinFunction(a, b, cfg)
	if err != nil {
		return nil, err
	}
	return tablefunc.Pipeline(tablefunc.Traced(fn, cfg.Trace), cfg.FetchBatch), nil
}

// RunJoinFunction drives a join function to completion and returns the
// result-pair count and the work counters — the evaluation loop of a
// "select count(*)" over the table function, used by the benchmarks.
func RunJoinFunction(fn *JoinFunction, batch int) (int, JoinStats, error) {
	if batch <= 0 {
		batch = tablefunc.DefaultBatch
	}
	if err := fn.Start(); err != nil {
		return 0, fn.Stats(), err
	}
	defer fn.Close()
	count := 0
	for {
		rows, err := fn.Fetch(batch)
		if err != nil {
			return count, fn.Stats(), err
		}
		if len(rows) == 0 {
			return count, fn.Stats(), nil
		}
		count += len(rows)
	}
}

// NewJoinFunction returns the spatial_join table function joining the
// roots of both indexes, for callers that drive start-fetch-close
// directly (the facade and tests).
func NewJoinFunction(a, b Source, cfg Config) (*JoinFunction, error) {
	var roots []nodePair
	if a.Tree.Len() > 0 && b.Tree.Len() > 0 {
		roots = []nodePair{{a.Tree.Root(), b.Tree.Root()}}
	}
	return newJoinFn(a, b, cfg, roots)
}
