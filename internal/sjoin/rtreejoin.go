package sjoin

import (
	"fmt"
	"sort"

	"spatialtf/internal/geom"
	"spatialtf/internal/rtree"
	"spatialtf/internal/storage"
	"spatialtf/internal/tablefunc"
)

// JoinFunction is the spatial_join pipelined table function of §4.2. Its state
// across fetch calls is:
//
//   - a stack of R-tree node pairs still to be traversed (seeded in the
//     start method with the subtree-root pairs passed in), and
//   - the bounded candidate array filled by the index (primary) filter
//     and drained by the geometry (secondary) filter.
//
// Each fetch call resumes the traversal from the stack, refilling the
// candidate array as it empties, evaluating candidates exactly, and
// returning up to the requested number of result rowid pairs. When the
// stack and array are empty the fetch returns an empty collection and
// the subsequent close releases resources.
type JoinFunction struct {
	cfg Config

	// Operand tables for the secondary filter.
	tabA, tabB *storage.Table
	colA, colB int

	// Roots to traverse: the single (rootA, rootB) pair for the serial
	// join, or this instance's share of the subtree-pair cross product
	// for the parallel join.
	roots []nodePair

	// Traversal stack.
	stack []nodePair

	// Candidate array (primary-filter output awaiting exact check).
	cands []Pair

	// Verified results not yet returned by fetch.
	ready []Pair

	// Statistics, reported through JoinStats.
	stats JoinStats
}

// nodePair is one unit of synchronized traversal.
type nodePair struct {
	a, b rtree.NodeRef
}

// JoinStats counts the work a join did; benches report them.
type JoinStats struct {
	// NodePairsVisited counts stack pops (index-level work).
	NodePairsVisited int
	// NodeAccesses counts index node reads — the logical "buffer gets"
	// a disk-resident execution would issue against the index segments.
	// The synchronized tree join reads the two nodes of each visited
	// pair; the nested loop re-descends the inner index per outer row.
	NodeAccesses int
	// Candidates counts primary-filter survivors.
	Candidates int
	// Results counts exact-predicate survivors.
	Results int
	// GeomFetches counts base-table geometry fetches in the secondary
	// filter (cache hits on the sorted outer side avoid fetches).
	GeomFetches int
	// FastAccepts counts pairs proven intersecting from interior
	// approximations alone, skipping the secondary filter entirely.
	FastAccepts int
}

// newJoinFn builds the function for the given root pairs.
func newJoinFn(a, b Source, cfg Config, roots []nodePair) (*JoinFunction, error) {
	colA, err := a.geomColumn()
	if err != nil {
		return nil, err
	}
	colB, err := b.geomColumn()
	if err != nil {
		return nil, err
	}
	return &JoinFunction{
		cfg:   cfg.withDefaults(),
		tabA:  a.Table,
		tabB:  b.Table,
		colA:  colA,
		colB:  colB,
		roots: roots,
	}, nil
}

// Start implements TableFunction: "the metadata of the two R-tree
// indexes ... is loaded and the subtree roots ... are pushed onto a
// stack".
func (j *JoinFunction) Start() error {
	j.stack = append(j.stack[:0], j.roots...)
	return nil
}

// Fetch implements TableFunction: resume the join from the stack and
// return up to max result pairs.
func (j *JoinFunction) Fetch(max int) ([]storage.Row, error) {
	out := make([]storage.Row, 0, max)
	for len(out) < max {
		// Drain verified results first.
		if len(j.ready) > 0 {
			p := j.ready[0]
			j.ready = j.ready[1:]
			out = append(out, pairRow(p))
			continue
		}
		// Refill the candidate array by resuming the index traversal.
		if len(j.stack) > 0 {
			j.fillCandidates()
		}
		if len(j.cands) == 0 {
			break // stack empty and no candidates: join complete
		}
		if err := j.secondaryFilter(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Close implements TableFunction.
func (j *JoinFunction) Close() error {
	j.stack = nil
	j.cands = nil
	j.ready = nil
	return nil
}

// Stats returns the accumulated work counters.
func (j *JoinFunction) Stats() JoinStats { return j.stats }

// fillCandidates runs the synchronized R-tree traversal until the
// candidate array reaches capacity or the stack empties — the primary
// (index MBR) filter.
func (j *JoinFunction) fillCandidates() {
	for len(j.stack) > 0 && len(j.cands) < j.cfg.CandidateCap {
		top := j.stack[len(j.stack)-1]
		j.stack = j.stack[:len(j.stack)-1]
		j.stats.NodePairsVisited++
		j.stats.NodeAccesses += 2
		a, b := top.a, top.b
		fastAccept := j.cfg.UseInteriorApprox && j.cfg.Distance == 0 && j.cfg.Mask == geom.MaskAnyInteract
		switch {
		case a.IsLeaf() && b.IsLeaf():
			for i := 0; i < a.NumEntries(); i++ {
				ma := a.EntryMBR(i)
				var ia geom.MBR
				if fastAccept {
					ia = a.EntryInterior(i)
				}
				for k := 0; k < b.NumEntries(); k++ {
					mb := b.EntryMBR(k)
					if !j.cfg.primaryAccepts(ma, mb) {
						continue
					}
					if fastAccept {
						ib := b.EntryInterior(k)
						// Interior rectangles are subsets of the exact
						// geometries, so any of these conditions proves
						// intersection without a geometry fetch.
						if (ia.Area() > 0 && ib.Area() > 0 && ia.Intersects(ib)) ||
							(ia.Area() > 0 && ia.Contains(mb)) ||
							(ib.Area() > 0 && ib.Contains(ma)) {
							j.ready = append(j.ready, Pair{A: a.EntryID(i), B: b.EntryID(k)})
							j.stats.Results++
							j.stats.FastAccepts++
							continue
						}
					}
					j.cands = append(j.cands, Pair{A: a.EntryID(i), B: b.EntryID(k)})
					j.stats.Candidates++
				}
			}
		case !a.IsLeaf() && !b.IsLeaf():
			// Descend both sides, pairing children whose MBRs interact.
			for i := 0; i < a.NumEntries(); i++ {
				ma := a.EntryMBR(i)
				for k := 0; k < b.NumEntries(); k++ {
					if j.cfg.primaryAccepts(ma, b.EntryMBR(k)) {
						j.stack = append(j.stack, nodePair{a.Child(i), b.Child(k)})
					}
				}
			}
		case a.IsLeaf():
			// Unequal heights: descend only the taller (b) side.
			for k := 0; k < b.NumEntries(); k++ {
				if j.cfg.primaryAccepts(a.MBR(), b.EntryMBR(k)) {
					j.stack = append(j.stack, nodePair{a, b.Child(k)})
				}
			}
		default:
			for i := 0; i < a.NumEntries(); i++ {
				if j.cfg.primaryAccepts(a.EntryMBR(i), b.MBR()) {
					j.stack = append(j.stack, nodePair{a.Child(i), b})
				}
			}
		}
	}
}

// secondaryFilter drains the candidate array: fetch exact geometries and
// keep pairs satisfying the exact predicate. Per §4.2 the candidates are
// sorted on the first rowid before fetching (Shekhar et al. show optimal
// fetch order is NP-complete and rowid-sort is within ~20% of the best
// approximations); sorting also lets consecutive candidates sharing the
// first rowid reuse one fetched geometry.
func (j *JoinFunction) secondaryFilter() error {
	if j.cfg.SortCandidates {
		sort.Slice(j.cands, func(i, k int) bool { return j.cands[i].Less(j.cands[k]) })
	}
	var (
		curID   storage.RowID
		curGeom geom.Geometry
		haveCur bool
	)
	for _, p := range j.cands {
		if !haveCur || curID != p.A {
			v, err := j.tabA.FetchColumn(p.A, j.colA)
			if err != nil {
				return fmt.Errorf("sjoin: fetch %v from %q: %w", p.A, j.tabA.Name(), err)
			}
			curID, curGeom, haveCur = p.A, v.G, true
			j.stats.GeomFetches++
		}
		v, err := j.tabB.FetchColumn(p.B, j.colB)
		if err != nil {
			return fmt.Errorf("sjoin: fetch %v from %q: %w", p.B, j.tabB.Name(), err)
		}
		j.stats.GeomFetches++
		if j.cfg.secondaryAccepts(curGeom, v.G) {
			j.ready = append(j.ready, p)
			j.stats.Results++
		}
	}
	j.cands = j.cands[:0]
	return nil
}

// IndexJoin evaluates the spatial join of a and b through a single
// pipelined spatial_join table function — the §4 formulation
//
//	select rid1, rid2 from TABLE(spatial_join(tabA, colA, tabB, colB, mask))
//
// The returned cursor streams (rid1, rid2) rows; decode with
// PairFromRow or drain with CollectPairs.
func IndexJoin(a, b Source, cfg Config) (storage.Cursor, error) {
	fn, err := NewJoinFunction(a, b, cfg)
	if err != nil {
		return nil, err
	}
	return tablefunc.Pipeline(fn, cfg.FetchBatch), nil
}

// RunJoinFunction drives a join function to completion and returns the
// result-pair count and the work counters — the evaluation loop of a
// "select count(*)" over the table function, used by the benchmarks.
func RunJoinFunction(fn *JoinFunction, batch int) (int, JoinStats, error) {
	if batch <= 0 {
		batch = tablefunc.DefaultBatch
	}
	if err := fn.Start(); err != nil {
		return 0, fn.Stats(), err
	}
	defer fn.Close()
	count := 0
	for {
		rows, err := fn.Fetch(batch)
		if err != nil {
			return count, fn.Stats(), err
		}
		if len(rows) == 0 {
			return count, fn.Stats(), nil
		}
		count += len(rows)
	}
}

// NewJoinFunction returns the spatial_join table function joining the
// roots of both indexes, for callers that drive start-fetch-close
// directly (the facade and tests).
func NewJoinFunction(a, b Source, cfg Config) (*JoinFunction, error) {
	var roots []nodePair
	if a.Tree.Len() > 0 && b.Tree.Len() > 0 {
		roots = []nodePair{{a.Tree.Root(), b.Tree.Root()}}
	}
	return newJoinFn(a, b, cfg, roots)
}
