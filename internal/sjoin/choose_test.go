package sjoin

import (
	"testing"

	"spatialtf/internal/datagen"
)

func TestParseAlgo(t *testing.T) {
	cases := map[string]Algo{
		"":        AlgoAuto,
		"auto":    AlgoAuto,
		"nested":  AlgoNested,
		"subtree": AlgoSubtree,
		"rtree":   AlgoSubtree,
		"grid":    AlgoGrid,
	}
	for s, want := range cases {
		got, err := ParseAlgo(s)
		if err != nil || got != want {
			t.Errorf("ParseAlgo(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseAlgo("bogus"); err == nil {
		t.Errorf("ParseAlgo(bogus): want error")
	}
	for _, a := range []Algo{AlgoAuto, AlgoNested, AlgoSubtree, AlgoGrid} {
		back, err := ParseAlgo(a.String())
		if err != nil || back != a {
			t.Errorf("round trip %v -> %q -> %v, %v", a, a.String(), back, err)
		}
	}
}

func TestChoosePlan(t *testing.T) {
	cfg := DefaultConfig()
	big := buildSource(t, "big", datagen.Counties(2000, 61))
	tiny := buildSource(t, "tiny", datagen.Counties(20, 62))

	pc := ChoosePlan(tiny, tiny, cfg, 8)
	if pc.Algo != AlgoNested {
		t.Errorf("tiny input chose %v (%s), want nested", pc.Algo, pc.Reason)
	}
	pc = ChoosePlan(big, big, cfg, 1)
	if pc.Algo != AlgoSubtree || pc.Workers != 1 {
		t.Errorf("single worker chose %v/%d (%s), want subtree/1", pc.Algo, pc.Workers, pc.Reason)
	}
	pc = ChoosePlan(big, big, cfg, 8)
	if pc.Algo != AlgoGrid || pc.Workers != 8 {
		t.Errorf("8 workers on uniform data chose %v/%d (%s), want grid/8", pc.Algo, pc.Workers, pc.Reason)
	}
	if pc.Replication <= 0 {
		t.Errorf("grid choice reported no replication estimate: %+v", pc)
	}
	if pc.Reason == "" {
		t.Errorf("empty reason")
	}
	// Non-positive workers resolve to GOMAXPROCS.
	pc = ChoosePlan(big, big, cfg, 0)
	if pc.Workers < 1 {
		t.Errorf("workers = %d, want >= 1", pc.Workers)
	}
}

// TestChoosePlanDenseExtents: rectangles spanning most of the space
// replicate into nearly every tile, so the model must fall back to the
// subtree path.
func TestChoosePlanDenseExtents(t *testing.T) {
	ds := datagen.Counties(1500, 63)
	// Inflate every geometry's extent by replacing the dataset with
	// block groups whose sizes are huge relative to cells: use a
	// distance join to force the expansion instead — the same effect
	// (first side widened by d on every edge) through a public knob.
	src := buildSource(t, "d", ds)
	cfg := DefaultConfig()
	cfg.Distance = 400 // world is 1000x1000; cells are far smaller
	pc := ChoosePlan(src, src, cfg, 8)
	if pc.Algo != AlgoSubtree {
		t.Errorf("dense extents chose %v (repl %.1f, %s), want subtree", pc.Algo, pc.Replication, pc.Reason)
	}
}

func TestNormWorkers(t *testing.T) {
	if got := normWorkers(4); got != 4 {
		t.Errorf("normWorkers(4) = %d", got)
	}
	if got := normWorkers(0); got < 1 {
		t.Errorf("normWorkers(0) = %d, want GOMAXPROCS >= 1", got)
	}
	if got := normWorkers(-3); got < 1 {
		t.Errorf("normWorkers(-3) = %d", got)
	}
}

// TestSubtreePairsForWorkersIncremental pins the incremental descent to
// the reference semantics: the smallest level whose pruned cross
// product reaches workers*4 tasks, identical pair list in order.
func TestSubtreePairsForWorkersIncremental(t *testing.T) {
	a := buildSource(t, "a", datagen.Counties(900, 64))
	b := buildSource(t, "b", datagen.Counties(700, 65))
	cfg := DefaultConfig()
	for _, workers := range []int{1, 2, 4, 8, 32} {
		got := SubtreePairsForWorkers(a.Tree, b.Tree, workers, cfg)
		// Reference: re-enumerate from scratch per level.
		want := func() []PairOfRoots {
			maxD := min(a.Tree.Height(), b.Tree.Height()) - 1
			for d := 0; ; d++ {
				pairs := SubtreePairs(a.Tree, b.Tree, d, cfg)
				if len(pairs) >= workers*4 || d >= maxD {
					return pairs
				}
			}
		}()
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d pairs, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: pair %d differs", workers, i)
			}
		}
	}
}

// TestDealPairsLongestFirst checks the LPT dealing: deterministic, all
// tasks assigned exactly once, and max partition load no worse than
// round-robin on a skewed task list.
func TestDealPairsLongestFirst(t *testing.T) {
	a := buildSource(t, "a", datagen.BlockGroups(1200, 66))
	cfg := DefaultConfig()
	pairs := SubtreePairsForWorkers(a.Tree, a.Tree, 4, cfg)
	if len(pairs) < 8 {
		t.Skipf("only %d pairs", len(pairs))
	}
	parts := dealPairs(pairs, 4)
	parts2 := dealPairs(pairs, 4)
	total := 0
	for i := range parts {
		total += len(parts[i])
		if len(parts[i]) != len(parts2[i]) {
			t.Fatalf("dealing is nondeterministic")
		}
	}
	if total != len(pairs) {
		t.Fatalf("dealt %d of %d tasks", total, len(pairs))
	}
	cost := func(p nodePair) float64 {
		return float64(p.a.NumEntries()) * float64(p.b.NumEntries())
	}
	load := func(parts [][]nodePair) float64 {
		var max float64
		for _, part := range parts {
			var sum float64
			for _, p := range part {
				sum += cost(p)
			}
			if sum > max {
				max = sum
			}
		}
		return max
	}
	rr := make([][]nodePair, 4)
	for i, p := range pairs {
		rr[i%4] = append(rr[i%4], nodePair{p.A, p.B})
	}
	if lpt, rrMax := load(parts), load(rr); lpt > rrMax {
		t.Errorf("LPT max load %.0f worse than round-robin %.0f", lpt, rrMax)
	}
}
