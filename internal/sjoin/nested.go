package sjoin

import (
	"fmt"

	"spatialtf/internal/geom"
	"spatialtf/internal/rtree"
	"spatialtf/internal/storage"
)

// NestedLoop evaluates the join with the pre-table-function strategy the
// paper measures as the baseline: "iterate on the first table ...
// performing a spatial query on the second table using each geometry in
// the first table". Each outer row runs an index-assisted sdo_relate
// probe (primary filter on b's R-tree, then the exact predicate).
func NestedLoop(a, b Source, cfg Config) ([]Pair, error) {
	pairs, _, err := NestedLoopStats(a, b, cfg)
	return pairs, err
}

// NestedLoopStats is NestedLoop reporting work counters. NodeAccesses
// counts every inner-index node visited across all probes; repeated
// descents are counted each time, because a disk-resident execution
// pays a buffer get for each — this is the cost structure that makes
// the paper's nested loop ~6x slower than the tree join at scale.
func NestedLoopStats(a, b Source, cfg Config) ([]Pair, JoinStats, error) {
	cfg = cfg.withDefaults()
	var stats JoinStats
	colA, err := a.geomColumn()
	if err != nil {
		return nil, stats, err
	}
	colB, err := b.geomColumn()
	if err != nil {
		return nil, stats, err
	}
	cache := cfg.resolveCache()
	var pairs []Pair
	var probeErr error
	scanErr := a.Table.Scan(func(idA storage.RowID, row storage.Row) bool {
		gA := row[colA].G
		mA := geom.MBROf(gA)
		probe := func(it rtree.Item) bool {
			stats.Candidates++
			gB, hit, err := cachedFetch(cache, b.Table, colB, it.ID)
			if err != nil {
				probeErr = fmt.Errorf("sjoin: nested loop fetch %v: %w", it.ID, err)
				return false
			}
			if hit {
				stats.CacheHits++
			} else {
				stats.GeomFetches++
				if cache != nil {
					stats.CacheMisses++
				}
			}
			if cfg.secondaryAccepts(gA, gB) {
				pairs = append(pairs, Pair{A: idA, B: it.ID})
				stats.Results++
			}
			return true
		}
		if cfg.Distance > 0 {
			stats.NodeAccesses += b.Tree.SearchWithinDistCounted(mA, cfg.Distance, probe)
		} else {
			stats.NodeAccesses += b.Tree.SearchCounted(mA, probe)
		}
		return probeErr == nil
	})
	if scanErr != nil {
		return nil, stats, scanErr
	}
	if probeErr != nil {
		return nil, stats, probeErr
	}
	return pairs, stats, nil
}
