package sjoin

import (
	"testing"

	"spatialtf/internal/datagen"
	"spatialtf/internal/geom"
	"spatialtf/internal/idxbuild"
)

// buildInteriorSource loads ds and creates its R-tree with interior
// approximations.
func buildInteriorSource(t testing.TB, name string, ds datagen.Dataset) Source {
	t.Helper()
	tab, _, err := datagen.LoadTable(name, ds)
	if err != nil {
		t.Fatal(err)
	}
	tree, _, err := idxbuild.CreateRtreeOpts(tab, "geom", idxbuild.RtreeOptions{
		Workers:        1,
		InteriorEffort: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Source{Table: tab, Column: "geom", Tree: tree}
}

func TestInteriorJoinMatchesPlainJoin(t *testing.T) {
	ds := datagen.Stars(800, 211)
	plain := buildSource(t, "plain", ds)
	withInt := buildInteriorSource(t, "interior", ds)

	cfg := DefaultConfig()
	cur, err := IndexJoin(plain, plain, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CollectPairs(cur)
	if err != nil {
		t.Fatal(err)
	}
	SortPairs(want)

	icfg := cfg
	icfg.UseInteriorApprox = true
	fn, err := NewJoinFunction(withInt, withInt, icfg)
	if err != nil {
		t.Fatal(err)
	}
	count, stats, err := RunJoinFunction(fn, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same rowid layout in both tables (loaded identically), so counts
	// and pair sets must match.
	if count != len(want) {
		t.Fatalf("interior join %d pairs, plain join %d", count, len(want))
	}
	if stats.FastAccepts == 0 {
		t.Errorf("no fast accepts on overlapping star data")
	}
	// Fast accepts must reduce secondary-filter work.
	plainFn, err := NewJoinFunction(withInt, withInt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, plainStats, err := RunJoinFunction(plainFn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.GeomFetches >= plainStats.GeomFetches {
		t.Errorf("fast accepts did not reduce geometry fetches: %d vs %d",
			stats.GeomFetches, plainStats.GeomFetches)
	}
	// Exact pair-set equality.
	pcur, err := IndexJoin(withInt, withInt, icfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectPairs(pcur)
	if err != nil {
		t.Fatal(err)
	}
	SortPairs(got)
	if !pairsEqual(got, want) {
		t.Fatalf("interior join pair set differs from plain join")
	}
}

func TestInteriorFastAcceptDisabledCases(t *testing.T) {
	ds := datagen.Stars(300, 223)
	src := buildInteriorSource(t, "src", ds)

	// Distance joins must not use the fast accept (interior overlap
	// does not prove a distance bound tighter than 0, and the predicate
	// differs); verify results still match brute force.
	cfg := DefaultConfig()
	cfg.Distance = 2
	cfg.UseInteriorApprox = true
	fn, err := NewJoinFunction(src, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := RunJoinFunction(fn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FastAccepts != 0 {
		t.Errorf("distance join used %d fast accepts", stats.FastAccepts)
	}
	// TOUCH joins likewise.
	cfg = Config{Mask: geom.MaskTouch, SortCandidates: true, UseInteriorApprox: true}
	fn, err = NewJoinFunction(src, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err = RunJoinFunction(fn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FastAccepts != 0 {
		t.Errorf("touch join used %d fast accepts", stats.FastAccepts)
	}
	// Enabling the flag over an index without interiors is a no-op.
	plain := buildSource(t, "plain2", ds)
	cfg = DefaultConfig()
	cfg.UseInteriorApprox = true
	fn, err = NewJoinFunction(plain, plain, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err = RunJoinFunction(fn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FastAccepts != 0 {
		t.Errorf("interior-less index produced %d fast accepts", stats.FastAccepts)
	}
}

func TestInteriorJoinCounties(t *testing.T) {
	// Counties touch at boundaries; interiors never overlap across
	// distinct counties, but self-pairs fast-accept (interior ∩ interior
	// of the same polygon). The result set must match the plain join.
	ds := datagen.Counties(49, 227)
	src := buildInteriorSource(t, "counties_i", ds)
	cfg := DefaultConfig()
	icfg := cfg
	icfg.UseInteriorApprox = true

	cur, err := IndexJoin(src, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CollectPairs(cur)
	if err != nil {
		t.Fatal(err)
	}
	icur, err := IndexJoin(src, src, icfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectPairs(icur)
	if err != nil {
		t.Fatal(err)
	}
	SortPairs(want)
	SortPairs(got)
	if !pairsEqual(got, want) {
		t.Fatalf("interior counties join %d pairs, plain %d", len(got), len(want))
	}
}
