package sjoin

import (
	"time"

	"spatialtf/internal/telemetry"
)

// Instruments is the shared telemetry of the spatial join: registry
// counters for the work the per-instance JoinStats count, plus
// stage-latency histograms for the two-stage evaluation of §4.2. One
// Instruments is shared by every join (and every parallel instance) of
// a database — handles are lock-free atomics, so concurrent instances
// feed them directly.
//
// Counters are fed by delta flushes at fetch/close granularity (see
// JoinFunction.flushStats): the hot loops keep bumping plain ints in
// JoinStats and the registry sees the accumulated delta once per fetch
// batch, which keeps the per-candidate cost at zero.
type Instruments struct {
	NodePairs    *telemetry.Counter
	NodeAccesses *telemetry.Counter
	Candidates   *telemetry.Counter
	Results      *telemetry.Counter
	GeomFetches  *telemetry.Counter
	FastAccepts  *telemetry.Counter
	// TilesSwept counts grid tiles swept by the grid-partitioned path.
	TilesSwept *telemetry.Counter
	// Stage latencies, observed per batch-granular section: one
	// primary-filter refill, one candidate sort, one secondary-filter
	// drain.
	PrimarySeconds   *telemetry.Histogram
	SortSeconds      *telemetry.Histogram
	SecondarySeconds *telemetry.Histogram
	// Grid-path stage latencies: the one-time partition build, and one
	// observation per tile sweep — the per-tile histogram is the skew
	// signal (a long tail means uneven tiles).
	GridPartitionSeconds *telemetry.Histogram
	TileSweepSeconds     *telemetry.Histogram
}

// NewInstruments registers the join metric set on reg. On the Nop
// registry the returned instruments are usable no-ops.
func NewInstruments(reg *telemetry.Registry) *Instruments {
	return &Instruments{
		NodePairs:    reg.NewCounter("join_node_pairs_total", "R-tree node pairs visited by the primary filter"),
		NodeAccesses: reg.NewCounter("join_node_accesses_total", "index node reads issued by the join"),
		Candidates:   reg.NewCounter("join_candidates_total", "primary-filter survivors queued for the secondary filter"),
		Results:      reg.NewCounter("join_results_total", "exact-predicate survivors returned"),
		GeomFetches:  reg.NewCounter("join_geom_fetches_total", "base-table geometry fetches by the secondary filter"),
		FastAccepts:  reg.NewCounter("join_fast_accepts_total", "pairs accepted from interior approximations without a geometry fetch"),
		TilesSwept:   reg.NewCounter("join_tiles_swept_total", "grid tiles swept by the grid-partitioned join"),
		PrimarySeconds: reg.NewHistogram("join_primary_filter_seconds",
			"latency of one primary-filter candidate refill", nil),
		SortSeconds: reg.NewHistogram("join_candidate_sort_seconds",
			"latency of one candidate-array sort", nil),
		SecondarySeconds: reg.NewHistogram("join_secondary_filter_seconds",
			"latency of one secondary-filter drain", nil),
		GridPartitionSeconds: reg.NewHistogram("join_grid_partition_seconds",
			"latency of the grid-partitioned join's one-time partition build", nil),
		TileSweepSeconds: reg.NewHistogram("join_tile_sweep_seconds",
			"latency of one grid-tile plane sweep (the per-tile skew histogram)", nil),
	}
}

// observeStage records one batch-granular stage duration. Nil-safe.
func (in *Instruments) observeStage(s telemetry.Stage, d time.Duration) {
	if in == nil {
		return
	}
	switch s {
	case telemetry.StagePrimary:
		in.PrimarySeconds.Observe(d.Seconds())
	case telemetry.StageSort:
		in.SortSeconds.Observe(d.Seconds())
	case telemetry.StageSecondary:
		in.SecondarySeconds.Observe(d.Seconds())
	case telemetry.StageGridPartition:
		in.GridPartitionSeconds.Observe(d.Seconds())
	case telemetry.StageTileSweep:
		in.TileSweepSeconds.Observe(d.Seconds())
	}
}

// stageSpan opens a timed section for stage s, feeding both the shared
// instruments and the per-query trace. When neither sink is attached it
// returns a shared no-op and the clock is never read — the disabled
// join pays one nil check per batch, nothing per candidate.
func stageSpan(in *Instruments, tr *telemetry.Trace, s telemetry.Stage) func() {
	if in == nil && tr == nil {
		return nopSpan
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		in.observeStage(s, d)
		tr.Add(s, d, 1)
	}
}

// span is stageSpan over the join function's attached sinks.
func (j *JoinFunction) span(s telemetry.Stage) func() {
	return stageSpan(j.instr, j.trace, s)
}

var nopSpan = func() {}

// flushStats pushes the growth of the per-instance JoinStats since the
// last flush onto the shared instruments. Called once per fetch and at
// close, so the registry trails the hot loop by at most one batch.
func (j *JoinFunction) flushStats() {
	in := j.instr
	if in == nil {
		return
	}
	cur, prev := j.stats, j.flushed
	in.NodePairs.Add(int64(cur.NodePairsVisited - prev.NodePairsVisited))
	in.NodeAccesses.Add(int64(cur.NodeAccesses - prev.NodeAccesses))
	in.Candidates.Add(int64(cur.Candidates - prev.Candidates))
	in.Results.Add(int64(cur.Results - prev.Results))
	in.GeomFetches.Add(int64(cur.GeomFetches - prev.GeomFetches))
	in.FastAccepts.Add(int64(cur.FastAccepts - prev.FastAccepts))
	in.TilesSwept.Add(int64(cur.TilesSwept - prev.TilesSwept))
	j.flushed = cur
}
