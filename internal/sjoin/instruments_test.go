package sjoin

import (
	"strings"
	"sync"
	"testing"

	"spatialtf/internal/datagen"
	"spatialtf/internal/telemetry"
)

// lookupValue reads one counter from the registry, failing the test on
// a missing name.
func lookupValue(t *testing.T, reg *telemetry.Registry, name string) int64 {
	t.Helper()
	p, ok := reg.Lookup(name)
	if !ok {
		t.Fatalf("metric %q not registered", name)
	}
	return int64(p.Value)
}

// TestInstrumentsMatchJoinStats: after a join drains, the registry
// counters fed by the delta flushes must equal the per-instance
// JoinStats — the flush may trail by a batch, never diverge.
func TestInstrumentsMatchJoinStats(t *testing.T) {
	counties := buildSource(t, "counties", datagen.Counties(100, 31))
	stars := buildSource(t, "stars", datagen.Stars(400, 32))
	reg := telemetry.New()
	cfg := DefaultConfig()
	cfg.Instr = NewInstruments(reg)
	fn, err := NewJoinFunction(counties, stars, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, stats, err := RunJoinFunction(fn, 64)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("join produced no results; dataset too sparse for the test")
	}
	for _, c := range []struct {
		name string
		want int
	}{
		{"join_node_pairs_total", stats.NodePairsVisited},
		{"join_node_accesses_total", stats.NodeAccesses},
		{"join_candidates_total", stats.Candidates},
		{"join_results_total", stats.Results},
		{"join_geom_fetches_total", stats.GeomFetches},
		{"join_fast_accepts_total", stats.FastAccepts},
	} {
		if got := lookupValue(t, reg, c.name); got != int64(c.want) {
			t.Errorf("%s = %d, want %d (JoinStats)", c.name, got, c.want)
		}
	}
	// Stage histograms observed at batch granularity: at least one
	// primary refill and one secondary drain happened.
	for _, name := range []string{"join_primary_filter_seconds", "join_secondary_filter_seconds", "join_candidate_sort_seconds"} {
		p, ok := reg.Lookup(name)
		if !ok {
			t.Fatalf("metric %q not registered", name)
		}
		if p.Count == 0 {
			t.Errorf("%s observed nothing", name)
		}
	}
}

// TestParallelJoinConcurrentScrape is the -race gate of the telemetry
// migration: parallel join instances feed the shared instruments and a
// shared per-query trace while a scraper goroutine renders /metrics in
// a loop. Results must still match the uninstrumented serial join.
func TestParallelJoinConcurrentScrape(t *testing.T) {
	stars := buildSource(t, "stars", datagen.Stars(1200, 33))
	cfg := DefaultConfig()

	serialCur, err := IndexJoin(stars, stars, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CollectPairs(serialCur)
	if err != nil {
		t.Fatal(err)
	}
	SortPairs(want)

	reg := telemetry.New()
	tracer := telemetry.NewTracer(reg, -1, nil)
	cfg.Instr = NewInstruments(reg)
	cfg.Trace = tracer.Begin("parallel stars*stars")

	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				if err := reg.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	cur, err := ParallelIndexJoin(stars, stars, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectPairs(cur)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace.Finish()
	close(stop)
	scraper.Wait()

	SortPairs(got)
	if !pairsEqual(got, want) {
		t.Fatalf("instrumented parallel join: %d pairs, serial: %d", len(got), len(want))
	}
	if res := lookupValue(t, reg, "join_results_total"); res != int64(len(want)) {
		t.Errorf("join_results_total = %d, want %d", res, len(want))
	}
	// The shared trace accumulated stage spans from all instances.
	if _, n := cfg.Trace.StageTotal(telemetry.StageFetch); n == 0 {
		t.Error("shared trace saw no fetch spans")
	}
	if _, n := cfg.Trace.StageTotal(telemetry.StagePrimary); n == 0 {
		t.Error("shared trace saw no primary-filter spans")
	}
	if p, ok := reg.Lookup("query_seconds"); !ok || p.Count != 1 {
		t.Errorf("query_seconds count = %+v, want 1 observation", p)
	}
}
