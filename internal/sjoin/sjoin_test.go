package sjoin

import (
	"fmt"
	"testing"

	"spatialtf/internal/datagen"
	"spatialtf/internal/geom"
	"spatialtf/internal/idxbuild"
	"spatialtf/internal/storage"
)

// buildSource loads a dataset into a table and creates its R-tree.
func buildSource(t testing.TB, name string, ds datagen.Dataset) Source {
	t.Helper()
	tab, _, err := datagen.LoadTable(name, ds)
	if err != nil {
		t.Fatal(err)
	}
	tree, _, err := idxbuild.CreateRtree(tab, "geom", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	return Source{Table: tab, Column: "geom", Tree: tree}
}

// bruteForce computes the exact join result by exhaustive comparison.
func bruteForce(t testing.TB, a, b Source, cfg Config) []Pair {
	t.Helper()
	colA, err := a.geomColumn()
	if err != nil {
		t.Fatal(err)
	}
	colB, err := b.geomColumn()
	if err != nil {
		t.Fatal(err)
	}
	type ent struct {
		id storage.RowID
		g  geom.Geometry
	}
	var as, bs []ent
	a.Table.Scan(func(id storage.RowID, row storage.Row) bool {
		as = append(as, ent{id, row[colA].G})
		return true
	})
	b.Table.Scan(func(id storage.RowID, row storage.Row) bool {
		bs = append(bs, ent{id, row[colB].G})
		return true
	})
	var out []Pair
	for _, x := range as {
		for _, y := range bs {
			if cfg.secondaryAccepts(x.g, y.g) {
				out = append(out, Pair{A: x.id, B: y.id})
			}
		}
	}
	SortPairs(out)
	return out
}

func pairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIndexJoinEqualsBruteForce(t *testing.T) {
	counties := buildSource(t, "counties", datagen.Counties(100, 1))
	stars := buildSource(t, "stars", datagen.Stars(400, 2))
	cfg := DefaultConfig()

	cases := []struct {
		name string
		a, b Source
	}{
		{"counties-self", counties, counties},
		{"stars-self", stars, stars},
		{"counties-stars", counties, stars},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want := bruteForce(t, c.a, c.b, cfg)
			cur, err := IndexJoin(c.a, c.b, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := CollectPairs(cur)
			if err != nil {
				t.Fatal(err)
			}
			SortPairs(got)
			if !pairsEqual(got, want) {
				t.Fatalf("index join: %d pairs, brute force: %d", len(got), len(want))
			}
		})
	}
}

func TestNestedLoopEqualsIndexJoin(t *testing.T) {
	counties := buildSource(t, "counties", datagen.Counties(81, 3))
	cfg := DefaultConfig()
	nl, err := NestedLoop(counties, counties, cfg)
	if err != nil {
		t.Fatal(err)
	}
	SortPairs(nl)
	cur, err := IndexJoin(counties, counties, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ij, err := CollectPairs(cur)
	if err != nil {
		t.Fatal(err)
	}
	SortPairs(ij)
	if !pairsEqual(nl, ij) {
		t.Fatalf("nested loop %d pairs, index join %d pairs", len(nl), len(ij))
	}
	if len(nl) == 0 {
		t.Fatalf("degenerate test: no result pairs")
	}
}

func TestParallelJoinEqualsSerial(t *testing.T) {
	stars := buildSource(t, "stars", datagen.Stars(1500, 5))
	cfg := DefaultConfig()
	cur, err := IndexJoin(stars, stars, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CollectPairs(cur)
	if err != nil {
		t.Fatal(err)
	}
	SortPairs(want)
	for _, workers := range []int{1, 2, 3, 4, 8} {
		pc, err := ParallelIndexJoin(stars, stars, cfg, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := CollectPairs(pc)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		SortPairs(got)
		if !pairsEqual(got, want) {
			t.Fatalf("workers=%d: %d pairs, serial %d", workers, len(got), len(want))
		}
	}
}

func TestWithinDistanceJoin(t *testing.T) {
	counties := buildSource(t, "counties", datagen.Counties(64, 7))
	base := DefaultConfig()
	var prev int
	for _, d := range []float64{0, 3, 8, 20} {
		cfg := base
		cfg.Distance = d
		want := bruteForce(t, counties, counties, cfg)
		cur, err := IndexJoin(counties, counties, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CollectPairs(cur)
		if err != nil {
			t.Fatal(err)
		}
		SortPairs(got)
		if !pairsEqual(got, want) {
			t.Fatalf("d=%g: index join %d pairs, brute force %d", d, len(got), len(want))
		}
		// Result size must grow with distance (Table 1's trend).
		if len(got) < prev {
			t.Fatalf("d=%g: result shrank from %d to %d", d, prev, len(got))
		}
		prev = len(got)
		// Nested loop agrees too.
		nl, err := NestedLoop(counties, counties, cfg)
		if err != nil {
			t.Fatal(err)
		}
		SortPairs(nl)
		if !pairsEqual(nl, want) {
			t.Fatalf("d=%g: nested loop %d pairs, want %d", d, len(nl), len(want))
		}
	}
}

func TestJoinMasks(t *testing.T) {
	counties := buildSource(t, "counties", datagen.Counties(49, 11))
	for _, mask := range []geom.Mask{geom.MaskAnyInteract, geom.MaskTouch, geom.MaskEqual, geom.MaskOverlap} {
		cfg := Config{Mask: mask, SortCandidates: true}
		want := bruteForce(t, counties, counties, cfg)
		cur, err := IndexJoin(counties, counties, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CollectPairs(cur)
		if err != nil {
			t.Fatal(err)
		}
		SortPairs(got)
		if !pairsEqual(got, want) {
			t.Fatalf("mask %v: index join %d pairs, brute force %d", mask, len(got), len(want))
		}
	}
	// EQUAL on a self-join returns exactly the diagonal.
	cfg := Config{Mask: geom.MaskEqual, SortCandidates: true}
	cur, _ := IndexJoin(counties, counties, cfg)
	got, _ := CollectPairs(cur)
	if len(got) != counties.Table.Len() {
		t.Fatalf("EQUAL self-join = %d pairs, want %d", len(got), counties.Table.Len())
	}
	for _, p := range got {
		if p.A != p.B {
			t.Fatalf("EQUAL self-join produced off-diagonal pair %v", p)
		}
	}
}

func TestSelfJoinSymmetric(t *testing.T) {
	stars := buildSource(t, "stars", datagen.Stars(600, 13))
	cur, err := IndexJoin(stars, stars, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := CollectPairs(cur)
	if err != nil {
		t.Fatal(err)
	}
	set := map[Pair]bool{}
	for _, p := range pairs {
		set[p] = true
	}
	for _, p := range pairs {
		if !set[Pair{A: p.B, B: p.A}] {
			t.Fatalf("pair %v present but its mirror is not", p)
		}
	}
}

func TestCandidateCapDoesNotChangeResults(t *testing.T) {
	stars := buildSource(t, "stars", datagen.Stars(800, 17))
	base := DefaultConfig()
	cur, err := IndexJoin(stars, stars, base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CollectPairs(cur)
	if err != nil {
		t.Fatal(err)
	}
	SortPairs(want)
	for _, cap := range []int{1, 7, 64, 100000} {
		cfg := base
		cfg.CandidateCap = cap
		cur, err := IndexJoin(stars, stars, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CollectPairs(cur)
		if err != nil {
			t.Fatal(err)
		}
		SortPairs(got)
		if !pairsEqual(got, want) {
			t.Fatalf("cap=%d: %d pairs, want %d", cap, len(got), len(want))
		}
	}
}

func TestSortCandidatesDoesNotChangeResults(t *testing.T) {
	stars := buildSource(t, "stars", datagen.Stars(800, 19))
	sorted := DefaultConfig()
	unsorted := DefaultConfig()
	unsorted.SortCandidates = false
	c1, err := IndexJoin(stars, stars, sorted)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := CollectPairs(c1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := IndexJoin(stars, stars, unsorted)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CollectPairs(c2)
	if err != nil {
		t.Fatal(err)
	}
	SortPairs(p1)
	SortPairs(p2)
	if !pairsEqual(p1, p2) {
		t.Fatalf("sorted %d pairs, unsorted %d", len(p1), len(p2))
	}
}

func TestSortedFetchReducesGeomFetches(t *testing.T) {
	// The §4.2 claim: sorting candidates by first rowid improves fetch
	// behaviour. With the one-geometry cache, sorted order must fetch
	// fewer outer geometries than arrival order on a workload with
	// repeated outer rowids.
	stars := buildSource(t, "stars", datagen.Stars(1500, 23))
	run := func(sort bool) JoinStats {
		cfg := DefaultConfig()
		cfg.SortCandidates = sort
		cfg.CandidateCap = 100000 // one big array to make ordering matter
		fn, err := NewJoinFunction(stars, stars, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := fn.Start(); err != nil {
			t.Fatal(err)
		}
		for {
			rows, err := fn.Fetch(4096)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) == 0 {
				break
			}
		}
		fn.Close()
		return fn.Stats()
	}
	s := run(true)
	u := run(false)
	if s.Results != u.Results || s.Candidates != u.Candidates {
		t.Fatalf("work mismatch: %+v vs %+v", s, u)
	}
	if s.GeomFetches > u.GeomFetches {
		t.Errorf("sorted fetches %d > unsorted %d", s.GeomFetches, u.GeomFetches)
	}
}

func TestEmptyJoins(t *testing.T) {
	empty := buildSource(t, "empty", datagen.Dataset{Name: "empty", Bounds: datagen.World})
	stars := buildSource(t, "stars", datagen.Stars(100, 29))
	for _, pair := range [][2]Source{{empty, stars}, {stars, empty}, {empty, empty}} {
		cur, err := IndexJoin(pair[0], pair[1], DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		got, err := CollectPairs(cur)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("empty join returned %d pairs", len(got))
		}
		pc, err := ParallelIndexJoin(pair[0], pair[1], DefaultConfig(), 4)
		if err != nil {
			t.Fatal(err)
		}
		got, err = CollectPairs(pc)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("empty parallel join returned %d pairs", len(got))
		}
	}
}

func TestSubtreePairsFigure1(t *testing.T) {
	// Figure 1: two 2-level trees; descending one level yields the
	// cross product of the level-1 subtree roots (up to MBR pruning,
	// which Figure 1's overlapping geometry does not trigger here
	// because the star data overlaps heavily).
	stars := buildSource(t, "stars", datagen.Stars(2000, 31))
	a, b := stars.Tree, stars.Tree
	ra := a.SubtreeRoots(1)
	rb := b.SubtreeRoots(1)
	pairs := SubtreePairs(a, b, 1, DefaultConfig())
	if len(pairs) == 0 || len(pairs) > len(ra)*len(rb) {
		t.Fatalf("SubtreePairs = %d, roots %dx%d", len(pairs), len(ra), len(rb))
	}
	// With pruning disabled by a huge distance the full cross product
	// appears.
	cfg := DefaultConfig()
	cfg.Distance = 1e9
	full := SubtreePairs(a, b, 1, cfg)
	if len(full) != len(ra)*len(rb) {
		t.Fatalf("unpruned SubtreePairs = %d, want %d", len(full), len(ra)*len(rb))
	}
}

func TestPairEncodingRoundTrip(t *testing.T) {
	p := Pair{A: storage.RowID{Page: 3, Slot: 9}, B: storage.RowID{Page: 8, Slot: 1}}
	got, err := PairFromRow(pairRow(p))
	if err != nil || got != p {
		t.Fatalf("round trip: %v, %v", got, err)
	}
	if _, err := PairFromRow(storage.Row{storage.Int(1)}); err == nil {
		t.Errorf("bad arity: want error")
	}
	if _, err := PairFromRow(storage.Row{storage.Bytes([]byte{1}), storage.Bytes([]byte{2})}); err == nil {
		t.Errorf("bad payload: want error")
	}
}

func TestPairOrdering(t *testing.T) {
	pairs := []Pair{
		{A: storage.RowID{Page: 2, Slot: 0}, B: storage.RowID{Page: 1, Slot: 0}},
		{A: storage.RowID{Page: 1, Slot: 0}, B: storage.RowID{Page: 2, Slot: 0}},
		{A: storage.RowID{Page: 1, Slot: 0}, B: storage.RowID{Page: 1, Slot: 0}},
	}
	SortPairs(pairs)
	want := fmt.Sprint([]Pair{
		{A: storage.RowID{Page: 1, Slot: 0}, B: storage.RowID{Page: 1, Slot: 0}},
		{A: storage.RowID{Page: 1, Slot: 0}, B: storage.RowID{Page: 2, Slot: 0}},
		{A: storage.RowID{Page: 2, Slot: 0}, B: storage.RowID{Page: 1, Slot: 0}},
	})
	if fmt.Sprint(pairs) != want {
		t.Fatalf("SortPairs = %v", pairs)
	}
}
