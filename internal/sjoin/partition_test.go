package sjoin

import (
	"fmt"
	"testing"
	"time"

	"spatialtf/internal/datagen"
	"spatialtf/internal/geom"
	"spatialtf/internal/telemetry"
)

// gridPairs drives the goroutine-parallel grid join and returns the
// sorted result pairs.
func gridPairs(t *testing.T, a, b Source, cfg Config, workers int) []Pair {
	t.Helper()
	cur, err := GridParallelJoin(a, b, cfg, workers)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := CollectPairs(cur)
	if err != nil {
		t.Fatal(err)
	}
	SortPairs(pairs)
	return pairs
}

// nestedPairs is the serial nested-loop ground truth, sorted.
func nestedPairs(t *testing.T, a, b Source, cfg Config) []Pair {
	t.Helper()
	pairs, _, err := NestedLoopStats(a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	SortPairs(pairs)
	return pairs
}

// TestGridJoinMatchesNestedSerial is the differential test of the
// acceptance criteria: the grid-partitioned join must produce exactly
// the serial nested join's pairs — no duplicates, no misses — across
// uniform/clustered/skewed datasets, predicates, and worker counts.
func TestGridJoinMatchesNestedSerial(t *testing.T) {
	datasets := []struct {
		name string
		ds   datagen.Dataset
	}{
		{"uniform", datagen.Counties(160, 21)},
		{"clustered", datagen.Stars(300, 22)},
		{"skewed", datagen.BlockGroups(140, 23)},
	}
	cross := datagen.Counties(110, 24)
	crossSrc := buildSource(t, "cross", cross)
	configs := []struct {
		name string
		cfg  Config
	}{
		{"anyinteract", Config{Mask: geom.MaskAnyInteract, SortCandidates: true}},
		{"touch", Config{Mask: geom.MaskTouch, SortCandidates: true}},
		{"equal", Config{Mask: geom.MaskEqual, SortCandidates: true}},
		{"contains", Config{Mask: geom.MaskContains, SortCandidates: true}},
		{"inside", Config{Mask: geom.MaskInside, SortCandidates: true}},
		{"coveredby", Config{Mask: geom.MaskCoveredBy, SortCandidates: true}},
		{"distance", Config{Distance: 12, SortCandidates: true}},
	}
	if raceEnabled {
		// Under the ~10x race-detector slowdown, one dataset and the two
		// predicate shapes suffice: the concurrency under test (tile
		// stealing, shared cache, shared trace) is identical across the
		// matrix. TestGridJoinRace drives the high-worker case.
		datasets = datasets[:1]
		configs = []struct {
			name string
			cfg  Config
		}{configs[0], configs[len(configs)-1]}
	}
	for _, d := range datasets {
		src := buildSource(t, d.name, d.ds)
		for _, c := range configs {
			for _, pair := range []struct {
				name string
				b    Source
			}{{"self", src}, {"cross", crossSrc}} {
				want := nestedPairs(t, src, pair.b, c.cfg)
				for _, workers := range []int{1, 2, 4, 8} {
					name := fmt.Sprintf("%s/%s/%s/w%d", d.name, c.name, pair.name, workers)
					got := gridPairs(t, src, pair.b, c.cfg, workers)
					if len(got) != len(want) {
						t.Errorf("%s: grid %d pairs, nested %d", name, len(got), len(want))
						continue
					}
					for i := range got {
						if got[i] != want[i] {
							t.Errorf("%s: pair %d = %v, want %v", name, i, got[i], want[i])
							break
						}
					}
					for i := 1; i < len(got); i++ {
						if got[i] == got[i-1] {
							t.Errorf("%s: duplicate pair %v", name, got[i])
							break
						}
					}
				}
			}
		}
	}
}

// TestGridJoinRace drives many concurrent tile-stealing instances over
// one shared grid state, geometry cache, instrument set, and trace —
// the -race target for the grid worker pool.
func TestGridJoinRace(t *testing.T) {
	src := buildSource(t, "r", datagen.Stars(400, 51))
	reg := telemetry.New()
	cfg := DefaultConfig()
	cfg.Instr = NewInstruments(reg)
	cfg.Trace = telemetry.NewTracer(reg, -1, nil).Begin("grid race")
	want := nestedPairs(t, src, src, Config{Mask: geom.MaskAnyInteract, SortCandidates: true})
	got := gridPairs(t, src, src, cfg, 8)
	if len(got) != len(want) {
		t.Fatalf("grid %d pairs, nested %d", len(got), len(want))
	}
	if _, n := cfg.Trace.StageTotal(telemetry.StageTileSweep); n == 0 {
		t.Errorf("no tile-sweep spans recorded on the shared trace")
	}
	cfg.Trace.Finish()
}

// TestGridClassesEmitEachPairOnce checks the two-layer class scheme
// directly at the tile level: with the class filter every candidate
// pair is produced by exactly one tile; without it, replicated
// rectangles produce duplicates (proving the filter is load-bearing).
func TestGridClassesEmitEachPairOnce(t *testing.T) {
	src := buildSource(t, "c", datagen.Counties(400, 31))
	cfg := DefaultConfig().withDefaults()
	// Force many small tiles so rectangles straddle tile boundaries.
	cfg.GridTiles = 256
	gs := buildGridState(src, src, cfg, 4)
	if gs == nil || len(gs.tiles) < 16 {
		t.Fatalf("grid state too small: %+v", gs)
	}
	counts := map[Pair]int{}
	raw := 0
	for ti := range gs.tiles {
		tl := &gs.tiles[ti]
		// Count raw sweep candidates, ignoring classes.
		for _, ea := range tl.ra {
			for _, eb := range tl.rb {
				m := geom.MBR{MinX: ea.xlo, MinY: ea.ylo, MaxX: ea.xhi, MaxY: ea.yhi}
				o := geom.MBR{MinX: eb.xlo, MinY: eb.ylo, MaxX: eb.xhi, MaxY: eb.yhi}
				if m.Intersects(o) {
					raw++
				}
			}
		}
		gs.sweepTile(tl, func(a, b *tileEntry) {
			counts[Pair{A: a.id, B: b.id}]++
		})
	}
	if raw <= len(counts) {
		t.Fatalf("expected raw tile candidates (%d) to exceed deduplicated pairs (%d) — no replication means the test dataset is too easy", raw, len(counts))
	}
	for p, n := range counts {
		if n != 1 {
			t.Fatalf("pair %v emitted by %d tiles, want exactly 1", p, n)
		}
	}
}

// TestGridJoinEmptyAndTiny covers the degenerate paths: an empty side,
// and inputs smaller than one tile.
func TestGridJoinEmptyAndTiny(t *testing.T) {
	full := buildSource(t, "full", datagen.Counties(50, 41))
	empty := buildSource(t, "empty", datagen.Dataset{Name: "empty"})
	cfg := DefaultConfig()
	if pairs := gridPairs(t, full, empty, cfg, 4); len(pairs) != 0 {
		t.Errorf("join with empty side returned %d pairs", len(pairs))
	}
	if pairs := gridPairs(t, empty, full, cfg, 4); len(pairs) != 0 {
		t.Errorf("join with empty first side returned %d pairs", len(pairs))
	}
	tiny := buildSource(t, "tiny", datagen.Counties(3, 42))
	want := nestedPairs(t, tiny, tiny, cfg)
	got := gridPairs(t, tiny, tiny, cfg, 8)
	if len(got) != len(want) {
		t.Errorf("tiny self-join: grid %d pairs, nested %d", len(got), len(want))
	}
}

// TestSimulateGridJoinMatchesParallel checks the simulator produces the
// same pair set as the goroutine execution and sensible schedule data.
func TestSimulateGridJoinMatchesParallel(t *testing.T) {
	src := buildSource(t, "s", datagen.Stars(500, 43))
	cfg := DefaultConfig()
	want := gridPairs(t, src, src, cfg, 4)
	res, err := SimulateGridJoin(src, src, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]Pair(nil), res.Pairs...)
	SortPairs(got)
	if len(got) != len(want) {
		t.Fatalf("simulator %d pairs, parallel %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d: sim %v, parallel %v", i, got[i], want[i])
		}
	}
	if len(res.InstanceTimes) != 4 {
		t.Errorf("InstanceTimes = %d entries, want 4", len(res.InstanceTimes))
	}
	if res.Stats.TilesSwept != len(res.TileTimes) {
		t.Errorf("TilesSwept = %d, TileTimes = %d", res.Stats.TilesSwept, len(res.TileTimes))
	}
	var sum time.Duration
	for _, d := range res.InstanceTimes {
		if d > res.Elapsed {
			t.Errorf("instance time %v exceeds makespan %v", d, res.Elapsed)
		}
		sum += d
	}
	max, mean := res.TileSkew()
	if mean > max {
		t.Errorf("tile skew mean %v > max %v", mean, max)
	}
}

// TestGridShape sanity-checks the sizing heuristic.
func TestGridShape(t *testing.T) {
	cols, rows := GridShape(0, 0, 1)
	if cols < 1 || rows < 1 {
		t.Fatalf("empty shape %dx%d", cols, rows)
	}
	c4, r4 := GridShape(10000, 10000, 4)
	c8, r8 := GridShape(10000, 10000, 8)
	if c8*r8 < c4*r4 {
		t.Errorf("more workers shrank the grid: %d tiles vs %d", c8*r8, c4*r4)
	}
	if c, r := GridShape(1<<30, 1<<30, 4); c*r > gridMaxTiles*2 {
		t.Errorf("tile cap not applied: %d tiles", c*r)
	}
}
