package sjoin

import (
	"fmt"
	"testing"

	"spatialtf/internal/datagen"
	"spatialtf/internal/geom"
	"spatialtf/internal/idxbuild"
	"spatialtf/internal/storage"
)

// collect runs the pipelined index join under cfg and returns the
// sorted result pairs.
func collect(t *testing.T, a, b Source, cfg Config) []Pair {
	t.Helper()
	cur, err := IndexJoin(a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := CollectPairs(cur)
	if err != nil {
		t.Fatal(err)
	}
	SortPairs(pairs)
	return pairs
}

// TestSweepMatchesNestedPrimaryFilter is the differential test for the
// plane-sweep primary filter: across uniform (counties), clustered
// (stars), and skewed (block groups) data, with and without a join
// distance, the sweep and the nested entry-pair scan must produce
// identical result sets. SweepThreshold 1 forces the sweep onto every
// node pair, including the small ones the default threshold would skip.
func TestSweepMatchesNestedPrimaryFilter(t *testing.T) {
	uniform := buildSource(t, "t_uniform", datagen.Counties(300, 11))
	clustered := buildSource(t, "t_clustered", datagen.Stars(800, 12))
	skewed := buildSource(t, "t_skewed", datagen.BlockGroups(250, 13))

	cases := []struct {
		name string
		a, b Source
	}{
		{"uniform_self", uniform, uniform},
		{"clustered_self", clustered, clustered},
		{"skewed_self", skewed, skewed},
		{"uniform_x_clustered", uniform, clustered},
		{"clustered_x_skewed", clustered, skewed},
	}
	for _, tc := range cases {
		for _, dist := range []float64{0, 10} {
			t.Run(fmt.Sprintf("%s/dist=%g", tc.name, dist), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Distance = dist

				sweep := cfg
				sweep.SweepThreshold = 1
				got := collect(t, tc.a, tc.b, sweep)

				nested := cfg
				nested.NestedPrimaryFilter = true
				want := collect(t, tc.a, tc.b, nested)

				if !pairsEqual(got, want) {
					t.Fatalf("sweep produced %d pairs, nested %d; result sets differ", len(got), len(want))
				}
			})
		}
	}
}

// TestSweepMatchesNestedParallel checks the same equivalence through
// the parallel subtree-pair path: each instance runs the sweep on its
// own share of the decomposition, and the merged result must match the
// nested-scan parallel join pair for pair.
func TestSweepMatchesNestedParallel(t *testing.T) {
	a := buildSource(t, "p_stars", datagen.Stars(900, 21))
	b := buildSource(t, "p_counties", datagen.Counties(250, 22))
	for _, workers := range []int{2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sweep := DefaultConfig()
			sweep.SweepThreshold = 1
			cs, err := ParallelIndexJoin(a, b, sweep, workers)
			if err != nil {
				t.Fatal(err)
			}
			got, err := CollectPairs(cs)
			if err != nil {
				t.Fatal(err)
			}

			nested := DefaultConfig()
			nested.NestedPrimaryFilter = true
			cn, err := ParallelIndexJoin(a, b, nested, workers)
			if err != nil {
				t.Fatal(err)
			}
			want, err := CollectPairs(cn)
			if err != nil {
				t.Fatal(err)
			}

			SortPairs(got)
			SortPairs(want)
			if !pairsEqual(got, want) {
				t.Fatalf("parallel sweep produced %d pairs, nested %d; result sets differ", len(got), len(want))
			}
		})
	}
}

// TestSweepThresholdFallback pins the threshold semantics: a threshold
// above any node's entry count degrades to the nested scan and still
// matches the default configuration's results.
func TestSweepThresholdFallback(t *testing.T) {
	src := buildSource(t, "thresh_stars", datagen.Stars(600, 31))
	def := collect(t, src, src, DefaultConfig())

	high := DefaultConfig()
	high.SweepThreshold = 1 << 20
	got := collect(t, src, src, high)
	if !pairsEqual(got, def) {
		t.Fatalf("high-threshold join produced %d pairs, default %d", len(got), len(def))
	}
}

// TestGeomCacheOnOffIdentical is the cache differential: results must
// be identical with the cache disabled, private, or shared, and the
// cached run must not fetch more base-table geometries than the
// uncached one.
func TestGeomCacheOnOffIdentical(t *testing.T) {
	a := buildSource(t, "c_stars", datagen.Stars(700, 41))
	b := buildSource(t, "c_blocks", datagen.BlockGroups(400, 42))

	run := func(cfg Config) ([]Pair, JoinStats) {
		fn, err := NewJoinFunction(a, b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := fn.Start(); err != nil {
			t.Fatal(err)
		}
		defer fn.Close()
		var pairs []Pair
		for {
			rows, err := fn.Fetch(512)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) == 0 {
				break
			}
			for _, row := range rows {
				p, err := PairFromRow(row)
				if err != nil {
					t.Fatal(err)
				}
				pairs = append(pairs, p)
			}
		}
		SortPairs(pairs)
		return pairs, fn.Stats()
	}

	off := DefaultConfig()
	off.GeomCacheBytes = -1
	pOff, sOff := run(off)
	if sOff.CacheHits != 0 || sOff.CacheMisses != 0 {
		t.Fatalf("disabled cache recorded lookups: %+v", sOff)
	}

	on := DefaultConfig()
	pOn, sOn := run(on)
	if !pairsEqual(pOn, pOff) {
		t.Fatalf("cache-on join produced %d pairs, cache-off %d", len(pOn), len(pOff))
	}
	if sOn.CacheHits == 0 {
		t.Fatalf("cache-on join recorded no hits: %+v", sOn)
	}
	if sOn.GeomFetches > sOff.GeomFetches {
		t.Fatalf("cache-on fetched %d geometries, cache-off only %d", sOn.GeomFetches, sOff.GeomFetches)
	}
	if sOn.GeomFetches != sOn.CacheMisses {
		t.Fatalf("cached fetches (%d) and misses (%d) disagree", sOn.GeomFetches, sOn.CacheMisses)
	}

	shared := DefaultConfig()
	shared.GeomCache = NewGeomCache(0)
	pShared, _ := run(shared)
	if !pairsEqual(pShared, pOff) {
		t.Fatalf("shared-cache join produced %d pairs, cache-off %d", len(pShared), len(pOff))
	}
	// A second join through the now-warm shared cache: same results,
	// and (cache larger than both datasets) no base-table fetches at all.
	pWarm, sWarm := run(shared)
	if !pairsEqual(pWarm, pOff) {
		t.Fatalf("warm shared-cache join produced %d pairs, cache-off %d", len(pWarm), len(pOff))
	}
	if sWarm.GeomFetches != 0 {
		t.Fatalf("warm shared cache still fetched %d geometries", sWarm.GeomFetches)
	}
}

// TestGeomCacheMultiColumn pins the cache key down to the column: a
// table with two GEOMETRY columns joined through one shared cache must
// never be served the other column's geometry for the same rowid.
func TestGeomCacheMultiColumn(t *testing.T) {
	dsA := datagen.Counties(200, 71)
	dsB := datagen.Stars(200, 72)
	n := len(dsA.Geoms)
	if len(dsB.Geoms) < n {
		n = len(dsB.Geoms)
	}
	tab, err := storage.NewTable("mc_two_geoms", []storage.Column{
		{Name: "id", Type: storage.TInt64},
		{Name: "g_a", Type: storage.TGeometry},
		{Name: "g_b", Type: storage.TGeometry},
	})
	if err != nil {
		t.Fatal(err)
	}
	var first storage.RowID
	for i := 0; i < n; i++ {
		id, err := tab.Insert(storage.Row{
			storage.Int(int64(i)),
			storage.Geom(dsA.Geoms[i]),
			storage.Geom(dsB.Geoms[i]),
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = id
		}
	}
	treeA, _, err := idxbuild.CreateRtree(tab, "g_a", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	treeB, _, err := idxbuild.CreateRtree(tab, "g_b", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	srcA := Source{Table: tab, Column: "g_a", Tree: treeA}
	srcB := Source{Table: tab, Column: "g_b", Tree: treeB}

	// Direct check: the two columns of one row are distinct entries.
	colA, err := srcA.geomColumn()
	if err != nil {
		t.Fatal(err)
	}
	colB, err := srcB.geomColumn()
	if err != nil {
		t.Fatal(err)
	}
	c := NewGeomCache(0)
	c.Put(tab, colA, first, dsA.Geoms[0])
	c.Put(tab, colB, first, dsB.Geoms[0])
	gA, okA := c.Get(tab, colA, first)
	gB, okB := c.Get(tab, colB, first)
	if !okA || !okB {
		t.Fatalf("per-column entries not resident: g_a=%v g_b=%v", okA, okB)
	}
	if !gA.Equal(dsA.Geoms[0]) || !gB.Equal(dsB.Geoms[0]) {
		t.Fatalf("cache returned the wrong column's geometry")
	}

	// Ground truth with caching disabled, then the same joins through
	// one shared cache: the g_a join warms every rowid, and the g_b
	// join over the same rowids must still fetch g_b geometries.
	off := DefaultConfig()
	off.GeomCacheBytes = -1
	probe := buildSource(t, "mc_probe", datagen.Counties(150, 73))
	wantA := collect(t, srcA, probe, off)
	wantB := collect(t, srcB, probe, off)
	wantSelf := collect(t, srcA, srcB, off)

	shared := DefaultConfig()
	shared.GeomCache = NewGeomCache(0)
	if got := collect(t, srcA, probe, shared); !pairsEqual(got, wantA) {
		t.Fatalf("g_a join through shared cache produced %d pairs, uncached %d", len(got), len(wantA))
	}
	if got := collect(t, srcB, probe, shared); !pairsEqual(got, wantB) {
		t.Fatalf("g_b join through warm shared cache produced %d pairs, uncached %d", len(got), len(wantB))
	}
	// A single join can also collide with itself: g_a against g_b of
	// the same table shares one private cache across both operands.
	if got := collect(t, srcA, srcB, DefaultConfig()); !pairsEqual(got, wantSelf) {
		t.Fatalf("g_a x g_b self-table join produced %d pairs, uncached %d", len(got), len(wantSelf))
	}
}

// TestGeomCacheEviction exercises the LRU bound directly: a tiny cache
// must stay within budget, keep recently used entries, and evict stale
// ones.
func TestGeomCacheEviction(t *testing.T) {
	src := buildSource(t, "ev_counties", datagen.Counties(200, 51))
	col, err := src.geomColumn()
	if err != nil {
		t.Fatal(err)
	}
	var ids []storage.RowID
	var geoms []geom.Geometry
	src.Table.Scan(func(id storage.RowID, row storage.Row) bool {
		ids = append(ids, id)
		geoms = append(geoms, row[col].G)
		return true
	})

	perEntry := geomSizeBytes(geoms[0])
	// Budget for roughly 3 entries per shard.
	c := NewGeomCache(perEntry * 3 * geomCacheShards)
	for i, id := range ids {
		c.Put(src.Table, col, id, geoms[i])
	}
	st := c.Stats()
	if st.Entries == 0 || st.Entries >= int64(len(ids)) {
		t.Fatalf("expected partial residency, have %d of %d entries", st.Entries, len(ids))
	}
	if st.Bytes > int64(perEntry*4*geomCacheShards) {
		t.Fatalf("cache overflows budget: %d bytes resident", st.Bytes)
	}

	// The most recently inserted id must be resident; re-putting and
	// touching it keeps it resident while others churn.
	last := ids[len(ids)-1]
	if _, ok := c.Get(src.Table, col, last); !ok {
		t.Fatalf("most recent entry evicted")
	}
	for i := 0; i < len(ids)-1; i++ {
		c.Put(src.Table, col, ids[i], geoms[i])
		if _, ok := c.Get(src.Table, col, last); !ok {
			// last shares a shard with churning entries only if hashes
			// collide; touching it via Get above refreshes recency, so
			// it must survive a churn of <= 2 entries per round.
			t.Fatalf("recently touched entry evicted during churn (round %d)", i)
		}
	}

	hitsBefore := c.Stats().Hits
	if _, ok := c.Get(src.Table, col, last); !ok {
		t.Fatalf("expected hit on resident entry")
	}
	if c.Stats().Hits != hitsBefore+1 {
		t.Fatalf("hit counter did not advance")
	}
}

// TestQuadtreeJoinCacheIdentical covers the second index kind: the tile
// merge join must return the same pairs with the cache disabled and
// enabled.
func TestQuadtreeJoinCacheIdentical(t *testing.T) {
	qa, _ := buildQSource(t, "qc_a", datagen.Counties(150, 61), 7)
	qb, _ := buildQSource(t, "qc_b", datagen.Stars(300, 62), 7)

	off := DefaultConfig()
	off.GeomCacheBytes = -1
	pOff, err := QuadtreeJoin(qa, qb, off)
	if err != nil {
		t.Fatal(err)
	}
	pOn, err := QuadtreeJoin(qa, qb, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	SortPairs(pOff)
	SortPairs(pOn)
	if !pairsEqual(pOn, pOff) {
		t.Fatalf("quadtree cache-on join produced %d pairs, cache-off %d", len(pOn), len(pOff))
	}
}
