package sjoin

import (
	"fmt"
	"slices"

	"spatialtf/internal/geom"
	"spatialtf/internal/quadtree"
	"spatialtf/internal/storage"
)

// QuadtreeJoin is the extension join over two linear quadtree indexes
// sharing a grid: the primary filter is a merge join of the two
// tile-code B-trees (rows sharing a tile become candidates), followed by
// the same sorted-candidate secondary filter as the R-tree join. The
// paper focuses on R-tree joins but notes both indextypes; this
// completes the pairing.
//
// QSource names one quadtree join operand.
type QSource struct {
	Table  *storage.Table
	Column string
	Index  *quadtree.Index
}

// QuadtreeJoin evaluates the join and returns the result pairs.
// Within-distance joins are not supported: the tile merge join only
// surfaces pairs sharing a tile, which is incomplete for a distance
// predicate — use the R-tree join for those.
func QuadtreeJoin(a, b QSource, cfg Config) ([]Pair, error) {
	cfg = cfg.withDefaults()
	if cfg.Distance > 0 {
		return nil, fmt.Errorf("sjoin: quadtree join does not support within-distance predicates")
	}
	sa := Source{Table: a.Table, Column: a.Column}
	sb := Source{Table: b.Table, Column: b.Column}
	colA, err := sa.geomColumn()
	if err != nil {
		return nil, err
	}
	colB, err := sb.geomColumn()
	if err != nil {
		return nil, err
	}
	// Primary filter: tile merge join, deduped (a pair sharing several
	// tiles appears once).
	seen := map[Pair]bool{}
	err = quadtree.TilePairs(a.Index, b.Index, func(ida, idb storage.RowID) bool {
		seen[Pair{A: ida, B: idb}] = true
		return true
	})
	if err != nil {
		return nil, err
	}
	cands := make([]Pair, 0, len(seen))
	for p := range seen {
		cands = append(cands, p)
	}
	if cfg.SortCandidates {
		slices.SortFunc(cands, comparePairs)
	}
	// Secondary filter, fetching through the same decoded-geometry cache
	// as the R-tree join (shared when Config.GeomCache is set, so a
	// database serving both index kinds reuses decodes across them).
	cache := cfg.resolveCache()
	var (
		out     []Pair
		curID   storage.RowID
		haveCur bool
	)
	var curGeom geom.Geometry
	for _, p := range cands {
		if !haveCur || curID != p.A {
			g, _, err := cachedFetch(cache, a.Table, colA, p.A)
			if err != nil {
				return nil, err
			}
			curID, curGeom, haveCur = p.A, g, true
		}
		g, _, err := cachedFetch(cache, b.Table, colB, p.B)
		if err != nil {
			return nil, err
		}
		if cfg.secondaryAccepts(curGeom, g) {
			out = append(out, p)
		}
	}
	return out, nil
}
