package sjoin

import (
	"spatialtf/internal/geom"
	"spatialtf/internal/storage"
)

// Cluster scoping: when a join runs as one shard of a scatter-gather
// cluster query, every shard holding replicas of both rows would report
// the pair. The same reference-point rule that dedups tiles inside the
// grid join dedups shards across the cluster — a pair is owned by the
// shard whose tile contains the bottom-left corner of the intersection
// of the first MBR (expanded by the join distance) with the second MBR.
// That corner lies inside the second row's MBR and within distance d of
// the first row's, so the owning shard is guaranteed to hold replicas
// of both rows as long as the cluster's replication margin covers d.

// PairRefPoint returns the reference point of a join pair: the
// bottom-left corner of the intersection of a (expanded by d) with b.
// The caller guarantees the two MBRs interact within d, so the
// intersection is non-empty.
func PairRefPoint(a, b geom.MBR, d float64) (x, y float64) {
	x = a.MinX - d
	if b.MinX > x {
		x = b.MinX
	}
	y = a.MinY - d
	if b.MinY > y {
		y = b.MinY
	}
	return x, y
}

// scopedPairCursor filters a pair stream down to the pairs own() claims,
// resolving each pair's MBRs through the decoded-geometry cache (the
// secondary filter has typically just decoded them, so this is mostly
// cache hits).
type scopedPairCursor struct {
	in         storage.Cursor
	a, b       *storage.Table
	colA, colB int
	d          float64
	cache      *GeomCache
	own        func(x, y float64) bool
}

// ScopedPairFilter wraps a join pair cursor so only pairs whose
// reference point satisfies own survive. cache may be nil (every probe
// then hits the base table).
func ScopedPairFilter(cur storage.Cursor, a, b Source, d float64, cache *GeomCache, own func(x, y float64) bool) (storage.Cursor, error) {
	colA, err := a.geomColumn()
	if err != nil {
		return nil, err
	}
	colB, err := b.geomColumn()
	if err != nil {
		return nil, err
	}
	return &scopedPairCursor{
		in: cur, a: a.Table, b: b.Table, colA: colA, colB: colB,
		d: d, cache: cache, own: own,
	}, nil
}

func (c *scopedPairCursor) Next() (storage.RowID, storage.Row, bool, error) {
	for {
		id, row, ok, err := c.in.Next()
		if err != nil || !ok {
			return id, nil, ok, err
		}
		p, err := PairFromRow(row)
		if err != nil {
			return storage.InvalidRowID, nil, false, err
		}
		ga, _, err := cachedFetch(c.cache, c.a, c.colA, p.A)
		if err != nil {
			return storage.InvalidRowID, nil, false, err
		}
		gb, _, err := cachedFetch(c.cache, c.b, c.colB, p.B)
		if err != nil {
			return storage.InvalidRowID, nil, false, err
		}
		x, y := PairRefPoint(geom.MBROf(ga), geom.MBROf(gb), c.d)
		if c.own(x, y) {
			return id, row, true, nil
		}
	}
}

func (c *scopedPairCursor) Close() error { return c.in.Close() }
