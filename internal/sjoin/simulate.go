package sjoin

import (
	"time"
)

// This file provides a deterministic multi-processor simulator for the
// parallel join. The paper's experiments ran on a 4-CPU Sun; on hosts
// with fewer cores than the requested degree of parallelism, goroutine
// wall-clock cannot show the speedup the paper measures. The simulator
// executes each parallel instance's work serially, times each instance
// in isolation, and reports the parallel makespan: the maximum instance
// time (all instances start together on their own processor and the
// join finishes when the slowest does). Partitioning, task assignment,
// and all results are identical to ParallelIndexJoin.

// SimResult reports a simulated parallel run.
type SimResult struct {
	// Pairs is the join result (identical to the goroutine-parallel
	// execution up to order).
	Pairs []Pair
	// Elapsed is the simulated parallel makespan: max over instances.
	Elapsed time.Duration
	// InstanceTimes are the per-instance busy times; their max is
	// Elapsed, their sum approximates the 1-processor time.
	InstanceTimes []time.Duration
	// Stats aggregates the work counters across instances.
	Stats JoinStats
}

// SimulateParallelIndexJoin runs the §4.1 parallel join under the
// multi-processor simulator with the given degree of parallelism.
func SimulateParallelIndexJoin(a, b Source, cfg Config, workers int) (SimResult, error) {
	cfg = cfg.withDefaults()
	// One cache across the simulated instances, matching the shared
	// cache of the goroutine-parallel execution.
	cfg.GeomCache = cfg.resolveCache()
	workers = normWorkers(workers)
	if _, err := a.geomColumn(); err != nil {
		return SimResult{}, err
	}
	if _, err := b.geomColumn(); err != nil {
		return SimResult{}, err
	}
	pairs := SubtreePairsForWorkers(a.Tree, b.Tree, workers, cfg)
	parts := dealPairs(pairs, workers)
	var res SimResult
	for _, part := range parts {
		if len(part) == 0 {
			res.InstanceTimes = append(res.InstanceTimes, 0)
			continue
		}
		fn, err := newJoinFn(a, b, cfg, part)
		if err != nil {
			return SimResult{}, err
		}
		t0 := time.Now()
		if err := fn.Start(); err != nil {
			fn.Close()
			return SimResult{}, err
		}
		for {
			rows, err := fn.Fetch(1024)
			if err != nil {
				fn.Close()
				return SimResult{}, err
			}
			if len(rows) == 0 {
				break
			}
			for _, row := range rows {
				p, err := PairFromRow(row)
				if err != nil {
					fn.Close()
					return SimResult{}, err
				}
				res.Pairs = append(res.Pairs, p)
			}
		}
		fn.Close()
		d := time.Since(t0)
		res.InstanceTimes = append(res.InstanceTimes, d)
		if d > res.Elapsed {
			res.Elapsed = d
		}
		s := fn.Stats()
		res.Stats.add(s)
	}
	return res, nil
}
