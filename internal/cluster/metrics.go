package cluster

import (
	"fmt"
	"math"
	"sort"

	"spatialtf/internal/telemetry"
	"spatialtf/internal/wire"
)

// maxShardPoints bounds the aggregated snapshot well under the wire
// codec's metrics-frame entry cap.
const maxShardPoints = 3500

// MetricsSnapshot scrapes every reachable shard's metrics and returns
// the cluster view: each shard's series prefixed "shardN_", plus a
// "cluster_"-prefixed rollup per series name — counters and gauges
// summed, histograms with identical bucket bounds merged. Unreachable
// shards are skipped (a metrics scrape must not fail because one node
// is down); a "shard_up" gauge per shard says who answered.
func (c *Coordinator) MetricsSnapshot() []telemetry.Point {
	type rollup struct {
		p  telemetry.Point
		ok bool // false when histogram bounds conflicted
	}
	var out []telemetry.Point
	rollups := make(map[string]*rollup)
	var order []string
	for shard := range c.m.Shards {
		up := 0.0
		pts, err := c.shardMetrics(shard)
		if err == nil {
			up = 1.0
		}
		out = append(out, telemetry.Point{
			Name: fmt.Sprintf("shard%d_up", shard),
			Help: "whether the shard answered the metrics scrape",
			Kind: telemetry.KindGauge, Value: up,
		})
		for _, p := range pts {
			if len(out) >= maxShardPoints {
				break
			}
			shardPt := p
			shardPt.Name = fmt.Sprintf("shard%d_%s", shard, p.Name)
			out = append(out, shardPt)
			r, ok := rollups[p.Name]
			if !ok {
				cp := p
				cp.Name = "cluster_" + p.Name
				cp.Bounds = append([]float64(nil), p.Bounds...)
				cp.Counts = append([]int64(nil), p.Counts...)
				rollups[p.Name] = &rollup{p: cp, ok: true}
				order = append(order, p.Name)
				continue
			}
			if !r.ok || r.p.Kind != p.Kind {
				r.ok = false
				continue
			}
			switch p.Kind {
			case telemetry.KindHistogram:
				if !sameBounds(r.p.Bounds, p.Bounds) || len(r.p.Counts) != len(p.Counts) {
					r.ok = false
					continue
				}
				for i := range p.Counts {
					r.p.Counts[i] += p.Counts[i]
				}
				r.p.Sum += p.Sum
				r.p.Count += p.Count
			default:
				r.p.Value += p.Value
			}
		}
	}
	sort.Strings(order)
	for _, name := range order {
		if len(out) >= maxShardPoints {
			break
		}
		if r := rollups[name]; r.ok {
			out = append(out, r.p)
		}
	}
	return out
}

// shardMetrics scrapes one shard (no retries: a scrape is periodic,
// the next one will see the node again).
func (c *Coordinator) shardMetrics(shard int) ([]telemetry.Point, error) {
	cl, err := c.client(shard)
	if err != nil {
		return nil, err
	}
	pts, err := cl.Metrics()
	if err != nil {
		if _, remote := err.(*wire.RemoteError); !remote {
			c.dropClient(shard)
		}
		return nil, err
	}
	return pts, nil
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Bit equality on purpose: histograms merge only when the bucket
		// layouts are byte-identical, not merely within an epsilon.
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
