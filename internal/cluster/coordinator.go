package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"time"

	"spatialtf/internal/geom"
	"spatialtf/internal/sqlmini"
	"spatialtf/internal/storage"
	"spatialtf/internal/telemetry"
	"spatialtf/internal/wire"
)

// Loss policies: what a scatter query does when a shard cannot be
// reached (after retries).
const (
	// LossFail fails the whole query on the first unreachable shard.
	LossFail = "fail"
	// LossPartial streams the surviving shards' rows and ends the
	// stream with a *PartialError so the caller knows the result is
	// incomplete. Counts and writes never degrade.
	LossPartial = "partial"
)

// Typed routing errors (match with errors.Is).
var (
	// ErrDistanceExceedsMargin rejects a cluster join whose distance is
	// larger than the shard map's replication margin: the replicas
	// needed to evaluate it were never written.
	ErrDistanceExceedsMargin = errors.New("cluster: join distance exceeds the shard map's replication margin")
	// ErrNeedJoinKeys rejects a cluster join without a 'keys=' hint:
	// rowids are shard-local addresses, so a cluster join must project
	// user-key columns to mean anything.
	ErrNeedJoinKeys = errors.New("cluster: a cluster spatial_join needs a 'keys=colA:colB' hint (rowids are shard-local)")
	// ErrNearestUnsupported rejects sdo_nn: a k-nearest result is not
	// spatially decomposable across shards.
	ErrNearestUnsupported = errors.New("cluster: sdo_nn is not supported on a cluster (k-nearest does not decompose by tile)")
	// ErrGeometryUpdate rejects UPDATE of a geometry column: moving a
	// row can change its replica set, which requires a re-insert.
	ErrGeometryUpdate = errors.New("cluster: UPDATE of a geometry column is not supported (delete and re-insert to move a row)")
)

// Options tunes a Coordinator.
type Options struct {
	// DialTimeout, ReadTimeout, WriteTimeout bound shard I/O (zero = no
	// deadline, the single-node default).
	DialTimeout  time.Duration
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// Retries is how many times a failed shard dial/request is retried
	// (transport failures only — a server-reported error is final).
	Retries int
	// RetryBackoff is the sleep before the first retry, doubling per
	// attempt. Zero selects 50ms when Retries > 0.
	RetryBackoff time.Duration
	// OnShardLoss selects LossFail (default) or LossPartial.
	OnShardLoss string
	// FetchBatch is the remote fetch batch size (0 = server default).
	FetchBatch int
	// Registry receives the coordinator's metrics (nil = disabled).
	Registry *telemetry.Registry
}

// Coordinator routes single-node SQL across a shard cluster: DDL and
// writes are broadcast or replicated by the shard map, reads scatter as
// scoped queries and gather through a parallel table function. It is
// safe for concurrent use; per-connection state lives in Session.
type Coordinator struct {
	m   *ShardMap
	opt Options

	mu      sync.Mutex
	clients []*wire.Client
	schemas map[string][]storage.Column

	tracerMu sync.Mutex
	tr       *telemetry.Tracer

	scatterTotal   *telemetry.Counter
	scatterShards  *telemetry.Counter
	shardLossTotal *telemetry.Counter
	redialTotal    *telemetry.Counter
	broadcastTotal *telemetry.Counter
	replicasTotal  *telemetry.Counter
}

// New builds a coordinator over a validated shard map.
func New(m *ShardMap, opt Options) (*Coordinator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	switch opt.OnShardLoss {
	case "":
		opt.OnShardLoss = LossFail
	case LossFail, LossPartial:
	default:
		return nil, fmt.Errorf("cluster: unknown shard-loss policy %q (want %q or %q)", opt.OnShardLoss, LossFail, LossPartial)
	}
	if opt.Retries < 0 {
		opt.Retries = 0
	}
	if opt.RetryBackoff <= 0 {
		opt.RetryBackoff = 50 * time.Millisecond
	}
	reg := opt.Registry
	return &Coordinator{
		m:       m,
		opt:     opt,
		clients: make([]*wire.Client, len(m.Shards)),
		schemas: make(map[string][]storage.Column),
		scatterTotal: reg.NewCounter("cluster_scatter_total",
			"scatter-gather queries dispatched by the coordinator"),
		scatterShards: reg.NewCounter("cluster_scatter_shards_total",
			"per-shard cursor opens across all scatter queries"),
		shardLossTotal: reg.NewCounter("cluster_shard_loss_total",
			"shards dropped from partial-result queries after transport failures"),
		redialTotal: reg.NewCounter("cluster_redial_total",
			"shard reconnect attempts after transport failures"),
		broadcastTotal: reg.NewCounter("cluster_broadcast_total",
			"statements broadcast to every shard (DDL, DELETE, UPDATE)"),
		replicasTotal: reg.NewCounter("cluster_insert_replicas_total",
			"row replicas written by INSERT routing"),
	}, nil
}

// Map returns the shard map the coordinator routes by.
func (c *Coordinator) Map() *ShardMap { return c.m }

// SetTracer attaches the query tracer scatter/merge spans report to
// (typically the serving layer's tracer, attached after the server is
// built so both observe the same registry).
func (c *Coordinator) SetTracer(tr *telemetry.Tracer) {
	c.tracerMu.Lock()
	c.tr = tr
	c.tracerMu.Unlock()
}

func (c *Coordinator) tracer() *telemetry.Tracer {
	c.tracerMu.Lock()
	defer c.tracerMu.Unlock()
	return c.tr
}

// Close drops every shard connection.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for i, cl := range c.clients {
		if cl != nil {
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
			c.clients[i] = nil
		}
	}
	return first
}

// client returns the cached connection to a shard, dialling on first
// use (and after dropClient).
func (c *Coordinator) client(shard int) (*wire.Client, error) {
	c.mu.Lock()
	cl := c.clients[shard]
	c.mu.Unlock()
	if cl != nil {
		return cl, nil
	}
	// Dial unlocked: a slow or dead shard must not stall lookups for
	// the healthy ones. Concurrent first dials to the same shard race
	// benignly — the loser closes its connection and adopts the winner's.
	nc, err := wire.DialWith(c.m.Shards[shard], wire.Options{
		DialTimeout:  c.opt.DialTimeout,
		ReadTimeout:  c.opt.ReadTimeout,
		WriteTimeout: c.opt.WriteTimeout,
	})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if cl := c.clients[shard]; cl != nil {
		c.mu.Unlock()
		nc.Close()
		return cl, nil
	}
	c.clients[shard] = nc
	c.mu.Unlock()
	return nc, nil
}

// dropClient discards a shard's cached connection after a transport
// failure so the next use redials instead of reusing a dead socket.
func (c *Coordinator) dropClient(shard int) {
	c.mu.Lock()
	cl := c.clients[shard]
	c.clients[shard] = nil
	c.mu.Unlock()
	if cl != nil {
		cl.Close()
	}
}

// shardQuery runs one request against one shard with bounded
// retry+backoff on transport failures. A *wire.RemoteError is the
// server answering — final, never retried. The returned error is
// already wrapped as a *ShardError.
func (c *Coordinator) shardQuery(shard int, run func(cl *wire.Client) (*wire.QueryResult, error)) (*wire.QueryResult, error) {
	var lastErr error
	backoff := c.opt.RetryBackoff
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		if attempt > 0 {
			c.redialTotal.Inc()
			time.Sleep(backoff)
			backoff *= 2
		}
		cl, err := c.client(shard)
		if err != nil {
			lastErr = err
			continue
		}
		res, err := run(cl)
		if err == nil {
			return res, nil
		}
		if _, remote := err.(*wire.RemoteError); remote {
			return nil, &ShardError{Shard: shard, Addr: c.m.Shards[shard], Err: err}
		}
		c.dropClient(shard)
		lastErr = err
	}
	return nil, &ShardError{Shard: shard, Addr: c.m.Shards[shard], Err: lastErr}
}

// plainQuery runs an unscoped statement on one shard.
func (c *Coordinator) plainQuery(shard int, sql string) (*wire.QueryResult, error) {
	return c.shardQuery(shard, func(cl *wire.Client) (*wire.QueryResult, error) {
		return cl.Query(sql)
	})
}

// scopedQuery runs a statement on one shard under its cluster scope.
func (c *Coordinator) scopedQuery(shard int, sql string) (*wire.QueryResult, error) {
	return c.shardQuery(shard, func(cl *wire.Client) (*wire.QueryResult, error) {
		return cl.QueryScoped(sql, c.m.Scope(shard))
	})
}

// homeShard places a table's non-spatial rows: stable hash of the
// table name (no geometry column means no spatial placement).
func (c *Coordinator) homeShard(table string) int {
	h := fnv.New32a()
	h.Write([]byte(strings.ToLower(table)))
	return int(h.Sum32() % uint32(len(c.m.Shards)))
}

// tableSchema discovers (and caches) a table's schema by opening a
// zero-cost scan cursor on the first reachable shard. DDL is broadcast,
// so every shard agrees on it.
func (c *Coordinator) tableSchema(table string) ([]storage.Column, error) {
	key := strings.ToLower(table)
	c.mu.Lock()
	cached, ok := c.schemas[key]
	c.mu.Unlock()
	if ok {
		return cached, nil
	}
	var lastErr error
	for shard := range c.m.Shards {
		res, err := c.plainQuery(shard, "SELECT * FROM "+table)
		if err != nil {
			if errors.As(err, new(*wire.RemoteError)) {
				return nil, err // the server answered: table is missing
			}
			lastErr = err
			continue
		}
		if res.Cursor == nil {
			return nil, fmt.Errorf("cluster: shard %d answered a scan of %q without a cursor", shard, table)
		}
		schema := res.Cursor.Columns()
		res.Cursor.Close()
		c.mu.Lock()
		c.schemas[key] = schema
		c.mu.Unlock()
		return schema, nil
	}
	return nil, fmt.Errorf("cluster: no shard reachable to describe table %q: %w", table, lastErr)
}

// invalidateSchema drops a table's cached schema (after DDL).
func (c *Coordinator) invalidateSchema(table string) {
	c.mu.Lock()
	delete(c.schemas, strings.ToLower(table))
	c.mu.Unlock()
}

// geomColumn returns the index of the first GEOMETRY column, -1 if
// none.
func geomColumn(schema []storage.Column) int {
	for i, col := range schema {
		if col.Type == storage.TGeometry {
			return i
		}
	}
	return -1
}

// NewSession opens one routed session. Sessions share the
// coordinator's shard connections; each is used by one goroutine at a
// time (the server's per-connection contract).
func (c *Coordinator) NewSession() *Session {
	return &Session{co: c}
}

// Session is the per-connection face of the coordinator: it satisfies
// the serving layer's Session contract, so a router daemon speaks the
// exact wire protocol of a single node.
type Session struct {
	co *Coordinator
}

// Close releases per-session state (none: connections belong to the
// coordinator).
func (s *Session) Close() error { return nil }

// ExecuteStream routes one statement across the cluster.
func (s *Session) ExecuteStream(sql string) (*sqlmini.Stream, error) {
	c := s.co
	stmt, err := sqlmini.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch st := stmt.(type) {
	case sqlmini.CreateTable:
		c.invalidateSchema(st.Name)
		return c.broadcastAgree(sql)
	case sqlmini.CreateIndex:
		return c.broadcastAgree(sql)
	case sqlmini.Insert:
		return c.routeInsert(sql, st)
	case sqlmini.Delete:
		if st.Where != nil && st.Where.Op == "nearest" {
			return nil, ErrNearestUnsupported
		}
		return c.broadcastCounted(sql, "deleted")
	case sqlmini.Update:
		if st.Where != nil && st.Where.Op == "nearest" {
			return nil, ErrNearestUnsupported
		}
		if err := c.checkUpdateColumns(st); err != nil {
			return nil, err
		}
		return c.broadcastCounted(sql, "updated")
	case sqlmini.Select:
		return c.routeSelect(sql, st)
	default:
		return nil, fmt.Errorf("cluster: statement %T is not routable", stmt)
	}
}

// broadcastAgree runs a statement on every shard; all must succeed
// (cluster DDL is all-or-error, there is no partial CREATE).
func (c *Coordinator) broadcastAgree(sql string) (*sqlmini.Stream, error) {
	c.broadcastTotal.Inc()
	var msg string
	for shard := range c.m.Shards {
		res, err := c.plainQuery(shard, sql)
		if err != nil {
			return nil, err
		}
		msg = res.Message
	}
	return messageStream(fmt.Sprintf("%s (on %d shards)", msg, len(c.m.Shards))), nil
}

// broadcastCounted broadcasts a DELETE/UPDATE and sums the per-shard
// row counts. The sum counts replica rows, so with a replication
// margin it can exceed the logical row count; the message says so.
func (c *Coordinator) broadcastCounted(sql, verb string) (*sqlmini.Stream, error) {
	c.broadcastTotal.Inc()
	total := 0
	for shard := range c.m.Shards {
		res, err := c.plainQuery(shard, sql)
		if err != nil {
			return nil, err
		}
		var n int
		if _, err := fmt.Sscanf(res.Message, "%d rows", &n); err == nil {
			total += n
		}
	}
	return messageStream(fmt.Sprintf("%d replica rows %s across %d shards", total, verb, len(c.m.Shards))), nil
}

// checkUpdateColumns rejects geometry-column SETs (they would change
// the row's replica set).
func (c *Coordinator) checkUpdateColumns(st sqlmini.Update) error {
	schema, err := c.tableSchema(st.Table)
	if err != nil {
		return err
	}
	for _, set := range st.Sets {
		for _, col := range schema {
			if strings.EqualFold(col.Name, set.Column) && col.Type == storage.TGeometry {
				return fmt.Errorf("%w (column %q of table %q)", ErrGeometryUpdate, set.Column, st.Table)
			}
		}
	}
	return nil
}

// routeInsert replicates one row to every shard whose tiles its
// geometry's margin-grown MBR touches; rows without geometry go to the
// table's home shard. All replica writes must succeed.
func (c *Coordinator) routeInsert(sql string, st sqlmini.Insert) (*sqlmini.Stream, error) {
	schema, err := c.tableSchema(st.Table)
	if err != nil {
		return nil, err
	}
	gi := geomColumn(schema)
	var targets []int
	switch {
	case gi < 0:
		targets = []int{c.homeShard(st.Table)}
	case gi >= len(st.Values) || !st.Values[gi].IsString:
		return nil, fmt.Errorf("cluster: INSERT into %q needs a WKT literal for geometry column %q to route it", st.Table, schema[gi].Name)
	default:
		g, err := geom.ParseWKT(st.Values[gi].Str)
		if err != nil {
			return nil, fmt.Errorf("cluster: INSERT geometry: %w", err)
		}
		targets = c.m.ShardsForMBR(geom.MBROf(g), c.m.Margin)
	}
	for _, shard := range targets {
		if _, err := c.plainQuery(shard, sql); err != nil {
			return nil, err
		}
	}
	c.replicasTotal.Add(int64(len(targets)))
	return messageStream(fmt.Sprintf("1 row inserted (%d replicas)", len(targets))), nil
}

// routeSelect scatters a read. Window/distance predicates prune the
// shard set by the query MBR; scans and joins touch every shard.
func (c *Coordinator) routeSelect(sql string, st sqlmini.Select) (*sqlmini.Stream, error) {
	targets := c.m.AllShards()
	if st.From.Join != nil {
		call := st.From.Join
		if call.Distance > c.m.Margin {
			return nil, fmt.Errorf("%w (distance %g, margin %g)", ErrDistanceExceedsMargin, call.Distance, c.m.Margin)
		}
		if !st.Count && call.KeyA == "" {
			return nil, ErrNeedJoinKeys
		}
	} else if st.Where != nil {
		if st.Where.Op == "nearest" {
			return nil, ErrNearestUnsupported
		}
		q, err := geom.ParseWKT(st.Where.QueryWKT)
		if err != nil {
			return nil, fmt.Errorf("cluster: query geometry: %w", err)
		}
		d := 0.0
		if st.Where.Op == "withindistance" {
			d = st.Where.Distance
		}
		targets = c.m.ShardsForMBR(geom.MBROf(q), d)
	}
	if st.Count {
		return c.scatterCount(sql, targets)
	}
	return c.scatterStream(sql, targets)
}

// scatterCount sums the shard-local counts of a scoped COUNT. Any
// shard failure fails the query — a partial count is a wrong number,
// not a degraded one, so the loss policy does not apply here.
func (c *Coordinator) scatterCount(sql string, targets []int) (*sqlmini.Stream, error) {
	c.scatterTotal.Inc()
	total := int64(0)
	for _, shard := range targets {
		res, err := c.scopedQuery(shard, sql)
		if err != nil {
			return nil, err
		}
		if !res.HasCount {
			return nil, fmt.Errorf("cluster: shard %d answered a COUNT without a count", shard)
		}
		total += res.Count
	}
	return &sqlmini.Stream{Result: &sqlmini.Result{
		Count:   int(total),
		Columns: []string{"COUNT(*)"},
		Rows:    [][]string{{fmt.Sprintf("%d", total)}},
	}}, nil
}

// scatterStream opens one scoped cursor per target shard and merges
// them through a parallel table function — the remote instances ARE
// the paper's parallel table function, with the network inside Fetch.
func (c *Coordinator) scatterStream(sql string, targets []int) (*sqlmini.Stream, error) {
	c.scatterTotal.Inc()
	trace := c.tracer().Begin("cluster scatter: " + truncateSQL(sql))
	var tracker *lossTracker
	if c.opt.OnShardLoss == LossPartial {
		tracker = &lossTracker{}
	}
	var tfs []*remoteTF
	var schema []storage.Column
	abort := func() {
		for _, tf := range tfs {
			tf.Close()
		}
		trace.Finish()
	}
	for _, shard := range targets {
		end := trace.Span(telemetry.StageScatter)
		res, err := c.scopedQuery(shard, sql)
		end()
		if err != nil {
			var se *ShardError
			transient := errors.As(err, &se) && !errors.As(err, new(*wire.RemoteError))
			if transient && tracker != nil {
				c.shardLossTotal.Inc()
				tracker.record(se)
				continue
			}
			abort()
			return nil, err
		}
		if res.Cursor == nil {
			abort()
			return nil, fmt.Errorf("cluster: shard %d answered a streaming SELECT with an immediate result", shard)
		}
		c.scatterShards.Inc()
		if schema == nil {
			schema = res.Cursor.Columns()
		}
		tfs = append(tfs, &remoteTF{
			co:      c,
			shard:   shard,
			addr:    c.m.Shards[shard],
			cur:     res.Cursor,
			tracker: tracker,
		})
	}
	if len(tfs) == 0 {
		trace.Finish()
		if tracker != nil {
			if pe := tracker.partial(); pe != nil {
				return nil, pe
			}
		}
		return nil, fmt.Errorf("cluster: no shard produced a cursor for %q", truncateSQL(sql))
	}
	return &sqlmini.Stream{
		Schema: schema,
		Cursor: gather(c, tfs, tracker, trace),
	}, nil
}

// messageStream wraps a routing outcome as an immediate result.
func messageStream(msg string) *sqlmini.Stream {
	return &sqlmini.Stream{Result: &sqlmini.Result{Message: msg}}
}

// truncateSQL bounds a statement for trace labels.
func truncateSQL(sql string) string {
	if len(sql) > 64 {
		return sql[:61] + "..."
	}
	return sql
}
