package cluster

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"spatialtf"
	"spatialtf/internal/geom"
)

func testMap(n int) *ShardMap {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	return &ShardMap{
		Bounds: geom.MBR{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000},
		Cols:   4, Rows: 4,
		Margin: 8,
		Shards: addrs,
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := testMap(3)
	m.Shards = []string{"10.0.0.1:7878", "10.0.0.2:7878", "10.0.0.3:7878"}
	path := filepath.Join(t.TempDir(), "cluster.stf")
	if err := m.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := LoadShardMap(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n  saved  %+v\n  loaded %+v", m, got)
	}
}

func TestManifestRejectsCorruption(t *testing.T) {
	m := testMap(2)
	path := filepath.Join(t.TempDir(), "cluster.stf")
	if err := m.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one body byte: the CRC tail must catch it.
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0x40
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardMap(path); err == nil {
		t.Fatal("corrupted manifest loaded without error")
	}
	// Truncations at every length must error, never panic.
	for cut := 0; cut < len(raw); cut++ {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadShardMap(path); err == nil {
			t.Fatalf("truncated manifest (%d bytes) loaded without error", cut)
		}
	}
	// Wrong magic.
	bad = append([]byte(nil), raw...)
	copy(bad, "NOTSTFXX")
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardMap(path); err == nil {
		t.Fatal("wrong-magic manifest loaded without error")
	}
}

func TestShardMapValidate(t *testing.T) {
	bad := []*ShardMap{
		{Cols: 4, Rows: 4, Shards: []string{"a"}}, // empty bounds
		func() *ShardMap { m := testMap(2); m.Cols = 0; return m }(),
		func() *ShardMap { m := testMap(2); m.Margin = -1; return m }(),
		func() *ShardMap { m := testMap(2); m.Shards = nil; return m }(),
		func() *ShardMap { m := testMap(2); m.Shards[1] = ""; return m }(),
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid map validated", i)
		}
	}
	if err := testMap(3).Validate(); err != nil {
		t.Errorf("valid map rejected: %v", err)
	}
}

func TestShardsForMBR(t *testing.T) {
	m := testMap(3)
	// A world-sized window touches every tile, hence every shard.
	all := m.ShardsForMBR(m.Bounds, 0)
	if len(all) != 3 {
		t.Fatalf("world window hit %d of 3 shards", len(all))
	}
	// A window inside one 250x250 tile hits exactly that tile's owner.
	one := m.ShardsForMBR(geom.MBR{MinX: 10, MinY: 10, MaxX: 20, MaxY: 20}, 0)
	if len(one) != 1 || one[0] != m.TileOwner(0, 0) {
		t.Fatalf("single-tile window hit shards %v, want [%d]", one, m.TileOwner(0, 0))
	}
	// Growing it by a margin that crosses the tile border adds owners.
	grown := m.ShardsForMBR(geom.MBR{MinX: 245, MinY: 10, MaxX: 248, MaxY: 20}, 8)
	if len(grown) < 2 {
		t.Fatalf("margin-grown window should straddle two tiles, hit %v", grown)
	}
	// Geometry far outside the world clamps to border tiles instead of
	// vanishing: every row has at least one home.
	out := m.ShardsForMBR(geom.MBR{MinX: -5000, MinY: 4000, MaxX: -4000, MaxY: 5000}, 0)
	if len(out) == 0 {
		t.Fatal("off-world window owns no shard")
	}
}

// TestOwnershipExactlyOnce is the duplicate-freedom proof the scatter
// protocol rests on: for any row MBR, window reference point, or join
// pair, exactly one shard's scope claims it.
func TestOwnershipExactlyOnce(t *testing.T) {
	m := testMap(3)
	scopes := make([]*spatialtf.ClusterScope, m.NShards())
	for i := range scopes {
		scopes[i] = spatialtf.NewClusterScope(m.Bounds, m.Cols, m.Rows, m.NShards(), i)
	}
	rng := rand.New(rand.NewSource(42))
	randMBR := func(spread float64) geom.MBR {
		x := rng.Float64()*1100 - 50 // deliberately overhangs the world
		y := rng.Float64()*1100 - 50
		return geom.MBR{MinX: x, MinY: y, MaxX: x + rng.Float64()*spread, MaxY: y + rng.Float64()*spread}
	}
	for trial := 0; trial < 2000; trial++ {
		r := randMBR(30)
		owners := 0
		for _, sc := range scopes {
			if sc.OwnsMBR(r) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("row MBR %+v owned by %d shards", r, owners)
		}
		q := randMBR(200)
		d := rng.Float64() * 10
		if r.MinX > q.MaxX+d || q.MinX > r.MaxX+d || r.MinY > q.MaxY+d || q.MinY > r.MaxY+d {
			continue // the window rule only applies to actual results
		}
		owners = 0
		for _, sc := range scopes {
			if sc.OwnsWindow(r, q, d) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("window result r=%+v q=%+v d=%g owned by %d shards", r, q, d, owners)
		}
	}
	for trial := 0; trial < 2000; trial++ {
		a := randMBR(25)
		b := randMBR(25)
		d := rng.Float64() * m.Margin
		if a.MinX > b.MaxX+d || b.MinX > a.MaxX+d || a.MinY > b.MaxY+d || b.MinY > a.MaxY+d {
			continue
		}
		owners := 0
		for _, sc := range scopes {
			if sc.OwnsPair(a, b, d) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("join pair a=%+v b=%+v d=%g owned by %d shards", a, b, d, owners)
		}
	}
}
