package cluster

import (
	"fmt"
	"testing"

	"spatialtf/internal/datagen"
)

// BenchmarkClusterJoinScatter measures one scatter-gather spatial join
// end to end — scoped open on every shard, shard-side grid join over
// the replicated slices, merge through the parallel table function —
// at 1 shard (the network-overhead floor) and 3 shards (the scale-out
// case the cluster exists for).
func BenchmarkClusterJoinScatter(b *testing.B) {
	const joinSQL = "SELECT key1, key2 FROM TABLE(spatial_join('bl','geom','br','geom','distance=3','keys=id:id'))"
	for _, n := range []int{1, 3} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			co, _ := bootCluster(b, n, 6, Options{})
			sess := co.NewSession()
			mustExec(b, sess, datasetSQL("bl", datagen.Counties(300, 21))...)
			mustExec(b, sess, datasetSQL("br", datagen.Stars(300, 22))...)
			want, err := runSorted(sess, joinSQL)
			if err != nil {
				b.Fatal(err)
			}
			if len(want) == 0 {
				b.Fatal("join benchmark matched zero pairs")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := runSorted(sess, joinSQL)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != len(want) {
					b.Fatalf("iteration returned %d pairs, want %d", len(rows), len(want))
				}
			}
			b.ReportMetric(float64(len(want)), "pairs")
		})
	}
}
