package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"spatialtf"
	"spatialtf/internal/datagen"
	"spatialtf/internal/geom"
	"spatialtf/internal/server"
	"spatialtf/internal/sqlmini"
)

// testShard is one in-process shard: a real wire server over an
// in-memory database.
type testShard struct {
	addr string
	srv  *server.Server
}

func (s *testShard) kill(t testing.TB) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	s.srv.Shutdown(ctx) // the short deadline force-closes in-flight cursors
}

func startShard(t testing.TB) *testShard {
	t.Helper()
	srv := server.New(spatialtf.Open(), server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	sh := &testShard{addr: ln.Addr().String(), srv: srv}
	t.Cleanup(func() { sh.kill(t) })
	return sh
}

// bootCluster starts n shards and a coordinator over them.
func bootCluster(t testing.TB, n int, margin float64, opt Options) (*Coordinator, []*testShard) {
	t.Helper()
	shards := make([]*testShard, n)
	addrs := make([]string, n)
	for i := range shards {
		shards[i] = startShard(t)
		addrs[i] = shards[i].addr
	}
	m := &ShardMap{
		Bounds: geom.MBR{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000},
		Cols:   4, Rows: 4,
		Margin: margin,
		Shards: addrs,
	}
	if opt.DialTimeout == 0 {
		opt.DialTimeout = 2 * time.Second
	}
	if opt.ReadTimeout == 0 {
		opt.ReadTimeout = 10 * time.Second
	}
	co, err := New(m, opt)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	t.Cleanup(func() { co.Close() })
	return co, shards
}

// datasetSQL renders a dataset as the DDL + INSERT statements that
// build it, so the cluster and the single-node reference ingest the
// byte-identical statement stream.
func datasetSQL(table string, ds datagen.Dataset) []string {
	stmts := []string{
		fmt.Sprintf("CREATE TABLE %s (id INT, name VARCHAR, geom GEOMETRY)", table),
		fmt.Sprintf("CREATE INDEX %s_idx ON %s(geom) INDEXTYPE IS RTREE", table, table),
	}
	for i, g := range ds.Geoms {
		stmts = append(stmts, fmt.Sprintf("INSERT INTO %s VALUES (%d, '%s-%d', '%s')",
			table, i, table, i, geom.MarshalWKT(g)))
	}
	return stmts
}

// execStream is the common statement surface of both sides of the
// differential test.
type execStream interface {
	ExecuteStream(sql string) (*sqlmini.Stream, error)
}

func mustExec(t testing.TB, e execStream, stmts ...string) {
	t.Helper()
	for _, sql := range stmts {
		st, err := e.ExecuteStream(sql)
		if err != nil {
			t.Fatalf("exec %q: %v", sql, err)
		}
		if st.Cursor != nil {
			st.Cursor.Close()
		}
	}
}

// runSorted executes one statement and returns its rows as sorted
// lines (a SQL row source is a set, so order-independent comparison is
// the equality that matters). Counts come back as their single line.
func runSorted(e execStream, sql string) ([]string, error) {
	st, err := e.ExecuteStream(sql)
	if err != nil {
		return nil, err
	}
	if st.Result != nil {
		var out []string
		for _, row := range st.Result.Rows {
			out = append(out, strings.Join(row, "|"))
		}
		sort.Strings(out)
		return out, nil
	}
	var out []string
	for {
		_, row, ok, err := st.Cursor.Next()
		if err != nil {
			st.Cursor.Close()
			sort.Strings(out)
			return out, err // rows before a partial-result error still count
		}
		if !ok {
			break
		}
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		out = append(out, strings.Join(cells, "|"))
	}
	if err := st.Cursor.Close(); err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// TestClusterMatchesSingleNode is the differential acceptance test:
// the same statements against a cluster of 1, 2, and 4 shards and
// against one single-node engine must yield identical sorted row sets
// for window, distance, and join queries over a uniform, a clustered,
// and a skewed dataset — every row exactly once, none lost to
// partitioning, none duplicated by replication.
func TestClusterMatchesSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("boots 7 servers")
	}
	families := []struct {
		name  string
		table string
		ds    datagen.Dataset
	}{
		{"uniform", "cu", datagen.Counties(120, 1)},
		{"clustered", "cs", datagen.Stars(150, 2)},
		{"skewed", "cb", datagen.BlockGroups(90, 3)},
	}
	rightDS := datagen.Counties(80, 7)

	// One shared single-node reference.
	ref := sqlmini.NewEngineOn(spatialtf.Open())
	for _, fam := range families {
		mustExec(t, ref, datasetSQL(fam.table, fam.ds)...)
	}
	mustExec(t, ref, datasetSQL("rt", rightDS)...)

	for _, nShards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", nShards), func(t *testing.T) {
			co, _ := bootCluster(t, nShards, 8, Options{})
			sess := co.NewSession()
			for _, fam := range families {
				mustExec(t, sess, datasetSQL(fam.table, fam.ds)...)
			}
			mustExec(t, sess, datasetSQL("rt", rightDS)...)

			for _, fam := range families {
				queries := []string{
					fmt.Sprintf("SELECT id, name FROM %s WHERE sdo_relate(geom, 'POLYGON ((200 200, 600 200, 600 500, 200 500, 200 200))', 'mask=anyinteract') = 'TRUE'", fam.table),
					fmt.Sprintf("SELECT count(*) FROM %s WHERE sdo_relate(geom, 'POLYGON ((0 0, 450 0, 450 980, 0 980, 0 0))', 'mask=anyinteract')", fam.table),
					fmt.Sprintf("SELECT id FROM %s WHERE sdo_within_distance(geom, 'POINT (500 500)', 'distance=60') = 'TRUE'", fam.table),
					fmt.Sprintf("SELECT id FROM %s", fam.table),
					fmt.Sprintf("SELECT count(*) FROM %s", fam.table),
					fmt.Sprintf("SELECT key1, key2 FROM TABLE(spatial_join('%s','geom','rt','geom','distance=5','keys=id:id'))", fam.table),
					fmt.Sprintf("SELECT count(*) FROM TABLE(spatial_join('%s','geom','rt','geom','anyinteract'))", fam.table),
				}
				for _, q := range queries {
					want, err := runSorted(ref, q)
					if err != nil {
						t.Fatalf("[%s] single-node %q: %v", fam.name, q, err)
					}
					got, err := runSorted(sess, q)
					if err != nil {
						t.Fatalf("[%s] cluster %q: %v", fam.name, q, err)
					}
					if len(got) != len(want) {
						t.Errorf("[%s] %q: cluster returned %d rows, single node %d", fam.name, q, len(got), len(want))
						continue
					}
					for i := range want {
						if got[i] != want[i] {
							t.Errorf("[%s] %q: row %d differs: cluster %q, single node %q", fam.name, q, i, got[i], want[i])
							break
						}
					}
				}
			}
		})
	}
}

// TestShardLossPartial kills a shard mid-stream under the partial
// policy: the surviving shards' rows keep flowing and the stream ends
// with a typed *PartialError — never a silently short result.
func TestShardLossPartial(t *testing.T) {
	co, shards := bootCluster(t, 2, 0, Options{
		OnShardLoss: LossPartial,
		FetchBatch:  4,
		ReadTimeout: 2 * time.Second,
	})
	sess := co.NewSession()
	mustExec(t, sess, datasetSQL("pts", datagen.Counties(120, 5))...)

	st, err := sess.ExecuteStream("SELECT id FROM pts")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Cursor.Close()
	// Pull a few rows so both remote cursors are mid-stream, then kill
	// one shard under them.
	for i := 0; i < 4; i++ {
		if _, _, ok, err := st.Cursor.Next(); err != nil || !ok {
			t.Fatalf("warm-up row %d: ok=%v err=%v", i, ok, err)
		}
	}
	shards[1].kill(t)
	rows := 4
	var finalErr error
	for {
		_, _, ok, err := st.Cursor.Next()
		if err != nil {
			finalErr = err
			break
		}
		if !ok {
			break
		}
		rows++
	}
	var pe *PartialError
	if !errors.As(finalErr, &pe) {
		t.Fatalf("stream ended with %v (%d rows), want a *PartialError", finalErr, rows)
	}
	if len(pe.Failed) == 0 || pe.Failed[0].Shard != 1 {
		t.Fatalf("partial error blames %+v, want shard 1", pe.Failed)
	}
	if rows == 0 {
		t.Fatal("no rows survived from the healthy shard")
	}
}

// TestShardLossFailFast kills a shard mid-stream under the default
// policy: the next pull surfaces a typed *ShardError.
func TestShardLossFailFast(t *testing.T) {
	co, shards := bootCluster(t, 2, 0, Options{
		FetchBatch:  4,
		ReadTimeout: 2 * time.Second,
	})
	sess := co.NewSession()
	mustExec(t, sess, datasetSQL("pts", datagen.Counties(120, 5))...)

	st, err := sess.ExecuteStream("SELECT id FROM pts")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Cursor.Close()
	for i := 0; i < 4; i++ {
		if _, _, ok, err := st.Cursor.Next(); err != nil || !ok {
			t.Fatalf("warm-up row %d: ok=%v err=%v", i, ok, err)
		}
	}
	shards[1].kill(t)
	var finalErr error
	for {
		_, _, ok, err := st.Cursor.Next()
		if err != nil {
			finalErr = err
			break
		}
		if !ok {
			break
		}
	}
	var se *ShardError
	if !errors.As(finalErr, &se) {
		t.Fatalf("stream ended with %v, want a *ShardError", finalErr)
	}
	if se.Shard != 1 {
		t.Fatalf("shard error blames shard %d, want 1", se.Shard)
	}
}

// TestScatterDeadShardAtOpen loses a shard before the query even
// starts: fail-fast errors at open, partial streams the survivor and
// reports the loss, and COUNT always fails (a partial count is a wrong
// number, not a degraded one).
func TestScatterDeadShardAtOpen(t *testing.T) {
	co, shards := bootCluster(t, 2, 0, Options{
		OnShardLoss: LossPartial,
		DialTimeout: 500 * time.Millisecond,
		ReadTimeout: 2 * time.Second,
	})
	sess := co.NewSession()
	mustExec(t, sess, datasetSQL("pts", datagen.Counties(60, 5))...)
	shards[1].kill(t)

	rows, err := runSorted(sess, "SELECT id FROM pts")
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("partial-mode scan with a dead shard: rows=%d err=%v, want *PartialError", len(rows), err)
	}
	if len(rows) == 0 {
		t.Fatal("partial-mode scan delivered no rows from the surviving shard")
	}

	if _, err := runSorted(sess, "SELECT count(*) FROM pts"); err == nil {
		t.Fatal("COUNT with a dead shard succeeded; a partial count must fail")
	}

	coFail, err := New(co.Map(), Options{DialTimeout: 500 * time.Millisecond, ReadTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer coFail.Close()
	_, err = runSorted(coFail.NewSession(), "SELECT id FROM pts")
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("fail-fast scan with a dead shard: err=%v, want *ShardError", err)
	}
}

// TestClusterTypedErrors checks the routing rejections are typed and
// match with errors.Is.
func TestClusterTypedErrors(t *testing.T) {
	co, _ := bootCluster(t, 2, 2, Options{})
	sess := co.NewSession()
	mustExec(t, sess, datasetSQL("te", datagen.Counties(20, 9))...)

	_, err := sess.ExecuteStream("SELECT key1, key2 FROM TABLE(spatial_join('te','geom','te','geom','distance=5','keys=id:id'))")
	if !errors.Is(err, ErrDistanceExceedsMargin) {
		t.Errorf("join beyond margin: %v, want ErrDistanceExceedsMargin", err)
	}
	_, err = sess.ExecuteStream("SELECT rid1, rid2 FROM TABLE(spatial_join('te','geom','te','geom','anyinteract'))")
	if !errors.Is(err, ErrNeedJoinKeys) {
		t.Errorf("join without keys: %v, want ErrNeedJoinKeys", err)
	}
	_, err = sess.ExecuteStream("SELECT id FROM te WHERE sdo_nn(geom, 'POINT (1 1)', 'k=3') = 'TRUE'")
	if !errors.Is(err, ErrNearestUnsupported) {
		t.Errorf("sdo_nn: %v, want ErrNearestUnsupported", err)
	}
	_, err = sess.ExecuteStream("UPDATE te SET geom = 'POINT (1 1)'")
	if !errors.Is(err, ErrGeometryUpdate) {
		t.Errorf("geometry update: %v, want ErrGeometryUpdate", err)
	}
}

// TestClusterDML routes INSERT/DELETE/UPDATE and confirms reads agree
// afterwards.
func TestClusterDML(t *testing.T) {
	co, _ := bootCluster(t, 3, 4, Options{})
	sess := co.NewSession()
	mustExec(t, sess,
		"CREATE TABLE dml (id INT, name VARCHAR, geom GEOMETRY)",
		"CREATE INDEX dml_idx ON dml(geom) INDEXTYPE IS RTREE",
		"INSERT INTO dml VALUES (1, 'a', 'POINT (10 10)')",
		"INSERT INTO dml VALUES (2, 'b', 'POINT (500 500)')",
		"INSERT INTO dml VALUES (3, 'c', 'POINT (990 990)')",
	)
	rows, err := runSorted(sess, "SELECT id FROM dml")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("scan after insert: %v, want 3 rows", rows)
	}
	mustExec(t, sess, "UPDATE dml SET name = 'moved' WHERE sdo_relate(geom, 'POINT (500 500)', 'mask=anyinteract')")
	rows, err = runSorted(sess, "SELECT name FROM dml WHERE sdo_relate(geom, 'POINT (500 500)', 'mask=anyinteract') = 'TRUE'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0] != "moved" {
		t.Fatalf("update did not apply: %v", rows)
	}
	mustExec(t, sess, "DELETE FROM dml WHERE sdo_relate(geom, 'POINT (10 10)', 'mask=anyinteract')")
	rows, err = runSorted(sess, "SELECT id FROM dml")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("scan after delete: %v, want 2 rows", rows)
	}
}

// TestScatterMergeRace drives concurrent scatter queries through one
// coordinator from many goroutines; run under -race this is the data
// race check on the scatter/merge path.
func TestScatterMergeRace(t *testing.T) {
	co, _ := bootCluster(t, 2, 4, Options{})
	setup := co.NewSession()
	mustExec(t, setup, datasetSQL("race", datagen.Counties(80, 11))...)

	const goroutines = 6
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := co.NewSession()
			defer sess.Close()
			for i := 0; i < 5; i++ {
				q := fmt.Sprintf("SELECT id FROM race WHERE sdo_within_distance(geom, 'POINT (%d %d)', 'distance=120') = 'TRUE'",
					100+g*130, 100+i*150)
				if _, err := runSorted(sess, q); err != nil {
					errc <- fmt.Errorf("goroutine %d query %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestClusterMetricsSnapshot checks the per-shard labelling and the
// cluster rollup of the aggregated scrape.
func TestClusterMetricsSnapshot(t *testing.T) {
	co, _ := bootCluster(t, 2, 0, Options{})
	sess := co.NewSession()
	mustExec(t, sess,
		"CREATE TABLE ms (id INT, name VARCHAR, geom GEOMETRY)",
		"INSERT INTO ms VALUES (1, 'a', 'POINT (1 1)')",
	)
	pts := co.MetricsSnapshot()
	var up0, up1, shard0Series, rollups int
	for _, p := range pts {
		switch {
		case p.Name == "shard0_up" && p.Value == 1:
			up0++
		case p.Name == "shard1_up" && p.Value == 1:
			up1++
		case strings.HasPrefix(p.Name, "shard0_"):
			shard0Series++
		case strings.HasPrefix(p.Name, "cluster_"):
			rollups++
		}
	}
	if up0 != 1 || up1 != 1 {
		t.Fatalf("shard up gauges: shard0=%d shard1=%d, want 1 each", up0, up1)
	}
	if shard0Series == 0 || rollups == 0 {
		t.Fatalf("snapshot has %d shard0 series and %d rollups, want both > 0", shard0Series, rollups)
	}
}
