package cluster

import (
	"fmt"
	"strings"
)

// ShardError wraps a failure talking to one shard with its identity, so
// callers can tell which node misbehaved and errors.Is/As still reach
// the transport cause.
type ShardError struct {
	Shard int
	Addr  string
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("cluster: shard %d (%s): %v", e.Shard, e.Addr, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// PartialError reports a scatter query that completed with some shards
// lost. It is returned (never silently swallowed) at end of stream when
// the coordinator runs with OnShardLoss "partial": the rows delivered
// before it are correct but the overall result is incomplete.
type PartialError struct {
	Failed []*ShardError
}

func (e *PartialError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: partial result, %d shard(s) lost:", len(e.Failed))
	for _, f := range e.Failed {
		fmt.Fprintf(&b, " [%v]", f)
	}
	return b.String()
}

// Unwrap exposes the individual shard failures to errors.Is/As.
func (e *PartialError) Unwrap() []error {
	out := make([]error, len(e.Failed))
	for i, f := range e.Failed {
		out[i] = f
	}
	return out
}
