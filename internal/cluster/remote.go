package cluster

import (
	"sync"
	"time"

	"spatialtf/internal/storage"
	"spatialtf/internal/tablefunc"
	"spatialtf/internal/telemetry"
	"spatialtf/internal/wire"
)

// lossTracker collects shard failures during a partial-result scatter.
// Shared by every remote instance of one query; the gather cursor
// surfaces the collected losses as a *PartialError at end of stream.
type lossTracker struct {
	mu   sync.Mutex
	perr *PartialError
}

func (t *lossTracker) record(e *ShardError) {
	t.mu.Lock()
	if t.perr == nil {
		t.perr = &PartialError{}
	}
	t.perr.Failed = append(t.perr.Failed, e)
	t.mu.Unlock()
}

// partial returns the accumulated loss as one error, or nil when every
// shard delivered. The error is built in record so the merge loop's
// end-of-stream check stays allocation-free.
func (t *lossTracker) partial() *PartialError {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.perr
}

// remoteTF adapts one shard's open wire cursor to the table-function
// start–fetch–close contract, which is the whole trick of the cluster:
// tablefunc.Parallel cannot tell a network row source from a local one,
// so the scatter-gather merge is the paper's parallel table function
// with remote instances.
type remoteTF struct {
	co      *Coordinator
	shard   int
	addr    string
	cur     *wire.Cursor
	tracker *lossTracker // nil in fail-fast mode
}

// Start is a no-op: the cursor was already opened during the scatter
// phase (opening there lets the coordinator apply its loss policy
// before any rows flow).
func (r *remoteTF) Start() error { return nil }

// Fetch pulls the next remote batch. In partial mode a transport
// failure is recorded and the instance ends cleanly (the merged stream
// stays alive on the surviving shards); server-reported errors always
// propagate — a shard that answered with an error is not "lost".
func (r *remoteTF) Fetch(max int) ([]storage.Row, error) {
	if r.cur == nil {
		return nil, nil
	}
	for {
		rows, done, err := r.cur.Fetch(max)
		if err != nil {
			se := &ShardError{Shard: r.shard, Addr: r.addr, Err: err}
			if _, remote := err.(*wire.RemoteError); remote {
				return nil, se
			}
			// Transport failure: this connection is unusable for anyone.
			r.co.dropClient(r.shard)
			r.cur = nil
			if r.tracker != nil {
				r.tracker.record(se)
				return nil, nil
			}
			return nil, se
		}
		if len(rows) > 0 {
			return rows, nil
		}
		if done {
			return nil, nil
		}
	}
}

// Close releases the remote cursor. A failed close is ignored: the
// rows are already delivered, and if the connection died the server
// reaps the cursor with it.
func (r *remoteTF) Close() error {
	if r.cur != nil {
		_ = r.cur.Close()
		r.cur = nil
	}
	return nil
}

// emptyCursor is the placeholder input partition a remote instance
// receives: the real input lives on the shard, so the local partition
// carries no rows.
type emptyCursor struct{}

func (emptyCursor) Next() (storage.RowID, storage.Row, bool, error) {
	return storage.InvalidRowID, nil, false, nil
}
func (emptyCursor) Close() error { return nil }

// gather merges the scatter instances into one client-facing cursor
// via tablefunc.Parallel, layering the loss policy and merge-stage
// accounting on top.
func gather(co *Coordinator, tfs []*remoteTF, tracker *lossTracker, trace *telemetry.Trace) storage.Cursor {
	parts := make([]storage.Cursor, len(tfs))
	factory := func(i int, _ storage.Cursor) (tablefunc.TableFunction, error) {
		return tfs[i], nil
	}
	for i := range parts {
		parts[i] = emptyCursor{}
	}
	merged := tablefunc.Parallel(parts, factory, co.opt.FetchBatch)
	return &gatherCursor{in: merged, tracker: tracker, trace: trace}
}

// gatherCursor finishes a scatter-gather stream: it accounts merge
// time (one StageMerge span per produced batch-worth of rows) and, in
// partial mode, converts recorded shard losses into a *PartialError at
// end of stream — the caller always learns the result was incomplete,
// never sees a silently short row set.
type gatherCursor struct {
	in      storage.Cursor
	tracker *lossTracker
	trace   *telemetry.Trace

	rows    int64
	pending time.Duration
	done    bool
	failed  error
}

func (c *gatherCursor) Next() (storage.RowID, storage.Row, bool, error) {
	if c.failed != nil {
		return storage.InvalidRowID, nil, false, c.failed
	}
	if c.done {
		return storage.InvalidRowID, nil, false, nil
	}
	t0 := time.Now()
	id, row, ok, err := c.in.Next()
	c.pending += time.Since(t0)
	if err != nil {
		c.failed = err
		c.flushMerge()
		return storage.InvalidRowID, nil, false, err
	}
	if !ok {
		c.done = true
		c.flushMerge()
		if c.tracker != nil {
			if pe := c.tracker.partial(); pe != nil {
				c.failed = pe
				return storage.InvalidRowID, nil, false, pe
			}
		}
		return storage.InvalidRowID, nil, false, nil
	}
	c.rows++
	if c.rows%tablefunc.DefaultBatch == 0 {
		c.flushMerge()
	}
	return id, row, true, nil
}

// flushMerge records the accumulated gather time as one merge span.
func (c *gatherCursor) flushMerge() {
	if c.pending > 0 {
		c.trace.Add(telemetry.StageMerge, c.pending, 1)
		c.pending = 0
	}
}

func (c *gatherCursor) Close() error {
	c.flushMerge()
	c.trace.Finish()
	return c.in.Close()
}
