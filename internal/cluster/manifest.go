// Package cluster implements the space-partitioned shard cluster: a
// coordinator that partitions tables across N spatialserverd instances
// by grid tile and exposes the same query surface as a single node.
//
// The paper's start–fetch–close cursor interface composes over the
// network unchanged: a remote shard cursor is just another row source,
// so a scatter-gather query is a parallel table function whose
// instances happen to fetch over TCP (the Gray–Szalay–Fekete spatial
// library served planet-scale cross-match traffic behind exactly this
// shape). Ownership reuses the sjoin two-layer grid: every row is
// replicated to the shards whose tiles its margin-grown MBR touches,
// and each query result is reported only by the shard owning the tile
// containing its reference point (the A/B/C/D corner rule), so shard
// streams concatenate duplicate-free.
package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"spatialtf/internal/geom"
	"spatialtf/internal/sjoin"
	"spatialtf/internal/wire"
)

// manifestMagic versions the shard-map manifest file; the trailing
// digit is the format version (the pager catalog idiom).
const manifestMagic = "STFCLUS1"

// manifestCRC is the CRC-32C table guarding the manifest tail.
var manifestCRC = crc32.MakeTable(crc32.Castagnoli)

// ShardMap is the cluster's ownership function: a fixed Cols×Rows grid
// over Bounds, tile (col, row) owned by shard (row*Cols+col) % N where
// N = len(Shards). Rows are replicated to every shard whose tiles their
// MBR grown by Margin intersects, which lets any shard answer scoped
// window queries margin-free and scoped joins up to distance Margin.
// Every node of a cluster must agree on the ShardMap exactly; it is
// persisted as a CRC-tailed manifest next to the router.
type ShardMap struct {
	// Bounds is the world extent the grid covers. Geometry outside it
	// clamps to the border tiles.
	Bounds geom.MBR
	// Cols, Rows are the grid dimensions.
	Cols, Rows int
	// Margin is the replication margin: the largest join distance the
	// cluster can evaluate. Window/distance predicates do not need it.
	Margin float64
	// Shards are the shard server addresses; the slice index is the
	// shard id.
	Shards []string
}

// Validate rejects unusable maps.
func (m *ShardMap) Validate() error {
	if !(m.Bounds.MinX < m.Bounds.MaxX) || !(m.Bounds.MinY < m.Bounds.MaxY) {
		return fmt.Errorf("cluster: shard map with empty bounds %+v", m.Bounds)
	}
	if m.Cols < 1 || m.Rows < 1 || m.Cols > 1<<16 || m.Rows > 1<<16 {
		return fmt.Errorf("cluster: shard map with %dx%d grid", m.Cols, m.Rows)
	}
	if m.Margin < 0 {
		return fmt.Errorf("cluster: negative replication margin %g", m.Margin)
	}
	if len(m.Shards) < 1 {
		return fmt.Errorf("cluster: shard map with no shards")
	}
	for i, a := range m.Shards {
		if a == "" {
			return fmt.Errorf("cluster: shard %d has no address", i)
		}
	}
	return nil
}

// NShards returns the cluster size.
func (m *ShardMap) NShards() int { return len(m.Shards) }

// Grid returns the ownership grid.
func (m *ShardMap) Grid() sjoin.Grid { return sjoin.NewGrid(m.Bounds, m.Cols, m.Rows) }

// TileOwner returns the shard owning tile (col, row).
func (m *ShardMap) TileOwner(col, row int) int {
	return (row*m.Cols + col) % len(m.Shards)
}

// Scope returns the wire scope shard i evaluates scatter queries under.
func (m *ShardMap) Scope(shard int) wire.Scope {
	return wire.Scope{
		MinX: m.Bounds.MinX, MinY: m.Bounds.MinY,
		MaxX: m.Bounds.MaxX, MaxY: m.Bounds.MaxY,
		Cols: m.Cols, Rows: m.Rows,
		NShards: len(m.Shards), Shard: shard,
	}
}

// ShardsForMBR returns the distinct shards owning at least one tile the
// MBR grown by expand intersects, in shard order. Used both for insert
// replication (expand = Margin) and for window-query scatter pruning
// (expand = search distance).
func (m *ShardMap) ShardsForMBR(b geom.MBR, expand float64) []int {
	g := m.Grid()
	c0, c1 := g.ColOf(b.MinX-expand), g.ColOf(b.MaxX+expand)
	r0, r1 := g.RowOf(b.MinY-expand), g.RowOf(b.MaxY+expand)
	seen := make([]bool, len(m.Shards))
	n := 0
	for r := r0; r <= r1 && n < len(m.Shards); r++ {
		for c := c0; c <= c1 && n < len(m.Shards); c++ {
			if o := m.TileOwner(c, r); !seen[o] {
				seen[o] = true
				n++
			}
		}
	}
	out := make([]int, 0, n)
	for i, s := range seen {
		if s {
			out = append(out, i)
		}
	}
	return out
}

// AllShards returns every shard id.
func (m *ShardMap) AllShards() []int {
	out := make([]int, len(m.Shards))
	for i := range out {
		out[i] = i
	}
	return out
}

// encode renders the manifest image: magic, little-endian body, CRC-32C
// tail.
func (m *ShardMap) encode() []byte {
	buf := []byte(manifestMagic)
	for _, f := range []float64{m.Bounds.MinX, m.Bounds.MinY, m.Bounds.MaxX, m.Bounds.MaxY, m.Margin} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Cols))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Shards)))
	for _, a := range m.Shards {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a)))
		buf = append(buf, a...)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, manifestCRC))
}

// Save writes the manifest atomically: temp file, fsync, rename,
// directory fsync (the catalog idiom, so a crash leaves either the old
// or the new manifest, never a torn one).
func (m *ShardMap) Save(path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(m.encode()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// LoadShardMap reads and verifies a manifest.
func LoadShardMap(path string) (*ShardMap, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(manifestMagic)+4 || string(raw[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("cluster: %s is not a shard-map manifest", path)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, manifestCRC) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("cluster: manifest %s fails its checksum", path)
	}
	p := body[len(manifestMagic):]
	need := func(n int) error {
		if len(p) < n {
			return fmt.Errorf("cluster: manifest %s is truncated", path)
		}
		return nil
	}
	var m ShardMap
	fs := []*float64{&m.Bounds.MinX, &m.Bounds.MinY, &m.Bounds.MaxX, &m.Bounds.MaxY, &m.Margin}
	for _, dst := range fs {
		if err := need(8); err != nil {
			return nil, err
		}
		*dst = math.Float64frombits(binary.LittleEndian.Uint64(p))
		p = p[8:]
	}
	u32 := func() (uint32, error) {
		if err := need(4); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint32(p)
		p = p[4:]
		return v, nil
	}
	cols, err := u32()
	if err != nil {
		return nil, err
	}
	rows, err := u32()
	if err != nil {
		return nil, err
	}
	n, err := u32()
	if err != nil {
		return nil, err
	}
	m.Cols, m.Rows = int(cols), int(rows)
	if n > 1<<16 {
		return nil, fmt.Errorf("cluster: manifest %s names %d shards", path, n)
	}
	m.Shards = make([]string, n)
	for i := range m.Shards {
		l, err := u32()
		if err != nil {
			return nil, err
		}
		if err := need(int(l)); err != nil {
			return nil, err
		}
		m.Shards[i] = string(p[:l])
		p = p[l:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("cluster: manifest %s has %d trailing bytes", path, len(p))
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
