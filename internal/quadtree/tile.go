// Package quadtree implements Oracle Spatial's Linear Quadtree index:
// geometries are tessellated into fixed-level tiles at index-creation
// time, the tile codes are stored in a B-tree, and window queries are
// answered by decomposing the query window into the same tiling and
// range-scanning the B-tree. Tessellation of "large and complex polygon
// geometries" is the dominant index-creation cost — exactly the property
// the paper's §5 exploits by parallelising it with table functions.
package quadtree

import (
	"fmt"

	"spatialtf/internal/geom"
)

// MaxLevel bounds the tiling level so a tile code's interleaved
// coordinates fit a uint64 Morton code.
const MaxLevel = 24

// Tile identifies one fixed-level quadtree cell by its Morton (Z-order)
// code. At level L the space is a 2^L × 2^L grid; the code interleaves
// the cell's x and y indexes so that B-tree order follows the Z curve,
// keeping spatially adjacent tiles nearly adjacent in key space.
type Tile uint64

// Grid fixes the tiling domain and level. The domain corresponds to the
// coordinate bounds recorded in Oracle's spatial metadata; geometries
// must lie within it.
type Grid struct {
	Bounds geom.MBR
	Level  int
}

// NewGrid validates and returns a tiling grid.
func NewGrid(bounds geom.MBR, level int) (Grid, error) {
	if !bounds.Valid() {
		return Grid{}, fmt.Errorf("quadtree: invalid grid bounds %v", bounds)
	}
	if level < 1 || level > MaxLevel {
		return Grid{}, fmt.Errorf("quadtree: level %d out of range [1, %d]", level, MaxLevel)
	}
	return Grid{Bounds: bounds, Level: level}, nil
}

// Side returns the number of cells per axis, 2^Level.
func (g Grid) Side() uint32 { return 1 << uint(g.Level) }

// CellSize returns the width and height of one cell.
func (g Grid) CellSize() (w, h float64) {
	s := float64(g.Side())
	return g.Bounds.Width() / s, g.Bounds.Height() / s
}

// CellAt returns the cell coordinates containing point p, clamped to the
// grid.
func (g Grid) CellAt(p geom.Point) (cx, cy uint32) {
	w, h := g.CellSize()
	fx := (p.X - g.Bounds.MinX) / w
	fy := (p.Y - g.Bounds.MinY) / h
	side := int64(g.Side())
	ix := int64(fx)
	iy := int64(fy)
	if ix < 0 {
		ix = 0
	}
	if iy < 0 {
		iy = 0
	}
	if ix >= side {
		ix = side - 1
	}
	if iy >= side {
		iy = side - 1
	}
	return uint32(ix), uint32(iy)
}

// TileOf returns the tile code for cell (cx, cy).
func (g Grid) TileOf(cx, cy uint32) Tile { return Tile(morton(cx, cy)) }

// CellOf inverts TileOf.
func (g Grid) CellOf(t Tile) (cx, cy uint32) { return demorton(uint64(t)) }

// TileRect returns the spatial extent of tile t.
func (g Grid) TileRect(t Tile) geom.MBR {
	cx, cy := demorton(uint64(t))
	w, h := g.CellSize()
	return geom.MBR{
		MinX: g.Bounds.MinX + float64(cx)*w,
		MinY: g.Bounds.MinY + float64(cy)*h,
		MaxX: g.Bounds.MinX + float64(cx+1)*w,
		MaxY: g.Bounds.MinY + float64(cy+1)*h,
	}
}

// morton interleaves the low 32 bits of x (even positions) and y (odd
// positions).
func morton(x, y uint32) uint64 {
	return spread(x) | spread(y)<<1
}

// spread distributes the 32 bits of v across the even bit positions of
// a uint64.
func spread(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// demorton inverts morton.
func demorton(z uint64) (x, y uint32) {
	return compact(z), compact(z >> 1)
}

// compact gathers the even bit positions of z into a uint32.
func compact(z uint64) uint32 {
	x := z & 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0F0F0F0F0F0F0F0F
	x = (x | x>>4) & 0x00FF00FF00FF00FF
	x = (x | x>>8) & 0x0000FFFF0000FFFF
	x = (x | x>>16) & 0x00000000FFFFFFFF
	return uint32(x)
}
