package quadtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"spatialtf/internal/btree"
	"spatialtf/internal/geom"
	"spatialtf/internal/storage"
)

func testGrid(t testing.TB, level int) Grid {
	t.Helper()
	g, err := NewGrid(geom.MBR{MinX: 0, MinY: 0, MaxX: 1024, MaxY: 1024}, level)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	return g
}

func rid(i int) storage.RowID {
	return storage.RowID{Page: uint32(i/1000 + 1), Slot: uint16(i % 1000)}
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(geom.EmptyMBR(), 4); err == nil {
		t.Errorf("empty bounds: want error")
	}
	if _, err := NewGrid(geom.MBR{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 0); err == nil {
		t.Errorf("level 0: want error")
	}
	if _, err := NewGrid(geom.MBR{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, MaxLevel+1); err == nil {
		t.Errorf("level too deep: want error")
	}
}

func TestMortonRoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		gx, gy := demorton(morton(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMortonOrderIsZOrder(t *testing.T) {
	// The four children of a quad appear in the order
	// (0,0), (1,0), (0,1), (1,1).
	codes := []uint64{morton(0, 0), morton(1, 0), morton(0, 1), morton(1, 1)}
	for i := 1; i < len(codes); i++ {
		if codes[i-1] >= codes[i] {
			t.Fatalf("morton codes not in Z order: %v", codes)
		}
	}
}

func TestGridCells(t *testing.T) {
	g := testGrid(t, 4) // 16x16 grid, 64-unit cells
	if g.Side() != 16 {
		t.Fatalf("Side = %d", g.Side())
	}
	w, h := g.CellSize()
	if w != 64 || h != 64 {
		t.Fatalf("CellSize = %g, %g", w, h)
	}
	cx, cy := g.CellAt(geom.Point{X: 100, Y: 700})
	if cx != 1 || cy != 10 {
		t.Errorf("CellAt = %d, %d", cx, cy)
	}
	// Clamping at and past the upper edge.
	cx, cy = g.CellAt(geom.Point{X: 1024, Y: 2000})
	if cx != 15 || cy != 15 {
		t.Errorf("clamped CellAt = %d, %d", cx, cy)
	}
	cx, cy = g.CellAt(geom.Point{X: -5, Y: -5})
	if cx != 0 || cy != 0 {
		t.Errorf("negative CellAt = %d, %d", cx, cy)
	}
	// TileRect inverts CellAt for cell corners.
	tile := g.TileOf(3, 7)
	r := g.TileRect(tile)
	want := geom.MBR{MinX: 192, MinY: 448, MaxX: 256, MaxY: 512}
	if r != want {
		t.Errorf("TileRect = %v, want %v", r, want)
	}
	bx, by := g.CellOf(tile)
	if bx != 3 || by != 7 {
		t.Errorf("CellOf = %d, %d", bx, by)
	}
}

func TestTessellatePoint(t *testing.T) {
	g := testGrid(t, 6)
	tiles, err := Tessellate(g, geom.NewPoint(100, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(tiles) != 1 {
		t.Fatalf("point tessellation = %d tiles", len(tiles))
	}
	r := g.TileRect(tiles[0])
	if !r.ContainsPoint(geom.Point{X: 100, Y: 100}) {
		t.Errorf("tile %v does not contain the point", r)
	}
}

func TestTessellateRect(t *testing.T) {
	g := testGrid(t, 4) // 64-unit cells
	// A rect spanning exactly cells (1..2, 1..2) interior.
	rect, err := geom.NewRect(70, 70, 190, 190)
	if err != nil {
		t.Fatal(err)
	}
	tiles, err := Tessellate(g, rect)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiles) != 4 {
		t.Fatalf("rect tessellation = %d tiles, want 4", len(tiles))
	}
	// Tiles must come back in ascending Morton order.
	for i := 1; i < len(tiles); i++ {
		if tiles[i-1] >= tiles[i] {
			t.Errorf("tiles out of Morton order: %v", tiles)
		}
	}
	// Every returned tile must intersect the rect; every rect cell must
	// be present.
	for _, tile := range tiles {
		if g.TileRect(tile).Dist(geom.MBROf(rect)) > 0 {
			t.Errorf("tile %v disjoint from the rect", tile)
		}
	}
}

func TestTessellateRespectsShape(t *testing.T) {
	g := testGrid(t, 5) // 32-unit cells
	// A thin diagonal triangle: its MBR covers many cells but the shape
	// touches far fewer. Tessellation must be shape-exact, not MBR-based.
	tri, err := geom.NewPolygon([]geom.Point{{X: 0, Y: 0}, {X: 1024, Y: 0}, {X: 1024, Y: 32}})
	if err != nil {
		t.Fatal(err)
	}
	tiles, err := Tessellate(g, tri)
	if err != nil {
		t.Fatal(err)
	}
	mbrCells := int(g.Side()) * int(g.Side())
	if len(tiles) >= mbrCells/2 {
		t.Errorf("thin triangle covered %d of %d cells; tessellation ignores shape", len(tiles), mbrCells)
	}
	// The corner far from the hypotenuse must not be covered.
	farTile := g.TileOf(0, 31)
	for _, tile := range tiles {
		if tile == farTile {
			t.Errorf("far corner tile covered")
		}
	}
}

func TestTessellateOutsideGrid(t *testing.T) {
	g := testGrid(t, 4)
	out, _ := geom.NewRect(2000, 2000, 3000, 3000)
	if _, err := Tessellate(g, out); err == nil {
		t.Errorf("geometry outside grid: want error")
	}
	var invalid geom.Geometry
	if _, err := Tessellate(g, invalid); err == nil {
		t.Errorf("invalid geometry: want error")
	}
}

func TestCoverWindow(t *testing.T) {
	g := testGrid(t, 4)
	tiles := CoverWindow(g, geom.MBR{MinX: 70, MinY: 70, MaxX: 190, MaxY: 190})
	if len(tiles) != 4 {
		t.Fatalf("CoverWindow = %d tiles, want 4", len(tiles))
	}
	// Window outside the grid covers nothing.
	if got := CoverWindow(g, geom.MBR{MinX: 5000, MinY: 5000, MaxX: 6000, MaxY: 6000}); got != nil {
		t.Errorf("out-of-grid window = %v", got)
	}
	// Window clipped to the grid.
	tiles = CoverWindow(g, geom.MBR{MinX: -100, MinY: -100, MaxX: 10, MaxY: 10})
	if len(tiles) != 1 {
		t.Errorf("clipped window = %d tiles", len(tiles))
	}
}

// randomRectGeom returns a random rectangle geometry within the grid.
func randomRectGeom(t testing.TB, rng *rand.Rand) geom.Geometry {
	x := rng.Float64() * 950
	y := rng.Float64() * 950
	w := rng.Float64()*60 + 1
	h := rng.Float64()*60 + 1
	if x+w > 1024 {
		w = 1024 - x
	}
	if y+h > 1024 {
		h = 1024 - y
	}
	r, err := geom.NewRect(x, y, x+w, y+h)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestIndexWindowQueryEqualsLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	grid := testGrid(t, 6)
	idx := NewIndex(grid)
	geoms := make([]geom.Geometry, 400)
	for i := range geoms {
		geoms[i] = randomRectGeom(t, rng)
		if err := idx.InsertGeometry(rid(i), geoms[i]); err != nil {
			t.Fatalf("InsertGeometry %d: %v", i, err)
		}
	}
	if idx.EntryCount() == 0 {
		t.Fatal("no index entries")
	}
	for trial := 0; trial < 30; trial++ {
		w := geom.MBROf(randomRectGeom(t, rng))
		window, err := geom.NewRect(w.MinX, w.MinY, w.MaxX, w.MaxY)
		if err != nil {
			t.Fatal(err)
		}
		// Exact expected: all geometries intersecting the window.
		want := map[storage.RowID]bool{}
		for i, g := range geoms {
			if geom.Intersects(g, window) {
				want[rid(i)] = true
			}
		}
		// Primary filter must be a superset; after the secondary filter
		// the result must match exactly.
		cands := idx.WindowCandidates(w)
		candSet := map[storage.RowID]bool{}
		for _, id := range cands {
			candSet[id] = true
		}
		for id := range want {
			if !candSet[id] {
				t.Fatalf("trial %d: candidate set missing true hit %v", trial, id)
			}
		}
		got := map[storage.RowID]bool{}
		for _, id := range cands {
			i := int(id.Page-1)*1000 + int(id.Slot)
			if geom.Intersects(geoms[i], window) {
				got[id] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
	}
}

func TestIndexDeleteGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	grid := testGrid(t, 6)
	idx := NewIndex(grid)
	gs := make([]geom.Geometry, 50)
	for i := range gs {
		gs[i] = randomRectGeom(t, rng)
		idx.InsertGeometry(rid(i), gs[i])
	}
	before := idx.EntryCount()
	for i := 0; i < 25; i++ {
		if err := idx.DeleteGeometry(rid(i), gs[i]); err != nil {
			t.Fatalf("DeleteGeometry %d: %v", i, err)
		}
	}
	if idx.EntryCount() >= before {
		t.Errorf("EntryCount %d not reduced from %d", idx.EntryCount(), before)
	}
	// Deleted rows must no longer appear as candidates anywhere.
	cands := idx.WindowCandidates(grid.Bounds)
	for _, id := range cands {
		if int(id.Page-1)*1000+int(id.Slot) < 25 {
			t.Errorf("deleted row %v still a candidate", id)
		}
	}
	// Deleting a non-indexed row errors.
	if err := idx.DeleteGeometry(rid(999), gs[0].Translate(1, 1)); err == nil {
		t.Errorf("delete of unindexed row: want error")
	}
}

func TestNewIndexFromEntriesMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	grid := testGrid(t, 6)
	inc := NewIndex(grid)
	var bulkEntries []btree.Entry
	for i := 0; i < 200; i++ {
		g := randomRectGeom(t, rng)
		inc.InsertGeometry(rid(i), g)
		es, err := EntriesFor(grid, g, rid(i))
		if err != nil {
			t.Fatal(err)
		}
		bulkEntries = append(bulkEntries, es...)
	}
	for _, workers := range []int{1, 2, 4} {
		bulk := NewIndexFromEntries(grid, append([]btree.Entry(nil), bulkEntries...), workers)
		if bulk.EntryCount() != inc.EntryCount() {
			t.Fatalf("workers=%d: entry counts %d vs %d", workers, bulk.EntryCount(), inc.EntryCount())
		}
		for trial := 0; trial < 10; trial++ {
			w := geom.MBROf(randomRectGeom(t, rng))
			a := idSet(bulk.WindowCandidates(w))
			b := idSet(inc.WindowCandidates(w))
			if len(a) != len(b) {
				t.Fatalf("workers=%d trial %d: candidates %d vs %d", workers, trial, len(a), len(b))
			}
			for id := range a {
				if !b[id] {
					t.Fatalf("workers=%d: candidate sets differ at %v", workers, id)
				}
			}
		}
	}
}

func idSet(ids []storage.RowID) map[storage.RowID]bool {
	m := make(map[storage.RowID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func TestTilePairsJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	grid := testGrid(t, 6)
	a := NewIndex(grid)
	b := NewIndex(grid)
	ga := make([]geom.Geometry, 100)
	gb := make([]geom.Geometry, 100)
	for i := 0; i < 100; i++ {
		ga[i] = randomRectGeom(t, rng)
		gb[i] = randomRectGeom(t, rng)
		a.InsertGeometry(rid(i), ga[i])
		b.InsertGeometry(rid(i), gb[i])
	}
	// Candidate pairs from the tile join, deduped.
	type pair struct{ a, b storage.RowID }
	cands := map[pair]bool{}
	err := TilePairs(a, b, func(ida, idb storage.RowID) bool {
		cands[pair{ida, idb}] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Soundness: every exactly-intersecting pair must be a candidate.
	for i, x := range ga {
		for j, y := range gb {
			if geom.Intersects(x, y) && !cands[pair{rid(i), rid(j)}] {
				t.Fatalf("true pair (%d, %d) missing from tile join", i, j)
			}
		}
	}
	// The candidates must themselves pass the MBR filter (tile-sharing
	// implies tile-rect overlap of both MBRs).
	for p := range cands {
		i := int(p.a.Page-1)*1000 + int(p.a.Slot)
		j := int(p.b.Page-1)*1000 + int(p.b.Slot)
		// Tiles are closed cells, so sharing a tile bounds the gap by
		// one cell diagonal.
		w, h := grid.CellSize()
		if geom.MBROf(ga[i]).Dist(geom.MBROf(gb[j])) > w+h {
			t.Fatalf("candidate pair (%d, %d) too far apart", i, j)
		}
	}
	// Grid mismatch errors.
	other := NewIndex(testGrid(t, 5))
	if err := TilePairs(a, other, func(_, _ storage.RowID) bool { return true }); err == nil {
		t.Errorf("grid mismatch: want error")
	}
}

func TestTessellationLevelGrowth(t *testing.T) {
	// Deeper levels produce at least as many tiles for the same shape;
	// this is the tiling-level cost/precision trade-off the ablation
	// bench sweeps.
	shape, err := geom.NewPolygon([]geom.Point{{X: 100, Y: 100}, {X: 400, Y: 150}, {X: 350, Y: 400}, {X: 120, Y: 300}})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for level := 3; level <= 8; level++ {
		g := testGrid(t, level)
		tiles, err := Tessellate(g, shape)
		if err != nil {
			t.Fatal(err)
		}
		if len(tiles) < prev {
			t.Errorf("level %d has %d tiles, fewer than level %d's %d", level, len(tiles), level-1, prev)
		}
		prev = len(tiles)
	}
}

// Property: tessellation tiles are exactly the cells whose rectangles
// interact with the geometry (checked by brute force on a small grid).
func TestTessellateBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	grid := testGrid(t, 4)
	for trial := 0; trial < 30; trial++ {
		g := randomRectGeom(t, rng)
		tiles, err := Tessellate(grid, g)
		if err != nil {
			t.Fatal(err)
		}
		set := map[Tile]bool{}
		for _, tile := range tiles {
			set[tile] = true
		}
		side := grid.Side()
		for cy := uint32(0); cy < side; cy++ {
			for cx := uint32(0); cx < side; cx++ {
				tile := grid.TileOf(cx, cy)
				r := grid.TileRect(tile)
				want := rectInteracts(r, g)
				if set[tile] != want {
					t.Fatalf("trial %d: cell (%d,%d) cover=%v want=%v", trial, cx, cy, set[tile], want)
				}
			}
		}
	}
}

// Property: CoverWindow of a rectangle equals Tessellate of the same
// rectangle as a polygon — the window decomposition and the data
// tessellation agree on the tiling.
func TestCoverWindowMatchesTessellation(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	grid := testGrid(t, 5)
	for trial := 0; trial < 40; trial++ {
		g := randomRectGeom(t, rng)
		m := geom.MBROf(g)
		fromCover := CoverWindow(grid, m)
		fromTess, err := Tessellate(grid, g)
		if err != nil {
			t.Fatal(err)
		}
		set := map[Tile]bool{}
		for _, tile := range fromCover {
			set[tile] = true
		}
		if len(fromCover) != len(fromTess) {
			t.Fatalf("trial %d: cover %d tiles, tessellation %d", trial, len(fromCover), len(fromTess))
		}
		for _, tile := range fromTess {
			if !set[tile] {
				t.Fatalf("trial %d: tessellation tile %d missing from cover", trial, tile)
			}
		}
	}
}

// Keep sorted-tiles property under random shapes.
func TestTessellateSortedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	grid := testGrid(t, 7)
	for trial := 0; trial < 50; trial++ {
		tiles, err := Tessellate(grid, randomRectGeom(t, rng))
		if err != nil {
			t.Fatal(err)
		}
		if !sort.SliceIsSorted(tiles, func(i, j int) bool { return tiles[i] < tiles[j] }) {
			t.Fatalf("trial %d: tiles not sorted", trial)
		}
	}
}
