package quadtree

import (
	"fmt"

	"spatialtf/internal/geom"
)

// Tessellate computes the fixed-level tile cover of g: every level-L
// tile whose cell rectangle interacts with the geometry. It descends the
// implicit quadtree from the root, pruning quadrants whose rectangle
// does not intersect the geometry — the standard tessellation used at
// quadtree index-creation time, and deliberately the expensive step: the
// exact rectangle/geometry test runs at every visited quadrant, so cost
// grows with geometry size and boundary complexity, reproducing the
// paper's observation that "the Quadtree creation time is high compared
// to R-trees" for large complex polygons.
//
// The returned tiles are in ascending Morton order (a property of the
// depth-first quadrant order), which lets the index builder feed them to
// the B-tree bulk loader without re-sorting per geometry.
func Tessellate(grid Grid, g geom.Geometry) ([]Tile, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("quadtree: tessellate: %w", err)
	}
	mbr := geom.MBROf(g)
	if !grid.Bounds.Contains(mbr) {
		return nil, fmt.Errorf("quadtree: geometry %v outside grid bounds %v", mbr, grid.Bounds)
	}
	var tiles []Tile
	tessellateQuad(grid, g, mbr, 0, 0, 0, &tiles)
	return tiles, nil
}

// tessellateQuad recursively covers the quadrant with cell origin
// (cx, cy) at the given depth (root quadrant spans the whole grid).
func tessellateQuad(grid Grid, g geom.Geometry, gmbr geom.MBR, depth int, cx, cy uint32, out *[]Tile) {
	quadCells := uint32(1) << uint(grid.Level-depth) // cells per side of this quadrant
	w, h := grid.CellSize()
	rect := geom.MBR{
		MinX: grid.Bounds.MinX + float64(cx)*w,
		MinY: grid.Bounds.MinY + float64(cy)*h,
		MaxX: grid.Bounds.MinX + float64(cx+quadCells)*w,
		MaxY: grid.Bounds.MinY + float64(cy+quadCells)*h,
	}
	// Cheap reject on the geometry MBR before the exact test.
	if !rect.Intersects(gmbr) {
		return
	}
	if !rectInteracts(rect, g) {
		return
	}
	if depth == grid.Level {
		*out = append(*out, grid.TileOf(cx, cy))
		return
	}
	half := quadCells / 2
	// Z-order: (0,0), (1,0), (0,1), (1,1) quadrants — morton order is
	// x-bit first, so iterate y-major over (dy, dx) with dx fastest.
	tessellateQuad(grid, g, gmbr, depth+1, cx, cy, out)
	tessellateQuad(grid, g, gmbr, depth+1, cx+half, cy, out)
	tessellateQuad(grid, g, gmbr, depth+1, cx, cy+half, out)
	tessellateQuad(grid, g, gmbr, depth+1, cx+half, cy+half, out)
}

// rectInteracts reports whether the rectangle interacts with g, using
// the exact geometry predicates.
func rectInteracts(r geom.MBR, g geom.Geometry) bool {
	// Fast paths avoid building a polygon per probe for points.
	if g.Kind == geom.KindPoint {
		return r.ContainsPoint(g.Pts[0])
	}
	rect, err := geom.NewRect(r.MinX, r.MinY, r.MaxX, r.MaxY)
	if err != nil {
		return false
	}
	return geom.Intersects(rect, g)
}

// CoverWindow returns the tiles covering a query window rectangle. The
// window-query path uses it to decompose the window into tile probes.
func CoverWindow(grid Grid, w geom.MBR) []Tile {
	q := w.Intersect(grid.Bounds)
	if q.IsEmpty() {
		return nil
	}
	x0, y0 := grid.CellAt(geom.Point{X: q.MinX, Y: q.MinY})
	x1, y1 := grid.CellAt(geom.Point{X: q.MaxX, Y: q.MaxY})
	tiles := make([]Tile, 0, (x1-x0+1)*(y1-y0+1))
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			tiles = append(tiles, grid.TileOf(cx, cy))
		}
	}
	return tiles
}
