package quadtree

import (
	"encoding/binary"
	"fmt"

	"spatialtf/internal/btree"
	"spatialtf/internal/geom"
	"spatialtf/internal/storage"
)

// Index is a linear quadtree index over the geometry column of a table:
// a B-tree whose keys are (tile code, rowid) pairs. It is the Go
// rendering of Oracle Spatial's quadtree "spatial index table" plus the
// B-tree built on the tile codes.
type Index struct {
	grid Grid
	bt   *btree.Tree
	// tilesPerRow tracks the tessellation size for stats; keyed storage
	// keeps the authoritative data.
	entryCount int
}

// keyOf builds the B-tree key for (tile, rowid): 8-byte big-endian tile
// code followed by the 6-byte rowid, so keys group by tile and range
// scans by tile prefix find all rows touching the tile.
func keyOf(t Tile, id storage.RowID) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(t))
	return id.AppendTo(buf[:])
}

// splitKey parses a key back into (tile, rowid).
func splitKey(k []byte) (Tile, storage.RowID, error) {
	if len(k) != 14 {
		return 0, storage.InvalidRowID, fmt.Errorf("quadtree: bad key length %d", len(k))
	}
	id, err := storage.RowIDFromBytes(k[8:])
	if err != nil {
		return 0, storage.InvalidRowID, err
	}
	return Tile(binary.BigEndian.Uint64(k[:8])), id, nil
}

// tilePrefix returns the 8-byte prefix for a tile's key range.
func tilePrefix(t Tile) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(t))
	return buf[:]
}

// NewIndex returns an empty index on the given grid.
func NewIndex(grid Grid) *Index {
	return &Index{grid: grid, bt: btree.New()}
}

// NewIndexFromEntries builds an index from pre-tessellated entries via
// the (optionally parallel) B-tree bulk loader. The parallel index
// builder produces the entries with a parallel table function and hands
// them here, mirroring the paper's two-step quadtree creation.
func NewIndexFromEntries(grid Grid, entries []btree.Entry, workers int) *Index {
	idx := &Index{grid: grid}
	idx.bt = btree.ParallelBulkLoad(entries, workers)
	idx.entryCount = idx.bt.Len()
	return idx
}

// Grid returns the tiling parameters.
func (idx *Index) Grid() Grid { return idx.grid }

// EntryCount returns the number of (tile, rowid) index entries — the
// size of the quadtree index table.
func (idx *Index) EntryCount() int { return idx.bt.Len() }

// BTreeStats exposes the backing B-tree shape.
func (idx *Index) BTreeStats() btree.Stats { return idx.bt.Stats() }

// EntriesFor tessellates g under the index grid and returns the B-tree
// entries that link each covering tile to id. It is the per-row work the
// parallel tessellation table function performs.
func EntriesFor(grid Grid, g geom.Geometry, id storage.RowID) ([]btree.Entry, error) {
	tiles, err := Tessellate(grid, g)
	if err != nil {
		return nil, err
	}
	entries := make([]btree.Entry, len(tiles))
	for i, t := range tiles {
		entries[i] = btree.Entry{Key: keyOf(t, id)}
	}
	return entries, nil
}

// InsertGeometry indexes one row — the index-maintenance path run by
// DML on an indexed table.
func (idx *Index) InsertGeometry(id storage.RowID, g geom.Geometry) error {
	tiles, err := Tessellate(idx.grid, g)
	if err != nil {
		return err
	}
	for _, t := range tiles {
		idx.bt.Insert(keyOf(t, id), nil)
	}
	return nil
}

// DeleteGeometry removes the index entries for one row.
func (idx *Index) DeleteGeometry(id storage.RowID, g geom.Geometry) error {
	tiles, err := Tessellate(idx.grid, g)
	if err != nil {
		return err
	}
	for _, t := range tiles {
		if err := idx.bt.Delete(keyOf(t, id)); err != nil {
			return fmt.Errorf("quadtree: delete tile %d of %v: %w", t, id, err)
		}
	}
	return nil
}

// WindowCandidates returns the distinct rowids whose tile sets intersect
// the window's tile cover — the primary filter of a quadtree window
// query. Callers apply the exact (secondary) geometry predicate to the
// candidates.
func (idx *Index) WindowCandidates(w geom.MBR) []storage.RowID {
	seen := map[storage.RowID]bool{}
	var out []storage.RowID
	for _, t := range CoverWindow(idx.grid, w) {
		idx.bt.AscendPrefix(tilePrefix(t), func(k, v []byte) bool {
			_, id, err := splitKey(k)
			if err == nil && !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
			return true
		})
	}
	return out
}

// TilePairs performs the quadtree join primary filter between two
// indexes sharing a grid: a merge join over the two tile-sorted B-trees
// emitting every (rowid, rowid) pair that shares a tile. Pairs may
// repeat across tiles; callers dedupe.
func TilePairs(a, b *Index, emit func(ida, idb storage.RowID) bool) error {
	if a.grid != b.grid {
		return fmt.Errorf("quadtree: join across different grids (%v level %d vs %v level %d)",
			a.grid.Bounds, a.grid.Level, b.grid.Bounds, b.grid.Level)
	}
	// Collect per-tile rowid groups from a, then probe b's identical
	// tile ranges. Both trees are tile-ordered, so this is a merge-style
	// sweep using prefix scans.
	type group struct {
		tile Tile
		ids  []storage.RowID
	}
	var groups []group
	var cur *group
	a.bt.Ascend(func(k, v []byte) bool {
		t, id, err := splitKey(k)
		if err != nil {
			return true
		}
		if cur == nil || cur.tile != t {
			groups = append(groups, group{tile: t})
			cur = &groups[len(groups)-1]
		}
		cur.ids = append(cur.ids, id)
		return true
	})
	for _, g := range groups {
		stop := false
		b.bt.AscendPrefix(tilePrefix(g.tile), func(k, v []byte) bool {
			_, idb, err := splitKey(k)
			if err != nil {
				return true
			}
			for _, ida := range g.ids {
				if !emit(ida, idb) {
					stop = true
					return false
				}
			}
			return true
		})
		if stop {
			return nil
		}
	}
	return nil
}
