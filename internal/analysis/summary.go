package analysis

import (
	"go/ast"
	"go/types"
	"strings"
	"sync"

	"spatialtf/internal/analysis/cfg"
)

// Function summaries: the facts the interprocedural rules carry across
// calls, FlowDroid-style. Each module function gets one FuncSummary;
// BuildModule iterates the whole set to a fixpoint so transitive facts
// (a function that forwards another function's decoded count, a
// release func built from another release func) converge.
//
// Summaries are keyed by package path + receiver + name rather than by
// *types.Func identity: each package is type-checked against export
// data, so the object a caller resolves for an imported function is
// not the same object the defining package's own check produced.

// FuncSummary is the per-function fact sheet.
type FuncSummary struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Pkg

	// TaintedResults[i] reports that result i carries a count decoded
	// from raw bytes (wire frame, snapshot stream, geometry image)
	// that no bound check constrained inside the function.
	TaintedResults []bool

	// UnguardedSizeParams[i] reports that if param i arrives as an
	// unbounded decoded count, it reaches a make/Grow allocation in
	// this function (or a callee) without passing a bound check.
	UnguardedSizeParams []bool

	// ReleaseResults[i] reports that result i is a release/cancel
	// func: every return site yields nil, a closure or method value
	// that performs a release, or another function's release result.
	ReleaseResults []bool

	// Accounted reports that the function body contains goroutine-
	// accounting evidence — sync.WaitGroup bookkeeping, a channel
	// operation, or a select — directly or via a module callee. goleak
	// accepts `go f()` when f is accounted.
	Accounted bool

	// The lock summary (see locksummary.go): which globally-named
	// locks this function acquires directly (LockAcquires) or through
	// callees (TransAcquires), which it releases without acquiring
	// (LockReleases — the Unpin side of a pin pair), which it leaves
	// held at a return (LockLeaked — the Pin side), and whether it can
	// block indefinitely on a peer (Blocking).
	LockAcquires  map[string]LockUse
	TransAcquires map[string]TransAcq
	LockReleases  map[string]bool
	LockLeaked    map[string]LeakInfo
	Blocking      *BlockInfo

	// The allocation summary (see allocsummary.go): the reportable
	// allocation sites this function executes directly (AllocSites),
	// the sites it reaches through concrete module callees with their
	// via-chains (TransAllocs), and how far each parameter escapes
	// (ParamEscapes) — the fact that lets a caller decide whether a
	// closure or buffer it passes will be retained.
	AllocSites   []AllocSite
	TransAllocs  map[string]TransAlloc
	ParamEscapes []EscClass
}

// Module is the cross-package summary table, plus the caches the
// concurrency rules share: per-scope CFGs, the method-shape index for
// interface-call resolution, the lock-order graph, and the module's
// atomically-accessed fields.
type Module struct {
	fns  map[string]*FuncSummary
	pkgs []*Pkg

	graphMu sync.Mutex
	graphs  map[*ast.BlockStmt]*cfg.Graph

	idxOnce sync.Once
	mIndex  map[string][]*FuncSummary

	lockOnce sync.Once
	lockG    *lockGraph
	cycles   []lockCycle

	atomicOnce sync.Once
	atomics    *atomicInfo

	// Allocation-analysis caches: per-function parent maps and cold
	// regions (allocsummary.go), plus the hot-function set and the
	// sync.Pool census (hotalloc.go).
	allocMu  sync.Mutex
	parentsC map[*ast.FuncDecl]map[ast.Node]ast.Node
	coldC    map[*ast.FuncDecl][]posRange

	hotOnce sync.Once
	hotFns  map[string]bool
	poolTys map[string]poolDecl
}

// FuncKey canonicalises fn across type-check universes.
func FuncKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	var sb strings.Builder
	if p := fn.Pkg(); p != nil {
		sb.WriteString(p.Path())
	}
	sb.WriteByte('.')
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			sb.WriteString(named.Obj().Name())
			sb.WriteByte('.')
		}
	}
	sb.WriteString(fn.Name())
	return sb.String()
}

// SummaryOf returns the module summary for fn (nil for functions
// outside the analyzed packages — the standard library, mostly).
func (m *Module) SummaryOf(fn *types.Func) *FuncSummary {
	if m == nil || fn == nil {
		return nil
	}
	return m.fns[FuncKey(fn)]
}

// BuildModule computes summaries for every function declared in pkgs,
// iterating until the facts stop changing (transitive summaries feed
// on each other; the iteration cap is far above any real call-chain
// depth).
func BuildModule(pkgs []*Pkg) *Module {
	m := &Module{fns: make(map[string]*FuncSummary), pkgs: pkgs}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				sig := fn.Signature()
				m.fns[FuncKey(fn)] = &FuncSummary{
					Fn:                  fn,
					Decl:                fd,
					Pkg:                 pkg,
					TaintedResults:      make([]bool, sig.Results().Len()),
					UnguardedSizeParams: make([]bool, sig.Params().Len()),
					ReleaseResults:      make([]bool, sig.Results().Len()),
					ParamEscapes:        make([]EscClass, sig.Params().Len()),
					TransAllocs:         make(map[string]TransAlloc),
				}
			}
		}
	}
	keys := sortedKeys(m.fns)
	for range 8 {
		changed := false
		for _, key := range keys {
			s := m.fns[key]
			if updateAccounted(s, m) {
				changed = true
			}
			if updateReleaseResults(s, m) {
				changed = true
			}
			if updateTaintSummary(s, m) {
				changed = true
			}
			if updateLockFacts(s, m) {
				changed = true
			}
			if updateAllocFacts(s, m) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return m
}

// --- goroutine accounting ---

// updateAccounted recomputes s.Accounted; reports a change.
func updateAccounted(s *FuncSummary, m *Module) bool {
	if s.Accounted {
		return false
	}
	if bodyAccounted(s.Pkg, s.Decl.Body, m) {
		s.Accounted = true
		return true
	}
	return false
}

// bodyAccounted scans n for goroutine-accounting evidence: WaitGroup
// Add/Done/Wait, any channel operation (send, receive, close, range
// over a channel), a select statement, or a call to an accounted
// module function.
func bodyAccounted(pkg *Pkg, n ast.Node, m *Module) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			switch fun := x.Fun.(type) {
			case *ast.Ident:
				if b, ok := pkg.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "close" {
					found = true
				} else if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
					if sum := m.SummaryOf(fn); sum != nil && sum.Accounted {
						found = true
					}
				}
			case *ast.SelectorExpr:
				_, fn := selectorObj(pkg.Info, fun)
				if fn == nil {
					break
				}
				if pkgPathOf(fn) == "sync" && isWaitGroupMethod(fn) {
					found = true
				} else if sum := m.SummaryOf(fn); sum != nil && sum.Accounted {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isWaitGroupMethod(fn *types.Func) bool {
	switch fn.Name() {
	case "Add", "Done", "Wait", "Go":
	default:
		return false
	}
	sig := fn.Signature()
	if sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

// --- release-func results ---

// releaseNames are the method names whose call counts as performing a
// release: the lifecycle verbs of this codebase and the stdlib.
var releaseNames = map[string]bool{
	"Unpin": true, "Close": true, "Stop": true, "Cancel": true, "Unlock": true, "RUnlock": true,
}

// updateReleaseResults recomputes s.ReleaseResults; reports a change.
func updateReleaseResults(s *FuncSummary, m *Module) bool {
	sig := s.Fn.Signature()
	changed := false
	for i := 0; i < sig.Results().Len(); i++ {
		if s.ReleaseResults[i] {
			continue
		}
		rt, ok := sig.Results().At(i).Type().Underlying().(*types.Signature)
		if !ok || rt.Params().Len() != 0 {
			continue
		}
		if releaseResultAt(s, m, i) {
			s.ReleaseResults[i] = true
			changed = true
		}
	}
	return changed
}

// releaseResultAt reports whether every return site of s yields a
// release value (or nil) at result index i, with at least one real
// release among them.
func releaseResultAt(s *FuncSummary, m *Module, i int) bool {
	// Locals assigned release closures count when returned by name.
	releaseVars := make(map[types.Object]bool)
	ast.Inspect(s.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for k, lhs := range as.Lhs {
			if k >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if isReleaseExpr(s.Pkg, as.Rhs[k], m, nil) {
				if obj := s.Pkg.Info.Defs[id]; obj != nil {
					releaseVars[obj] = true
				} else if obj := s.Pkg.Info.Uses[id]; obj != nil {
					releaseVars[obj] = true
				}
			}
		}
		return true
	})
	sawRelease := false
	allQualify := true
	for _, ret := range scopeReturns(s.Decl.Body) {
		if len(ret.Results) <= i {
			// Bare return with named results, or a forwarded call —
			// only the single-call forward of a summarized provider
			// qualifies.
			if len(ret.Results) == 1 {
				if call, ok := ret.Results[0].(*ast.CallExpr); ok {
					if fn := calleeFunc(s.Pkg.Info, call); fn != nil {
						if sum := m.SummaryOf(fn); sum != nil && i < len(sum.ReleaseResults) && sum.ReleaseResults[i] {
							sawRelease = true
							continue
						}
					}
				}
			}
			allQualify = false
			continue
		}
		e := ret.Results[i]
		if isNilIdent(e) {
			continue
		}
		if isReleaseExpr(s.Pkg, e, m, releaseVars) {
			sawRelease = true
			continue
		}
		allQualify = false
	}
	return sawRelease && allQualify
}

// isReleaseExpr reports whether e evaluates to a release func: a
// closure that performs a release, a release method value, a call to a
// release provider, or a local already known to hold one.
func isReleaseExpr(pkg *Pkg, e ast.Expr, m *Module, releaseVars map[types.Object]bool) bool {
	switch e := e.(type) {
	case *ast.FuncLit:
		return bodyReleases(pkg, e.Body, m)
	case *ast.SelectorExpr:
		_, fn := selectorObj(pkg.Info, e)
		return fn != nil && releaseNames[fn.Name()]
	case *ast.Ident:
		if releaseVars == nil {
			return false
		}
		if obj := pkg.Info.Uses[e]; obj != nil {
			return releaseVars[obj]
		}
	case *ast.CallExpr:
		if fn := calleeFunc(pkg.Info, e); fn != nil {
			if sum := m.SummaryOf(fn); sum != nil {
				for _, r := range sum.ReleaseResults {
					if r {
						return true
					}
				}
			}
		}
	}
	return false
}

// bodyReleases reports whether n calls a release method or a release
// provider's result.
func bodyReleases(pkg *Pkg, n ast.Node, m *Module) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if _, fn := selectorObj(pkg.Info, sel); fn != nil && releaseNames[fn.Name()] {
				found = true
			}
		}
		return !found
	})
	return found
}

// --- shared helpers ---

// scopeReturns collects the return statements belonging to body's own
// scope (not those of nested function literals).
func scopeReturns(body *ast.BlockStmt) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				out = append(out, x)
			}
			return true
		})
	}
	walk(body)
	return out
}

// calleeFunc resolves the called function of call (selector or bare
// identifier), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		_, fn := selectorObj(info, fun)
		return fn
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
