package analysis

// Lock identity and the shared lock-state dataflow machinery under the
// concurrency rules (lockdiscipline, lockorder, atomicmix) and the lock
// summaries in locksummary.go.
//
// A lock is named by the innermost named struct type that declares the
// mutex field: `s.mu` on pager.Store is "pager.Store.mu" no matter how
// the receiver is spelled at a call site, so acquisitions in different
// functions (and different packages) fold into one node of the module
// lock-order graph. Mutexes that are locals or parameters get a
// function-local identity (their spelling) and stay out of the global
// graph: two functions locking their own `mu *sync.Mutex` parameters
// share no lock as far as the module can tell.
//
// lockScanner is the one transition function over that state. It runs
// in two modes: as a cfg.Flow transfer (no events) while solving, and
// as a replay during cfg.Walk with a lockEvents sink attached, which is
// where the rules and the summary collector observe acquisitions,
// blocking operations, releases, and raw field accesses in order.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"spatialtf/internal/analysis/cfg"
)

// lockIdent names one lock.
type lockIdent struct {
	name   string
	global bool // names a struct field: comparable across functions
}

// lockIdentOf derives the identity of the mutex receiver expression e.
func lockIdentOf(pkg *Pkg, e ast.Expr) lockIdent {
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if id, ok := fieldIdentOf(pkg, sel); ok {
			return lockIdent{name: id, global: true}
		}
	}
	return lockIdent{name: exprString(e)}
}

// fieldIdentOf resolves sel to "pkg.Type.field" when sel selects a
// struct field of a named type.
func fieldIdentOf(pkg *Pkg, sel *ast.SelectorExpr) (string, bool) {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	t := s.Recv()
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + s.Obj().Name(), true
}

// heldLock is one lock the analysis believes is held at a point.
type heldLock struct {
	id      lockIdent
	display string       // receiver as written at the acquisition site
	pos     token.Pos    // acquisition (or leaking call) site
	write   bool         // Lock vs RLock
	via     string       // callee chain when the lock entered via a leak
	relObj  types.Object // release-func variable bound to this lock
}

// direct reports the lock was acquired by a mu.Lock in this very scope
// — the only kind held-across-blocking findings consider; pin-style
// locks leaked by callees participate only in ordering checks.
func (h heldLock) direct() bool { return h.via == "" && h.relObj == nil }

// lockFact maps an acquisition key to the lock it holds. Direct
// acquisitions key by the receiver spelling; callee leaks key by
// "recv#ident"; release-func bindings key by the bound variable.
type lockFact map[string]heldLock

func cloneLockFact(f lockFact) lockFact {
	out := make(lockFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func equalLockFact(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || v != w {
			return false
		}
	}
	return true
}

// joinLockFactUnion is the may-hold join (lockdiscipline, lockorder,
// summaries): held on any path counts. First writer wins per key, so
// loop re-joins stay stable.
func joinLockFactUnion(a, b lockFact) lockFact {
	for k, v := range b {
		if _, ok := a[k]; !ok {
			a[k] = v
		}
	}
	return a
}

// joinLockFactIntersect is the must-hold join (atomicmix's dominating
// lock): held on every path or not at all.
func joinLockFactIntersect(a, b lockFact) lockFact {
	for k := range a {
		if _, ok := b[k]; !ok {
			delete(a, k)
		}
	}
	return a
}

func sortedFactKeys(f lockFact) []string {
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lockEvents receives the interesting occurrences while a scanner
// replays a function; the rules hang their reporting here. Events
// deduplicate by (position, kind, detail) because a node can be
// replayed when several blocks share facts.
type lockEvents struct {
	seen map[string]bool
	// acquire fires when id is acquired — directly, or transitively by
	// a callee (via non-empty) — with the facts held just before.
	acquire func(pos token.Pos, id lockIdent, display string, write bool, via string, before lockFact)
	// blocking fires at an operation that can block on a peer. via is
	// the callee chain when the operation is inside a callee.
	blocking func(pos token.Pos, what, via string, before lockFact)
	// release fires at unlocks; matched reports whether a held entry
	// was discharged (an unmatched release is a net release the
	// summaries record, the Unpin side of a pin pair).
	release func(pos token.Pos, id lockIdent, matched bool)
	// access fires for every resolved struct-field selector outside
	// sync/atomic calls — atomicmix's raw material.
	access func(sel *ast.SelectorExpr, write bool, before lockFact)
}

func (ev *lockEvents) once(pos token.Pos, kind, detail string) bool {
	if ev.seen == nil {
		ev.seen = make(map[string]bool)
	}
	k := strconv.Itoa(int(pos)) + "/" + kind + "/" + detail
	if ev.seen[k] {
		return false
	}
	ev.seen[k] = true
	return true
}

// walkCtx threads per-statement context through the expression walk.
type walkCtx struct {
	ev     *lockEvents
	noChan bool                             // inside a select comm statement
	writes map[ast.Expr]bool                // exprs in write position
	binds  map[*ast.CallExpr][]types.Object // call → release-result targets
}

// lockScanner drives lock-state transitions over one function scope.
type lockScanner struct {
	pkg *Pkg
	mod *Module
	// Select plumbing: comm statements mapped to their select, and
	// whether that select has a default clause (non-blocking).
	selComm    map[ast.Node]*ast.SelectStmt
	selDefault map[*ast.SelectStmt]bool
}

func newLockScanner(pkg *Pkg, mod *Module, body *ast.BlockStmt) *lockScanner {
	sc := &lockScanner{
		pkg:        pkg,
		mod:        mod,
		selComm:    make(map[ast.Node]*ast.SelectStmt),
		selDefault: make(map[*ast.SelectStmt]bool),
	}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm == nil {
				sc.selDefault[sel] = true
			} else {
				sc.selComm[cc.Comm] = sel
			}
		}
		return true
	})
	return sc
}

// flow builds the dataflow problem over the scanner. must selects the
// intersection join (atomicmix's dominating-lock query) instead of the
// default union (may-hold).
func (sc *lockScanner) flow(must bool) cfg.Flow[lockFact] {
	join := joinLockFactUnion
	if must {
		join = joinLockFactIntersect
	}
	return cfg.Flow[lockFact]{
		Entry: lockFact{},
		Join:  join,
		Equal: equalLockFact,
		Clone: cloneLockFact,
		Transfer: func(n cfg.Node, f lockFact) lockFact {
			return sc.apply(n.N, f, nil)
		},
	}
}

// replay re-walks the solved facts with ev attached, firing events in
// block order with the facts in force just before each occurrence.
func (sc *lockScanner) replay(g *cfg.Graph, must bool, ev *lockEvents) map[*cfg.Block]lockFact {
	fl := sc.flow(must)
	in := cfg.Solve(g, fl)
	cfg.Walk(g, fl, in, func(n cfg.Node, before lockFact) {
		sc.apply(n.N, cloneLockFact(before), ev)
	})
	return in
}

// apply transitions f over node n. With ev non-nil the interesting
// occurrences fire as events (the Walk replay); Solve passes nil.
func (sc *lockScanner) apply(n ast.Node, f lockFact, ev *lockEvents) lockFact {
	ctx := &walkCtx{ev: ev}
	switch n := n.(type) {
	case *ast.RangeStmt:
		// The head re-evaluates only the iteration binding; s.X is its
		// own node and the body statements live in their own blocks.
		return f
	case *ast.GoStmt:
		// The spawned call runs on another goroutine with fresh lock
		// state (its literal body is a separate funcScopes scope); only
		// the arguments are evaluated here.
		for _, arg := range n.Call.Args {
			f = sc.walk(arg, f, ctx)
		}
		return f
	case *ast.DeferStmt:
		return sc.applyDefer(n, f, ctx)
	}
	// A comm statement of a select: the select itself (not the comm's
	// channel op) is the blocking event, reported once.
	if s, ok := n.(ast.Stmt); ok {
		if sel := sc.selComm[s]; sel != nil {
			if !sc.selDefault[sel] && ev != nil && ev.blocking != nil && ev.once(sel.Pos(), "block", "select") {
				ev.blocking(sel.Pos(), "select without default", "", f)
			}
			ctx.noChan = true
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		ctx.writes = make(map[ast.Expr]bool, len(n.Lhs))
		for _, l := range n.Lhs {
			ctx.writes[l] = true
		}
		sc.markBindings(n.Lhs, n.Rhs, ctx)
		for _, r := range n.Rhs {
			f = sc.walk(r, f, ctx)
		}
		for _, l := range n.Lhs {
			f = sc.walk(l, f, ctx)
		}
		return f
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return f
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			lhs := make([]ast.Expr, len(vs.Names))
			for i, name := range vs.Names {
				lhs[i] = name
			}
			sc.markBindings(lhs, vs.Values, ctx)
			for _, v := range vs.Values {
				f = sc.walk(v, f, ctx)
			}
		}
		return f
	case *ast.IncDecStmt:
		ctx.writes = map[ast.Expr]bool{n.X: true}
		return sc.walk(n.X, f, ctx)
	case *ast.SendStmt:
		f = sc.walk(n.Chan, f, ctx)
		f = sc.walk(n.Value, f, ctx)
		if !ctx.noChan && ev != nil && ev.blocking != nil && ev.once(n.Arrow, "block", "send") {
			ev.blocking(n.Arrow, "channel send", "", f)
		}
		return f
	case ast.Stmt:
		// Remaining statement nodes (expr, return, branch, type-switch
		// assign...): walk every nested expression in order.
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			if e, ok := x.(ast.Expr); ok {
				f = sc.walk(e, f, ctx)
				return false
			}
			return true
		})
		return f
	case ast.Expr:
		// Condition/tag/range-operand nodes.
		return sc.walk(n, f, ctx)
	}
	return f
}

// markBindings records which release-result objects each RHS call
// assigns, so applyCallee can bind leaked locks to the variable that
// holds their release func (`unpin := pinTrees(a, b)`).
func (sc *lockScanner) markBindings(lhs, rhs []ast.Expr, ctx *walkCtx) {
	if len(rhs) == 0 {
		return
	}
	resolve := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if obj := sc.pkg.Info.Defs[id]; obj != nil {
			return obj
		}
		return sc.pkg.Info.Uses[id]
	}
	addBind := func(call *ast.CallExpr, targets []ast.Expr) {
		fn := calleeFunc(sc.pkg.Info, call)
		sum := sc.mod.SummaryOf(fn)
		if sum == nil || len(sum.LockLeaked) == 0 {
			return
		}
		for i, rel := range sum.ReleaseResults {
			if !rel || i >= len(targets) {
				continue
			}
			if obj := resolve(targets[i]); obj != nil {
				if ctx.binds == nil {
					ctx.binds = make(map[*ast.CallExpr][]types.Object)
				}
				ctx.binds[call] = append(ctx.binds[call], obj)
			}
		}
	}
	if len(rhs) == 1 && len(lhs) >= 1 {
		if call, ok := rhs[0].(*ast.CallExpr); ok {
			addBind(call, lhs)
			return
		}
	}
	for i, r := range rhs {
		if call, ok := r.(*ast.CallExpr); ok && i < len(lhs) {
			addBind(call, []ast.Expr{lhs[i]})
		}
	}
}

// applyDefer models a defer at its registration point. A deferred
// unlock keeps the lock held for the rest of the function (the leak
// computation subtracts it at exits); a deferred closure is a separate
// scope with fresh lock state; any other deferred call is scanned as
// events here, where the registration happens.
func (sc *lockScanner) applyDefer(d *ast.DeferStmt, f lockFact, ctx *walkCtx) lockFact {
	if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok {
		if _, method, ok := syncLockMethod(sc.pkg, sel); ok && strings.HasSuffix(method, "Unlock") {
			return f
		}
	}
	if _, ok := d.Call.Fun.(*ast.FuncLit); ok {
		return f
	}
	return sc.walk(d.Call, f, ctx)
}

// walk applies one expression tree in syntactic order.
func (sc *lockScanner) walk(e ast.Expr, f lockFact, ctx *walkCtx) lockFact {
	switch e := e.(type) {
	case nil:
		return f
	case *ast.FuncLit:
		return f // separate scope: fresh lock state
	case *ast.UnaryExpr:
		f = sc.walk(e.X, f, ctx)
		if e.Op == token.ARROW && !ctx.noChan && ctx.ev != nil && ctx.ev.blocking != nil && ctx.ev.once(e.Pos(), "block", "recv") {
			ctx.ev.blocking(e.Pos(), "channel receive", "", f)
		}
		return f
	case *ast.CallExpr:
		return sc.applyCall(e, f, ctx)
	case *ast.SelectorExpr:
		f = sc.walk(e.X, f, ctx)
		if ctx.ev != nil && ctx.ev.access != nil {
			if s, ok := sc.pkg.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
				ctx.ev.access(e, ctx.writes[e], f)
			}
		}
		return f
	case *ast.Ident:
		// A use of a variable bound to a release func discharges the
		// locks it guards: calling it releases them, and any other use
		// hands the release obligation off.
		if obj := sc.pkg.Info.Uses[e]; obj != nil {
			for k, h := range f {
				if h.relObj == obj {
					delete(f, k)
				}
			}
		}
		return f
	default:
		ast.Inspect(e, func(x ast.Node) bool {
			if x == ast.Node(e) {
				return true
			}
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			if xe, ok := x.(ast.Expr); ok {
				f = sc.walk(xe, f, ctx)
				return false
			}
			return true
		})
		return f
	}
}

// applyCall evaluates a call: receiver and arguments first, then the
// call's own effect — a lock transition, a blocking operation, or a
// module callee's summarized behavior.
func (sc *lockScanner) applyCall(call *ast.CallExpr, f lockFact, ctx *walkCtx) lockFact {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		f = sc.walk(fun.X, f, ctx)
	case *ast.FuncLit:
		// Immediately-invoked literal: body is its own scope.
	default:
		f = sc.walk(fun, f, ctx)
	}
	for _, arg := range call.Args {
		f = sc.walk(arg, f, ctx)
	}

	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if _, method, ok := syncLockMethod(sc.pkg, sel); ok {
			return sc.applyLockOp(call, sel, method, f, ctx)
		}
		recv, fn := selectorObj(sc.pkg.Info, sel)
		if fn == nil {
			return f
		}
		if what, ok := blockingCall(sc.pkg, call, sel); ok {
			if ctx.ev != nil && ctx.ev.blocking != nil && ctx.ev.once(call.Pos(), "block", what) {
				ctx.ev.blocking(call.Pos(), what, "", f)
			}
			return f
		}
		display := exprString(sel.X)
		if recv != nil {
			display = exprString(recv)
		}
		return sc.applyCallee(call, fn, display, f, ctx)
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if fn, ok := sc.pkg.Info.Uses[id].(*types.Func); ok {
			if what, ok := blockingFunc(fn); ok {
				if ctx.ev != nil && ctx.ev.blocking != nil && ctx.ev.once(call.Pos(), "block", what) {
					ctx.ev.blocking(call.Pos(), what, "", f)
				}
				return f
			}
			return sc.applyCallee(call, fn, fn.Name(), f, ctx)
		}
	}
	return f
}

// applyLockOp transitions a direct sync.Mutex/RWMutex Lock/Unlock.
func (sc *lockScanner) applyLockOp(call *ast.CallExpr, sel *ast.SelectorExpr, method string, f lockFact, ctx *walkCtx) lockFact {
	recv := sel.X
	id := lockIdentOf(sc.pkg, recv)
	display := exprString(recv)
	switch method {
	case "Lock", "RLock":
		if ctx.ev != nil && ctx.ev.acquire != nil && ctx.ev.once(call.Pos(), "acq", id.name) {
			ctx.ev.acquire(call.Pos(), id, display, method == "Lock", "", f)
		}
		if _, ok := f[display]; !ok {
			f[display] = heldLock{id: id, display: display, pos: call.Pos(), write: method == "Lock"}
		}
	case "Unlock", "RUnlock":
		_, matched := f[display]
		delete(f, display)
		if ctx.ev != nil && ctx.ev.release != nil && ctx.ev.once(call.Pos(), "rel", id.name) {
			ctx.ev.release(call.Pos(), id, matched)
		}
	}
	return f
}

// applyCallee folds fn's module summary (or the joined summaries of a
// module interface method's possible targets) into the state:
// transitive acquisitions surface as acquire events (order edges,
// same-lock checks), a blocking callee surfaces as a blocking event,
// and leaked locks enter the held set — bound to the variable receiving
// the release func when the call returns one.
func (sc *lockScanner) applyCallee(call *ast.CallExpr, fn *types.Func, display string, f lockFact, ctx *walkCtx) lockFact {
	for _, sum := range sc.mod.calleeSummaries(fn) {
		if ctx.ev != nil && ctx.ev.acquire != nil {
			for _, name := range sortedKeys(sum.TransAcquires) {
				ta := sum.TransAcquires[name]
				if !ctx.ev.once(call.Pos(), "acq", name) {
					continue
				}
				via := fn.Name()
				if ta.Via != "" {
					via += " → " + ta.Via
				}
				ctx.ev.acquire(call.Pos(), lockIdent{name: name, global: true}, display, ta.Write, via, f)
			}
		}
		if b := sum.Blocking; b != nil && ctx.ev != nil && ctx.ev.blocking != nil && ctx.ev.once(call.Pos(), "block", "callee") {
			via := fn.Name()
			if b.Via != "" {
				via += " → " + b.Via
			}
			ctx.ev.blocking(call.Pos(), b.What, via, f)
		}
		// Releases before leaks: an Unpin-style wrapper discharges what
		// an earlier call left held.
		for _, name := range sortedKeys(sum.LockReleases) {
			f = sc.dischargeLeaked(call, display, name, f, ctx)
		}
		if len(sum.LockLeaked) > 0 {
			bound := ctx.binds[call]
			for _, name := range sortedKeys(sum.LockLeaked) {
				li := sum.LockLeaked[name]
				h := heldLock{
					id:      lockIdent{name: name, global: true},
					display: display,
					pos:     call.Pos(),
					write:   li.Write,
					via:     fn.Name(),
				}
				key := display + "#" + name
				if len(bound) > 0 {
					h.relObj = bound[0]
					key = "bind:" + bound[0].Name() + ":" + name
				}
				if _, ok := f[key]; !ok {
					f[key] = h
				}
			}
		}
	}
	return f
}

// dischargeLeaked removes the held entry a callee release (Unpin and
// friends) pays off: the same receiver's leak first, then any leaked
// entry of that lock. An unmatched release is the summary-visible net
// release of a release wrapper.
func (sc *lockScanner) dischargeLeaked(call *ast.CallExpr, display, name string, f lockFact, ctx *walkCtx) lockFact {
	key := display + "#" + name
	if _, ok := f[key]; ok {
		delete(f, key)
		return f
	}
	best := ""
	for k, h := range f {
		if h.id.name == name && !h.direct() && (best == "" || k < best) {
			best = k
		}
	}
	if best != "" {
		delete(f, best)
		return f
	}
	if ctx.ev != nil && ctx.ev.release != nil && ctx.ev.once(call.Pos(), "rel", name) {
		ctx.ev.release(call.Pos(), lockIdent{name: name, global: true}, false)
	}
	return f
}

// deferredReleaseKeys collects the fact keys the function's defers
// discharge at exit: deferred unlock receivers, and unlock or release
// calls inside deferred closures. The leak computation subtracts them
// from what is held at each return.
func (sc *lockScanner) deferredReleaseKeys(g *cfg.Graph) map[string]bool {
	keys := make(map[string]bool)
	addUnlock := func(sel *ast.SelectorExpr) {
		if _, method, ok := syncLockMethod(sc.pkg, sel); ok && strings.HasSuffix(method, "Unlock") {
			keys[exprString(sel.X)] = true
		}
	}
	for _, d := range g.Defers {
		if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok {
			addUnlock(sel)
		}
		lit, ok := d.Call.Fun.(*ast.FuncLit)
		if !ok {
			continue
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			addUnlock(sel)
			if _, fn := selectorObj(sc.pkg.Info, sel); fn != nil && releaseNames[fn.Name()] {
				keys["prefix:"+exprString(sel.X)] = true
			}
			return true
		})
	}
	return keys
}

// dischargedAtExit reports whether the deferred-release key set pays
// off held entry h (stored under fact key k).
func dischargedAtExit(keys map[string]bool, k string, h heldLock) bool {
	return keys[k] || keys[h.display] || keys["prefix:"+h.display]
}

// sortedKeys returns map keys in sorted order, for deterministic event
// emission.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// shortPos renders pos as "file.go:NN" for inclusion in messages.
func shortPos(pkg *Pkg, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}

// lockHeldPhrase renders a held lock for diagnostics: the receiver as
// written, plus the callee chain it arrived through.
func lockHeldPhrase(h heldLock) string {
	if h.via != "" {
		return fmt.Sprintf("%s (%s via %s)", h.display, h.id.name, h.via)
	}
	return h.display
}
