// Package analysis implements spatiallint, a dependency-free static
// analyzer suite for this repository. The Go compiler cannot check the
// contracts the table-function machinery is built on — the paper's
// start–fetch–close cursor discipline (§3), R-trees staying pinned for
// the lifetime of a streaming join cursor, and bounded streaming over
// the wire — so this package checks them mechanically:
//
//	pinpair        every rtree.Tree.Pin() is released (defer/all-paths
//	               Unpin, or an escaping release func à la pinTrees)
//	cursorclose    an opened cursor is Closed on every path, including
//	               error returns
//	latchpair      every pinned buffer-pool frame (pager.Space.Pin or
//	               Allocate) is Unpinned on every path or handed off
//	lockdiscipline no sync.Mutex/RWMutex held across a channel
//	               operation, a cursor Fetch, a wire write, or a call
//	               that transitively blocks or re-acquires the same
//	               lock (path-sensitive on the CFG, interprocedural
//	               via module lock summaries)
//	lockorder      lock acquisition order must be acyclic module-wide;
//	               any cycle in the global lock-order graph is a
//	               potential deadlock, reported with both paths
//	atomicmix      a struct field accessed via sync/atomic must never
//	               be plainly read or written without a dominating
//	               lock, and typed atomics must not be aliased through
//	               unsafe.Pointer
//	wireerr        no discarded error results from wire write/encode
//	               and bufio flush calls
//	floateq        no ==/!= on floating-point values outside the
//	               approved predicate helpers in internal/geom
//	taintsize      a length/count decoded from wire, snapshot, or geom
//	               bytes must pass a bound check before it reaches a
//	               make/Grow preallocation
//	goleak         a goroutine launched in the server/join machinery
//	               must be joined (WaitGroup, channel) or tied to a
//	               shutdown path
//	releasesummary a release/cancel func returned by a function must be
//	               called, deferred, or handed off by every caller
//	metricname     telemetry metric names must be constant strings in
//	               lowercase_snake, unique across the module (the
//	               registry's runtime panic on a duplicate, at lint time)
//	hotalloc       no hidden allocations on declared hot paths
//	               (//spatiallint:hot plus seeded fetch/sweep/pin/encode
//	               roots): direct make/append/boxing/closure sites,
//	               allocating callees with via-chains, defer and map
//	               iteration inside hot loops, and sync.Pool bypass —
//	               on an interprocedural escape analysis (allocsummary.go)
//
// pinpair, cursorclose, and the three rules below the line run on the
// control-flow-graph engine in the cfg subpackage: per-function basic
// blocks plus a worklist dataflow solver, with per-function summaries
// (Module) carrying facts across calls — which functions return
// release funcs, which results carry unbounded decoded counts, which
// callees account for the goroutines they spawn.
//
// Everything here is stdlib-only: packages load through `go list
// -deps -export` plus go/parser and go/types with an export-data
// importer (see load.go), not golang.org/x/tools.
//
// A finding can be silenced where the violation is deliberate with a
// directive comment
//
//	//spatiallint:ignore <rule> <reason>
//
// placed on the offending line, the line above it, or in the doc
// comment of the enclosing function (which silences the rule for the
// whole function). The reason is mandatory: a suppression without a
// justification is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diag is one analyzer finding.
type Diag struct {
	Rule    string         `json:"rule"`
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Message string         `json:"message"`
}

func (d Diag) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Pkg is one loaded, type-checked package as the analyzers see it.
type Pkg struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Pass is what one analyzer run over one package sees: the package
// itself plus the module-wide function summaries the interprocedural
// rules consult.
type Pass struct {
	Pkg *Pkg
	Mod *Module
}

// Analyzer is one rule of the suite.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) []Diag
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		PinPair,
		CursorClose,
		LatchPair,
		LockDiscipline,
		LockOrder,
		AtomicMix,
		WireErr,
		FloatEq,
		TaintSize,
		GoLeak,
		ReleaseSummary,
		MetricName,
		HotAlloc,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies the given analyzers to every package, filters findings
// silenced by //spatiallint:ignore directives, and returns the rest
// sorted by position. Malformed directives (unknown rule, missing
// reason) are reported as findings of the pseudo-rule "directive".
// Function summaries are computed once over all packages, so the
// interprocedural rules see the whole module regardless of which
// package they are visiting.
func Run(pkgs []*Pkg, analyzers []*Analyzer) []Diag {
	mod := BuildModule(pkgs)
	var out []Diag
	for _, pkg := range pkgs {
		sup, diags := collectSuppressions(pkg)
		out = append(out, diags...)
		pass := &Pass{Pkg: pkg, Mod: mod}
		for _, a := range analyzers {
			for _, d := range a.Run(pass) {
				if !sup.matches(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// diag builds a Diag at pos.
func diag(pkg *Pkg, rule string, pos token.Pos, format string, args ...any) Diag {
	p := pkg.Fset.Position(pos)
	return Diag{
		Rule:    rule,
		Pos:     p,
		File:    p.Filename,
		Line:    p.Line,
		Col:     p.Column,
		Message: fmt.Sprintf(format, args...),
	}
}

// --- suppression directives ---

const ignorePrefix = "//spatiallint:ignore"

var directiveRE = regexp.MustCompile(`^//spatiallint:ignore\s+(\S+)\s*(.*)$`)

// span is a file region in which a rule is silenced.
type span struct {
	file       string
	start, end int // inclusive line range
	rule       string
}

type suppressions struct{ spans []span }

func (s *suppressions) matches(d Diag) bool {
	for _, sp := range s.spans {
		if sp.rule == d.Rule && sp.file == d.File && d.Line >= sp.start && d.Line <= sp.end {
			return true
		}
	}
	return false
}

// collectSuppressions gathers ignore directives from pkg. A directive
// on its own line (or trailing a line) silences that line and the one
// below it; a directive inside a function's doc comment silences the
// whole function. Rule names validate against the full suite, not the
// analyzers enabled for this run: a directive for a disabled rule is
// inert, not malformed.
func collectSuppressions(pkg *Pkg) (*suppressions, []Diag) {
	var known = make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	sup := &suppressions{}
	var diags []Diag
	for _, f := range pkg.Files {
		// Doc-comment directives: map each to the enclosing declaration.
		docOf := make(map[*ast.Comment]ast.Node)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				docOf[c] = fd
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					diags = append(diags, diag(pkg, "directive", c.Pos(),
						"malformed directive %q: want //spatiallint:ignore <rule> <reason>", c.Text))
					continue
				}
				rule := m[1]
				if !known[rule] {
					diags = append(diags, diag(pkg, "directive", c.Pos(),
						"directive ignores unknown rule %q", rule))
					continue
				}
				if n, ok := docOf[c]; ok {
					start := pkg.Fset.Position(n.Pos())
					end := pkg.Fset.Position(n.End())
					sup.spans = append(sup.spans, span{file: start.Filename, start: start.Line, end: end.Line, rule: rule})
					continue
				}
				sup.spans = append(sup.spans, span{file: pos.Filename, start: pos.Line, end: pos.Line + 1, rule: rule})
			}
		}
	}
	return sup, diags
}

// --- shared AST/type helpers ---

// funcScopes returns every function body in f as an independent
// analysis scope: each FuncDecl, and each FuncLit not owned by one of
// the walked bodies... FuncLits are yielded as their own scopes because
// goroutine and deferred bodies do not inherit the lexical lock/pin
// state of their enclosing function at the point of definition.
func funcScopes(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, n.Body)
			}
		case *ast.FuncLit:
			out = append(out, n.Body)
		}
		return true
	})
	return out
}

// methodObj resolves the called method of a selector call like
// recv.Name(...), returning the receiver expression and the *types.Func
// (nil if the call is not a resolvable method/package-function call).
func methodObj(info *types.Info, call *ast.CallExpr) (recv ast.Expr, fn *types.Func) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	return selectorObj(info, sel)
}

// selectorObj resolves recv.Name (called or not) to its *types.Func.
func selectorObj(info *types.Info, sel *ast.SelectorExpr) (ast.Expr, *types.Func) {
	if s, ok := info.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok {
			return sel.X, fn
		}
		return nil, nil
	}
	// Package-qualified function: pkg.Fn.
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
		return sel.X, fn
	}
	return nil, nil
}

// pkgPathOf returns the package path of obj ("" for builtins).
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// fromPkg reports whether fn is defined in a package whose import path
// is path or ends in "/"+path.
func fromPkg(fn *types.Func, path string) bool {
	p := pkgPathOf(fn)
	return p == path || strings.HasSuffix(p, "/"+path)
}

// exprString renders an expression as the analyzers' canonical receiver
// key (types.ExprString without the import churn).
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}

// lastResultIsError reports whether fn's final result is the builtin
// error type.
func lastResultIsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// parentMap builds child→parent links for every node under root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
