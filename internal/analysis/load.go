package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Loader loads and type-checks packages without golang.org/x/tools: it
// asks the go command for the package graph and compiled export data
// (`go list -deps -export`), parses the module's own sources with
// go/parser, and type-checks them with go/types resolving every import
// through the export data the toolchain just produced. That keeps the
// analyzers on real type information at a fraction of a source
// importer's cost, with nothing outside the standard library.
type Loader struct {
	Fset    *token.FileSet
	conf    types.Config
	exports map[string]string // import path -> export data file
}

// pkgMeta is the subset of `go list -json` output the loader consumes.
type pkgMeta struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load lists patterns (default "./...") relative to dir (default the
// current directory), type-checks every non-standard-library package it
// names, and returns them with a Loader that can check additional
// directories (the golden-file testdata packages) against the same
// dependency universe.
func Load(dir string, patterns ...string) ([]*Pkg, *Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,Standard,GoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	var metas []pkgMeta
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var m pkgMeta
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if m.Error != nil {
			return nil, nil, fmt.Errorf("analysis: %s: %s", m.ImportPath, m.Error.Err)
		}
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
		if !m.Standard {
			metas = append(metas, m)
		}
	}
	l := &Loader{Fset: token.NewFileSet(), exports: exports}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	l.conf = types.Config{Importer: importer.ForCompiler(l.Fset, "gc", lookup)}
	sort.Slice(metas, func(i, j int) bool { return metas[i].ImportPath < metas[j].ImportPath })
	pkgs := make([]*Pkg, 0, len(metas))
	for _, m := range metas {
		files := make([]string, len(m.GoFiles))
		for i, gf := range m.GoFiles {
			files[i] = filepath.Join(m.Dir, gf)
		}
		pkg, err := l.check(m.ImportPath, files)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, l, nil
}

// CheckDir parses and type-checks every non-test .go file in dir as one
// package under the given import path. Imports resolve against the
// dependency universe of the original Load, so testdata packages may
// import anything the module itself (transitively) imports.
func (l *Loader) CheckDir(dir, importPath string) (*Pkg, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	sort.Strings(files)
	return l.check(importPath, files)
}

// check parses files and type-checks them as one package.
func (l *Loader) check(importPath string, files []string) (*Pkg, error) {
	astFiles := make([]*ast.File, 0, len(files))
	for _, f := range files {
		af, err := parser.ParseFile(l.Fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		astFiles = append(astFiles, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tpkg, err := l.conf.Check(importPath, l.Fset, astFiles, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, err)
	}
	return &Pkg{Path: importPath, Fset: l.Fset, Files: astFiles, Types: tpkg, Info: info}, nil
}
