package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"sort"
)

// MetricName vets every telemetry registration in the module: the name
// handed to a Registry constructor (NewCounter, NewGauge, NewHistogram,
// CounterFunc, GaugeFunc) must be a constant string, spelled in
// lowercase_snake, and registered at exactly one call site across all
// packages. The registry itself panics on a duplicate or malformed name
// — but only at runtime, on whichever process first wires two
// subsystems onto one registry. A scrape endpoint aggregates the whole
// process, so two packages independently minting "queries_total" is a
// collision the compiler cannot see; this rule moves that panic to lint
// time. Dynamic names are flagged too: a name the analyzer cannot read
// is a name it cannot vet, and per-entity metric families are not part
// of this registry's design.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "telemetry metric names must be constant, lowercase_snake, and unique across the module",
	Run:  runMetricName,
}

// metricCtors are the Registry methods that register a new series under
// their first argument.
var metricCtors = map[string]bool{
	"NewCounter":   true,
	"NewGauge":     true,
	"NewHistogram": true,
	"CounterFunc":  true,
	"GaugeFunc":    true,
}

var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// metricSite is one registration call somewhere in the module.
type metricSite struct {
	name string
	pkg  *Pkg
	pos  token.Pos
}

func runMetricName(pass *Pass) []Diag {
	var diags []Diag

	// Per-site checks for the package under review: constant names only,
	// lowercase_snake spelling.
	for _, site := range metricSitesOf(pass.Pkg) {
		if site.name == "" {
			diags = append(diags, diag(pass.Pkg, "metricname", site.pos,
				"metric name is not a constant string: spatiallint cannot vet a name it cannot read"))
			continue
		}
		if !metricNameRE.MatchString(site.name) {
			diags = append(diags, diag(pass.Pkg, "metricname", site.pos,
				"metric name %q is not lowercase_snake ([a-z][a-z0-9_]*)", site.name))
		}
	}

	// Uniqueness spans packages: collect every constant-named site in the
	// module, keep the first in position order as canonical, and report
	// the rest — but only those in the package under review, so a
	// module-wide run emits each duplicate exactly once.
	byName := make(map[string][]metricSite)
	for _, pkg := range pass.Mod.pkgs {
		for _, site := range metricSitesOf(pkg) {
			if site.name != "" {
				byName[site.name] = append(byName[site.name], site)
			}
		}
	}
	for name, sites := range byName {
		if len(sites) < 2 {
			continue
		}
		sort.Slice(sites, func(i, j int) bool {
			pi := sites[i].pkg.Fset.Position(sites[i].pos)
			pj := sites[j].pkg.Fset.Position(sites[j].pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			return pi.Offset < pj.Offset
		})
		first := sites[0].pkg.Fset.Position(sites[0].pos)
		for _, site := range sites[1:] {
			if site.pkg != pass.Pkg {
				continue
			}
			diags = append(diags, diag(pass.Pkg, "metricname", site.pos,
				"metric name %q already registered at %s:%d: one registry cannot hold both",
				name, first.Filename, first.Line))
		}
	}
	return diags
}

// metricSitesOf returns every Registry-constructor call in pkg, with
// name "" when the first argument does not fold to a string constant.
func metricSitesOf(pkg *Pkg) []metricSite {
	var sites []metricSite
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			_, fn := methodObj(pkg.Info, call)
			if fn == nil || !metricCtors[fn.Name()] || !fromPkg(fn, "internal/telemetry") {
				return true
			}
			site := metricSite{pkg: pkg, pos: call.Args[0].Pos()}
			if tv, ok := pkg.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				site.name = constant.StringVal(tv.Value)
			}
			sites = append(sites, site)
			return true
		})
	}
	return sites
}
