package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"spatialtf/internal/analysis/cfg"
)

// TaintSize enforces the bounded-allocation contract on every decode
// path: a length or count read out of raw bytes — a wire frame, a
// snapshot stream, a geometry image — is attacker-controlled, and
// feeding it to make() or (*bytes.Buffer).Grow before any bound check
// lets a forged 16-byte message demand gigabytes. The sources are the
// unbounded integer decodes (binary.Uvarint/Varint, ReadUvarint/
// ReadVarint, and ByteOrder.Uint32/Uint64 — Uint16 is bounded by 65535
// and exempt), plus any module function whose summary says a result
// carries such a count. Any comparison involving the tainted value
// counts as the bound check and clears it, as does passing it through
// min/len/cap or any other ordinary call.
//
// The rule is interprocedural through the module summaries: a helper
// that allocates from its parameter without checking it is flagged at
// its call sites when the argument is tainted, and a helper that
// returns a raw decoded count taints its callers' locals.
var TaintSize = &Analyzer{
	Name: "taintsize",
	Doc:  "a length decoded from wire/snapshot/geometry bytes must pass a bound check before it sizes an allocation",
	Run:  runTaintSize,
}

// taintVal records where a tainted value was decoded and, for summary
// computation, which parameter it arrived through (-1 when it came
// from a decode source).
type taintVal struct {
	pos   token.Pos
	param int
}

type taintFact map[types.Object]taintVal

func runTaintSize(pass *Pass) []Diag {
	pkg := pass.Pkg
	var diags []Diag
	for _, f := range pkg.Files {
		for _, body := range funcScopes(f) {
			g := cfg.Build(body)
			fl := taintFlow(pkg, pass.Mod, nil)
			in := cfg.Solve(g, fl)
			taintSinks(pkg, pass.Mod, g, fl, in, func(pos token.Pos, argName string, val taintVal, sink string) {
				if val.param >= 0 {
					return // parameter taint is the summary's business
				}
				diags = append(diags, diag(pkg, "taintsize", pos,
					"allocation sized by %q: the count was decoded from raw bytes at line %d and reaches this %s without a bound check",
					argName, pkg.Fset.Position(val.pos).Line, sink))
			})
		}
	}
	return diags
}

// taintFlow builds the forward taint dataflow. seed taints the given
// objects at entry (the parameters, during summary computation).
func taintFlow(pkg *Pkg, mod *Module, seed taintFact) cfg.Flow[taintFact] {
	entry := taintFact{}
	for obj, v := range seed {
		entry[obj] = v
	}
	return cfg.Flow[taintFact]{
		Entry: entry,
		Join: func(a, b taintFact) taintFact {
			for obj, v := range b {
				if prev, ok := a[obj]; ok {
					// Prefer the decode origin: it is the one the rule
					// reports, and the earlier position on ties.
					if (v.param < 0 && prev.param >= 0) || (v.param == prev.param && v.pos < prev.pos) {
						a[obj] = v
					}
				} else {
					a[obj] = v
				}
			}
			return a
		},
		Equal: func(a, b taintFact) bool {
			if len(a) != len(b) {
				return false
			}
			for obj, v := range a {
				if other, ok := b[obj]; !ok || other != v {
					return false
				}
			}
			return true
		},
		Clone: func(f taintFact) taintFact {
			c := make(taintFact, len(f))
			for obj, v := range f {
				c[obj] = v
			}
			return c
		},
		Transfer: func(n cfg.Node, f taintFact) taintFact {
			return taintTransfer(pkg, mod, n.N, f)
		},
	}
}

// taintTransfer applies one node's taint effects: assignments
// propagate, decode calls introduce, comparisons sanitize. Function
// literals are their own analysis scopes and are skipped.
func taintTransfer(pkg *Pkg, mod *Module, node ast.Node, f taintFact) taintFact {
	ast.Inspect(node, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			taintAssign(pkg, mod, x, f)
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if i < len(x.Values) {
					setTaint(pkg, f, name, taintValOf(pkg, mod, x.Values[i], f))
				}
			}
		case *ast.BinaryExpr:
			switch x.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				// A comparison is the bound check: whatever tainted
				// values it mentions are considered validated on every
				// path from here.
				for _, e := range []ast.Expr{x.X, x.Y} {
					ast.Inspect(e, func(y ast.Node) bool {
						if id, ok := y.(*ast.Ident); ok {
							if obj := pkg.Info.Uses[id]; obj != nil {
								delete(f, obj)
							}
						}
						return true
					})
				}
			}
		}
		return true
	})
	return f
}

// taintAssign propagates taint through one assignment.
func taintAssign(pkg *Pkg, mod *Module, as *ast.AssignStmt, f taintFact) {
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		// Multi-value call: n, err := binary.ReadUvarint(r).
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		results := sourceResults(pkg, mod, call)
		for i, lhs := range as.Lhs {
			var v *taintVal
			if results != nil && i < len(results) && results[i] {
				v = &taintVal{pos: call.Pos(), param: -1}
			}
			setTaint(pkg, f, lhs, v)
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		v := taintValOf(pkg, mod, as.Rhs[i], f)
		if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			// Compound assignment (+=, <<=, ...): taint accumulates, an
			// untainted operand does not launder an already-tainted LHS.
			if v == nil {
				continue
			}
		}
		setTaint(pkg, f, lhs, v)
	}
}

// setTaint sets or clears the taint of an identifier target. Only
// integer-typed variables are tracked.
func setTaint(pkg *Pkg, f taintFact, lhs ast.Expr, v *taintVal) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := pkg.Info.Defs[id]
	if obj == nil {
		obj = pkg.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	if v == nil {
		delete(f, obj)
		return
	}
	if basic, ok := obj.Type().Underlying().(*types.Basic); !ok || basic.Info()&types.IsInteger == 0 {
		return
	}
	f[obj] = *v
}

// taintValOf evaluates the taint of expression e under fact f, or nil.
func taintValOf(pkg *Pkg, mod *Module, e ast.Expr, f taintFact) *taintVal {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[e]; obj != nil {
			if v, ok := f[obj]; ok {
				return &v
			}
		}
	case *ast.ParenExpr:
		return taintValOf(pkg, mod, e.X, f)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return taintValOf(pkg, mod, e.X, f)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.SHL, token.SHR, token.AND, token.OR, token.XOR:
			x := taintValOf(pkg, mod, e.X, f)
			y := taintValOf(pkg, mod, e.Y, f)
			if x != nil && (y == nil || x.param < 0) {
				return x
			}
			return y
		}
	case *ast.CallExpr:
		// A conversion passes taint through; a decode source introduces
		// it; every other call (min, len, cap, arbitrary functions with
		// untainted summaries) launders it.
		if tv, ok := pkg.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return taintValOf(pkg, mod, e.Args[0], f)
		}
		if results := sourceResults(pkg, mod, e); results != nil && len(results) > 0 && results[0] {
			return &taintVal{pos: e.Pos(), param: -1}
		}
	}
	return nil
}

// sourceResults reports which results of call carry an unbounded
// decoded count, or nil when the call is not a source. The stdlib
// sources are the unbounded binary decodes; module functions
// contribute their TaintedResults summary.
func sourceResults(pkg *Pkg, mod *Module, call *ast.CallExpr) []bool {
	fn := calleeFunc(pkg.Info, call)
	if fn == nil {
		return nil
	}
	if pkgPathOf(fn) == "encoding/binary" {
		switch fn.Name() {
		case "Uvarint", "Varint", "ReadUvarint", "ReadVarint":
			return []bool{true, false}
		case "Uint32", "Uint64":
			return []bool{true}
		}
		return nil
	}
	if sum := mod.SummaryOf(fn); sum != nil {
		for _, t := range sum.TaintedResults {
			if t {
				return sum.TaintedResults
			}
		}
	}
	return nil
}

// taintSinks replays the solved dataflow and calls emit for every
// allocation sink reached by a tainted size: make() length/capacity
// arguments, (*bytes.Buffer).Grow, and arguments to module functions
// whose summary marks the parameter as allocating unguarded.
func taintSinks(pkg *Pkg, mod *Module, g *cfg.Graph, fl cfg.Flow[taintFact], in map[*cfg.Block]taintFact,
	emit func(pos token.Pos, argName string, val taintVal, sink string)) {
	cfg.Walk(g, fl, in, func(n cfg.Node, before taintFact) {
		ast.Inspect(n.N, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
					for _, arg := range call.Args[1:] {
						if v := taintValOf(pkg, mod, arg, before); v != nil {
							emit(call.Pos(), exprString(arg), *v, "make")
						}
					}
					return true
				}
			}
			fn := calleeFunc(pkg.Info, call)
			if fn == nil {
				return true
			}
			if fn.Name() == "Grow" && pkgPathOf(fn) == "bytes" {
				if len(call.Args) == 1 {
					if v := taintValOf(pkg, mod, call.Args[0], before); v != nil {
						emit(call.Pos(), exprString(call.Args[0]), *v, "Grow")
					}
				}
				return true
			}
			if sum := mod.SummaryOf(fn); sum != nil {
				for i, arg := range call.Args {
					if i >= len(sum.UnguardedSizeParams) || !sum.UnguardedSizeParams[i] {
						continue
					}
					if v := taintValOf(pkg, mod, arg, before); v != nil {
						emit(call.Pos(), exprString(arg), *v, fn.Name())
					}
				}
			}
			return true
		})
	})
}

// updateTaintSummary recomputes s.TaintedResults and
// s.UnguardedSizeParams; reports a change. Parameters are seeded as
// tainted (tagged with their index) so a sink reached by one marks it
// unguarded; results tainted by a genuine decode source (not a
// forwarded parameter) mark TaintedResults.
func updateTaintSummary(s *FuncSummary, m *Module) bool {
	seed := taintFact{}
	sig := s.Fn.Signature()
	idx := 0
	if s.Decl.Type.Params != nil {
		for _, field := range s.Decl.Type.Params.List {
			for _, name := range field.Names {
				if idx >= sig.Params().Len() {
					break
				}
				obj := s.Pkg.Info.Defs[name]
				if obj != nil {
					if basic, ok := obj.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsInteger != 0 {
						seed[obj] = taintVal{pos: name.Pos(), param: idx}
					}
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	g := cfg.Build(s.Decl.Body)
	fl := taintFlow(s.Pkg, m, seed)
	in := cfg.Solve(g, fl)
	changed := false
	taintSinks(s.Pkg, m, g, fl, in, func(_ token.Pos, _ string, val taintVal, _ string) {
		if val.param >= 0 && val.param < len(s.UnguardedSizeParams) && !s.UnguardedSizeParams[val.param] {
			s.UnguardedSizeParams[val.param] = true
			changed = true
		}
	})
	cfg.Walk(g, fl, in, func(n cfg.Node, before taintFact) {
		ret, ok := n.N.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for i, res := range ret.Results {
			if i >= len(s.TaintedResults) || s.TaintedResults[i] {
				continue
			}
			if v := taintValOf(s.Pkg, m, res, before); v != nil && v.param < 0 {
				s.TaintedResults[i] = true
				changed = true
			}
		}
	})
	return changed
}
