package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDiscipline forbids holding a sync.Mutex/RWMutex across an
// operation that can block indefinitely on a peer: a channel send or
// receive, a select without a default clause, a cursor Fetch (a network
// round trip on the wire client), or a wire write/flush. A goroutine
// parked on a channel while holding a mutex is the deadlock shape the
// PR 2 review caught in the geometry cache; on the server it also turns
// one slow client into a global stall.
//
// The walk is linear in syntactic order per function: Lock/RLock mark
// the receiver held, Unlock/RUnlock release it, defer Unlock keeps it
// held to the end of the function. Function literals are separate
// scopes (a spawned goroutine does not inherit the parent's lock
// state).
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no sync.Mutex/RWMutex may be held across a channel operation, Fetch, or wire write",
	Run:  runLockDiscipline,
}

// syncLockMethod resolves sel to a sync.Mutex/RWMutex lock or unlock
// method, returning the receiver key and method name.
func syncLockMethod(pkg *Pkg, sel *ast.SelectorExpr) (recvKey, method string, ok bool) {
	recv, fn := selectorObj(pkg.Info, sel)
	if fn == nil || recv == nil || pkgPathOf(fn) != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return exprString(recv), fn.Name(), true
	}
	return "", "", false
}

func runLockDiscipline(pass *Pass) []Diag {
	pkg := pass.Pkg
	var diags []Diag
	for _, f := range pkg.Files {
		for _, body := range funcScopes(f) {
			w := &lockWalker{pkg: pkg, held: make(map[string]token.Pos)}
			w.walkStmts(body.List)
			diags = append(diags, w.diags...)
		}
	}
	return diags
}

type lockWalker struct {
	pkg   *Pkg
	held  map[string]token.Pos // receiver key -> Lock position
	diags []Diag
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the remainder of the
		// function; a deferred closure's body runs with whatever is held
		// at return, so scan it for unlocks the same way.
		if sel, ok := s.Call.Fun.(*ast.SelectorExpr); ok {
			if _, method, ok := syncLockMethod(w.pkg, sel); ok && strings.HasSuffix(method, "Unlock") {
				return // still held; no release event
			}
		}
		w.scanExpr(s.Call)
	case *ast.SendStmt:
		w.scanExpr(s.Chan)
		w.scanExpr(s.Value)
		w.report(s.Arrow, "channel send")
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.report(s.Pos(), "select without default")
		}
		w.walkStmt(s.Body)
	case *ast.BlockStmt:
		w.walkStmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.scanExpr(s.Cond)
		w.walkStmt(s.Body)
		if s.Else != nil {
			w.walkStmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.scanExpr(s.Cond)
		w.walkStmt(s.Body)
		if s.Post != nil {
			w.walkStmt(s.Post)
		}
	case *ast.RangeStmt:
		w.scanExpr(s.X)
		w.walkStmt(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.scanExpr(s.Tag)
		w.walkStmt(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkStmt(s.Body)
	case *ast.CaseClause:
		w.walkStmts(s.Body)
	case *ast.CommClause:
		w.walkStmts(s.Body)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.GoStmt:
		// The spawned goroutine runs with its own (empty) lock state;
		// funcScopes analyzes its body separately. Arguments are
		// evaluated here, though.
		for _, arg := range s.Call.Args {
			w.scanExpr(arg)
		}
	default:
		scanStmtExprs(s, w.scanExpr)
	}
}

// scanStmtExprs feeds every expression of a simple statement to scan.
func scanStmtExprs(s ast.Stmt, scan func(ast.Expr)) {
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			scan(e)
			return false // scanExpr descends itself
		}
		return true
	})
}

// scanExpr processes one expression tree in syntactic order: lock state
// transitions and blocking-operation reports.
func (w *lockWalker) scanExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.report(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			w.handleCall(n)
		}
		return true
	})
}

func (w *lockWalker) handleCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		// In-package calls name wire functions by bare identifier.
		if id, ok := call.Fun.(*ast.Ident); ok {
			if fn, ok := w.pkg.Info.Uses[id].(*types.Func); ok {
				if kind, ok := blockingFunc(fn); ok {
					w.report(call.Pos(), kind)
				}
			}
		}
		return
	}
	if recvKey, method, ok := syncLockMethod(w.pkg, sel); ok {
		switch method {
		case "Lock", "RLock":
			w.held[recvKey] = call.Pos()
		case "Unlock", "RUnlock":
			delete(w.held, recvKey)
		}
		return
	}
	if kind, ok := blockingCall(w.pkg, call, sel); ok {
		w.report(call.Pos(), kind)
	}
}

// blockingCall classifies calls that can block on a peer: any method
// named Fetch (the wire cursor's network round trip), wire.Write* /
// wire handshake functions, and bufio.Writer Flush/Write (socket
// writes under the wire protocol).
func blockingCall(pkg *Pkg, call *ast.CallExpr, sel *ast.SelectorExpr) (string, bool) {
	recv, fn := selectorObj(pkg.Info, sel)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	if name == "Fetch" && fn.Signature().Recv() != nil {
		return "cursor Fetch (network round trip)", true
	}
	if kind, ok := blockingFunc(fn); ok {
		return kind, true
	}
	if recv != nil && isBufioWriter(pkg.Info, recv) &&
		(name == "Flush" || strings.HasPrefix(name, "Write")) {
		return "bufio.Writer." + name + " (socket write)", true
	}
	return "", false
}

// blockingFunc classifies package-level wire functions that move bytes
// to or from a peer.
func blockingFunc(fn *types.Func) (string, bool) {
	if !fromPkg(fn, "internal/wire") && !fromPkg(fn, "wire") {
		return "", false
	}
	name := fn.Name()
	if strings.HasPrefix(name, "Write") || name == "ExpectMagic" || name == "ReadFrame" {
		return "wire " + name, true
	}
	return "", false
}

// isBufioWriter reports whether e's type is *bufio.Writer.
func isBufioWriter(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "bufio" && named.Obj().Name() == "Writer"
}

func (w *lockWalker) report(pos token.Pos, what string) {
	for recvKey, lockPos := range w.held {
		w.diags = append(w.diags, diag(w.pkg, "lockdiscipline", pos,
			"%s while %s is held (locked at line %d): release the lock before blocking, or hand the work to an unlocked region",
			what, recvKey, w.pkg.Fset.Position(lockPos).Line))
	}
}
