package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDiscipline forbids holding a sync.Mutex/RWMutex across an
// operation that can block indefinitely on a peer: a channel send or
// receive, a select without a default clause, a cursor Fetch through an
// interface or the wire client (a network round trip), or a wire
// write/flush. A goroutine parked on a channel while holding a mutex is
// the deadlock shape the PR 2 review caught in the geometry cache; on
// the server it also turns one slow client into a global stall.
//
// The rule is path-sensitive (it runs on the CFG, so a lock released on
// one branch is not "held" on the other) and interprocedural: via the
// module lock summaries, a mutex held across a call into a function
// that transitively blocks — or that re-acquires the very lock already
// held — is flagged too. Function literals are separate scopes with
// fresh lock state, whether they are spawned by `go`, deferred, or
// handed to tablefunc.Parallel as factory callbacks: the goroutine that
// eventually runs them does not inherit the spawner's locks.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no sync.Mutex/RWMutex may be held across a blocking operation or a re-acquisition of itself",
	Run:  runLockDiscipline,
}

// syncLockMethod resolves sel to a sync.Mutex/RWMutex lock or unlock
// method, returning the receiver key and method name.
func syncLockMethod(pkg *Pkg, sel *ast.SelectorExpr) (recvKey, method string, ok bool) {
	recv, fn := selectorObj(pkg.Info, sel)
	if fn == nil || recv == nil || pkgPathOf(fn) != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return exprString(recv), fn.Name(), true
	}
	return "", "", false
}

func runLockDiscipline(pass *Pass) []Diag {
	var diags []Diag
	for _, f := range pass.Pkg.Files {
		for _, body := range funcScopes(f) {
			diags = append(diags, lockDisciplineScope(pass.Pkg, pass.Mod, body)...)
		}
	}
	return diags
}

// lockDisciplineScope solves the may-held flow over one function scope
// and reports blocking operations and same-lock re-acquisitions under
// held locks.
func lockDisciplineScope(pkg *Pkg, mod *Module, body *ast.BlockStmt) []Diag {
	g := mod.graphFor(body)
	sc := newLockScanner(pkg, mod, body)
	var diags []Diag
	ev := &lockEvents{
		blocking: func(pos token.Pos, what, via string, before lockFact) {
			msg := what
			if via != "" {
				msg = "call into " + via + " (can block: " + what + ")"
			}
			for _, k := range sortedFactKeys(before) {
				h := before[k]
				// Only locks acquired in this scope gate blocking ops:
				// pin-style locks leaked by callees are held across
				// fetches by design (that is what a pin is for).
				if !h.direct() {
					continue
				}
				diags = append(diags, diag(pkg, "lockdiscipline", pos,
					"%s while %s is held (locked at line %d): release the lock before blocking, or hand the work to an unlocked region",
					msg, h.display, pkg.Fset.Position(h.pos).Line))
			}
		},
		acquire: func(pos token.Pos, id lockIdent, display string, write bool, via string, before lockFact) {
			for _, k := range sortedFactKeys(before) {
				h := before[k]
				if h.id != id {
					continue
				}
				// Read-locking the same instance again while read-held
				// is left to taste; everything else — write anywhere,
				// or a second instance of the same lock class whose
				// order nothing fixes — can deadlock.
				if !write && !h.write && h.display == display {
					continue
				}
				lockName := display
				if id.global {
					lockName = id.name
				}
				if via == "" {
					diags = append(diags, diag(pkg, "lockdiscipline", pos,
						"%s acquired while %s is already held (locked at line %d): re-acquisition can deadlock",
						lockName, lockHeldPhrase(h), pkg.Fset.Position(h.pos).Line))
				} else {
					diags = append(diags, diag(pkg, "lockdiscipline", pos,
						"call into %s acquires %s while %s is already held (locked at line %d): re-acquisition can deadlock",
						via, lockName, lockHeldPhrase(h), pkg.Fset.Position(h.pos).Line))
				}
			}
		},
	}
	sc.replay(g, false, ev)
	return diags
}

// blockingCall classifies calls that can block on a peer: a Fetch
// dispatched through an interface (the table-function contract) or the
// wire client's cursor (a network round trip), wire.Write*/handshake
// functions, and bufio.Writer Flush/Write (socket writes under the
// wire protocol). A concrete in-memory Fetch is not blocking: it is a
// local batch copy.
func blockingCall(pkg *Pkg, call *ast.CallExpr, sel *ast.SelectorExpr) (string, bool) {
	recv, fn := selectorObj(pkg.Info, sel)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	if name == "Fetch" && fn.Signature().Recv() != nil {
		_, iface := fn.Signature().Recv().Type().Underlying().(*types.Interface)
		if iface || fromPkg(fn, "internal/wire") || fromPkg(fn, "wire") {
			return "cursor Fetch (network round trip)", true
		}
	}
	if kind, ok := blockingFunc(fn); ok {
		return kind, true
	}
	if recv != nil && isBufioWriter(pkg.Info, recv) &&
		(name == "Flush" || strings.HasPrefix(name, "Write")) {
		return "bufio.Writer." + name + " (socket write)", true
	}
	return "", false
}

// blockingFunc classifies package-level wire functions that move bytes
// to or from a peer.
func blockingFunc(fn *types.Func) (string, bool) {
	if !fromPkg(fn, "internal/wire") && !fromPkg(fn, "wire") {
		return "", false
	}
	name := fn.Name()
	if strings.HasPrefix(name, "Write") || name == "ExpectMagic" || name == "ReadFrame" {
		return "wire " + name, true
	}
	return "", false
}

// isBufioWriter reports whether e's type is *bufio.Writer.
func isBufioWriter(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "bufio" && named.Obj().Name() == "Writer"
}
