package analysis

// Per-function lock summaries, folded to a module-wide fixpoint by
// BuildModule alongside the taint/release/accounting facts. These are
// what make lockdiscipline and lockorder interprocedural: a caller
// holding a mutex sees through its callees to the locks they acquire,
// the operations they block on, and the locks they leave held (the
// Pin/Unpin pattern).

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"strconv"
	"strings"

	"spatialtf/internal/analysis/cfg"
)

// LockUse records a direct acquisition of a lock inside a function.
type LockUse struct {
	Write bool
	Pos   token.Pos
}

// TransAcq records that a function acquires a lock directly or through
// a callee chain (Via empty for direct, "g → h" for transitive).
type TransAcq struct {
	Write bool
	Pos   token.Pos
	Via   string
}

// LeakInfo records a lock still held at some return of the function —
// rtree.Pin leaving pinMu read-held is the canonical case.
type LeakInfo struct {
	Write bool
	Via   string
}

// BlockInfo records that a function can block indefinitely on a peer:
// a channel op, select without default, Fetch round trip, or wire
// write, directly (Via empty) or through callees.
type BlockInfo struct {
	What string
	Pos  token.Pos
	Via  string
}

// updateLockFacts recomputes the lock summary of s from its CFG and
// the current summaries of its callees; reports a change.
func updateLockFacts(s *FuncSummary, m *Module) bool {
	g := m.graphFor(s.Decl.Body)
	sc := newLockScanner(s.Pkg, m, s.Decl.Body)

	acq := make(map[string]LockUse)
	trans := make(map[string]TransAcq)
	rel := make(map[string]bool)
	var blocking *BlockInfo
	ev := &lockEvents{
		acquire: func(pos token.Pos, id lockIdent, _ string, write bool, via string, _ lockFact) {
			if !id.global {
				return
			}
			if via == "" {
				if old, ok := acq[id.name]; !ok {
					acq[id.name] = LockUse{Write: write, Pos: pos}
				} else if write && !old.Write {
					acq[id.name] = LockUse{Write: true, Pos: old.Pos}
				}
			}
			if old, ok := trans[id.name]; !ok || (old.Via != "" && via == "") {
				trans[id.name] = TransAcq{Write: write, Pos: pos, Via: via}
			} else if write && !old.Write {
				old.Write = true
				trans[id.name] = old
			}
		},
		blocking: func(pos token.Pos, what, via string, _ lockFact) {
			if blocking == nil {
				blocking = &BlockInfo{What: what, Pos: pos, Via: via}
			}
		},
		release: func(_ token.Pos, id lockIdent, matched bool) {
			if id.global && !matched {
				rel[id.name] = true
			}
		},
	}
	fl := sc.flow(false)
	in := cfg.Solve(g, fl)
	cfg.Walk(g, fl, in, func(n cfg.Node, before lockFact) {
		sc.apply(n.N, cloneLockFact(before), ev)
	})

	// Leaks: locks still held at some return, minus what the deferred
	// unlocks (including unlocks inside deferred closures) pay off.
	leak := make(map[string]LeakInfo)
	drel := sc.deferredReleaseKeys(g)
	for _, ex := range cfg.Exits(g, fl, in) {
		if ex.Edge.Kind != cfg.EdgeReturn {
			continue
		}
		for k, h := range ex.Fact {
			if !h.id.global || dischargedAtExit(drel, k, h) {
				continue
			}
			if old, ok := leak[h.id.name]; !ok {
				leak[h.id.name] = LeakInfo{Write: h.write, Via: h.via}
			} else if h.write && !old.Write {
				old.Write = true
				leak[h.id.name] = old
			}
		}
	}

	changed := !maps.Equal(acq, s.LockAcquires) ||
		!maps.Equal(trans, s.TransAcquires) ||
		!maps.Equal(rel, s.LockReleases) ||
		!maps.Equal(leak, s.LockLeaked) ||
		!equalBlockInfo(blocking, s.Blocking)
	if changed {
		s.LockAcquires, s.TransAcquires, s.LockReleases, s.LockLeaked, s.Blocking = acq, trans, rel, leak, blocking
	}
	return changed
}

func equalBlockInfo(a, b *BlockInfo) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

// graphFor returns the (cached) CFG of body. Summaries and every
// concurrency rule share one graph per function scope.
func (m *Module) graphFor(body *ast.BlockStmt) *cfg.Graph {
	m.graphMu.Lock()
	defer m.graphMu.Unlock()
	if m.graphs == nil {
		m.graphs = make(map[*ast.BlockStmt]*cfg.Graph)
	}
	if g, ok := m.graphs[body]; ok {
		return g
	}
	g := cfg.Build(body)
	m.graphs[body] = g
	return g
}

// calleeSummaries resolves the summaries a call to fn may execute: the
// function's own summary, or — for a call through an interface declared
// in this module (pager.Space, storage.Cursor, the table-function
// contract) — every module method with the same name and shape, a
// class-hierarchy-lite answer that needs no cross-universe
// types.Implements.
func (m *Module) calleeSummaries(fn *types.Func) []*FuncSummary {
	if m == nil || fn == nil {
		return nil
	}
	if s := m.SummaryOf(fn); s != nil {
		return []*FuncSummary{s}
	}
	sig := fn.Signature()
	if sig.Recv() == nil {
		return nil
	}
	if _, ok := sig.Recv().Type().Underlying().(*types.Interface); !ok {
		return nil
	}
	if fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), "spatialtf") {
		return nil
	}
	// Close() error is declared by nearly every module interface
	// (Cursor, TableFunction, pager.File), so shape matching would
	// resolve each interface Close to *every* concrete Close — pulling
	// pager.Store.Close's locking into arbitrary call chains. The
	// precision loss swamps the one real signal (the wire cursor's
	// blocking Close), so Close is resolved only when concrete.
	if fn.Name() == "Close" {
		return nil
	}
	return m.methodIndex()[methodShape(fn)]
}

// methodShape is the name+arity key the interface resolution joins on.
func methodShape(fn *types.Func) string {
	sig := fn.Signature()
	return fn.Name() + "/" + strconv.Itoa(sig.Params().Len()) + "/" + strconv.Itoa(sig.Results().Len())
}

// methodIndex maps method shapes to the module methods that have them.
func (m *Module) methodIndex() map[string][]*FuncSummary {
	m.idxOnce.Do(func() {
		m.mIndex = make(map[string][]*FuncSummary)
		for _, key := range sortedKeys(m.fns) {
			s := m.fns[key]
			if s.Fn.Signature().Recv() == nil {
				continue
			}
			shape := methodShape(s.Fn)
			m.mIndex[shape] = append(m.mIndex[shape], s)
		}
	})
	return m.mIndex
}
