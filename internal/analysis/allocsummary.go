package analysis

// Per-function allocation and escape summaries, folded to a module-wide
// fixpoint by BuildModule alongside the taint/release/lock facts. These
// power the hotalloc rule (hotalloc.go): every function carries the
// allocation sites it executes directly plus — mirroring the lock
// summaries — the sites its callees reach, each with a via-chain, so a
// declared hot function sees through its call tree to the allocations
// it may pay per invocation.
//
// The escape side is a three-point lattice per value:
//
//	EscNone   < EscResult          < EscHeap
//	(local)     (returned to caller) (stored in a struct/global/chan,
//	                                  captured by a goroutine, passed
//	                                  to an escaping parameter)
//
// computed per function by climbing each value's consumers in the AST
// and joining across local assignment chains; parameter escape classes
// (ParamEscapes) make the climb interprocedural, so a closure handed to
// a callee that only calls it is recognized as non-escaping, while one
// stored by the callee is heap.
//
// Not every allocation is worth a report. The collection applies the
// codebase's amortization idioms before recording a site:
//
//   - self-append (x = append(x, …), including re-sliced forms like
//     x = append(x[:0], …)) is the blessed scratch-reuse pattern;
//   - append to a caller-supplied buffer parameter (the AppendTo(dst)
//     idiom) allocates on the caller's account, by contract;
//   - make with constant sizes that does not escape stack-allocates;
//   - new/&T{}/closures only cost when they escape;
//   - sites on error paths (inside an if whose condition tests an
//     error) are cold by definition;
//   - dead CFG blocks are not reached at all.
//
// string↔[]byte conversions and interface boxing always copy, so they
// are always recorded.

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"slices"
	"sort"
)

// AllocKind classifies one allocation site.
type AllocKind int

const (
	AllocMake AllocKind = iota
	AllocNew
	AllocComposite
	AllocAppend
	AllocConvert
	AllocBox
	AllocClosure
)

func (k AllocKind) String() string {
	switch k {
	case AllocMake:
		return "make"
	case AllocNew:
		return "new"
	case AllocComposite:
		return "composite literal"
	case AllocAppend:
		return "append growth"
	case AllocConvert:
		return "conversion copy"
	case AllocBox:
		return "interface boxing"
	case AllocClosure:
		return "closure"
	}
	return "alloc"
}

// EscClass is the escape lattice: how far an allocated value outlives
// the expression that produced it.
type EscClass int

const (
	EscNone   EscClass = iota // stays local to the function
	EscResult                 // returned to the caller
	EscHeap                   // stored in a struct/global/channel or escaping call
)

func (c EscClass) String() string {
	switch c {
	case EscResult:
		return "escapes to caller"
	case EscHeap:
		return "escapes to heap"
	}
	return "does not escape"
}

// AllocSite is one direct allocation a function performs.
type AllocSite struct {
	Pos  token.Pos
	Kind AllocKind
	What string // rendered source expression, capped
	Esc  EscClass
}

// TransAlloc is an allocation reached through a callee chain. Where is
// pre-rendered ("file.go:NN") because a token.Pos is only meaningful
// against the defining package's FileSet, which a caller in another
// package does not share.
type TransAlloc struct {
	Kind  AllocKind
	What  string
	Where string
	Via   string // callee chain, "g" or "g → h"
}

// transAllocCap bounds the transitive entries carried per function;
// deep chains (row decode → geometry unmarshal) fan out far beyond
// what a report can use. Selection is by sorted key, deterministic.
const transAllocCap = 16

// updateAllocFacts recomputes the allocation summary of s from its AST,
// its CFG's live blocks, and the current summaries of its callees;
// reports a change.
func updateAllocFacts(s *FuncSummary, m *Module) bool {
	parents := m.parentsFor(s.Decl)
	esc := escapeClasses(s, m, parents)
	cold := m.coldFor(s)

	sig := s.Fn.Signature()
	pe := make([]EscClass, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		pe[i] = esc[sig.Params().At(i)]
	}

	sites := collectAllocSites(s, m, parents, esc, cold)
	trans := collectTransAllocs(s, m, cold)

	changed := !slices.Equal(sites, s.AllocSites) ||
		!slices.Equal(pe, s.ParamEscapes) ||
		!maps.Equal(trans, s.TransAllocs)
	if changed {
		s.AllocSites, s.ParamEscapes, s.TransAllocs = sites, pe, trans
	}
	return changed
}

// --- escape analysis ---

// escapeClasses computes the escape class of every variable local to
// s (parameters, results, locals, closure locals), iterating to a
// fixpoint so assignment chains between locals converge.
func escapeClasses(s *FuncSummary, m *Module, parents map[ast.Node]ast.Node) map[types.Object]EscClass {
	info := s.Pkg.Info
	esc := make(map[types.Object]EscClass)
	// Named results are returned by definition.
	if r := s.Decl.Type.Results; r != nil {
		for _, f := range r.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					esc[obj] = EscResult
				}
			}
		}
	}
	for range 8 {
		changed := false
		ast.Inspect(s.Decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				obj = info.Defs[id]
			}
			v, ok := obj.(*types.Var)
			if !ok || v.IsField() || !declaredIn(v, s.Decl) {
				return true
			}
			cls := escConsumer(s, m, parents, esc, id)
			if cls > esc[v] {
				esc[v] = cls
				changed = true
			}
			return true
		})
		if !changed {
			break
		}
	}
	return esc
}

// declaredIn reports whether v is declared inside fd (parameter,
// result, or local — as opposed to a package-level variable).
func declaredIn(v *types.Var, fd *ast.FuncDecl) bool {
	return v.Pos() >= fd.Pos() && v.Pos() <= fd.End()
}

// escConsumer climbs from expression e through its consumers and
// reports how far the value escapes. The climb passes through
// value-preserving contexts (parens, conversions, &, composite-literal
// elements, append) and stops at a classifying consumer: a return, a
// store, a send, a call argument.
func escConsumer(s *FuncSummary, m *Module, parents map[ast.Node]ast.Node, esc map[types.Object]EscClass, e ast.Expr) EscClass {
	info := s.Pkg.Info
	cur := ast.Node(e)
	for range 64 {
		p := parents[cur]
		if p == nil {
			return EscNone
		}
		switch p := p.(type) {
		case *ast.ParenExpr, *ast.StarExpr, *ast.TypeAssertExpr, *ast.KeyValueExpr, *ast.CompositeLit:
			cur = p
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				cur = p
				continue
			}
			return EscNone
		case *ast.ReturnStmt:
			return EscResult
		case *ast.SendStmt:
			return EscHeap
		case *ast.GoStmt, *ast.DeferStmt:
			return EscHeap
		case *ast.AssignStmt:
			for i, r := range p.Rhs {
				if r != cur {
					continue
				}
				if len(p.Lhs) == len(p.Rhs) {
					return lhsEscape(s, esc, p.Lhs[i])
				}
				cls := EscNone
				for _, l := range p.Lhs {
					cls = max(cls, lhsEscape(s, esc, l))
				}
				return cls
			}
			return EscNone // cur is a store target, not a stored value
		case *ast.ValueSpec:
			for i, v := range p.Values {
				if v == cur && i < len(p.Names) {
					return lhsEscape(s, esc, p.Names[i])
				}
			}
			return EscNone
		case *ast.CallExpr:
			if p.Fun == cur {
				// Calling a value does not escape it — unless the call
				// itself is a goroutine launch.
				if _, ok := parents[p].(*ast.GoStmt); ok {
					return EscHeap
				}
				return EscNone
			}
			if tv, ok := info.Types[p.Fun]; ok && tv.IsType() {
				cur = p // conversion: value flows into the result
				continue
			}
			cls, through := m.callArgEscape(s, p, cur)
			if through {
				cur = p
				continue
			}
			return cls
		case *ast.IndexExpr:
			if p.Index == cur {
				return EscNone
			}
			// Reading an element: only pointer-bearing elements can
			// carry the base out through the read value.
			if tv, ok := info.Types[p]; ok && tv.Type != nil && !typeHasPointers(tv.Type) {
				return EscNone
			}
			cur = p
		case *ast.SelectorExpr:
			if p.X != cur {
				return EscNone
			}
			if tv, ok := info.Types[p]; ok && tv.Type != nil && !typeHasPointers(tv.Type) {
				return EscNone
			}
			cur = p
		case *ast.SliceExpr:
			if p.X != cur {
				return EscNone
			}
			cur = p
		default:
			return EscNone
		}
	}
	return EscHeap // pathological nesting: fail conservative
}

// lhsEscape reports the escape class a value acquires by being stored
// into target l.
func lhsEscape(s *FuncSummary, esc map[types.Object]EscClass, l ast.Expr) EscClass {
	info := s.Pkg.Info
	switch l := l.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return EscNone
		}
		obj := info.Defs[l]
		if obj == nil {
			obj = info.Uses[l]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return EscHeap
		}
		if declaredIn(v, s.Decl) {
			return esc[v]
		}
		return EscHeap // package-level variable
	case *ast.ParenExpr:
		return lhsEscape(s, esc, l.X)
	case *ast.SelectorExpr:
		// Storing through a pointer base puts the value in the heap
		// object the pointer names; a value-typed local struct only
		// escapes as far as the struct does.
		if tv, ok := info.Types[l.X]; ok && tv.Type != nil {
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				return EscHeap
			}
		}
		return lhsEscape(s, esc, l.X)
	case *ast.IndexExpr:
		return lhsEscape(s, esc, l.X)
	case *ast.StarExpr:
		return EscHeap
	}
	return EscHeap
}

// callArgEscape classifies how call consumes arg (one of its Args).
// through=true means the value flows into the call's result and the
// climb continues from the call expression.
func (m *Module) callArgEscape(s *FuncSummary, call *ast.CallExpr, arg ast.Node) (EscClass, bool) {
	info := s.Pkg.Info
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" {
				return EscNone, true // base and elements live on in the result
			}
			return EscNone, false // len/cap/copy/delete/panic/…
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return EscHeap, false // func-value call: unknown retention
	}
	if sum := m.SummaryOf(fn); sum != nil {
		idx := -1
		for i, a := range call.Args {
			if ast.Node(a) == arg {
				idx = i
				break
			}
		}
		sig := fn.Signature()
		if idx >= len(sum.ParamEscapes) {
			if sig.Variadic() && len(sum.ParamEscapes) > 0 {
				idx = len(sum.ParamEscapes) - 1
			} else {
				return EscNone, false
			}
		}
		if idx < 0 {
			return EscNone, false
		}
		switch sum.ParamEscapes[idx] {
		case EscHeap:
			return EscHeap, false
		case EscResult:
			return EscNone, true
		}
		return EscNone, false
	}
	if stdlibNonEscaping(fn) {
		return EscNone, false
	}
	return EscHeap, false
}

// stdlibNonEscaping lists the standard-library packages whose functions
// are known not to retain their arguments past the call — the ones the
// hot paths actually use. Everything else defaults to escaping, which
// is the conservative direction for a lint.
func stdlibNonEscaping(fn *types.Func) bool {
	switch pkgPathOf(fn) {
	case "slices", "sort", "maps", "cmp", "math", "math/bits",
		"time", "sync", "sync/atomic", "strconv", "unicode/utf8", "encoding/binary":
		return true
	}
	return false
}

// typeHasPointers reports whether values of t can carry references —
// the test for whether reading an element/field can let the container
// escape through the read value.
func typeHasPointers(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.String || u.Kind() == types.UnsafePointer
	case *types.Array:
		return typeHasPointers(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeHasPointers(u.Field(i).Type()) {
				return true
			}
		}
		return false
	}
	return true
}

// --- direct-site collection ---

// collectAllocSites gathers the reportable direct allocation sites of
// s: live, off the error paths, and past the amortization exemptions.
func collectAllocSites(s *FuncSummary, m *Module, parents map[ast.Node]ast.Node, esc map[types.Object]EscClass, cold []posRange) []AllocSite {
	var sites []AllocSite
	add := func(pos token.Pos, kind AllocKind, what string, cls EscClass) {
		sites = append(sites, AllocSite{Pos: pos, Kind: kind, What: what, Esc: cls})
	}
	ast.Inspect(s.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if ne, ok := n.(ast.Expr); ok {
			if inCold(cold, ne.Pos()) {
				return false
			}
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			collectCallSites(s, m, parents, esc, n, add)
		case *ast.CompositeLit:
			collectCompositeSites(s, m, parents, esc, n, add)
		case *ast.FuncLit:
			if cls := escConsumer(s, m, parents, esc, n); cls > EscNone {
				add(n.Pos(), AllocClosure, "func literal", cls)
			}
		}
		return true
	})
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].Pos != sites[j].Pos {
			return sites[i].Pos < sites[j].Pos
		}
		return sites[i].What < sites[j].What
	})
	return sites
}

// collectCallSites records the allocation behaviour of one call
// expression: make/new builtins, append growth, copying conversions,
// and interface boxing of arguments.
func collectCallSites(s *FuncSummary, m *Module, parents map[ast.Node]ast.Node, esc map[types.Object]EscClass, call *ast.CallExpr, add func(token.Pos, AllocKind, string, EscClass)) {
	info := s.Pkg.Info

	// Builtins: make, new, append.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				cls := escConsumer(s, m, parents, esc, call)
				if cls == EscNone && constSizes(info, call.Args[1:]) {
					return // stack-allocated scratch
				}
				add(call.Pos(), AllocMake, renderExpr(call), cls)
			case "new":
				if cls := escConsumer(s, m, parents, esc, call); cls > EscNone {
					add(call.Pos(), AllocNew, renderExpr(call), cls)
				}
			case "append":
				collectAppendSite(s, m, parents, esc, call, add)
			}
			return
		}
	}

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, info.Types[call.Args[0]].Type
		if src == nil {
			return
		}
		if copyingConversion(dst, src) {
			add(call.Pos(), AllocConvert, renderExpr(call), escConsumer(s, m, parents, esc, call))
		} else if boxes(info, dst, call.Args[0]) {
			add(call.Pos(), AllocBox, renderExpr(call.Args[0]), EscHeap)
		}
		return
	}

	// Interface boxing of arguments at ordinary call sites.
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			break // xs... forwards a slice, no boxing
		}
		pt := paramTypeAt(sig, i)
		if pt == nil {
			continue
		}
		if boxes(info, pt, arg) {
			add(arg.Pos(), AllocBox, renderExpr(arg), EscHeap)
		}
	}
}

// collectAppendSite records an append's growth unless it matches one of
// the amortized-reuse idioms: self-append (x = append(x, …), including
// re-sliced x = append(x[:0], …)) or append to a caller-supplied
// parameter buffer (the AppendTo(dst) contract).
func collectAppendSite(s *FuncSummary, m *Module, parents map[ast.Node]ast.Node, esc map[types.Object]EscClass, call *ast.CallExpr, add func(token.Pos, AllocKind, string, EscClass)) {
	if len(call.Args) == 0 {
		return
	}
	// Elements appended into an interface-typed slice box regardless of
	// whether the growth itself is exempt.
	boxedAppendElems(s, call, add)

	base := appendBase(call.Args[0])
	// Caller-owned buffer: first argument rooted at a parameter (the
	// AppendTo(dst) contract — growth is on the caller's account).
	if id, ok := base.(*ast.Ident); ok {
		obj := s.Pkg.Info.Uses[id]
		if v, ok := obj.(*types.Var); ok && isParamOf(v, s) {
			return
		}
	}
	// Self-append: the result lands back in the slice it grew.
	if as, ok := parents[call].(*ast.AssignStmt); ok {
		for i, r := range as.Rhs {
			if r == call && i < len(as.Lhs) && exprString(as.Lhs[i]) == exprString(base) {
				return
			}
		}
	}
	add(call.Pos(), AllocAppend, renderExpr(call), escConsumer(s, m, parents, esc, call))
}

// boxedAppendElems records boxing of elements appended into an
// interface-typed slice even when the growth itself is exempt.
func boxedAppendElems(s *FuncSummary, call *ast.CallExpr, add func(token.Pos, AllocKind, string, EscClass)) {
	tv, ok := s.Pkg.Info.Types[call.Args[0]]
	if !ok || tv.Type == nil || call.Ellipsis.IsValid() {
		return
	}
	if sl, ok := tv.Type.Underlying().(*types.Slice); ok {
		for _, arg := range call.Args[1:] {
			if boxes(s.Pkg.Info, sl.Elem(), arg) {
				add(arg.Pos(), AllocBox, renderExpr(arg), EscHeap)
			}
		}
	}
}

// collectCompositeSites records a composite literal that allocates — a
// slice or map literal, or an addressed &T{} — plus interface boxing of
// its elements.
func collectCompositeSites(s *FuncSummary, m *Module, parents map[ast.Node]ast.Node, esc map[types.Object]EscClass, cl *ast.CompositeLit, add func(token.Pos, AllocKind, string, EscClass)) {
	info := s.Pkg.Info
	// A literal nested in an enclosing literal is part of the outer
	// allocation, not its own.
	p := parents[cl]
	if kv, ok := p.(*ast.KeyValueExpr); ok {
		p = parents[kv]
	}
	if _, ok := p.(*ast.CompositeLit); ok {
		return
	}
	tv, ok := info.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	addressed := false
	if u, ok := parents[cl].(*ast.UnaryExpr); ok && u.Op == token.AND {
		addressed = true
	}
	what := renderExpr(cl)
	if addressed {
		what = "&" + what
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Slice:
		if cls := escConsumer(s, m, parents, esc, cl); cls > EscNone {
			add(cl.Pos(), AllocComposite, what, cls)
		}
		for _, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if boxes(info, u.Elem(), elt) {
				add(elt.Pos(), AllocBox, renderExpr(elt), EscHeap)
			}
		}
	case *types.Map:
		if cls := escConsumer(s, m, parents, esc, cl); cls > EscNone {
			add(cl.Pos(), AllocComposite, what, cls)
		}
		for _, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if boxes(info, u.Elem(), kv.Value) {
					add(kv.Value.Pos(), AllocBox, renderExpr(kv.Value), EscHeap)
				}
			}
		}
	default:
		if addressed {
			if cls := escConsumer(s, m, parents, esc, cl); cls > EscNone {
				add(cl.Pos(), AllocComposite, what, cls)
			}
		}
	}
}

// boxes reports whether assigning arg to a target of type dst boxes a
// concrete value into an interface with a heap copy: the target is an
// interface, the value is concrete, not pointer-shaped (pointers,
// channels, maps and funcs fit the interface word as-is), not nil, and
// not a compile-time constant (small constants hit the runtime's
// static boxes).
func boxes(info *types.Info, dst types.Type, arg ast.Expr) bool {
	if dst == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	if isNilIdent(arg) {
		return false
	}
	t := tv.Type
	if _, ok := t.Underlying().(*types.Interface); ok {
		return false // interface→interface: no copy
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: stored in the interface word
	case *types.Basic:
		if t.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// copyingConversion reports a string↔[]byte/[]rune conversion — the
// ones that copy their operand.
func copyingConversion(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStr(src))
}

// constSizes reports whether every size argument is a compile-time
// constant (a make with constant sizes and no escape stack-allocates).
func constSizes(info *types.Info, args []ast.Expr) bool {
	for _, a := range args {
		if tv, ok := info.Types[a]; !ok || tv.Value == nil {
			return false
		}
	}
	return true
}

// appendBase strips the re-slicing from an append's first argument:
// append(x[:0], …) and append(x[:n], …) grow x.
func appendBase(e ast.Expr) ast.Expr {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		default:
			return e
		}
	}
}

// isParamOf reports whether v is a parameter (or the receiver) of s.
func isParamOf(v *types.Var, s *FuncSummary) bool {
	sig := s.Fn.Signature()
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return true
		}
	}
	return sig.Recv() == v
}

// paramTypeAt returns the type of parameter i of sig, unrolling the
// variadic tail.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if i < n-1 || !sig.Variadic() {
		if i >= n {
			return nil
		}
		return sig.Params().At(i).Type()
	}
	last := sig.Params().At(n - 1).Type()
	if sl, ok := last.Underlying().(*types.Slice); ok {
		return sl.Elem()
	}
	return last
}

// renderExpr renders an expression for a report, capped.
func renderExpr(e ast.Expr) string {
	s := types.ExprString(e)
	if len(s) > 48 {
		s = s[:45] + "..."
	}
	return s
}

// --- transitive folding ---

// collectTransAllocs folds the allocation summaries of s's concrete
// module callees into transitive entries with via-chains. Interface
// calls are not expanded: CHA-lite resolution is far too noisy for
// allocation accounting (every Fetch would inherit every cursor's
// allocations).
func collectTransAllocs(s *FuncSummary, m *Module, cold []posRange) map[string]TransAlloc {
	info := s.Pkg.Info
	trans := make(map[string]TransAlloc)
	ast.Inspect(s.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if inCold(cold, call.Pos()) {
			return false
		}
		fn := calleeFunc(info, call)
		sum := m.SummaryOf(fn)
		if sum == nil || sum == s {
			return true
		}
		name := declNameOf(sum.Decl)
		for _, site := range sum.AllocSites {
			where := shortPos(sum.Pkg, site.Pos)
			foldTrans(trans, where+" "+site.What, TransAlloc{Kind: site.Kind, What: site.What, Where: where, Via: name})
		}
		for _, ta := range sum.TransAllocs {
			foldTrans(trans, ta.Where+" "+ta.What, TransAlloc{Kind: ta.Kind, What: ta.What, Where: ta.Where, Via: name + " → " + ta.Via})
		}
		return true
	})
	if len(trans) > transAllocCap {
		keys := sortedKeys(trans)
		for _, k := range keys[transAllocCap:] {
			delete(trans, k)
		}
	}
	return trans
}

// foldTrans inserts ta under key, keeping the shortest via-chain when
// several paths reach the same site (ties break lexicographically, so
// the fixpoint is deterministic and terminates).
func foldTrans(trans map[string]TransAlloc, key string, ta TransAlloc) {
	old, ok := trans[key]
	if !ok {
		trans[key] = ta
		return
	}
	if len(ta.Via) < len(old.Via) || (len(ta.Via) == len(old.Via) && ta.Via < old.Via) {
		trans[key] = ta
	}
}

// declNameOf renders a FuncDecl name the way reports and the -cfg-debug
// flag spell it: "Name" or "Type.Method".
func declNameOf(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// --- cold regions ---

// posRange is a half-open source region [start, end].
type posRange struct{ start, end token.Pos }

func inCold(spans []posRange, pos token.Pos) bool {
	for _, sp := range spans {
		if pos >= sp.start && pos <= sp.end {
			return true
		}
	}
	return false
}

// coldFor returns (cached) the source regions of s that the hot-path
// accounting skips: CFG-dead blocks, and the bodies of if-statements
// whose condition tests an error — the error paths of a fetch loop run
// once per failure, not per row.
func (m *Module) coldFor(s *FuncSummary) []posRange {
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	if m.coldC == nil {
		m.coldC = make(map[*ast.FuncDecl][]posRange)
	}
	if spans, ok := m.coldC[s.Decl]; ok {
		return spans
	}
	var spans []posRange
	g := m.graphFor(s.Decl.Body)
	for _, b := range g.Blocks {
		if b.Live {
			continue
		}
		for _, n := range b.Nodes {
			spans = append(spans, posRange{n.Pos(), n.End()})
		}
	}
	ast.Inspect(s.Decl.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Cond == nil {
			return true
		}
		if condTouchesError(s.Pkg.Info, ifs.Cond) || endsInErrorExit(s.Pkg.Info, ifs.Body) {
			spans = append(spans, posRange{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	// A return that constructs a fresh error (fmt.Errorf, errors.New,
	// wrappers) is a failure exit wherever it sits — switch defaults and
	// terminal falls-through included.
	ast.Inspect(s.Decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		last := ret.Results[len(ret.Results)-1]
		if _, isCall := ast.Unparen(last).(*ast.CallExpr); !isCall {
			return true
		}
		tv, ok := s.Pkg.Info.Types[last]
		if ok && tv.Type != nil && types.Identical(tv.Type, types.Universe.Lookup("error").Type()) {
			spans = append(spans, posRange{ret.Pos(), ret.End()})
		}
		return true
	})
	m.coldC[s.Decl] = spans
	return spans
}

// endsInErrorExit reports whether block b is a failure exit: its last
// statement returns a non-nil error, or panics. Bounds checks and
// corruption guards end this way, and their boxing of format arguments
// runs once per failure, not per row.
func endsInErrorExit(info *types.Info, b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		if len(last.Results) == 0 {
			return false
		}
		e := last.Results[len(last.Results)-1]
		if isNilIdent(e) {
			return false
		}
		tv, ok := info.Types[e]
		return ok && tv.Type != nil && types.Identical(tv.Type, types.Universe.Lookup("error").Type())
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := info.Uses[id].(*types.Builtin)
		return ok && b.Name() == "panic"
	}
	return false
}

// condTouchesError reports whether cond has an operand of type error.
func condTouchesError(info *types.Info, cond ast.Expr) bool {
	errType := types.Universe.Lookup("error").Type()
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok || found {
			return !found
		}
		if tv, ok := info.Types[e]; ok && tv.Type != nil && types.Identical(tv.Type, errType) {
			found = true
			return false
		}
		return true
	})
	return found
}

// parentsFor returns (cached) the child→parent map of fd's body.
func (m *Module) parentsFor(fd *ast.FuncDecl) map[ast.Node]ast.Node {
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	if m.parentsC == nil {
		m.parentsC = make(map[*ast.FuncDecl]map[ast.Node]ast.Node)
	}
	if p, ok := m.parentsC[fd]; ok {
		return p
	}
	p := parentMap(fd.Body)
	m.parentsC[fd] = p
	return p
}
