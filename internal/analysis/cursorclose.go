package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CursorClose enforces the paper's start–fetch–close discipline (§3) on
// the consumer side: a cursor obtained from a call must be Closed on
// every path out of the function, or handed off (returned, stored,
// passed to another function) so that responsibility for the close
// transfers with it.
//
// A "cursor" is any value whose method set satisfies the storage.Cursor
// shape: a Close() error method plus a Next or Fetch method — this
// covers storage.Cursor implementations, the wire client's remote
// Cursor, and spatialtf.JoinCursor alike, without naming any of them.
//
// Two findings:
//
//   - a cursor-typed local initialized from a call that is never Closed
//     and never escapes;
//   - a cursor Closed only by a non-deferred call, with a return
//     statement between the open and the close that is not the open's
//     own error check — the early return leaks the cursor.
var CursorClose = &Analyzer{
	Name: "cursorclose",
	Doc:  "an opened cursor must be Closed on every path, including error returns",
	Run:  runCursorClose,
}

// isCursorType reports whether t (or *t) has Close() error plus
// Next/Fetch in its method set.
func isCursorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	ms := types.NewMethodSet(types.NewPointer(t))
	if _, ok := t.Underlying().(*types.Interface); ok {
		ms = types.NewMethodSet(t)
	}
	var hasClose, hasAdvance bool
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok {
			continue
		}
		switch fn.Name() {
		case "Close":
			sig := fn.Signature()
			if sig.Params().Len() == 0 && sig.Results().Len() == 1 && lastResultIsError(fn) {
				hasClose = true
			}
		case "Next", "Fetch":
			hasAdvance = true
		}
	}
	return hasClose && hasAdvance
}

// opened is one tracked cursor variable.
type opened struct {
	obj     types.Object
	name    string
	pos     token.Pos // the opening statement
	errObj  types.Object
	closed  bool // any Close (or closing method) reached it
	defClos bool // closed via defer
	escaped bool
	close1  token.Pos // first non-deferred Close
}

// closingMethods are selector calls on the cursor that discharge the
// close obligation themselves.
var closingMethods = map[string]bool{
	"Close":   true,
	"Collect": true, // JoinCursor.Collect closes the cursor
}

func runCursorClose(pkg *Pkg) []Diag {
	var diags []Diag
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body == nil {
				return true
			}
			diags = append(diags, cursorCloseFunc(pkg, body)...)
			return true
		})
	}
	return diags
}

func cursorCloseFunc(pkg *Pkg, body *ast.BlockStmt) []Diag {
	info := pkg.Info
	parents := parentMap(body)

	// Pass 1: find cursor-typed locals defined from calls in this body
	// (not in nested function literals, which are analyzed separately).
	var tracked []*opened
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		if enclosingFuncBody(parents, as, body) != body {
			return true
		}
		hasCall := false
		for _, rhs := range as.Rhs {
			if _, ok := rhs.(*ast.CallExpr); ok {
				hasCall = true
			}
		}
		if !hasCall {
			return true
		}
		var errObj types.Object
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				// `cur, err := ...` redeclares nothing when err already
				// exists; the guard variable is then a use, not a def.
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if named, ok := obj.Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				errObj = obj
			}
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil || !isCursorType(obj.Type()) {
				continue
			}
			tracked = append(tracked, &opened{obj: obj, name: id.Name, pos: as.Pos(), errObj: errObj})
		}
		return true
	})
	if len(tracked) == 0 {
		return nil
	}
	byObj := make(map[types.Object]*opened, len(tracked))
	for _, o := range tracked {
		byObj[o.obj] = o
	}

	// Pass 2: classify every use of each tracked variable.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		o := byObj[info.Uses[id]]
		if o == nil {
			return true
		}
		switch p := parents[id].(type) {
		case *ast.SelectorExpr:
			if p.X != id {
				return true
			}
			call, isCall := parents[p].(*ast.CallExpr)
			if isCall && call.Fun == p {
				if closingMethods[p.Sel.Name] {
					o.closed = true
					if underDefer(parents, call, body) {
						o.defClos = true
					} else if o.close1 == token.NoPos {
						o.close1 = call.Pos()
					}
				}
				// Next/Fetch/Columns/...: plain use.
				return true
			}
			// Method value (cur.Close passed around): hand-off.
			o.escaped = true
		case *ast.AssignStmt:
			for _, rhs := range p.Rhs {
				if rhs == ast.Expr(id) {
					o.escaped = true // stored into something else
				}
			}
		default:
			if id.Pos() > o.pos {
				// Any other use — call argument, return value, composite
				// literal, channel send, &cur — transfers ownership as far
				// as this heuristic linter is concerned.
				o.escaped = true
			}
		}
		return true
	})

	var diags []Diag
	for _, o := range tracked {
		if o.escaped {
			continue
		}
		if !o.closed {
			diags = append(diags, diag(pkg, "cursorclose", o.pos,
				"cursor %q is opened here but never Closed and never escapes; the cursor contract requires Close on every path", o.name))
			continue
		}
		if o.defClos || o.close1 == token.NoPos {
			continue
		}
		// Closed only by plain calls: look for an early return between
		// the open and the first close that is not the open's own error
		// check.
		if ret := earlyReturn(pkg, body, parents, o); ret != token.NoPos {
			diags = append(diags, diag(pkg, "cursorclose", ret,
				"return leaks cursor %q (opened at line %d, Closed only at line %d): Close it on this path or use defer",
				o.name, pkg.Fset.Position(o.pos).Line, pkg.Fset.Position(o.close1).Line))
		}
	}
	return diags
}

// enclosingFuncBody returns the nearest enclosing function body of n.
func enclosingFuncBody(parents map[ast.Node]ast.Node, n ast.Node, root *ast.BlockStmt) *ast.BlockStmt {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p := p.(type) {
		case *ast.FuncLit:
			return p.Body
		case *ast.FuncDecl:
			return p.Body
		}
		if p == ast.Node(root) {
			return root
		}
	}
	return root
}

// underDefer reports whether n sits inside a DeferStmt (directly or via
// a deferred closure) within body.
func underDefer(parents map[ast.Node]ast.Node, n ast.Node, body *ast.BlockStmt) bool {
	for p := parents[n]; p != nil && p != ast.Node(body); p = parents[p] {
		if _, ok := p.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// earlyReturn finds a return statement positioned between o's open and
// first close that does not consult the open's own error, i.e. a path
// on which the cursor is live but not yet closed.
func earlyReturn(pkg *Pkg, body *ast.BlockStmt, parents map[ast.Node]ast.Node, o *opened) token.Pos {
	found := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if ret.Pos() <= o.pos || ret.Pos() >= o.close1 || found != token.NoPos {
			return true
		}
		if enclosingFuncBody(parents, ret, body) != body {
			return true
		}
		// The open's own error check — `if err != nil { return ... }`
		// immediately guarding the open — is the one return on which the
		// cursor is not live.
		if o.errObj != nil && guardsError(pkg, parents, ret, o.errObj) {
			return true
		}
		found = ret.Pos()
		return true
	})
	return found
}

// guardsError reports whether ret sits in an if whose condition uses
// errObj.
func guardsError(pkg *Pkg, parents map[ast.Node]ast.Node, ret *ast.ReturnStmt, errObj types.Object) bool {
	for p := parents[ret]; p != nil; p = parents[p] {
		ifs, ok := p.(*ast.IfStmt)
		if !ok {
			continue
		}
		uses := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == errObj {
				uses = true
			}
			return true
		})
		if uses {
			return true
		}
	}
	return false
}
