package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"spatialtf/internal/analysis/cfg"
)

// CursorClose enforces the paper's start–fetch–close discipline (§3) on
// the consumer side: a cursor obtained from a call must be Closed on
// every path out of the function, or handed off (returned, stored,
// passed to another function) so that responsibility for the close
// transfers with it.
//
// A "cursor" is any value whose method set satisfies the storage.Cursor
// shape: a Close() error method plus a Next or Fetch method — this
// covers storage.Cursor implementations, the wire client's remote
// Cursor, and spatialtf.JoinCursor alike, without naming any of them.
//
// The rule is a forward dataflow over the function's CFG. The fact is
// the set of open cursors on the current path; Close (or Collect, or a
// deferred close), and every form of hand-off, discharge the
// obligation. Branch-condition refinement excuses the open's own error
// path: on an edge where `err != nil` holds for the error returned by
// the open itself, the cursor was never live, so the obligation is
// dropped — but only while the cursor is unused, so a later `err !=
// nil` from a Next call does not wrongly excuse a live cursor.
//
// Two findings:
//
//   - a cursor-typed local initialized from a call that is never Closed
//     and never escapes anywhere in the function;
//   - a return path on which an obligation is still live — the early
//     return leaks the cursor.
var CursorClose = &Analyzer{
	Name: "cursorclose",
	Doc:  "an opened cursor must be Closed on every path, including error returns",
	Run:  runCursorClose,
}

// closeRule parameterizes the acquire/release dataflow engine below, so
// the same analysis serves cursors (Close) and buffer-pool frames
// (Unpin). isTracked recognizes the resource type, closing names the
// methods that discharge the obligation, and the messages format the
// two findings (neverMsg takes the local's name; leakMsg the name and
// the acquire line).
type closeRule struct {
	name      string
	isTracked func(types.Type) bool
	closing   map[string]bool
	neverMsg  string
	leakMsg   string
}

var cursorCloseRule = &closeRule{
	name:      "cursorclose",
	isTracked: isCursorType,
	closing: map[string]bool{
		"Close":   true,
		"Collect": true, // JoinCursor.Collect closes the cursor
	},
	neverMsg: "cursor %q is opened here but never Closed and never escapes; the cursor contract requires Close on every path",
	leakMsg:  "return leaks cursor %q (opened at line %d): Close it on this path or use defer",
}

// isCursorType reports whether t (or *t) has Close() error plus
// Next/Fetch in its method set.
func isCursorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	ms := types.NewMethodSet(types.NewPointer(t))
	if _, ok := t.Underlying().(*types.Interface); ok {
		ms = types.NewMethodSet(t)
	}
	var hasClose, hasAdvance bool
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok {
			continue
		}
		switch fn.Name() {
		case "Close":
			sig := fn.Signature()
			if sig.Params().Len() == 0 && sig.Results().Len() == 1 && lastResultIsError(fn) {
				hasClose = true
			}
		case "Next", "Fetch":
			hasAdvance = true
		}
	}
	return hasClose && hasAdvance
}

// openInfo is one tracked cursor-typed local: where it was opened and
// which error variable (if any) the same assignment produced.
type openInfo struct {
	obj    types.Object
	name   string
	pos    token.Pos
	errObj types.Object
	assign *ast.AssignStmt
}

// cursorFact is the per-cursor dataflow state on one path.
type cursorFact struct {
	openPos token.Pos
	used    bool // a non-closing method has been called
}

type closeFact map[types.Object]cursorFact

func runCursorClose(pass *Pass) []Diag {
	return runCloseDiscipline(pass, cursorCloseRule)
}

// runCloseDiscipline applies one closeRule to every function body of
// the package.
func runCloseDiscipline(pass *Pass, rule *closeRule) []Diag {
	pkg := pass.Pkg
	var diags []Diag
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body == nil {
				return true
			}
			diags = append(diags, closeDisciplineFunc(pkg, body, rule)...)
			return true
		})
	}
	return diags
}

func closeDisciplineFunc(pkg *Pkg, body *ast.BlockStmt, rule *closeRule) []Diag {
	info := pkg.Info
	parents := parentMap(body)

	// Pass 1: find cursor-typed locals defined from calls in this body
	// (not in nested function literals, which are analyzed separately).
	var tracked []*openInfo
	openAt := make(map[*ast.AssignStmt][]*openInfo)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		if enclosingFuncBody(parents, as, body) != body {
			return true
		}
		hasCall := false
		for _, rhs := range as.Rhs {
			if _, ok := rhs.(*ast.CallExpr); ok {
				hasCall = true
			}
		}
		if !hasCall {
			return true
		}
		var errObj types.Object
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				// `cur, err := ...` redeclares nothing when err already
				// exists; the guard variable is then a use, not a def.
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if named, ok := obj.Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				errObj = obj
			}
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil || !rule.isTracked(obj.Type()) {
				continue
			}
			o := &openInfo{obj: obj, name: id.Name, pos: as.Pos(), errObj: errObj, assign: as}
			tracked = append(tracked, o)
			openAt[as] = append(openAt[as], o)
		}
		return true
	})
	if len(tracked) == 0 {
		return nil
	}
	byObj := make(map[types.Object]*openInfo, len(tracked))
	for _, o := range tracked {
		byObj[o.obj] = o
	}

	// A cursor with no discharging use anywhere in the body — no Close,
	// no Collect, no hand-off — gets the blunt finding at its open; the
	// path analysis below handles the rest.
	discharged := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		o := byObj[info.Uses[id]]
		if o == nil {
			return true
		}
		if kind, _ := classifyUse(info, parents, id, rule.closing); kind != useAdvance {
			discharged[o.obj] = true
		}
		return true
	})

	var diags []Diag
	for _, o := range tracked {
		if !discharged[o.obj] {
			diags = append(diags, diag(pkg, rule.name, o.pos, rule.neverMsg, o.name))
		}
	}

	// Pass 2: CFG dataflow over the cursors that do have some discharge,
	// looking for return paths that miss it.
	g := cfg.Build(body)
	fl := cfg.Flow[closeFact]{
		Entry: closeFact{},
		Join: func(a, b closeFact) closeFact {
			for obj, cf := range b {
				if prev, ok := a[obj]; ok {
					if cf.openPos < prev.openPos {
						prev.openPos = cf.openPos
					}
					prev.used = prev.used || cf.used
					a[obj] = prev
				} else {
					a[obj] = cf
				}
			}
			return a
		},
		Equal: func(a, b closeFact) bool {
			if len(a) != len(b) {
				return false
			}
			for obj, cf := range a {
				if other, ok := b[obj]; !ok || other != cf {
					return false
				}
			}
			return true
		},
		Clone: func(f closeFact) closeFact {
			c := make(closeFact, len(f))
			for obj, cf := range f {
				c[obj] = cf
			}
			return c
		},
		Transfer: func(n cfg.Node, f closeFact) closeFact {
			if as, ok := n.N.(*ast.AssignStmt); ok {
				for _, o := range openAt[as] {
					if discharged[o.obj] {
						f[o.obj] = cursorFact{openPos: o.pos}
					}
				}
			}
			ast.Inspect(n.N, func(x ast.Node) bool {
				id, ok := x.(*ast.Ident)
				if !ok {
					return true
				}
				o := byObj[info.Uses[id]]
				if o == nil {
					return true
				}
				if _, live := f[o.obj]; !live {
					return true
				}
				switch kind, _ := classifyUse(info, parents, id, rule.closing); kind {
				case useAdvance:
					cf := f[o.obj]
					cf.used = true
					f[o.obj] = cf
				default:
					delete(f, o.obj)
				}
				return true
			})
			return f
		},
		Edge: func(e cfg.Edge, f closeFact) closeFact {
			// The open's own error path: `err != nil` holding means the
			// open failed and the cursor was never live. Only before any
			// use — afterwards err is some later call's error.
			errObj := errNonNilOn(info, e)
			if errObj == nil {
				return f
			}
			for obj, cf := range f {
				if o := byObj[obj]; o != nil && o.errObj == errObj && !cf.used {
					delete(f, obj)
				}
			}
			return f
		},
	}
	in := cfg.Solve(g, fl)
	for _, ef := range cfg.Exits(g, fl, in) {
		if ef.Edge.Kind != cfg.EdgeReturn {
			continue
		}
		retPos := body.End()
		if len(ef.Block.Nodes) > 0 {
			if ret, ok := ef.Block.Nodes[len(ef.Block.Nodes)-1].(*ast.ReturnStmt); ok {
				retPos = ret.Pos()
			}
		}
		for obj, cf := range ef.Fact {
			o := byObj[obj]
			if o == nil {
				continue
			}
			diags = append(diags, diag(pkg, rule.name, retPos,
				rule.leakMsg, o.name, pkg.Fset.Position(cf.openPos).Line))
		}
	}
	return diags
}

// useKind classifies one identifier occurrence of a tracked cursor.
type useKind int

const (
	// useAdvance is a non-closing method call (Next, Fetch, Columns...):
	// the cursor stays live and is marked used.
	useAdvance useKind = iota
	// useClose is a Close/Collect call (possibly deferred).
	useClose
	// useEscape hands the cursor off: stored, passed, returned, captured
	// by a closure, or its Close taken as a method value.
	useEscape
)

// classifyUse decides what an identifier occurrence does to the
// resource's obligation; closing names the discharging methods.
func classifyUse(info *types.Info, parents map[ast.Node]ast.Node, id *ast.Ident, closing map[string]bool) (useKind, *ast.CallExpr) {
	// A reference from inside a nested function literal is a capture:
	// the closure owns (or shares) the resource now, whatever it does
	// with it.
	for p := parents[id]; p != nil; p = parents[p] {
		if _, ok := p.(*ast.FuncLit); ok {
			return useEscape, nil
		}
	}
	switch p := parents[id].(type) {
	case *ast.SelectorExpr:
		if p.X != ast.Expr(id) {
			return useEscape, nil
		}
		if call, ok := parents[p].(*ast.CallExpr); ok && call.Fun == ast.Expr(p) {
			if closing[p.Sel.Name] {
				return useClose, call
			}
			return useAdvance, call
		}
		// Method value (cur.Close passed around): hand-off.
		return useEscape, nil
	default:
		return useEscape, nil
	}
}

// errNonNilOn returns the error object that is known non-nil along e
// (the true leg of `err != nil` or the false leg of `err == nil`), or
// nil.
func errNonNilOn(info *types.Info, e cfg.Edge) types.Object {
	bin, ok := e.Cond.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	var nonNilBranch bool
	switch bin.Op {
	case token.NEQ:
		nonNilBranch = true
	case token.EQL:
		nonNilBranch = false
	default:
		return nil
	}
	if e.Branch != nonNilBranch {
		return nil
	}
	x, y := bin.X, bin.Y
	if isNilIdent(y) {
	} else if isNilIdent(x) {
		x = y
	} else {
		return nil
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		return nil
	}
	if named, ok := obj.Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return obj
	}
	return nil
}

// enclosingFuncBody returns the nearest enclosing function body of n.
func enclosingFuncBody(parents map[ast.Node]ast.Node, n ast.Node, root *ast.BlockStmt) *ast.BlockStmt {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p := p.(type) {
		case *ast.FuncLit:
			return p.Body
		case *ast.FuncDecl:
			return p.Body
		}
		if p == ast.Node(root) {
			return root
		}
	}
	return root
}
