package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WireErr flags discarded error results from the calls that move bytes
// onto the wire or into a row image: functions of internal/wire,
// bufio.Writer writes and flushes, and the storage encoders. A failed
// frame write must surface as a closed connection or cursor — silently
// dropping the error truncates the stream and the client cannot tell a
// short result from a complete one.
//
// Flagged contexts: a call used as a bare statement, a deferred or
// spawned call, and an assignment whose targets are all blank.
// Methods named Close are exempt (deferred best-effort closes are
// idiomatic); everything else needs its error checked or an explicit
// //spatiallint:ignore wireerr <reason>.
var WireErr = &Analyzer{
	Name: "wireerr",
	Doc:  "error results of wire write/encode/flush calls must be checked",
	Run:  runWireErr,
}

func runWireErr(pass *Pass) []Diag {
	pkg := pass.Pkg
	var diags []Diag
	report := func(call *ast.CallExpr, how string) {
		fn := wireErrCallee(pkg, call)
		if fn == nil {
			return
		}
		diags = append(diags, diag(pkg, "wireerr", call.Pos(),
			"%s error result of %s.%s is discarded: a failed write must close the stream, not truncate it",
			how, pkgName(fn), fn.Name()))
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(call, "the")
				}
			case *ast.DeferStmt:
				report(n.Call, "the deferred")
			case *ast.GoStmt:
				report(n.Call, "the spawned")
			case *ast.AssignStmt:
				allBlank := true
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						allBlank = false
					}
				}
				if allBlank && len(n.Rhs) == 1 {
					if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
						report(call, "the blanked")
					}
				}
			}
			return true
		})
	}
	return diags
}

// wireErrCallee resolves call to a *types.Func the rule covers, or nil.
func wireErrCallee(pkg *Pkg, call *ast.CallExpr) *types.Func {
	var fn *types.Func
	var recv ast.Expr
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		recv, fn = selectorObj(pkg.Info, fun)
	case *ast.Ident:
		fn, _ = pkg.Info.Uses[fun].(*types.Func)
	}
	if fn == nil || !lastResultIsError(fn) || fn.Name() == "Close" {
		return nil
	}
	switch {
	case fromPkg(fn, "internal/wire") || fromPkg(fn, "wire"):
		return fn
	case recv != nil && isBufioWriter(pkg.Info, recv) &&
		(fn.Name() == "Flush" || strings.HasPrefix(fn.Name(), "Write")):
		return fn
	case (fromPkg(fn, "internal/storage") || fromPkg(fn, "storage")) &&
		strings.HasPrefix(fn.Name(), "Encode"):
		return fn
	}
	return nil
}

// pkgName renders the defining package's short name for a message.
func pkgName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return "builtin"
	}
	return fn.Pkg().Name()
}
