package analysis

import (
	"go/types"
	"strings"
)

// LatchPair enforces the buffer pool's pin discipline: a *pager.Frame
// obtained from a call (Space.Pin, Space.Allocate, or any helper that
// returns one) must be Unpinned on every path out of the function, or
// handed off — returned, stored, passed along — so responsibility for
// the latch transfers with it. A pinned frame that leaks holds a pool
// slot forever; enough leaks and every Pin in the process fails with
// ErrPoolExhausted.
//
// The analysis is the same acquire/release dataflow as cursorclose
// (see closeRule): the fact is the set of pinned frames on the current
// path, Unpin and every form of escape discharge, and the pin's own
// error edge (`err != nil` before any use of the frame) excuses the
// failure path.
var LatchPair = &Analyzer{
	Name: "latchpair",
	Doc:  "a pinned buffer-pool frame must be Unpinned on every path, including error returns",
	Run:  runLatchPair,
}

var latchPairRule = &closeRule{
	name:      "latchpair",
	isTracked: isFrameType,
	closing:   map[string]bool{"Unpin": true},
	neverMsg:  "frame %q is pinned here but never Unpinned and never escapes; the pin discipline requires Unpin on every path",
	leakMsg:   "return leaks pinned frame %q (pinned at line %d): Unpin it on this path or use defer",
}

func runLatchPair(pass *Pass) []Diag {
	return runCloseDiscipline(pass, latchPairRule)
}

// isFrameType reports whether t is *pager.Frame.
func isFrameType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Frame" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/pager")
}
