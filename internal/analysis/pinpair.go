package analysis

import (
	"go/ast"
	"go/token"
	"sort"

	"spatialtf/internal/analysis/cfg"
)

// PinPair enforces the R-tree pin contract (DESIGN.md §10): a
// rtree.Tree.Pin() blocks all DML on the index until the matching
// Unpin, so a Pin that can leak on any return path deadlocks writers
// forever. A Pin is considered released when, on every return path
// after it, one of the following holds:
//
//   - a `defer recv.Unpin()` (directly or inside a deferred closure)
//     has been registered on the path;
//   - `recv.Unpin()` has been called on the path;
//   - the path hands the release to the caller: `recv.Unpin` escapes as
//     a method value, or a function literal that calls it escapes (the
//     pinTrees pattern in join.go, which returns the unpin closure for
//     the join cursor's Close).
//
// The rule is a forward dataflow over the function's CFG: the fact is
// the set of receivers pinned on the current path plus the deferred
// releases registered on it, release events remove pins, and any
// receiver still pinned and not deferred on a return edge is a leak.
// Paths that end in panic are exempt — the pin dies with the process,
// and the recover story belongs to the server loop, not the pin
// holder.
var PinPair = &Analyzer{
	Name: "pinpair",
	Doc:  "every rtree.Tree.Pin() must be released via defer/all-paths Unpin or an escaping release func",
	Run:  runPinPair,
}

// treePinMethod resolves sel to rtree.Tree.Pin/Unpin (by method name);
// returns the receiver expression key.
func treePinMethod(pkg *Pkg, sel *ast.SelectorExpr) (recvKey, method string, ok bool) {
	recv, fn := selectorObj(pkg.Info, sel)
	if fn == nil || recv == nil {
		return "", "", false
	}
	if fn.Name() != "Pin" && fn.Name() != "Unpin" {
		return "", "", false
	}
	if !fromPkg(fn, "internal/rtree") && !fromPkg(fn, "rtree") {
		return "", "", false
	}
	sig := fn.Signature()
	if sig.Recv() == nil {
		return "", "", false
	}
	return exprString(recv), fn.Name(), true
}

// pinFact is the dataflow fact: which receivers are pinned on this
// path (keyed to their Pin position) and which have a deferred release
// registered. Deferred releases are tracked separately because a defer
// discharges every pin on the path regardless of registration order —
// a defer registered before the Pin, or once before a loop that
// re-pins, still runs at exit.
type pinFact struct {
	pinned   map[string]token.Pos
	deferred map[string]bool
}

func runPinPair(pass *Pass) []Diag {
	pkg := pass.Pkg
	var diags []Diag
	for _, f := range pkg.Files {
		for _, body := range funcScopes(f) {
			diags = append(diags, pinPairFunc(pkg, body)...)
		}
	}
	return diags
}

func pinPairFunc(pkg *Pkg, body *ast.BlockStmt) []Diag {
	g := cfg.Build(body)
	fl := cfg.Flow[pinFact]{
		Entry: pinFact{pinned: map[string]token.Pos{}, deferred: map[string]bool{}},
		Join: func(a, b pinFact) pinFact {
			// Union, keeping the earliest pin position: pinned on either
			// path means the obligation is live at the join. Deferred
			// releases also union — joining a covered path with an
			// uncovered one must not lose the uncovered path's pin, and
			// it cannot, because pins and defers union independently.
			for k, p := range b.pinned {
				if q, ok := a.pinned[k]; !ok || p < q {
					a.pinned[k] = p
				}
			}
			for k := range b.deferred {
				a.deferred[k] = true
			}
			return a
		},
		Equal: pinFactEqual,
		Clone: func(f pinFact) pinFact {
			c := pinFact{
				pinned:   make(map[string]token.Pos, len(f.pinned)),
				deferred: make(map[string]bool, len(f.deferred)),
			}
			for k, p := range f.pinned {
				c.pinned[k] = p
			}
			for k := range f.deferred {
				c.deferred[k] = true
			}
			return c
		},
		Transfer: func(n cfg.Node, f pinFact) pinFact {
			return pinTransfer(pkg, n.N, f)
		},
	}
	in := cfg.Solve(g, fl)

	// A pin is reported once, at its Pin call, naming the first return
	// path that leaks it.
	type leak struct {
		recvKey string
		retLine int
	}
	leaks := make(map[token.Pos]leak)
	for _, ef := range cfg.Exits(g, fl, in) {
		if ef.Edge.Kind != cfg.EdgeReturn {
			continue
		}
		retLine := pkg.Fset.Position(body.End()).Line
		if len(ef.Block.Nodes) > 0 {
			if ret, ok := ef.Block.Nodes[len(ef.Block.Nodes)-1].(*ast.ReturnStmt); ok {
				retLine = pkg.Fset.Position(ret.Pos()).Line
			}
		}
		for recvKey, pinPos := range ef.Fact.pinned {
			if ef.Fact.deferred[recvKey] {
				continue
			}
			if l, ok := leaks[pinPos]; !ok || retLine < l.retLine {
				leaks[pinPos] = leak{recvKey: recvKey, retLine: retLine}
			}
		}
	}
	poss := make([]token.Pos, 0, len(leaks))
	for p := range leaks {
		poss = append(poss, p)
	}
	sort.Slice(poss, func(i, j int) bool { return poss[i] < poss[j] })
	var diags []Diag
	for _, p := range poss {
		l := leaks[p]
		diags = append(diags, diag(pkg, "pinpair", p,
			"%s.Pin() is not released on the return path at line %d: pair it with a defer %s.Unpin() or release it on every path",
			l.recvKey, l.retLine, l.recvKey))
	}
	return diags
}

// pinTransfer applies one CFG node's pin/release events to f. Pin
// calls inside nested function literals belong to the literal's own
// scope and are skipped; an Unpin occurrence in any form — a direct
// call, a method value, or a function literal whose body calls it (an
// escaping release closure) — releases the receiver on this path, and
// a defer containing one registers a deferred release.
func pinTransfer(pkg *Pkg, node ast.Node, f pinFact) pinFact {
	if d, ok := node.(*ast.DeferStmt); ok {
		for _, recvKey := range unpinKeysIn(pkg, d.Call) {
			f.deferred[recvKey] = true
			delete(f.pinned, recvKey)
		}
		return f
	}
	ast.Inspect(node, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			for _, recvKey := range unpinKeysIn(pkg, x.Body) {
				delete(f.pinned, recvKey)
			}
			return false
		case *ast.SelectorExpr:
			recvKey, method, ok := treePinMethod(pkg, x)
			if !ok {
				return true
			}
			if method == "Unpin" {
				delete(f.pinned, recvKey)
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if recvKey, method, ok := treePinMethod(pkg, sel); ok && method == "Pin" {
					f.pinned[recvKey] = x.Pos()
				}
			}
		}
		return true
	})
	return f
}

// unpinKeysIn collects the receiver keys of every Unpin selector under
// n (including inside nested literals).
func unpinKeysIn(pkg *Pkg, n ast.Node) []string {
	var keys []string
	ast.Inspect(n, func(x ast.Node) bool {
		if sel, ok := x.(*ast.SelectorExpr); ok {
			if recvKey, method, ok := treePinMethod(pkg, sel); ok && method == "Unpin" {
				keys = append(keys, recvKey)
			}
		}
		return true
	})
	return keys
}

func pinFactEqual(a, b pinFact) bool {
	if len(a.pinned) != len(b.pinned) || len(a.deferred) != len(b.deferred) {
		return false
	}
	for k, p := range a.pinned {
		if q, ok := b.pinned[k]; !ok || p != q {
			return false
		}
	}
	for k := range a.deferred {
		if !b.deferred[k] {
			return false
		}
	}
	return true
}
