package analysis

import (
	"go/ast"
	"go/token"
)

// PinPair enforces the R-tree pin contract (DESIGN.md §10): a
// rtree.Tree.Pin() blocks all DML on the index until the matching
// Unpin, so a Pin that can leak on any return path deadlocks writers
// forever. A Pin is considered released when, on every return path
// after it, one of the following holds:
//
//   - a `defer recv.Unpin()` (directly or inside a deferred closure)
//     has been registered;
//   - `recv.Unpin()` has been called on the path;
//   - the path hands the release to the caller: `recv.Unpin` escapes as
//     a method value, or a function literal that calls it escapes (the
//     pinTrees pattern in join.go, which returns the unpin closure for
//     the join cursor's Close).
//
// The check is a linear walk in syntactic order, not a full CFG: it is
// deliberately conservative about branches (a release inside one arm of
// an if does not count for the code after it), which is exactly the
// discipline the hand-written code follows.
var PinPair = &Analyzer{
	Name: "pinpair",
	Doc:  "every rtree.Tree.Pin() must be released via defer/all-paths Unpin or an escaping release func",
	Run:  runPinPair,
}

// isTreePinCall reports whether sel resolves to rtree.Tree.Pin/Unpin
// (by method name); returns the receiver expression key.
func treePinMethod(pkg *Pkg, sel *ast.SelectorExpr) (recvKey, method string, ok bool) {
	recv, fn := selectorObj(pkg.Info, sel)
	if fn == nil || recv == nil {
		return "", "", false
	}
	if fn.Name() != "Pin" && fn.Name() != "Unpin" {
		return "", "", false
	}
	if !fromPkg(fn, "internal/rtree") && !fromPkg(fn, "rtree") {
		return "", "", false
	}
	sig := fn.Signature()
	if sig.Recv() == nil {
		return "", "", false
	}
	return exprString(recv), fn.Name(), true
}

func runPinPair(pkg *Pkg) []Diag {
	var diags []Diag
	reported := make(map[token.Pos]bool)
	for _, f := range pkg.Files {
		for _, body := range funcScopes(f) {
			w := &pinWalker{
				pkg:      pkg,
				body:     body,
				pinned:   make(map[string]token.Pos),
				deferred: make(map[string]bool),
				escaped:  collectEscapedUnpins(pkg, body),
				reported: reported,
			}
			w.walkStmts(body.List)
			w.checkReturnPoint(body.End(), nil)
			diags = append(diags, w.diags...)
		}
	}
	return diags
}

// collectEscapedUnpins finds receivers whose Unpin escapes from body as
// a value: referenced without being called (a method value), or called
// inside a function literal (the literal itself is the escaping release
// func). Each escape is recorded at its position: an escape only
// discharges a Pin acquired before it (a `return t.Unpin` in an early
// branch must not excuse a later, unrelated `t.Pin()`). Deferred calls
// are handled by the walker, not here.
func collectEscapedUnpins(pkg *Pkg, body *ast.BlockStmt) map[string][]token.Pos {
	escaped := make(map[string][]token.Pos)
	parents := parentMap(body)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recvKey, method, ok := treePinMethod(pkg, sel)
		if !ok || method != "Unpin" {
			return true
		}
		// Called directly? Then it is a release event for the walker
		// unless the call sits inside a nested function literal.
		if call, ok := parents[sel].(*ast.CallExpr); ok && call.Fun == sel {
			for p := parents[call]; p != nil && p != body; p = parents[p] {
				if _, isLit := p.(*ast.FuncLit); isLit {
					escaped[recvKey] = append(escaped[recvKey], sel.Pos())
					return true
				}
			}
			return true
		}
		// Method value: recv.Unpin used as a first-class function.
		escaped[recvKey] = append(escaped[recvKey], sel.Pos())
		return true
	})
	return escaped
}

// pinWalker walks one function body in syntactic order tracking which
// receivers are pinned.
type pinWalker struct {
	pkg      *Pkg
	body     *ast.BlockStmt
	pinned   map[string]token.Pos
	deferred map[string]bool
	escaped  map[string][]token.Pos
	reported map[token.Pos]bool
	diags    []Diag
}

func (w *pinWalker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *pinWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.DeferStmt:
		w.handleDefer(s)
	case *ast.ReturnStmt:
		w.handlePinEvents(s) // e.g. return pinAndGet() — none in practice
		w.checkReturnPoint(s.Pos(), s)
	case *ast.BlockStmt:
		w.walkStmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.handlePinEventsExpr(s.Cond)
		w.walkStmt(s.Body)
		if s.Else != nil {
			w.walkStmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkStmt(s.Body)
		if s.Post != nil {
			w.walkStmt(s.Post)
		}
	case *ast.RangeStmt:
		w.walkStmt(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkStmt(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkStmt(s.Body)
	case *ast.SelectStmt:
		w.walkStmt(s.Body)
	case *ast.CaseClause:
		w.walkStmts(s.Body)
	case *ast.CommClause:
		w.walkStmts(s.Body)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	default:
		w.handlePinEvents(s)
	}
}

// handleDefer processes defer recv.Unpin() and deferred closures that
// call Unpin.
func (w *pinWalker) handleDefer(s *ast.DeferStmt) {
	if sel, ok := s.Call.Fun.(*ast.SelectorExpr); ok {
		if recvKey, method, ok := treePinMethod(w.pkg, sel); ok && method == "Unpin" {
			w.deferred[recvKey] = true
			return
		}
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if recvKey, method, ok := treePinMethod(w.pkg, sel); ok && method == "Unpin" {
					w.deferred[recvKey] = true
				}
			}
			return true
		})
	}
}

// handlePinEvents scans one statement (not descending into nested
// function literals) for direct Pin/Unpin calls.
func (w *pinWalker) handlePinEvents(s ast.Stmt) {
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recvKey, method, ok := treePinMethod(w.pkg, sel)
		if !ok {
			return true
		}
		switch method {
		case "Pin":
			w.pinned[recvKey] = call.Pos()
		case "Unpin":
			delete(w.pinned, recvKey)
		}
		return true
	})
}

func (w *pinWalker) handlePinEventsExpr(e ast.Expr) {
	if e == nil {
		return
	}
	w.handlePinEvents(&ast.ExprStmt{X: e})
}

// checkReturnPoint reports every receiver still pinned at a return (or
// at the end of the body) that has no deferred or escaping release and
// is not released by the return expression itself.
func (w *pinWalker) checkReturnPoint(pos token.Pos, ret *ast.ReturnStmt) {
	released := make(map[string]bool)
	limit := pos
	if ret != nil {
		// Escapes inside the return expression itself (a returned
		// closure) sit past ret.Pos(); reach to the statement's end.
		limit = ret.End()
		for _, res := range ret.Results {
			ast.Inspect(res, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok {
					if recvKey, method, ok := treePinMethod(w.pkg, sel); ok && method == "Unpin" {
						released[recvKey] = true
					}
				}
				return true
			})
		}
	}
	for recvKey, pinPos := range w.pinned {
		if w.deferred[recvKey] || released[recvKey] || w.reported[pinPos] {
			continue
		}
		if escapedBetween(w.escaped[recvKey], pinPos, limit) {
			continue
		}
		retLine := w.pkg.Fset.Position(pos).Line
		w.reported[pinPos] = true
		w.diags = append(w.diags, diag(w.pkg, "pinpair", pinPos,
			"%s.Pin() is not released on the return path at line %d: pair it with a defer %s.Unpin() or release it on every path",
			recvKey, retLine, recvKey))
	}
}

// escapedBetween reports whether any escape site lies after the pin and
// no later than the return point it must cover.
func escapedBetween(escapes []token.Pos, pinPos, limit token.Pos) bool {
	for _, e := range escapes {
		if e > pinPos && e <= limit {
			return true
		}
	}
	return false
}
