package analysis

import (
	"go/ast"
	"strings"
)

// GoLeak polices goroutine accounting in the packages that actually
// spawn them: the server's connection machinery and the parallel join
// workers. The paper's table functions are finite cursors — start,
// fetch until exhausted, close — so every goroutine backing one must
// have a join point; a worker with no WaitGroup, no channel, and no
// shutdown tie outlives its cursor and accumulates forever under load.
//
// A `go` statement passes when the launched work is accounted for:
//
//   - a function literal whose body (or argument list) carries
//     evidence — sync.WaitGroup Add/Done/Wait, any channel operation
//     (send, receive, close, range over a channel), or a select;
//   - a named function or method whose module summary says the same,
//     transitively (a callee that blocks on the shutdown channel
//     accounts for its caller's goroutine).
//
// The rule is deliberately scoped: most packages here never spawn, and
// a repo-wide net would mostly catch test helpers. Widening the scope
// is a one-line change.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutines in the server/join machinery must be joined via WaitGroup/channel or tied to a shutdown path",
	Run:  runGoLeak,
}

// goleakScoped reports whether the rule watches this package: the
// goroutine-spawning layers, plus the rule's own golden fixture.
func goleakScoped(path string) bool {
	for _, suffix := range []string{
		"internal/server",
		"internal/sjoin",
		"internal/tablefunc",
		"testdata/src/goleak",
	} {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}

func runGoLeak(pass *Pass) []Diag {
	pkg := pass.Pkg
	if !goleakScoped(pkg.Path) {
		return nil
	}
	var diags []Diag
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goAccounted(pkg, pass.Mod, g) {
				return true
			}
			diags = append(diags, diag(pkg, "goleak", g.Pos(),
				"goroutine is not joined: no WaitGroup bookkeeping, channel operation, or accounted callee ties it to a shutdown path"))
			return true
		})
	}
	return diags
}

// goAccounted reports whether the goroutine launched by g carries
// accounting evidence.
func goAccounted(pkg *Pkg, mod *Module, g *ast.GoStmt) bool {
	// Arguments are evaluated at spawn; a channel or WaitGroup handed
	// in as an argument is evidence too.
	for _, arg := range g.Call.Args {
		if bodyAccounted(pkg, arg, mod) {
			return true
		}
	}
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return bodyAccounted(pkg, fun.Body, mod)
	default:
		if fn := calleeFunc(pkg.Info, g.Call); fn != nil {
			if sum := mod.SummaryOf(fn); sum != nil {
				return sum.Accounted
			}
		}
	}
	return false
}
