package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockOrder folds every function's acquisition behaviour into one
// module-wide lock-order graph — an edge a→b means some execution path
// acquires b while holding a — and reports each cycle as a potential
// deadlock with the acquisition sites on both sides. Two goroutines
// walking a cycle from opposite ends block forever; the classic shape
// is pool→WAL in one function and WAL→pool in another.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisition order must be acyclic across the module",
	Run:  runLockOrder,
}

// lockEdge is one observed ordering: `to` acquired at Pos (in Pkg,
// inside Fn) while `from` was held, the holder having locked at
// HeldPos. Via names the callee chain when the acquisition is
// transitive.
type lockEdge struct {
	from, to string
	pkg      *Pkg
	fn       string
	pos      token.Pos
	heldPos  token.Pos
	via      string
}

// lockGraph is the module-wide order graph keyed on global lock
// identities. Only the first edge observed for each (from,to) pair is
// kept; iteration everywhere is sorted, so reports are deterministic.
type lockGraph struct {
	edges map[string]map[string]*lockEdge
}

func (g *lockGraph) add(e *lockEdge) {
	if g.edges == nil {
		g.edges = make(map[string]map[string]*lockEdge)
	}
	m := g.edges[e.from]
	if m == nil {
		m = make(map[string]*lockEdge)
		g.edges[e.from] = m
	}
	if _, ok := m[e.to]; !ok {
		m[e.to] = e
	}
}

// lockCycle is one elementary cycle through the order graph; edges[i]
// goes from nodes[i] to nodes[(i+1)%len].
type lockCycle struct {
	nodes []string
	edges []*lockEdge
}

// lockOrderGraph builds (once) the global order graph and its cycles.
func (m *Module) lockOrderGraph() (*lockGraph, []lockCycle) {
	m.lockOnce.Do(func() {
		g := &lockGraph{}
		for _, pkg := range m.pkgs {
			for _, f := range pkg.Files {
				for _, body := range funcScopes(f) {
					fn := scopeName(pkg, body)
					sc := newLockScanner(pkg, m, body)
					ev := &lockEvents{
						acquire: func(pos token.Pos, id lockIdent, _ string, _ bool, via string, before lockFact) {
							if !id.global {
								return
							}
							for _, k := range sortedFactKeys(before) {
								h := before[k]
								if !h.id.global || h.id.name == id.name {
									continue
								}
								g.add(&lockEdge{
									from: h.id.name, to: id.name,
									pkg: pkg, fn: fn, pos: pos, heldPos: h.pos, via: via,
								})
							}
						},
					}
					sc.replay(m.graphFor(body), false, ev)
				}
			}
		}
		m.lockG = g
		m.cycles = g.findCycles()
	})
	return m.lockG, m.cycles
}

// findCycles returns one shortest elementary cycle per strongly
// connected component with an internal cycle. One representative per
// SCC keeps a tangled component from producing a report storm; fixing
// the reported cycle and re-running surfaces the next one.
func (g *lockGraph) findCycles() []lockCycle {
	var nodes []string
	seen := make(map[string]bool)
	for from, m := range g.edges {
		if !seen[from] {
			seen[from] = true
			nodes = append(nodes, from)
		}
		for to := range m {
			if !seen[to] {
				seen[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)

	sccs := tarjanSCC(nodes, g.edges)
	var cycles []lockCycle
	for _, scc := range sccs {
		in := make(map[string]bool, len(scc))
		for _, n := range scc {
			in[n] = true
		}
		self := len(scc) == 1 && g.edges[scc[0]][scc[0]] != nil
		if len(scc) < 2 && !self {
			continue
		}
		if c, ok := g.shortestCycle(scc[0], in); ok {
			cycles = append(cycles, c)
		}
	}
	sort.Slice(cycles, func(i, j int) bool {
		return strings.Join(cycles[i].nodes, "→") < strings.Join(cycles[j].nodes, "→")
	})
	return cycles
}

// shortestCycle BFSes inside one SCC from its smallest node back to
// itself and reconstructs the edge path.
func (g *lockGraph) shortestCycle(start string, in map[string]bool) (lockCycle, bool) {
	type hop struct {
		node string
		prev int
		edge *lockEdge
	}
	hops := []hop{{node: start, prev: -1}}
	visited := map[string]bool{}
	for i := 0; i < len(hops); i++ {
		cur := hops[i]
		next := g.edges[cur.node]
		for _, to := range sortedKeys(next) {
			if !in[to] {
				continue
			}
			if to == start {
				// Rebuild the path start → … → cur, then close it.
				var ns []string
				var edges []*lockEdge
				for j := i; j >= 0; j = hops[j].prev {
					ns = append(ns, hops[j].node)
					if hops[j].edge != nil {
						edges = append(edges, hops[j].edge)
					}
				}
				reverseStrings(ns)
				reverseEdges(edges)
				edges = append(edges, next[to])
				return lockCycle{nodes: ns, edges: edges}, true
			}
			if !visited[to] {
				visited[to] = true
				hops = append(hops, hop{node: to, prev: i, edge: next[to]})
			}
		}
	}
	return lockCycle{}, false
}

func reverseStrings(s []string) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func reverseEdges(s []*lockEdge) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func runLockOrder(pass *Pass) []Diag {
	_, cycles := pass.Mod.lockOrderGraph()
	var diags []Diag
	for _, c := range cycles {
		// Report the cycle once, in the package owning its first edge.
		e := c.edges[0]
		if e.pkg != pass.Pkg {
			continue
		}
		var path strings.Builder
		for _, n := range c.nodes {
			path.WriteString(n)
			path.WriteString(" → ")
		}
		path.WriteString(c.nodes[0])
		var sides []string
		for _, ce := range c.edges {
			side := fmt.Sprintf("%s acquired at %s (in %s) while %s is held (locked at line %d)",
				ce.to, shortPos(ce.pkg, ce.pos), ce.fn, ce.from, ce.pkg.Fset.Position(ce.heldPos).Line)
			if ce.via != "" {
				side += " via " + ce.via
			}
			sides = append(sides, side)
		}
		diags = append(diags, diag(pass.Pkg, "lockorder", e.pos,
			"potential deadlock: lock order cycle %s: %s", path.String(), strings.Join(sides, "; ")))
	}
	return diags
}

// LockGraphDot renders the module lock-order graph in Graphviz dot
// form for `spatiallint -lockgraph`. Edges in a cycle are drawn red.
func LockGraphDot(mod *Module) string {
	g, cycles := mod.lockOrderGraph()
	hot := make(map[string]bool)
	for _, c := range cycles {
		for _, e := range c.edges {
			hot[e.from+"\x00"+e.to] = true
		}
	}
	var b strings.Builder
	b.WriteString("digraph lockorder {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, from := range sortedKeys(g.edges) {
		for _, to := range sortedKeys(g.edges[from]) {
			e := g.edges[from][to]
			label := shortPos(e.pkg, e.pos)
			if e.via != "" {
				label += "\\nvia " + e.via
			}
			attr := fmt.Sprintf("label=%q", label)
			if hot[from+"\x00"+to] {
				attr += ", color=red, penwidth=2"
			}
			fmt.Fprintf(&b, "  %q -> %q [%s];\n", from, to, attr)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// tarjanSCC computes strongly connected components (iterative Tarjan)
// over the given node set; components come back in a deterministic
// order because nodes is sorted.
func tarjanSCC(nodes []string, edges map[string]map[string]*lockEdge) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	type frame struct {
		node  string
		succs []string
		i     int
	}
	for _, root := range nodes {
		if _, ok := index[root]; ok {
			continue
		}
		var call []frame
		push := func(n string) {
			index[n] = next
			low[n] = next
			next++
			stack = append(stack, n)
			onStack[n] = true
			var succs []string
			for _, to := range sortedKeys(edges[n]) {
				succs = append(succs, to)
			}
			call = append(call, frame{node: n, succs: succs})
		}
		push(root)
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.i < len(f.succs) {
				w := f.succs[f.i]
				f.i++
				if _, ok := index[w]; !ok {
					push(w)
				} else if onStack[w] {
					if index[w] < low[f.node] {
						low[f.node] = index[w]
					}
				}
				continue
			}
			// f is done: pop, fold lowlink into caller, maybe emit SCC.
			n := f.node
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := &call[len(call)-1]
				if low[n] < low[p.node] {
					low[p.node] = low[n]
				}
			}
			if low[n] == index[n] {
				var scc []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == n {
						break
					}
				}
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// scopeName names a function scope for reports: the enclosing FuncDecl
// name, or "func literal in <decl>" for a FuncLit body.
func scopeName(pkg *Pkg, body *ast.BlockStmt) string {
	for _, f := range pkg.Files {
		var name string
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body == body {
					name = d.Name.Name
					found = true
					return false
				}
				if d.Body != nil && d.Pos() <= body.Pos() && body.End() <= d.End() {
					name = "func literal in " + d.Name.Name
				}
			case *ast.FuncLit:
				if d.Body == body {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			if name == "" {
				name = "func literal"
			}
			return name
		}
	}
	return "?"
}
