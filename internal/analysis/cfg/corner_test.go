package cfg

import (
	"go/ast"
	"testing"
)

// Corner cases the concurrency rules lean on: a select with a default
// inside a loop, a goto that lands inside a loop body, and deferred
// calls that acquire locks. Each asserts the block edges and, where a
// rule depends on it, the Walk facts directly.

func TestSelectDefaultInsideForLoops(t *testing.T) {
	g, fset := buildFunc(t, `
		for i := 0; i < 10; i++ {
			select {
			case <-in:
				got()
			default:
				idle()
			}
			tail()
		}
		end()
	`)
	gotBlk := liveBlockWith(g, fset, "got()")
	idleBlk := liveBlockWith(g, fset, "idle()")
	tailBlk := liveBlockWith(g, fset, "tail()")
	postBlk := liveBlockWith(g, fset, "i++")
	endBlk := liveBlockWith(g, fset, "end()")
	if gotBlk == nil || idleBlk == nil || tailBlk == nil || postBlk == nil || endBlk == nil {
		t.Fatal("missing blocks")
	}
	// Both clauses rejoin before the loop tail, and the tail loops back
	// around through the post statement to the select again.
	if !reaches(gotBlk, tailBlk) || !reaches(idleBlk, tailBlk) {
		t.Error("select clauses do not rejoin at the loop tail")
	}
	if !reaches(tailBlk, postBlk) || !reaches(postBlk, idleBlk) {
		t.Error("loop tail does not iterate back into the select")
	}
	if !reaches(idleBlk, endBlk) {
		t.Error("loop cannot terminate past the select")
	}
}

func TestGotoIntoLoopBody(t *testing.T) {
	// The compiler rejects a goto that jumps into a block, but the
	// builder runs on anything the parser accepts and must still wire
	// the edge instead of dropping it (dataflow soundness beats
	// validity checking, which belongs to the type checker).
	g, fset := buildFunc(t, `
		i := 0
		goto inner
		for ; i < 3; i++ {
		inner:
			body()
		}
		end()
	`)
	gotoBlk := liveBlockWith(g, fset, "i := 0")
	bodyBlk := liveBlockWith(g, fset, "body()")
	postBlk := liveBlockWith(g, fset, "i++")
	endBlk := liveBlockWith(g, fset, "end()")
	if gotoBlk == nil || bodyBlk == nil || postBlk == nil || endBlk == nil {
		t.Fatal("missing blocks")
	}
	if !reaches(gotoBlk, bodyBlk) {
		t.Error("goto does not reach the label inside the loop body")
	}
	// Once inside, the body iterates via the post statement and can
	// leave through the loop condition.
	if !reaches(bodyBlk, postBlk) || !reaches(postBlk, bodyBlk) {
		t.Error("loop body entered by goto does not iterate")
	}
	if !reaches(bodyBlk, endBlk) {
		t.Error("loop entered by goto cannot terminate")
	}
}

// TestDeferredLockAcquire runs a lock-set dataflow over a function whose
// defers acquire and release locks: the deferred statements must sit in
// the blocks where they are registered (not hoisted to the entry), be
// collected in g.Defers, and not perturb the straight-line facts — a
// defer's body runs at return, so Walk must see the lock still held at
// the statements after `defer mu.Unlock()`.
func TestDeferredLockAcquire(t *testing.T) {
	g, fset := buildFunc(t, `
		mu.Lock()
		defer mu.Unlock()
		if cond() {
			defer aux.Lock()
		}
		work()
	`)
	if len(g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(g.Defers))
	}
	if d := liveBlockWith(g, fset, "defer aux.Lock()"); d == nil || d == g.Entry {
		t.Error("conditional deferred lock acquisition not in its branch block")
	}

	// Lock-set flow: an executed x.Lock() adds x, an executed
	// x.Unlock() removes it, and a DeferStmt contributes nothing at
	// registration time.
	type fact = map[string]bool
	fl := Flow[fact]{
		Entry: fact{},
		Join: func(a, b fact) fact {
			for k := range b {
				a[k] = true
			}
			return a
		},
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Clone: func(f fact) fact {
			c := make(fact, len(f))
			for k := range f {
				c[k] = true
			}
			return c
		},
		Transfer: func(n Node, f fact) fact {
			if _, ok := n.N.(*ast.DeferStmt); ok {
				return f
			}
			es, ok := n.N.(*ast.ExprStmt)
			if !ok {
				return f
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return f
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return f
			}
			recv, ok := sel.X.(*ast.Ident)
			if !ok {
				return f
			}
			switch sel.Sel.Name {
			case "Lock":
				f[recv.Name] = true
			case "Unlock":
				delete(f, recv.Name)
			}
			return f
		},
	}
	in := Solve(g, fl)
	var workBefore fact
	Walk(g, fl, in, func(n Node, before fact) {
		if es, ok := n.N.(*ast.ExprStmt); ok && nodeText(es, fset) == "work()" {
			workBefore = before
		}
	})
	if workBefore == nil {
		t.Fatal("Walk never visited work()")
	}
	if !workBefore["mu"] {
		t.Errorf("mu not held at work(): deferred Unlock was applied at registration (fact %v)", workBefore)
	}
	if workBefore["aux"] {
		t.Errorf("aux held at work(): deferred Lock was applied at registration (fact %v)", workBefore)
	}
}
