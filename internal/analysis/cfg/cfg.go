// Package cfg builds control-flow graphs over go/ast function bodies
// and solves forward dataflow problems on them with a worklist solver.
// It is the engine under the interprocedural spatiallint rules: the
// paper's lifecycle contracts (start–fetch–close pairing, bounded
// candidate arrays, parallel subtrees that must not leak workers) are
// path-sensitive properties, and the per-function AST walks of the
// first-generation rules could not see through branches, loops, or
// calls. Everything here is stdlib-only, like the rest of the suite.
//
// A Graph is a set of basic Blocks. Each block holds the statements and
// condition expressions it executes, in order; edges carry the branch
// condition they follow (the true or false leg of an if or for), so
// analyses can refine facts per branch. Control constructs covered:
// if/else, for (including bare `for {}`), range, switch/type switch
// with fallthrough, select (with and without default), labeled break
// and continue, goto, return, and panic — a panic call ends its block
// with an edge to the synthetic exit, so facts live at a panic are
// visible to exit checks that want them, distinguishable by edge kind.
// Defer statements appear both as in-block nodes (the registration
// point) and on Graph.Defers (the set that runs at every exit).
package cfg

import (
	"go/ast"
	"go/token"
)

// EdgeKind classifies how control reaches an edge's target.
type EdgeKind int

const (
	// EdgeFlow is ordinary sequential or branch flow.
	EdgeFlow EdgeKind = iota
	// EdgeReturn leads to the exit block from a return statement.
	EdgeReturn
	// EdgePanic leads to the exit block from a panic call.
	EdgePanic
)

// Edge is one directed control-flow edge. When Cond is non-nil the
// edge is the Branch leg of that condition (the true or false arm of
// an if, or the taken/exhausted legs of a loop condition).
type Edge struct {
	To     *Block
	Cond   ast.Expr
	Branch bool
	Kind   EdgeKind
}

// Block is one basic block: nodes that execute in order with no
// internal control transfer. Nodes are statements plus the condition
// expressions evaluated in the block (if/for conditions, switch tags,
// range operands), so transfer functions observe every evaluation.
type Block struct {
	Index int
	// What phrases the block: "entry", "if.then", "for.head", ...
	Comment string
	Nodes   []ast.Node
	Succs   []Edge
	// Live marks blocks reachable from entry; dead blocks (code after
	// an unconditional return) keep their shape but are skipped by the
	// solver.
	Live bool
}

// Graph is the CFG of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Defers lists every defer statement in the body, in syntactic
	// order. Deferred work runs at every exit; rules that model it
	// (pin release, cursor close) scan this list.
	Defers []*ast.DeferStmt
}

// Build constructs the CFG of body. A nil body yields a two-block
// graph (entry → exit).
func Build(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, labels: map[string]*labelTarget{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	// Fall off the end of the body: an implicit return.
	b.edgeTo(b.g.Exit, EdgeReturn)
	b.patchGotos()
	b.markLive()
	return b.g
}

// labelTarget records where a label's break/continue/goto lead.
type labelTarget struct {
	brk   *Block // filled when the labeled loop/switch/select is built
	cont  *Block
	start *Block // goto target: where the labeled statement begins
}

type pendingGoto struct {
	from  *Block
	label string
	pos   token.Pos
}

type builder struct {
	g   *Graph
	cur *Block // nil once the current path is terminated

	// Innermost break/continue targets (continue: loops only).
	breakStack    []*Block
	continueStack []*Block

	labels map[string]*labelTarget
	gotos  []pendingGoto

	// pendingLabel is set while building the statement a label names,
	// so its loop/switch targets register under the label.
	pendingLabel string
}

func (b *builder) newBlock(comment string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Comment: comment}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edgeTo links cur → to (no-op on a terminated path).
func (b *builder) edgeTo(to *Block, kind EdgeKind) {
	if b.cur == nil {
		return
	}
	b.cur.Succs = append(b.cur.Succs, Edge{To: to, Kind: kind})
}

// branchTo links cur → to under cond/branch.
func (b *builder) branchTo(to *Block, cond ast.Expr, branch bool) {
	if b.cur == nil {
		return
	}
	b.cur.Succs = append(b.cur.Succs, Edge{To: to, Cond: cond, Branch: branch})
}

// add appends a node to the current block, reviving a terminated path
// into a fresh (dead) block so trailing statements still get a home.
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// takeLabel consumes the pending label for a breakable construct.
func (b *builder) takeLabel() *labelTarget {
	if b.pendingLabel == "" {
		return nil
	}
	lt := b.labels[b.pendingLabel]
	b.pendingLabel = ""
	return lt
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lt := &labelTarget{}
		b.labels[s.Label.Name] = lt
		// A goto to the label lands where the statement begins; start a
		// fresh block so the target is well defined.
		start := b.newBlock("label." + s.Label.Name)
		b.edgeTo(start, EdgeFlow)
		b.cur = start
		lt.start = start
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
		// A label on a plain statement still allows `break L` only for
		// loops/switches; nothing more to do here.

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlock := b.cur
		after := b.newBlock("if.after")
		then := b.newBlock("if.then")
		b.branchTo(then, s.Cond, true)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edgeTo(after, EdgeFlow)
		if s.Else != nil {
			els := b.newBlock("if.else")
			condBlock.Succs = append(condBlock.Succs, Edge{To: els, Cond: s.Cond, Branch: false})
			b.cur = els
			b.stmt(s.Else)
			b.edgeTo(after, EdgeFlow)
		} else {
			condBlock.Succs = append(condBlock.Succs, Edge{To: after, Cond: s.Cond, Branch: false})
		}
		b.cur = after

	case *ast.ForStmt:
		lt := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		after := b.newBlock("for.after")
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		if lt != nil {
			lt.brk, lt.cont = after, post
		}
		b.edgeTo(head, EdgeFlow)
		b.cur = head
		body := b.newBlock("for.body")
		if s.Cond != nil {
			b.add(s.Cond)
			b.branchTo(body, s.Cond, true)
			b.branchTo(after, s.Cond, false)
		} else {
			// `for {}`: after is reachable only via break.
			b.edgeTo(body, EdgeFlow)
		}
		b.breakStack = append(b.breakStack, after)
		b.continueStack = append(b.continueStack, post)
		b.cur = body
		b.stmtList(s.Body.List)
		b.edgeTo(post, EdgeFlow)
		b.breakStack = b.breakStack[:len(b.breakStack)-1]
		b.continueStack = b.continueStack[:len(b.continueStack)-1]
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edgeTo(head, EdgeFlow)
		}
		b.cur = after

	case *ast.RangeStmt:
		lt := b.takeLabel()
		b.add(s.X)
		head := b.newBlock("range.head")
		after := b.newBlock("range.after")
		if lt != nil {
			lt.brk, lt.cont = after, head
		}
		b.edgeTo(head, EdgeFlow)
		b.cur = head
		// The RangeStmt node itself marks the per-iteration key/value
		// binding; it lives in the head so every iteration sees it.
		b.add(s)
		body := b.newBlock("range.body")
		b.edgeTo(body, EdgeFlow)
		b.edgeTo(after, EdgeFlow)
		b.breakStack = append(b.breakStack, after)
		b.continueStack = append(b.continueStack, head)
		b.cur = body
		b.stmtList(s.Body.List)
		b.edgeTo(head, EdgeFlow)
		b.breakStack = b.breakStack[:len(b.breakStack)-1]
		b.continueStack = b.continueStack[:len(b.continueStack)-1]
		b.cur = after

	case *ast.SwitchStmt:
		lt := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.buildCases(s.Body.List, lt, nil)

	case *ast.TypeSwitchStmt:
		lt := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.buildCases(s.Body.List, lt, nil)

	case *ast.SelectStmt:
		lt := b.takeLabel()
		head := b.cur
		if head == nil {
			head = b.newBlock("unreachable")
			b.cur = head
		}
		after := b.newBlock("select.after")
		if lt != nil {
			lt.brk = after
		}
		b.breakStack = append(b.breakStack, after)
		hasClause := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			hasClause = true
			blk := b.newBlock("select.case")
			head.Succs = append(head.Succs, Edge{To: blk, Kind: EdgeFlow})
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edgeTo(after, EdgeFlow)
		}
		b.breakStack = b.breakStack[:len(b.breakStack)-1]
		if !hasClause {
			// select {} blocks forever: after is unreachable.
		}
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.edgeTo(b.g.Exit, EdgeReturn)
		b.cur = nil

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.edgeTo(b.g.Exit, EdgePanic)
			b.cur = nil
		}

	default:
		// Assign, Decl, IncDec, Send, Go, Empty: straight-line nodes.
		b.add(s)
	}
}

// buildCases shares the switch/type-switch clause wiring. The entry
// block fans out to each case; fallthrough chains a case body into the
// next clause's body; a missing default adds the fall-past edge.
func (b *builder) buildCases(clauses []ast.Stmt, lt *labelTarget, _ *Block) {
	head := b.cur
	if head == nil {
		head = b.newBlock("unreachable")
		b.cur = head
	}
	after := b.newBlock("switch.after")
	if lt != nil {
		lt.brk = after
	}
	b.breakStack = append(b.breakStack, after)
	hasDefault := false
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock("switch.case")
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		head.Succs = append(head.Succs, Edge{To: blocks[i], Kind: EdgeFlow})
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		fellThrough := false
		for _, s := range cc.Body {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fellThrough = true
				if i+1 < len(blocks) {
					b.edgeTo(blocks[i+1], EdgeFlow)
				}
				b.cur = nil
				break
			}
			b.stmt(s)
		}
		if !fellThrough {
			b.edgeTo(after, EdgeFlow)
		}
	}
	if !hasDefault {
		head.Succs = append(head.Succs, Edge{To: after, Kind: EdgeFlow})
	}
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.cur = after
}

func (b *builder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		var to *Block
		if s.Label != nil {
			if lt := b.labels[s.Label.Name]; lt != nil {
				to = lt.brk
			}
		} else if len(b.breakStack) > 0 {
			to = b.breakStack[len(b.breakStack)-1]
		}
		if to != nil {
			b.edgeTo(to, EdgeFlow)
		}
		b.cur = nil
	case token.CONTINUE:
		var to *Block
		if s.Label != nil {
			if lt := b.labels[s.Label.Name]; lt != nil {
				to = lt.cont
			}
		} else if len(b.continueStack) > 0 {
			to = b.continueStack[len(b.continueStack)-1]
		}
		if to != nil {
			b.edgeTo(to, EdgeFlow)
		}
		b.cur = nil
	case token.GOTO:
		if s.Label != nil && b.cur != nil {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name, pos: s.Pos()})
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled by buildCases; a stray fallthrough terminates.
		b.cur = nil
	}
}

// patchGotos resolves goto edges once every label's start block exists
// (forward gotos reference labels defined later).
func (b *builder) patchGotos() {
	for _, g := range b.gotos {
		if lt := b.labels[g.label]; lt != nil && lt.start != nil {
			g.from.Succs = append(g.from.Succs, Edge{To: lt.start, Kind: EdgeFlow})
		}
	}
}

func (b *builder) markLive() {
	seen := make([]bool, len(b.g.Blocks))
	stack := []*Block{b.g.Entry}
	seen[b.g.Entry.Index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		blk.Live = true
		for _, e := range blk.Succs {
			if !seen[e.To.Index] {
				seen[e.To.Index] = true
				stack = append(stack, e.To)
			}
		}
	}
}

// isPanicCall reports whether e is a call to the builtin panic. (A
// shadowed local named panic would fool this; nobody shadows panic.)
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
