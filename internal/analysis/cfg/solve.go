package cfg

import "go/ast"

// The worklist dataflow solver. A Flow describes one forward analysis:
// the entry fact, the lattice operations (Join/Equal/Clone), the
// per-node transfer function, and an optional per-edge refinement that
// sees the branch condition an edge follows (how cursorclose excuses
// the open's own error path, and how taintsize treats a bound check as
// a sanitizer).
//
// Facts must be monotone under Transfer/Edge and the lattice of
// reachable facts finite (the rules use small maps keyed by objects or
// receiver strings), so the fixpoint terminates; a generous iteration
// cap keeps a buggy analysis from hanging the linter.

// Flow is one forward dataflow problem over a Graph.
type Flow[F any] struct {
	// Entry is the fact at function entry.
	Entry F
	// Join merges two facts (may mutate and return a; b is read-only).
	Join func(a, b F) F
	// Equal reports fact equality (fixpoint detection).
	Equal func(a, b F) bool
	// Clone deep-copies a fact.
	Clone func(F) F
	// Transfer applies one node's effect (may mutate and return f).
	Transfer func(n Node, f F) F
	// Edge, when non-nil, refines the fact flowing along e (may mutate
	// and return f; f is already a private clone).
	Edge func(e Edge, f F) F
}

// Node pairs an AST node with the block it executes in, so transfer
// functions can tell a loop-head evaluation from a straight-line one
// if they care.
type Node struct {
	N     ast.Node
	Block *Block
}

// Solve runs fl to fixpoint and returns the fact at each reachable
// block's entry. Callers re-walk a block's nodes with Transfer to
// recover facts at interior points (see Walk).
func Solve[F any](g *Graph, fl Flow[F]) map[*Block]F {
	in := make(map[*Block]F, len(g.Blocks))
	in[g.Entry] = fl.Clone(fl.Entry)
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	// Each pop applies one block; the cap bounds total work far above
	// anything a real function needs.
	budget := 64 * (len(g.Blocks) + 1)
	for len(work) > 0 && budget > 0 {
		budget--
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := fl.Clone(in[blk])
		for _, n := range blk.Nodes {
			out = fl.Transfer(Node{N: n, Block: blk}, out)
		}
		for _, e := range blk.Succs {
			f := fl.Clone(out)
			if fl.Edge != nil {
				f = fl.Edge(e, f)
			}
			prev, ok := in[e.To]
			var next F
			if !ok {
				next = f
			} else {
				next = fl.Join(fl.Clone(prev), f)
			}
			if !ok || !fl.Equal(prev, next) {
				in[e.To] = next
				if !queued[e.To] {
					queued[e.To] = true
					work = append(work, e.To)
				}
			}
		}
	}
	return in
}

// Walk replays fl's transfer through each reachable block from the
// solved entry facts, calling visit with the fact in force just before
// every node. Rules use it to check facts at returns and exits.
func Walk[F any](g *Graph, fl Flow[F], in map[*Block]F, visit func(n Node, before F)) {
	for _, blk := range g.Blocks {
		f, ok := in[blk]
		if !ok || !blk.Live {
			continue
		}
		cur := fl.Clone(f)
		for _, n := range blk.Nodes {
			visit(Node{N: n, Block: blk}, cur)
			cur = fl.Transfer(Node{N: n, Block: blk}, cur)
		}
	}
}

// ExitFacts returns, for every reachable block with an edge to exit,
// the fact after the block's last node together with the edge that
// leaves it. Return edges and panic edges are distinguished by Kind.
type ExitFact[F any] struct {
	Block *Block
	Edge  Edge
	Fact  F
}

// Exits computes the facts flowing into the exit block, one per
// exiting edge.
func Exits[F any](g *Graph, fl Flow[F], in map[*Block]F) []ExitFact[F] {
	var out []ExitFact[F]
	for _, blk := range g.Blocks {
		f, ok := in[blk]
		if !ok || !blk.Live {
			continue
		}
		hasExit := false
		for _, e := range blk.Succs {
			if e.To == g.Exit {
				hasExit = true
			}
		}
		if !hasExit {
			continue
		}
		cur := fl.Clone(f)
		for _, n := range blk.Nodes {
			cur = fl.Transfer(Node{N: n, Block: blk}, cur)
		}
		for _, e := range blk.Succs {
			if e.To == g.Exit {
				out = append(out, ExitFact[F]{Block: blk, Edge: e, Fact: fl.Clone(cur)})
			}
		}
	}
	return out
}
