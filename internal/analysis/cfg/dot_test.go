package cfg

import (
	"fmt"
	"strings"
	"testing"
)

// TestDotRendersBranches checks the dot output for a function with a
// conditional: every block appears as a node, the branch edges carry
// condition=leg labels, and the whole thing is one well-formed digraph.
func TestDotRendersBranches(t *testing.T) {
	g, fset := buildFunc(t, `
	if x := 1; x > 0 {
		println("pos")
	} else {
		println("neg")
	}
	return`)
	dot := Dot(g, fset, "p.f")

	if !strings.HasPrefix(dot, "digraph \"p.f\" {\n") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("not a well-formed digraph:\n%s", dot)
	}
	for _, blk := range g.Blocks {
		if !strings.Contains(dot, fmt.Sprintf("b%d [label=", blk.Index)) {
			t.Errorf("block b%d has no node line:\n%s", blk.Index, dot)
		}
	}
	for _, want := range []string{
		`label="x > 0=true"`,
		`label="x > 0=false"`,
		`label="return"`,
		`println(\"pos\")`,
		`println(\"neg\")`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
}

// TestDotDeadBlockDashed checks that unreachable blocks render with the
// dashed style so -cfg-debug makes dead code visible at a glance.
func TestDotDeadBlockDashed(t *testing.T) {
	g, fset := buildFunc(t, `
	return
	println("dead")`)
	dot := Dot(g, fset, "p.f")
	if !strings.Contains(dot, "style=dashed") {
		t.Errorf("dead block not dashed:\n%s", dot)
	}
}

// TestDotEscapesQuotes checks that string literals in statements are
// escaped inside the double-quoted dot labels.
func TestDotEscapesQuotes(t *testing.T) {
	g, fset := buildFunc(t, `println("he said \"hi\"")`)
	dot := Dot(g, fset, "p.f")
	if !strings.Contains(dot, `\\\"hi\\\"`) {
		t.Errorf("nested quotes not double-escaped:\n%s", dot)
	}
	if n := strings.Count(dot, "digraph"); n != 1 {
		t.Errorf("got %d digraphs, want 1", n)
	}
}
