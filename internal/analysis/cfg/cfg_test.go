package cfg

import (
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses one function and builds its CFG.
func buildFunc(t *testing.T, body string) (*Graph, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return Build(fd.Body), fset
}

// nodeText renders a node for matching.
func nodeText(n ast.Node, fset *token.FileSet) string {
	var sb strings.Builder
	(&printer.Config{Mode: printer.RawFormat}).Fprint(&sb, fset, n)
	return sb.String()
}

// liveBlockWith returns the live block containing a node whose text
// contains want, or nil.
func liveBlockWith(g *Graph, fset *token.FileSet, want string) *Block {
	for _, blk := range g.Blocks {
		if !blk.Live {
			continue
		}
		for _, n := range blk.Nodes {
			if strings.Contains(nodeText(n, fset), want) {
				return blk
			}
		}
	}
	return nil
}

// hasEdge reports a direct edge a→b.
func hasEdge(a, b *Block) bool {
	for _, e := range a.Succs {
		if e.To == b {
			return true
		}
	}
	return false
}

// reaches reports whether b is reachable from a.
func reaches(a, b *Block) bool {
	seen := map[*Block]bool{a: true}
	stack := []*Block{a}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blk == b {
			return true
		}
		for _, e := range blk.Succs {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return false
}

func TestIfElseEdges(t *testing.T) {
	g, fset := buildFunc(t, `
		x := 1
		if x > 0 {
			a()
		} else {
			b()
		}
		c()
	`)
	condBlk := liveBlockWith(g, fset, "x > 0")
	thenBlk := liveBlockWith(g, fset, "a()")
	elseBlk := liveBlockWith(g, fset, "b()")
	afterBlk := liveBlockWith(g, fset, "c()")
	if condBlk == nil || thenBlk == nil || elseBlk == nil || afterBlk == nil {
		t.Fatal("missing blocks")
	}
	var sawTrue, sawFalse bool
	for _, e := range condBlk.Succs {
		if e.Cond == nil {
			continue
		}
		if e.Branch && e.To == thenBlk {
			sawTrue = true
		}
		if !e.Branch && e.To == elseBlk {
			sawFalse = true
		}
	}
	if !sawTrue || !sawFalse {
		t.Errorf("cond block lacks labeled branch edges (true=%v false=%v)", sawTrue, sawFalse)
	}
	if !reaches(thenBlk, afterBlk) || !reaches(elseBlk, afterBlk) {
		t.Error("branches do not rejoin")
	}
}

func TestLabeledBreakEscapesBothLoops(t *testing.T) {
	g, fset := buildFunc(t, `
	outer:
		for i := 0; i < 10; i++ {
			for {
				if done() {
					break outer
				}
				inner()
			}
		}
		after()
	`)
	brkBlk := liveBlockWith(g, fset, "done()")
	innerBlk := liveBlockWith(g, fset, "inner()")
	afterBlk := liveBlockWith(g, fset, "after()")
	if brkBlk == nil || innerBlk == nil || afterBlk == nil {
		t.Fatal("missing blocks")
	}
	if !reaches(brkBlk, afterBlk) {
		t.Error("break outer does not reach the code after the outer loop")
	}
	// The inner `for {}` has no condition: after() must not be
	// reachable from inner() without passing the labeled break.
	if !reaches(innerBlk, brkBlk) {
		t.Error("inner body does not loop back through the break check")
	}
}

func TestLabeledContinueTargetsOuterPost(t *testing.T) {
	g, fset := buildFunc(t, `
	loop:
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if skip() {
					continue loop
				}
				work()
			}
		}
		end()
	`)
	contBlk := liveBlockWith(g, fset, "skip()")
	postBlk := liveBlockWith(g, fset, "i++")
	if contBlk == nil || postBlk == nil {
		t.Fatal("missing blocks")
	}
	// The continue's true-branch successor must lead to the outer post
	// (i++) without passing work().
	workBlk := liveBlockWith(g, fset, "work()")
	var contSucc *Block
	for _, e := range contBlk.Succs {
		if e.Cond != nil && e.Branch {
			contSucc = e.To
		}
	}
	if contSucc == nil {
		t.Fatal("no true-branch successor of the continue guard")
	}
	if !reaches(contSucc, postBlk) {
		t.Error("continue loop does not reach the outer post statement")
	}
	if contSucc == workBlk {
		t.Error("continue fell through into the loop body")
	}
}

func TestSelectEdges(t *testing.T) {
	g, fset := buildFunc(t, `
		select {
		case v := <-in:
			use(v)
		case out <- 1:
			sent()
		}
		after()
	`)
	useBlk := liveBlockWith(g, fset, "use(v)")
	sentBlk := liveBlockWith(g, fset, "sent()")
	afterBlk := liveBlockWith(g, fset, "after()")
	if useBlk == nil || sentBlk == nil || afterBlk == nil {
		t.Fatal("missing blocks")
	}
	if !reaches(useBlk, afterBlk) || !reaches(sentBlk, afterBlk) {
		t.Error("select clauses do not rejoin after the select")
	}
	// Every path into after() goes through a clause: the entry must not
	// have a direct edge to the after block (no default clause).
	if hasEdge(g.Entry, afterBlk) {
		t.Error("select without default has a fall-past edge")
	}
}

func TestSelectDefaultFallsPast(t *testing.T) {
	g, fset := buildFunc(t, `
		select {
		case <-in:
			got()
		default:
			idle()
		}
		after()
	`)
	idleBlk := liveBlockWith(g, fset, "idle()")
	afterBlk := liveBlockWith(g, fset, "after()")
	if idleBlk == nil || afterBlk == nil {
		t.Fatal("missing blocks")
	}
	if !reaches(idleBlk, afterBlk) {
		t.Error("default clause does not reach the code after the select")
	}
}

func TestDeferCollectedAndInBlock(t *testing.T) {
	g, fset := buildFunc(t, `
		open()
		defer close1()
		if cond() {
			defer close2()
		}
		work()
	`)
	if len(g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(g.Defers))
	}
	if liveBlockWith(g, fset, "defer close1()") == nil {
		t.Error("defer statement missing from its block")
	}
	// The conditional defer sits in the then-block, not the entry.
	d2 := liveBlockWith(g, fset, "defer close2()")
	if d2 == g.Entry {
		t.Error("conditional defer landed in the entry block")
	}
}

func TestPanicEndsBlockWithPanicEdge(t *testing.T) {
	g, fset := buildFunc(t, `
		a()
		if bad() {
			panic("boom")
		}
		b()
	`)
	panicBlk := liveBlockWith(g, fset, `panic("boom")`)
	if panicBlk == nil {
		t.Fatal("missing panic block")
	}
	var kinds []EdgeKind
	for _, e := range panicBlk.Succs {
		kinds = append(kinds, e.Kind)
	}
	if len(kinds) != 1 || kinds[0] != EdgePanic {
		t.Errorf("panic block edges = %v, want one EdgePanic to exit", kinds)
	}
	if b := liveBlockWith(g, fset, "b()"); b == nil {
		t.Error("code after the if (non-panic path) should stay live")
	}
}

func TestReturnMakesTrailingCodeDead(t *testing.T) {
	g, fset := buildFunc(t, `
		a()
		return
		b()
	`)
	if liveBlockWith(g, fset, "b()") != nil {
		t.Error("statement after an unconditional return is marked live")
	}
	// b() still has a home in a dead block.
	found := false
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if strings.Contains(nodeText(n, fset), "b()") {
				found = true
			}
		}
	}
	if !found {
		t.Error("dead statement dropped from the graph entirely")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g, fset := buildFunc(t, `
		switch x() {
		case 1:
			one()
			fallthrough
		case 2:
			two()
		default:
			other()
		}
		after()
	`)
	oneBlk := liveBlockWith(g, fset, "one()")
	twoBlk := liveBlockWith(g, fset, "two()")
	afterBlk := liveBlockWith(g, fset, "after()")
	if oneBlk == nil || twoBlk == nil || afterBlk == nil {
		t.Fatal("missing blocks")
	}
	if !hasEdge(oneBlk, twoBlk) {
		t.Error("fallthrough edge from case 1 to case 2 missing")
	}
	if !reaches(twoBlk, afterBlk) {
		t.Error("case 2 does not reach the code after the switch")
	}
}

func TestGotoForwardEdge(t *testing.T) {
	g, fset := buildFunc(t, `
		a()
		if c() {
			goto done
		}
		b()
	done:
		end()
	`)
	gotoBlk := liveBlockWith(g, fset, "c()")
	endBlk := liveBlockWith(g, fset, "end()")
	bBlk := liveBlockWith(g, fset, "b()")
	if gotoBlk == nil || endBlk == nil || bBlk == nil {
		t.Fatal("missing blocks")
	}
	if !reaches(gotoBlk, endBlk) {
		t.Error("goto does not reach its label")
	}
	if !reaches(bBlk, endBlk) {
		t.Error("fallthrough path does not reach the label")
	}
}

func TestRangeLoopEdges(t *testing.T) {
	g, fset := buildFunc(t, `
		for _, v := range xs {
			use(v)
		}
		end()
	`)
	bodyBlk := liveBlockWith(g, fset, "use(v)")
	endBlk := liveBlockWith(g, fset, "end()")
	if bodyBlk == nil || endBlk == nil {
		t.Fatal("missing blocks")
	}
	if !reaches(bodyBlk, bodyBlk) {
		t.Error("range body does not loop")
	}
	if !reaches(bodyBlk, endBlk) {
		t.Error("range body cannot reach loop exit")
	}
}

// TestSolveReachingCalls runs a trivial dataflow (set of called
// function names) end to end: both branches' calls merge at the join.
func TestSolveReachingCalls(t *testing.T) {
	g, fset := buildFunc(t, `
		if c() {
			a()
		} else {
			b()
		}
		after()
	`)
	type fact = map[string]bool
	fl := Flow[fact]{
		Entry: fact{},
		Join: func(a, b fact) fact {
			for k := range b {
				a[k] = true
			}
			return a
		},
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Clone: func(f fact) fact {
			c := make(fact, len(f))
			for k := range f {
				c[k] = true
			}
			return c
		},
		Transfer: func(n Node, f fact) fact {
			ast.Inspect(n.N, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						f[id.Name] = true
					}
				}
				return true
			})
			return f
		},
	}
	in := Solve(g, fl)
	afterBlk := liveBlockWith(g, fset, "after()")
	if afterBlk == nil {
		t.Fatal("missing after block")
	}
	f := in[afterBlk]
	for _, want := range []string{"c", "a", "b"} {
		if !f[want] {
			t.Errorf("fact at join lacks %q: %v", want, f)
		}
	}
	exits := Exits(g, fl, in)
	if len(exits) == 0 {
		t.Fatal("no exit facts")
	}
	for _, ef := range exits {
		if !ef.Fact["after"] {
			t.Errorf("exit fact lacks \"after\": %v", ef.Fact)
		}
	}
}
