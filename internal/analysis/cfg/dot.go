package cfg

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Dot renders the graph in Graphviz dot syntax, one node per block
// with its statements summarised, for `spatiallint -cfg-debug <func>`.
// Branch edges are labeled with the condition and leg they follow;
// return and panic edges are labeled by kind.
func Dot(g *Graph, fset *token.FileSet, name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  node [shape=box fontname=monospace];\n")
	for _, blk := range g.Blocks {
		var lines []string
		lines = append(lines, fmt.Sprintf("b%d %s", blk.Index, blk.Comment))
		for _, n := range blk.Nodes {
			lines = append(lines, escape(render(n, fset)))
		}
		attrs := ""
		if !blk.Live {
			attrs = " style=dashed"
		}
		// \l is dot's left-justified line break; it must reach the
		// output unescaped, so the label is quoted by hand.
		fmt.Fprintf(&sb, "  b%d [label=\"%s\"%s];\n", blk.Index, strings.Join(lines, `\l`)+`\l`, attrs)
	}
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			label := ""
			switch {
			case e.Cond != nil:
				label = fmt.Sprintf("%s=%v", escape(render(e.Cond, fset)), e.Branch)
			case e.Kind == EdgeReturn:
				label = "return"
			case e.Kind == EdgePanic:
				label = "panic"
			}
			if label != "" {
				fmt.Fprintf(&sb, "  b%d -> b%d [label=\"%s\"];\n", blk.Index, e.To.Index, label)
			} else {
				fmt.Fprintf(&sb, "  b%d -> b%d;\n", blk.Index, e.To.Index)
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// escape makes s safe inside a double-quoted dot string.
var dotEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`)

func escape(s string) string { return dotEscaper.Replace(s) }

// render prints a node compactly (first line only, capped).
func render(n ast.Node, fset *token.FileSet) string {
	var sb strings.Builder
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&sb, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	s := sb.String()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i] + " ..."
	}
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}
