package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The golden harness: each testdata/src/<rule>/ package annotates the
// lines where a finding is expected with
//
//	// want `regexp`
//
// comments (several per line allowed). The test runs the one analyzer
// over the fixture and demands an exact match both ways: every want has
// a diagnostic on its line matching the regexp, and every diagnostic is
// claimed by a want.

var (
	loadOnce sync.Once
	loadPkgs []*Pkg
	loadErr  error
	loader   *Loader
)

// sharedLoad loads and type-checks the whole module once per test
// binary; fixtures type-check against the same dependency universe.
func sharedLoad(t *testing.T) ([]*Pkg, *Loader) {
	t.Helper()
	loadOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			loadErr = err
			return
		}
		loadPkgs, loader, loadErr = Load(root)
	})
	if loadErr != nil {
		t.Fatalf("loading module packages: %v", loadErr)
	}
	return loadPkgs, loader
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above test working directory")
		}
		dir = parent
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile("// want `([^`]*)`")

// parseWants extracts the want comments from every file of the fixture.
func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
				}
				wants = append(wants, &want{file: path, line: i + 1, re: re})
			}
		}
	}
	return wants
}

// checkFixture runs analyzers over the fixture package in dir and
// compares the findings against its want comments.
func checkFixture(t *testing.T, dir string, analyzers []*Analyzer) {
	t.Helper()
	_, l := sharedLoad(t)
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.CheckDir(abs, "spatialtf/internal/analysis/"+filepath.ToSlash(dir))
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	diags := Run([]*Pkg{pkg}, analyzers)
	wants := parseWants(t, abs)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}
diags:
	for _, d := range diags {
		for _, w := range wants {
			if !w.used && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.used = true
				continue diags
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func TestGolden(t *testing.T) {
	for _, rule := range []string{"pinpair", "cursorclose", "latchpair", "lockdiscipline", "lockorder", "atomicmix", "wireerr", "floateq", "taintsize", "goleak", "releasesummary", "metricname", "hotalloc"} {
		t.Run(rule, func(t *testing.T) {
			checkFixture(t, filepath.Join("testdata", "src", rule), []*Analyzer{ByName(rule)})
		})
	}
}

// TestSuppressions checks the //spatiallint:ignore machinery: three
// well-formed placements (same line, line above, function doc comment)
// silence their findings, while a directive with no reason is itself
// reported and does not suppress anything.
func TestSuppressions(t *testing.T) {
	_, l := sharedLoad(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.CheckDir(dir, "spatialtf/internal/analysis/testdata/src/suppress")
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	diags := Run([]*Pkg{pkg}, Analyzers())
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	// Exactly two findings survive: the malformed directive, and the
	// float comparison it consequently failed to suppress.
	if len(diags) != 2 || diags[0].Rule != "directive" || diags[1].Rule != "floateq" {
		t.Fatalf("got rules %v (diags %v), want [directive floateq]", rules, diags)
	}
	if !strings.Contains(diags[0].Message, "malformed directive") {
		t.Errorf("directive finding message = %q, want a malformed-directive report", diags[0].Message)
	}

	// Directives validate against the full suite even when the run
	// disables their rule: with floateq off, its suppressions are inert,
	// not "unknown rule" findings — only the malformed one remains.
	subset := Run([]*Pkg{pkg}, []*Analyzer{PinPair})
	if len(subset) != 1 || subset[0].Rule != "directive" ||
		!strings.Contains(subset[0].Message, "malformed directive") {
		t.Fatalf("disabled-rule run: got %v, want only the malformed directive", subset)
	}
}

// TestRepoIsClean runs the full suite over every package of the module:
// the tree must lint clean, so `make lint` stays a meaningful gate.
func TestRepoIsClean(t *testing.T) {
	pkgs, _ := sharedLoad(t)
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

// TestDiagJSON pins the JSON shape the -json flag emits.
func TestDiagJSON(t *testing.T) {
	d := Diag{Rule: "floateq", File: "x.go", Line: 3, Col: 9, Message: "m"}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	const exp = `{"rule":"floateq","file":"x.go","line":3,"col":9,"message":"m"}`
	if string(b) != exp {
		t.Errorf("json = %s, want %s", b, exp)
	}
}
