package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix forbids mixing sync/atomic access to a struct field with
// plain reads/writes of the same field that no dominating lock orders.
// A plain load racing an atomic store is a data race the race detector
// only catches when the schedule cooperates; the grid join's shared
// tile cursor and the pool's clock hand are exactly the fields where a
// torn or stale read silently skips work. A plain access is accepted
// when every path to it holds some lock (must-flow), since the writer
// side is then expected to take the same lock for its non-atomic
// phases.
//
// Typed atomics (atomic.Int64 and friends) make mixed access
// inexpressible — except through unsafe.Pointer aliasing, which this
// rule flags unconditionally.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed via sync/atomic must not be plainly read or written without a dominating lock",
	Run:  runAtomicMix,
}

// atomicInfo is the module-wide census of atomically-accessed struct
// fields: ident → first atomic call site, plus the selector positions
// that appear inside the atomic calls themselves (sanctioned — they
// are the atomic accesses, not violations).
type atomicInfo struct {
	fields     map[string]token.Pos
	fieldPkg   map[string]*Pkg
	sanctioned map[token.Pos]bool
}

// atomicFields scans (once) every package for sync/atomic calls whose
// address argument names a struct field.
func (m *Module) atomicFields() *atomicInfo {
	m.atomicOnce.Do(func() {
		info := &atomicInfo{
			fields:     make(map[string]token.Pos),
			fieldPkg:   make(map[string]*Pkg),
			sanctioned: make(map[token.Pos]bool),
		}
		for _, pkg := range m.pkgs {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
					if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
						return true
					}
					for _, arg := range call.Args {
						un, ok := arg.(*ast.UnaryExpr)
						if !ok || un.Op != token.AND {
							continue
						}
						fsel, ok := un.X.(*ast.SelectorExpr)
						if !ok {
							continue
						}
						ident, ok := fieldIdentOf(pkg, fsel)
						if !ok {
							continue
						}
						if _, seen := info.fields[ident]; !seen {
							info.fields[ident] = call.Pos()
							info.fieldPkg[ident] = pkg
						}
						info.sanctioned[fsel.Pos()] = true
					}
					return true
				})
			}
		}
		m.atomics = info
	})
	return m.atomics
}

func runAtomicMix(pass *Pass) []Diag {
	info := pass.Mod.atomicFields()
	var diags []Diag
	for _, f := range pass.Pkg.Files {
		if len(info.fields) > 0 {
			for _, body := range funcScopes(f) {
				diags = append(diags, atomicMixScope(pass.Pkg, pass.Mod, info, body)...)
			}
		}
		diags = append(diags, unsafeAtomicAliases(pass.Pkg, f)...)
	}
	return diags
}

// atomicMixScope replays the must-held lock flow over one scope and
// flags plain accesses to atomically-managed fields that no lock
// dominates.
func atomicMixScope(pkg *Pkg, mod *Module, info *atomicInfo, body *ast.BlockStmt) []Diag {
	g := mod.graphFor(body)
	sc := newLockScanner(pkg, mod, body)
	var diags []Diag
	ev := &lockEvents{
		access: func(sel *ast.SelectorExpr, write bool, before lockFact) {
			if info.sanctioned[sel.Pos()] {
				return
			}
			ident, ok := fieldIdentOf(pkg, sel)
			if !ok {
				return
			}
			atomicPos, ok := info.fields[ident]
			if !ok {
				return
			}
			if len(before) > 0 {
				// Some lock is held on every path here; the field has a
				// locked discipline for its plain phase.
				return
			}
			kind := "read"
			if write {
				kind = "write"
			}
			diags = append(diags, diag(pkg, "atomicmix", sel.Sel.Pos(),
				"plain %s of atomically-accessed field %s (atomic access at %s): use sync/atomic for every access, or guard both sides with one lock",
				kind, ident, shortPos(info.fieldPkg[ident], atomicPos)))
		},
	}
	sc.replay(g, true, ev)
	return diags
}

// unsafeAtomicAliases flags unsafe.Pointer conversions whose operand
// addresses a typed-atomic field (atomic.Int64 etc.): the only way to
// smuggle a plain access past the typed API.
func unsafeAtomicAliases(pkg *Pkg, f *ast.File) []Diag {
	var diags []Diag
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pkg.Info.Uses[sel.Sel].(*types.TypeName)
		if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "unsafe" || obj.Name() != "Pointer" {
			return true
		}
		arg := call.Args[0]
		// Unwrap (unsafe.Pointer)(&x.f) and unsafe.Pointer(&x.f).
		un, ok := arg.(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			return true
		}
		fsel, ok := un.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !isTypedAtomic(pkg.Info.TypeOf(fsel)) {
			return true
		}
		ident, ok := fieldIdentOf(pkg, fsel)
		if !ok {
			ident = exprString(fsel)
		}
		diags = append(diags, diag(pkg, "atomicmix", call.Pos(),
			"unsafe aliasing of atomic field %s: the typed atomic API exists so no plain access is possible — do not cast around it",
			ident))
		return true
	})
	return diags
}

// isTypedAtomic reports whether t is one of sync/atomic's typed value
// types (atomic.Int64, atomic.Uint32, atomic.Bool, atomic.Pointer[T],
// atomic.Value, …).
func isTypedAtomic(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		if alias, ok := t.(*types.Alias); ok {
			return isTypedAtomic(types.Unalias(alias))
		}
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
