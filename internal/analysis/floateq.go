package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq flags == and != between floating-point values everywhere
// outside internal/geom. Geometry coordinates accumulate rounding error
// through the predicate pipeline, so exact comparison is a correctness
// bug (a point computed two ways stops being "equal" to itself); the
// approved epsilon and predicate helpers live in internal/geom, which
// is the one package allowed to compare floats exactly — its helpers
// are reviewed against the relate-mask semantics.
//
// Comparisons against an untyped constant (sentinels like `w == 0`) are
// exempt: those check an exact bit pattern assigned earlier, not a
// computed coordinate.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= on floating-point values outside internal/geom's approved helpers",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) []Diag {
	pkg := pass.Pkg
	if pkg.Path == "spatialtf/internal/geom" || strings.HasSuffix(pkg.Path, "/internal/geom") {
		return nil
	}
	var diags []Diag
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pkg.Info, be.X) || !isFloat(pkg.Info, be.Y) {
				return true
			}
			if isConstExpr(pkg.Info, be.X) || isConstExpr(pkg.Info, be.Y) {
				return true
			}
			diags = append(diags, diag(pkg, "floateq", be.OpPos,
				"%s compares floats exactly: use the epsilon/predicate helpers in internal/geom", be.Op))
			return true
		})
	}
	return diags
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
