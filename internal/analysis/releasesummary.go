package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"spatialtf/internal/analysis/cfg"
)

// ReleaseSummary extends the pin/close discipline across function
// boundaries. pinTrees in join.go returns the unpin closure instead of
// unpinning — the caller owns the release now — and pinpair blesses
// that hand-off. This rule checks the other side of the contract:
// every function whose summary says "result i is a release func" has
// its callers verified. A caller must, on every return path, have
// called the release func, deferred it, or handed it off in turn
// (stored it, returned it, passed it on). Discarding it outright — an
// ExprStmt call, or assigning every release result to blank — is the
// immediate form of the same leak.
//
// Providers are discovered by the module summary pass (see
// BuildModule): a function qualifies when every return site yields
// nil, a closure or method value that performs a release, or another
// provider's result — so the set tracks the code, not a hand-kept
// list.
var ReleaseSummary = &Analyzer{
	Name: "releasesummary",
	Doc:  "a release/cancel func returned by a function must be called, deferred, or handed off by every caller",
	Run:  runReleaseSummary,
}

// relFact maps a live release-func obligation to where it was
// obtained.
type relFact map[types.Object]token.Pos

func runReleaseSummary(pass *Pass) []Diag {
	pkg := pass.Pkg
	var diags []Diag
	for _, f := range pkg.Files {
		for _, body := range funcScopes(f) {
			diags = append(diags, releaseSummaryFunc(pkg, pass.Mod, body)...)
		}
	}
	return diags
}

// providerResults returns the ReleaseResults summary of the function
// called by call, when any result is a release func.
func providerResults(pkg *Pkg, mod *Module, call *ast.CallExpr) []bool {
	fn := calleeFunc(pkg.Info, call)
	if fn == nil {
		return nil
	}
	sum := mod.SummaryOf(fn)
	if sum == nil {
		return nil
	}
	for _, r := range sum.ReleaseResults {
		if r {
			return sum.ReleaseResults
		}
	}
	return nil
}

func releaseSummaryFunc(pkg *Pkg, mod *Module, body *ast.BlockStmt) []Diag {
	info := pkg.Info
	parents := parentMap(body)
	var diags []Diag

	// Pass 1: find provider calls in this scope and what happens to
	// their release results syntactically. Discards are immediate
	// findings; named bindings become CFG obligations.
	obligations := make(map[*ast.AssignStmt][]types.Object)
	obligationObjs := make(map[types.Object]bool)
	obligationErr := make(map[types.Object]types.Object)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		results := providerResults(pkg, mod, call)
		if results == nil {
			return true
		}
		fnName := exprString(call.Fun)
		switch p := parents[call].(type) {
		case *ast.ExprStmt:
			diags = append(diags, diag(pkg, "releasesummary", call.Pos(),
				"release func returned by %s is discarded: call it, defer it, or hand it off", fnName))
		case *ast.AssignStmt:
			if enclosingFuncBody(parents, call, body) != body {
				return true
			}
			onRHS := false
			for _, rhs := range p.Rhs {
				if rhs == ast.Expr(call) {
					onRHS = true
				}
			}
			if !onRHS || len(p.Rhs) != 1 {
				return true
			}
			var errObj types.Object
			for _, lhs := range p.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if named, ok := obj.Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
					errObj = obj
				}
			}
			bound := false
			for i, lhs := range p.Lhs {
				if i >= len(results) || !results[i] {
					continue
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				obligations[p] = append(obligations[p], obj)
				obligationObjs[obj] = true
				if errObj != nil {
					obligationErr[obj] = errObj
				}
				bound = true
			}
			if !bound {
				diags = append(diags, diag(pkg, "releasesummary", call.Pos(),
					"release func returned by %s is discarded: call it, defer it, or hand it off", fnName))
			}
		}
		return true
	})
	if len(obligations) == 0 {
		return diags
	}

	// Pass 2: CFG dataflow — an obligation is discharged by calling the
	// func (plainly or deferred) or by any escaping use; whatever is
	// left on a return edge leaks.
	g := cfg.Build(body)
	fl := cfg.Flow[relFact]{
		Entry: relFact{},
		Join: func(a, b relFact) relFact {
			for obj, p := range b {
				if q, ok := a[obj]; !ok || p < q {
					a[obj] = p
				}
			}
			return a
		},
		Equal: func(a, b relFact) bool {
			if len(a) != len(b) {
				return false
			}
			for obj, p := range a {
				if q, ok := b[obj]; !ok || p != q {
					return false
				}
			}
			return true
		},
		Clone: func(f relFact) relFact {
			c := make(relFact, len(f))
			for obj, p := range f {
				c[obj] = p
			}
			return c
		},
		Transfer: func(n cfg.Node, f relFact) relFact {
			if as, ok := n.N.(*ast.AssignStmt); ok {
				for _, obj := range obligations[as] {
					f[obj] = as.Pos()
				}
			}
			ast.Inspect(n.N, func(x ast.Node) bool {
				id, ok := x.(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.Uses[id]
				if obj == nil || !obligationObjs[obj] {
					return true
				}
				if _, live := f[obj]; !live {
					return true
				}
				// Calling it — plainly or deferred — or any other use
				// (returned, stored, passed, captured) discharges; a
				// bare nil check does not.
				if bin, ok := parents[id].(*ast.BinaryExpr); ok &&
					(bin.Op == token.EQL || bin.Op == token.NEQ) &&
					(isNilIdent(bin.X) || isNilIdent(bin.Y)) {
					return true
				}
				delete(f, obj)
				return true
			})
			return f
		},
		Edge: func(e cfg.Edge, f relFact) relFact {
			// Two excused paths: the provider's own error path (the
			// release func is nil by the provider contract), and a
			// branch on which the func itself is known nil.
			if errObj := errNonNilOn(info, e); errObj != nil {
				for obj := range f {
					if obligationErr[obj] == errObj {
						delete(f, obj)
					}
				}
			}
			if obj := nilOn(info, e); obj != nil {
				delete(f, obj)
			}
			return f
		},
	}
	in := cfg.Solve(g, fl)
	reported := make(map[types.Object]map[token.Pos]bool)
	for _, ef := range cfg.Exits(g, fl, in) {
		if ef.Edge.Kind != cfg.EdgeReturn {
			continue
		}
		retPos := body.End()
		if len(ef.Block.Nodes) > 0 {
			if ret, ok := ef.Block.Nodes[len(ef.Block.Nodes)-1].(*ast.ReturnStmt); ok {
				retPos = ret.Pos()
			}
		}
		for obj, openPos := range ef.Fact {
			if reported[obj] == nil {
				reported[obj] = make(map[token.Pos]bool)
			}
			if reported[obj][retPos] {
				continue
			}
			reported[obj][retPos] = true
			diags = append(diags, diag(pkg, "releasesummary", retPos,
				"return leaks release func %q (obtained at line %d): call it, defer it, or hand it off on this path",
				obj.Name(), pkg.Fset.Position(openPos).Line))
		}
	}
	return diags
}

// nilOn returns the object known to be nil along e (the true leg of
// `x == nil` or the false leg of `x != nil`), or nil.
func nilOn(info *types.Info, e cfg.Edge) types.Object {
	bin, ok := e.Cond.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	var nilBranch bool
	switch bin.Op {
	case token.EQL:
		nilBranch = true
	case token.NEQ:
		nilBranch = false
	default:
		return nil
	}
	if e.Branch != nilBranch {
		return nil
	}
	x := bin.X
	if isNilIdent(x) {
		x = bin.Y
	} else if !isNilIdent(bin.Y) {
		return nil
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}
