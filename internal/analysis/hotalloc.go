package analysis

// HotAlloc is the hot-path allocation lint: on a declared hot function,
// every may-reached allocation is a finding. The hot set is the union
// of
//
//   - functions whose doc comment carries a //spatiallint:hot line, and
//   - the seeded roots below — the per-row and per-frame loops this
//     codebase lives on: the plane-sweep inner loops of the spatial
//     join, the table-function Fetch batch loops, the R-tree node
//     scans, the pager's pin and WAL-append paths, and the wire frame
//     encoders.
//
// Findings come in four shapes: a direct allocation site in the hot
// function (from its AllocSites summary), a call to a module function
// whose summary allocates (reported at the call with the via-chain to
// the deepest sites), and the sub-diagnostics — defer inside a loop
// (a deferred frame per iteration), map iteration inside a hot loop,
// and pool bypass (allocating a type that has a sync.Pool instead of
// getting from the pool).
//
// Deliberate allocations — the per-batch output slice of a Fetch, a
// cache miss that must decode and retain — are suppressed in place
// with a justified //spatiallint:ignore hotalloc directive; the
// justification requirement keeps the hot set honest.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no hidden allocations on declared hot paths (interprocedural escape analysis)",
	Run:  runHotAlloc,
}

// hotSeeds lists the seeded hot roots per package-path suffix, spelled
// as declNameOf renders them ("Name" or "Type.Method"). The testdata
// entry exercises the seeding machinery in the golden fixture.
var hotSeeds = map[string][]string{
	"internal/sjoin": {
		"JoinFunction.Fetch", "JoinFunction.fillCandidates", "JoinFunction.sweepPair",
		"JoinFunction.emitLeafPair", "JoinFunction.secondaryFilter", "JoinFunction.fetchGeom",
		"GridJoinFunction.Fetch", "gridState.sweepTile", "assignGrid",
	},
	"internal/tablefunc": {"pipelineCursor.Next", "parallelCursor.Next"},
	"internal/rtree": {
		"Tree.Search", "Tree.SearchCounted", "Tree.SearchWithinDist", "Tree.SearchWithinDistCounted",
	},
	"internal/pager": {"Mem.Pin", "Store.pin", "appendWALRecord"},
	// The coordinator's merge loop; the remote fetch itself is excluded
	// because wire decoding allocates its row batches by design.
	"internal/cluster":                        {"gatherCursor.Next"},
	"internal/storage":                        {"Heap.fetchLocked", "Table.FetchColumn"},
	"internal/wire":                           {"WriteFrame", "AppendBatch"},
	"internal/analysis/testdata/src/hotalloc": {"SeededScan"},
}

const hotPrefix = "//spatiallint:hot"

// poolDecl records one sync.Pool whose New closure builds a known type.
type poolDecl struct {
	pkg *Pkg
	pos token.Pos
}

// hotFuncs returns (cached) the module's hot set, keyed by FuncKey,
// and builds the sync.Pool census alongside it.
func (m *Module) hotFuncs() map[string]bool {
	m.hotOnce.Do(func() {
		m.hotFns = make(map[string]bool)
		m.poolTys = make(map[string]poolDecl)
		for _, key := range sortedKeys(m.fns) {
			s := m.fns[key]
			if hotAnnotated(s.Decl) || hotSeeded(s) {
				m.hotFns[key] = true
			}
		}
		for _, pkg := range m.pkgs {
			for _, f := range pkg.Files {
				collectPools(pkg, f, m.poolTys)
			}
		}
	})
	return m.hotFns
}

// pooledTypes returns the census of types built by sync.Pool New
// closures, keyed by their qualified type string.
func (m *Module) pooledTypes() map[string]poolDecl {
	m.hotFuncs()
	return m.poolTys
}

func hotAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotPrefix) {
			return true
		}
	}
	return false
}

func hotSeeded(s *FuncSummary) bool {
	name := declNameOf(s.Decl)
	for suffix, names := range hotSeeds {
		if s.Pkg.Path != suffix && !strings.HasSuffix(s.Pkg.Path, "/"+suffix) {
			continue
		}
		for _, n := range names {
			if n == name {
				return true
			}
		}
	}
	return false
}

// collectPools finds sync.Pool composite literals and records the type
// their New closure allocates.
func collectPools(pkg *Pkg, f *ast.File, out map[string]poolDecl) {
	ast.Inspect(f, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := pkg.Info.Types[cl]
		if !ok || tv.Type == nil || !strings.HasSuffix(tv.Type.String(), "sync.Pool") {
			return true
		}
		for _, elt := range cl.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if id, ok := kv.Key.(*ast.Ident); !ok || id.Name != "New" {
				continue
			}
			fl, ok := kv.Value.(*ast.FuncLit)
			if !ok {
				continue
			}
			for _, ret := range scopeReturns(fl.Body) {
				if len(ret.Results) != 1 {
					continue
				}
				if t := allocatedType(pkg.Info, ret.Results[0]); t != nil {
					out[types.TypeString(t, nil)] = poolDecl{pkg: pkg, pos: cl.Pos()}
				}
			}
		}
		return true
	})
}

// allocatedType resolves the type an allocation expression builds:
// new(T) and &T{} yield T, make(S, …) yields S. Returns nil for
// anything else.
func allocatedType(info *types.Info, e ast.Expr) types.Type {
	switch e := e.(type) {
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok {
			return nil
		}
		b, ok := info.Uses[id].(*types.Builtin)
		if !ok {
			return nil
		}
		switch b.Name() {
		case "new":
			if tv, ok := info.Types[e]; ok && tv.Type != nil {
				if ptr, ok := tv.Type.Underlying().(*types.Pointer); ok {
					return ptr.Elem()
				}
			}
		case "make":
			if tv, ok := info.Types[e]; ok {
				return tv.Type
			}
		}
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return nil
		}
		if cl, ok := e.X.(*ast.CompositeLit); ok {
			if tv, ok := info.Types[cl]; ok {
				return tv.Type
			}
		}
	}
	return nil
}

// --- the rule ---

func runHotAlloc(pass *Pass) []Diag {
	m := pass.Mod
	hot := m.hotFuncs()
	var diags []Diag
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok || !hot[FuncKey(fn)] {
				continue
			}
			s := m.SummaryOf(fn)
			if s == nil {
				continue
			}
			diags = append(diags, hotDirectDiags(pass, s)...)
			diags = append(diags, hotCallDiags(pass, s, m, hot)...)
			diags = append(diags, hotLoopDiags(pass, fd)...)
			diags = append(diags, hotPoolDiags(pass, s, m)...)
		}
	}
	return diags
}

// hotDirectDiags reports the function's own allocation sites.
func hotDirectDiags(pass *Pass, s *FuncSummary) []Diag {
	var diags []Diag
	for _, site := range s.AllocSites {
		var msg string
		switch site.Kind {
		case AllocAppend:
			msg = fmt.Sprintf("hot path allocation: append growth in %s", site.What)
		case AllocConvert:
			msg = fmt.Sprintf("hot path allocation: copying conversion %s", site.What)
		case AllocBox:
			msg = fmt.Sprintf("hot path allocation: %s boxed into interface", site.What)
		case AllocClosure:
			msg = fmt.Sprintf("hot path allocation: closure (%s)", site.Esc)
		default:
			msg = fmt.Sprintf("hot path allocation: %s (%s)", site.What, site.Esc)
		}
		diags = append(diags, diag(pass.Pkg, "hotalloc", site.Pos, "%s", msg))
	}
	return diags
}

// hotCallDiags reports calls to non-hot module functions whose
// summaries allocate, with the via-chain to the deepest sites. Calls
// to functions that are themselves hot are skipped: their sites are
// triaged where they live.
func hotCallDiags(pass *Pass, s *FuncSummary, m *Module, hot map[string]bool) []Diag {
	info := pass.Pkg.Info
	cold := m.coldFor(s)
	var diags []Diag
	ast.Inspect(s.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if inCold(cold, call.Pos()) {
			return false
		}
		fn := calleeFunc(info, call)
		sum := m.SummaryOf(fn)
		if sum == nil || sum == s || hot[FuncKey(sum.Fn)] {
			return true
		}
		entries := calleeAllocEntries(sum)
		if len(entries) == 0 {
			return true
		}
		const show = 3
		shown := entries
		var more string
		if len(entries) > show {
			shown = entries[:show]
			more = fmt.Sprintf(" (and %d more)", len(entries)-show)
		}
		diags = append(diags, diag(pass.Pkg, "hotalloc", call.Pos(),
			"hot path call to %s allocates: %s%s", declNameOf(sum.Decl), strings.Join(shown, "; "), more))
		return true
	})
	return diags
}

// calleeAllocEntries renders a callee's allocation summary, direct
// sites first, each as "what at file.go:NN[ via chain]".
func calleeAllocEntries(sum *FuncSummary) []string {
	var out []string
	for _, site := range sum.AllocSites {
		out = append(out, fmt.Sprintf("%s at %s", site.What, shortPos(sum.Pkg, site.Pos)))
	}
	for _, k := range sortedKeys(sum.TransAllocs) {
		ta := sum.TransAllocs[k]
		out = append(out, fmt.Sprintf("%s at %s via %s", ta.What, ta.Where, ta.Via))
	}
	return out
}

// hotLoopDiags reports the loop-shape sub-diagnostics: defer inside a
// loop, and map iteration inside a loop. Both walk only the hot
// function's own statements — a nested closure runs on its own
// schedule, not once per enclosing iteration.
func hotLoopDiags(pass *Pass, fd *ast.FuncDecl) []Diag {
	var diags []Diag
	var walk func(n ast.Node, loops int)
	walk = func(n ast.Node, loops int) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt:
				if x.Body != nil {
					walk(x.Body, loops+1)
				}
				return false
			case *ast.RangeStmt:
				if loops > 0 && isMapRange(pass.Pkg.Info, x) {
					diags = append(diags, diag(pass.Pkg, "hotalloc", x.Pos(),
						"map iteration inside a hot loop: order is randomized each pass; iterate a sorted slice instead"))
				}
				if x.Body != nil {
					walk(x.Body, loops+1)
				}
				return false
			case *ast.DeferStmt:
				if loops > 0 {
					diags = append(diags, diag(pass.Pkg, "hotalloc", x.Pos(),
						"defer inside a hot loop: a deferred frame is queued every iteration; hoist it out of the loop"))
				}
			}
			return true
		})
	}
	walk(fd.Body, 0)
	return diags
}

func isMapRange(info *types.Info, r *ast.RangeStmt) bool {
	tv, ok := info.Types[r.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// hotPoolDiags reports pool bypass: a make/new/&T{} in a hot function
// whose type has a sync.Pool somewhere in the module. Escape does not
// matter — even a non-escaping use should go through the pool so the
// pooled buffers stay warm.
func hotPoolDiags(pass *Pass, s *FuncSummary, m *Module) []Diag {
	pools := m.pooledTypes()
	if len(pools) == 0 {
		return nil
	}
	var diags []Diag
	ast.Inspect(s.Decl.Body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		t := allocatedType(pass.Pkg.Info, e)
		if t == nil {
			return true
		}
		key := types.TypeString(t, nil)
		pd, ok := pools[key]
		if !ok {
			return true
		}
		diags = append(diags, diag(pass.Pkg, "hotalloc", e.Pos(),
			"hot path allocates %s which has a sync.Pool (declared at %s); get from the pool instead",
			key, shortPos(pd.pkg, pd.pos)))
		return false
	})
	return diags
}

// --- allocation-graph dump ---

// AllocGraphDot renders the module's hot-path allocation flow for
// `spatiallint -allocgraph`: hot roots (red) with edges to the module
// callees they reach, each node labelled with its direct allocation
// site count, pruned to the subgraph that actually allocates.
func AllocGraphDot(mod *Module) string {
	hot := mod.hotFuncs()
	type node struct {
		label string
		sites int
		hot   bool
	}
	nodes := make(map[string]node)
	edges := make(map[string]map[string]bool)

	var visit func(key string)
	visit = func(key string) {
		if _, ok := nodes[key]; ok {
			return
		}
		s := mod.fns[key]
		if s == nil {
			return
		}
		nodes[key] = node{
			label: strings.TrimPrefix(s.Pkg.Path, "spatialtf/") + "." + declNameOf(s.Decl),
			sites: len(s.AllocSites),
			hot:   hot[key],
		}
		cold := mod.coldFor(s)
		ast.Inspect(s.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if inCold(cold, call.Pos()) {
				return false
			}
			fn := calleeFunc(s.Pkg.Info, call)
			sum := mod.SummaryOf(fn)
			if sum == nil || sum == s {
				return true
			}
			if len(sum.AllocSites) == 0 && len(sum.TransAllocs) == 0 {
				return true
			}
			ck := FuncKey(sum.Fn)
			if edges[key] == nil {
				edges[key] = make(map[string]bool)
			}
			edges[key][ck] = true
			visit(ck)
			return true
		})
	}
	for _, key := range sortedKeys(mod.fns) {
		if hot[key] {
			visit(key)
		}
	}

	var b strings.Builder
	b.WriteString("digraph hotalloc {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, key := range sortedKeys(nodes) {
		n := nodes[key]
		// Interior nodes that neither allocate nor are hot are kept only
		// for connectivity; they still carry their zero count.
		attr := fmt.Sprintf("label=\"%s\\n%d direct site(s)\"", n.label, n.sites)
		if n.hot {
			attr += ", color=red, penwidth=2"
		}
		fmt.Fprintf(&b, "  %q [%s];\n", key, attr)
	}
	for _, from := range sortedKeys(edges) {
		for _, to := range sortedKeys(edges[from]) {
			fmt.Fprintf(&b, "  %q -> %q;\n", from, to)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
