// Package floateq is the golden-file fixture for the floateq analyzer:
// no ==/!= on floating-point values outside internal/geom.
package floateq

type coord struct{ x, y float64 }

func exactEqual(a, b float64) bool {
	return a == b // want `== compares floats exactly`
}

func exactNotEqual(p, q coord) bool {
	return p.x != q.x // want `!= compares floats exactly`
}

type meters float64

func namedFloat(a, b meters) bool {
	return a == b // want `== compares floats exactly`
}

func sentinelIsFine(w float64) bool {
	return w == 0
}

func intsAreFine(a, b int) bool {
	return a == b
}

func orderingIsFine(a, b float64) bool {
	return a < b || a > b
}
