// Package goleak is the golden-file fixture for the goleak analyzer:
// a goroutine spawned in the server/join machinery must carry
// accounting evidence — WaitGroup bookkeeping, a channel operation, a
// select, or a callee whose summary has the same — tying it to a join
// point or shutdown path.
package goleak

import (
	"sync"
	"sync/atomic"
)

func work() {}

func bareGoroutineLeaks() {
	go func() { // want `goroutine is not joined`
		work()
	}()
}

func namedGoroutineLeaks() {
	go work() // want `goroutine is not joined`
}

func joinedByWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func joinedByChannel() <-chan int {
	out := make(chan int, 1)
	go func() {
		out <- 1
		close(out)
	}()
	return out
}

func tiedToShutdownSelect(stop <-chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

// pump sends on its channel and closes it: its summary is accounted,
// so spawning it by name passes transitively.
func pump(out chan<- int) {
	out <- 1
	close(out)
}

func accountedCallee() <-chan int {
	out := make(chan int, 1)
	go pump(out)
	return out
}

func rangesOverChannel(in <-chan int) {
	go func() {
		for v := range in {
			_ = v
		}
	}()
}

// workerPool is the grid-join shape: N workers claim task indices off a
// shared atomic cursor until it runs dry, joined by a WaitGroup. The
// claim loop itself is not accounting evidence — the wg.Done/Wait pair
// is what ties the workers to the caller.
func workerPool(tasks []func()) {
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if int(i) >= len(tasks) {
					return
				}
				tasks[i]()
			}
		}()
	}
	wg.Wait()
}

// unjoinedWorkerPool claims off the same shared cursor but nothing
// waits for the workers: the atomic traffic alone must not count as a
// join point.
func unjoinedWorkerPool(tasks []func()) {
	var next atomic.Int64
	for w := 0; w < 4; w++ {
		go func() { // want `goroutine is not joined`
			for {
				i := next.Add(1) - 1
				if int(i) >= len(tasks) {
					return
				}
				tasks[i]()
			}
		}()
	}
}
