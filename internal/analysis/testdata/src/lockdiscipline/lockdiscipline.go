// Package lockdiscipline is the golden-file fixture for the
// lockdiscipline analyzer: no mutex held across a channel operation, a
// cursor Fetch, or a wire write.
package lockdiscipline

import (
	"bufio"
	"sync"

	"spatialtf/internal/storage"
	"spatialtf/internal/tablefunc"
	"spatialtf/internal/wire"
)

func sendWhileLocked(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1 // want `channel send while mu is held`
	mu.Unlock()
}

func receiveWhileDeferLocked(mu *sync.RWMutex, ch chan int) int {
	mu.RLock()
	defer mu.RUnlock()
	return <-ch // want `channel receive while mu is held`
}

func fetchWhileLocked(mu *sync.Mutex, cur *wire.Cursor) error {
	mu.Lock()
	defer mu.Unlock()
	_, _, err := cur.Fetch(0) // want `cursor Fetch \(network round trip\) while mu is held`
	return err
}

func wireWriteWhileLocked(mu *sync.Mutex, bw *bufio.Writer) error {
	mu.Lock()
	defer mu.Unlock()
	return wire.WriteFrame(bw, wire.FrameError, nil) // want `wire WriteFrame while mu is held`
}

func flushWhileLocked(mu *sync.Mutex, bw *bufio.Writer) error {
	mu.Lock()
	defer mu.Unlock()
	return bw.Flush() // want `bufio\.Writer\.Flush \(socket write\) while mu is held`
}

func selectWhileLocked(mu *sync.Mutex, a, b chan int) {
	mu.Lock()
	defer mu.Unlock()
	select { // want `select without default while mu is held`
	case <-a:
	case <-b:
	}
}

func releaseBeforeSend(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	v := 1
	mu.Unlock()
	ch <- v
}

func nonBlockingSelectIsFine(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

func goroutineHasOwnLockState(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	go func() {
		ch <- 1
	}()
}

// --- interprocedural: blocking and re-acquisition hide in callees ---

func blocksOnChannel(ch chan int) {
	ch <- 1
}

func callBlockingWhileLocked(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	blocksOnChannel(ch) // want `call into blocksOnChannel \(can block: channel send\) while mu is held`
}

type guarded struct {
	mu sync.Mutex
}

func (g *guarded) lockIt() {
	g.mu.Lock()
	g.mu.Unlock()
}

func (g *guarded) reenter() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.lockIt() // want `call into lockIt acquires lockdiscipline\.guarded\.mu while g\.mu is already held`
}

// --- closures that run on other goroutines get fresh lock state ---

func deferredClosureHasOwnLockState(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	defer func() {
		ch <- 1
	}()
}

func parallelFactoryHasOwnLockState(mu *sync.Mutex, ch chan int, parts []storage.Cursor) storage.Cursor {
	mu.Lock()
	defer mu.Unlock()
	return tablefunc.Parallel(parts, func(int, storage.Cursor) (tablefunc.TableFunction, error) {
		ch <- 1
		return nil, nil
	}, 4)
}
