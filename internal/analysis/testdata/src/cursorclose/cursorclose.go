// Package cursorclose is the golden-file fixture for the cursorclose
// analyzer: an opened cursor must be Closed on every path or handed
// off.
package cursorclose

import "spatialtf/internal/storage"

func neverClosed(t *storage.Table) int {
	cur := storage.NewCursor(t) // want `cursor "cur" is opened here but never Closed`
	n := 0
	for {
		_, _, ok, err := cur.Next()
		if err != nil || !ok {
			return n
		}
		n++
	}
}

func leaksOnErrorReturn(t *storage.Table) error {
	cur := storage.NewCursor(t)
	for {
		_, _, ok, err := cur.Next()
		if err != nil {
			return err // want `return leaks cursor "cur"`
		}
		if !ok {
			break
		}
	}
	return cur.Close()
}

func deferredClose(t *storage.Table) error {
	cur := storage.NewCursor(t)
	defer cur.Close()
	for {
		_, _, ok, err := cur.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

func open(t *storage.Table) (storage.Cursor, error) {
	return storage.NewCursor(t), nil
}

func errGuardIsNotALeak(t *storage.Table) error {
	cur, err := open(t)
	if err != nil {
		return err
	}
	_, _, ok, err := cur.Next()
	_ = ok
	if err != nil {
		cur.Close()
		return err
	}
	return cur.Close()
}

func ownershipTransfers(t *storage.Table) storage.Cursor {
	cur := storage.NewCursor(t)
	return cur
}

func drainCloses(t *storage.Table) error {
	cur := storage.NewCursor(t)
	_, _, err := storage.Drain(cur)
	return err
}
