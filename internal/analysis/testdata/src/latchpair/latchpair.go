// Package latchpair is the golden-file fixture for the latchpair
// analyzer: a pinned buffer-pool frame must be Unpinned on every path
// or handed off.
package latchpair

import "spatialtf/internal/pager"

func neverUnpinned(sp pager.Space) uint16 {
	f, err := sp.Pin(1) // want `frame "f" is pinned here but never Unpinned`
	if err != nil {
		return 0
	}
	return f.Kind()
}

func leaksOnErrorReturn(sp pager.Space, check func([]byte) error) error {
	f, err := sp.Pin(1)
	if err != nil {
		return err
	}
	if err := check(f.Data()); err != nil {
		return err // want `return leaks pinned frame "f"`
	}
	f.Unpin()
	return nil
}

func deferredUnpin(sp pager.Space, check func([]byte) error) error {
	f, err := sp.Pin(1)
	if err != nil {
		return err
	}
	defer f.Unpin()
	return check(f.Data())
}

func unpinOnAllPaths(sp pager.Space, check func([]byte) error) error {
	f, err := sp.Pin(1)
	if err != nil {
		return err
	}
	if err := check(f.Data()); err != nil {
		f.Unpin()
		return err
	}
	f.Unpin()
	return nil
}

// errGuardIsNotALeak: the pin's own error path never held the latch,
// so returning there is fine — but only before the frame is used.
func errGuardIsNotALeak(sp pager.Space) error {
	f, err := sp.Pin(7)
	if err != nil {
		return err
	}
	f.Unpin()
	return nil
}

// escapeByReturn hands the pinned frame to the caller, transferring
// the obligation.
func escapeByReturn(sp pager.Space) (*pager.Frame, error) {
	f, err := sp.Allocate(sp.Begin(), pager.KindSlotted)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// escapeByStore parks pinned frames in a slice the caller drains.
func escapeByStore(sp pager.Space, out *[]*pager.Frame) error {
	f, err := sp.Pin(3)
	if err != nil {
		return err
	}
	*out = append(*out, f)
	return nil
}

// allocateLeak: allocation pins too.
func allocateLeak(sp pager.Space) (uint32, error) {
	tx := sp.Begin()
	f, err := sp.Allocate(tx, pager.KindSlotted) // want `frame "f" is pinned here but never Unpinned`
	if err != nil {
		return 0, err
	}
	return f.ID(), nil
}
