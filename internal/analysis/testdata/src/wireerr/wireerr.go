// Package wireerr is the golden-file fixture for the wireerr analyzer:
// error results of wire write/encode/flush calls must be checked.
package wireerr

import (
	"bufio"

	"spatialtf/internal/storage"
	"spatialtf/internal/wire"
)

func dropsFrameWrite(bw *bufio.Writer) {
	wire.WriteFrame(bw, wire.FrameError, nil) // want `error result of wire\.WriteFrame is discarded`
	bw.Flush()                                // want `error result of bufio\.Flush is discarded`
}

func dropsDeferredFlush(bw *bufio.Writer) error {
	defer bw.Flush() // want `deferred error result of bufio\.Flush is discarded`
	return wire.WriteMagic(bw)
}

func dropsBlanked(bw *bufio.Writer) {
	_ = wire.WriteMagic(bw) // want `blanked error result of wire\.WriteMagic is discarded`
}

func dropsEncode(schema []storage.Column, row storage.Row) {
	storage.EncodeRow(schema, row) // want `error result of storage\.EncodeRow is discarded`
}

func checked(bw *bufio.Writer) error {
	if err := wire.WriteFrame(bw, wire.FrameError, nil); err != nil {
		return err
	}
	return bw.Flush()
}

func closeIsExempt(cl *wire.Client) {
	defer cl.Close()
}
