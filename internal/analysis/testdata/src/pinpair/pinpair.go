// Package pinpair is the golden-file fixture for the pinpair analyzer:
// every rtree.Tree.Pin() must be released by a defer, on all paths, or
// by an escaping release func.
package pinpair

import "spatialtf/internal/rtree"

func leaksForever(t *rtree.Tree) {
	t.Pin() // want `t\.Pin\(\) is not released on the return path`
}

func leaksOnEarlyReturn(t *rtree.Tree, cond bool) {
	t.Pin() // want `t\.Pin\(\) is not released on the return path`
	if cond {
		return
	}
	t.Unpin()
}

func deferredPair(t *rtree.Tree) {
	t.Pin()
	defer t.Unpin()
}

func releasedOnAllPaths(t *rtree.Tree, cond bool) {
	t.Pin()
	if cond {
		t.Unpin()
		return
	}
	t.Unpin()
}

func handsReleaseToCaller(t *rtree.Tree) func() {
	t.Pin()
	return t.Unpin
}

func closurePair(a, b *rtree.Tree) func() {
	if a.Seq() > b.Seq() {
		a, b = b, a
	}
	a.Pin()
	b.Pin()
	return func() {
		b.Unpin()
		a.Unpin()
	}
}

// earlyEscapeDoesNotCoverLaterPin repins after an early branch already
// handed its release to the caller: the second Pin leaks — the escape
// at the first return must not excuse it.
func earlyEscapeDoesNotCoverLaterPin(a, b *rtree.Tree) func() {
	if a == b {
		a.Pin()
		return a.Unpin
	}
	a.Pin() // want `a\.Pin\(\) is not released on the return path`
	b.Pin()
	return func() {
		b.Unpin()
	}
}

func deferredClosure(a, b *rtree.Tree) {
	a.Pin()
	b.Pin()
	defer func() {
		b.Unpin()
		a.Unpin()
	}()
}
