// Package hotalloc is the golden-file fixture for the hotalloc
// analyzer: no hidden allocations on declared hot paths. It exercises
// both ways into the hot set (//spatiallint:hot annotations and the
// seeded-roots table, which names SeededScan below), every finding
// shape, and the exemptions that keep the rule quiet on idiomatic
// allocation-free code.
package hotalloc

import (
	"fmt"
	"sync"
)

type sink struct{ b []byte }

// --- direct sites and the self-append exemption ---

//spatiallint:hot
func Hot(n int) []int {
	out := make([]int, 0, n) // want `hot path allocation: make\(\[\]int, 0, n\) \(escapes to caller\)`
	for i := 0; i < n; i++ {
		out = append(out, i) // self-append: amortised growth, exempt
	}
	return out
}

//spatiallint:hot
func HotConvert(s string) []byte {
	return []byte(s) // want `hot path allocation: copying conversion \[\]byte\(s\)`
}

// --- transitive sites with via-chains ---

func deepHelper() *sink {
	return &sink{} // two hops below the hot function
}

func helper() *sink {
	return deepHelper()
}

//spatiallint:hot
func HotTrans() *sink {
	return helper() // want `hot path call to helper allocates: &sink\{\} at hotalloc\.go:\d+ via deepHelper`
}

// --- loop-shape sub-diagnostics ---

//spatiallint:hot
func HotLoop(closers []func() error, m map[string]int) int {
	for _, c := range closers {
		defer c() // want `defer inside a hot loop: a deferred frame is queued every iteration; hoist it out of the loop`
	}
	total := 0
	for range closers {
		for k := range m { // want `map iteration inside a hot loop: order is randomized each pass; iterate a sorted slice instead`
			total += m[k]
		}
	}
	return total
}

// --- pool bypass ---

type buffer struct{ b [256]byte }

var bufPool = sync.Pool{New: func() any { return new(buffer) }}

//spatiallint:hot
func HotPool() int {
	b := new(buffer) // want `hot path allocates .*hotalloc\.buffer which has a sync\.Pool \(declared at hotalloc\.go:\d+\); get from the pool instead`
	return len(b.b)
}

// --- interface boxing ---

//spatiallint:hot
func HotBox(vs []int) []any {
	out := make([]any, 0, len(vs)) // want `hot path allocation: make\(\[\]any, 0, len\(vs\)\) \(escapes to caller\)`
	for _, v := range vs {
		out = append(out, v) // want `hot path allocation: v boxed into interface`
	}
	return out
}

// --- escaping closures ---

//spatiallint:hot
func HotClosure(n int) func() int {
	return func() int { return n } // want `hot path allocation: closure \(escapes to caller\)`
}

// --- exemptions: none of the following may produce findings ---

// SeededScan is hot via the seeded-roots table, not an annotation; the
// conversion inside the loop proves the seeding took.
func SeededScan(dst []byte, src []string) ([]byte, []byte) {
	var last []byte
	for _, s := range src {
		dst = append(dst, s...) // append to a parameter: caller's buffer, exempt
		last = []byte(s)        // want `hot path allocation: copying conversion \[\]byte\(s\)`
	}
	return dst, last
}

func each(xs []int, f func(int)) {
	for _, x := range xs {
		f(x)
	}
}

//spatiallint:hot
func HotEach(xs []int) int {
	sum := 0
	each(xs, func(v int) { sum += v }) // callee only invokes f: closure does not escape
	return sum
}

//spatiallint:hot
func HotErr(xs []int, i int) (int, error) {
	if i >= len(xs) {
		return 0, fmt.Errorf("hotalloc: index %d out of range", i) // failure exit: cold
	}
	return xs[i], nil
}

// Cold is not hot: its allocation is nobody's business.
func Cold(n int) []int {
	return make([]int, n)
}
