// Package suppress is the fixture for //spatiallint:ignore directives:
// three suppression placements that must silence a finding, one
// malformed directive that must be reported, and one live finding.
package suppress

func sameLine(a, b float64) bool {
	return a == b //spatiallint:ignore floateq fixture: same-line suppression
}

func lineAbove(a, b float64) bool {
	//spatiallint:ignore floateq fixture: line-above suppression
	return a == b
}

// suppressedFunc compares floats twice; the doc directive silences the
// whole function.
//
//spatiallint:ignore floateq fixture: function-level suppression
func suppressedFunc(a, b float64) bool {
	if a != b {
		return false
	}
	return a == b
}

func missingReason(a, b float64) bool {
	//spatiallint:ignore floateq
	return a == b
}
