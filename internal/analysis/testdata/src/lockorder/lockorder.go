// Package lockorder is the golden-file fixture for the lockorder
// analyzer: lock acquisition order must be acyclic across the module.
package lockorder

import "sync"

// --- direct two-lock cycle ---

type pair struct {
	a, b sync.Mutex
}

// lockAB holds a while taking b; with lockBA below that closes the
// cycle a → b → a. The report lands on this side because the cycle is
// rendered starting from its smallest lock identity.
func (p *pair) lockAB() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock() // want `potential deadlock: lock order cycle lockorder\.pair\.a → lockorder\.pair\.b → lockorder\.pair\.a`
	p.b.Unlock()
}

// lockBA holds b while taking a — the other half of the cycle.
func (p *pair) lockBA() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock()
	p.a.Unlock()
}

// --- interprocedural cycle: the acquisitions hide in callees ---

type inter struct {
	c, d sync.Mutex
}

func (i *inter) lockD() {
	i.d.Lock()
	i.d.Unlock()
}

func (i *inter) lockC() {
	i.c.Lock()
	i.c.Unlock()
}

// lockCD holds c across a call whose summary says it acquires d.
func (i *inter) lockCD() {
	i.c.Lock()
	defer i.c.Unlock()
	i.lockD() // want `potential deadlock: lock order cycle lockorder\.inter\.c → lockorder\.inter\.d → lockorder\.inter\.c`
}

// lockDC holds d across a call that acquires c.
func (i *inter) lockDC() {
	i.d.Lock()
	defer i.d.Unlock()
	i.lockC()
}

// --- negatives ---

// ordered: every function takes x before y, so the order graph has the
// single edge x → y and no cycle.
type ordered struct {
	x, y sync.Mutex
}

func (o *ordered) first() {
	o.x.Lock()
	defer o.x.Unlock()
	o.y.Lock()
	o.y.Unlock()
}

func (o *ordered) second() {
	o.x.Lock()
	o.y.Lock()
	o.y.Unlock()
	o.x.Unlock()
}

// localLocks: function-local mutexes have no global identity; opposite
// orders here say nothing about cross-goroutine interleavings of the
// same instances.
func localLocks() {
	var m1, m2 sync.Mutex
	m1.Lock()
	m2.Lock()
	m2.Unlock()
	m1.Unlock()
}

func localLocksReversed() {
	var m1, m2 sync.Mutex
	m2.Lock()
	m1.Lock()
	m1.Unlock()
	m2.Unlock()
}

// releasedBetween: y is taken after x is released, so no x → y edge
// exists and the y-before-x order elsewhere cannot form a cycle.
type released struct {
	x, y sync.Mutex
}

func (r *released) xThenYReleased() {
	r.x.Lock()
	r.x.Unlock()
	r.y.Lock()
	r.y.Unlock()
}

func (r *released) yHoldingX() {
	r.y.Lock()
	defer r.y.Unlock()
	r.x.Lock()
	r.x.Unlock()
}
