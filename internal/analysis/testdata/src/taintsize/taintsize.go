// Package taintsize is the golden-file fixture for the taintsize
// analyzer: a count decoded from raw bytes must pass a bound check
// before it sizes an allocation. The decode helpers are local so the
// module summary pass (which sees only this package in the harness)
// can summarize them.
package taintsize

import (
	"bufio"
	"bytes"
	"encoding/binary"
)

func unboundedMake(b []byte) []byte {
	n, _ := binary.Uvarint(b)
	return make([]byte, n) // want `allocation sized by "n".*reaches this make without a bound check`
}

func boundCheckSanitizes(b []byte) []byte {
	n, _ := binary.Uvarint(b)
	if n > uint64(len(b)) {
		return nil
	}
	return make([]byte, n)
}

func minLaunders(b []byte) []byte {
	n, _ := binary.Uvarint(b)
	return make([]byte, min(n, 1<<16))
}

func uint32IsUnbounded(b []byte) []uint32 {
	n := binary.LittleEndian.Uint32(b)
	return make([]uint32, n) // want `allocation sized by "n".*reaches this make without a bound check`
}

func uint16IsBounded(b []byte) []byte {
	n := binary.LittleEndian.Uint16(b)
	return make([]byte, n) // 65535 bytes at worst: not a source
}

func unboundedGrow(br *bufio.Reader) (*bytes.Buffer, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Grow(int(n)) // want `allocation sized by "int\(n\)".*reaches this Grow without a bound check`
	return &buf, nil
}

// rowCount returns the raw decoded count: its summary marks result 0
// tainted, so callers inherit the obligation to check it.
func rowCount(b []byte) uint64 {
	n, _ := binary.Uvarint(b)
	return n
}

func taintedThroughCall(b []byte) []byte {
	n := rowCount(b)
	return make([]byte, n) // want `allocation sized by "n".*reaches this make without a bound check`
}

func checkedThroughCall(b []byte) []byte {
	n := rowCount(b)
	if n > 4096 {
		n = 4096
	}
	return make([]byte, n)
}

// alloc never checks its parameter before allocating from it: its
// summary marks the parameter unguarded, so the finding lands at the
// call site that feeds it a raw decoded count.
func alloc(n uint64) []byte {
	return make([]byte, n)
}

func unguardedParamSink(b []byte) []byte {
	n, _ := binary.Uvarint(b)
	return alloc(n) // want `allocation sized by "n".*reaches this alloc without a bound check`
}

func guardedBeforeCall(b []byte) []byte {
	n, _ := binary.Uvarint(b)
	if n > 1<<20 {
		return nil
	}
	return alloc(n)
}
