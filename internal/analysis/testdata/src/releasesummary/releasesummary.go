// Package releasesummary is the golden-file fixture for the
// releasesummary analyzer: a release func returned by a provider must
// be called, deferred, or handed off by every caller. The provider
// functions are local so the module summary pass (which sees only this
// package in the harness) discovers them.
package releasesummary

import "errors"

type tree struct{ pins int }

func (t *tree) Pin()   { t.pins++ }
func (t *tree) Unpin() { t.pins-- }

// pinBoth is a provider: every return site yields a closure that
// releases both pins.
func pinBoth(a, b *tree) func() {
	a.Pin()
	b.Pin()
	return func() {
		b.Unpin()
		a.Unpin()
	}
}

// pinOne is a provider with an error path: the release func is nil
// exactly when the error is non-nil.
func pinOne(t *tree) (func(), error) {
	if t == nil {
		return nil, errors.New("no tree")
	}
	t.Pin()
	return t.Unpin, nil
}

func cond() bool { return false }

func discardsOutright(a, b *tree) {
	pinBoth(a, b) // want `release func returned by pinBoth is discarded`
}

func discardsToBlank(a, b *tree) {
	_ = pinBoth(a, b) // want `release func returned by pinBoth is discarded`
}

func leaksOnEarlyReturn(a, b *tree) error {
	unpin := pinBoth(a, b)
	if cond() {
		return errors.New("bail") // want `return leaks release func "unpin"`
	}
	unpin()
	return nil
}

func deferredRelease(a, b *tree) {
	unpin := pinBoth(a, b)
	defer unpin()
}

func releasedOnAllPaths(a, b *tree) {
	unpin := pinBoth(a, b)
	if cond() {
		unpin()
		return
	}
	unpin()
}

func handsOffByReturn(a, b *tree) func() {
	unpin := pinBoth(a, b)
	return unpin
}

type holder struct{ release func() }

func handsOffByStore(a, b *tree) *holder {
	unpin := pinBoth(a, b)
	return &holder{release: unpin}
}

func errGuardIsNotALeak(t *tree) error {
	unpin, err := pinOne(t)
	if err != nil {
		return err
	}
	defer unpin()
	return nil
}

func nilCheckAloneDoesNotDischarge(t *tree) {
	unpin, err := pinOne(t)
	if err != nil {
		return
	}
	if unpin != nil {
		return // want `return leaks release func "unpin"`
	}
}
