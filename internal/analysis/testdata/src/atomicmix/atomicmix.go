// Package atomicmix is the golden-file fixture for the atomicmix
// analyzer: a field accessed via sync/atomic must never be plainly read
// or written without a dominating lock, and typed atomics must not be
// aliased through unsafe.Pointer.
package atomicmix

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

type counter struct {
	mu sync.Mutex
	n  int64
	m  int64
}

// bump is the atomic side: it puts counter.n in the atomic census.
func (c *counter) bump() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) plainRead() int64 {
	return c.n // want `plain read of atomically-accessed field atomicmix\.counter\.n`
}

func (c *counter) plainWrite() {
	c.n = 0 // want `plain write of atomically-accessed field atomicmix\.counter\.n`
}

// halfGuarded holds the lock on only one path to the read, so no lock
// dominates it.
func (c *counter) halfGuarded(cond bool) int64 {
	if cond {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.n // want `plain read of atomically-accessed field atomicmix\.counter\.n`
}

// --- negatives ---

// guarded reads under the mutex on every path: the field has a locked
// plain phase and an atomic fast path, which is a legal discipline.
func (c *counter) guarded() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// atomicLoad is the sanctioned access: the read happens inside the
// atomic call itself.
func (c *counter) atomicLoad() int64 {
	return atomic.LoadInt64(&c.n)
}

// untouchedField: m is never accessed atomically, so plain access is
// fine.
func (c *counter) untouchedField() int64 {
	return c.m
}

// --- typed atomics ---

type gauge struct {
	v atomic.Int64
}

// typedUse is fine: the typed API is the only access path.
func (g *gauge) typedUse(x int64) int64 {
	g.v.Store(x)
	return g.v.Load()
}

// sneak casts around the typed API — the one way to get a plain access
// to a typed atomic's cell.
func (g *gauge) sneak() int64 {
	return *(*int64)(unsafe.Pointer(&g.v)) // want `unsafe aliasing of atomic field atomicmix\.gauge\.v`
}
