// Package metricname is the golden-file fixture for the metricname
// analyzer: telemetry registrations must use constant lowercase_snake
// names, each registered at exactly one call site.
package metricname

import (
	"fmt"

	"spatialtf/internal/telemetry"
)

func wellFormed(reg *telemetry.Registry) {
	reg.NewCounter("requests_total", "fine")
	reg.NewGauge("queue_depth", "fine")
	reg.NewHistogram("latency_seconds", "fine", nil)
	reg.CounterFunc("cache_hits_total", "fine", func() int64 { return 0 })
}

const goodName = "lookups_total"

func constantFolds(reg *telemetry.Registry) {
	// A named constant is as checkable as a literal.
	reg.NewCounter(goodName, "fine")
}

func badSpelling(reg *telemetry.Registry) {
	reg.NewCounter("RequestsTotal", "camel case")           // want `metric name "RequestsTotal" is not lowercase_snake`
	reg.NewGauge("queue-depth", "kebab case")               // want `metric name "queue-depth" is not lowercase_snake`
	reg.NewHistogram("_seconds", "leading underscore", nil) // want `metric name "_seconds" is not lowercase_snake`
}

func dynamicName(reg *telemetry.Registry, table string) {
	reg.NewCounter(fmt.Sprintf("scans_%s_total", table), "per-table") // want `metric name is not a constant string`
}

func duplicateA(reg *telemetry.Registry) {
	reg.NewCounter("errors_total", "first registration wins")
}

func duplicateB(reg *telemetry.Registry) {
	reg.NewGauge("errors_total", "second site collides") // want `metric name "errors_total" already registered at`
}
