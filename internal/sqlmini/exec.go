package sqlmini

import (
	"fmt"
	"strings"

	"spatialtf"
)

// Engine executes parsed statements against a spatialtf database.
type Engine struct {
	db *spatialtf.DB
	// indexSeq numbers auto-created index names.
	indexSeq int
}

// NewEngine returns an engine over a fresh database.
func NewEngine() *Engine { return &Engine{db: spatialtf.Open()} }

// NewEngineOn returns an engine over an existing database (so programs
// can mix API and SQL access).
func NewEngineOn(db *spatialtf.DB) *Engine { return &Engine{db: db} }

// DB exposes the underlying database.
func (e *Engine) DB() *spatialtf.DB { return e.db }

// Result is the outcome of one statement.
type Result struct {
	// Columns and Rows are set for SELECT.
	Columns []string
	Rows    [][]string
	// Count is set for SELECT COUNT(*).
	Count int
	// Message summarises DDL/DML outcomes.
	Message string
}

// Execute parses and runs one statement.
func (e *Engine) Execute(sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.execStatement(stmt)
}

// execStatement runs one parsed statement, materialising the result.
func (e *Engine) execStatement(stmt Statement) (*Result, error) {
	switch s := stmt.(type) {
	case CreateTable:
		return e.execCreateTable(s)
	case Insert:
		return e.execInsert(s)
	case CreateIndex:
		return e.execCreateIndex(s)
	case Select:
		return e.execSelect(s)
	case Delete:
		return e.execDelete(s)
	case Update:
		return e.execUpdate(s)
	default:
		return nil, fmt.Errorf("sqlmini: unhandled statement %T", stmt)
	}
}

// whereIDs resolves the rowids a statement's WHERE clause selects
// (all rows when where is nil).
func (e *Engine) whereIDs(tableName string, tab *spatialtf.Table, where *Predicate) ([]spatialtf.RowID, error) {
	if where == nil {
		var ids []spatialtf.RowID
		err := tab.Scan(func(id spatialtf.RowID, _ spatialtf.Row) bool {
			ids = append(ids, id)
			return true
		})
		return ids, err
	}
	q, err := spatialtf.ParseWKT(where.QueryWKT)
	if err != nil {
		return nil, fmt.Errorf("sqlmini: query geometry: %w", err)
	}
	idxName, err := e.indexFor(tableName, where.Column, "")
	if err != nil {
		return nil, err
	}
	switch where.Op {
	case "relate":
		return e.db.Relate(tableName, idxName, q, where.Mask)
	case "withindistance":
		return e.db.WithinDistance(tableName, idxName, q, where.Distance)
	case "nearest":
		// sdo_nn needs an R-tree specifically.
		idxName, err = e.indexFor(tableName, where.Column, spatialtf.RTree)
		if err != nil {
			return nil, err
		}
		nbs, err := e.db.Nearest(tableName, idxName, q, where.K)
		if err != nil {
			return nil, err
		}
		ids := make([]spatialtf.RowID, len(nbs))
		for i, nb := range nbs {
			ids[i] = nb.ID
		}
		return ids, nil
	default:
		return nil, fmt.Errorf("sqlmini: unknown predicate %q", where.Op)
	}
}

func (e *Engine) execDelete(s Delete) (*Result, error) {
	tab, err := e.db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	ids, err := e.whereIDs(s.Table, tab, s.Where)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if err := tab.Delete(id); err != nil {
			return nil, err
		}
	}
	return &Result{Message: fmt.Sprintf("%d rows deleted", len(ids))}, nil
}

func (e *Engine) execUpdate(s Update) (*Result, error) {
	tab, err := e.db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	schema := tab.Inner().Schema()
	// Resolve SET targets once.
	type setTarget struct {
		col int
		val Literal
	}
	var targets []setTarget
	for _, sc := range s.Sets {
		i, err := tab.Inner().ColumnIndex(sc.Column)
		if err != nil {
			return nil, err
		}
		targets = append(targets, setTarget{col: i, val: sc.Value})
	}
	ids, err := e.whereIDs(s.Table, tab, s.Where)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		row, err := tab.Fetch(id)
		if err != nil {
			return nil, err
		}
		for _, t := range targets {
			v, err := literalValue(schema[t.col], t.val)
			if err != nil {
				return nil, err
			}
			row[t.col] = v
		}
		if _, err := tab.Update(id, row...); err != nil {
			return nil, err
		}
	}
	return &Result{Message: fmt.Sprintf("%d rows updated", len(ids))}, nil
}

// literalValue converts a parsed literal to a typed column value.
func literalValue(col spatialtf.Column, lit Literal) (spatialtf.Value, error) {
	switch col.Type {
	case spatialtf.TInt64:
		if !lit.IsNum {
			return spatialtf.Value{}, fmt.Errorf("sqlmini: column %q expects a number", col.Name)
		}
		return spatialtf.Int(int64(lit.Num)), nil
	case spatialtf.TFloat64:
		if !lit.IsNum {
			return spatialtf.Value{}, fmt.Errorf("sqlmini: column %q expects a number", col.Name)
		}
		return spatialtf.Float(lit.Num), nil
	case spatialtf.TString:
		if !lit.IsString {
			return spatialtf.Value{}, fmt.Errorf("sqlmini: column %q expects a string", col.Name)
		}
		return spatialtf.Str(lit.Str), nil
	case spatialtf.TGeometry:
		if !lit.IsString {
			return spatialtf.Value{}, fmt.Errorf("sqlmini: column %q expects a WKT string", col.Name)
		}
		g, err := spatialtf.ParseWKT(lit.Str)
		if err != nil {
			return spatialtf.Value{}, fmt.Errorf("sqlmini: column %q: %w", col.Name, err)
		}
		return spatialtf.Geom(g), nil
	default:
		return spatialtf.Value{}, fmt.Errorf("sqlmini: cannot assign to %v column %q", col.Type, col.Name)
	}
}

func colType(sqlType string) (spatialtf.Column, error) {
	switch sqlType {
	case "INT", "INTEGER", "NUMBER", "BIGINT":
		return spatialtf.Column{Type: spatialtf.TInt64}, nil
	case "FLOAT", "DOUBLE", "REAL":
		return spatialtf.Column{Type: spatialtf.TFloat64}, nil
	case "VARCHAR", "VARCHAR2", "TEXT", "STRING":
		return spatialtf.Column{Type: spatialtf.TString}, nil
	case "RAW", "BLOB":
		return spatialtf.Column{Type: spatialtf.TBytes}, nil
	case "GEOMETRY", "SDO_GEOMETRY":
		return spatialtf.Column{Type: spatialtf.TGeometry}, nil
	default:
		return spatialtf.Column{}, fmt.Errorf("sqlmini: unsupported column type %q", sqlType)
	}
}

func (e *Engine) execCreateTable(s CreateTable) (*Result, error) {
	cols := make([]spatialtf.Column, len(s.Columns))
	for i, c := range s.Columns {
		col, err := colType(c.Type)
		if err != nil {
			return nil, err
		}
		col.Name = c.Name
		cols[i] = col
	}
	if _, err := e.db.CreateTable(s.Name, cols); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("table %s created", s.Name)}, nil
}

func (e *Engine) execInsert(s Insert) (*Result, error) {
	tab, err := e.db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	schema := tab.Inner().Schema()
	if len(s.Values) != len(schema) {
		return nil, fmt.Errorf("sqlmini: %d values for %d columns", len(s.Values), len(schema))
	}
	row := make([]spatialtf.Value, len(schema))
	for i, col := range schema {
		v, err := literalValue(col, s.Values[i])
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	if _, err := tab.Insert(row...); err != nil {
		return nil, err
	}
	return &Result{Message: "1 row inserted"}, nil
}

func (e *Engine) execCreateIndex(s CreateIndex) (*Result, error) {
	var kind spatialtf.IndexKind
	switch s.Kind {
	case "RTREE", "RTREE_INDEX", "SPATIAL_INDEX":
		kind = spatialtf.RTree
	case "QUADTREE":
		kind = spatialtf.Quadtree
	default:
		return nil, fmt.Errorf("sqlmini: unsupported indextype %q", s.Kind)
	}
	opt := spatialtf.IndexOptions{Parallel: s.Parallel}
	if v, ok := s.Params["fanout"]; ok {
		if _, err := fmt.Sscanf(v, "%d", &opt.Fanout); err != nil {
			return nil, fmt.Errorf("sqlmini: bad fanout %q", v)
		}
	}
	if v, ok := s.Params["level"]; ok {
		if _, err := fmt.Sscanf(v, "%d", &opt.TilingLevel); err != nil {
			return nil, fmt.Errorf("sqlmini: bad level %q", v)
		}
	}
	if kind == spatialtf.Quadtree {
		opt.Bounds = spatialtf.World
		if v, ok := s.Params["bounds"]; ok {
			if _, err := fmt.Sscanf(v, "%g,%g,%g,%g", &opt.Bounds.MinX, &opt.Bounds.MinY, &opt.Bounds.MaxX, &opt.Bounds.MaxY); err != nil {
				return nil, fmt.Errorf("sqlmini: bad bounds %q (want minx,miny,maxx,maxy)", v)
			}
		}
		if opt.TilingLevel == 0 {
			opt.TilingLevel = 8
		}
	}
	if _, err := e.db.CreateIndexOn(s.Name, s.Table, s.Column, kind, opt); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("index %s created", s.Name)}, nil
}

// indexFor finds a created index on (table, column) of the wanted kind
// ("" = any), preferring R-trees (the join-capable kind).
func (e *Engine) indexFor(table, column string, kind spatialtf.IndexKind) (string, error) {
	metas, err := e.db.IndexMetadata()
	if err != nil {
		return "", err
	}
	best := ""
	for _, m := range metas {
		if m.TableName != table || m.ColumnName != column {
			continue
		}
		if kind != "" && m.Kind != kind {
			continue
		}
		if best == "" || m.Kind == spatialtf.RTree {
			best = m.IndexName
		}
	}
	if best == "" {
		return "", fmt.Errorf("sqlmini: no spatial index on %s(%s); CREATE INDEX first", table, column)
	}
	return best, nil
}

func (e *Engine) execSelect(s Select) (*Result, error) {
	if s.From.Join != nil {
		return e.execJoinSelect(s)
	}
	return e.execTableSelect(s)
}

func (e *Engine) execTableSelect(s Select) (*Result, error) {
	tab, err := e.db.Table(s.From.Table)
	if err != nil {
		return nil, err
	}
	schema := tab.Inner().Schema()

	// Resolve projected column positions.
	var colIdx []int
	var colNames []string
	if s.Star || s.Count {
		for i, c := range schema {
			colIdx = append(colIdx, i)
			colNames = append(colNames, c.Name)
		}
	} else {
		for _, want := range s.Columns {
			i, err := tab.Inner().ColumnIndex(want)
			if err != nil {
				return nil, err
			}
			colIdx = append(colIdx, i)
			colNames = append(colNames, want)
		}
	}

	ids, err := e.whereIDs(s.From.Table, tab, s.Where)
	if err != nil {
		return nil, err
	}

	if s.Count {
		return &Result{Count: len(ids), Columns: []string{"COUNT(*)"},
			Rows: [][]string{{fmt.Sprintf("%d", len(ids))}}}, nil
	}
	res := &Result{Columns: colNames}
	for _, id := range ids {
		row, err := tab.Fetch(id)
		if err != nil {
			return nil, err
		}
		out := make([]string, len(colIdx))
		for k, i := range colIdx {
			out[k] = row[i].String()
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func (e *Engine) execJoinSelect(s Select) (*Result, error) {
	call := s.From.Join
	if s.Where != nil {
		return nil, fmt.Errorf("sqlmini: WHERE on a spatial_join row source is not supported")
	}
	idxA, err := e.indexFor(call.TableA, call.ColumnA, spatialtf.RTree)
	if err != nil {
		return nil, err
	}
	idxB, err := e.indexFor(call.TableB, call.ColumnB, spatialtf.RTree)
	if err != nil {
		return nil, err
	}
	cur, err := e.db.SpatialJoin(call.TableA, idxA, call.TableB, idxB, spatialtf.JoinOptions{
		Mask:     call.Mask,
		Distance: call.Distance,
		Parallel: call.Parallel,
		Algo:     call.Algo,
	})
	if err != nil {
		return nil, err
	}
	if s.Count {
		// Drain without materialising: counting needs the full stream
		// but never the pairs themselves.
		n := 0
		for {
			_, ok, err := cur.Next()
			if err != nil {
				cur.Close()
				return nil, err
			}
			if !ok {
				break
			}
			n++
		}
		if err := cur.Close(); err != nil {
			return nil, err
		}
		return &Result{Count: n, Columns: []string{"COUNT(*)"},
			Rows: [][]string{{fmt.Sprintf("%d", n)}}}, nil
	}
	pairs, err := cur.Collect()
	if err != nil {
		return nil, err
	}
	// Validate projection: only rid1/rid2 (or key1/key2 under a 'keys='
	// hint, or *) exist on the join source.
	wantCols, keys, err := e.joinProjection(s, call)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: wantCols}
	for _, p := range pairs {
		row := make([]string, len(wantCols))
		for i, c := range wantCols {
			switch {
			case keys != nil:
				if row[i], err = keys.render(p, c); err != nil {
					return nil, err
				}
			case c == "rid1":
				row[i] = p.A.String()
			default:
				row[i] = p.B.String()
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders a result as an aligned text table for the REPL.
func (r *Result) Format() string {
	if r.Message != "" {
		return r.Message + "\n"
	}
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, v := range row {
			if i < len(widths) && len(v) > widths[i] {
				if len(v) > 48 {
					widths[i] = 48
				} else {
					widths[i] = len(v)
				}
			}
		}
	}
	writeRow := func(cells []string) {
		for i, v := range cells {
			if len(v) > 48 {
				v = v[:45] + "..."
			}
			fmt.Fprintf(&b, "%-*s  ", widths[i], v)
		}
		b.WriteString("\n")
	}
	writeRow(r.Columns)
	for _, row := range r.Rows {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(r.Rows))
	return b.String()
}
