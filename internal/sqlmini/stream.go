package sqlmini

import (
	"fmt"

	"spatialtf"
	"spatialtf/internal/storage"
)

// Stream is the cursor form of a statement result, the unit the query
// server ships over the wire: SELECT row sources come back as a typed
// schema plus a pull cursor (so a spatial_join larger than memory
// streams batch by batch, exactly like the local table-function
// pipeline), while DDL/DML/COUNT outcomes come back as an immediate
// Result.
type Stream struct {
	// Schema and Cursor are set for streaming SELECTs. The caller owns
	// the cursor and must Close it (an open join cursor pins its operand
	// indexes against DML).
	Schema []storage.Column
	Cursor storage.Cursor
	// Result is set for immediate outcomes (CREATE/INSERT/DELETE/
	// UPDATE/COUNT); Cursor is nil then.
	Result *Result
}

// ExecuteStream parses and runs one statement, streaming SELECT row
// sources instead of materialising them.
func (e *Engine) ExecuteStream(sql string) (*Stream, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	if s, ok := stmt.(Select); ok && !s.Count {
		if s.From.Join != nil {
			return e.streamJoinSelect(s)
		}
		return e.streamTableSelect(s)
	}
	res, err := e.execStatement(stmt)
	if err != nil {
		return nil, err
	}
	return &Stream{Result: res}, nil
}

// streamTableSelect builds a cursor over a base-table SELECT. A plain
// scan streams straight off the heap; a spatial predicate resolves the
// matching rowids through the index first (bounded by the result's id
// count, not its row payload) and fetches rows lazily.
func (e *Engine) streamTableSelect(s Select) (*Stream, error) {
	tab, err := e.db.Table(s.From.Table)
	if err != nil {
		return nil, err
	}
	schema := tab.Inner().Schema()
	var colIdx []int
	var outSchema []storage.Column
	if s.Star {
		for i, c := range schema {
			colIdx = append(colIdx, i)
			outSchema = append(outSchema, c)
		}
	} else {
		for _, want := range s.Columns {
			i, err := tab.Inner().ColumnIndex(want)
			if err != nil {
				return nil, err
			}
			colIdx = append(colIdx, i)
			outSchema = append(outSchema, schema[i])
		}
	}
	if s.Where == nil {
		return &Stream{
			Schema: outSchema,
			Cursor: &projectCursor{in: storage.NewCursor(tab.Inner()), cols: colIdx},
		}, nil
	}
	ids, err := e.whereIDs(s.From.Table, tab, s.Where)
	if err != nil {
		return nil, err
	}
	return &Stream{
		Schema: outSchema,
		Cursor: &fetchCursor{tab: tab, ids: ids, cols: colIdx},
	}, nil
}

// streamJoinSelect builds a cursor over TABLE(spatial_join(...)). The
// rid1/rid2 rowids are projected as their page.slot text form, matching
// the local REPL rendering; with a 'keys=' hint the key1/key2 user-key
// columns are projected instead.
func (e *Engine) streamJoinSelect(s Select) (*Stream, error) {
	return e.streamJoinSelectScoped(s, nil)
}

func (e *Engine) streamJoinSelectScoped(s Select, scope *spatialtf.ClusterScope) (*Stream, error) {
	call := s.From.Join
	if s.Where != nil {
		return nil, fmt.Errorf("sqlmini: WHERE on a spatial_join row source is not supported")
	}
	wantCols, keys, err := e.joinProjection(s, call)
	if err != nil {
		return nil, err
	}
	idxA, err := e.indexFor(call.TableA, call.ColumnA, spatialtf.RTree)
	if err != nil {
		return nil, err
	}
	idxB, err := e.indexFor(call.TableB, call.ColumnB, spatialtf.RTree)
	if err != nil {
		return nil, err
	}
	cur, err := e.db.SpatialJoin(call.TableA, idxA, call.TableB, idxB, spatialtf.JoinOptions{
		Mask:     call.Mask,
		Distance: call.Distance,
		Parallel: call.Parallel,
		Algo:     call.Algo,
		Scope:    scope,
	})
	if err != nil {
		return nil, err
	}
	outSchema := make([]storage.Column, len(wantCols))
	for i, c := range wantCols {
		outSchema[i] = storage.Column{Name: c, Type: storage.TString}
	}
	return &Stream{
		Schema: outSchema,
		Cursor: &joinCursorAdapter{jc: cur, cols: wantCols, keys: keys},
	}, nil
}

// joinKeys resolves a 'keys=colA:colB' hint: the user-key columns the
// key1/key2 projection fetches through.
type joinKeys struct {
	tabA, tabB *spatialtf.Table
	colA, colB int
}

// render fetches the key value of one pair side as its display string.
func (k *joinKeys) render(p spatialtf.Pair, col string) (string, error) {
	var v spatialtf.Value
	var err error
	if col == "key1" {
		v, err = k.tabA.Inner().FetchColumn(p.A, k.colA)
	} else {
		v, err = k.tabB.Inner().FetchColumn(p.B, k.colB)
	}
	if err != nil {
		return "", err
	}
	return v.String(), nil
}

// joinProjection validates the projected columns of a spatial_join
// SELECT and resolves the key fetcher when the call carries a 'keys='
// hint (the projection is then key1/key2 instead of rid1/rid2).
func (e *Engine) joinProjection(s Select, call *SpatialJoinCall) ([]string, *joinKeys, error) {
	var keys *joinKeys
	def := []string{"rid1", "rid2"}
	if call.KeyA != "" {
		def = []string{"key1", "key2"}
		tabA, err := e.db.Table(call.TableA)
		if err != nil {
			return nil, nil, err
		}
		tabB, err := e.db.Table(call.TableB)
		if err != nil {
			return nil, nil, err
		}
		colA, err := tabA.Inner().ColumnIndex(call.KeyA)
		if err != nil {
			return nil, nil, err
		}
		colB, err := tabB.Inner().ColumnIndex(call.KeyB)
		if err != nil {
			return nil, nil, err
		}
		keys = &joinKeys{tabA: tabA, tabB: tabB, colA: colA, colB: colB}
	}
	wantCols := s.Columns
	if s.Star || len(wantCols) == 0 {
		wantCols = def
	}
	for _, c := range wantCols {
		if c != def[0] && c != def[1] {
			return nil, nil, fmt.Errorf("sqlmini: this spatial_join exposes columns %s, %s; no %q", def[0], def[1], c)
		}
	}
	return wantCols, keys, nil
}

// projectCursor narrows a row cursor to the projected columns.
type projectCursor struct {
	in   storage.Cursor
	cols []int
}

func (c *projectCursor) Next() (storage.RowID, storage.Row, bool, error) {
	id, row, ok, err := c.in.Next()
	if err != nil || !ok {
		return id, nil, ok, err
	}
	out := make(storage.Row, len(c.cols))
	for k, i := range c.cols {
		out[k] = row[i]
	}
	return id, out, true, nil
}

func (c *projectCursor) Close() error { return c.in.Close() }

// fetchCursor lazily fetches and projects the rows of a resolved rowid
// list (the output of a spatial WHERE predicate).
type fetchCursor struct {
	tab  *spatialtf.Table
	ids  []spatialtf.RowID
	cols []int
	pos  int
}

func (c *fetchCursor) Next() (storage.RowID, storage.Row, bool, error) {
	if c.pos >= len(c.ids) {
		return storage.InvalidRowID, nil, false, nil
	}
	id := c.ids[c.pos]
	c.pos++
	row, err := c.tab.Fetch(id)
	if err != nil {
		return storage.InvalidRowID, nil, false, err
	}
	out := make(storage.Row, len(c.cols))
	for k, i := range c.cols {
		out[k] = row[i]
	}
	return id, out, true, nil
}

func (c *fetchCursor) Close() error {
	c.pos = len(c.ids)
	return nil
}

// joinCursorAdapter renders a spatial-join pair stream as rows of the
// projected rid (or, with a 'keys=' hint, user-key) columns.
type joinCursorAdapter struct {
	jc   *spatialtf.JoinCursor
	cols []string
	keys *joinKeys // nil when projecting rowids
}

func (c *joinCursorAdapter) Next() (storage.RowID, storage.Row, bool, error) {
	p, ok, err := c.jc.Next()
	if err != nil || !ok {
		return storage.InvalidRowID, nil, false, err
	}
	out := make(storage.Row, len(c.cols))
	for i, col := range c.cols {
		switch {
		case c.keys != nil:
			s, err := c.keys.render(p, col)
			if err != nil {
				return storage.InvalidRowID, nil, false, err
			}
			out[i] = storage.Str(s)
		case col == "rid1":
			out[i] = storage.Str(p.A.String())
		default:
			out[i] = storage.Str(p.B.String())
		}
	}
	return storage.InvalidRowID, out, true, nil
}

func (c *joinCursorAdapter) Close() error { return c.jc.Close() }
