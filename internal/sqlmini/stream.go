package sqlmini

import (
	"fmt"

	"spatialtf"
	"spatialtf/internal/storage"
)

// Stream is the cursor form of a statement result, the unit the query
// server ships over the wire: SELECT row sources come back as a typed
// schema plus a pull cursor (so a spatial_join larger than memory
// streams batch by batch, exactly like the local table-function
// pipeline), while DDL/DML/COUNT outcomes come back as an immediate
// Result.
type Stream struct {
	// Schema and Cursor are set for streaming SELECTs. The caller owns
	// the cursor and must Close it (an open join cursor pins its operand
	// indexes against DML).
	Schema []storage.Column
	Cursor storage.Cursor
	// Result is set for immediate outcomes (CREATE/INSERT/DELETE/
	// UPDATE/COUNT); Cursor is nil then.
	Result *Result
}

// ExecuteStream parses and runs one statement, streaming SELECT row
// sources instead of materialising them.
func (e *Engine) ExecuteStream(sql string) (*Stream, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	if s, ok := stmt.(Select); ok && !s.Count {
		if s.From.Join != nil {
			return e.streamJoinSelect(s)
		}
		return e.streamTableSelect(s)
	}
	res, err := e.execStatement(stmt)
	if err != nil {
		return nil, err
	}
	return &Stream{Result: res}, nil
}

// streamTableSelect builds a cursor over a base-table SELECT. A plain
// scan streams straight off the heap; a spatial predicate resolves the
// matching rowids through the index first (bounded by the result's id
// count, not its row payload) and fetches rows lazily.
func (e *Engine) streamTableSelect(s Select) (*Stream, error) {
	tab, err := e.db.Table(s.From.Table)
	if err != nil {
		return nil, err
	}
	schema := tab.Inner().Schema()
	var colIdx []int
	var outSchema []storage.Column
	if s.Star {
		for i, c := range schema {
			colIdx = append(colIdx, i)
			outSchema = append(outSchema, c)
		}
	} else {
		for _, want := range s.Columns {
			i, err := tab.Inner().ColumnIndex(want)
			if err != nil {
				return nil, err
			}
			colIdx = append(colIdx, i)
			outSchema = append(outSchema, schema[i])
		}
	}
	if s.Where == nil {
		return &Stream{
			Schema: outSchema,
			Cursor: &projectCursor{in: storage.NewCursor(tab.Inner()), cols: colIdx},
		}, nil
	}
	ids, err := e.whereIDs(s.From.Table, tab, s.Where)
	if err != nil {
		return nil, err
	}
	return &Stream{
		Schema: outSchema,
		Cursor: &fetchCursor{tab: tab, ids: ids, cols: colIdx},
	}, nil
}

// streamJoinSelect builds a cursor over TABLE(spatial_join(...)). The
// rid1/rid2 rowids are projected as their page.slot text form, matching
// the local REPL rendering.
func (e *Engine) streamJoinSelect(s Select) (*Stream, error) {
	call := s.From.Join
	if s.Where != nil {
		return nil, fmt.Errorf("sqlmini: WHERE on a spatial_join row source is not supported")
	}
	wantCols := s.Columns
	if s.Star || len(wantCols) == 0 {
		wantCols = []string{"rid1", "rid2"}
	}
	for _, c := range wantCols {
		if c != "rid1" && c != "rid2" {
			return nil, fmt.Errorf("sqlmini: spatial_join exposes columns rid1, rid2; no %q", c)
		}
	}
	idxA, err := e.indexFor(call.TableA, call.ColumnA, spatialtf.RTree)
	if err != nil {
		return nil, err
	}
	idxB, err := e.indexFor(call.TableB, call.ColumnB, spatialtf.RTree)
	if err != nil {
		return nil, err
	}
	cur, err := e.db.SpatialJoin(call.TableA, idxA, call.TableB, idxB, spatialtf.JoinOptions{
		Mask:     call.Mask,
		Distance: call.Distance,
		Parallel: call.Parallel,
		Algo:     call.Algo,
	})
	if err != nil {
		return nil, err
	}
	outSchema := make([]storage.Column, len(wantCols))
	for i, c := range wantCols {
		outSchema[i] = storage.Column{Name: c, Type: storage.TString}
	}
	return &Stream{
		Schema: outSchema,
		Cursor: &joinCursorAdapter{jc: cur, cols: wantCols},
	}, nil
}

// projectCursor narrows a row cursor to the projected columns.
type projectCursor struct {
	in   storage.Cursor
	cols []int
}

func (c *projectCursor) Next() (storage.RowID, storage.Row, bool, error) {
	id, row, ok, err := c.in.Next()
	if err != nil || !ok {
		return id, nil, ok, err
	}
	out := make(storage.Row, len(c.cols))
	for k, i := range c.cols {
		out[k] = row[i]
	}
	return id, out, true, nil
}

func (c *projectCursor) Close() error { return c.in.Close() }

// fetchCursor lazily fetches and projects the rows of a resolved rowid
// list (the output of a spatial WHERE predicate).
type fetchCursor struct {
	tab  *spatialtf.Table
	ids  []spatialtf.RowID
	cols []int
	pos  int
}

func (c *fetchCursor) Next() (storage.RowID, storage.Row, bool, error) {
	if c.pos >= len(c.ids) {
		return storage.InvalidRowID, nil, false, nil
	}
	id := c.ids[c.pos]
	c.pos++
	row, err := c.tab.Fetch(id)
	if err != nil {
		return storage.InvalidRowID, nil, false, err
	}
	out := make(storage.Row, len(c.cols))
	for k, i := range c.cols {
		out[k] = row[i]
	}
	return id, out, true, nil
}

func (c *fetchCursor) Close() error {
	c.pos = len(c.ids)
	return nil
}

// joinCursorAdapter renders a spatial-join pair stream as rows of the
// projected rid columns.
type joinCursorAdapter struct {
	jc   *spatialtf.JoinCursor
	cols []string
}

func (c *joinCursorAdapter) Next() (storage.RowID, storage.Row, bool, error) {
	p, ok, err := c.jc.Next()
	if err != nil || !ok {
		return storage.InvalidRowID, nil, false, err
	}
	out := make(storage.Row, len(c.cols))
	for i, col := range c.cols {
		if col == "rid1" {
			out[i] = storage.Str(p.A.String())
		} else {
			out[i] = storage.Str(p.B.String())
		}
	}
	return storage.InvalidRowID, out, true, nil
}

func (c *joinCursorAdapter) Close() error { return c.jc.Close() }
