package sqlmini

// Statement AST. Only the forms appearing in the paper are modelled.

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is CREATE TABLE name (col TYPE, ...).
type CreateTable struct {
	Name    string
	Columns []ColumnDef
}

// ColumnDef is one column declaration.
type ColumnDef struct {
	Name string
	Type string // INT, FLOAT, VARCHAR, RAW, GEOMETRY (sdo_geometry accepted)
}

// Insert is INSERT INTO name VALUES (v, ...). Geometry values are WKT
// strings.
type Insert struct {
	Table  string
	Values []Literal
}

// Literal is a parsed literal value.
type Literal struct {
	IsString bool
	Str      string
	Num      float64
	IsNum    bool
}

// CreateIndex is
//
//	CREATE INDEX name ON table(col) INDEXTYPE IS {RTREE|QUADTREE}
//	    [PARAMETERS('level=8 fanout=32')] [PARALLEL n]
type CreateIndex struct {
	Name     string
	Table    string
	Column   string
	Kind     string
	Params   map[string]string
	Parallel int
}

// Select covers the paper's query forms:
//
//	SELECT COUNT(*) | * | col, ... FROM <from> [WHERE <pred>]
//
// with <from> either a plain table or TABLE(SPATIAL_JOIN(...)).
type Select struct {
	Count   bool
	Columns []string // empty with Count or star
	Star    bool
	From    FromClause
	Where   *Predicate
}

// FromClause is the row source.
type FromClause struct {
	// Table is set for a base-table scan.
	Table string
	// Join is set for TABLE(SPATIAL_JOIN(...)).
	Join *SpatialJoinCall
}

// SpatialJoinCall mirrors the paper's
//
//	TABLE(spatial_join('tab1','col1','tab2','col2','mask'[,'algo=grid'][, parallel]))
type SpatialJoinCall struct {
	TableA, ColumnA string
	TableB, ColumnB string
	Mask            string
	Distance        float64
	Parallel        int
	// Algo is the optional 'algo=...' hint: "auto" engages the cost
	// model, "nested"/"subtree"/"grid" force a join path. Empty keeps
	// the default Parallel-driven dispatch.
	Algo string
	// KeyA/KeyB are the optional 'keys=colA:colB' hint: the join then
	// exposes key1/key2 columns carrying those user columns' values
	// instead of the storage rowids. A cluster join needs this —
	// rowids are shard-local addresses, user keys are not.
	KeyA, KeyB string
}

// Predicate is one spatial operator in the WHERE clause:
//
//	SDO_RELATE(col, 'WKT', 'mask=anyinteract') = 'TRUE'
//	SDO_WITHIN_DISTANCE(col, 'WKT', 'distance=5') = 'TRUE'
//	SDO_NN(col, 'WKT', 'k=3') = 'TRUE'
type Predicate struct {
	Op       string // "relate", "withindistance" or "nearest"
	Column   string
	QueryWKT string
	Mask     string
	Distance float64
	K        int
}

// Delete is DELETE FROM t [WHERE <spatial predicate>].
type Delete struct {
	Table string
	Where *Predicate
}

// Update is UPDATE t SET col = literal, ... [WHERE <spatial predicate>].
// Geometry columns take WKT string literals.
type Update struct {
	Table string
	Sets  []SetClause
	Where *Predicate
}

// SetClause is one col = literal assignment.
type SetClause struct {
	Column string
	Value  Literal
}

func (CreateTable) stmt() {}
func (Insert) stmt()      {}
func (CreateIndex) stmt() {}
func (Select) stmt()      {}
func (Delete) stmt()      {}
func (Update) stmt()      {}
