package sqlmini

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"spatialtf"
	"spatialtf/internal/datagen"
	"spatialtf/internal/geom"
)

// --- keys= hint ---

func TestJoinKeysHint(t *testing.T) {
	e := setupCitiesRivers(t)
	r := exec(t, e, "SELECT key1, key2 FROM TABLE(spatial_join('cities','geom','rivers','geom','anyinteract','keys=name:name'))")
	if len(r.Columns) != 2 || r.Columns[0] != "key1" || r.Columns[1] != "key2" {
		t.Fatalf("keys projection columns: %v", r.Columns)
	}
	found := false
	for _, row := range r.Rows {
		if row[0] == "springfield" && row[1] == "long_river" {
			found = true
		}
	}
	if !found {
		t.Fatalf("keys hint did not surface user keys: %v", r.Rows)
	}
	// Star and count work through the hint too.
	r = exec(t, e, "SELECT * FROM TABLE(spatial_join('cities','geom','rivers','geom','anyinteract','keys=id:id'))")
	if len(r.Columns) != 2 || r.Columns[0] != "key1" {
		t.Fatalf("star with keys hint: %v", r.Columns)
	}
	// The rid columns no longer exist under a keys hint, and vice versa.
	execErr(t, e, "SELECT rid1 FROM TABLE(spatial_join('cities','geom','rivers','geom','anyinteract','keys=id:id'))")
	execErr(t, e, "SELECT key1 FROM TABLE(spatial_join('cities','geom','rivers','geom','anyinteract'))")
}

func TestJoinKeysHintErrors(t *testing.T) {
	e := setupCitiesRivers(t)
	for _, sql := range []string{
		// Malformed hint values.
		"SELECT count(*) FROM TABLE(spatial_join('cities','geom','rivers','geom','anyinteract','keys=id'))",
		"SELECT count(*) FROM TABLE(spatial_join('cities','geom','rivers','geom','anyinteract','keys=:id'))",
		"SELECT count(*) FROM TABLE(spatial_join('cities','geom','rivers','geom','anyinteract','keys=id:'))",
		// Duplicate hints.
		"SELECT count(*) FROM TABLE(spatial_join('cities','geom','rivers','geom','anyinteract','keys=id:id','keys=name:name'))",
		"SELECT count(*) FROM TABLE(spatial_join('cities','geom','rivers','geom','anyinteract','algo=grid','algo=nested'))",
		// Unknown hint.
		"SELECT count(*) FROM TABLE(spatial_join('cities','geom','rivers','geom','anyinteract','mystery=1'))",
		// Key column that does not exist.
		"SELECT key1 FROM TABLE(spatial_join('cities','geom','rivers','geom','anyinteract','keys=nope:id'))",
	} {
		execErr(t, e, sql)
	}
}

// --- scoped execution ---

// scopedEngine builds an engine with an indexed spatial table of n
// counties.
func scopedEngine(t *testing.T, n int) *Engine {
	t.Helper()
	e := NewEngine()
	exec(t, e, "CREATE TABLE sc (id INT, name VARCHAR, geom GEOMETRY)")
	exec(t, e, "CREATE INDEX sc_idx ON sc(geom) INDEXTYPE IS RTREE")
	for i, g := range datagen.Counties(n, 31).Geoms {
		exec(t, e, fmt.Sprintf("INSERT INTO sc VALUES (%d, 'sc-%d', '%s')", i, i, geom.MarshalWKT(g)))
	}
	return e
}

// drainScoped collects a scoped statement's rows as sorted lines.
func drainScoped(t *testing.T, e *Engine, sql string, scope *spatialtf.ClusterScope) []string {
	t.Helper()
	st, err := e.ExecuteStreamScoped(sql, scope)
	if err != nil {
		t.Fatalf("scoped %q: %v", sql, err)
	}
	if st.Result != nil {
		var out []string
		for _, row := range st.Result.Rows {
			out = append(out, strings.Join(row, "|"))
		}
		sort.Strings(out)
		return out
	}
	var out []string
	for {
		_, row, ok, err := st.Cursor.Next()
		if err != nil {
			t.Fatalf("scoped %q next: %v", sql, err)
		}
		if !ok {
			break
		}
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		out = append(out, strings.Join(cells, "|"))
	}
	if err := st.Cursor.Close(); err != nil {
		t.Fatalf("scoped %q close: %v", sql, err)
	}
	sort.Strings(out)
	return out
}

// TestScopedPartition is the shard-side half of the cluster's
// exactly-once guarantee, without the network: for every query form,
// the union of all shards' scoped results equals the unscoped result
// and the per-shard results are disjoint. (The in-process engine holds
// every row, which over-approximates what a shard replica holds — the
// ownership filter must still yield each result exactly once.)
func TestScopedPartition(t *testing.T) {
	e := scopedEngine(t, 80)
	world := spatialtf.MBR{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	const nShards = 3
	queries := []string{
		"SELECT id FROM sc",
		"SELECT count(*) FROM sc",
		"SELECT id, name FROM sc WHERE sdo_relate(geom, 'POLYGON ((100 100, 700 100, 700 600, 100 600, 100 100))', 'mask=anyinteract') = 'TRUE'",
		"SELECT id FROM sc WHERE sdo_within_distance(geom, 'POINT (500 500)', 'distance=80') = 'TRUE'",
		"SELECT count(*) FROM sc WHERE sdo_within_distance(geom, 'POINT (500 500)', 'distance=80')",
		"SELECT key1, key2 FROM TABLE(spatial_join('sc','geom','sc','geom','distance=4','keys=id:id'))",
		"SELECT count(*) FROM TABLE(spatial_join('sc','geom','sc','geom','anyinteract'))",
	}
	for _, q := range queries {
		want := drainScoped(t, e, q, nil) // nil scope = unscoped
		isCount := strings.Contains(q, "count(*)")
		var union []string
		total := 0
		for shard := 0; shard < nShards; shard++ {
			scope := spatialtf.NewClusterScope(world, 4, 4, nShards, shard)
			part := drainScoped(t, e, q, scope)
			if isCount {
				var n int
				fmt.Sscanf(part[0], "%d", &n)
				total += n
				continue
			}
			union = append(union, part...)
		}
		if isCount {
			var wantN int
			fmt.Sscanf(want[0], "%d", &wantN)
			if total != wantN {
				t.Errorf("%q: scoped counts sum to %d, unscoped %d", q, total, wantN)
			}
			continue
		}
		sort.Strings(union)
		if len(union) != len(want) {
			t.Errorf("%q: union of %d scoped rows, unscoped %d (duplicate or lost results)", q, len(union), len(want))
			continue
		}
		for i := range want {
			if union[i] != want[i] {
				t.Errorf("%q: row %d differs: scoped union %q, unscoped %q", q, i, union[i], want[i])
				break
			}
		}
	}
}

func TestScopedRejections(t *testing.T) {
	e := scopedEngine(t, 10)
	world := spatialtf.MBR{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	scope := spatialtf.NewClusterScope(world, 4, 4, 2, 0)
	// Non-SELECT statements cannot be scoped.
	if _, err := e.ExecuteStreamScoped("INSERT INTO sc VALUES (99, 'x', 'POINT (1 1)')", scope); err == nil {
		t.Error("scoped INSERT accepted")
	}
	// sdo_nn is not spatially decomposable.
	if _, err := e.ExecuteStreamScoped("SELECT id FROM sc WHERE sdo_nn(geom, 'POINT (1 1)', 'k=3') = 'TRUE'", scope); err == nil {
		t.Error("scoped sdo_nn accepted")
	}
	// A table without geometry cannot be sharded.
	exec(t, e, "CREATE TABLE plain (id INT, name VARCHAR)")
	exec(t, e, "INSERT INTO plain VALUES (1, 'a')")
	if _, err := e.ExecuteStreamScoped("SELECT id FROM plain", scope); err == nil {
		t.Error("scoped scan of a geometry-less table accepted")
	}
	// A nil scope falls back to plain execution.
	st, err := e.ExecuteStreamScoped("SELECT count(*) FROM sc", nil)
	if err != nil || st.Result == nil || st.Result.Count != 10 {
		t.Errorf("nil scope fallback: st=%+v err=%v", st, err)
	}
}
