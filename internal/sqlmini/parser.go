package sqlmini

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SQL statement (without a trailing semicolon).
func Parse(sql string) (Statement, error) {
	toks, err := lexAll(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sqlmini: trailing input at %q", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// acceptKeyword consumes the next token if it is the given keyword.
func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sqlmini: expected %s, found %q", strings.ToUpper(kw), p.peek().text)
	}
	return nil
}

func (p *parser) expectPunct(c string) error {
	t := p.peek()
	if t.kind == tokPunct && t.text == c {
		p.advance()
		return nil
	}
	return fmt.Errorf("sqlmini: expected %q, found %q", c, t.text)
}

func (p *parser) acceptPunct(c string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == c {
		p.advance()
		return true
	}
	return false
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sqlmini: expected identifier, found %q", t.text)
	}
	p.advance()
	return strings.ToLower(t.text), nil
}

func (p *parser) stringLit() (string, error) {
	t := p.peek()
	if t.kind != tokString {
		return "", fmt.Errorf("sqlmini: expected string literal, found %q", t.text)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) number() (float64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("sqlmini: expected number, found %q", t.text)
	}
	p.advance()
	return strconv.ParseFloat(t.text, 64)
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.acceptKeyword("create"):
		if p.acceptKeyword("table") {
			return p.createTable()
		}
		if p.acceptKeyword("index") {
			return p.createIndex()
		}
		return nil, fmt.Errorf("sqlmini: expected TABLE or INDEX after CREATE")
	case p.acceptKeyword("insert"):
		return p.insert()
	case p.acceptKeyword("select"):
		return p.selectStmt()
	case p.acceptKeyword("delete"):
		return p.deleteStmt()
	case p.acceptKeyword("update"):
		return p.updateStmt()
	default:
		return nil, fmt.Errorf("sqlmini: unsupported statement starting with %q", p.peek().text)
	}
}

func (p *parser) deleteStmt() (Statement, error) {
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := Delete{Table: table}
	if p.acceptKeyword("where") {
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		d.Where = pred
	}
	return d, nil
}

func (p *parser) updateStmt() (Statement, error) {
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	u := Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		t := p.peek()
		var lit Literal
		switch t.kind {
		case tokString:
			p.advance()
			lit = Literal{IsString: true, Str: t.text}
		case tokNumber:
			n, err := p.number()
			if err != nil {
				return nil, err
			}
			lit = Literal{IsNum: true, Num: n}
		default:
			return nil, fmt.Errorf("sqlmini: expected literal after %s =, found %q", col, t.text)
		}
		u.Sets = append(u.Sets, SetClause{Column: col, Value: lit})
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if p.acceptKeyword("where") {
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		u.Where = pred
	}
	return u, nil
}

func (p *parser) createTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		cn, err := p.ident()
		if err != nil {
			return nil, err
		}
		ct, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, ColumnDef{Name: cn, Type: strings.ToUpper(ct)})
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return CreateTable{Name: name, Columns: cols}, nil
}

func (p *parser) insert() (Statement, error) {
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var vals []Literal
	for {
		t := p.peek()
		switch t.kind {
		case tokString:
			p.advance()
			vals = append(vals, Literal{IsString: true, Str: t.text})
		case tokNumber:
			n, err := p.number()
			if err != nil {
				return nil, err
			}
			vals = append(vals, Literal{IsNum: true, Num: n})
		default:
			return nil, fmt.Errorf("sqlmini: expected literal, found %q", t.text)
		}
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return Insert{Table: table, Values: vals}, nil
}

func (p *parser) createIndex() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("indextype"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("is"); err != nil {
		return nil, err
	}
	kind, err := p.ident()
	if err != nil {
		return nil, err
	}
	ci := CreateIndex{Name: name, Table: table, Column: col, Kind: strings.ToUpper(kind), Params: map[string]string{}}
	for {
		switch {
		case p.acceptKeyword("parameters"):
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			raw, err := p.stringLit()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			for _, kv := range strings.Fields(raw) {
				parts := strings.SplitN(kv, "=", 2)
				if len(parts) != 2 {
					return nil, fmt.Errorf("sqlmini: bad parameter %q (want key=value)", kv)
				}
				ci.Params[strings.ToLower(parts[0])] = parts[1]
			}
		case p.acceptKeyword("parallel"):
			n, err := p.number()
			if err != nil {
				return nil, err
			}
			ci.Parallel = int(n)
		default:
			return ci, nil
		}
	}
}

func (p *parser) selectStmt() (Statement, error) {
	var sel Select
	switch {
	case p.acceptKeyword("count"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if err := p.expectPunct("*"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		sel.Count = true
	case p.acceptPunct("*"):
		sel.Star = true
	default:
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			sel.Columns = append(sel.Columns, c)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("table") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		call, err := p.spatialJoinCall()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		sel.From = FromClause{Join: call}
	} else {
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		sel.From = FromClause{Table: table}
		// Optional alias, ignored.
		if p.peek().kind == tokIdent && !isKeyword(p.peek().text) {
			p.advance()
		}
	}
	if p.acceptKeyword("where") {
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		sel.Where = pred
	}
	return sel, nil
}

func isKeyword(s string) bool {
	switch strings.ToLower(s) {
	case "where", "from", "select", "table", "and", "or", "order", "group":
		return true
	}
	return false
}

// spatialJoinCall parses
//
//	SPATIAL_JOIN('t1','c1','t2','c2','mask'|'distance=5'[,'algo=grid'][, parallel])
func (p *parser) spatialJoinCall() (*SpatialJoinCall, error) {
	fn, err := p.ident()
	if err != nil {
		return nil, err
	}
	if fn != "spatial_join" {
		return nil, fmt.Errorf("sqlmini: unsupported table function %q", fn)
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []string
	for {
		s, err := p.stringLit()
		if err != nil {
			// A trailing numeric degree-of-parallelism argument.
			if n, nerr := p.number(); nerr == nil {
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				return buildJoinCall(args, int(n))
			}
			return nil, err
		}
		args = append(args, s)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return buildJoinCall(args, 0)
}

func buildJoinCall(args []string, parallel int) (*SpatialJoinCall, error) {
	if len(args) < 5 || len(args) > 7 {
		return nil, fmt.Errorf("sqlmini: spatial_join expects 5 to 7 string arguments, got %d", len(args))
	}
	call := &SpatialJoinCall{
		TableA: strings.ToLower(args[0]), ColumnA: strings.ToLower(args[1]),
		TableB: strings.ToLower(args[2]), ColumnB: strings.ToLower(args[3]),
		Parallel: parallel,
	}
	spec := strings.ToLower(strings.TrimSpace(args[4]))
	if strings.HasPrefix(spec, "distance=") {
		d, err := strconv.ParseFloat(strings.TrimPrefix(spec, "distance="), 64)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("sqlmini: bad distance in %q", args[4])
		}
		call.Distance = d
		call.Mask = "anyinteract"
	} else {
		call.Mask = spec
	}
	// Optional hints, in any order: 'algo=...' and 'keys=colA:colB'.
	for _, raw := range args[5:] {
		hint := strings.ToLower(strings.TrimSpace(raw))
		switch {
		case strings.HasPrefix(hint, "algo="):
			if call.Algo != "" {
				return nil, fmt.Errorf("sqlmini: duplicate 'algo=' hint")
			}
			call.Algo = strings.TrimPrefix(hint, "algo=")
			switch call.Algo {
			case "auto", "nested", "subtree", "grid":
			default:
				return nil, fmt.Errorf("sqlmini: unknown join algorithm %q (want auto, nested, subtree, or grid)", call.Algo)
			}
		case strings.HasPrefix(hint, "keys="):
			if call.KeyA != "" {
				return nil, fmt.Errorf("sqlmini: duplicate 'keys=' hint")
			}
			a, b, ok := strings.Cut(strings.TrimPrefix(hint, "keys="), ":")
			if !ok || a == "" || b == "" {
				return nil, fmt.Errorf("sqlmini: 'keys=' hint wants keys=colA:colB, got %q", raw)
			}
			call.KeyA, call.KeyB = a, b
		default:
			return nil, fmt.Errorf("sqlmini: spatial_join hint must be 'algo=...' or 'keys=...', got %q", raw)
		}
	}
	return call, nil
}

// predicate parses the two operator forms.
func (p *parser) predicate() (*Predicate, error) {
	op, err := p.ident()
	if err != nil {
		return nil, err
	}
	switch op {
	case "sdo_relate", "sdo_within_distance", "sdo_nn":
	default:
		return nil, fmt.Errorf("sqlmini: unsupported predicate %q", op)
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	// Allow alias.col.
	if p.acceptPunct(".") {
		col, err = p.ident()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	wkt, err := p.stringLit()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	spec, err := p.stringLit()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	// Optional "= 'TRUE'".
	if p.acceptPunct("=") {
		v, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		if !strings.EqualFold(v, "true") {
			return nil, fmt.Errorf("sqlmini: operators can only be compared to 'TRUE'")
		}
	}
	pred := &Predicate{Column: col, QueryWKT: wkt}
	spec = strings.ToLower(strings.TrimSpace(spec))
	switch op {
	case "sdo_relate":
		pred.Op = "relate"
		pred.Mask = strings.TrimPrefix(spec, "mask=")
	case "sdo_within_distance":
		pred.Op = "withindistance"
		d, err := strconv.ParseFloat(strings.TrimPrefix(spec, "distance="), 64)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("sqlmini: bad distance spec %q", spec)
		}
		pred.Distance = d
	case "sdo_nn":
		pred.Op = "nearest"
		k, err := strconv.Atoi(strings.TrimPrefix(spec, "k="))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("sqlmini: bad k spec %q (want k=N)", spec)
		}
		pred.K = k
	}
	return pred, nil
}
