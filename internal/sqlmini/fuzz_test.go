package sqlmini

import "testing"

// FuzzParse feeds arbitrary text to the SQL front end: the lexer and
// parser must reject garbage with an error, never panic or hang.
func FuzzParse(f *testing.F) {
	for _, sql := range []string{
		"",
		"SELECT count(*) FROM cities",
		"SELECT name FROM cities",
		"SELECT * FROM rivers",
		"SELECT name FROM cities WHERE sdo_relate(geom, 'POINT (12 12)', 'mask=contains') = 'TRUE'",
		"SELECT count(*) FROM cities WHERE sdo_within_distance(geom, 'POINT (30 14)', 'distance=8')",
		"SELECT rid1, rid2 FROM TABLE(spatial_join('cities','geom','rivers','geom','anyinteract'))",
		"SELECT count(*) FROM TABLE(spatial_join('cities','geom','cities','geom','distance=7', 2))",
		"CREATE TABLE t (id int, geom geometry)",
		"INSERT INTO t VALUES (1, 'POLYGON ((8 8, 25 8, 25 18, 8 18, 8 8))')",
		"SELECT 'unterminated",
	} {
		f.Add(sql)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		Parse(sql)
	})
}
