package sqlmini

import (
	"strings"
	"testing"
)

func exec(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	r, err := e.Execute(sql)
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return r
}

func execErr(t *testing.T, e *Engine, sql string) error {
	t.Helper()
	_, err := e.Execute(sql)
	if err == nil {
		t.Fatalf("Execute(%q): expected error", sql)
	}
	return err
}

func setupCitiesRivers(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine()
	exec(t, e, "CREATE TABLE cities (id INT, name VARCHAR, geom GEOMETRY)")
	exec(t, e, "CREATE TABLE rivers (id INT, name VARCHAR, geom GEOMETRY)")
	exec(t, e, "INSERT INTO cities VALUES (1, 'springfield', 'POLYGON ((10 10, 14 10, 14 14, 10 14, 10 10))')")
	exec(t, e, "INSERT INTO cities VALUES (2, 'shelbyville', 'POLYGON ((20 12, 23 12, 23 16, 20 16, 20 12))')")
	exec(t, e, "INSERT INTO cities VALUES (3, 'ogdenville', 'POLYGON ((40 40, 44 40, 44 45, 40 45, 40 40))')")
	exec(t, e, "INSERT INTO rivers VALUES (1, 'long_river', 'LINESTRING (5 12, 16 13, 30 14, 50 15)')")
	exec(t, e, "INSERT INTO rivers VALUES (2, 'short_creek', 'LINESTRING (41 20, 42 30, 43 41)')")
	exec(t, e, "CREATE INDEX cities_idx ON cities(geom) INDEXTYPE IS RTREE")
	exec(t, e, "CREATE INDEX rivers_idx ON rivers(geom) INDEXTYPE IS RTREE")
	return e
}

func TestDDLAndDML(t *testing.T) {
	e := setupCitiesRivers(t)
	r := exec(t, e, "SELECT count(*) FROM cities")
	if r.Count != 3 {
		t.Fatalf("count = %d", r.Count)
	}
	r = exec(t, e, "SELECT name FROM cities")
	if len(r.Rows) != 3 || len(r.Columns) != 1 || r.Columns[0] != "name" {
		t.Fatalf("projection: %+v", r)
	}
	r = exec(t, e, "SELECT * FROM rivers")
	if len(r.Rows) != 2 || len(r.Columns) != 3 {
		t.Fatalf("star projection: %+v", r)
	}
}

func TestSdoRelateQuery(t *testing.T) {
	e := setupCitiesRivers(t)
	r := exec(t, e, "SELECT name FROM cities WHERE sdo_relate(geom, 'POLYGON ((8 8, 25 8, 25 18, 8 18, 8 8))', 'mask=anyinteract') = 'TRUE'")
	if len(r.Rows) != 2 {
		t.Fatalf("relate rows: %+v", r.Rows)
	}
	names := map[string]bool{}
	for _, row := range r.Rows {
		names[row[0]] = true
	}
	if !names["springfield"] || !names["shelbyville"] {
		t.Fatalf("wrong cities: %v", names)
	}
	// Alias form a.geom.
	r = exec(t, e, "SELECT count(*) FROM cities a WHERE sdo_relate(a.geom, 'POINT (12 12)', 'mask=contains') = 'TRUE'")
	if r.Count != 1 {
		t.Fatalf("contains count = %d", r.Count)
	}
}

func TestSdoWithinDistanceQuery(t *testing.T) {
	e := setupCitiesRivers(t)
	r := exec(t, e, "SELECT count(*) FROM cities WHERE sdo_within_distance(geom, 'POINT (30 14)', 'distance=8')")
	if r.Count != 1 {
		t.Fatalf("within-distance count = %d", r.Count)
	}
}

func TestSpatialJoinTableFunction(t *testing.T) {
	e := setupCitiesRivers(t)
	// The paper's query form, §4.
	r := exec(t, e, "SELECT count(*) FROM TABLE(spatial_join('cities','geom','rivers','geom','anyinteract'))")
	if r.Count != 3 {
		t.Fatalf("join count = %d, want 3", r.Count)
	}
	// Projection of the rowid pair columns.
	r = exec(t, e, "SELECT rid1, rid2 FROM TABLE(spatial_join('cities','geom','rivers','geom','anyinteract'))")
	if len(r.Rows) != 3 || r.Columns[0] != "rid1" || r.Columns[1] != "rid2" {
		t.Fatalf("join projection: %+v", r)
	}
	// Parallel degree argument.
	r = exec(t, e, "SELECT count(*) FROM TABLE(spatial_join('cities','geom','rivers','geom','anyinteract', 2))")
	if r.Count != 3 {
		t.Fatalf("parallel join count = %d", r.Count)
	}
	// Within-distance join.
	r = exec(t, e, "SELECT count(*) FROM TABLE(spatial_join('cities','geom','cities','geom','distance=7'))")
	if r.Count < 3 {
		t.Fatalf("distance self-join count = %d", r.Count)
	}
}

func TestSpatialJoinAlgoHint(t *testing.T) {
	e := setupCitiesRivers(t)
	// Every algo hint must produce the same result set as the default.
	for _, hint := range []string{"grid", "subtree", "nested", "auto"} {
		r := exec(t, e, "SELECT count(*) FROM TABLE(spatial_join('cities','geom','rivers','geom','anyinteract','algo="+hint+"', 4))")
		if r.Count != 3 {
			t.Fatalf("algo=%s join count = %d, want 3", hint, r.Count)
		}
	}
	// Distance spec composes with the hint.
	r := exec(t, e, "SELECT count(*) FROM TABLE(spatial_join('cities','geom','cities','geom','distance=7','algo=grid'))")
	if r.Count < 3 {
		t.Fatalf("grid distance self-join count = %d", r.Count)
	}
	execErr(t, e, "SELECT count(*) FROM TABLE(spatial_join('cities','geom','rivers','geom','anyinteract','algo=bogus'))")
	execErr(t, e, "SELECT count(*) FROM TABLE(spatial_join('cities','geom','rivers','geom','anyinteract','parallel=2'))")
}

func TestQuadtreeIndexViaSQL(t *testing.T) {
	e := setupCitiesRivers(t)
	exec(t, e, "CREATE INDEX cities_qt ON cities(geom) INDEXTYPE IS QUADTREE PARAMETERS('level=7 bounds=0,0,100,100') PARALLEL 2")
	// The relate executor may use either index; result must match.
	r := exec(t, e, "SELECT count(*) FROM cities WHERE sdo_relate(geom, 'POLYGON ((8 8, 25 8, 25 18, 8 18, 8 8))', 'mask=anyinteract')")
	if r.Count != 2 {
		t.Fatalf("count with quadtree present = %d", r.Count)
	}
}

func TestErrors(t *testing.T) {
	e := NewEngine()
	execErr(t, e, "DROP TABLE x")
	execErr(t, e, "CREATE TABLE t (a BOGUSTYPE)")
	exec(t, e, "CREATE TABLE t (a INT, g GEOMETRY)")
	execErr(t, e, "INSERT INTO t VALUES (1)")                  // arity
	execErr(t, e, "INSERT INTO t VALUES ('x', 'POINT (0 0)')") // type
	execErr(t, e, "INSERT INTO t VALUES (1, 'NOT A WKT')")     // geometry
	execErr(t, e, "SELECT nope FROM t")                        // column
	execErr(t, e, "SELECT count(*) FROM missing")              // table
	exec(t, e, "INSERT INTO t VALUES (1, 'POINT (1 1)')")
	// Query without an index.
	execErr(t, e, "SELECT count(*) FROM t WHERE sdo_relate(g, 'POINT (1 1)', 'mask=anyinteract')")
	execErr(t, e, "CREATE INDEX i ON t(g) INDEXTYPE IS HASHMAP")
	execErr(t, e, "SELECT count(*) FROM TABLE(nosuch_fn('a','b','c','d','e'))")
	execErr(t, e, "SELECT count(*) FROM TABLE(spatial_join('a','b','c'))") // arity
	execErr(t, e, "SELECT count(*) FROM t WHERE sdo_relate(g, 'POINT (1 1)', 'mask=anyinteract') = 'FALSE'")
	execErr(t, e, "SELECT count(*) FROM t extra tokens here")
}

func TestParserDetails(t *testing.T) {
	// Case insensitivity and quoting.
	stmt, err := Parse("select COUNT ( * ) from T where SDO_RELATE(G, 'POINT (1 1)', 'MASK=TOUCH') = 'true'")
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := stmt.(Select)
	if !ok || !sel.Count || sel.From.Table != "t" || sel.Where == nil || sel.Where.Mask != "touch" {
		t.Fatalf("parsed %+v", stmt)
	}
	// Escaped quotes in strings.
	stmt, err = Parse("INSERT INTO t VALUES ('it''s', 1)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(Insert)
	if ins.Values[0].Str != "it's" {
		t.Fatalf("escaped string = %q", ins.Values[0].Str)
	}
	// spatial_join distance spec.
	stmt, err = Parse("SELECT count(*) FROM TABLE(spatial_join('a','g','b','g','distance=2.5'))")
	if err != nil {
		t.Fatal(err)
	}
	call := stmt.(Select).From.Join
	if call.Distance != 2.5 || call.Mask != "anyinteract" {
		t.Fatalf("join call %+v", call)
	}
	// spatial_join algo hint, with and without a trailing parallel degree.
	stmt, err = Parse("SELECT count(*) FROM TABLE(spatial_join('a','g','b','g','anyinteract','ALGO=GRID', 8))")
	if err != nil {
		t.Fatal(err)
	}
	call = stmt.(Select).From.Join
	if call.Algo != "grid" || call.Parallel != 8 || call.Mask != "anyinteract" {
		t.Fatalf("join call %+v", call)
	}
	stmt, err = Parse("SELECT count(*) FROM TABLE(spatial_join('a','g','b','g','distance=1','algo=auto'))")
	if err != nil {
		t.Fatal(err)
	}
	call = stmt.(Select).From.Join
	if call.Algo != "auto" || call.Distance != 1 {
		t.Fatalf("join call %+v", call)
	}
	// Unterminated string.
	if _, err := Parse("INSERT INTO t VALUES ('oops)"); err == nil {
		t.Fatalf("unterminated string accepted")
	}
	// Numbers with exponents.
	stmt, err = Parse("INSERT INTO t VALUES (1.5e2)")
	if err != nil {
		t.Fatal(err)
	}
	if v := stmt.(Insert).Values[0]; !v.IsNum || v.Num != 150 {
		t.Fatalf("exponent literal = %+v", v)
	}
}

func TestResultFormat(t *testing.T) {
	r := &Result{Columns: []string{"a", "long_column"}, Rows: [][]string{{"1", strings.Repeat("x", 100)}}}
	out := r.Format()
	if !strings.Contains(out, "a") || !strings.Contains(out, "...") || !strings.Contains(out, "(1 rows)") {
		t.Fatalf("format output:\n%s", out)
	}
	msg := &Result{Message: "done"}
	if msg.Format() != "done\n" {
		t.Fatalf("message format = %q", msg.Format())
	}
}

func TestSdoNNQuery(t *testing.T) {
	e := setupCitiesRivers(t)
	r := exec(t, e, "SELECT name FROM cities WHERE sdo_nn(geom, 'POINT (9 9)', 'k=2')")
	if len(r.Rows) != 2 {
		t.Fatalf("sdo_nn rows: %+v", r.Rows)
	}
	// Ranking order: springfield (closest) then shelbyville.
	if r.Rows[0][0] != "springfield" || r.Rows[1][0] != "shelbyville" {
		t.Fatalf("wrong ranking: %+v", r.Rows)
	}
	execErr(t, e, "SELECT name FROM cities WHERE sdo_nn(geom, 'POINT (9 9)', 'k=0')")
	execErr(t, e, "SELECT name FROM cities WHERE sdo_nn(geom, 'POINT (9 9)', 'bogus')")
}

func TestDeleteStatement(t *testing.T) {
	e := setupCitiesRivers(t)
	// Delete cities intersecting a window; index maintenance must make
	// later queries consistent.
	r := exec(t, e, "DELETE FROM cities WHERE sdo_relate(geom, 'POLYGON ((8 8, 25 8, 25 18, 8 18, 8 8))', 'mask=anyinteract')")
	if !strings.Contains(r.Message, "2 rows deleted") {
		t.Fatalf("delete message: %q", r.Message)
	}
	r = exec(t, e, "SELECT count(*) FROM cities")
	if r.Count != 1 {
		t.Fatalf("count after delete = %d", r.Count)
	}
	r = exec(t, e, "SELECT count(*) FROM cities WHERE sdo_relate(geom, 'POLYGON ((8 8, 25 8, 25 18, 8 18, 8 8))', 'mask=anyinteract')")
	if r.Count != 0 {
		t.Fatalf("deleted rows still indexed: %d", r.Count)
	}
	// Unconditional delete.
	r = exec(t, e, "DELETE FROM rivers")
	if !strings.Contains(r.Message, "2 rows deleted") {
		t.Fatalf("delete-all message: %q", r.Message)
	}
}

func TestUpdateStatement(t *testing.T) {
	e := setupCitiesRivers(t)
	// Move springfield far away; the spatial index must follow.
	r := exec(t, e, "UPDATE cities SET geom = 'POLYGON ((90 90, 94 90, 94 94, 90 94, 90 90))', name = 'springfield_moved' WHERE sdo_relate(geom, 'POINT (12 12)', 'mask=contains')")
	if !strings.Contains(r.Message, "1 rows updated") {
		t.Fatalf("update message: %q", r.Message)
	}
	r = exec(t, e, "SELECT name FROM cities WHERE sdo_relate(geom, 'POLYGON ((89 89, 95 89, 95 95, 89 95, 89 89))', 'mask=anyinteract')")
	if len(r.Rows) != 1 || r.Rows[0][0] != "springfield_moved" {
		t.Fatalf("moved city not found at new location: %+v", r.Rows)
	}
	r = exec(t, e, "SELECT count(*) FROM cities WHERE sdo_relate(geom, 'POINT (12 12)', 'mask=contains')")
	if r.Count != 0 {
		t.Fatalf("old location still indexed")
	}
	// Non-spatial update.
	r = exec(t, e, "UPDATE cities SET id = 99")
	if !strings.Contains(r.Message, "3 rows updated") {
		t.Fatalf("update-all message: %q", r.Message)
	}
	// Errors.
	execErr(t, e, "UPDATE cities SET nope = 1")
	execErr(t, e, "UPDATE cities SET id = 'str'")
	execErr(t, e, "UPDATE cities SET geom = 'BROKEN WKT'")
	execErr(t, e, "DELETE FROM missing")
}

func TestEngineOnSharedDB(t *testing.T) {
	e := NewEngine()
	exec(t, e, "CREATE TABLE t (a INT, g GEOMETRY)")
	// A second engine over the same DB sees the table.
	e2 := NewEngineOn(e.DB())
	exec(t, e2, "INSERT INTO t VALUES (1, 'POINT (0 0)')")
	r := exec(t, e, "SELECT count(*) FROM t")
	if r.Count != 1 {
		t.Fatalf("shared DB count = %d", r.Count)
	}
}
