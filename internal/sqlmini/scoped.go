package sqlmini

import (
	"fmt"

	"spatialtf"
	"spatialtf/internal/geom"
	"spatialtf/internal/storage"
)

// Scoped execution: the shard-side half of a cluster scatter-gather
// query. The coordinator sends every shard the same SELECT plus a
// ClusterScope; each shard evaluates it over its replicated slice and
// keeps only the results whose reference point lands in a tile the
// scope owns, so concatenating the shard streams yields every result
// exactly once (see spatialtf.ClusterScope for the reference-point
// rules).

// ExecuteStreamScoped parses and runs one statement under a cluster
// scope. Only SELECT statements (including COUNT and spatial_join row
// sources) can be scoped; DDL/DML and sdo_nn are routed differently by
// the coordinator and are rejected here.
func (e *Engine) ExecuteStreamScoped(sql string, scope *spatialtf.ClusterScope) (*Stream, error) {
	if scope == nil {
		return e.ExecuteStream(sql)
	}
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	s, ok := stmt.(Select)
	if !ok {
		return nil, fmt.Errorf("sqlmini: scoped execution supports SELECT only, got %T", stmt)
	}
	if s.From.Join != nil {
		if s.Count {
			return e.scopedJoinCount(s, scope)
		}
		return e.streamJoinSelectScoped(s, scope)
	}
	return e.scopedTableSelect(s, scope)
}

// scopedJoinCount drains a scoped join and returns the shard-local
// count; the coordinator sums the shards.
func (e *Engine) scopedJoinCount(s Select, scope *spatialtf.ClusterScope) (*Stream, error) {
	sc := s
	sc.Count = false
	st, err := e.streamJoinSelectScoped(sc, scope)
	if err != nil {
		return nil, err
	}
	n, err := drainCount(st.Cursor)
	if err != nil {
		return nil, err
	}
	return countStream(n), nil
}

// scopedTableSelect evaluates a base-table SELECT under a scope: rows
// whose reference point this shard owns, with the scan and predicate
// reference-point rules of spatialtf.ClusterScope.
func (e *Engine) scopedTableSelect(s Select, scope *spatialtf.ClusterScope) (*Stream, error) {
	tab, err := e.db.Table(s.From.Table)
	if err != nil {
		return nil, err
	}
	schema := tab.Inner().Schema()
	geomIdx := -1
	for i, c := range schema {
		if c.Type == storage.TGeometry {
			geomIdx = i
			break
		}
	}
	if geomIdx < 0 {
		return nil, fmt.Errorf("sqlmini: table %q has no GEOMETRY column; a scoped query cannot shard it", s.From.Table)
	}

	var colIdx []int
	var outSchema []storage.Column
	if s.Star || s.Count {
		for i, c := range schema {
			colIdx = append(colIdx, i)
			outSchema = append(outSchema, c)
		}
	} else {
		for _, want := range s.Columns {
			i, err := tab.Inner().ColumnIndex(want)
			if err != nil {
				return nil, err
			}
			colIdx = append(colIdx, i)
			outSchema = append(outSchema, schema[i])
		}
	}

	if s.Where == nil {
		// Plain scan: the reference point is the row MBR's bottom-left
		// corner. The scope filter sees the full row (pre-projection) so
		// the geometry column is always available.
		cur := &scopeScanCursor{
			in:      storage.NewCursor(tab.Inner()),
			geomIdx: geomIdx,
			scope:   scope,
		}
		if s.Count {
			n, err := drainCount(cur)
			if err != nil {
				return nil, err
			}
			return countStream(n), nil
		}
		return &Stream{
			Schema: outSchema,
			Cursor: &projectCursor{in: cur, cols: colIdx},
		}, nil
	}

	// Predicate path: resolve the matching rowids through the index as
	// usual, then keep the ids whose window reference point this shard
	// owns.
	if s.Where.Op == "nearest" {
		return nil, fmt.Errorf("sqlmini: sdo_nn cannot run under a cluster scope (a k-nearest result is not spatially decomposable)")
	}
	q, err := spatialtf.ParseWKT(s.Where.QueryWKT)
	if err != nil {
		return nil, fmt.Errorf("sqlmini: query geometry: %w", err)
	}
	qMBR := geom.MBROf(q)
	d := 0.0
	if s.Where.Op == "withindistance" {
		d = s.Where.Distance
	}
	ids, err := e.whereIDs(s.From.Table, tab, s.Where)
	if err != nil {
		return nil, err
	}
	kept := ids[:0]
	for _, id := range ids {
		v, err := tab.Inner().FetchColumn(id, geomIdx)
		if err != nil {
			return nil, err
		}
		if scope.OwnsWindow(geom.MBROf(v.G), qMBR, d) {
			kept = append(kept, id)
		}
	}
	if s.Count {
		return countStream(len(kept)), nil
	}
	return &Stream{
		Schema: outSchema,
		Cursor: &fetchCursor{tab: tab, ids: kept, cols: colIdx},
	}, nil
}

// scopeScanCursor keeps the scanned rows whose MBR bottom-left corner
// the scope owns.
type scopeScanCursor struct {
	in      storage.Cursor
	geomIdx int
	scope   *spatialtf.ClusterScope
}

func (c *scopeScanCursor) Next() (storage.RowID, storage.Row, bool, error) {
	for {
		id, row, ok, err := c.in.Next()
		if err != nil || !ok {
			return id, nil, ok, err
		}
		if c.scope.OwnsMBR(geom.MBROf(row[c.geomIdx].G)) {
			return id, row, true, nil
		}
	}
}

func (c *scopeScanCursor) Close() error { return c.in.Close() }

// drainCount counts and closes a cursor.
func drainCount(cur storage.Cursor) (int, error) {
	n := 0
	for {
		_, _, ok, err := cur.Next()
		if err != nil {
			cur.Close()
			return 0, err
		}
		if !ok {
			break
		}
		n++
	}
	return n, cur.Close()
}

// countStream wraps a COUNT(*) outcome as an immediate result stream.
func countStream(n int) *Stream {
	return &Stream{Result: &Result{Count: n, Columns: []string{"COUNT(*)"},
		Rows: [][]string{{fmt.Sprintf("%d", n)}}}}
}
