package sqlmini

import (
	"testing"

	"spatialtf/internal/storage"
)

func streamEngine(t *testing.T) *Engine {
	t.Helper()
	eng := NewEngine()
	stmts := []string{
		"CREATE TABLE cities (id INT, name VARCHAR, geom GEOMETRY)",
		"INSERT INTO cities VALUES (1, 'springfield', 'POLYGON ((10 10, 14 10, 14 14, 10 14, 10 10))')",
		"INSERT INTO cities VALUES (2, 'shelbyville', 'POLYGON ((30 30, 34 30, 34 34, 30 34, 30 30))')",
		"INSERT INTO cities VALUES (3, 'ogdenville', 'POLYGON ((12 12, 16 12, 16 16, 12 16, 12 12))')",
		"CREATE INDEX cities_idx ON cities(geom) INDEXTYPE IS RTREE",
	}
	for _, s := range stmts {
		if _, err := eng.Execute(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	return eng
}

func drain(t *testing.T, cur storage.Cursor) []storage.Row {
	t.Helper()
	defer cur.Close()
	var rows []storage.Row
	for {
		_, row, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return rows
		}
		rows = append(rows, row)
	}
}

func TestExecuteStreamImmediate(t *testing.T) {
	eng := streamEngine(t)
	s, err := eng.ExecuteStream("INSERT INTO cities VALUES (4, 'capital', 'POINT (50 50)')")
	if err != nil {
		t.Fatal(err)
	}
	if s.Result == nil || s.Cursor != nil {
		t.Fatalf("INSERT should be immediate: %+v", s)
	}
	s, err = eng.ExecuteStream("SELECT count(*) FROM cities")
	if err != nil {
		t.Fatal(err)
	}
	if s.Result == nil || s.Result.Count != 4 {
		t.Fatalf("COUNT should be immediate with count 4: %+v", s.Result)
	}
}

func TestExecuteStreamTableScan(t *testing.T) {
	eng := streamEngine(t)
	s, err := eng.ExecuteStream("SELECT name FROM cities")
	if err != nil {
		t.Fatal(err)
	}
	if s.Cursor == nil || len(s.Schema) != 1 || s.Schema[0].Name != "name" || s.Schema[0].Type != storage.TString {
		t.Fatalf("scan stream = %+v", s)
	}
	rows := drain(t, s.Cursor)
	if len(rows) != 3 {
		t.Fatalf("scan streamed %d rows, want 3", len(rows))
	}
}

func TestExecuteStreamSpatialWhere(t *testing.T) {
	eng := streamEngine(t)
	s, err := eng.ExecuteStream("SELECT name FROM cities WHERE sdo_relate(geom, 'POINT (13 13)', 'mask=contains') = 'TRUE'")
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, s.Cursor)
	got := map[string]bool{}
	for _, r := range rows {
		got[r[0].S] = true
	}
	if len(got) != 2 || !got["springfield"] || !got["ogdenville"] {
		t.Fatalf("contains(13,13) streamed %v", got)
	}
}

func TestExecuteStreamJoin(t *testing.T) {
	eng := streamEngine(t)
	s, err := eng.ExecuteStream("SELECT rid1, rid2 FROM TABLE(spatial_join('cities','geom','cities','geom','anyinteract', 0))")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Schema) != 2 || s.Schema[0].Name != "rid1" || s.Schema[1].Name != "rid2" {
		t.Fatalf("join schema = %+v", s.Schema)
	}
	rows := drain(t, s.Cursor)
	// Streaming must agree with the materialised COUNT execution.
	res, err := eng.Execute("SELECT count(*) FROM TABLE(spatial_join('cities','geom','cities','geom','anyinteract', 0))")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != res.Count {
		t.Fatalf("streamed %d join rows, COUNT says %d", len(rows), res.Count)
	}
	if len(rows) < 3 {
		t.Fatalf("self-join of 3 rows streamed only %d pairs", len(rows))
	}
}

func TestExecuteStreamErrors(t *testing.T) {
	eng := streamEngine(t)
	if _, err := eng.ExecuteStream("SELECT bogus FROM cities"); err == nil {
		t.Errorf("unknown column accepted")
	}
	if _, err := eng.ExecuteStream("SELECT nope FROM TABLE(spatial_join('cities','geom','cities','geom','anyinteract', 0))"); err == nil {
		t.Errorf("unknown join column accepted")
	}
	if _, err := eng.ExecuteStream("SELECT name FROM missing"); err == nil {
		t.Errorf("missing table accepted")
	}
}
