// Package sqlmini implements the SQL surface of the paper: a minimal
// parser and executor for exactly the statement forms its examples use —
// CREATE TABLE, INSERT, CREATE INDEX ... INDEXTYPE IS ... [PARALLEL n],
// and SELECT with the sdo_relate / sdo_within_distance operators or a
// TABLE(spatial_join(...)) row source. It drives the spatialtf facade,
// so queries typed into cmd/spatialsql execute through the same table
// functions the library exposes programmatically.
package sqlmini

import (
	"fmt"
	"strings"
)

// tokKind classifies lexer tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString // '...'-quoted
	tokPunct  // single-char punctuation: ( ) , * = .
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer splits a statement into tokens. SQL keywords are case
// insensitive; the lexer preserves original text and comparisons use
// EqualFold.
type lexer struct {
	in  string
	pos int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.in) && isSpace(l.in[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.in) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.in[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.in) && isIdentPart(l.in[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.in[start:l.pos], pos: start}, nil
	case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.in) && l.in[l.pos+1] >= '0' && l.in[l.pos+1] <= '9':
		l.pos++
		for l.pos < len(l.in) && (l.in[l.pos] >= '0' && l.in[l.pos] <= '9' || l.in[l.pos] == '.' || l.in[l.pos] == 'e' || l.in[l.pos] == 'E' || l.in[l.pos] == '+' || l.in[l.pos] == '-') {
			// Stop minus/plus unless after an exponent marker.
			if (l.in[l.pos] == '-' || l.in[l.pos] == '+') && !(l.in[l.pos-1] == 'e' || l.in[l.pos-1] == 'E') {
				break
			}
			l.pos++
		}
		return token{kind: tokNumber, text: l.in[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.in) {
				return token{}, fmt.Errorf("sqlmini: unterminated string at offset %d", start)
			}
			if l.in[l.pos] == '\'' {
				// '' is an escaped quote.
				if l.pos+1 < len(l.in) && l.in[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(l.in[l.pos])
			l.pos++
		}
		return token{kind: tokString, text: sb.String(), pos: start}, nil
	case strings.IndexByte("(),*=.", c) >= 0:
		l.pos++
		return token{kind: tokPunct, text: string(c), pos: start}, nil
	default:
		return token{}, fmt.Errorf("sqlmini: unexpected character %q at offset %d", string(c), l.pos)
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

// lexAll tokenizes the whole input.
func lexAll(in string) ([]token, error) {
	l := &lexer{in: in}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
