package telemetry

import (
	"fmt"
	"log"
	"strings"
	"sync/atomic"
	"time"
)

// Stage enumerates the traced pipeline stages: the table-function
// lifecycle (§2 of the paper) plus the spatial-join internals (§4.2).
// Stages are array indexes, not map keys, so recording a span is two
// atomic adds.
type Stage uint8

// Traced stages.
const (
	// StageStart is the table function's start call.
	StageStart Stage = iota
	// StageFetch is one fetch call (a batch of rows).
	StageFetch
	// StageClose is the table function's close call.
	StageClose
	// StagePrimary is one primary-filter refill (the synchronized
	// R-tree traversal / plane sweep filling the candidate array).
	StagePrimary
	// StageSort is the candidate-array sort by first rowid.
	StageSort
	// StageSecondary is one secondary-filter drain (exact predicate
	// over fetched geometries).
	StageSecondary
	// StageGeomFetch is one base-table geometry fetch inside the
	// secondary filter. Counted exactly but timed by 1-in-16 sampling
	// with the sampled duration scaled up, and only when a per-query
	// trace is attached — per-fetch clock reads are the one
	// per-candidate cost, too hot even for the traced path.
	StageGeomFetch
	// StageGridPartition is the one-time build of the grid-partitioned
	// parallel join: assigning both inputs' MBRs to tiles and
	// classifying them into the two-layer duplicate-avoidance classes.
	StageGridPartition
	// StageTileSweep is one tile's plane sweep in the grid-partitioned
	// join — the per-tile primary filter. The span count is the tile
	// count, so the trace exposes per-tile skew directly.
	StageTileSweep
	// StageScatter is the cluster coordinator's fan-out: opening the
	// per-shard remote cursors of one scatter-gather query. The span
	// count is the shard count contacted.
	StageScatter
	// StageMerge is one merged-batch production in the coordinator's
	// gather loop: pulling remote batches off the scatter instances and
	// concatenating them into the client-facing stream.
	StageMerge
	// NumStages sizes per-stage arrays.
	NumStages
)

// String returns the stage's snake_case name.
func (s Stage) String() string {
	switch s {
	case StageStart:
		return "start"
	case StageFetch:
		return "fetch"
	case StageClose:
		return "close"
	case StagePrimary:
		return "primary_filter"
	case StageSort:
		return "candidate_sort"
	case StageSecondary:
		return "secondary_filter"
	case StageGeomFetch:
		return "geom_fetch"
	case StageGridPartition:
		return "grid_partition"
	case StageTileSweep:
		return "tile_sweep"
	case StageScatter:
		return "scatter"
	case StageMerge:
		return "merge"
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// stageAgg is one stage's accumulated spans. Atomics, because the
// parallel join's instances feed one shared Trace.
type stageAgg struct {
	nanos atomic.Int64
	count atomic.Int64
}

// Trace accumulates the per-stage time of one query (or one join
// cursor) from begin to Finish. A nil *Trace is a no-op, which is the
// disabled default — callers thread a *Trace unconditionally and pay
// one nil check per span.
type Trace struct {
	tracer *Tracer
	label  string
	t0     time.Time
	stages [NumStages]stageAgg
	done   atomic.Bool
}

// Span opens a span for stage s and returns the function that closes
// it; use as `defer tr.Span(telemetry.StagePrimary)()` or bracket a
// region. On a nil trace the returned func is a shared no-op.
func (t *Trace) Span(s Stage) func() {
	if t == nil {
		return nopEnd
	}
	start := time.Now()
	return func() { t.Add(s, time.Since(start), 1) }
}

var nopEnd = func() {}

// Add records n completed spans of stage s totalling d.
func (t *Trace) Add(s Stage, d time.Duration, n int64) {
	if t == nil {
		return
	}
	t.stages[s].nanos.Add(int64(d))
	t.stages[s].count.Add(n)
}

// StageTotal returns the accumulated duration and span count of stage
// s (zeros on a nil trace).
func (t *Trace) StageTotal(s Stage) (time.Duration, int64) {
	if t == nil {
		return 0, 0
	}
	return time.Duration(t.stages[s].nanos.Load()), t.stages[s].count.Load()
}

// Elapsed returns the wall time since the trace began.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.t0)
}

// String renders the trace as one line: label, elapsed, then each
// stage with spans and accumulated time.
func (t *Trace) String() string {
	if t == nil {
		return "<nil trace>"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s elapsed=%s", t.label, t.Elapsed().Round(time.Microsecond))
	for s := Stage(0); s < NumStages; s++ {
		d, n := t.StageTotal(s)
		if n == 0 && d == 0 {
			continue
		}
		fmt.Fprintf(&sb, " %s=%s/%d", s, d.Round(time.Microsecond), n)
	}
	return sb.String()
}

// Finish closes the trace: the tracer's query histogram observes the
// total elapsed time, and — when the total is at or above the slow
// threshold — the trace is emitted on the slow log. Finish is
// idempotent and nil-safe (cursors can be closed twice).
func (t *Trace) Finish() {
	if t == nil || !t.done.CompareAndSwap(false, true) {
		return
	}
	tr := t.tracer
	elapsed := t.Elapsed()
	tr.querySeconds.Observe(elapsed.Seconds())
	thr := time.Duration(tr.threshold.Load())
	if thr >= 0 && elapsed >= thr {
		tr.slowTotal.Inc()
		tr.logf("slow query (>=%s): %s", thr, t)
	}
}

// Tracer mints per-query traces and owns the slow-log policy. A nil
// *Tracer never traces (Begin returns nil).
type Tracer struct {
	reg          *Registry
	threshold    atomic.Int64 // slow-log threshold in nanoseconds; < 0 disables
	logf         func(format string, args ...any)
	querySeconds *Histogram
	slowTotal    *Counter
}

// NewTracer returns a tracer that observes per-query latency into reg
// (which may be Nop) and emits traces slower than threshold through
// logf (default log.Printf). threshold < 0 disables the slow log;
// threshold 0 logs every query.
func NewTracer(reg *Registry, threshold time.Duration, logf func(format string, args ...any)) *Tracer {
	if logf == nil {
		logf = log.Printf
	}
	tr := &Tracer{
		reg:  reg,
		logf: logf,
		querySeconds: reg.NewHistogram("query_seconds",
			"end-to-end traced query latency", nil),
		slowTotal: reg.NewCounter("query_slow_total",
			"traced queries at or above the slow-query threshold"),
	}
	tr.threshold.Store(int64(threshold))
	return tr
}

// Begin opens a trace labelled label. On a nil tracer it returns nil —
// the no-op trace.
func (tr *Tracer) Begin(label string) *Trace {
	if tr == nil {
		return nil
	}
	return &Trace{tracer: tr, label: label, t0: time.Now()}
}

// SetThreshold replaces the slow-log threshold; safe for concurrent
// use (shell toggles like \trace on race against in-flight queries).
func (tr *Tracer) SetThreshold(d time.Duration) {
	if tr != nil {
		tr.threshold.Store(int64(d))
	}
}
