// Package telemetry is the unified observability subsystem: a metrics
// registry (atomic counters, gauges, and fixed-bucket histograms with
// preregistered handles, so hot loops never touch a map), lightweight
// span tracing over the table-function start–fetch–close lifecycle and
// the spatial-join stages, and Prometheus-style text exposition.
//
// The paper's pipelined table functions exist so the kernel can observe
// and overlap the start–fetch–close lifecycle of a join (§4); this
// package makes that lifecycle visible. Every ad-hoc counter in the
// engine (server stats, join stats, geometry-cache stats) reads and
// writes through one registry, which a scrape endpoint, the wire
// protocol's Metrics frame, and the SQL shells all render from.
//
// # Zero cost when disabled
//
// A nil *Registry (telemetry.Nop) is a valid registry: every
// constructor on it returns a nil handle, and every method on a nil
// handle is a no-op — one predictable nil check, no atomics, no
// allocation. Embedded DB use defaults to Nop; the network server and
// the daemons enable a real registry.
//
// # Metric names
//
// Names are lowercase_snake ([a-z][a-z0-9_]*), unique per registry.
// Registration panics on a malformed or duplicate name: metric sets
// are static program structure, so a bad name is a programming error —
// and the spatiallint `metricname` rule rejects it at lint time before
// it can panic at run time.
package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// Nop is the disabled registry: constructors on it return nil handles
// whose methods do nothing. It is the default for embedded DB use.
var Nop *Registry

// Kind tags a metric for exposition and the wire codec.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// validName is the metric naming rule: lowercase_snake, led by a
// letter. The spatiallint metricname rule enforces the same pattern on
// registration literals.
var validName = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// metric is the registry's view of one registered series.
type metric interface {
	name() string
	help() string
	kind() Kind
	point() Point
}

// Registry holds a process's (or server's) metric set. All methods are
// safe for concurrent use; handle updates are lock-free. A nil
// *Registry is the disabled (Nop) registry.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]metric
	ordered []metric
}

// New returns an empty enabled registry.
func New() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// register validates and stores a metric; panics on a malformed or
// duplicate name (static program structure, checked by spatiallint).
func (r *Registry) register(m metric) {
	if !validName.MatchString(m.name()) {
		panic(fmt.Sprintf("telemetry: metric name %q is not lowercase_snake", m.name()))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name()]; dup {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", m.name()))
	}
	r.byName[m.name()] = m
	r.ordered = append(r.ordered, m)
}

// --- counter ---

// Counter is a monotonically increasing value. A nil Counter is a
// no-op.
type Counter struct {
	nm, hp string
	v      atomic.Int64
}

// NewCounter registers and returns a counter handle (nil on a nil
// registry).
func (r *Registry) NewCounter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{nm: name, hp: help}
	r.register(c)
	return c
}

// Add increments the counter by n (n must be >= 0; negative deltas are
// ignored so a counter stays monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) name() string { return c.nm }
func (c *Counter) help() string { return c.hp }
func (c *Counter) kind() Kind   { return KindCounter }
func (c *Counter) point() Point {
	return Point{Name: c.nm, Help: c.hp, Kind: KindCounter, Value: float64(c.v.Load())}
}

// --- gauge ---

// Gauge is an instantaneous value that can go up and down. A nil Gauge
// is a no-op.
type Gauge struct {
	nm, hp string
	v      atomic.Int64
}

// NewGauge registers and returns a gauge handle (nil on a nil
// registry).
func (r *Registry) NewGauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{nm: name, hp: help}
	r.register(g)
	return g
}

// Add moves the gauge by delta (either sign).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) name() string { return g.nm }
func (g *Gauge) help() string { return g.hp }
func (g *Gauge) kind() Kind   { return KindGauge }
func (g *Gauge) point() Point {
	return Point{Name: g.nm, Help: g.hp, Kind: KindGauge, Value: float64(g.v.Load())}
}

// --- callback metrics (views over pre-existing counters) ---

// funcMetric exposes a value read from a callback at scrape time. It
// lets subsystems that keep their own atomics (the geometry cache, the
// R-tree pin accounting) appear in the registry without double
// counting — the original atomic stays the single source of truth and
// the registry holds a view.
type funcMetric struct {
	nm, hp string
	kd     Kind
	fn     func() int64
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time. fn must be monotonic and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	r.register(&funcMetric{nm: name, hp: help, kd: KindCounter, fn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	r.register(&funcMetric{nm: name, hp: help, kd: KindGauge, fn: fn})
}

func (m *funcMetric) name() string { return m.nm }
func (m *funcMetric) help() string { return m.hp }
func (m *funcMetric) kind() Kind   { return m.kd }
func (m *funcMetric) point() Point {
	return Point{Name: m.nm, Help: m.hp, Kind: m.kd, Value: float64(m.fn())}
}

// --- histogram ---

// Histogram is a fixed-bucket distribution. Buckets are upper bounds
// in ascending order; an implicit +Inf bucket catches the overflow.
// Observe is lock-free: one atomic add into the bucket counter plus a
// CAS loop on the sum. A nil Histogram is a no-op.
type Histogram struct {
	nm, hp string
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

// DefBuckets is the default latency bucket layout, in seconds: 10µs to
// ~10s, quadrupling — wide enough for both an in-memory node visit and
// a cold full-table join.
var DefBuckets = []float64{
	1e-5, 4e-5, 16e-5, 64e-5, 256e-5, 1024e-5, 4096e-5, 16384e-5, 65536e-5,
}

// SizeBuckets is the default size bucket layout (rows, entries):
// powers of four from 1 to 64k.
var SizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}

// NewHistogram registers and returns a histogram with the given upper
// bounds (nil buckets selects DefBuckets). Bounds must be ascending;
// registration panics otherwise. Returns nil on a nil registry.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending at %d", name, i))
		}
	}
	bounds := append([]float64(nil), buckets...)
	h := &Histogram{nm: name, hp: help, bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.register(h)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Sum returns the running total of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

func (h *Histogram) name() string { return h.nm }
func (h *Histogram) help() string { return h.hp }
func (h *Histogram) kind() Kind   { return KindHistogram }
func (h *Histogram) point() Point {
	p := Point{
		Name:   h.nm,
		Help:   h.hp,
		Kind:   KindHistogram,
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		p.Counts[i] = h.counts[i].Load()
	}
	p.Count = h.count.Load()
	return p
}

// --- snapshots ---

// Point is a point-in-time copy of one metric, the unit the wire
// protocol's Metrics frame and the exposition writer consume. For
// histograms, Counts holds per-bucket (non-cumulative) counts with the
// +Inf overflow bucket last (len(Counts) == len(Bounds)+1).
type Point struct {
	Name   string
	Help   string
	Kind   Kind
	Value  float64 // counter/gauge
	Bounds []float64
	Counts []int64
	Sum    float64
	Count  int64
}

// Quantile estimates the q-quantile (0..1) of a histogram point by
// linear interpolation inside the owning bucket, the usual
// histogram_quantile estimate. Returns 0 when empty or not a
// histogram.
func (p Point) Quantile(q float64) float64 {
	if p.Kind != KindHistogram || p.Count == 0 || q < 0 || q > 1 {
		return 0
	}
	rank := q * float64(p.Count)
	cum := int64(0)
	for i, c := range p.Counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = p.Bounds[i-1]
			}
			hi := lo
			if i < len(p.Bounds) {
				hi = p.Bounds[i]
			}
			frac := (rank - float64(cum-c)) / float64(c)
			return lo + (hi-lo)*frac
		}
	}
	return p.Bounds[len(p.Bounds)-1]
}

// Snapshot returns a point-in-time copy of every registered metric, in
// registration order. Nil registries return nil.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := append([]metric(nil), r.ordered...)
	r.mu.Unlock()
	out := make([]Point, 0, len(ms))
	for _, m := range ms {
		out = append(out, m.point())
	}
	return out
}

// Lookup returns the snapshot of one metric by name (ok=false when
// absent or the registry is nil).
func (r *Registry) Lookup(name string) (Point, bool) {
	if r == nil {
		return Point{}, false
	}
	r.mu.Lock()
	m, ok := r.byName[name]
	r.mu.Unlock()
	if !ok {
		return Point{}, false
	}
	return m.point(), true
}
