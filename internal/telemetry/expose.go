package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): # HELP / # TYPE headers,
// counters and gauges as single samples, histograms as cumulative
// _bucket series with le labels plus _sum and _count. A nil registry
// writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, p := range r.Snapshot() {
		writePoint(bw, p)
	}
	return bw.Flush()
}

// writePoint renders one metric snapshot.
func writePoint(bw *bufio.Writer, p Point) {
	if p.Help != "" {
		fmt.Fprintf(bw, "# HELP %s %s\n", p.Name, p.Help)
	}
	fmt.Fprintf(bw, "# TYPE %s %s\n", p.Name, p.Kind)
	switch p.Kind {
	case KindHistogram:
		cum := int64(0)
		for i, b := range p.Bounds {
			cum += p.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", p.Name, formatFloat(b), cum)
		}
		if n := len(p.Bounds); n < len(p.Counts) {
			cum += p.Counts[n]
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", p.Name, cum)
		fmt.Fprintf(bw, "%s_sum %s\n", p.Name, formatFloat(p.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", p.Name, p.Count)
	default:
		fmt.Fprintf(bw, "%s %s\n", p.Name, formatFloat(p.Value))
	}
}

// formatFloat renders a sample value as its shortest round-trip
// representation ("256", "0.0001", "+Inf" never appears here — the
// overflow bucket label is written literally).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns the /metrics scrape handler over r. Scraping a nil
// registry yields an empty (valid) exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The write goes to a network peer; an error here means the
		// scraper went away, which is its problem, not ours.
		_ = r.WritePrometheus(w)
	})
}
