package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.NewCounter("reqs_total", "requests")
	g := r.NewGauge("conns_active", "connections")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	g.Add(2)
	g.Add(-1)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if got := g.Value(); got != 1 {
		t.Errorf("gauge = %d, want 1", got)
	}
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Errorf("gauge after Set = %d, want 42", got)
	}
}

func TestNopRegistry(t *testing.T) {
	// Every handle from the Nop registry must be a usable no-op: no
	// panics, zero values back.
	var r *Registry = Nop
	if r.Enabled() {
		t.Fatal("Nop registry reports enabled")
	}
	c := r.NewCounter("x", "")
	g := r.NewGauge("x", "")
	h := r.NewHistogram("x", "", nil)
	r.CounterFunc("x", "", func() int64 { return 7 })
	r.GaugeFunc("x", "", func() int64 { return 7 })
	c.Inc()
	c.Add(3)
	g.Set(9)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles must read zero")
	}
	if pts := r.Snapshot(); pts != nil {
		t.Errorf("Nop snapshot = %v, want nil", pts)
	}
	if _, ok := r.Lookup("x"); ok {
		t.Error("Nop lookup must miss")
	}
}

func TestNameValidation(t *testing.T) {
	r := New()
	for _, bad := range []string{"Upper_case", "1leading", "has-dash", "has space", ""} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q: want panic", bad)
				}
			}()
			r.NewCounter(bad, "")
		}()
	}
	r.NewCounter("fine_name_2", "")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate name: want panic")
			}
		}()
		r.NewGauge("fine_name_2", "")
	}()
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 5.56; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	p, ok := r.Lookup("lat_seconds")
	if !ok {
		t.Fatal("histogram not in registry")
	}
	wantCounts := []int64{2, 1, 1, 1}
	for i, c := range p.Counts {
		if c != wantCounts[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, wantCounts[i])
		}
	}
	// Median falls in the first bucket (2 of 5 samples ≤ 0.01, rank 2.5
	// lands in the second).
	if q := p.Quantile(0.5); q < 0.01 || q > 0.1 {
		t.Errorf("p50 = %g, want within (0.01, 0.1]", q)
	}
	if q := p.Quantile(1); q < 1 {
		t.Errorf("p100 = %g, want >= 1", q)
	}
}

func TestFuncMetrics(t *testing.T) {
	r := New()
	n := int64(3)
	r.CounterFunc("ticks_total", "ticks", func() int64 { return n })
	r.GaugeFunc("level", "level", func() int64 { return -n })
	p, _ := r.Lookup("ticks_total")
	if p.Value != 3 || p.Kind != KindCounter {
		t.Errorf("counterfunc point = %+v", p)
	}
	n = 8
	if p, _ = r.Lookup("level"); p.Value != -8 || p.Kind != KindGauge {
		t.Errorf("gaugefunc point = %+v", p)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	c := r.NewCounter("things_total", "things seen")
	c.Add(7)
	g := r.NewGauge("depth", "")
	g.Set(-2)
	h := r.NewHistogram("dur_seconds", "durations", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(50)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP things_total things seen\n",
		"# TYPE things_total counter\n",
		"things_total 7\n",
		"# TYPE depth gauge\n",
		"depth -2\n",
		"# TYPE dur_seconds histogram\n",
		"dur_seconds_bucket{le=\"0.1\"} 1\n",
		"dur_seconds_bucket{le=\"1\"} 2\n",
		"dur_seconds_bucket{le=\"+Inf\"} 3\n",
		"dur_seconds_sum 50.55\n",
		"dur_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// A gauge with empty help gets no HELP line.
	if strings.Contains(out, "# HELP depth") {
		t.Error("empty help must omit the HELP line")
	}
}

func TestHandler(t *testing.T) {
	r := New()
	r.NewCounter("up_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "up_total 1") {
		t.Errorf("scrape body = %q", rec.Body.String())
	}
}

func TestTracerSlowLog(t *testing.T) {
	r := New()
	var mu sync.Mutex
	var logged []string
	tr := NewTracer(r, 0, func(format string, args ...any) {
		mu.Lock()
		logged = append(logged, format)
		mu.Unlock()
	})
	q := tr.Begin("select 1")
	end := q.Span(StagePrimary)
	end()
	q.Add(StageFetch, 3*time.Millisecond, 2)
	q.Finish()
	q.Finish() // idempotent
	mu.Lock()
	n := len(logged)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("slow log emitted %d times, want 1", n)
	}
	if p, _ := r.Lookup("query_seconds"); p.Count != 1 {
		t.Errorf("query_seconds count = %d, want 1", p.Count)
	}
	if p, _ := r.Lookup("query_slow_total"); p.Value != 1 {
		t.Errorf("query_slow_total = %g, want 1", p.Value)
	}

	// Raising the threshold silences fast queries.
	tr.SetThreshold(time.Hour)
	q2 := tr.Begin("select 2")
	q2.Finish()
	mu.Lock()
	n = len(logged)
	mu.Unlock()
	if n != 1 {
		t.Errorf("fast query under threshold was slow-logged")
	}

	// Negative threshold disables the slow log entirely.
	tr.SetThreshold(-1)
	q3 := tr.Begin("select 3")
	q3.Finish()
	mu.Lock()
	defer mu.Unlock()
	if len(logged) != 1 {
		t.Errorf("disabled slow log still emitted")
	}
}

func TestNilTrace(t *testing.T) {
	var tr *Tracer
	q := tr.Begin("x")
	if q != nil {
		t.Fatal("nil tracer must mint nil traces")
	}
	q.Span(StageFetch)()
	q.Add(StageClose, time.Second, 1)
	q.Finish()
	if d, n := q.StageTotal(StageClose); d != 0 || n != 0 {
		t.Error("nil trace must read zero")
	}
	if q.String() != "<nil trace>" {
		t.Errorf("nil trace String = %q", q.String())
	}
}

func TestTraceString(t *testing.T) {
	tr := NewTracer(New(), -1, nil)
	q := tr.Begin("join a*b")
	q.Add(StagePrimary, 2*time.Millisecond, 4)
	s := q.String()
	if !strings.Contains(s, "join a*b") || !strings.Contains(s, "primary_filter=2ms/4") {
		t.Errorf("trace string = %q", s)
	}
}

func TestConcurrentRegistry(t *testing.T) {
	// Handles hammered from many goroutines while a scraper snapshots:
	// the -race build of this test is the registry's memory-model gate.
	r := New()
	c := r.NewCounter("hits_total", "")
	h := r.NewHistogram("obs_seconds", "", nil)
	g := r.NewGauge("inflight", "")
	var workers sync.WaitGroup
	for i := 0; i < 4; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for j := 0; j < 5000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j) * 1e-6)
				g.Add(-1)
			}
		}()
	}
	workers.Add(1)
	go func() {
		defer workers.Done()
		// Concurrent registration must not race the scraper.
		for _, name := range []string{"late_a", "late_b", "late_c"} {
			r.NewCounter(name, "").Inc()
		}
	}()
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	workers.Wait()
	close(stop)
	scraper.Wait()
	if c.Value() != 4*5000 {
		t.Errorf("counter = %d, want %d", c.Value(), 4*5000)
	}
	if h.Count() != 4*5000 {
		t.Errorf("histogram count = %d, want %d", h.Count(), 4*5000)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
}
