package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"spatialtf/internal/geom"
)

func testSchema() []Column {
	return []Column{
		{Name: "id", Type: TInt64},
		{Name: "name", Type: TString},
		{Name: "score", Type: TFloat64},
		{Name: "blob", Type: TBytes},
		{Name: "shape", Type: TGeometry},
	}
}

func testRow(i int) Row {
	g, _ := geom.NewRect(float64(i), float64(i), float64(i+1), float64(i+1))
	return Row{
		Int(int64(i)),
		Str(fmt.Sprintf("name-%d", i)),
		Float(float64(i) * 1.5),
		Bytes([]byte{byte(i), byte(i + 1)}),
		Geom(g),
	}
}

func rowsEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type {
			return false
		}
		switch a[i].Type {
		case TInt64:
			if a[i].I != b[i].I {
				return false
			}
		case TFloat64:
			if a[i].F != b[i].F {
				return false
			}
		case TString:
			if a[i].S != b[i].S {
				return false
			}
		case TBytes:
			if string(a[i].B) != string(b[i].B) {
				return false
			}
		case TGeometry:
			if !a[i].G.Equal(b[i].G) {
				return false
			}
		}
	}
	return true
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("t", nil); err == nil {
		t.Errorf("empty schema: want error")
	}
	if _, err := NewTable("t", []Column{{Name: "", Type: TInt64}}); err == nil {
		t.Errorf("unnamed column: want error")
	}
	if _, err := NewTable("t", []Column{{Name: "a", Type: TInt64}, {Name: "a", Type: TString}}); err == nil {
		t.Errorf("duplicate column: want error")
	}
	if _, err := NewTable("t", []Column{{Name: "a", Type: ColType(99)}}); err == nil {
		t.Errorf("bad type: want error")
	}
}

func TestTableInsertFetchRoundTrip(t *testing.T) {
	tab, err := NewTable("t", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	var ids []RowID
	for i := 0; i < 100; i++ {
		id, err := tab.Insert(testRow(i))
		if err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	for i, id := range ids {
		got, err := tab.Fetch(id)
		if err != nil {
			t.Fatalf("Fetch %d: %v", i, err)
		}
		if !rowsEqual(got, testRow(i)) {
			t.Errorf("row %d round trip mismatch: %v", i, got)
		}
	}
	if tab.Len() != 100 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestTableTypeMismatch(t *testing.T) {
	tab, _ := NewTable("t", []Column{{Name: "a", Type: TInt64}})
	if _, err := tab.Insert(Row{Str("oops")}); err == nil {
		t.Errorf("type mismatch: want error")
	}
	if _, err := tab.Insert(Row{Int(1), Int(2)}); err == nil {
		t.Errorf("arity mismatch: want error")
	}
}

func TestTableColumnIndex(t *testing.T) {
	tab, _ := NewTable("t", testSchema())
	i, err := tab.ColumnIndex("shape")
	if err != nil || i != 4 {
		t.Errorf("ColumnIndex(shape) = %d, %v", i, err)
	}
	if _, err := tab.ColumnIndex("nope"); err == nil {
		t.Errorf("missing column: want error")
	}
}

func TestTableFetchColumn(t *testing.T) {
	tab, _ := NewTable("t", testSchema())
	id, _ := tab.Insert(testRow(7))
	v, err := tab.FetchColumn(id, 1)
	if err != nil || v.S != "name-7" {
		t.Errorf("FetchColumn = %v, %v", v, err)
	}
	if _, err := tab.FetchColumn(id, 99); err == nil {
		t.Errorf("column out of range: want error")
	}
}

// TestDecodeColumnAgreesWithDecodeRow checks the partial decode against
// the full decode on every column of every type: FetchColumn skips the
// sibling payloads, so any framing drift between the two decoders would
// corrupt reads silently.
func TestDecodeColumnAgreesWithDecodeRow(t *testing.T) {
	tab, _ := NewTable("t", testSchema())
	id, _ := tab.Insert(testRow(3))
	row, err := tab.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	for col := range testSchema() {
		v, err := tab.FetchColumn(id, col)
		if err != nil {
			t.Fatalf("FetchColumn(%d): %v", col, err)
		}
		if !rowsEqual(Row{v}, Row{row[col]}) {
			t.Errorf("column %d: partial decode %v, full decode %v", col, v, row[col])
		}
	}
}

func TestTableDelete(t *testing.T) {
	tab, _ := NewTable("t", testSchema())
	id, _ := tab.Insert(testRow(1))
	if err := tab.Delete(id); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := tab.Fetch(id); !errors.Is(err, ErrRowDeleted) {
		t.Errorf("Fetch after delete: %v", err)
	}
	if err := tab.Delete(id); err == nil {
		t.Errorf("double delete: want error")
	}
}

func TestTableUpdate(t *testing.T) {
	tab, _ := NewTable("t", testSchema())
	id, _ := tab.Insert(testRow(1))
	newID, err := tab.Update(id, testRow(42))
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if newID == id {
		t.Errorf("Update reused the rowid")
	}
	if _, err := tab.Fetch(id); !errors.Is(err, ErrRowDeleted) {
		t.Errorf("old rowid still live: %v", err)
	}
	got, err := tab.Fetch(newID)
	if err != nil || !rowsEqual(got, testRow(42)) {
		t.Errorf("updated row wrong: %v, %v", got, err)
	}
	// Invalid replacement row must not destroy the original.
	id2, _ := tab.Insert(testRow(2))
	if _, err := tab.Update(id2, Row{Int(1)}); err == nil {
		t.Fatalf("bad update row accepted")
	}
	if _, err := tab.Fetch(id2); err != nil {
		t.Errorf("failed update destroyed the row: %v", err)
	}
	// Update of a deleted row errors.
	if _, err := tab.Update(id, testRow(3)); err == nil {
		t.Errorf("update of deleted row accepted")
	}
}

type recordingHook struct {
	mu       sync.Mutex
	inserted []RowID
	deleted  []RowID
	failNext bool
}

func (r *recordingHook) RowInserted(id RowID, row Row) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failNext {
		r.failNext = false
		return errors.New("hook boom")
	}
	r.inserted = append(r.inserted, id)
	return nil
}

func (r *recordingHook) RowDeleted(id RowID, row Row) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deleted = append(r.deleted, id)
	return nil
}

func TestTableHooks(t *testing.T) {
	tab, _ := NewTable("t", testSchema())
	h := &recordingHook{}
	tab.AddHook(h)
	id, err := tab.Insert(testRow(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Delete(id); err != nil {
		t.Fatal(err)
	}
	if len(h.inserted) != 1 || h.inserted[0] != id {
		t.Errorf("insert hook calls: %v", h.inserted)
	}
	if len(h.deleted) != 1 || h.deleted[0] != id {
		t.Errorf("delete hook calls: %v", h.deleted)
	}
	h.failNext = true
	if _, err := tab.Insert(testRow(1)); err == nil {
		t.Errorf("hook error not propagated")
	}
}

func TestTableScan(t *testing.T) {
	tab, _ := NewTable("t", testSchema())
	for i := 0; i < 50; i++ {
		tab.Insert(testRow(i))
	}
	sum := int64(0)
	err := tab.Scan(func(id RowID, row Row) bool {
		sum += row[0].I
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 49*50/2 {
		t.Errorf("scan sum = %d", sum)
	}
}

func TestTablePageRanges(t *testing.T) {
	tab, _ := NewTable("t", testSchema())
	for i := 0; i < 500; i++ {
		tab.Insert(testRow(i))
	}
	for _, n := range []int{1, 2, 3, 4, 7} {
		ranges := tab.PageRanges(n)
		if len(ranges) == 0 {
			t.Fatalf("no ranges for n=%d", n)
		}
		// Ranges must tile [1, pageCount+1) without gaps or overlap.
		if ranges[0][0] != 1 {
			t.Errorf("n=%d: first range starts at %d", n, ranges[0][0])
		}
		for i := 1; i < len(ranges); i++ {
			if ranges[i][0] != ranges[i-1][1] {
				t.Errorf("n=%d: gap between ranges %v and %v", n, ranges[i-1], ranges[i])
			}
		}
		if got := ranges[len(ranges)-1][1]; got != uint32(tab.PageCount())+1 {
			t.Errorf("n=%d: last range ends at %d, want %d", n, got, tab.PageCount()+1)
		}
		// Row counts across ranges must sum to the table size.
		total := 0
		for _, r := range ranges {
			tab.ScanRange(r[0], r[1], func(RowID, Row) bool { total++; return true })
		}
		if total != tab.Len() {
			t.Errorf("n=%d: ranges cover %d rows, want %d", n, total, tab.Len())
		}
	}
	empty, _ := NewTable("e", testSchema())
	if got := empty.PageRanges(4); got != nil {
		t.Errorf("empty table ranges = %v", got)
	}
}

func TestCursorFullScan(t *testing.T) {
	tab, _ := NewTable("t", testSchema())
	var want []RowID
	for i := 0; i < 120; i++ {
		id, _ := tab.Insert(testRow(i))
		want = append(want, id)
	}
	c := NewCursor(tab)
	ids, rows, err := Drain(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(want) {
		t.Fatalf("cursor yielded %d rows, want %d", len(ids), len(want))
	}
	for i := range ids {
		if ids[i] != want[i] {
			t.Errorf("row %d id = %v, want %v", i, ids[i], want[i])
		}
		if rows[i][0].I != int64(i) {
			t.Errorf("row %d out of order: %v", i, rows[i][0])
		}
	}
	// Next after exhaustion keeps returning ok=false.
	if _, _, ok, _ := c.Next(); ok {
		t.Errorf("drained cursor yielded a row")
	}
}

func TestCursorAfterClose(t *testing.T) {
	tab, _ := NewTable("t", testSchema())
	tab.Insert(testRow(0))
	c := NewCursor(tab)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Next(); err == nil {
		t.Errorf("Next after Close: want error")
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestRangeCursorsPartition(t *testing.T) {
	tab, _ := NewTable("t", testSchema())
	for i := 0; i < 300; i++ {
		tab.Insert(testRow(i))
	}
	seen := map[RowID]bool{}
	for _, r := range tab.PageRanges(3) {
		c := NewRangeCursor(tab, r[0], r[1])
		ids, _, err := Drain(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if seen[id] {
				t.Errorf("row %v appeared in two partitions", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != 300 {
		t.Errorf("partitions cover %d rows, want 300", len(seen))
	}
}

func TestSliceCursor(t *testing.T) {
	rows := []Row{{Int(1)}, {Int(2)}}
	c := NewSliceCursor(nil, rows)
	_, r1, ok, err := c.Next()
	if !ok || err != nil || r1[0].I != 1 {
		t.Fatalf("first Next: %v %v %v", r1, ok, err)
	}
	id2, r2, ok, _ := c.Next()
	if !ok || r2[0].I != 2 || id2.IsValid() {
		t.Fatalf("second Next: %v %v", id2, r2)
	}
	if _, _, ok, _ := c.Next(); ok {
		t.Errorf("exhausted SliceCursor yielded a row")
	}
}

func TestValueString(t *testing.T) {
	g, _ := geom.NewRect(0, 0, 1, 1)
	cases := []struct {
		v    Value
		want string
	}{
		{Int(42), "42"},
		{Float(2.5), "2.5"},
		{Str("hi"), "hi"},
		{Bytes([]byte{0xAB}), "0xab"},
		{Geom(g), geom.MarshalWKT(g)},
		{Value{}, "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("Value.String() = %q, want %q", got, c.want)
		}
	}
}

func TestColTypeString(t *testing.T) {
	want := map[ColType]string{
		TInt64: "INT", TFloat64: "FLOAT", TString: "VARCHAR",
		TBytes: "RAW", TGeometry: "GEOMETRY", ColType(77): "TYPE(77)",
	}
	for ct, s := range want {
		if got := ct.String(); got != s {
			t.Errorf("%v.String() = %q, want %q", uint8(ct), got, s)
		}
	}
}

func TestCursorSeesConcurrentInserts(t *testing.T) {
	// A cursor does not hold the lock between calls, so a writer can
	// interleave. This test just checks absence of deadlock and that the
	// cursor completes with at least the initial rows.
	tab, _ := NewTable("t", testSchema())
	for i := 0; i < 100; i++ {
		tab.Insert(testRow(i))
	}
	c := NewCursor(tab)
	count := 0
	for {
		_, _, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
		if count == 50 {
			// Mid-scan write.
			if _, err := tab.Insert(testRow(1000)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if count < 100 {
		t.Errorf("cursor saw %d rows, want >= 100", count)
	}
}
