package storage

import (
	"fmt"
	"sync"

	"spatialtf/internal/pager"
)

// Column describes one schema column.
type Column struct {
	Name string
	Type ColType
}

// Table is a typed heap table: a schema plus a heap file, with typed
// insert/fetch and scan cursors. It corresponds to a regular database
// table holding, e.g., a geometry column alongside attribute columns.
type Table struct {
	name   string
	schema []Column
	byName map[string]int
	heap   *Heap

	// hooks are insert/delete observers; the extensible-indexing
	// framework registers index-maintenance callbacks here, mirroring
	// how Oracle DML on an indexed table triggers index updates.
	hookMu sync.RWMutex
	hooks  []DMLHook
}

// DMLHook observes row-level changes to a table.
type DMLHook interface {
	// RowInserted is called after a row is stored under id.
	RowInserted(id RowID, row Row) error
	// RowDeleted is called after the row at id is removed.
	RowDeleted(id RowID, row Row) error
}

// NewTable returns an empty in-memory table with the given schema.
// Column names must be unique and non-empty.
func NewTable(name string, schema []Column) (*Table, error) {
	byName, err := checkSchema(name, schema)
	if err != nil {
		return nil, err
	}
	return &Table{
		name:   name,
		schema: schema,
		byName: byName,
		heap:   NewHeap(0),
	}, nil
}

// OpenTable binds a table to a pager space — typically one backed by a
// durable store, rebuilding the heap bookkeeping from the space's
// pages. The schema must match the one the table was created with; the
// catalog layer above persists and verifies it.
func OpenTable(name string, schema []Column, space pager.Space) (*Table, error) {
	byName, err := checkSchema(name, schema)
	if err != nil {
		return nil, err
	}
	heap, err := OpenHeap(space)
	if err != nil {
		return nil, fmt.Errorf("storage: open table %q: %w", name, err)
	}
	return &Table{
		name:   name,
		schema: schema,
		byName: byName,
		heap:   heap,
	}, nil
}

func checkSchema(name string, schema []Column) (map[string]int, error) {
	if len(schema) == 0 {
		return nil, fmt.Errorf("storage: table %q needs at least one column", name)
	}
	byName := make(map[string]int, len(schema))
	for i, c := range schema {
		if c.Name == "" {
			return nil, fmt.Errorf("storage: table %q column %d has no name", name, i)
		}
		if _, dup := byName[c.Name]; dup {
			return nil, fmt.Errorf("storage: table %q has duplicate column %q", name, c.Name)
		}
		switch c.Type {
		case TInt64, TFloat64, TString, TBytes, TGeometry:
		default:
			return nil, fmt.Errorf("storage: table %q column %q has invalid type", name, c.Name)
		}
		byName[c.Name] = i
	}
	return byName, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the column definitions. Callers must not modify it.
func (t *Table) Schema() []Column { return t.schema }

// ColumnIndex returns the position of the named column, or an error.
func (t *Table) ColumnIndex(name string) (int, error) {
	i, ok := t.byName[name]
	if !ok {
		return 0, fmt.Errorf("storage: table %q has no column %q", t.name, name)
	}
	return i, nil
}

// Len returns the live row count.
func (t *Table) Len() int { return t.heap.Len() }

// PageCount returns the number of heap pages backing the table.
func (t *Table) PageCount() int { return t.heap.PageCount() }

// AddHook registers a DML observer. Hooks run synchronously inside
// Insert/Delete, after the heap change.
func (t *Table) AddHook(h DMLHook) {
	t.hookMu.Lock()
	defer t.hookMu.Unlock()
	t.hooks = append(t.hooks, h)
}

// Insert stores row and returns its rowid, then notifies hooks.
func (t *Table) Insert(row Row) (RowID, error) {
	img, err := encodeRow(nil, t.schema, row)
	if err != nil {
		return InvalidRowID, fmt.Errorf("insert into %q: %w", t.name, err)
	}
	id, err := t.heap.Insert(img)
	if err != nil {
		return InvalidRowID, fmt.Errorf("insert into %q: %w", t.name, err)
	}
	t.hookMu.RLock()
	hooks := t.hooks
	t.hookMu.RUnlock()
	for _, h := range hooks {
		if err := h.RowInserted(id, row); err != nil {
			return id, fmt.Errorf("insert hook on %q: %w", t.name, err)
		}
	}
	return id, nil
}

// Fetch returns the row at id.
func (t *Table) Fetch(id RowID) (Row, error) {
	img, err := t.heap.Fetch(id)
	if err != nil {
		return nil, fmt.Errorf("fetch from %q: %w", t.name, err)
	}
	row, err := decodeRow(t.schema, img)
	if err != nil {
		return nil, fmt.Errorf("fetch from %q at %v: %w", t.name, id, err)
	}
	return row, nil
}

// FetchColumn returns a single column of the row at id, avoiding a full
// row decode when the caller (the join secondary filter) only needs the
// geometry column.
func (t *Table) FetchColumn(id RowID, col int) (Value, error) {
	if col < 0 || col >= len(t.schema) {
		return Value{}, fmt.Errorf("fetch from %q: column %d out of range", t.name, col)
	}
	img, err := t.heap.Fetch(id)
	if err != nil {
		return Value{}, fmt.Errorf("fetch from %q: %w", t.name, err)
	}
	// Partial decode: sibling columns are skipped by length, so only
	// the requested value is materialised (for the join secondary
	// filter, one geometry instead of the whole row).
	//spatiallint:ignore hotalloc materialising the requested column (geometry vertices, string copy) is the contract
	v, err := decodeColumn(t.schema, img, col)
	if err != nil {
		return Value{}, fmt.Errorf("fetch from %q at %v: %w", t.name, id, err)
	}
	return v, nil
}

// Update replaces the row at id. Because rowids are stable addresses,
// the update is implemented as delete + insert at a fresh rowid; the
// new rowid is returned and hooks observe a delete followed by an
// insert (exactly how index maintenance must see it).
func (t *Table) Update(id RowID, row Row) (RowID, error) {
	// Validate the new row before destroying the old one.
	if _, err := encodeRow(nil, t.schema, row); err != nil {
		return InvalidRowID, fmt.Errorf("update %q at %v: %w", t.name, id, err)
	}
	if err := t.Delete(id); err != nil {
		return InvalidRowID, err
	}
	return t.Insert(row)
}

// Delete removes the row at id and notifies hooks with the old row.
func (t *Table) Delete(id RowID) error {
	old, err := t.Fetch(id)
	if err != nil {
		return err
	}
	if err := t.heap.Delete(id); err != nil {
		return fmt.Errorf("delete from %q: %w", t.name, err)
	}
	t.hookMu.RLock()
	hooks := t.hooks
	t.hookMu.RUnlock()
	for _, h := range hooks {
		if err := h.RowDeleted(id, old); err != nil {
			return fmt.Errorf("delete hook on %q: %w", t.name, err)
		}
	}
	return nil
}

// Scan calls fn with each live row in storage order until fn returns
// false. Rows are decoded copies and safe to retain.
func (t *Table) Scan(fn func(id RowID, row Row) bool) error {
	var decodeErr error
	t.heap.Scan(func(id RowID, img []byte) bool {
		row, err := decodeRow(t.schema, img)
		if err != nil {
			decodeErr = fmt.Errorf("scan of %q at %v: %w", t.name, id, err)
			return false
		}
		return fn(id, row)
	})
	return decodeErr
}

// PageRanges splits the table's page-id span into n contiguous ranges
// of roughly equal width, the unit parallel table functions partition a
// table scan by. Fewer than n ranges are returned for tiny tables. On a
// shared durable store the span may include other tables' pages;
// ScanRange skips those, so ranges stay disjoint and complete, merely
// less balanced.
func (t *Table) PageRanges(n int) [][2]uint32 {
	lo, hi := t.heap.PageSpan()
	total := hi - lo
	if n < 1 {
		n = 1
	}
	if total == 0 {
		return nil
	}
	if uint32(n) > total {
		n = int(total)
	}
	out := make([][2]uint32, 0, n)
	per := total / uint32(n)
	rem := total % uint32(n)
	start := lo
	for i := 0; i < n; i++ {
		count := per
		if uint32(i) < rem {
			count++
		}
		out = append(out, [2]uint32{start, start + count})
		start += count
	}
	return out
}

// ScanRange is Scan restricted to heap pages in [fromPage, toPage).
func (t *Table) ScanRange(fromPage, toPage uint32, fn func(id RowID, row Row) bool) error {
	var decodeErr error
	t.heap.ScanRange(fromPage, toPage, func(id RowID, img []byte) bool {
		row, err := decodeRow(t.schema, img)
		if err != nil {
			decodeErr = fmt.Errorf("scan of %q at %v: %w", t.name, id, err)
			return false
		}
		return fn(id, row)
	})
	return decodeErr
}
