package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"spatialtf/internal/geom"
)

// ColType identifies a column's value domain.
type ColType uint8

// Supported column types.
const (
	// TInt64 is a signed 64-bit integer column.
	TInt64 ColType = iota + 1
	// TFloat64 is a 64-bit floating-point column.
	TFloat64
	// TString is a UTF-8 string column.
	TString
	// TBytes is a raw byte-string column.
	TBytes
	// TGeometry is an sdo_geometry-style spatial column.
	TGeometry
)

// String returns the SQL-ish name of the type.
func (t ColType) String() string {
	switch t {
	case TInt64:
		return "INT"
	case TFloat64:
		return "FLOAT"
	case TString:
		return "VARCHAR"
	case TBytes:
		return "RAW"
	case TGeometry:
		return "GEOMETRY"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// Value is a tagged union holding one column value. Exactly the field
// matching Type is meaningful.
type Value struct {
	Type ColType
	I    int64
	F    float64
	S    string
	B    []byte
	G    geom.Geometry
}

// Int returns an int64 value.
func Int(v int64) Value { return Value{Type: TInt64, I: v} }

// Float returns a float64 value.
func Float(v float64) Value { return Value{Type: TFloat64, F: v} }

// Str returns a string value.
func Str(v string) Value { return Value{Type: TString, S: v} }

// Bytes returns a raw bytes value.
func Bytes(v []byte) Value { return Value{Type: TBytes, B: v} }

// Geom returns a geometry value.
func Geom(g geom.Geometry) Value { return Value{Type: TGeometry, G: g} }

// String renders the value for logs and the CLI tools.
func (v Value) String() string {
	switch v.Type {
	case TInt64:
		return fmt.Sprintf("%d", v.I)
	case TFloat64:
		return fmt.Sprintf("%g", v.F)
	case TString:
		return v.S
	case TBytes:
		return fmt.Sprintf("0x%x", v.B)
	case TGeometry:
		return geom.MarshalWKT(v.G)
	default:
		return "NULL"
	}
}

// Row is one table row: one Value per schema column.
type Row []Value

// EncodeRow returns the binary image of row under schema — the same
// encoding heap pages store, exposed for snapshots and tools.
func EncodeRow(schema []Column, row Row) ([]byte, error) {
	return encodeRow(nil, schema, row)
}

// DecodeRow inverts EncodeRow.
func DecodeRow(schema []Column, b []byte) (Row, error) {
	return decodeRow(schema, b)
}

// encodeRow appends the binary image of row to dst. Layout per column:
// the schema fixes the type, so only payloads are stored:
//
//	TInt64:    8-byte little-endian two's complement
//	TFloat64:  8-byte IEEE bits
//	TString:   uvarint length + bytes
//	TBytes:    uvarint length + bytes
//	TGeometry: uvarint length + geom binary image
func encodeRow(dst []byte, schema []Column, row Row) ([]byte, error) {
	if len(row) != len(schema) {
		return nil, fmt.Errorf("storage: row has %d values, schema %d columns", len(row), len(schema))
	}
	for i, col := range schema {
		v := row[i]
		if v.Type != col.Type {
			return nil, fmt.Errorf("storage: column %q expects %v, got %v", col.Name, col.Type, v.Type)
		}
		switch col.Type {
		case TInt64:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.I))
		case TFloat64:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
		case TString:
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		case TBytes:
			dst = binary.AppendUvarint(dst, uint64(len(v.B)))
			dst = append(dst, v.B...)
		case TGeometry:
			dst = binary.AppendUvarint(dst, uint64(geom.BinarySize(v.G)))
			dst = geom.AppendBinary(dst, v.G)
		default:
			return nil, fmt.Errorf("storage: column %q has bad type %v", col.Name, col.Type)
		}
	}
	return dst, nil
}

// decodeRow parses a row image against schema.
func decodeRow(schema []Column, b []byte) (Row, error) {
	row := make(Row, len(schema))
	for i, col := range schema {
		switch col.Type {
		case TInt64:
			if len(b) < 8 {
				return nil, fmt.Errorf("storage: truncated int column %q", col.Name)
			}
			row[i] = Int(int64(binary.LittleEndian.Uint64(b)))
			b = b[8:]
		case TFloat64:
			if len(b) < 8 {
				return nil, fmt.Errorf("storage: truncated float column %q", col.Name)
			}
			row[i] = Float(math.Float64frombits(binary.LittleEndian.Uint64(b)))
			b = b[8:]
		case TString:
			s, rest, err := decodeBlob(b, col.Name)
			if err != nil {
				return nil, err
			}
			row[i] = Str(string(s))
			b = rest
		case TBytes:
			s, rest, err := decodeBlob(b, col.Name)
			if err != nil {
				return nil, err
			}
			out := make([]byte, len(s))
			copy(out, s)
			row[i] = Bytes(out)
			b = rest
		case TGeometry:
			s, rest, err := decodeBlob(b, col.Name)
			if err != nil {
				return nil, err
			}
			g, err := geom.UnmarshalBinary(s)
			if err != nil {
				return nil, fmt.Errorf("storage: column %q: %w", col.Name, err)
			}
			row[i] = Geom(g)
			b = rest
		default:
			return nil, fmt.Errorf("storage: column %q has bad type %v", col.Name, col.Type)
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("storage: %d trailing bytes after row", len(b))
	}
	return row, nil
}

// decodeColumn parses only column col of a row image, skipping every
// other column's payload without copying it. The hot secondary-filter
// path fetches a single geometry per candidate; decoding the siblings
// (string copies, vertex slices) would be pure waste there.
func decodeColumn(schema []Column, b []byte, col int) (Value, error) {
	for i, c := range schema {
		want := i == col
		switch c.Type {
		case TInt64, TFloat64:
			if len(b) < 8 {
				return Value{}, fmt.Errorf("storage: truncated column %q", c.Name)
			}
			if want {
				if c.Type == TInt64 {
					return Int(int64(binary.LittleEndian.Uint64(b))), nil
				}
				return Float(math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
			}
			b = b[8:]
		case TString, TBytes, TGeometry:
			s, rest, err := decodeBlob(b, c.Name)
			if err != nil {
				return Value{}, err
			}
			if want {
				switch c.Type {
				case TString:
					return Str(string(s)), nil
				case TBytes:
					out := make([]byte, len(s))
					copy(out, s)
					return Bytes(out), nil
				}
				g, err := geom.UnmarshalBinary(s)
				if err != nil {
					return Value{}, fmt.Errorf("storage: column %q: %w", c.Name, err)
				}
				return Geom(g), nil
			}
			b = rest
		default:
			return Value{}, fmt.Errorf("storage: column %q has bad type %v", c.Name, c.Type)
		}
	}
	return Value{}, fmt.Errorf("storage: column %d out of range", col)
}

func decodeBlob(b []byte, col string) (payload, rest []byte, err error) {
	l, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, fmt.Errorf("storage: truncated length for column %q", col)
	}
	b = b[n:]
	if uint64(len(b)) < l {
		return nil, nil, fmt.Errorf("storage: truncated payload for column %q: need %d, have %d", col, l, len(b))
	}
	return b[:l], b[l:], nil
}
