package storage

import (
	"bytes"
	"errors"
	"testing"
)

func TestPageInsertFetch(t *testing.T) {
	p := newPage(256)
	if p.slotCount() != 0 {
		t.Fatalf("new page slot count %d", p.slotCount())
	}
	slot, err := p.insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.fetch(slot)
	if err != nil || string(got) != "hello" {
		t.Fatalf("fetch = %q, %v", got, err)
	}
	if _, err := p.fetch(99); err == nil {
		t.Errorf("out-of-range fetch accepted")
	}
}

func TestPageFreeSpaceAccounting(t *testing.T) {
	p := newPage(128)
	initial := p.freeSpace()
	if initial <= 0 || initial >= 128 {
		t.Fatalf("initial free space %d", initial)
	}
	if _, err := p.insert(make([]byte, 20)); err != nil {
		t.Fatal(err)
	}
	after := p.freeSpace()
	// 20 payload bytes + one 4-byte slot entry.
	if initial-after != 24 {
		t.Errorf("free space dropped by %d, want 24", initial-after)
	}
	// Insert beyond capacity is rejected without corruption.
	if _, err := p.insert(make([]byte, 1000)); err == nil {
		t.Errorf("oversized insert accepted")
	}
	if got, err := p.fetch(0); err != nil || len(got) != 20 {
		t.Errorf("existing row damaged after failed insert")
	}
}

func TestPageFillToCapacity(t *testing.T) {
	p := newPage(256)
	n := 0
	for {
		row := []byte{byte(n), byte(n), byte(n), byte(n)}
		if p.freeSpace() < len(row) {
			break
		}
		if _, err := p.insert(row); err != nil {
			t.Fatalf("insert %d: %v", n, err)
		}
		n++
	}
	if n < 10 {
		t.Fatalf("only %d rows fit in a 256-byte page", n)
	}
	for i := 0; i < n; i++ {
		got, err := p.fetch(i)
		if err != nil || !bytes.Equal(got, []byte{byte(i), byte(i), byte(i), byte(i)}) {
			t.Fatalf("row %d corrupted: %q, %v", i, got, err)
		}
	}
}

func TestPageDeleteTombstones(t *testing.T) {
	p := newPage(256)
	s0, _ := p.insert([]byte("aa"))
	s1, _ := p.insert([]byte("bb"))
	if err := p.delete(s0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.fetch(s0); !errors.Is(err, ErrRowDeleted) {
		t.Errorf("deleted slot fetch: %v", err)
	}
	if err := p.delete(s0); !errors.Is(err, ErrRowDeleted) {
		t.Errorf("double delete: %v", err)
	}
	if err := p.delete(99); err == nil {
		t.Errorf("out-of-range delete accepted")
	}
	// Sibling survives; liveRows skips the tombstone.
	if got, _ := p.fetch(s1); string(got) != "bb" {
		t.Errorf("sibling damaged: %q", got)
	}
	live := 0
	p.liveRows(func(slot int, row []byte) bool {
		if slot == s0 {
			t.Errorf("tombstoned slot surfaced")
		}
		live++
		return true
	})
	if live != 1 {
		t.Errorf("liveRows saw %d rows", live)
	}
}

func TestPageLiveRowsEarlyStop(t *testing.T) {
	p := newPage(256)
	for i := 0; i < 5; i++ {
		p.insert([]byte{byte(i)})
	}
	n := 0
	p.liveRows(func(int, []byte) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestMaxRowLen(t *testing.T) {
	if got := maxRowLen(DefaultPageSize); got != DefaultPageSize-pageHeaderSize-slotEntrySize {
		t.Errorf("maxRowLen = %d", got)
	}
}
