// Package storage implements the relational substrate the spatial layers
// sit on: slotted-page heap tables addressed by rowids, typed rows, and
// iterator cursors. It is the stand-in for the Oracle kernel facilities
// the paper's algorithms consume — fetch-by-rowid for the secondary
// filter, full-table-scan cursors for table functions, and stable rowids
// for join result pairs.
package storage

import (
	"encoding/binary"
	"fmt"
)

// RowID addresses a row as (page, slot), matching the physical rowid
// notion the paper's join results are built from. RowIDs are stable for
// the life of the row: deletes leave tombstones and never move rows.
type RowID struct {
	Page uint32
	Slot uint16
}

// InvalidRowID is the zero-like sentinel returned on errors. Page 0 is
// never allocated to user data.
var InvalidRowID = RowID{}

// IsValid reports whether r could address a row.
func (r RowID) IsValid() bool { return r.Page != 0 }

// Less orders rowids by page then slot — physical storage order. The
// paper sorts join candidate pairs by first rowid so exact-geometry
// fetches sweep pages sequentially; this is the comparison it uses.
func (r RowID) Less(o RowID) bool {
	if r.Page != o.Page {
		return r.Page < o.Page
	}
	return r.Slot < o.Slot
}

// Compare returns -1, 0 or 1 ordering r against o.
func (r RowID) Compare(o RowID) int {
	switch {
	case r.Less(o):
		return -1
	case o.Less(r):
		return 1
	default:
		return 0
	}
}

// String renders the rowid in AAAA.BB page.slot form for logs.
func (r RowID) String() string { return fmt.Sprintf("%d.%d", r.Page, r.Slot) }

// AppendTo appends the 6-byte big-endian encoding of r to dst. Big
// endian keeps byte order consistent with Less, so encoded rowids can be
// used directly as B-tree key suffixes.
func (r RowID) AppendTo(dst []byte) []byte {
	var buf [6]byte
	binary.BigEndian.PutUint32(buf[0:], r.Page)
	binary.BigEndian.PutUint16(buf[4:], r.Slot)
	return append(dst, buf[:]...)
}

// RowIDFromBytes decodes a rowid previously written by AppendTo.
func RowIDFromBytes(b []byte) (RowID, error) {
	if len(b) < 6 {
		return InvalidRowID, fmt.Errorf("storage: rowid needs 6 bytes, have %d", len(b))
	}
	return RowID{
		Page: binary.BigEndian.Uint32(b[0:]),
		Slot: binary.BigEndian.Uint16(b[4:]),
	}, nil
}
