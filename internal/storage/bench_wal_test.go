package storage_test

import (
	"testing"

	"spatialtf/internal/pager"
	"spatialtf/internal/storage"
)

// BenchmarkHeapInsertWAL ablates the durability stack: the same insert
// workload against the pure in-memory pager, the durable store with
// group-commit fsync, with fsync-per-commit, and with fsync disabled.
// The Mem/File spread is the cost of WAL encoding + page-file
// bookkeeping; the Batch/Always spread is the cost of fsync itself.
func BenchmarkHeapInsertWAL(b *testing.B) {
	row := make([]byte, 256)
	for i := range row {
		row[i] = byte(i)
	}

	b.Run("Mem", func(b *testing.B) {
		h := storage.NewHeap(pager.DefaultPageSize)
		b.SetBytes(int64(len(row)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := h.Insert(row); err != nil {
				b.Fatal(err)
			}
		}
	})

	file := func(b *testing.B, sync pager.SyncMode) {
		st, err := pager.Open(b.TempDir(), pager.Options{Sync: sync})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		h, err := storage.OpenHeap(st.Space(1))
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(row)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := h.Insert(row); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("File/SyncOff", func(b *testing.B) { file(b, pager.SyncOff) })
	b.Run("File/SyncBatch", func(b *testing.B) { file(b, pager.SyncBatch) })
	b.Run("File/SyncAlways", func(b *testing.B) { file(b, pager.SyncAlways) })
}
