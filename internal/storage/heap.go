package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"spatialtf/internal/pager"
)

// Errors returned by heap operations.
var (
	ErrRowDeleted  = errors.New("storage: row deleted")
	ErrBadRowID    = errors.New("storage: invalid rowid")
	ErrRowTooLarge = errors.New("storage: row too large")
)

// Jumbo rows are chained across pages: a head page whose payload is
// [total length u32][next page u32][first chunk], then overflow pages
// of [next page u32][chunk]. The head's rowid is the row's address
// (slot 0); a total length of jumboTombstone marks a deleted jumbo row.
// Slot bookkeeping on regular pages uses uint16 offsets, so a single
// row keeps the historical just-under-64-KiB cap — ample for the
// synthetic geometry workloads (≈ 16 bytes per vertex).
const (
	jumboHeadHdr   = 8
	jumboOverHdr   = 4
	jumboTombstone = 0xFFFFFFFF
	maxJumboLen    = 0xFFFF - pageHeaderSize - slotEntrySize
)

// Heap is a heap file: an append-oriented collection of slotted pages
// on a pager space. It is safe for concurrent use; reads take a shared
// lock so parallel table-function instances can scan and fetch
// concurrently. Every mutation runs as one pager transaction, so on a
// durable space a crash leaves either the whole row operation or none
// of it.
type Heap struct {
	mu      sync.RWMutex
	space   pager.Space
	payload int
	// pages holds this heap's page ids in ascending order (the space
	// may interleave several heaps' pages). Append-only: cursors hold
	// indexes into it across lock releases.
	pages []uint32
	// lastPage is the slotted page currently receiving inserts.
	lastPage uint32
	// avail lists slotted pages (ascending, excluding lastPage) with
	// reclaimed space worth backfilling — pages compaction has carved
	// free bytes out of, and full pages demoted from lastPage.
	avail    []uint32
	rowCount int
}

// NewHeap returns an empty in-memory heap with the given page size
// (0 selects DefaultPageSize).
func NewHeap(pageSize int) *Heap {
	h, err := OpenHeap(pager.NewMem(pageSize))
	if err != nil {
		// A fresh Mem space has no pages to scan; opening it cannot fail.
		panic(err)
	}
	return h
}

// OpenHeap binds a heap to a pager space, rebuilding the in-memory
// bookkeeping (row count, insert target, backfill list) by scanning the
// space's pages. An empty space yields an empty heap.
func OpenHeap(space pager.Space) (*Heap, error) {
	h := &Heap{
		space:   space,
		payload: space.PayloadSize(),
		pages:   space.Pages(),
	}
	lastFree := 0
	for _, id := range h.pages {
		f, err := space.Pin(id)
		if err != nil {
			return nil, fmt.Errorf("storage: open heap page %d: %w", id, err)
		}
		switch f.Kind() {
		case pager.KindSlotted:
			p := page{buf: f.Data()}
			h.rowCount += p.liveCount()
			// The page seen so far as the insert target is demoted to
			// backfill if it still has room.
			if h.lastPage != 0 && lastFree >= h.availMin() {
				h.noteAvail(h.lastPage)
			}
			h.lastPage = id
			lastFree = p.freeSpace()
		case pager.KindJumboHead:
			if binary.LittleEndian.Uint32(f.Data()) != jumboTombstone {
				h.rowCount++
			}
		}
		f.Unpin()
	}
	return h, nil
}

// availMin is the least free space that makes a page worth tracking for
// backfill.
func (h *Heap) availMin() int { return h.payload / 4 }

// compactAt is the dead-byte threshold that triggers in-place page
// compaction on delete.
func (h *Heap) compactAt() int { return h.payload / 4 }

// noteAvail adds id to the backfill list, keeping it sorted and
// duplicate-free.
func (h *Heap) noteAvail(id uint32) {
	for _, v := range h.avail {
		if v == id {
			return
		}
	}
	h.avail = append(h.avail, id)
	for i := len(h.avail) - 1; i > 0 && h.avail[i] < h.avail[i-1]; i-- {
		h.avail[i], h.avail[i-1] = h.avail[i-1], h.avail[i]
	}
}

// dropAvail removes id from the backfill list.
func (h *Heap) dropAvail(id uint32) {
	for i, v := range h.avail {
		if v == id {
			h.avail = append(h.avail[:i], h.avail[i+1:]...)
			return
		}
	}
}

// Insert appends row and returns its rowid. The row bytes are copied.
func (h *Heap) Insert(row []byte) (RowID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(row) > maxRowLen(h.payload) {
		return h.insertJumbo(row)
	}
	tx := h.space.Begin()
	f, err := h.pinInsertTarget(tx, len(row))
	if err != nil {
		h.space.Rollback(tx)
		return InvalidRowID, err
	}
	p := page{buf: f.Data()}
	slot, err := p.insert(row)
	if err != nil {
		f.Unpin()
		h.space.Rollback(tx)
		return InvalidRowID, err
	}
	off := p.slotOffset(slot)
	base := pageHeaderSize + slot*slotEntrySize
	h.space.Record(tx, f,
		pager.Patch{Off: 0, Data: p.buf[0:pageHeaderSize]},
		pager.Patch{Off: base, Data: p.buf[base : base+slotEntrySize]},
		pager.Patch{Off: off, Data: p.buf[off : off+len(row)]},
	)
	id := RowID{Page: f.ID(), Slot: uint16(slot)}
	f.Unpin()
	if err := h.space.Commit(tx); err != nil {
		return InvalidRowID, err
	}
	h.rowCount++
	return id, nil
}

// pinInsertTarget returns a pinned slotted page with room for a row of
// `need` bytes: the current insert target, a backfill page, or a fresh
// allocation.
func (h *Heap) pinInsertTarget(tx pager.Tx, need int) (*pager.Frame, error) {
	lastFree := 0
	if h.lastPage != 0 {
		f, err := h.space.Pin(h.lastPage)
		if err != nil {
			return nil, err
		}
		lastFree = (page{buf: f.Data()}).freeSpace()
		if lastFree >= need {
			return f, nil
		}
		f.Unpin()
	}
	// demote parks the outgoing insert target on the backfill list if it
	// can still take smaller rows.
	demote := func() {
		if h.lastPage != 0 && lastFree >= h.availMin() {
			h.noteAvail(h.lastPage)
		}
	}
	for i := 0; i < len(h.avail); i++ {
		f, err := h.space.Pin(h.avail[i])
		if err != nil {
			return nil, err
		}
		if (page{buf: f.Data()}).freeSpace() >= need {
			// Promote the backfill page to insert target so follow-up
			// inserts keep filling it instead of allocating fresh pages.
			h.avail = append(h.avail[:i], h.avail[i+1:]...)
			demote()
			h.lastPage = f.ID()
			return f, nil
		}
		f.Unpin()
	}
	f, err := h.space.Allocate(tx, pager.KindSlotted)
	if err != nil {
		return nil, err
	}
	initPage(f.Data())
	demote()
	h.pages = append(h.pages, f.ID())
	h.lastPage = f.ID()
	return f, nil
}

// insertJumbo stores an oversized row as a page chain. Overflow pages
// are built tail-first, each as its own committed pager transaction;
// the head page commits last, so a crash mid-chain leaves at most
// unreachable overflow pages, never a visible partial row.
func (h *Heap) insertJumbo(row []byte) (RowID, error) {
	if len(row) > maxJumboLen {
		return InvalidRowID, fmt.Errorf("%w: %d bytes (max %d)", ErrRowTooLarge, len(row), maxJumboLen)
	}
	headCap := h.payload - jumboHeadHdr
	overCap := h.payload - jumboOverHdr
	rest := len(row) - headCap
	nOver := 0
	if rest > 0 {
		nOver = (rest + overCap - 1) / overCap
	}
	next := uint32(0)
	for i := nOver - 1; i >= 0; i-- {
		start := headCap + i*overCap
		end := start + overCap
		if end > len(row) {
			end = len(row)
		}
		id, err := h.appendJumboPage(pager.KindOverflow, next, 0, row[start:end])
		if err != nil {
			return InvalidRowID, err
		}
		next = id
	}
	headEnd := headCap
	if headEnd > len(row) {
		headEnd = len(row)
	}
	id, err := h.appendJumboPage(pager.KindJumboHead, next, uint32(len(row)), row[:headEnd])
	if err != nil {
		return InvalidRowID, err
	}
	h.rowCount++
	return RowID{Page: id, Slot: 0}, nil
}

// appendJumboPage allocates, fills and commits one page of a jumbo
// chain, returning its id.
func (h *Heap) appendJumboPage(kind uint16, next, total uint32, chunk []byte) (uint32, error) {
	tx := h.space.Begin()
	f, err := h.space.Allocate(tx, kind)
	if err != nil {
		h.space.Rollback(tx)
		return 0, err
	}
	d := f.Data()
	hdr := jumboOverHdr
	if kind == pager.KindJumboHead {
		binary.LittleEndian.PutUint32(d[0:], total)
		binary.LittleEndian.PutUint32(d[4:], next)
		hdr = jumboHeadHdr
	} else {
		binary.LittleEndian.PutUint32(d[0:], next)
	}
	copy(d[hdr:], chunk)
	h.space.Record(tx, f, pager.Patch{Off: 0, Data: d[:hdr+len(chunk)]})
	id := f.ID()
	f.Unpin()
	if err := h.space.Commit(tx); err != nil {
		return 0, err
	}
	h.pages = append(h.pages, id)
	return id, nil
}

// fetchJumbo assembles a jumbo row from its pinned head frame,
// appending to dst.
func (h *Heap) fetchJumbo(dst []byte, f *pager.Frame) ([]byte, error) {
	d := f.Data()
	total := binary.LittleEndian.Uint32(d)
	if total == jumboTombstone {
		return nil, ErrRowDeleted
	}
	if int(total) > maxJumboLen {
		return nil, fmt.Errorf("storage: jumbo row of %d bytes exceeds cap %d", total, maxJumboLen)
	}
	next := binary.LittleEndian.Uint32(d[4:])
	take := int(total)
	if max := h.payload - jumboHeadHdr; take > max {
		take = max
	}
	out := append(dst[:0], d[jumboHeadHdr:jumboHeadHdr+take]...)
	remaining := int(total) - take
	for remaining > 0 {
		if next == 0 {
			return nil, fmt.Errorf("storage: jumbo chain truncated with %d bytes missing", remaining)
		}
		of, err := h.space.Pin(next)
		if err != nil {
			return nil, fmt.Errorf("storage: jumbo chain page %d: %w", next, err)
		}
		od := of.Data()
		next = binary.LittleEndian.Uint32(od)
		take = remaining
		if max := h.payload - jumboOverHdr; take > max {
			take = max
		}
		out = append(out, od[jumboOverHdr:jumboOverHdr+take]...)
		of.Unpin()
		remaining -= take
	}
	return out, nil
}

// Fetch returns a copy of the row at id.
func (h *Heap) Fetch(id RowID) ([]byte, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.fetchLocked(nil, id)
}

// FetchInto reads the row at id, appending to dst to avoid a fresh
// allocation per fetch on hot paths (the join secondary filter fetches
// millions of rows).
func (h *Heap) FetchInto(dst []byte, id RowID) ([]byte, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.fetchLocked(dst, id)
}

func (h *Heap) fetchLocked(dst []byte, id RowID) ([]byte, error) {
	f, err := h.space.Pin(id.Page)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRowID, id)
	}
	defer f.Unpin()
	switch f.Kind() {
	case pager.KindSlotted:
		p := page{buf: f.Data()}
		row, err := p.fetch(int(id.Slot))
		if err != nil {
			return nil, fmt.Errorf("fetch %v: %w", id, err)
		}
		return append(dst[:0], row...), nil
	case pager.KindJumboHead:
		if id.Slot != 0 {
			return nil, fmt.Errorf("fetch %v: %w", id, ErrBadRowID)
		}
		out, err := h.fetchJumbo(dst, f)
		if err != nil {
			return nil, fmt.Errorf("fetch %v: %w", id, err)
		}
		return out, nil
	}
	return nil, fmt.Errorf("%w: %v", ErrBadRowID, id)
}

// Delete tombstones the row at id. The rowid is never reused; when a
// delete pushes a page's dead payload past the compaction threshold the
// page is compacted in place, reclaiming the bytes for future inserts.
func (h *Heap) Delete(id RowID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	f, err := h.space.Pin(id.Page)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRowID, id)
	}
	defer f.Unpin()
	switch f.Kind() {
	case pager.KindSlotted:
		p := page{buf: f.Data()}
		if err := p.delete(int(id.Slot)); err != nil {
			return fmt.Errorf("delete %v: %w", id, err)
		}
		tx := h.space.Begin()
		compacted := p.deadBytes() >= h.compactAt()
		if compacted {
			p.compact()
			h.space.RecordImage(tx, f)
		} else {
			base := pageHeaderSize + int(id.Slot)*slotEntrySize
			h.space.Record(tx, f, pager.Patch{Off: base, Data: p.buf[base : base+slotEntrySize]})
		}
		if err := h.space.Commit(tx); err != nil {
			return err
		}
		if compacted && id.Page != h.lastPage && p.freeSpace() >= h.availMin() {
			h.noteAvail(id.Page)
		}
	case pager.KindJumboHead:
		d := f.Data()
		if id.Slot != 0 {
			return fmt.Errorf("%w: %v", ErrBadRowID, id)
		}
		if binary.LittleEndian.Uint32(d) == jumboTombstone {
			return fmt.Errorf("delete %v: %w", id, ErrRowDeleted)
		}
		tx := h.space.Begin()
		binary.LittleEndian.PutUint32(d[0:], jumboTombstone)
		h.space.Record(tx, f, pager.Patch{Off: 0, Data: d[:4]})
		if err := h.space.Commit(tx); err != nil {
			return err
		}
		// The chain's overflow pages stay until a reorganisation, like
		// Oracle row pieces.
	default:
		return fmt.Errorf("%w: %v", ErrBadRowID, id)
	}
	h.rowCount--
	return nil
}

// Len returns the number of live rows.
func (h *Heap) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.rowCount
}

// PageCount returns the number of allocated pages, the unit the I/O-ish
// statistics are reported in.
func (h *Heap) PageCount() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.pages)
}

// PageSpan returns the half-open page-id interval [lo, hi) covering the
// heap's pages. On a shared durable space the ids need not be dense —
// other tables' pages interleave — so range partitioning must work in
// id space, not page counts.
func (h *Heap) PageSpan() (lo, hi uint32) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if len(h.pages) == 0 {
		return 0, 0
	}
	return h.pages[0], h.pages[len(h.pages)-1] + 1
}

// Scan calls fn for every live row in storage order until fn returns
// false. The row slice passed to fn aliases the pinned page and must
// not be retained. Scan holds a shared lock for its duration; writers
// block until it finishes.
func (h *Heap) Scan(fn func(id RowID, row []byte) bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	h.scanLocked(0, ^uint32(0), fn)
}

// ScanRange behaves like Scan restricted to pages in [fromPage, toPage).
// Parallel table functions use it to partition a full scan into
// contiguous page ranges. A jumbo row belongs to the range holding its
// head page.
func (h *Heap) ScanRange(fromPage, toPage uint32, fn func(id RowID, row []byte) bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	h.scanLocked(fromPage, toPage, fn)
}

func (h *Heap) scanLocked(fromPage, toPage uint32, fn func(id RowID, row []byte) bool) {
	var jumbo []byte
	for _, pid := range h.pages {
		if pid < fromPage {
			continue
		}
		if pid >= toPage {
			return
		}
		f, err := h.space.Pin(pid)
		if err != nil {
			// A page the pool cannot produce ends the scan; the pager
			// has already surfaced the corruption to writers.
			return
		}
		stop := false
		switch f.Kind() {
		case pager.KindSlotted:
			p := page{buf: f.Data()}
			p.liveRows(func(slot int, row []byte) bool {
				if !fn(RowID{Page: pid, Slot: uint16(slot)}, row) {
					stop = true
					return false
				}
				return true
			})
		case pager.KindJumboHead:
			if binary.LittleEndian.Uint32(f.Data()) != jumboTombstone {
				row, err := h.fetchJumbo(jumbo, f)
				if err != nil {
					stop = true
					break
				}
				jumbo = row
				stop = !fn(RowID{Page: pid, Slot: 0}, row)
			}
		}
		f.Unpin()
		if stop {
			return
		}
	}
}
