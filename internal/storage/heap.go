package storage

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by heap operations.
var (
	ErrRowDeleted  = errors.New("storage: row deleted")
	ErrBadRowID    = errors.New("storage: invalid rowid")
	ErrRowTooLarge = errors.New("storage: row too large")
)

// Heap is a heap file: an append-oriented collection of slotted pages.
// It is safe for concurrent use; reads take a shared lock so parallel
// table-function instances can scan and fetch concurrently.
type Heap struct {
	mu       sync.RWMutex
	pageSize int
	// pages[0] is nil so that page number 0 (the InvalidRowID page) is
	// never used.
	pages []*page
	// lastPage is the page currently receiving inserts.
	lastPage uint32
	rowCount int
}

// NewHeap returns an empty heap with the given page size (0 selects
// DefaultPageSize).
func NewHeap(pageSize int) *Heap {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < 64 {
		pageSize = 64
	}
	return &Heap{pageSize: pageSize, pages: []*page{nil}}
}

// Insert appends row and returns its rowid. The row bytes are copied.
func (h *Heap) Insert(row []byte) (RowID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(row) > maxRowLen(h.pageSize) {
		return h.insertJumbo(row)
	}
	if h.lastPage == 0 || h.pages[h.lastPage].freeSpace() < len(row) {
		h.pages = append(h.pages, newPage(h.pageSize))
		h.lastPage = uint32(len(h.pages) - 1)
	}
	p := h.pages[h.lastPage]
	slot, err := p.insert(row)
	if err != nil {
		return InvalidRowID, err
	}
	h.rowCount++
	return RowID{Page: h.lastPage, Slot: uint16(slot)}, nil
}

// insertJumbo gives an oversized row a dedicated page sized to fit.
// Slot bookkeeping uses uint16 offsets, so a single row is limited to
// just under 64 KiB — ample for the synthetic geometry workloads
// (≈ 16 bytes per vertex).
func (h *Heap) insertJumbo(row []byte) (RowID, error) {
	size := len(row) + pageHeaderSize + slotEntrySize
	if size > 0xFFFF {
		return InvalidRowID, fmt.Errorf("%w: %d bytes (max %d)", ErrRowTooLarge, len(row), 0xFFFF-pageHeaderSize-slotEntrySize)
	}
	p := newPage(size)
	slot, err := p.insert(row)
	if err != nil {
		return InvalidRowID, err
	}
	h.pages = append(h.pages, p)
	// A jumbo page is full on arrival; do not direct future inserts at it.
	h.rowCount++
	return RowID{Page: uint32(len(h.pages) - 1), Slot: uint16(slot)}, nil
}

// Fetch returns a copy of the row at id.
func (h *Heap) Fetch(id RowID) ([]byte, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	p, err := h.pageFor(id)
	if err != nil {
		return nil, err
	}
	row, err := p.fetch(int(id.Slot))
	if err != nil {
		return nil, fmt.Errorf("fetch %v: %w", id, err)
	}
	out := make([]byte, len(row))
	copy(out, row)
	return out, nil
}

// FetchInto reads the row at id, appending to dst to avoid a fresh
// allocation per fetch on hot paths (the join secondary filter fetches
// millions of rows).
func (h *Heap) FetchInto(dst []byte, id RowID) ([]byte, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	p, err := h.pageFor(id)
	if err != nil {
		return nil, err
	}
	row, err := p.fetch(int(id.Slot))
	if err != nil {
		return nil, fmt.Errorf("fetch %v: %w", id, err)
	}
	return append(dst[:0], row...), nil
}

// Delete tombstones the row at id. The rowid is never reused.
func (h *Heap) Delete(id RowID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, err := h.pageFor(id)
	if err != nil {
		return err
	}
	if err := p.delete(int(id.Slot)); err != nil {
		return fmt.Errorf("delete %v: %w", id, err)
	}
	h.rowCount--
	return nil
}

func (h *Heap) pageFor(id RowID) (*page, error) {
	if id.Page == 0 || int(id.Page) >= len(h.pages) {
		return nil, fmt.Errorf("%w: %v", ErrBadRowID, id)
	}
	return h.pages[id.Page], nil
}

// Len returns the number of live rows.
func (h *Heap) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.rowCount
}

// PageCount returns the number of allocated pages, the unit the I/O-ish
// statistics are reported in.
func (h *Heap) PageCount() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.pages) - 1
}

// Scan calls fn for every live row in storage order until fn returns
// false. The row slice passed to fn aliases internal storage and must
// not be retained. Scan holds a shared lock for its duration; writers
// block until it finishes.
func (h *Heap) Scan(fn func(id RowID, row []byte) bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for pn := 1; pn < len(h.pages); pn++ {
		stop := false
		h.pages[pn].liveRows(func(slot int, row []byte) bool {
			if !fn(RowID{Page: uint32(pn), Slot: uint16(slot)}, row) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// ScanRange behaves like Scan restricted to pages in [fromPage, toPage).
// Parallel table functions use it to partition a full scan into
// contiguous page ranges.
func (h *Heap) ScanRange(fromPage, toPage uint32, fn func(id RowID, row []byte) bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if fromPage < 1 {
		fromPage = 1
	}
	if int(toPage) > len(h.pages) {
		toPage = uint32(len(h.pages))
	}
	for pn := fromPage; pn < toPage; pn++ {
		stop := false
		h.pages[pn].liveRows(func(slot int, row []byte) bool {
			if !fn(RowID{Page: pn, Slot: uint16(slot)}, row) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}
