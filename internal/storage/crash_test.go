package storage_test

import (
	"bytes"
	"fmt"
	"testing"

	"spatialtf/internal/pager"
	"spatialtf/internal/storage"
)

// The crash-recovery property: after a crash at ANY point, reopening
// the data directory recovers exactly the operations that had committed
// — every committed row fetches back byte-identical at its original
// rowid, every committed delete stays deleted, and rows whose commit
// had not happened are either wholly absent or wholly intact, never
// torn.
//
// The harness runs a deterministic insert/delete workload (small rows,
// jumbo chains, churn that triggers page compaction) on a Heap over a
// durable store on a recording MemFS, snapshotting the expected state
// at every commit boundary. It then replays crashes at injection points
// across the whole operation log — each in a plain and a torn-final-
// write variant, with unsynced writes dropped — reopens, and checks the
// state against the last commit boundary at or before the crash point.

type crashExpect struct {
	point int // fs op count at this commit boundary
	live  map[storage.RowID][]byte
	dead  []storage.RowID
}

// snapshotExpect deep-copies the current expected state.
func snapshotExpect(point int, live map[storage.RowID][]byte, dead []storage.RowID) crashExpect {
	l := make(map[storage.RowID][]byte, len(live))
	for id, row := range live {
		l[id] = append([]byte(nil), row...)
	}
	return crashExpect{point: point, live: l, dead: append([]storage.RowID(nil), dead...)}
}

// crashWorkload runs the write workload and returns the op-log
// checkpoints. The store is left open (the "crash" happens by cloning
// the filesystem underneath it).
func crashWorkload(t *testing.T, fs *pager.MemFS) []crashExpect {
	t.Helper()
	st, err := pager.Open("data", pager.Options{FS: fs, PageSize: 512, PoolPages: 16, Sync: pager.SyncAlways})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	h, err := storage.OpenHeap(st.Space(1))
	if err != nil {
		t.Fatalf("open heap: %v", err)
	}

	live := make(map[storage.RowID][]byte)
	var dead []storage.RowID
	var expects []crashExpect
	var inserted []storage.RowID
	mark := func() {
		expects = append(expects, snapshotExpect(fs.CrashPoints(), live, dead))
	}
	mark()

	row := func(i, size int) []byte {
		b := make([]byte, size)
		for j := range b {
			b[j] = byte(i + j)
		}
		return b
	}

	for i := 0; i < 60; i++ {
		size := 20 + (i%7)*40
		if i%17 == 9 {
			size = 1200 // jumbo: spans several 512-byte pages
		}
		r := row(i, size)
		id, err := h.Insert(r)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		live[id] = r
		inserted = append(inserted, id)
		mark()

		// Churny deletes drive tombstoning and in-place compaction.
		if i%3 == 2 {
			victim := inserted[(i*5)%len(inserted)]
			if _, ok := live[victim]; ok {
				if err := h.Delete(victim); err != nil {
					t.Fatalf("delete %v: %v", victim, err)
				}
				delete(live, victim)
				dead = append(dead, victim)
				mark()
			}
		}
		// A mid-workload checkpoint exercises crash points inside the
		// checkpoint protocol (page writeback, WAL rotation).
		if i == 30 {
			if err := st.Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			mark()
		}
	}
	return expects
}

// verifyCrashPoint reopens a crashed clone and checks it against the
// newest expectation at or before k, tolerating later committed work
// (ops race the op log between commit boundaries) only in intact form.
func verifyCrashPoint(t *testing.T, clone *pager.MemFS, expects []crashExpect, k int, tag string) {
	t.Helper()
	st, err := pager.Open("data", pager.Options{FS: clone, PageSize: 512, PoolPages: 16, Sync: pager.SyncAlways})
	if err != nil {
		t.Fatalf("%s: reopen after crash: %v", tag, err)
	}
	defer st.Close()
	h, err := storage.OpenHeap(st.Space(1))
	if err != nil {
		t.Fatalf("%s: reopen heap after crash: %v", tag, err)
	}

	// The committed-state floor: the last commit boundary at or before k.
	exp := expects[0]
	for _, e := range expects {
		if e.point <= k {
			exp = e
		} else {
			break
		}
	}
	for id, want := range exp.live {
		got, err := h.Fetch(id)
		if err != nil {
			t.Fatalf("%s: committed row %v lost: %v", tag, id, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: committed row %v corrupted: %d bytes, want %d", tag, id, len(got), len(want))
		}
	}
	for _, id := range exp.dead {
		if _, err := h.Fetch(id); err == nil {
			t.Fatalf("%s: committed delete of %v resurrected", tag, id)
		}
	}
	// Rows committed after the floor may or may not have made it; if
	// present they must be byte-identical — never torn.
	final := expects[len(expects)-1]
	for id, want := range final.live {
		if _, ok := exp.live[id]; ok {
			continue
		}
		got, err := h.Fetch(id)
		if err != nil {
			// Any error counts as "wholly absent": the page may not exist
			// yet, or exist with fewer slots than the lost commit added.
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: later row %v present but torn", tag, id)
		}
	}
}

func TestCrashRecoveryEveryInjectionPoint(t *testing.T) {
	fs := pager.NewMemFS()
	expects := crashWorkload(t, fs)
	points := fs.CrashPoints()
	if points < 100 {
		t.Fatalf("workload recorded only %d fs ops", points)
	}
	// Sweep the whole op log. Stride keeps the runtime sane while still
	// visiting far more than 20 injection points; the offset guarantees
	// both commit boundaries and mid-write points are hit.
	stride := points / 60
	if stride < 1 {
		stride = 1
	}
	tested := 0
	for k := 0; k <= points; k += stride {
		for _, torn := range []bool{false, true} {
			clone := fs.CrashClone(k, torn, true)
			verifyCrashPoint(t, clone, expects, k, fmt.Sprintf("k=%d torn=%v", k, torn))
			tested++
		}
	}
	if tested < 20 {
		t.Fatalf("only %d injection points exercised", tested)
	}
	t.Logf("verified %d injection points over %d fs ops", tested, points)
}

// TestCrashRecoveryAtCommitBoundaries pins the exact boundaries: a
// crash immediately after each commit must preserve precisely that
// commit's state.
func TestCrashRecoveryAtCommitBoundaries(t *testing.T) {
	fs := pager.NewMemFS()
	expects := crashWorkload(t, fs)
	stride := len(expects) / 25
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(expects); i += stride {
		e := expects[i]
		clone := fs.CrashClone(e.point, false, true)
		verifyCrashPoint(t, clone, expects, e.point, fmt.Sprintf("boundary %d", i))
	}
}
