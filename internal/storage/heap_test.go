package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestHeapInsertFetch(t *testing.T) {
	h := NewHeap(0)
	id, err := h.Insert([]byte("hello"))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if !id.IsValid() {
		t.Fatalf("rowid %v invalid", id)
	}
	got, err := h.Fetch(id)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if string(got) != "hello" {
		t.Errorf("Fetch = %q", got)
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d", h.Len())
	}
}

func TestHeapFetchCopies(t *testing.T) {
	h := NewHeap(0)
	id, _ := h.Insert([]byte("aaaa"))
	got, _ := h.Fetch(id)
	got[0] = 'z'
	again, _ := h.Fetch(id)
	if string(again) != "aaaa" {
		t.Errorf("Fetch result aliases storage: %q", again)
	}
}

func TestHeapInsertCopiesInput(t *testing.T) {
	h := NewHeap(0)
	row := []byte("mutable")
	id, _ := h.Insert(row)
	row[0] = 'X'
	got, _ := h.Fetch(id)
	if string(got) != "mutable" {
		t.Errorf("Insert retained caller buffer: %q", got)
	}
}

func TestHeapDelete(t *testing.T) {
	h := NewHeap(0)
	id1, _ := h.Insert([]byte("one"))
	id2, _ := h.Insert([]byte("two"))
	if err := h.Delete(id1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := h.Fetch(id1); !errors.Is(err, ErrRowDeleted) {
		t.Errorf("Fetch deleted: got %v, want ErrRowDeleted", err)
	}
	if err := h.Delete(id1); !errors.Is(err, ErrRowDeleted) {
		t.Errorf("double Delete: got %v, want ErrRowDeleted", err)
	}
	// Unrelated rows keep their rowids and contents.
	got, err := h.Fetch(id2)
	if err != nil || string(got) != "two" {
		t.Errorf("sibling row damaged: %q, %v", got, err)
	}
	if h.Len() != 1 {
		t.Errorf("Len after delete = %d", h.Len())
	}
}

func TestHeapBadRowIDs(t *testing.T) {
	h := NewHeap(0)
	h.Insert([]byte("x"))
	for _, id := range []RowID{{}, {Page: 99, Slot: 0}, {Page: 1, Slot: 99}} {
		if _, err := h.Fetch(id); err == nil {
			t.Errorf("Fetch(%v): want error", id)
		}
	}
}

func TestHeapPageOverflow(t *testing.T) {
	h := NewHeap(256)
	var ids []RowID
	for i := 0; i < 50; i++ {
		id, err := h.Insert(bytes.Repeat([]byte{byte(i)}, 40))
		if err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	if h.PageCount() < 2 {
		t.Errorf("expected multiple pages, got %d", h.PageCount())
	}
	for i, id := range ids {
		got, err := h.Fetch(id)
		if err != nil {
			t.Fatalf("Fetch %d: %v", i, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 40)) {
			t.Errorf("row %d corrupted", i)
		}
	}
}

func TestHeapJumboRows(t *testing.T) {
	h := NewHeap(256)
	big := bytes.Repeat([]byte("J"), 10000)
	id, err := h.Insert(big)
	if err != nil {
		t.Fatalf("jumbo Insert: %v", err)
	}
	got, err := h.Fetch(id)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("jumbo Fetch failed: %v", err)
	}
	// Next small insert must not land on the full jumbo page.
	id2, err := h.Insert([]byte("small"))
	if err != nil {
		t.Fatalf("Insert after jumbo: %v", err)
	}
	if id2.Page == id.Page {
		t.Errorf("small row landed on jumbo page")
	}
	// Over the hard cap.
	if _, err := h.Insert(make([]byte, 70000)); !errors.Is(err, ErrRowTooLarge) {
		t.Errorf("oversized insert: got %v, want ErrRowTooLarge", err)
	}
}

func TestHeapScanOrderAndCompleteness(t *testing.T) {
	h := NewHeap(512)
	want := map[RowID]string{}
	for i := 0; i < 200; i++ {
		s := fmt.Sprintf("row-%03d", i)
		id, err := h.Insert([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		want[id] = s
	}
	var prev RowID
	seen := 0
	h.Scan(func(id RowID, row []byte) bool {
		if seen > 0 && !prev.Less(id) {
			t.Errorf("scan out of order: %v then %v", prev, id)
		}
		prev = id
		if want[id] != string(row) {
			t.Errorf("row %v = %q, want %q", id, row, want[id])
		}
		seen++
		return true
	})
	if seen != len(want) {
		t.Errorf("scan saw %d rows, want %d", seen, len(want))
	}
}

func TestHeapScanSkipsDeleted(t *testing.T) {
	h := NewHeap(0)
	var ids []RowID
	for i := 0; i < 10; i++ {
		id, _ := h.Insert([]byte{byte(i)})
		ids = append(ids, id)
	}
	for i := 0; i < 10; i += 2 {
		h.Delete(ids[i])
	}
	count := 0
	h.Scan(func(id RowID, row []byte) bool {
		if row[0]%2 == 0 {
			t.Errorf("deleted row %v surfaced in scan", id)
		}
		count++
		return true
	})
	if count != 5 {
		t.Errorf("scan saw %d rows, want 5", count)
	}
}

func TestHeapScanEarlyStop(t *testing.T) {
	h := NewHeap(0)
	for i := 0; i < 10; i++ {
		h.Insert([]byte{byte(i)})
	}
	count := 0
	h.Scan(func(RowID, []byte) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("scan visited %d rows after early stop, want 3", count)
	}
}

func TestHeapScanRange(t *testing.T) {
	h := NewHeap(128)
	for i := 0; i < 100; i++ {
		h.Insert(bytes.Repeat([]byte{byte(i)}, 30))
	}
	total := 0
	h.Scan(func(RowID, []byte) bool { total++; return true })
	pages := uint32(h.PageCount())
	// Two halves must partition the full scan.
	mid := pages/2 + 1
	c1, c2 := 0, 0
	h.ScanRange(1, mid, func(RowID, []byte) bool { c1++; return true })
	h.ScanRange(mid, pages+1, func(RowID, []byte) bool { c2++; return true })
	if c1+c2 != total {
		t.Errorf("range scans cover %d+%d rows, full scan %d", c1, c2, total)
	}
	if c1 == 0 || c2 == 0 {
		t.Errorf("degenerate partition: %d, %d", c1, c2)
	}
}

func TestHeapConcurrentReaders(t *testing.T) {
	h := NewHeap(0)
	var ids []RowID
	for i := 0; i < 1000; i++ {
		id, _ := h.Insert([]byte(fmt.Sprintf("%d", i)))
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				idx := rng.Intn(len(ids))
				got, err := h.Fetch(ids[idx])
				if err != nil {
					errs <- err
					return
				}
				if string(got) != fmt.Sprintf("%d", idx) {
					errs <- fmt.Errorf("row %d corrupted: %q", idx, got)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestHeapRoundTripProperty: any byte string that fits round-trips.
func TestHeapRoundTripProperty(t *testing.T) {
	h := NewHeap(0)
	f := func(row []byte) bool {
		if len(row) > 60000 {
			row = row[:60000]
		}
		id, err := h.Insert(row)
		if err != nil {
			return false
		}
		got, err := h.Fetch(id)
		if err != nil {
			return false
		}
		return bytes.Equal(got, row)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRowIDOrderingAndEncoding(t *testing.T) {
	ids := []RowID{
		{Page: 1, Slot: 0},
		{Page: 1, Slot: 1},
		{Page: 2, Slot: 0},
		{Page: 300, Slot: 65535},
	}
	for i := 0; i < len(ids)-1; i++ {
		if !ids[i].Less(ids[i+1]) {
			t.Errorf("%v should be < %v", ids[i], ids[i+1])
		}
		if ids[i+1].Less(ids[i]) {
			t.Errorf("%v should not be < %v", ids[i+1], ids[i])
		}
		if ids[i].Compare(ids[i+1]) != -1 || ids[i+1].Compare(ids[i]) != 1 || ids[i].Compare(ids[i]) != 0 {
			t.Errorf("Compare inconsistent at %d", i)
		}
		// Byte encoding must preserve order.
		a := ids[i].AppendTo(nil)
		b := ids[i+1].AppendTo(nil)
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("encoded order broken for %v vs %v", ids[i], ids[i+1])
		}
	}
	for _, id := range ids {
		back, err := RowIDFromBytes(id.AppendTo(nil))
		if err != nil || back != id {
			t.Errorf("round trip %v -> %v (%v)", id, back, err)
		}
	}
	if _, err := RowIDFromBytes([]byte{1, 2}); err == nil {
		t.Errorf("short rowid bytes: want error")
	}
	if (RowID{}).IsValid() {
		t.Errorf("zero RowID should be invalid")
	}
}
