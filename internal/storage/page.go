package storage

import (
	"encoding/binary"
	"fmt"
)

// DefaultPageSize is the size of a regular heap page. Rows larger than
// the page payload are stored as a jumbo chain: a head page plus
// overflow pages, the moral equivalent of row chaining.
const DefaultPageSize = 8192

// page header layout (little endian):
//
//	offset 0: uint16 slot count
//	offset 2: uint16 free-space pointer (offset of first free payload byte,
//	          growing downward from the end of the page)
//	offset 4: slot directory, 4 bytes per slot: uint16 offset, uint16 length
//
// Row payload grows from the end of the page toward the directory.
// A slot with length 0xFFFF is a tombstone (deleted row). This layout
// is the pager page payload verbatim: what Mem holds in RAM is what
// Store writes to disk (behind the pager's own frame header, which
// carries the page LSN and checksum).
const (
	pageHeaderSize = 4
	slotEntrySize  = 4
	tombstoneLen   = 0xFFFF
)

// page is a view over a slotted heap page payload. All access is
// coordinated by the owning Heap's lock; the payload is pinned by the
// caller for the lifetime of the view. The methods use value receivers
// so a view can be built around any pinned frame's payload slice.
type page struct {
	buf []byte
}

// newPage returns a detached page of the given size (tests only; heaps
// get page payloads from their pager space).
func newPage(size int) *page {
	p := &page{buf: make([]byte, size)}
	initPage(p.buf)
	return p
}

// initPage formats a zeroed payload as an empty slotted page.
func initPage(buf []byte) {
	binary.LittleEndian.PutUint16(buf[0:], 0)
	binary.LittleEndian.PutUint16(buf[2:], uint16(len(buf)))
}

func (p page) slotCount() int      { return int(binary.LittleEndian.Uint16(p.buf[0:])) }
func (p page) setSlotCount(n int)  { binary.LittleEndian.PutUint16(p.buf[0:], uint16(n)) }
func (p page) freePtr() int        { return int(binary.LittleEndian.Uint16(p.buf[2:])) }
func (p page) setFreePtr(v uint16) { binary.LittleEndian.PutUint16(p.buf[2:], v) }

func (p page) slotOffset(i int) int {
	return int(binary.LittleEndian.Uint16(p.buf[pageHeaderSize+i*slotEntrySize:]))
}
func (p page) slotLen(i int) int {
	return int(binary.LittleEndian.Uint16(p.buf[pageHeaderSize+i*slotEntrySize+2:]))
}

func (p page) setSlot(i, off, length int) {
	base := pageHeaderSize + i*slotEntrySize
	binary.LittleEndian.PutUint16(p.buf[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:], uint16(length))
}

// freeSpace returns the bytes available for one more row including its
// slot entry.
func (p page) freeSpace() int {
	dirEnd := pageHeaderSize + p.slotCount()*slotEntrySize
	free := p.freePtr() - dirEnd - slotEntrySize
	if free < 0 {
		return 0
	}
	return free
}

// maxRowLen is the largest row a regular page can hold.
func maxRowLen(pageSize int) int {
	return pageSize - pageHeaderSize - slotEntrySize
}

// insert places row in the page and returns its slot index. The caller
// must have checked freeSpace.
func (p page) insert(row []byte) (int, error) {
	if len(row) > p.freeSpace() {
		return 0, fmt.Errorf("storage: row of %d bytes exceeds page free space %d", len(row), p.freeSpace())
	}
	slot := p.slotCount()
	off := p.freePtr() - len(row)
	copy(p.buf[off:], row)
	p.setFreePtr(uint16(off))
	p.setSlot(slot, off, len(row))
	p.setSlotCount(slot + 1)
	return slot, nil
}

// fetch returns the row bytes at slot i, aliasing the page buffer. The
// caller must copy if it retains the bytes beyond the page pin.
func (p page) fetch(i int) ([]byte, error) {
	if i >= p.slotCount() {
		return nil, fmt.Errorf("storage: slot %d out of range (page has %d)", i, p.slotCount())
	}
	l := p.slotLen(i)
	if l == tombstoneLen {
		return nil, ErrRowDeleted
	}
	off := p.slotOffset(i)
	return p.buf[off : off+l], nil
}

// delete tombstones slot i. The payload bytes stay behind until enough
// of the page is dead that compact reclaims them in one pass.
func (p page) delete(i int) error {
	if i >= p.slotCount() {
		return fmt.Errorf("storage: slot %d out of range (page has %d)", i, p.slotCount())
	}
	if p.slotLen(i) == tombstoneLen {
		return ErrRowDeleted
	}
	p.setSlot(i, 0, tombstoneLen)
	return nil
}

// liveRows calls fn for each non-deleted slot.
func (p page) liveRows(fn func(slot int, row []byte) bool) {
	n := p.slotCount()
	for i := 0; i < n; i++ {
		l := p.slotLen(i)
		if l == tombstoneLen {
			continue
		}
		off := p.slotOffset(i)
		if !fn(i, p.buf[off:off+l]) {
			return
		}
	}
}

// liveCount returns the number of non-deleted slots.
func (p page) liveCount() int {
	n, live := p.slotCount(), 0
	for i := 0; i < n; i++ {
		if p.slotLen(i) != tombstoneLen {
			live++
		}
	}
	return live
}

// deadBytes returns payload bytes occupied by tombstoned rows — space a
// compact would reclaim. Slot directory entries are never reclaimed
// (rowids are stable and never reused), so a page's directory only
// grows; the payload behind tombstones is the recoverable part.
func (p page) deadBytes() int {
	used := len(p.buf) - p.freePtr()
	live := 0
	n := p.slotCount()
	for i := 0; i < n; i++ {
		if l := p.slotLen(i); l != tombstoneLen {
			live += l
		}
	}
	return used - live
}

// compact rewrites the payload so live rows pack the end of the page
// contiguously, reclaiming tombstoned bytes. Slot indices are stable
// (tombstones keep their directory entries), so no rowid changes; only
// slot offsets move. The caller must log the page afterwards
// (RecordImage) — compaction moves too many ranges for patch records to
// be worthwhile.
func (p page) compact() {
	n := p.slotCount()
	scratch := make([]byte, len(p.buf))
	w := len(p.buf)
	for i := 0; i < n; i++ {
		l := p.slotLen(i)
		if l == tombstoneLen {
			continue
		}
		off := p.slotOffset(i)
		w -= l
		copy(scratch[w:], p.buf[off:off+l])
		p.setSlot(i, w, l)
	}
	copy(p.buf[w:], scratch[w:])
	p.setFreePtr(uint16(w))
}
