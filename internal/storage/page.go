package storage

import (
	"encoding/binary"
	"fmt"
)

// DefaultPageSize is the size of a regular heap page. Rows larger than
// the page payload get a dedicated jumbo page sized to fit, the moral
// equivalent of row chaining.
const DefaultPageSize = 8192

// page header layout (little endian):
//
//	offset 0: uint16 slot count
//	offset 2: uint16 free-space pointer (offset of first free payload byte,
//	          growing downward from the end of the page)
//	offset 4: slot directory, 4 bytes per slot: uint16 offset, uint16 length
//
// Row payload grows from the end of the page toward the directory.
// A slot with length 0xFFFF is a tombstone (deleted row).
const (
	pageHeaderSize = 4
	slotEntrySize  = 4
	tombstoneLen   = 0xFFFF
)

// page is a slotted heap page. All access is coordinated by the owning
// Heap's lock.
type page struct {
	buf []byte
}

func newPage(size int) *page {
	p := &page{buf: make([]byte, size)}
	p.setSlotCount(0)
	p.setFreePtr(uint16(size))
	return p
}

func (p *page) slotCount() int      { return int(binary.LittleEndian.Uint16(p.buf[0:])) }
func (p *page) setSlotCount(n int)  { binary.LittleEndian.PutUint16(p.buf[0:], uint16(n)) }
func (p *page) freePtr() int        { return int(binary.LittleEndian.Uint16(p.buf[2:])) }
func (p *page) setFreePtr(v uint16) { binary.LittleEndian.PutUint16(p.buf[2:], v) }

func (p *page) slotOffset(i int) int {
	return int(binary.LittleEndian.Uint16(p.buf[pageHeaderSize+i*slotEntrySize:]))
}
func (p *page) slotLen(i int) int {
	return int(binary.LittleEndian.Uint16(p.buf[pageHeaderSize+i*slotEntrySize+2:]))
}

func (p *page) setSlot(i, off, length int) {
	base := pageHeaderSize + i*slotEntrySize
	binary.LittleEndian.PutUint16(p.buf[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:], uint16(length))
}

// freeSpace returns the bytes available for one more row including its
// slot entry.
func (p *page) freeSpace() int {
	dirEnd := pageHeaderSize + p.slotCount()*slotEntrySize
	free := p.freePtr() - dirEnd - slotEntrySize
	if free < 0 {
		return 0
	}
	return free
}

// maxRowLen is the largest row a regular page can hold.
func maxRowLen(pageSize int) int {
	return pageSize - pageHeaderSize - slotEntrySize
}

// insert places row in the page and returns its slot index. The caller
// must have checked freeSpace.
func (p *page) insert(row []byte) (int, error) {
	if len(row) > p.freeSpace() {
		return 0, fmt.Errorf("storage: row of %d bytes exceeds page free space %d", len(row), p.freeSpace())
	}
	slot := p.slotCount()
	off := p.freePtr() - len(row)
	copy(p.buf[off:], row)
	p.setFreePtr(uint16(off))
	p.setSlot(slot, off, len(row))
	p.setSlotCount(slot + 1)
	return slot, nil
}

// fetch returns the row bytes at slot i, aliasing the page buffer. The
// caller must copy if it retains the bytes beyond the page lock.
func (p *page) fetch(i int) ([]byte, error) {
	if i >= p.slotCount() {
		return nil, fmt.Errorf("storage: slot %d out of range (page has %d)", i, p.slotCount())
	}
	l := p.slotLen(i)
	if l == tombstoneLen {
		return nil, ErrRowDeleted
	}
	off := p.slotOffset(i)
	return p.buf[off : off+l], nil
}

// delete tombstones slot i. The payload space is not reclaimed; heap
// compaction is out of scope for this substrate (Oracle likewise leaves
// row pieces until a segment reorganisation).
func (p *page) delete(i int) error {
	if i >= p.slotCount() {
		return fmt.Errorf("storage: slot %d out of range (page has %d)", i, p.slotCount())
	}
	if p.slotLen(i) == tombstoneLen {
		return ErrRowDeleted
	}
	p.setSlot(i, 0, tombstoneLen)
	return nil
}

// liveRows calls fn for each non-deleted slot.
func (p *page) liveRows(fn func(slot int, row []byte) bool) {
	n := p.slotCount()
	for i := 0; i < n; i++ {
		l := p.slotLen(i)
		if l == tombstoneLen {
			continue
		}
		off := p.slotOffset(i)
		if !fn(i, p.buf[off:off+l]) {
			return
		}
	}
}
