package storage

import "fmt"

// Cursor is the pull-based row stream consumed by table functions: the
// Go rendering of the ref-cursor arguments in the paper's SQL examples.
// Implementations are not safe for concurrent use; parallel table
// functions give each instance its own cursor over a disjoint partition.
type Cursor interface {
	// Next returns the next row. ok is false when the stream is
	// exhausted (in which case the other results are zero values).
	Next() (id RowID, row Row, ok bool, err error)
	// Close releases the cursor's resources. Close is idempotent.
	Close() error
}

// tableCursor iterates a table (or a page range of it) without holding
// the heap lock between Next calls, so writers and other readers can
// interleave. It observes rows inserted behind its position, matching
// the read-committed-per-fetch behaviour of an Oracle cursor without a
// serializable snapshot — adequate for the read-only workloads here.
type tableCursor struct {
	t      *Table
	page   uint32
	slot   int
	toPage uint32 // exclusive; 0 means "end of table at each step"
	closed bool
}

// NewCursor returns a cursor over all rows of t in storage order.
func NewCursor(t *Table) Cursor {
	return &tableCursor{t: t, page: 1, slot: 0}
}

// NewRangeCursor returns a cursor over the rows stored in heap pages
// [fromPage, toPage).
func NewRangeCursor(t *Table, fromPage, toPage uint32) Cursor {
	if fromPage < 1 {
		fromPage = 1
	}
	return &tableCursor{t: t, page: fromPage, slot: 0, toPage: toPage}
}

// Next advances to the next live row.
func (c *tableCursor) Next() (RowID, Row, bool, error) {
	if c.closed {
		return InvalidRowID, nil, false, fmt.Errorf("storage: cursor on %q used after Close", c.t.name)
	}
	h := c.t.heap
	for {
		h.mu.RLock()
		limit := uint32(len(h.pages))
		if c.toPage != 0 && c.toPage < limit {
			limit = c.toPage
		}
		if c.page >= limit {
			h.mu.RUnlock()
			return InvalidRowID, nil, false, nil
		}
		p := h.pages[c.page]
		n := p.slotCount()
		for c.slot < n {
			slot := c.slot
			c.slot++
			if p.slotLen(slot) == tombstoneLen {
				continue
			}
			off := p.slotOffset(slot)
			img := make([]byte, p.slotLen(slot))
			copy(img, p.buf[off:])
			h.mu.RUnlock()
			row, err := decodeRow(c.t.schema, img)
			if err != nil {
				return InvalidRowID, nil, false, fmt.Errorf("cursor on %q: %w", c.t.name, err)
			}
			return RowID{Page: c.page, Slot: uint16(slot)}, row, true, nil
		}
		h.mu.RUnlock()
		c.page++
		c.slot = 0
	}
}

// Close marks the cursor unusable.
func (c *tableCursor) Close() error {
	c.closed = true
	return nil
}

// SliceCursor adapts an in-memory row slice to the Cursor interface;
// tests and the table-function framework use it for synthesized row
// sources (e.g. the subtree-root streams of the parallel join).
type SliceCursor struct {
	IDs  []RowID
	Rows []Row
	pos  int
}

// NewSliceCursor returns a cursor over parallel id/row slices. ids may
// be nil, in which case InvalidRowID is reported for every row.
func NewSliceCursor(ids []RowID, rows []Row) *SliceCursor {
	return &SliceCursor{IDs: ids, Rows: rows}
}

// Next returns the next slice element.
func (c *SliceCursor) Next() (RowID, Row, bool, error) {
	if c.pos >= len(c.Rows) {
		return InvalidRowID, nil, false, nil
	}
	i := c.pos
	c.pos++
	id := InvalidRowID
	if c.IDs != nil {
		id = c.IDs[i]
	}
	return id, c.Rows[i], true, nil
}

// Close implements Cursor.
func (c *SliceCursor) Close() error { return nil }

// Drain reads every remaining row from c and returns them, closing c.
func Drain(c Cursor) (ids []RowID, rows []Row, err error) {
	defer c.Close()
	for {
		id, row, ok, err := c.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return ids, rows, nil
		}
		ids = append(ids, id)
		rows = append(rows, row)
	}
}
