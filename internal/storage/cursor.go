package storage

import (
	"fmt"

	"spatialtf/internal/pager"
)

// Cursor is the pull-based row stream consumed by table functions: the
// Go rendering of the ref-cursor arguments in the paper's SQL examples.
// Implementations are not safe for concurrent use; parallel table
// functions give each instance its own cursor over a disjoint partition.
type Cursor interface {
	// Next returns the next row. ok is false when the stream is
	// exhausted (in which case the other results are zero values).
	Next() (id RowID, row Row, ok bool, err error)
	// Close releases the cursor's resources. Close is idempotent.
	Close() error
}

// tableCursor iterates a table (or a page range of it) without holding
// the heap lock between Next calls, so writers and other readers can
// interleave. It observes rows inserted behind its position, matching
// the read-committed-per-fetch behaviour of an Oracle cursor without a
// serializable snapshot — adequate for the read-only workloads here.
//
// The cursor tracks its position as an index into the heap's page list,
// which is append-only, so the position survives lock releases even as
// the table grows. Each Next pins the current page, copies one row out,
// and unpins before decoding.
type tableCursor struct {
	t        *Table
	pageIdx  int
	slot     int
	fromPage uint32
	toPage   uint32 // exclusive; 0 means "end of table at each step"
	closed   bool
}

// NewCursor returns a cursor over all rows of t in storage order.
func NewCursor(t *Table) Cursor {
	return &tableCursor{t: t}
}

// NewRangeCursor returns a cursor over the rows stored in heap pages
// [fromPage, toPage).
func NewRangeCursor(t *Table, fromPage, toPage uint32) Cursor {
	return &tableCursor{t: t, fromPage: fromPage, toPage: toPage}
}

// Next advances to the next live row.
func (c *tableCursor) Next() (RowID, Row, bool, error) {
	if c.closed {
		return InvalidRowID, nil, false, fmt.Errorf("storage: cursor on %q used after Close", c.t.name)
	}
	h := c.t.heap
	for {
		h.mu.RLock()
		if c.pageIdx >= len(h.pages) {
			h.mu.RUnlock()
			return InvalidRowID, nil, false, nil
		}
		pid := h.pages[c.pageIdx]
		if pid < c.fromPage {
			h.mu.RUnlock()
			c.pageIdx++
			c.slot = 0
			continue
		}
		if c.toPage != 0 && pid >= c.toPage {
			h.mu.RUnlock()
			return InvalidRowID, nil, false, nil
		}
		f, err := h.space.Pin(pid)
		if err != nil {
			h.mu.RUnlock()
			return InvalidRowID, nil, false, fmt.Errorf("cursor on %q: %w", c.t.name, err)
		}
		var img []byte
		id := InvalidRowID
		switch f.Kind() {
		case pager.KindSlotted:
			p := page{buf: f.Data()}
			n := p.slotCount()
			for c.slot < n && img == nil {
				slot := c.slot
				c.slot++
				if p.slotLen(slot) == tombstoneLen {
					continue
				}
				off := p.slotOffset(slot)
				img = make([]byte, p.slotLen(slot))
				copy(img, p.buf[off:])
				id = RowID{Page: pid, Slot: uint16(slot)}
			}
		case pager.KindJumboHead:
			if c.slot == 0 {
				c.slot++
				row, jerr := h.fetchJumbo(nil, f)
				if jerr != nil && jerr != ErrRowDeleted {
					f.Unpin()
					h.mu.RUnlock()
					return InvalidRowID, nil, false, fmt.Errorf("cursor on %q: %w", c.t.name, jerr)
				}
				if jerr == nil {
					img = row
					id = RowID{Page: pid, Slot: 0}
				}
			}
		}
		f.Unpin()
		h.mu.RUnlock()
		if img == nil {
			c.pageIdx++
			c.slot = 0
			continue
		}
		row, err := decodeRow(c.t.schema, img)
		if err != nil {
			return InvalidRowID, nil, false, fmt.Errorf("cursor on %q: %w", c.t.name, err)
		}
		return id, row, true, nil
	}
}

// Close marks the cursor unusable.
func (c *tableCursor) Close() error {
	c.closed = true
	return nil
}

// SliceCursor adapts an in-memory row slice to the Cursor interface;
// tests and the table-function framework use it for synthesized row
// sources (e.g. the subtree-root streams of the parallel join).
type SliceCursor struct {
	IDs  []RowID
	Rows []Row
	pos  int
}

// NewSliceCursor returns a cursor over parallel id/row slices. ids may
// be nil, in which case InvalidRowID is reported for every row.
func NewSliceCursor(ids []RowID, rows []Row) *SliceCursor {
	return &SliceCursor{IDs: ids, Rows: rows}
}

// Next returns the next slice element.
func (c *SliceCursor) Next() (RowID, Row, bool, error) {
	if c.pos >= len(c.Rows) {
		return InvalidRowID, nil, false, nil
	}
	i := c.pos
	c.pos++
	id := InvalidRowID
	if c.IDs != nil {
		id = c.IDs[i]
	}
	return id, c.Rows[i], true, nil
}

// Close implements Cursor.
func (c *SliceCursor) Close() error { return nil }

// Drain reads every remaining row from c and returns them, closing c.
func Drain(c Cursor) (ids []RowID, rows []Row, err error) {
	defer c.Close()
	for {
		id, row, ok, err := c.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return ids, rows, nil
		}
		ids = append(ids, id)
		rows = append(rows, row)
	}
}
