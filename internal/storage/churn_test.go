package storage_test

import (
	"testing"

	"spatialtf/internal/pager"
	"spatialtf/internal/storage"
)

// TestChurnBoundedGrowth proves tombstone space reclamation: a sustained
// insert/delete cycle must not grow the heap without bound. Compaction
// reclaims payload bytes in place and freed pages rejoin the insert
// path via the avail list, so file size is bounded by the live set plus
// slot-entry overhead — not by the total number of operations.
//
// Without reclamation this workload (10k cycles of ~100-byte rows on
// 512-byte pages) would allocate thousands of pages; with it the page
// count stays two orders of magnitude lower.
func TestChurnBoundedGrowth(t *testing.T) {
	h := storage.NewHeap(512)
	row := make([]byte, 100)
	for i := range row {
		row[i] = byte(i)
	}

	const cycles = 10000
	const keep = 8 // live rows at any moment
	var ids []storage.RowID
	for i := 0; i < cycles; i++ {
		id, err := h.Insert(row)
		if err != nil {
			t.Fatalf("cycle %d insert: %v", i, err)
		}
		ids = append(ids, id)
		if len(ids) > keep {
			victim := ids[0]
			ids = ids[1:]
			if err := h.Delete(victim); err != nil {
				t.Fatalf("cycle %d delete %v: %v", i, victim, err)
			}
		}
	}
	if got := h.Len(); got != keep {
		t.Fatalf("live rows = %d, want %d", got, keep)
	}
	// Slot entries are never reclaimed (rowid stability), so pages do
	// retire once their slot arrays fill — but payload reuse keeps the
	// bound at ~cycles/slots-per-page, far below one-page-per-few-rows.
	if pc := h.PageCount(); pc > 200 {
		t.Fatalf("page count after %d churn cycles = %d, want bounded (<200)", cycles, pc)
	} else {
		t.Logf("%d churn cycles settled at %d pages", cycles, pc)
	}
}

// TestChurnBoundedGrowthDurable runs a smaller churn cycle against the
// durable store so compaction's RecordImage path and avail-list rebuild
// on reopen are both exercised.
func TestChurnBoundedGrowthDurable(t *testing.T) {
	fs := pager.NewMemFS()
	st, err := pager.Open("data", pager.Options{FS: fs, PageSize: 512, Sync: pager.SyncOff})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	h, err := storage.OpenHeap(st.Space(1))
	if err != nil {
		t.Fatalf("open heap: %v", err)
	}
	row := make([]byte, 100)
	var ids []storage.RowID
	const cycles = 2000
	for i := 0; i < cycles; i++ {
		id, err := h.Insert(row)
		if err != nil {
			t.Fatalf("cycle %d insert: %v", i, err)
		}
		ids = append(ids, id)
		if len(ids) > 8 {
			victim := ids[0]
			ids = ids[1:]
			if err := h.Delete(victim); err != nil {
				t.Fatalf("cycle %d delete: %v", i, err)
			}
		}
	}
	pc := h.PageCount()
	if pc > 80 {
		t.Fatalf("durable churn: %d pages after %d cycles, want bounded (<80)", pc, cycles)
	}

	// Reopen: the avail list is rebuilt from page headers, so churn after
	// a restart keeps reusing the same pages instead of growing the file.
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st2, err := pager.Open("data", pager.Options{FS: fs, PageSize: 512, Sync: pager.SyncOff})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer st2.Close()
	h2, err := storage.OpenHeap(st2.Space(1))
	if err != nil {
		t.Fatalf("reopen heap: %v", err)
	}
	if got := h2.Len(); got != len(ids) {
		t.Fatalf("reopened heap has %d rows, want %d", got, len(ids))
	}
	for i := 0; i < 500; i++ {
		id, err := h2.Insert(row)
		if err != nil {
			t.Fatalf("post-reopen insert: %v", err)
		}
		if err := h2.Delete(id); err != nil {
			t.Fatalf("post-reopen delete: %v", err)
		}
	}
	if got := h2.PageCount(); got > pc+25 {
		t.Fatalf("post-reopen churn grew pages %d -> %d; avail list not rebuilt", pc, got)
	}
}
