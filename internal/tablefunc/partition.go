package tablefunc

import (
	"spatialtf/internal/storage"
)

// PartitionTable splits a table scan into up to n page-range cursors —
// the runtime's input-cursor partitioning for a parallel table function
// whose operand is "select * from t". Tiny tables yield fewer
// partitions.
func PartitionTable(t *storage.Table, n int) []storage.Cursor {
	ranges := t.PageRanges(n)
	out := make([]storage.Cursor, 0, len(ranges))
	for _, r := range ranges {
		out = append(out, storage.NewRangeCursor(t, r[0], r[1]))
	}
	return out
}

// PartitionRows drains an arbitrary cursor and deals its rows
// round-robin into n slice cursors. It is the generic partitioner used
// when the input is itself a table-function result (e.g. the subtree
// root pair stream of the parallel spatial join) rather than a base
// table.
func PartitionRows(c storage.Cursor, n int) ([]storage.Cursor, error) {
	if n < 1 {
		n = 1
	}
	ids := make([][]storage.RowID, n)
	rows := make([][]storage.Row, n)
	i := 0
	defer c.Close()
	for {
		id, row, ok, err := c.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		ids[i%n] = append(ids[i%n], id)
		rows[i%n] = append(rows[i%n], row)
		i++
	}
	var out []storage.Cursor
	for j := 0; j < n; j++ {
		if len(rows[j]) == 0 {
			continue
		}
		out = append(out, storage.NewSliceCursor(ids[j], rows[j]))
	}
	return out, nil
}

// CollectRows drains a cursor into a row slice, closing it. It is the
// "CAST(... AS TABLE)" shim used by tests and small tools.
func CollectRows(c storage.Cursor) ([]storage.Row, error) {
	_, rows, err := storage.Drain(c)
	return rows, err
}

// FuncCursor wraps a plain next-function as a TableFunction, for small
// generators (test fixtures, synthesized streams). next returns nil when
// exhausted.
type FuncCursor struct {
	StartFn func() error
	NextFn  func() (storage.Row, error)
	CloseFn func() error
}

// Start implements TableFunction.
func (f *FuncCursor) Start() error {
	if f.StartFn != nil {
		return f.StartFn()
	}
	return nil
}

// Fetch implements TableFunction.
func (f *FuncCursor) Fetch(max int) ([]storage.Row, error) {
	var out []storage.Row
	for len(out) < max {
		row, err := f.NextFn()
		if err != nil {
			return nil, err
		}
		if row == nil {
			break
		}
		out = append(out, row)
	}
	return out, nil
}

// Close implements TableFunction.
func (f *FuncCursor) Close() error {
	if f.CloseFn != nil {
		return f.CloseFn()
	}
	return nil
}
