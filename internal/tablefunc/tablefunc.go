// Package tablefunc implements Oracle 9i's parallel and pipelined table
// functions (§2 of the paper) on goroutines and channels.
//
// A table function is "a function that can produce a set of rows as
// output" and can be used in place of a table in a FROM clause. Two
// properties matter to the paper:
//
//  1. Pipelining — results are produced through a start-fetch-close
//     interface, iteratively, "essential to support table functions that
//     return a large set of rows that cannot fit in memory". The
//     TableFunction interface here is exactly start/fetch/close, and
//     Pipeline adapts it to a pull cursor.
//
//  2. Parallelism — a table function "directly accept[s] a set of rows
//     (a cursor)" and the runtime "allows a set of input rows to be
//     partitioned across multiple instances of a parallel function".
//     Parallel runs one instance per input partition on its own
//     goroutine and funnels their fetch batches into one output stream.
package tablefunc

import (
	"errors"
	"fmt"
	"sync"

	"spatialtf/internal/storage"
)

// DefaultBatch is the default number of rows per fetch call.
const DefaultBatch = 256

// TableFunction is the ODCITable-style start-fetch-close contract.
// Implementations are driven by a single goroutine: Start once, Fetch
// until it returns an empty batch, then Close exactly once.
type TableFunction interface {
	// Start acquires resources and prepares iteration.
	Start() error
	// Fetch returns up to max result rows. An empty (or nil) slice
	// signals exhaustion.
	Fetch(max int) ([]storage.Row, error)
	// Close releases resources. It is called even after errors.
	Close() error
}

// Factory builds one instance of a parallel table function over one
// partition of the input cursor. The instance number is informational
// (labels, affinity).
type Factory func(instance int, input storage.Cursor) (TableFunction, error)

// --- pipelined (serial) execution ---

// pipelineCursor adapts a TableFunction to storage.Cursor, fetching
// batches lazily.
type pipelineCursor struct {
	fn      TableFunction
	batch   int
	buf     []storage.Row
	pos     int
	started bool
	done    bool
	closed  bool
}

// Pipeline returns a cursor that lazily drives fn. batch <= 0 selects
// DefaultBatch. The returned cursor yields InvalidRowID for every row
// (table-function output rows are synthesized, not stored).
func Pipeline(fn TableFunction, batch int) storage.Cursor {
	if batch <= 0 {
		batch = DefaultBatch
	}
	return &pipelineCursor{fn: fn, batch: batch}
}

func (c *pipelineCursor) Next() (storage.RowID, storage.Row, bool, error) {
	if c.closed {
		return storage.InvalidRowID, nil, false, errors.New("tablefunc: cursor used after Close")
	}
	if !c.started {
		c.started = true
		if err := c.fn.Start(); err != nil {
			c.done = true
			c.fn.Close()
			return storage.InvalidRowID, nil, false, fmt.Errorf("tablefunc: start: %w", err)
		}
	}
	for c.pos >= len(c.buf) {
		if c.done {
			return storage.InvalidRowID, nil, false, nil
		}
		rows, err := c.fn.Fetch(c.batch)
		if err != nil {
			c.done = true
			c.fn.Close()
			return storage.InvalidRowID, nil, false, fmt.Errorf("tablefunc: fetch: %w", err)
		}
		if len(rows) == 0 {
			c.done = true
			c.fn.Close()
			return storage.InvalidRowID, nil, false, nil
		}
		c.buf = rows
		c.pos = 0
	}
	row := c.buf[c.pos]
	c.pos++
	return storage.InvalidRowID, row, true, nil
}

func (c *pipelineCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.started && !c.done {
		return c.fn.Close()
	}
	return nil
}

// --- parallel execution ---

// parallelCursor merges the output of N instances running concurrently.
type parallelCursor struct {
	out    chan []storage.Row
	errs   chan error
	stop   chan struct{}
	once   sync.Once
	wg     *sync.WaitGroup
	buf    []storage.Row
	pos    int
	failed error
	done   bool
}

// Parallel runs one table-function instance per partition, each on its
// own goroutine, pipelining fetch batches into the returned cursor. The
// inter-instance row order is unspecified (a SQL row source is a set).
// The first instance error aborts the whole function and surfaces from
// Next. batch <= 0 selects DefaultBatch.
func Parallel(partitions []storage.Cursor, factory Factory, batch int) storage.Cursor {
	if batch <= 0 {
		batch = DefaultBatch
	}
	c := &parallelCursor{
		out:  make(chan []storage.Row, len(partitions)),
		errs: make(chan error, len(partitions)),
		stop: make(chan struct{}),
		wg:   &sync.WaitGroup{},
	}
	for i, part := range partitions {
		c.wg.Add(1)
		go func(i int, part storage.Cursor) {
			defer c.wg.Done()
			defer part.Close()
			if err := c.runInstance(i, part, factory, batch); err != nil {
				select {
				case c.errs <- err:
				default:
				}
			}
		}(i, part)
	}
	go func() {
		c.wg.Wait()
		close(c.out)
	}()
	return c
}

// runInstance drives one instance to completion or cancellation.
func (c *parallelCursor) runInstance(i int, part storage.Cursor, factory Factory, batch int) error {
	fn, err := factory(i, part)
	if err != nil {
		return fmt.Errorf("tablefunc: instance %d: %w", i, err)
	}
	defer fn.Close()
	if err := fn.Start(); err != nil {
		return fmt.Errorf("tablefunc: instance %d start: %w", i, err)
	}
	for {
		rows, err := fn.Fetch(batch)
		if err != nil {
			return fmt.Errorf("tablefunc: instance %d fetch: %w", i, err)
		}
		if len(rows) == 0 {
			return nil
		}
		select {
		case c.out <- rows:
		case <-c.stop:
			return nil
		}
	}
}

func (c *parallelCursor) Next() (storage.RowID, storage.Row, bool, error) {
	if c.failed != nil {
		return storage.InvalidRowID, nil, false, c.failed
	}
	if c.done {
		return storage.InvalidRowID, nil, false, nil
	}
	for c.pos >= len(c.buf) {
		select {
		case err := <-c.errs:
			c.failed = err
			c.shutdown()
			return storage.InvalidRowID, nil, false, err
		case rows, ok := <-c.out:
			if !ok {
				// Producers finished; surface a late error if any.
				select {
				case err := <-c.errs:
					c.failed = err
					return storage.InvalidRowID, nil, false, err
				default:
				}
				c.done = true
				return storage.InvalidRowID, nil, false, nil
			}
			c.buf = rows
			c.pos = 0
		}
	}
	row := c.buf[c.pos]
	c.pos++
	return storage.InvalidRowID, row, true, nil
}

func (c *parallelCursor) shutdown() {
	c.once.Do(func() { close(c.stop) })
}

// Close cancels outstanding instances and waits for them to exit.
func (c *parallelCursor) Close() error {
	c.shutdown()
	// Drain so producers blocked on send can observe stop and finish.
	go func() {
		for range c.out {
		}
	}()
	c.wg.Wait()
	c.done = true
	return nil
}
