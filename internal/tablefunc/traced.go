package tablefunc

import (
	"spatialtf/internal/storage"
	"spatialtf/internal/telemetry"
)

// Traced wraps fn so every start, fetch, and close call is recorded as
// a span on tr — the observable form of the paper's start-fetch-close
// interface. A nil trace returns fn unchanged, so untraced execution
// pays nothing, not even the wrapper indirection.
func Traced(fn TableFunction, tr *telemetry.Trace) TableFunction {
	if tr == nil {
		return fn
	}
	return &tracedFn{fn: fn, tr: tr}
}

type tracedFn struct {
	fn TableFunction
	tr *telemetry.Trace
}

func (t *tracedFn) Start() error {
	defer t.tr.Span(telemetry.StageStart)()
	return t.fn.Start()
}

func (t *tracedFn) Fetch(max int) ([]storage.Row, error) {
	defer t.tr.Span(telemetry.StageFetch)()
	return t.fn.Fetch(max)
}

func (t *tracedFn) Close() error {
	defer t.tr.Span(telemetry.StageClose)()
	return t.fn.Close()
}
