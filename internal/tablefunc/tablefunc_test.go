package tablefunc

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"

	"spatialtf/internal/storage"
)

// counterFn emits rows base, base+1, ... base+count-1, recording its
// lifecycle for protocol assertions.
type counterFn struct {
	base, count int
	emitted     int
	started     int32
	closed      int32
	startErr    error
	fetchErrAt  int // emit an error when emitted reaches this (0 = never)
}

func (c *counterFn) Start() error {
	atomic.AddInt32(&c.started, 1)
	return c.startErr
}

func (c *counterFn) Fetch(max int) ([]storage.Row, error) {
	var out []storage.Row
	for len(out) < max && c.emitted < c.count {
		if c.fetchErrAt > 0 && c.emitted >= c.fetchErrAt {
			return nil, errors.New("synthetic fetch failure")
		}
		out = append(out, storage.Row{storage.Int(int64(c.base + c.emitted))})
		c.emitted++
	}
	return out, nil
}

func (c *counterFn) Close() error {
	atomic.AddInt32(&c.closed, 1)
	return nil
}

func drainInts(t *testing.T, c storage.Cursor) []int {
	t.Helper()
	var out []int
	for {
		_, row, ok, err := c.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		out = append(out, int(row[0].I))
	}
	c.Close()
	return out
}

func TestPipelineBasic(t *testing.T) {
	fn := &counterFn{base: 0, count: 1000}
	got := drainInts(t, Pipeline(fn, 64))
	if len(got) != 1000 {
		t.Fatalf("pipeline yielded %d rows", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("row %d = %d (order broken)", i, v)
		}
	}
	if fn.started != 1 || fn.closed != 1 {
		t.Errorf("lifecycle: started=%d closed=%d", fn.started, fn.closed)
	}
}

func TestPipelineLazyStart(t *testing.T) {
	fn := &counterFn{base: 0, count: 5}
	c := Pipeline(fn, 2)
	if fn.started != 0 {
		t.Fatalf("function started before first Next")
	}
	if _, _, ok, err := c.Next(); !ok || err != nil {
		t.Fatalf("first Next: %v %v", ok, err)
	}
	if fn.started != 1 {
		t.Fatalf("function not started by first Next")
	}
	c.Close()
}

func TestPipelineStartError(t *testing.T) {
	fn := &counterFn{base: 0, count: 5, startErr: errors.New("cannot start")}
	c := Pipeline(fn, 2)
	if _, _, _, err := c.Next(); err == nil {
		t.Fatalf("start error not surfaced")
	}
	if fn.closed != 1 {
		t.Errorf("function not closed after start error")
	}
}

func TestPipelineFetchError(t *testing.T) {
	fn := &counterFn{base: 0, count: 100, fetchErrAt: 10}
	c := Pipeline(fn, 4)
	seen := 0
	for {
		_, _, ok, err := c.Next()
		if err != nil {
			break
		}
		if !ok {
			t.Fatalf("stream ended without the expected error after %d rows", seen)
		}
		seen++
		if seen > 100 {
			t.Fatalf("no error after %d rows", seen)
		}
	}
	if fn.closed != 1 {
		t.Errorf("function not closed after fetch error")
	}
}

func TestPipelineCloseEarly(t *testing.T) {
	fn := &counterFn{base: 0, count: 1 << 20}
	c := Pipeline(fn, 8)
	c.Next()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if fn.closed != 1 {
		t.Errorf("early Close did not close the function")
	}
	if _, _, _, err := c.Next(); err == nil {
		t.Errorf("Next after Close: want error")
	}
}

func TestPipelineEmptyFunction(t *testing.T) {
	fn := &counterFn{count: 0}
	got := drainInts(t, Pipeline(fn, 16))
	if len(got) != 0 {
		t.Fatalf("empty function yielded %d rows", len(got))
	}
	if fn.closed != 1 {
		t.Errorf("empty function not closed")
	}
}

func TestParallelMergesAllPartitions(t *testing.T) {
	// 4 partitions of 250 rows each; the merged stream must be the
	// multiset union.
	var parts []storage.Cursor
	for i := 0; i < 4; i++ {
		parts = append(parts, storage.NewSliceCursor(nil, make([]storage.Row, 0)))
	}
	factory := func(instance int, input storage.Cursor) (TableFunction, error) {
		return &counterFn{base: instance * 250, count: 250}, nil
	}
	got := drainInts(t, Parallel(parts, factory, 32))
	if len(got) != 1000 {
		t.Fatalf("parallel yielded %d rows", len(got))
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("missing or duplicated row near %d (= %d)", i, v)
		}
	}
}

func TestParallelErrorPropagates(t *testing.T) {
	parts := []storage.Cursor{
		storage.NewSliceCursor(nil, nil),
		storage.NewSliceCursor(nil, nil),
	}
	factory := func(instance int, input storage.Cursor) (TableFunction, error) {
		if instance == 1 {
			return &counterFn{base: 0, count: 100, fetchErrAt: 5}, nil
		}
		return &counterFn{base: 0, count: 100000}, nil
	}
	c := Parallel(parts, factory, 8)
	sawErr := false
	for i := 0; i < 200000; i++ {
		_, _, ok, err := c.Next()
		if err != nil {
			sawErr = true
			break
		}
		if !ok {
			break
		}
	}
	if !sawErr {
		t.Fatalf("instance error never surfaced")
	}
	c.Close()
}

func TestParallelFactoryError(t *testing.T) {
	parts := []storage.Cursor{storage.NewSliceCursor(nil, nil)}
	factory := func(instance int, input storage.Cursor) (TableFunction, error) {
		return nil, errors.New("factory boom")
	}
	c := Parallel(parts, factory, 8)
	_, _, _, err := c.Next()
	for err == nil {
		var ok bool
		_, _, ok, err = c.Next()
		if !ok && err == nil {
			t.Fatalf("factory error never surfaced")
		}
	}
	c.Close()
}

func TestParallelCloseCancelsInstances(t *testing.T) {
	parts := []storage.Cursor{
		storage.NewSliceCursor(nil, nil),
		storage.NewSliceCursor(nil, nil),
	}
	factory := func(instance int, input storage.Cursor) (TableFunction, error) {
		return &counterFn{base: 0, count: 1 << 30}, nil
	}
	c := Parallel(parts, factory, 8)
	if _, _, ok, err := c.Next(); !ok || err != nil {
		t.Fatalf("first Next: %v %v", ok, err)
	}
	// Close must return even though producers have billions of rows
	// left; Parallel's stop channel cancels them.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelConsumesInputCursors(t *testing.T) {
	// The classic use: instances read their own partition.
	tab, err := storage.NewTable("t", []storage.Column{{Name: "v", Type: storage.TInt64}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		tab.Insert(storage.Row{storage.Int(int64(i))})
	}
	parts := PartitionTable(tab, 4)
	if len(parts) < 2 {
		t.Fatalf("expected multiple partitions, got %d", len(parts))
	}
	factory := func(instance int, input storage.Cursor) (TableFunction, error) {
		return &FuncCursor{
			NextFn: func() (storage.Row, error) {
				_, row, ok, err := input.Next()
				if err != nil || !ok {
					return nil, err
				}
				// Double each value to prove the function transformed it.
				return storage.Row{storage.Int(row[0].I * 2)}, nil
			},
		}, nil
	}
	got := drainInts(t, Parallel(parts, factory, 0))
	if len(got) != 2000 {
		t.Fatalf("got %d rows", len(got))
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("row %d = %d, want %d", i, v, i*2)
		}
	}
}

func TestParallelNoPartitions(t *testing.T) {
	c := Parallel(nil, func(int, storage.Cursor) (TableFunction, error) {
		return &counterFn{count: 5}, nil
	}, 8)
	got := drainInts(t, c)
	if len(got) != 0 {
		t.Fatalf("no-partition parallel yielded %d rows", len(got))
	}
}

func TestPartitionTableTinyTable(t *testing.T) {
	tab, err := storage.NewTable("tiny", []storage.Column{{Name: "v", Type: storage.TInt64}})
	if err != nil {
		t.Fatal(err)
	}
	if got := PartitionTable(tab, 4); len(got) != 0 {
		t.Errorf("empty table partitions = %d", len(got))
	}
	tab.Insert(storage.Row{storage.Int(1)})
	parts := PartitionTable(tab, 4)
	if len(parts) != 1 {
		t.Errorf("1-row table partitions = %d", len(parts))
	}
	rows, err := CollectRows(parts[0])
	if err != nil || len(rows) != 1 {
		t.Errorf("partition contents: %d rows, %v", len(rows), err)
	}
}

func TestPartitionRows(t *testing.T) {
	rows := make([]storage.Row, 10)
	for i := range rows {
		rows[i] = storage.Row{storage.Int(int64(i))}
	}
	parts, err := PartitionRows(storage.NewSliceCursor(nil, rows), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("got %d partitions", len(parts))
	}
	var all []int
	for _, p := range parts {
		all = append(all, drainInts(t, p)...)
	}
	sort.Ints(all)
	for i, v := range all {
		if v != i {
			t.Fatalf("partitioning lost/duplicated row %d", i)
		}
	}
	// Empty input.
	parts, err = PartitionRows(storage.NewSliceCursor(nil, nil), 3)
	if err != nil || len(parts) != 0 {
		t.Errorf("empty input: %d partitions, %v", len(parts), err)
	}
}

func TestCollectRows(t *testing.T) {
	rows := []storage.Row{{storage.Int(1)}, {storage.Int(2)}}
	got, err := CollectRows(storage.NewSliceCursor(nil, rows))
	if err != nil || len(got) != 2 {
		t.Fatalf("CollectRows = %d rows, %v", len(got), err)
	}
}

func TestFuncCursorLifecycle(t *testing.T) {
	n := 0
	started, closed := false, false
	f := &FuncCursor{
		StartFn: func() error { started = true; return nil },
		NextFn: func() (storage.Row, error) {
			if n >= 3 {
				return nil, nil
			}
			n++
			return storage.Row{storage.Int(int64(n))}, nil
		},
		CloseFn: func() error { closed = true; return nil },
	}
	got := drainInts(t, Pipeline(f, 2))
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("FuncCursor rows = %v", got)
	}
	if !started || !closed {
		t.Errorf("lifecycle: started=%v closed=%v", started, closed)
	}
}
