package pager

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Crash recovery. The WAL is redo-only: recovery reads the valid record
// prefix twice — pass one finds which transactions have a commit record
// (and where the valid prefix ends: clean EOF, torn tail, or bad CRC),
// pass two re-applies the committed transactions' records in log order.
// A record is skipped when the page already carries an LSN at or past
// it (the page-file copy is newer), which makes replay idempotent:
// crashing during recovery and recovering again converges to the same
// state. Open finishes with a checkpoint, so the repaired pages reach
// the page file and the WAL rotates to empty.

// openWALAndRecover opens wal.log (creating a fresh one if absent or
// never durably initialised) and replays its committed suffix.
func (s *Store) openWALAndRecover() error {
	exists, err := s.fs.Exists(s.walPath)
	if err != nil {
		return err
	}
	if !exists {
		return s.createWAL()
	}
	f, err := s.fs.Open(s.walPath)
	if err != nil {
		return err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return err
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			f.Close()
			return fmt.Errorf("pager: read WAL: %w", err)
		}
	}
	// A header that never became durable (creation crashed between
	// create and fsync) means no record was ever written either — the
	// page file holds no data pages yet. Start over with a fresh log.
	// A well-formed header with the wrong version or page size is a
	// real mismatch and fails the open.
	if len(buf) < walHdrSize || string(buf[:8]) != walMagic ||
		binary.LittleEndian.Uint32(buf[24:]) != crc32.Checksum(buf[:24], castagnoli) {
		f.Close()
		if err := s.fs.Remove(s.walPath); err != nil {
			return err
		}
		return s.createWAL()
	}
	pageSize, startLSN, err := decodeWALHeader(buf)
	if err != nil {
		f.Close()
		return err
	}
	if pageSize != s.pageSize {
		f.Close()
		return fmt.Errorf("pager: WAL has page size %d, store has %d", pageSize, s.pageSize)
	}
	if startLSN > 0 {
		s.nextLSN = startLSN
	}

	// Pass one: find the valid prefix and the committed transactions.
	committed := make(map[uint64]struct{})
	maxLSN, maxTX := s.nextLSN-1, uint64(0)
	off := walHdrSize
	for off < len(buf) {
		rec, n, err := decodeWALRecord(buf[off:])
		if err != nil {
			break // torn tail or corrupt frame: prefix ends here
		}
		off += n
		if rec.lsn > maxLSN {
			maxLSN = rec.lsn
		}
		if rec.tx > maxTX {
			maxTX = rec.tx
		}
		if rec.typ == recCommit {
			committed[rec.tx] = struct{}{}
		}
	}
	validEnd := off

	// Pass two: redo the committed records in order.
	off = walHdrSize
	for off < validEnd {
		rec, n, err := decodeWALRecord(buf[off:])
		if err != nil {
			break
		}
		off += n
		if _, ok := committed[rec.tx]; !ok {
			continue
		}
		if err := s.applyRecovery(&rec); err != nil {
			f.Close()
			return err
		}
	}
	s.nextLSN = maxLSN + 1
	if maxTX >= s.nextTX {
		s.nextTX = maxTX + 1
	}
	s.wal = f
	s.walSize = int64(size)
	return nil
}

// createWAL writes a fresh, durable, empty log.
func (s *Store) createWAL() error {
	f, err := s.fs.Create(s.walPath)
	if err != nil {
		return err
	}
	hdr := encodeWALHeader(s.pageSize, s.nextLSN)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return fmt.Errorf("pager: write WAL header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("pager: sync WAL: %w", err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.wal = f
	s.walSize = walHdrSize
	return nil
}

// applyRecovery redoes one committed record.
func (s *Store) applyRecovery(rec *walRecord) error {
	switch rec.typ {
	case recAlloc, recImage:
		if rec.page == 0 {
			return fmt.Errorf("%w: WAL %s of page 0", ErrCorrupt, recName(rec.typ))
		}
		if rec.page > s.pageCount {
			s.pageCount = rec.page
		}
		f, err := s.pinRecovery(rec.page)
		if err != nil {
			return err
		}
		if f.lsn < rec.lsn {
			if rec.typ == recImage {
				if len(rec.image) != s.payload {
					s.unpin(f)
					return fmt.Errorf("%w: WAL image of %d bytes (payload is %d)", ErrCorrupt, len(rec.image), s.payload)
				}
				copy(f.data, rec.image)
			} else {
				for i := range f.data {
					f.data[i] = 0
				}
			}
			s.mu.Lock()
			s.dropFromSpaces(rec.page)
			s.addToSpace(rec.space, rec.page)
			s.mu.Unlock()
			f.space = rec.space
			f.kind = rec.kind
			f.lsn = rec.lsn
			f.dirty = true
		}
		s.unpin(f)
	case recPatch:
		if rec.page == 0 || rec.page > s.pageCount {
			return fmt.Errorf("%w: WAL patch of unallocated page %d", ErrCorrupt, rec.page)
		}
		f, err := s.pinRecovery(rec.page)
		if err != nil {
			return err
		}
		if f.lsn < rec.lsn {
			for _, p := range rec.patches {
				if p.Off < 0 || p.Off+len(p.Data) > len(f.data) {
					s.unpin(f)
					return fmt.Errorf("%w: WAL patch [%d, %d) outside page payload", ErrCorrupt, p.Off, p.Off+len(p.Data))
				}
				copy(f.data[p.Off:], p.Data)
			}
			f.lsn = rec.lsn
			f.dirty = true
		}
		s.unpin(f)
	case recCommit:
	}
	return nil
}

func recName(t byte) string {
	switch t {
	case recAlloc:
		return "alloc"
	case recPatch:
		return "patch"
	case recImage:
		return "image"
	case recCommit:
		return "commit"
	}
	return "unknown"
}

// pinRecovery pins a page tolerantly: an unreadable or checksum-failing
// page-file copy (torn write, never-written hole) yields a zeroed frame
// at LSN 0, which the committed WAL records then rebuild — every first
// touch of a page in a WAL generation is a full image or an alloc.
func (s *Store) pinRecovery(id uint32) (*Frame, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f := s.frames[id]; f != nil {
		f.pins++
		f.ref = true
		return f, nil
	}
	slot, err := s.grabSlotLocked()
	if err != nil {
		return nil, err
	}
	raw := make([]byte, s.pageSize)
	good := false
	if _, err := s.pageFile.ReadAt(raw, s.pageOffset(id)); err == nil {
		good = binary.LittleEndian.Uint32(raw[8:]) == pageCRC(raw)
	}
	if !good {
		raw = make([]byte, s.pageSize)
	}
	f := &Frame{
		id:    id,
		data:  raw[frameHdrSize:],
		raw:   raw,
		store: s,
		pins:  1,
		ref:   true,
		slot:  slot,
	}
	if good {
		f.lsn = binary.LittleEndian.Uint64(raw[0:])
		f.space = binary.LittleEndian.Uint32(raw[12:])
		f.kind = binary.LittleEndian.Uint16(raw[16:])
	}
	s.slots[slot] = f
	s.frames[id] = f
	return f, nil
}
